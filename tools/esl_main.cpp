// esl: unified command-line driver over the textual netlist IR.
//
// One scriptable entry point for what the bench/example mains each did in
// their own way: load a design (a `.esl` file or a builtin paper design),
// optionally transform it with the shell's command language, then simulate,
// model-check, re-save, round-trip-check or emit a backend artifact.
//
//   esl examples/designs/fig1d.esl --sim 1000
//   esl fig1a --transform speculate:mux:F:rr --check
//   esl design.esl --emit verilog --out design.v
//   esl design.esl --roundtrip          # CI gate: print->parse->print fixpoint
//   cat design.esl | esl - --sim 1000   # read the design from stdin
//   esl fig1a --sim 500 --save-state a.snap
//   esl fig1a --load-state a.snap --sim 500
//
// Two subcommand forms hand off to the serve subsystem before flag parsing:
//   esl serve --socket /tmp/esl.sock    # long-running multi-session daemon
//   esl client --socket /tmp/esl.sock   # scripted client for the daemon
//
// Exit codes: 0 ok, 1 usage, 2 command/load error, 3 check violations,
// 4 round-trip drift.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/esl_format.h"
#include "netlist/patterns.h"
#include "serve/cli.h"
#include "shell/session.h"
#include "sim/simulator.h"
#include "sim/state_file.h"
#include "verify/checker.h"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " <design.esl | design-name | -> [options]\n"
      << "       " << argv0 << " serve --socket PATH [options]\n"
      << "       " << argv0 << " client --socket PATH [script]\n"
      << "  -                  read the `.esl` design from stdin\n"
      << "  --transform LIST   comma-separated shell transform commands with\n"
      << "                     ':' between arguments, e.g.\n"
      << "                     --transform bubble:mux.out,speculate:mux:F:rr\n"
      << "  --sim N            simulate N cycles (sink transfers + violations)\n"
      << "  --shards N         with --sim: shard the netlist across N worker\n"
      << "                     lanes (bit-identical to serial for every N)\n"
      << "  --backend B        with --sim: 'interpreted' (default) or\n"
      << "                     'compiled' (bytecode VM, bit-identical)\n"
      << "  --cross-check      with --sim: settle every cycle on both the\n"
      << "                     selected backend and the sweep oracle, and\n"
      << "                     audit every clock edge; throws on divergence\n"
      << "  --tput CHANNEL     with --sim N: measured throughput of CHANNEL\n"
      << "  --check            model-check the SELF suite from the design's IR\n"
      << "  --workers N        checker worker lanes (default 1)\n"
      << "  --max-states N     checker state cap (default 100000)\n"
      << "  --emit FORMAT      dot | blif | smv | verilog\n"
      << "  --out FILE         write --emit output to FILE instead of stdout\n"
      << "  --save FILE        write the (transformed) design back as .esl\n"
      << "  --save-state FILE  after --sim N: write the simulator snapshot\n"
      << "  --load-state FILE  before --sim N: resume from a snapshot\n"
      << "  --roundtrip        verify the print->parse->print fixpoint\n"
      << "  --designs          list builtin design names\n";
  return 1;
}

/// Runs one shell command and fails on "error:" replies. Status replies
/// (load/transform/save) go to stderr so stdout stays clean for artifacts
/// and results; pass toStdout for outputs the caller asked for.
bool run(esl::shell::Session& session, const std::string& cmd,
         bool toStdout = false) {
  const std::string out = session.execute(cmd);
  if (out.rfind("error:", 0) == 0) {
    std::cerr << "esl: " << cmd << ": " << out;
    return false;
  }
  (toStdout ? std::cout : std::cerr) << out;
  return true;
}

std::vector<std::string> splitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t at = s.find(sep, start);
    out.push_back(s.substr(start, at - start));
    if (at == std::string::npos) break;
    start = at + 1;
  }
  return out;
}

bool fileExists(const std::string& path) {
  return static_cast<bool>(std::ifstream(path));
}

/// Strict non-negative numeric option value; usage error (exit 1) on garbage
/// (std::stoull would otherwise throw — or sign-wrap "-5" to 2^64-5).
std::uint64_t parseNum(const std::string& flag, const std::string& value) {
  try {
    if (!value.empty() && value[0] >= '0' && value[0] <= '9') {
      std::size_t used = 0;
      const std::uint64_t v = std::stoull(value, &used);
      if (used == value.size()) return v;
    }
  } catch (const std::exception&) {
  }
  std::cerr << "esl: " << flag << " expects a number, got '" << value << "'\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esl;

  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0)
    return serve::serveMain(argc - 2, argv + 2);
  if (argc >= 2 && std::strcmp(argv[1], "client") == 0)
    return serve::clientMain(argc - 2, argv + 2);

  std::string input, transforms, emit, outFile, saveFile, tputChannel;
  std::string saveState, loadState;
  std::string simBackend;
  std::uint64_t simCycles = 0;
  std::uint64_t simShards = 1;
  bool doSim = false, doCheck = false, doRoundtrip = false, doCrossCheck = false;
  verify::ProtocolSuiteOptions checkOptions;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "esl: " << arg << " needs a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;  // explicitly requested help is not an error
    }
    if (arg == "--designs") {
      for (const auto& name : patterns::designNames()) std::cout << name << "\n";
      return 0;
    }
    if (arg == "--transform") {
      transforms = value();
    } else if (arg == "--sim") {
      doSim = true;
      simCycles = parseNum(arg, value());
    } else if (arg == "--shards") {
      simShards = parseNum(arg, value());
    } else if (arg == "--backend") {
      simBackend = value();
      if (simBackend != "compiled" && simBackend != "interpreted") {
        std::cerr << "esl: --backend expects compiled|interpreted, got '"
                  << simBackend << "'\n";
        return 1;
      }
    } else if (arg == "--cross-check") {
      doCrossCheck = true;
    } else if (arg == "--tput") {
      tputChannel = value();
    } else if (arg == "--check") {
      doCheck = true;
    } else if (arg == "--workers") {
      checkOptions.workers = static_cast<unsigned>(parseNum(arg, value()));
    } else if (arg == "--max-states") {
      checkOptions.maxStates = parseNum(arg, value());
    } else if (arg == "--emit") {
      emit = value();
    } else if (arg == "--out") {
      outFile = value();
    } else if (arg == "--save") {
      saveFile = value();
    } else if (arg == "--save-state") {
      saveState = value();
    } else if (arg == "--load-state") {
      loadState = value();
    } else if (arg == "--roundtrip") {
      doRoundtrip = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::cerr << "esl: unknown option " << arg << "\n";
      return usage(argv[0]);
    } else if (input.empty()) {
      input = arg;
    } else {
      std::cerr << "esl: more than one input design\n";
      return usage(argv[0]);
    }
  }
  if (input.empty()) return usage(argv[0]);
  if (!emit.empty() && emit != "dot" && emit != "blif" && emit != "smv" &&
      emit != "verilog") {
    std::cerr << "esl: --emit expects dot|blif|smv|verilog, got '" << emit << "'\n";
    return 1;
  }
  if (!tputChannel.empty() && !doSim) {
    std::cerr << "esl: --tput requires --sim N\n";
    return 1;
  }
  if (simShards != 1 && !doSim) {
    std::cerr << "esl: --shards requires --sim N\n";
    return 1;
  }
  if ((!simBackend.empty() || doCrossCheck) && !doSim) {
    std::cerr << "esl: --backend/--cross-check require --sim N\n";
    return 1;
  }
  if ((!saveState.empty() || !loadState.empty()) && !doSim) {
    std::cerr << "esl: --save-state/--load-state require --sim N\n";
    return 1;
  }
  try {
    shell::Session session;
    if (input == "-") {
      // Read the whole design from stdin; parse errors cite `<stdin>:line`.
      std::ostringstream body;
      body << std::cin.rdbuf();
      std::cerr << session.loadSpec(frontend::parseEsl(body.str(), "<stdin>"),
                                    "<stdin>");
    } else if (!run(session, (fileExists(input) ? "load " : "build ") + input)) {
      return 2;
    }

    if (!transforms.empty()) {
      for (const std::string& item : splitOn(transforms, ',')) {
        if (item.empty()) continue;
        std::string cmd = item;
        for (char& c : cmd)
          if (c == ':') c = ' ';
        if (!run(session, cmd)) return 2;
      }
    }

    if (doRoundtrip) {
      // Throws InternalError quoting the diverging line on drift.
      try {
        frontend::checkRoundTrip(NetlistSpec::fromNetlist(*session.netlist()));
        std::cout << "roundtrip ok: " << input << "\n";
      } catch (const EslError& e) {
        std::cerr << "esl: roundtrip FAILED: " << e.what() << "\n";
        return 4;
      }
    }

    if (doSim && (!saveState.empty() || !loadState.empty())) {
      // Snapshot round-trips drive the simulator directly: the shell's `sim`
      // verb owns a throwaway simulator and cannot adopt external state.
      Netlist& nl = *session.netlist();
      sim::SimOptions opts{.checkProtocol = true, .throwOnViolation = false};
      opts.shards = static_cast<unsigned>(simShards);
      if (simBackend == "compiled") opts.backend = SimContext::Backend::kCompiled;
      opts.crossCheckKernels = doCrossCheck;
      sim::Simulator s(nl, opts);
      // readSnapshotFile rejects foreign magic / future versions cleanly.
      if (!loadState.empty()) s.ctx().unpackState(sim::readSnapshotFile(loadState));
      s.run(simCycles);
      std::cout << sim::runReport(nl, s.ctx());
      if (!tputChannel.empty()) {
        const Channel* ch = nl.findChannel(tputChannel);
        if (ch == nullptr) {
          std::cerr << "esl: no channel named '" << tputChannel << "'\n";
          return 2;
        }
        char line[128];
        std::snprintf(line, sizeof line, "throughput(%s) = %.4f\n",
                      tputChannel.c_str(), s.throughput(ch->id));
        std::cout << line;
      }
      if (!saveState.empty()) {
        sim::writeSnapshotFile(saveState, s.ctx().packState());
        std::cerr << "state saved to '" << saveState << "' at cycle "
                  << s.cycle() << "\n";
      }
    } else if (doSim) {
      std::string simCmd = "sim " + std::to_string(simCycles);
      if (simShards > 1) simCmd += " " + std::to_string(simShards);
      if (!simBackend.empty()) simCmd += " " + simBackend;
      if (doCrossCheck) simCmd += " cross-check";
      if (!run(session, simCmd,
               /*toStdout=*/true))
        return 2;
      if (!tputChannel.empty() &&
          !run(session, "tput " + std::to_string(simCycles) + " " + tputChannel,
               /*toStdout=*/true))
        return 2;
    }

    if (doCheck) {
      // The check runs from the serializable IR of the (possibly transformed)
      // design — the same spec a parallel checker lane would rebuild.
      const NetlistSpec spec = NetlistSpec::fromNetlist(*session.netlist());
      const verify::ProtocolReport report =
          verify::checkSelfProtocol(spec, checkOptions);
      std::cout << "check: " << report.explore.states << " states, "
                << report.explore.transitions << " transitions"
                << (report.explore.truncated ? " (truncated)" : "") << ", "
                << report.propertiesChecked << " properties\n";
      for (const auto& v : report.violations) std::cout << "  " << v.str() << "\n";
      if (!report.ok()) return 3;
      std::cout << "check: all properties hold\n";
    }

    if (!saveFile.empty() && !run(session, "save " + saveFile)) return 2;

    if (!emit.empty()) {
      const std::string artifact = session.execute(emit);
      if (artifact.rfind("error:", 0) == 0) {
        std::cerr << "esl: " << artifact;
        return 2;
      }
      if (outFile.empty()) {
        std::cout << artifact;
      } else {
        std::ofstream out(outFile);
        out << artifact;
        if (!out.flush()) {
          std::cerr << "esl: cannot write " << outFile << "\n";
          return 2;
        }
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "esl: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
