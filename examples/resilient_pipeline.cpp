// Amortization of speculation overhead in a multi-stage pipeline.
//
// Paper §5.2 closes: "Notice that this overhead is paid on a single pipeline
// stage, and hence, it would be amortized across the whole system when
// implemented on a real pipeline." This example builds that real pipeline:
// the speculative SECDED adder stage followed by two further elastic stages
// (a shift/mix "execute" and a mask "writeback"), then compares whole-system
// area overhead against the non-speculative version of the same pipeline.
//
//   $ ./resilient_pipeline
#include <cstdio>

#include "logic/secded.h"
#include "netlist/patterns.h"
#include "perf/area.h"
#include "perf/timing.h"
#include "sim/simulator.h"

using namespace esl;

namespace {

/// Appends two more pipeline stages after `sys.outChannel`'s producer EB and
/// returns the new sink. Works on both SECDED variants (their outputs are a
/// 64-bit sum in an EB feeding the sink).
TokenSink& extendPipeline(patterns::SecdedSystem& sys) {
  Netlist& nl = sys.nl;
  // Disconnect the old sink and splice the extra stages in.
  const Channel out = nl.channel(sys.outChannel);
  Node& outEb = nl.node(out.producer);
  const NodeId oldSink = out.consumer;
  nl.disconnect(sys.outChannel);
  nl.removeNode(oldSink);
  sys.sink = nullptr;  // replaced below

  auto& ex = makeUnary(
      nl, "execute", 64, 64,
      [](const BitVec& x) { return (x << 1) ^ (x >> 3); },
      logic::Cost{10.0, 700.0});
  auto& ebEx = nl.make<ElasticBuffer>("ebEx", 64);
  auto& wb = makeUnary(
      nl, "writeback", 64, 64,
      [](const BitVec& x) { return x & BitVec::ones(64); },
      logic::Cost{4.0, 350.0});
  auto& ebWb = nl.make<ElasticBuffer>("ebWb", 64);
  auto& sink = nl.make<TokenSink>("endSink", 64);

  nl.connect(outEb, 0, ex, 0, "toExecute");
  nl.connect(ex, 0, ebEx, 0, "exOut");
  nl.connect(ebEx, 0, wb, 0, "toWb");
  nl.connect(wb, 0, ebWb, 0, "wbOut");
  nl.connect(ebWb, 0, sink, 0, "retire");
  return sink;
}

double pipelineArea(Netlist& nl) {
  double total = 0.0;
  for (const NodeId id : nl.nodeIds()) total += nl.node(id).cost().area;
  return total;
}

}  // namespace

int main() {
  std::printf("Amortizing speculation overhead across a 3-stage pipeline\n");
  std::printf("----------------------------------------------------------\n\n");
  patterns::SecdedConfig cfg;
  cfg.flipPermille = 40;

  // Isolated stage comparison (what bench_secded reports).
  auto stagePlain = patterns::buildSecdedPipeline(cfg);
  auto stageSpec = patterns::buildSecdedSpeculative(cfg);
  const double aStagePlain = pipelineArea(stagePlain.nl);
  const double aStageSpec = pipelineArea(stageSpec.nl);

  // Whole-pipeline comparison.
  auto pipePlain = patterns::buildSecdedPipeline(cfg);
  auto pipeSpec = patterns::buildSecdedSpeculative(cfg);
  TokenSink& sinkPlain = extendPipeline(pipePlain);
  TokenSink& sinkSpec = extendPipeline(pipeSpec);
  pipePlain.nl.validate();
  pipeSpec.nl.validate();

  sim::Simulator sp(pipePlain.nl, {.checkProtocol = true, .throwOnViolation = true});
  sim::Simulator ss(pipeSpec.nl, {.checkProtocol = true, .throwOnViolation = true});
  sp.run(800);
  ss.run(800);

  const double aPipePlain = pipelineArea(pipePlain.nl);
  const double aPipeSpec = pipelineArea(pipeSpec.nl);

  std::printf("%-32s %12s %12s %10s\n", "", "baseline", "speculative", "overhead");
  std::printf("%-32s %12.0f %12.0f %+9.1f%%\n", "adder stage alone", aStagePlain,
              aStageSpec, 100.0 * (aStageSpec - aStagePlain) / aStagePlain);
  std::printf("%-32s %12.0f %12.0f %+9.1f%%\n", "full 3-stage pipeline", aPipePlain,
              aPipeSpec, 100.0 * (aPipeSpec - aPipePlain) / aPipePlain);

  std::printf("\nend-to-end latency (first retired result): %llu vs %llu cycles\n",
              static_cast<unsigned long long>(sinkPlain.transfers().front().cycle),
              static_cast<unsigned long long>(sinkSpec.transfers().front().cycle));

  // Both pipelines retire identical results.
  const std::size_t n = std::min(sinkPlain.received(), sinkSpec.received());
  for (std::size_t i = 0; i < n; ++i) {
    if (sinkPlain.transfers()[i].data != sinkSpec.transfers()[i].data) {
      std::printf("MISMATCH at %zu\n", i);
      return 1;
    }
  }
  std::printf("both pipelines retire identical streams (%zu results checked)\n", n);
  std::printf("\nthe paper's point: the stage-level overhead shrinks when the rest\n"
              "of the machine is counted — speculation buys a shallower pipeline\n"
              "at a cost that amortizes.\n");
  return 0;
}
