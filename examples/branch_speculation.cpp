// Branch speculation in the §2 PC micro-architecture.
//
// The Fig. 1(d) loop predicts which mux input (next PC vs branch target) will
// be needed. This example sweeps the branch taken-rate and the scheduler
// (prediction strategy) and reports the achieved loop throughput — the paper
// leaves prediction strategy open ("they have a crucial impact on the
// performance"), and this shows exactly how much.
//
//   $ ./branch_speculation
#include <cstdio>

#include "netlist/patterns.h"
#include "sim/simulator.h"

using namespace esl;

int main() {
  std::printf("Fig. 1(d) loop throughput vs branch behaviour and scheduler\n");
  std::printf("(1.0 = perfect; every misprediction costs one stall cycle)\n\n");
  std::printf("%-12s", "taken-rate");
  const char* names[] = {"static0", "last-served", "two-bit", "round-robin", "oracle"};
  for (const char* n : names) std::printf("%12s", n);
  std::printf("\n");

  const patterns::Fig1Scheduler scheds[] = {
      patterns::Fig1Scheduler::kStatic0, patterns::Fig1Scheduler::kLastServed,
      patterns::Fig1Scheduler::kTwoBit, patterns::Fig1Scheduler::kRoundRobin,
      patterns::Fig1Scheduler::kOracle};

  for (const unsigned taken : {0u, 100u, 300u, 500u, 800u, 1000u}) {
    std::printf("%9.1f%%  ", taken / 10.0);
    for (const auto sched : scheds) {
      patterns::Fig1Config cfg;
      cfg.takenPermille = taken;
      cfg.scheduler = sched;
      auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative, cfg);
      sim::Simulator s(sys.nl);
      s.run(1000);
      std::printf("%12.3f", s.throughput(sys.loopChannel));
    }
    std::printf("\n");
  }

  std::printf(
      "\nThe oracle column shows the Shannon-decomposition bound (1.0): with\n"
      "perfect prediction, sharing the single F costs no performance at all.\n");
  return 0;
}
