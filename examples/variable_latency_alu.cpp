// Variable-latency ALU (paper §5.1, Fig. 6).
//
// An 8-bit ALU computes with a fast approximate adder (segmented carry) and a
// slow exact one. The telescopic predictor F_err flags, from the operands
// alone, when the approximation would be wrong. Two implementations:
//   stalling (Fig. 6a)    — F_err gates the elastic controller directly;
//   speculative (Fig. 6b) — always predict "approximation correct", replay
//                           mispredicted operands through the shared stage.
// Both are functionally exact; the speculative one takes F_err off the
// control-gating critical path.
//
//   $ ./variable_latency_alu [err_permille]
#include <cstdio>
#include <cstdlib>

#include "netlist/patterns.h"
#include "perf/area.h"
#include "perf/timing.h"
#include "sim/simulator.h"

using namespace esl;

int main(int argc, char** argv) {
  patterns::VluConfig cfg;
  cfg.errPermille = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 120;

  std::printf("Variable-latency 8-bit ALU, %.1f%% of operands need 2 cycles\n\n",
              cfg.errPermille / 10.0);

  auto stall = patterns::buildStallingVlu(cfg);
  auto spec = patterns::buildSpeculativeVlu(cfg);

  sim::Simulator ss(stall.nl, {.checkProtocol = true, .throwOnViolation = true});
  sim::Simulator sp(spec.nl, {.checkProtocol = true, .throwOnViolation = true});
  ss.run(1500);
  sp.run(1500);

  const double tputStall = ss.throughput(stall.outChannel);
  const double tputSpec = sp.throughput(spec.outChannel);
  const double cycStall = perf::analyzeTiming(stall.nl).cycleTime;
  const double cycSpec = perf::analyzeTiming(spec.nl).cycleTime;

  std::printf("%-14s %10s %12s %12s %10s\n", "design", "cycle", "throughput",
              "eff.cycle", "area");
  std::printf("%-14s %10.1f %12.3f %12.2f %10.1f\n", "stalling", cycStall, tputStall,
              cycStall / tputStall, perf::areaReport(stall.nl).total);
  std::printf("%-14s %10.1f %12.3f %12.2f %10.1f\n", "speculative", cycSpec, tputSpec,
              cycSpec / tputSpec, perf::areaReport(spec.nl).total);

  const double gain =
      (cycStall / tputStall - cycSpec / tputSpec) / (cycStall / tputStall);
  std::printf("\neffective cycle time improvement: %.1f%% (paper: ~9%%)\n",
              gain * 100.0);
  std::printf("stalling unit replays: %llu of %llu operands\n",
              static_cast<unsigned long long>(stall.vlu->stalls()),
              static_cast<unsigned long long>(stall.vlu->completed()));

  // Functional exactness: both sinks saw G(exact(op)) for every operand.
  const auto golden = patterns::vluGolden(cfg, 1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    if (stall.sink->transfers().at(i).data.toUint64() != golden[i] ||
        spec.sink->transfers().at(i).data.toUint64() != golden[i]) {
      std::printf("MISMATCH at %zu\n", i);
      return 1;
    }
  }
  std::printf("both designs exact on 1000 checked operands\n");
  return 0;
}
