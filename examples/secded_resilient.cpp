// Resilient design with SECDED (paper §5.2, Fig. 7).
//
// A 64-bit adder whose inputs carry Hamming SECDED(72,64) protection. The
// speculative version starts the addition immediately on the (possibly
// corrupted) payloads while SECDED checks both inputs in parallel; on a
// detected error the mispredicted sum is killed by an anti-token and the
// addition replays with the corrected words — soft-error tolerance with no
// penalty on error-free operation and one lost cycle per error.
//
//   $ ./secded_resilient [flip_permille]
#include <cstdio>
#include <cstdlib>

#include "netlist/patterns.h"
#include "perf/area.h"
#include "sim/simulator.h"

using namespace esl;

int main(int argc, char** argv) {
  patterns::SecdedConfig cfg;
  cfg.flipPermille = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 80;

  std::printf("SECDED-protected 64-bit adder, %.1f%% single-bit flips per word\n\n",
              cfg.flipPermille / 10.0);

  auto pipe = patterns::buildSecdedPipeline(cfg);
  auto spec = patterns::buildSecdedSpeculative(cfg);
  sim::Simulator sp(pipe.nl, {.checkProtocol = true, .throwOnViolation = true});
  sim::Simulator ss(spec.nl, {.checkProtocol = true, .throwOnViolation = true});
  sp.run(1200);
  ss.run(1200);

  std::printf("%-24s %12s %12s %10s\n", "design", "first-sum@", "throughput", "area");
  std::printf("%-24s %12llu %12.3f %10.0f\n", "SECDED stage + adder",
              static_cast<unsigned long long>(pipe.sink->transfers().front().cycle),
              sp.throughput(pipe.outChannel), perf::areaReport(pipe.nl).total);
  std::printf("%-24s %12llu %12.3f %10.0f\n", "speculative adder",
              static_cast<unsigned long long>(spec.sink->transfers().front().cycle),
              ss.throughput(spec.outChannel), perf::areaReport(spec.nl).total);

  std::printf("\nreplay cycles in the speculative design: %llu\n",
              static_cast<unsigned long long>(spec.shared->demandCycles()));

  // Every sum equals the golden (error-corrected) result in both designs.
  const auto golden = patterns::secdedGolden(cfg, 1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    if (pipe.sink->transfers().at(i).data.toUint64() != golden[i] ||
        spec.sink->transfers().at(i).data.toUint64() != golden[i]) {
      std::printf("MISMATCH at %zu\n", i);
      return 1;
    }
  }
  std::printf("all 1000 checked sums correct despite injected bit flips\n");
  return 0;
}
