// The interactive exploration shell (paper §5).
//
// With no arguments, runs a demonstration script that walks the full §4
// speculation flow on the Fig. 1(a) loop. With `-` reads commands from stdin
// (interactive); with a filename runs that script.
//
//   $ ./explore_shell
//   $ echo "build fig1a\nspeculate mux F last\ntiming" | ./explore_shell -
#include <fstream>
#include <iostream>
#include <sstream>

#include "shell/session.h"

namespace {

const char* kDemoScript = R"(
# --- Speculation in elastic systems: guided tour -------------------------
help
build fig1a
nodes
candidates
# step 1+2: the critical cycle runs EB -> G -> mux -> F -> EB; move F back
timing
tput 200 pc.out
# the naive fix (bubble insertion) halves throughput:
bubble mux.out
tput 200 pc.out
undo
# the paper's recipe: Shannon + early evaluation + sharing
speculate mux F 2bit
nodes
timing
tput 200 pc.out
bound
area
)";

}  // namespace

int main(int argc, char** argv) {
  esl::shell::Session session;

  if (argc > 1 && std::string(argv[1]) == "-") {
    std::string line;
    std::cout << "esl> " << std::flush;
    while (std::getline(std::cin, line)) {
      std::cout << session.execute(line) << "esl> " << std::flush;
    }
    std::cout << "\n";
    return 0;
  }

  std::string script = kDemoScript;
  if (argc > 1) {
    std::ifstream f(argv[1]);
    if (!f) {
      std::cerr << "cannot open script " << argv[1] << "\n";
      return 1;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    script = buf.str();
  }
  std::cout << session.runScript(script);
  return 0;
}
