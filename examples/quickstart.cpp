// Quickstart: make a design speculative in four lines.
//
// Builds the Fig. 1(a) loop (a PC-update micro-architecture whose branch
// decision G sits on the critical cycle), lets the toolkit find the
// speculation candidate, applies the §4 recipe, and compares the two designs.
//
//   $ ./quickstart
#include <cstdio>

#include "netlist/patterns.h"
#include "perf/area.h"
#include "perf/throughput.h"
#include "perf/timing.h"
#include "sim/simulator.h"
#include "transform/transform.h"

using namespace esl;

namespace {

void report(const char* label, Netlist& nl, ChannelId loop) {
  sim::Simulator s(nl, {.checkProtocol = true, .throwOnViolation = true});
  s.run(500);
  const double tput = s.throughput(loop);
  const double cycle = perf::analyzeTiming(nl).cycleTime;
  const double area = perf::areaReport(nl).total;
  std::printf("%-16s cycle=%5.1f  throughput=%.3f  eff.cycle=%5.1f  area=%6.1f\n",
              label, cycle, tput, perf::effectiveCycleTime(cycle, tput), area);
}

}  // namespace

int main() {
  std::printf("Speculation in elastic systems: quickstart\n");
  std::printf("-------------------------------------------\n");

  // A branch that is taken 10% of the time: a simple "predict not-taken"
  // scheduler will be right 90% of the time, which is the regime where
  // speculation pays (paper §2: "if the prediction strategy is sufficiently
  // accurate, the penalty of speculation will be rarely paid").
  patterns::Fig1Config cfg;
  cfg.takenPermille = 100;

  // 1. The non-speculative design: EB -> G -> mux -> F -> EB (Fig. 1a).
  auto before = patterns::buildFig1(patterns::Fig1Variant::kNonSpeculative, cfg);
  report("original", before.nl, before.loopChannel);

  // 2. Ask the toolkit where speculation applies.
  auto design = patterns::buildFig1(patterns::Fig1Variant::kNonSpeculative, cfg);
  const auto candidates = transform::findSpeculationCandidates(design.nl);
  for (const auto& c : candidates)
    std::printf("candidate: mux=%s func=%s%s\n", design.nl.node(c.mux).name().c_str(),
                design.nl.node(c.func).name().c_str(),
                c.onCriticalCycle ? "  (on critical cycle -> speculate!)" : "");

  // 3. Apply the correct-by-construction recipe: Shannon decomposition +
  //    early evaluation + sharing behind a last-served scheduler.
  transform::speculate(design.nl, candidates.at(0).mux, candidates.at(0).func,
                       std::make_unique<sched::StaticScheduler>(2, 0));
  design.nl.validate();
  report("speculative", design.nl, design.loopChannel);

  // 4. Functional equivalence is guaranteed; spot-check the PC stream.
  sim::Simulator s(design.nl);
  s.run(100);
  const auto& got = design.observer->transfers();
  const auto golden = patterns::fig1PcSequence(cfg, 32);
  for (std::size_t i = 0; i < golden.size(); ++i) {
    if (got.at(i).data.toUint64() != golden[i]) {
      std::printf("MISMATCH at %zu\n", i);
      return 1;
    }
  }
  std::printf("PC stream matches the golden sequence (%zu tokens checked).\n",
              golden.size());
  return 0;
}
