// Tests of the serve subsystem (src/serve/*): the JSON wire format, frame
// protocol, persistent sessions, the session-manager/scheduler, and the
// Unix-socket daemon end to end.
//
// The load-bearing contract gated here is determinism under concurrency:
// any interleaving of N concurrent sessions — across backends, shard counts,
// quantum chunking, LRU eviction and back-pressure parking — produces
// per-session results byte-identical to the same commands run serially.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "base/error.h"
#include "frontend/esl_format.h"
#include "netlist/patterns.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/session.h"

namespace esl::serve {
namespace {

SimSession::Options interpreted() { return {}; }

SimSession::Options compiled(unsigned shards = 1) {
  SimSession::Options opts;
  opts.backend = SimContext::Backend::kCompiled;
  opts.shards = shards;
  return opts;
}

std::unique_ptr<SimSession> makeSession(const std::string& design,
                                        SimSession::Options opts = {}) {
  return std::make_unique<SimSession>(patterns::designSpec(design), design,
                                      opts);
}

// --- JSON ------------------------------------------------------------------

TEST(ServeJson, RoundTripIsByteStable) {
  const std::string text =
      R"({"op":"step","id":7,"deep":[true,false,null,"a\nb\\\"c"],"n":2.5})";
  const json::Value v = json::Value::parse(text);
  EXPECT_EQ(v.dump(), text);
  EXPECT_EQ(json::Value::parse(v.dump()).dump(), text);
  EXPECT_EQ(v.find("id")->asU64(), 7u);
  EXPECT_EQ(v.find("op")->asString(), "step");
  EXPECT_EQ(v.find("deep")->items().size(), 4u);
  EXPECT_EQ(v.find("deep")->items()[3].asString(), "a\nb\\\"c");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ServeJson, LargeCountersSurviveExactly) {
  // Cycle counts and payload sizes ride JSON numbers; anything the protocol
  // produces stays below 2^53 and must round-trip without drift.
  const std::uint64_t big = (1ull << 53) - 1;
  json::Value head = json::Value::object();
  head.set("cycle", json::Value::number(big));
  EXPECT_EQ(json::Value::parse(head.dump()).find("cycle")->asU64(), big);
}

TEST(ServeJson, RejectsDamagedDocuments) {
  EXPECT_THROW(json::Value::parse("{\"a\":1} junk"), ParseError);
  EXPECT_THROW(json::Value::parse("{\"a\":}"), ParseError);
  EXPECT_THROW(json::Value::parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(json::Value::parse("\"\\q\""), ParseError);
  EXPECT_THROW(json::Value::parse(""), ParseError);
}

// --- Frame protocol (over a pipe — no sockets needed) ----------------------

TEST(ServeProtocol, FramesCarryBinaryPayloadsIntact) {
  int p[2];
  ASSERT_EQ(::pipe(p), 0);
  std::string payload("snap\0shot\nwith\xffnoise", 20);
  json::Value head = json::Value::object();
  head.set("id", json::Value::number(std::uint64_t{1}));
  head.set("op", json::Value::str("restore"));
  writeFrame(p[1], head, payload);
  json::Value plain = json::Value::object();
  plain.set("id", json::Value::number(std::uint64_t{2}));
  writeFrame(p[1], plain);
  ::close(p[1]);

  FrameReader reader(p[0]);
  Frame f;
  ASSERT_TRUE(reader.read(f));
  EXPECT_EQ(f.head.find("op")->asString(), "restore");
  EXPECT_EQ(f.head.find("bytes")->asU64(), payload.size());
  EXPECT_EQ(f.payload, payload);
  ASSERT_TRUE(reader.read(f));
  EXPECT_EQ(f.head.find("id")->asU64(), 2u);
  EXPECT_TRUE(f.payload.empty());
  EXPECT_FALSE(reader.read(f));  // clean EOF at a frame boundary
  ::close(p[0]);
}

TEST(ServeProtocol, MidFrameEofIsAProtocolError) {
  int p[2];
  ASSERT_EQ(::pipe(p), 0);
  const char torn[] = "{\"id\":1,\"op\":\"st";  // no newline, then hangup
  ASSERT_GT(::write(p[1], torn, sizeof torn - 1), 0);
  ::close(p[1]);
  FrameReader reader(p[0]);
  Frame f;
  EXPECT_THROW(reader.read(f), ProtocolError);
  ::close(p[0]);
}

TEST(ServeProtocol, PayloadMustBeNewlineTerminated) {
  int p[2];
  ASSERT_EQ(::pipe(p), 0);
  const char bad[] = "{\"id\":1,\"bytes\":3}\nabcX";
  ASSERT_GT(::write(p[1], bad, sizeof bad - 1), 0);
  ::close(p[1]);
  FrameReader reader(p[0]);
  Frame f;
  EXPECT_THROW(reader.read(f), ProtocolError);
  ::close(p[0]);
}

TEST(ServeProtocol, AbsurdDeclaredPayloadIsRejectedBeforeAllocation) {
  int p[2];
  ASSERT_EQ(::pipe(p), 0);
  // Declares ~9 PB. The reader must reject on the declared length alone —
  // nothing is buffered, allocated or waited for.
  const char huge[] = "{\"id\":1,\"bytes\":9007199254740991}\n";
  ASSERT_GT(::write(p[1], huge, sizeof huge - 1), 0);
  FrameReader reader(p[0]);
  Frame f;
  EXPECT_THROW(reader.read(f), ProtocolError);
  ::close(p[1]);
  ::close(p[0]);
}

TEST(ServeProtocol, PayloadCapIsConfigurable) {
  int p[2];
  ASSERT_EQ(::pipe(p), 0);
  const char over[] = "{\"id\":1,\"bytes\":17}\n";
  ASSERT_GT(::write(p[1], over, sizeof over - 1), 0);
  FrameReader reader(p[0], /*maxPayload=*/16);
  Frame f;
  EXPECT_THROW(reader.read(f), ProtocolError);
  ::close(p[1]);
  ::close(p[0]);
}

TEST(ServeProtocol, RunawayHeadLineIsBoundedByTheCap) {
  int p[2];
  ASSERT_EQ(::pipe(p), 0);
  // A "head" that never ends: the reader must give up once the buffered
  // line exceeds the cap, not accumulate it forever.
  const std::string junk(64, 'x');
  ASSERT_GT(::write(p[1], junk.data(), junk.size()), 0);
  FrameReader reader(p[0], /*maxPayload=*/16);
  Frame f;
  EXPECT_THROW(reader.read(f), ProtocolError);
  ::close(p[1]);
  ::close(p[0]);
}

TEST(ServeProtocol, GarbageAndNulFramesAreStructuredParseErrors) {
  int p[2];
  ASSERT_EQ(::pipe(p), 0);
  std::string junk("\x00\x01\xff{]garbage", 12);
  junk += '\n';
  ASSERT_GT(::write(p[1], junk.data(), junk.size()), 0);
  ::close(p[1]);
  FrameReader reader(p[0]);
  Frame f;
  EXPECT_THROW(reader.read(f), ParseError);
  ::close(p[0]);
}

TEST(ServeProtocol, MidPayloadEofIsAProtocolError) {
  int p[2];
  ASSERT_EQ(::pipe(p), 0);
  const char bad[] = "{\"id\":1,\"bytes\":100}\nabc";  // 3 of 100 bytes, EOF
  ASSERT_GT(::write(p[1], bad, sizeof bad - 1), 0);
  ::close(p[1]);
  FrameReader reader(p[0]);
  Frame f;
  EXPECT_THROW(reader.read(f), ProtocolError);
  ::close(p[0]);
}

TEST(ServeProtocol, ErrorKindsFollowTheExceptionHierarchy) {
  EXPECT_EQ(errorKind(NotFoundError("x")), "not-found");
  EXPECT_EQ(errorKind(AdmissionError("x")), "admission");
  EXPECT_EQ(errorKind(ParseError("x")), "parse");
  EXPECT_EQ(errorKind(ProtocolError("x")), "protocol");
  EXPECT_EQ(errorKind(EslError("x")), "error");
  EXPECT_EQ(errorKind(std::runtime_error("x")), "internal");
}

// --- SimSession ------------------------------------------------------------

TEST(ServeSession, ChunkedStepsMatchOneShot) {
  for (const auto& opts : {interpreted(), compiled(2)}) {
    auto oneShot = makeSession("fig1a", opts);
    oneShot->step(1000);
    auto chunked = makeSession("fig1a", opts);
    for (int i = 0; i < 4; ++i) chunked->step(250);
    EXPECT_EQ(oneShot->report(), chunked->report());
    EXPECT_EQ(oneShot->tputLine("pc.out"), chunked->tputLine("pc.out"));
    EXPECT_EQ(oneShot->snapshot(), chunked->snapshot());
  }
}

TEST(ServeSession, ForbiddenVerbsAreRejected) {
  auto s = makeSession("fig1a");
  for (const char* verb : {"sim 100", "tput pc.out", "trace 10 pc.out",
                           "build fig1b", "load x.esl", "save x.esl", "undo",
                           "redo"}) {
    EXPECT_THROW(s->command(verb), EslError) << verb;
  }
  // The transform/query surface stays open, mid-run netlist surgery included.
  EXPECT_NE(s->command("nodes"), "");
  s->step(100);
  EXPECT_NE(s->command("bubble pc.out"), "");
  s->step(100);
  EXPECT_EQ(s->cycle(), 200u);
}

TEST(ServeSession, SpoolRoundTripPreservesEveryReport) {
  auto a = makeSession("fig1a", compiled(2));
  a->command("bubble pc.out");
  a->step(500);
  auto b = SimSession::spoolLoad(a->spoolSave());
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->cycle(), 500u);
  EXPECT_EQ(b->origin(), a->origin());
  // A restored session's future is byte-identical to one that never left:
  // reports carry the pre-spool transfer history packState() excludes.
  EXPECT_EQ(a->report(), b->report());
  a->step(500);
  b->step(500);
  EXPECT_EQ(a->report(), b->report());
  EXPECT_EQ(a->tputLine("pc.out"), b->tputLine("pc.out"));
  EXPECT_EQ(a->snapshot(), b->snapshot());
}

TEST(ServeSession, SpoolLoadRejectsForeignRecords) {
  auto a = makeSession("fig1a");
  std::vector<std::uint8_t> record = a->spoolSave();
  record[0] ^= 0xff;  // break the magic
  EXPECT_THROW(SimSession::spoolLoad(record), EslError);
  EXPECT_THROW(SimSession::spoolLoad({1, 2, 3}), EslError);
}

TEST(ServeSession, RestoreHasLoadStateSemantics) {
  auto a = makeSession("fig1a");
  a->step(600);
  const std::vector<std::uint8_t> snap = a->snapshot();

  // Restoring into a dirty session equals loading into a fresh one: the
  // sequential state and cycle come from the snapshot, perf logs restart.
  auto dirty = makeSession("fig1a");
  dirty->step(123);
  dirty->restore(snap);
  EXPECT_EQ(dirty->cycle(), 600u);
  auto fresh = makeSession("fig1a");
  fresh->restore(snap);
  dirty->step(400);
  fresh->step(400);
  EXPECT_EQ(dirty->report(), fresh->report());
  EXPECT_EQ(dirty->snapshot(), fresh->snapshot());

  EXPECT_THROW(fresh->restore({0xde, 0xad, 0xbe, 0xef}), EslError);
}

TEST(ServeSession, StreamBytesAreChunkInvariant) {
  auto whole = makeSession("fig1a");
  whole->watch({"pc.out"});
  whole->step(200);
  const std::string serialStream = whole->drainStream();
  ASSERT_NE(serialStream.find("pc.out="), std::string::npos);

  auto pieces = makeSession("fig1a");
  pieces->watch({"pc.out"});
  std::string chunkedStream;
  for (int i = 0; i < 8; ++i) {
    pieces->step(25);
    chunkedStream += pieces->drainStream();
  }
  EXPECT_EQ(chunkedStream, serialStream);
}

// --- Service: scheduling, residency, determinism ---------------------------

// One scripted session: open, interleave transforms and chunked steps,
// snapshot, close. Returns the concatenated printable output.
struct GatePlan {
  std::string sid;
  std::string design;
  SimSession::Options opts;
  std::vector<std::string> cmds;          // run before the steps
  std::vector<std::uint64_t> stepChunks;  // step sizes, in order
};

std::string driveSerial(const GatePlan& p, std::vector<std::uint8_t>& snap) {
  SimSession s(patterns::designSpec(p.design), p.design, p.opts);
  std::string out;
  for (const std::string& cmd : p.cmds) out += s.command(cmd);
  for (const std::uint64_t n : p.stepChunks) {
    s.step(n);
    out += s.report();
  }
  snap = s.snapshot();
  return out;
}

// Retries AdmissionError: under a deliberately tight resident cap a burst of
// concurrent opens can momentarily find nothing evictable. The service must
// refuse (bounded memory), the client backs off — nothing partial happened.
template <typename F>
auto admitted(F f) {
  while (true) {
    try {
      return f();
    } catch (const AdmissionError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

std::string driveService(Service& svc, const GatePlan& p,
                         std::vector<std::uint8_t>& snap) {
  admitted([&] {
    return svc.open(p.sid, patterns::designSpec(p.design), p.design, p.opts);
  });
  std::string out;
  for (const std::string& cmd : p.cmds)
    out += admitted([&] { return svc.command(p.sid, cmd); });
  for (const std::uint64_t n : p.stepChunks)
    out += admitted([&] { return svc.step(p.sid, n); });
  snap = admitted([&] { return svc.snapshot(p.sid); });
  svc.close(p.sid);
  return out;
}

TEST(ServeService, ConcurrentSessionsMatchSerialByteForByte) {
  const std::vector<GatePlan> plans = {
      {"s0", "fig1a", interpreted(), {"bubble pc.out"}, {250, 250, 250, 250}},
      {"s1", "fig1a", compiled(2), {"bubble pc.out"}, {400, 600}},
      {"s2", "table1", interpreted(), {}, {500, 500}},
      {"s3", "fig1d", compiled(), {}, {1000}},
      {"s4", "vlu-spec", interpreted(), {}, {200, 800}},
      {"s5", "secded-spec", compiled(2), {}, {300, 700}},
  };

  // Serial references: each plan in isolation, no service in the loop.
  std::vector<std::string> serialOut(plans.size());
  std::vector<std::vector<std::uint8_t>> serialSnap(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i)
    serialOut[i] = driveSerial(plans[i], serialSnap[i]);

  // Concurrent run: six client threads, four lanes, a three-session resident
  // cap (forces spool eviction mid-run) and a 97-cycle quantum (forces steps
  // to interleave mid-flight).
  Service::Config cfg;
  cfg.workers = 4;
  cfg.maxResident = 3;
  cfg.quantumCycles = 97;
  Service svc(cfg);
  std::vector<std::string> liveOut(plans.size());
  std::vector<std::vector<std::uint8_t>> liveSnap(plans.size());
  std::vector<std::string> failures(plans.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    clients.emplace_back([&, i] {
      try {
        liveOut[i] = driveService(svc, plans[i], liveSnap[i]);
      } catch (const std::exception& e) {
        failures[i] = e.what();
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (std::size_t i = 0; i < plans.size(); ++i) {
    ASSERT_EQ(failures[i], "") << plans[i].sid;
    EXPECT_EQ(liveOut[i], serialOut[i]) << plans[i].sid;
    EXPECT_EQ(liveSnap[i], serialSnap[i]) << plans[i].sid;
  }
  const Service::Stats stats = svc.stats();
  EXPECT_EQ(stats.sessions, 0u);
  EXPECT_EQ(stats.resident, 0u);
  EXPECT_EQ(stats.opened, plans.size());
  EXPECT_LE(stats.peakResident, cfg.maxResident);
}

TEST(ServeService, EvictionAndRestoreAreTransparent) {
  // One resident slot, two sessions: every alternating touch spools one out
  // and pages the other in. Reports and snapshots must not notice.
  Service::Config cfg;
  cfg.workers = 1;
  cfg.maxResident = 1;
  cfg.quantumCycles = 50;
  Service svc(cfg);
  svc.open("a", patterns::designSpec("fig1a"), "fig1a", interpreted());
  const std::string a1 = svc.step("a", 300);
  svc.open("b", patterns::designSpec("table1"), "table1", interpreted());
  const std::string b1 = svc.step("b", 300);
  const std::string a2 = svc.step("a", 300);  // restore a, evict b
  const std::string b2 = svc.step("b", 300);  // restore b, evict a
  const std::vector<std::uint8_t> aSnap = svc.snapshot("a");
  const std::vector<std::uint8_t> bSnap = svc.snapshot("b");

  const Service::Stats stats = svc.stats();
  EXPECT_EQ(stats.resident, 1u);
  EXPECT_EQ(stats.peakResident, 1u);
  EXPECT_GE(stats.evictions, 3u);
  EXPECT_GE(stats.restores, 2u);

  auto serialA = makeSession("fig1a");
  serialA->step(300);
  EXPECT_EQ(a1, serialA->report());
  serialA->step(300);
  EXPECT_EQ(a2, serialA->report());
  EXPECT_EQ(aSnap, serialA->snapshot());
  auto serialB = makeSession("table1");
  serialB->step(300);
  EXPECT_EQ(b1, serialB->report());
  serialB->step(300);
  EXPECT_EQ(b2, serialB->report());
  EXPECT_EQ(bSnap, serialB->snapshot());

  svc.close("a");
  svc.close("b");
  EXPECT_EQ(svc.stats().sessions, 0u);
}

TEST(ServeService, AdmissionControlRefusesRatherThanGrows) {
  Service::Config cfg;
  cfg.workers = 1;
  cfg.maxResident = 1;
  Service svc(cfg);
  svc.open("pinned", patterns::designSpec("fig1a"), "fig1a", interpreted());
  svc.watch("pinned", {"pc.out"});  // watching pins the session resident

  EXPECT_THROW(
      svc.open("late", patterns::designSpec("fig1b"), "fig1b", interpreted()),
      AdmissionError);
  EXPECT_GE(svc.stats().denied, 1u);
  // The refused open left no residue; the same sid works once a slot frees.
  svc.watch("pinned", {});  // un-pin: now evictable
  svc.open("late", patterns::designSpec("fig1b"), "fig1b", interpreted());
  EXPECT_GE(svc.stats().evictions, 1u);
  auto serial = makeSession("fig1a");
  serial->step(100);
  EXPECT_EQ(svc.step("pinned", 100), serial->report());
  svc.close("pinned");
  svc.close("late");
}

TEST(ServeService, BackPressureParksWithoutChangingTheStream) {
  auto serial = makeSession("fig1a");
  serial->watch({"pc.out", "mux.out"});
  serial->step(400);
  const std::string serialStream = serial->drainStream();
  const std::string serialReport = serial->report();

  // High-water far below the 400-cycle stream: the session must park many
  // times and only finish because the drainer keeps pulling.
  Service::Config cfg;
  cfg.workers = 2;
  cfg.quantumCycles = 16;
  cfg.streamHighWater = 256;
  Service svc(cfg);
  svc.open("s", patterns::designSpec("fig1a"), "fig1a", interpreted());
  svc.watch("s", {"pc.out", "mux.out"});
  auto stepDone = std::async(std::launch::async,
                             [&] { return svc.step("s", 400); });
  std::string stream;
  bool more = true;
  while (stepDone.wait_for(std::chrono::milliseconds(1)) !=
             std::future_status::ready ||
         more) {
    stream += svc.drain("s", 96, &more);
    if (!more) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(stepDone.get(), serialReport);
  EXPECT_EQ(stream, serialStream);
  svc.close("s");
}

TEST(ServeService, CloseAbortsARunningStepAtAQuantumBoundary) {
  Service::Config cfg;
  cfg.workers = 2;
  cfg.quantumCycles = 200;
  Service svc(cfg);
  svc.open("s", patterns::designSpec("fig1a"), "fig1a", interpreted());
  auto bigStep = std::async(std::launch::async,
                            [&] { return svc.step("s", 50'000'000); });
  // A query would serialize behind the step in the session FIFO, so just give
  // the step time to claim the session, then close underneath it. Every
  // interleaving (close before, during, or after the step's first quantum)
  // must abort the step with "session closed" — never run it to completion.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  svc.close("s");  // must return: the turn aborts at its next boundary
  EXPECT_THROW(bigStep.get(), NotFoundError);
  EXPECT_TRUE(svc.sessionIds().empty());
}

TEST(ServeService, UnknownAndInvalidSessionsFailCleanly) {
  Service::Config cfg;
  cfg.workers = 1;
  Service svc(cfg);
  EXPECT_THROW(svc.step("ghost", 10), NotFoundError);
  EXPECT_THROW(svc.close("ghost"), NotFoundError);
  EXPECT_THROW(svc.open("bad id!", patterns::designSpec("fig1a"), "fig1a",
                        interpreted()),
               EslError);
  svc.open("dup", patterns::designSpec("fig1a"), "fig1a", interpreted());
  EXPECT_THROW(
      svc.open("dup", patterns::designSpec("fig1a"), "fig1a", interpreted()),
      EslError);
  EXPECT_THROW(svc.open("oops", patterns::designSpec("no-such-design"),
                        "no-such-design", interpreted()),
               EslError);
  svc.close("dup");
}

// --- Server + Client over a Unix socket ------------------------------------

std::string testSocketPath(const std::string& tag) {
  return "/tmp/esl-serve-ut-" + std::to_string(::getpid()) + "-" + tag +
         ".sock";
}

struct ServerFixture {
  explicit ServerFixture(const std::string& tag,
                         std::uint64_t maxPayload = kMaxPayloadBytes) {
    Server::Config cfg;
    cfg.socketPath = testSocketPath(tag);
    cfg.maxPayloadBytes = maxPayload;
    cfg.service.workers = 2;
    server = std::make_unique<Server>(std::move(cfg));
    thread = std::thread([this] { server->run(); });
  }
  ~ServerFixture() {
    server->requestStop();
    if (thread.joinable()) thread.join();
  }
  std::unique_ptr<Server> server;
  std::thread thread;
};

int rawConnect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  return fd;
}

TEST(ServeWire, EndToEndMatchesDirectSessions) {
  ServerFixture fx("e2e");
  Client client(fx.server->socketPath());

  auto serial = makeSession("fig1a", compiled(2));
  serial->step(1000);
  const std::string status =
      client.openDesign("s1", "fig1a", compiled(2));
  EXPECT_NE(status.find("s1"), std::string::npos);
  EXPECT_EQ(client.step("s1", 1000), serial->report());
  EXPECT_EQ(client.tput("s1", "pc.out"), serial->tputLine("pc.out"));
  EXPECT_EQ(client.cycle("s1"), 1000u);
  EXPECT_EQ(client.sinks("s1"), serial->report());
  const std::vector<std::uint8_t> snap = client.snapshot("s1");
  EXPECT_EQ(snap, serial->snapshot());

  // Inline `.esl` upload (payload path), then snapshot restore over the wire.
  const std::string esl = frontend::printEsl(patterns::designSpec("fig1a"));
  client.openEsl("s2", esl, "fig1a.esl", compiled(2));
  client.restore("s2", snap);
  EXPECT_EQ(client.cycle("s2"), 1000u);
  auto restored = makeSession("fig1a", compiled(2));
  restored->restore(snap);
  restored->step(500);
  EXPECT_EQ(client.step("s2", 500), restored->report());
  EXPECT_EQ(client.cmd("s2", "channels"), restored->command("channels"));

  client.close("s1");
  client.close("s2");
  const json::Value stats = client.stats();
  EXPECT_EQ(stats.find("sessions")->asU64(), 0u);
  EXPECT_EQ(stats.find("opened")->asU64(), 2u);
  client.shutdownServer();  // acknowledged before the server tears down
}

TEST(ServeWire, ServerErrorsCarryStructuredKinds) {
  ServerFixture fx("kinds");
  Client client(fx.server->socketPath());
  const auto expectKind = [](const std::function<void()>& op,
                             const std::string& kind) {
    try {
      op();
      FAIL() << "expected a '" << kind << "' failure";
    } catch (const EslError& e) {
      EXPECT_EQ(std::string(e.what()).rfind(kind + ":", 0), 0u) << e.what();
    }
  };
  expectKind([&] { client.step("ghost", 5); }, "not-found");
  expectKind([&] { client.openEsl("s", "channel oops", "bad.esl"); }, "parse");
  expectKind([&] { client.restore("ghost2", {1, 2, 3}); }, "not-found");
  client.openDesign("s", "fig1a");
  expectKind([&] { client.restore("s", {1, 2, 3}); }, "error");
  expectKind([&] { client.cmd("s", "sim 100"); }, "error");
  // A failed request leaves the session usable.
  EXPECT_EQ(client.cycle("s"), 0u);
  client.close("s");
}

TEST(ServeWire, HandshakeRejectsVersionMismatch) {
  ServerFixture fx("proto");
  const int fd = rawConnect(fx.server->socketPath());
  FrameReader reader(fd);
  Frame f;
  ASSERT_TRUE(reader.read(f));  // greeting
  EXPECT_EQ(f.head.find("serve")->asString(), "esl");
  EXPECT_EQ(f.head.find("proto")->asU64(), kProtocolVersion);

  json::Value hello = json::Value::object();
  hello.set("id", json::Value::number(std::uint64_t{1}));
  hello.set("op", json::Value::str("hello"));
  hello.set("proto", json::Value::number(std::uint64_t{999}));
  writeFrame(fd, hello);
  ASSERT_TRUE(reader.read(f));
  EXPECT_FALSE(f.head.find("ok")->asBool());
  EXPECT_EQ(f.head.find("error")->find("kind")->asString(), "protocol");
  EXPECT_FALSE(reader.read(f));  // server hung up after answering
  ::close(fd);
}

TEST(ServeWire, FirstRequestMustBeHello) {
  ServerFixture fx("hello");
  const int fd = rawConnect(fx.server->socketPath());
  FrameReader reader(fd);
  Frame f;
  ASSERT_TRUE(reader.read(f));  // greeting
  json::Value req = json::Value::object();
  req.set("id", json::Value::number(std::uint64_t{1}));
  req.set("op", json::Value::str("stats"));
  writeFrame(fd, req);
  ASSERT_TRUE(reader.read(f));
  EXPECT_FALSE(f.head.find("ok")->asBool());
  EXPECT_EQ(f.head.find("error")->find("kind")->asString(), "protocol");
  EXPECT_FALSE(reader.read(f));
  ::close(fd);
}

TEST(ServeWire, MalformedJsonGetsAnErrorFrameThenHangup) {
  ServerFixture fx("badjson");
  const int fd = rawConnect(fx.server->socketPath());
  FrameReader reader(fd);
  Frame f;
  ASSERT_TRUE(reader.read(f));  // greeting
  const char junk[] = "this is not json\n";
  ASSERT_GT(::write(fd, junk, sizeof junk - 1), 0);
  ASSERT_TRUE(reader.read(f));
  EXPECT_FALSE(f.head.find("ok")->asBool());
  EXPECT_EQ(f.head.find("error")->find("kind")->asString(), "parse");
  EXPECT_FALSE(reader.read(f));  // connection dropped
  ::close(fd);
}

TEST(ServeWire, ShutdownClosesEverySession) {
  ServerFixture fx("shutdown");
  {
    Client a(fx.server->socketPath());
    a.openDesign("left-open", "fig1a");
    a.step("left-open", 100);
    Client b(fx.server->socketPath());
    b.shutdownServer();  // another connection's sessions get torn down too
  }
  fx.thread.join();  // run() returns only once the service is empty
  EXPECT_TRUE(fx.server->service().sessionIds().empty());
  EXPECT_EQ(fx.server->service().stats().resident, 0u);
}

TEST(ServeWire, OversizedDeclaredPayloadGetsAStructuredError) {
  // Server configured with a 1 KiB frame cap: a request declaring a bigger
  // payload is answered with a structured protocol error — no hang while
  // "waiting" for bytes that will never come, no allocation of the claim.
  ServerFixture fx("cap", /*maxPayload=*/1024);
  const int fd = rawConnect(fx.server->socketPath());
  FrameReader reader(fd);
  Frame f;
  ASSERT_TRUE(reader.read(f));  // greeting
  json::Value hello = json::Value::object();
  hello.set("id", json::Value::number(std::uint64_t{1}));
  hello.set("op", json::Value::str("hello"));
  hello.set("proto", json::Value::number(kProtocolVersion));
  writeFrame(fd, hello);
  ASSERT_TRUE(reader.read(f));
  ASSERT_TRUE(f.head.find("ok")->asBool());
  const char big[] =
      "{\"id\":2,\"op\":\"restore\",\"session\":\"s\",\"bytes\":999999999}\n";
  ASSERT_GT(::write(fd, big, sizeof big - 1), 0);
  ASSERT_TRUE(reader.read(f));
  EXPECT_FALSE(f.head.find("ok")->asBool());
  EXPECT_EQ(f.head.find("error")->find("kind")->asString(), "protocol");
  EXPECT_FALSE(reader.read(f));  // connection dropped after the error
  ::close(fd);
}

TEST(ServeWire, ClientDistinguishesConnectFailureFromServerDeath) {
  // No daemon at all: ConnectError, after the configured retries.
  Client::Options quick;
  quick.retries = 1;
  quick.backoffMs = 1;
  EXPECT_THROW(Client(testSocketPath("nobody-home"), quick), ConnectError);

  // Daemon dies under a connected client: ConnectionLostError, not a hang.
  ServerFixture fx("dies");
  Client client(fx.server->socketPath());
  client.openDesign("s", "fig1a");
  fx.server->requestStop();
  fx.thread.join();  // sessions closed, connection fds shut down
  EXPECT_THROW(client.step("s", 10), ConnectionLostError);
}

TEST(ServeWire, ReplyDeadlineSurfacesAsTimeout) {
  ServerFixture fx("slow");
  Client::Options opts;
  opts.timeoutMs = 60;
  Client client(fx.server->socketPath(), opts);
  client.openDesign("s", "fig1a");
  // A step far larger than 60 ms of simulation: the reply deadline fires as
  // TimeoutError (exit code 4 in `esl client`), not a silent forever-wait.
  EXPECT_THROW(client.step("s", 200'000'000), TimeoutError);
}

}  // namespace
}  // namespace esl::serve
