#include "shell/session.h"

#include <gtest/gtest.h>

namespace esl::shell {
namespace {

TEST(Shell, SaveLoadRoundTripPreservesBehaviour) {
  const std::string path = testing::TempDir() + "esl_shell_roundtrip.esl";
  Session a;
  a.execute("build fig1a");
  EXPECT_NE(a.execute("speculate mux F rr").find("speculation applied"),
            std::string::npos);
  EXPECT_NE(a.execute("save " + path).find("saved"), std::string::npos);
  const std::string simA = a.execute("sim 300");

  Session b;
  EXPECT_NE(b.execute("load " + path).find("loaded '" + path + "'"),
            std::string::npos);
  EXPECT_EQ(b.execute("sim 300"), simA);
  // The loaded spec is the session's base design: transformations on top of
  // it replay through undo/redo exactly like `build`-based sessions.
  const std::string before = b.execute("nodes");
  b.execute("bubble pc.out");
  EXPECT_NE(b.execute("nodes"), before);
  b.execute("undo");
  EXPECT_EQ(b.execute("nodes"), before);
}

TEST(Shell, PrintEmitsParseableEsl) {
  Session s;
  s.execute("build table1");
  const std::string text = s.execute("print");
  EXPECT_EQ(text.rfind("esl 1;", 0), 0u) << text;
  EXPECT_NE(text.find("node shared F"), std::string::npos);
}

TEST(Shell, LoadReportsMissingFile) {
  Session s;
  EXPECT_NE(s.execute("load /no/such/file.esl").find("error:"), std::string::npos);
}

TEST(Shell, SpeculateAcceptsEveryCatalogScheduler) {
  // makeSched resolves through the Registry catalog, so the shell accepts
  // every serializable policy (not just the hand-listed subset it once had).
  for (const std::string sched :
       {"static0", "static1", "rr", "last", "2bit", "timeout", "bounded-fair"}) {
    Session s;
    s.execute("build fig1a");
    EXPECT_NE(s.execute("speculate mux F " + sched).find("speculation applied"),
              std::string::npos)
        << sched;
  }
  Session s;
  s.execute("build fig1a");
  EXPECT_NE(s.execute("speculate mux F warp").find("error: unknown scheduler"),
            std::string::npos);
}

TEST(Shell, BuildAndInspect) {
  Session s;
  EXPECT_NE(s.execute("build fig1a").find("loaded 'fig1a'"), std::string::npos);
  const std::string nodes = s.execute("nodes");
  EXPECT_NE(nodes.find("mux"), std::string::npos);
  EXPECT_NE(nodes.find("(eb)"), std::string::npos);
  const std::string channels = s.execute("channels");
  EXPECT_NE(channels.find("pc.out"), std::string::npos);
}

TEST(Shell, ErrorsAreReportedNotThrown) {
  Session s;
  EXPECT_NE(s.execute("nodes").find("error: no design loaded"), std::string::npos);
  s.execute("build fig1a");
  EXPECT_NE(s.execute("frobnicate").find("error: unknown command"), std::string::npos);
  EXPECT_NE(s.execute("bubble nosuch").find("error:"), std::string::npos);
  EXPECT_NE(s.execute("build nosuch").find("error: unknown design"), std::string::npos);
}

TEST(Shell, CandidatesAndSpeculationRecipe) {
  Session s;
  s.execute("build fig1a");
  const std::string cand = s.execute("candidates");
  EXPECT_NE(cand.find("mux=mux func=F"), std::string::npos);
  EXPECT_NE(cand.find("critical cycle"), std::string::npos);

  const std::string out = s.execute("speculate mux F last");
  EXPECT_NE(out.find("shared module"), std::string::npos);
  // The shared module now exists; the duplicated copies do not.
  const std::string nodes = s.execute("nodes");
  EXPECT_NE(nodes.find("(shared)"), std::string::npos);
  EXPECT_NE(nodes.find("(ee-mux)"), std::string::npos);
}

TEST(Shell, UndoRedoByReplay) {
  Session s;
  s.execute("build fig1a");
  const std::string before = s.execute("nodes");
  s.execute("bubble mux.out");
  const std::string mutated = s.execute("nodes");
  EXPECT_NE(before, mutated);

  EXPECT_NE(s.execute("undo").find("undone"), std::string::npos);
  EXPECT_EQ(s.execute("nodes"), before);

  EXPECT_NE(s.execute("redo").find("redone"), std::string::npos);
  EXPECT_EQ(s.execute("nodes"), mutated);

  EXPECT_NE(s.execute("undo").find("undone"), std::string::npos);
  EXPECT_NE(s.execute("undo").find("error: nothing to undo"), std::string::npos);
}

TEST(Shell, ThroughputReflectsBubbleInsertion) {
  Session s;
  s.execute("build fig1a");
  const std::string t1 = s.execute("tput 200 pc.out");
  EXPECT_NE(t1.find("1.0000"), std::string::npos);
  s.execute("bubble mux.out");
  const std::string t2 = s.execute("tput 200 pc.out");
  EXPECT_NE(t2.find("0.5"), std::string::npos);  // bubble halves it
}

TEST(Shell, SimTimingAreaBoundEmitters) {
  Session s;
  s.execute("build table1");
  EXPECT_NE(s.execute("sim 20").find("sink 'sink':"), std::string::npos);
  EXPECT_NE(s.execute("timing").find("cycle time"), std::string::npos);
  EXPECT_NE(s.execute("bound").find("throughput bound"), std::string::npos);
  EXPECT_NE(s.execute("area").find("total"), std::string::npos);
  EXPECT_NE(s.execute("dot").find("digraph"), std::string::npos);
  EXPECT_NE(s.execute("verilog").find("module esl_eb"), std::string::npos);
  EXPECT_NE(s.execute("smv").find("MODULE main"), std::string::npos);
  EXPECT_NE(s.execute("blif").find(".model"), std::string::npos);
}

TEST(Shell, TraceRendersTable) {
  Session s;
  s.execute("build table1");
  const std::string trace = s.execute("trace 7 Fin0 Fout0 Fin1 Fout1 EBin");
  EXPECT_NE(trace.find("Cycle"), std::string::npos);
  EXPECT_NE(trace.find("Fin0"), std::string::npos);
  EXPECT_NE(trace.find("-"), std::string::npos);  // anti-token cells
  EXPECT_NE(trace.find("*"), std::string::npos);  // bubble cells
}

TEST(Shell, ScriptRunsTheWholeSection4Flow) {
  Session s;
  const std::string out = s.runScript(R"(
    # Section 4 recipe on the Fig. 1(a) loop
    build fig1a
    candidates
    speculate mux F 2bit
    tput 300 pc.out
    timing
    area
  )");
  EXPECT_NE(out.find("esl> build fig1a"), std::string::npos);
  EXPECT_NE(out.find("speculation applied"), std::string::npos);
  EXPECT_NE(out.find("throughput(pc.out)"), std::string::npos);
  EXPECT_NE(out.find("cycle time"), std::string::npos);
}

TEST(Shell, AllBaseDesignsLoadAndSimulate) {
  for (const std::string& d : Session::designNames()) {
    Session s;
    EXPECT_NE(s.execute("build " + d).find("loaded"), std::string::npos) << d;
    const std::string sim = s.execute("sim 50");
    EXPECT_NE(sim.find("protocol violations: 0"), std::string::npos)
        << d << ": " << sim;
  }
}

TEST(Shell, ManualStepwiseRecipeMatchesSpeculate) {
  // shannon + early can be applied step by step as in the paper.
  Session s;
  s.execute("build fig1a");
  EXPECT_NE(s.execute("shannon mux F").find("duplicated into 2 copies"),
            std::string::npos);
  EXPECT_NE(s.execute("early mux").find("early evaluation"), std::string::npos);
  const std::string nodes = s.execute("nodes");
  EXPECT_NE(nodes.find("F0"), std::string::npos);
  EXPECT_NE(nodes.find("F1"), std::string::npos);
  EXPECT_NE(nodes.find("(ee-mux)"), std::string::npos);
  // Still functional: full throughput with both copies present.
  EXPECT_NE(s.execute("tput 200 pc.out").find("1.0000"), std::string::npos);
}

}  // namespace
}  // namespace esl::shell
