#include "elastic/buffer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace esl {
namespace {

using test::iota;
using test::receivedCycles;
using test::receivedValues;

TEST(ElasticBuffer, ForwardLatencyOne) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8);
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(10);
  // Token 0 enters the EB at cycle 0 and reaches the sink at cycle 1 (Lf=1);
  // thereafter one token per cycle.
  EXPECT_EQ(receivedValues(sink), iota(9));
  EXPECT_EQ(receivedCycles(sink), iota(9, 1));
}

TEST(ElasticBuffer, InitialTokenAvailableImmediately) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8, 10));
  auto& eb = nl.make<ElasticBuffer>("eb", 8, 2, std::vector<BitVec>{BitVec(8, 99)});
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(5);
  const auto vals = receivedValues(sink);
  ASSERT_GE(vals.size(), 2u);
  EXPECT_EQ(vals[0], 99u);  // the initial token, at cycle 0
  EXPECT_EQ(vals[1], 10u);
  EXPECT_EQ(receivedCycles(sink)[0], 0u);
}

TEST(ElasticBuffer, BackpressureLosesNothing) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8);
  // Sink accepts only every third cycle.
  auto& sink = nl.make<TokenSink>("sink", 8,
                                  [](std::uint64_t c) { return c % 3 == 0; });
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(31);
  EXPECT_EQ(receivedValues(sink), iota(10));  // in order, no loss, no dup
}

TEST(ElasticBuffer, ThroughputOneWhenUncontended) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 4, TokenSource::counting(4));
  auto& eb = nl.make<ElasticBuffer>("eb", 4);
  auto& sink = nl.make<TokenSink>("sink", 4);
  const ChannelId up = nl.connect(src, 0, eb, 0);
  const ChannelId down = nl.connect(eb, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(100);
  EXPECT_DOUBLE_EQ(s.throughput(up), 1.0);
  EXPECT_NEAR(s.throughput(down), 0.99, 0.011);  // one cycle of fill latency
}

TEST(ElasticBuffer, StopIsRegisteredLb1) {
  // With a never-ready sink, the source can inject exactly C=2 tokens before
  // the (one-cycle-late) stop reaches it; nothing is lost.
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8);
  auto& sink = nl.make<TokenSink>("sink", 8, [](std::uint64_t) { return false; });
  const ChannelId up = nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(10);
  EXPECT_EQ(s.channelStats(up).fwdTransfers, 2u);  // capacity bound
  EXPECT_EQ(eb.occupancy(), 2);
  EXPECT_EQ(sink.received(), 0u);
}

TEST(ElasticBuffer, CapacityBelowTwoRejected) {
  EXPECT_THROW(ElasticBuffer("bad", 8, 1), EslError);
}

TEST(ElasticBuffer, TooManyInitTokensRejected) {
  EXPECT_THROW(
      ElasticBuffer("bad", 8, 2,
                    std::vector<BitVec>{BitVec(8, 0), BitVec(8, 1), BitVec(8, 2)}),
      EslError);
}

TEST(ElasticBuffer, InitTokensAndAntiTokensExclusive) {
  EXPECT_THROW(ElasticBuffer("bad", 8, 2, std::vector<BitVec>{BitVec(8, 0)}, 2, 1),
               EslError);
}

TEST(ElasticBuffer, AntiTokenKillsStoredToken) {
  // Sink emits one anti-token at cycle 0; it reaches the EB and cancels the
  // head token, so the sink's stream starts at the next value.
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8);
  auto& sink = nl.make<TokenSink>("sink", 8, TokenSink::Gate{}, 1,
                                  [](std::uint64_t c) { return c == 0; });
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(10);
  const auto vals = receivedValues(sink);
  ASSERT_FALSE(vals.empty());
  EXPECT_EQ(vals.front(), 1u);  // token 0 was annihilated
  EXPECT_EQ(vals, iota(vals.size(), 1));
}

TEST(ElasticBuffer, InitialAntiTokenCancelsFirstArrival) {
  // An EB initialized with one anti-token models "0 = 1 - 1" (paper §3.3).
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8, 2, std::vector<BitVec>{}, 2,
                                    /*initAntiTokens=*/1);
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(10);
  const auto vals = receivedValues(sink);
  ASSERT_FALSE(vals.empty());
  EXPECT_EQ(vals, iota(vals.size(), 1));  // token 0 killed by the anti-token
  EXPECT_EQ(src.killed(), 1u);
}

TEST(ElasticBuffer0, ZeroBackwardLatency) {
  // EB0 passes the anti-token combinationally: emitted at cycle 0, it kills
  // the source's token in the same cycle (with an EB it would take a cycle).
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb0 = nl.make<ElasticBuffer0>("eb0", 8);
  auto& sink = nl.make<TokenSink>("sink", 8, TokenSink::Gate{}, 1,
                                  [](std::uint64_t c) { return c == 0; });
  const ChannelId up = nl.connect(src, 0, eb0, 0);
  nl.connect(eb0, 0, sink, 0);

  sim::Simulator s(nl);
  s.step();
  EXPECT_EQ(s.channelStats(up).kills, 1u);  // killed at cycle 0, upstream
  s.run(9);
  EXPECT_EQ(receivedValues(sink), iota(8, 1));
}

TEST(ElasticBuffer0, FullThroughput) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb0 = nl.make<ElasticBuffer0>("eb0", 8);
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(src, 0, eb0, 0);
  nl.connect(eb0, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(20);
  EXPECT_EQ(receivedValues(sink), iota(19));  // Lf=1, then 1 token/cycle
}

TEST(ElasticBuffer0, CapacityOneUnderBackpressure) {
  // C = Lf + Lb = 1: with a blocked sink only one token can enter, and the
  // combinational stop (Lb=0) holds the sender without loss.
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb0 = nl.make<ElasticBuffer0>("eb0", 8);
  auto& sink = nl.make<TokenSink>("sink", 8, [](std::uint64_t c) { return c >= 5; });
  const ChannelId up = nl.connect(src, 0, eb0, 0);
  nl.connect(eb0, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(5);
  EXPECT_EQ(s.channelStats(up).fwdTransfers, 1u);
  s.run(10);
  EXPECT_EQ(receivedValues(sink), iota(10));  // nothing lost once unblocked
}

TEST(BrokenBuffer, ViolatingCapacityTheoremLosesTokens) {
  // C=1 with a registered (Lb=1-style) stop violates C >= Lf+Lb (paper §3.2):
  // the sender overruns the slot and a token is overwritten.
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& bad = nl.make<BrokenBuffer>("bad", 8);
  auto& sink = nl.make<TokenSink>("sink", 8, [](std::uint64_t c) { return c >= 4; });
  nl.connect(src, 0, bad, 0);
  nl.connect(bad, 0, sink, 0);

  sim::Simulator s(nl, {.checkProtocol = false});
  s.run(20);
  const auto vals = receivedValues(sink);
  ASSERT_FALSE(vals.empty());
  // The stream has a gap: token(s) lost to the overrun.
  EXPECT_NE(vals, iota(vals.size()));
}

TEST(ElasticBuffer, ChainPreservesStreamUnderRandomStalls) {
  // Longer pipeline with pseudo-random sink readiness: in-order, lossless.
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb1 = nl.make<ElasticBuffer>("eb1", 8);
  auto& eb2 = nl.make<ElasticBuffer>("eb2", 8);
  auto& eb3 = nl.make<ElasticBuffer0>("eb3", 8);
  auto& sink = nl.make<TokenSink>(
      "sink", 8, [](std::uint64_t c) { return hashChancePermille(c, 600, 11); });
  nl.connect(src, 0, eb1, 0);
  nl.connect(eb1, 0, eb2, 0);
  nl.connect(eb2, 0, eb3, 0);
  nl.connect(eb3, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(200);
  const auto vals = receivedValues(sink);
  EXPECT_GT(vals.size(), 50u);
  EXPECT_EQ(vals, iota(vals.size()));
}

}  // namespace
}  // namespace esl
