// Sharded single-netlist simulation: bit-identity against the serial kernels.
//
// The sharded cycle mode (SimContext::setShards) partitions ONE netlist
// across worker lanes: level-synchronous settle rounds with staged boundary
// exchange, shard-parallel dirty-tracked clock edges. Its contract is strict:
// settled signals and packed state are bit-identical to the serial
// event-driven kernel for EVERY shard count — enforced here over all four
// synthetic topology families (with the diff_kernels_util shrink-on-failure
// harness), the paper patterns, wide (spilled) payloads, and cross-check
// mode, which under shards compares the sharded settle against the reference
// sweep every cycle.
//
// This suite carries the `sharded-kernel` CTest label so the ThreadSanitizer
// CI leg can select it: the staged boundary writes, the ownership-filtered
// edge marks and the executor handoff must all be clean under real threads.
#include <gtest/gtest.h>

#include "diff_kernels_util.h"
#include "netlist/patterns.h"
#include "test_util.h"

namespace esl {
namespace {

const unsigned kShardCounts[] = {1, 2, 8};

synth::SynthConfig famConfig(synth::Topology topo, std::size_t nodes,
                             unsigned inject, std::uint64_t seed,
                             unsigned width = 16) {
  synth::SynthConfig cfg;
  cfg.topology = topo;
  cfg.targetNodes = nodes;
  cfg.seed = seed;
  cfg.injectPeriod = inject;
  cfg.width = width;
  return cfg;
}

TEST(ShardedKernel, AllSynthFamiliesBitIdentical) {
  for (const synth::Topology topo :
       {synth::Topology::kPipeline, synth::Topology::kForkJoin,
        synth::Topology::kSpecLadder, synth::Topology::kRandomDag}) {
    for (const unsigned shards : kShardCounts) {
      for (const unsigned inject : {1u, 8u}) {
        const synth::SynthConfig cfg = famConfig(topo, 240, inject, 7);
        SCOPED_TRACE(synth::describe(cfg) + " shards=" + std::to_string(shards));
        auto mismatch = test::diffShardedOnce(cfg, 300, shards);
        if (mismatch) {
          // Shrink the offending config before reporting (same harness as the
          // event-vs-sweep differential fuzz).
          synth::SynthConfig bad = cfg;
          std::uint64_t cycles = 300;
          test::shrinkSynthConfig(
              bad, cycles,
              [shards](const synth::SynthConfig& cand, std::uint64_t n) {
                return test::diffShardedOnce(cand, n, shards).has_value();
              });
          FAIL() << "sharded divergence on " << synth::describe(bad) << " ("
                 << cycles
                 << " cycles): " << *test::diffShardedOnce(bad, cycles, shards);
        }
      }
    }
  }
}

TEST(ShardedKernel, WidePayloadsSpillCleanly) {
  // >64-bit payloads exercise the SignalBoard's BitVec spill table, including
  // the boundary back-buffer when the channel crosses a shard cut.
  for (const unsigned shards : kShardCounts) {
    const synth::SynthConfig cfg =
        famConfig(synth::Topology::kPipeline, 120, 2, 3, /*width=*/80);
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const auto mismatch = test::diffShardedOnce(cfg, 200, shards);
    EXPECT_FALSE(mismatch.has_value()) << *mismatch;
  }
}

TEST(ShardedKernel, NondetEnvironmentsDrawIdenticalChoices) {
  // The stateless (seed, cycle, node, index) choice provider is what makes
  // the sharded pre-resolution identical to the serial lazy resolution; run
  // a nondet-environment system across shard counts and compare end state.
  auto run = [](unsigned shards, std::uint64_t seed) {
    synth::SynthConfig cfg = famConfig(synth::Topology::kPipeline, 60, 1, seed);
    cfg.nondetEnv = true;
    synth::SynthSystem sys = synth::build(cfg);
    sim::SimOptions opts;
    opts.checkProtocol = false;
    opts.seed = seed;
    opts.shards = shards;
    sim::Simulator s(sys.nl, opts);
    s.run(250);
    return s.ctx().packState();
  };
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto ref = run(1, seed);
    for (const unsigned shards : {2u, 8u})
      EXPECT_EQ(ref, run(shards, seed)) << "seed " << seed << ", " << shards
                                        << " shards";
  }
}

TEST(ShardedKernel, PaperPatternsUnderCrossCheck) {
  // Cross-check mode with shards settles sharded AND with the reference
  // sweep from the same pre-settle signals every cycle, throwing on any
  // per-channel disagreement — running is the assertion.
  for (const unsigned shards : {2u, 8u}) {
    for (const auto variant :
         {patterns::Fig1Variant::kNonSpeculative, patterns::Fig1Variant::kSpeculative}) {
      auto sys = patterns::buildFig1(variant);
      sim::SimOptions opts;
      opts.checkProtocol = true;
      opts.throwOnViolation = false;
      opts.crossCheckKernels = true;
      opts.shards = shards;
      sim::Simulator s(sys.nl, opts);
      ASSERT_NO_THROW(s.run(300)) << shards << " shards";
    }
  }
}

TEST(ShardedKernel, SecdedPipelineAcrossShardCounts) {
  // A real datapath (72-bit SECDED words) rather than a synthetic family:
  // identical sink streams and stats for every shard count.
  auto run = [](unsigned shards) {
    auto sys = patterns::buildSecdedSpeculative();
    sim::SimOptions opts;
    opts.checkProtocol = false;
    opts.shards = shards;
    sim::Simulator s(sys.nl, opts);
    s.run(400);
    return s.ctx().packState();
  };
  const auto ref = run(1);
  for (const unsigned shards : {2u, 3u, 8u}) EXPECT_EQ(ref, run(shards));
}

TEST(ShardedKernel, ShardCountChangeMidRunPreservesSignals) {
  // setShards re-partitions and re-lays the SignalBoard mid-simulation; the
  // per-channel values must survive the slot permutation so the stream
  // continues exactly where it left off.
  auto reference = [] {
    synth::SynthSystem sys =
        synth::build(famConfig(synth::Topology::kPipeline, 80, 2, 5));
    sim::SimOptions opts;
    opts.checkProtocol = false;
    sim::Simulator s(sys.nl, opts);
    s.run(240);
    return s.ctx().packState();
  }();

  synth::SynthSystem sys =
      synth::build(famConfig(synth::Topology::kPipeline, 80, 2, 5));
  sim::SimOptions opts;
  opts.checkProtocol = false;
  sim::Simulator s(sys.nl, opts);
  s.run(80);
  s.ctx().setShards(4);
  s.run(80);
  s.ctx().setShards(2);
  s.run(80);
  EXPECT_EQ(s.ctx().packState(), reference);
}

/// Ill-formed node oscillating on its own output (the read-back is stale
/// under staging, so the oscillation surfaces as round-to-round flapping).
class ShardOscillator : public Node {
 public:
  explicit ShardOscillator(std::string name) : Node(std::move(name)) {
    declareOutput(1);
  }
  void evalComb(SimContext& ctx) override {
    Sig out = ctx.sig(output(0));
    const bool flipped = !out.vf();
    out.setVf(flipped);
    out.setData(BitVec(1, flipped ? 1 : 0));
    out.setSb(false);
  }
  std::string kindName() const override { return "shard-oscillator"; }
};

TEST(ShardedKernel, CombinationalCycleDetectedUnderShards) {
  // The per-node eval budget is shard-local too: an oscillator must raise
  // CombinationalCycleError (after finitely many rounds), not hang the
  // round loop.
  Netlist nl;
  auto& osc = nl.make<ShardOscillator>("osc");
  auto& sink = nl.make<TokenSink>("sink", 1);
  nl.connect(osc, 0, sink, 0);
  SimContext ctx(nl);
  ctx.setShards(2);
  EXPECT_THROW(ctx.settle(), CombinationalCycleError);
  // The aborted settle must not leave boundary staging active: a fallback to
  // the reference sweep kernel (or any external write) must hit the front
  // planes, so the sweep detects the same oscillation instead of silently
  // converging on stale signals.
  ctx.setKernel(SimContext::SettleKernel::kSweep);
  EXPECT_THROW(ctx.settle(), CombinationalCycleError);
}

TEST(ShardedKernel, ShardedStatsMatchSerial) {
  // Channel statistics are a post-settle bitplane sweep, so they must be
  // oblivious to the shard count as well.
  auto run = [](unsigned shards) {
    synth::SynthSystem sys =
        synth::build(famConfig(synth::Topology::kForkJoin, 120, 2, 9));
    sim::SimOptions opts;
    opts.checkProtocol = false;
    opts.shards = shards;
    sim::Simulator s(sys.nl, opts);
    s.run(300);
    std::vector<std::uint64_t> counts;
    for (const ChannelId ch : sys.nl.channelIds()) {
      counts.push_back(s.channelStats(ch).fwdTransfers);
      counts.push_back(s.channelStats(ch).kills);
      counts.push_back(s.channelStats(ch).bwdTransfers);
    }
    return counts;
  };
  const auto ref = run(1);
  for (const unsigned shards : {2u, 8u}) EXPECT_EQ(ref, run(shards));
}

}  // namespace
}  // namespace esl
