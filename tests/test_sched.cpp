// Unit tests for the scheduler library (paper §4.1.1), exercised directly
// through the Scheduler interface (no netlist).
#include "sched/scheduler.h"

#include <gtest/gtest.h>

namespace esl::sched {
namespace {

const ChoiceReader kNoChoice = [](unsigned) { return false; };

Observation obs(unsigned channels) {
  Observation o;
  o.valid.assign(channels, false);
  o.demand.assign(channels, false);
  o.served.assign(channels, false);
  o.killed.assign(channels, false);
  return o;
}

TEST(StaticScheduler, AlwaysPredictsPick) {
  StaticScheduler s(2, 1);
  EXPECT_EQ(s.predict({}, kNoChoice), 1u);
  auto o = obs(2);
  o.served[1] = true;
  s.observe(o);
  EXPECT_EQ(s.predict({}, kNoChoice), 1u);
}

TEST(StaticScheduler, PickOutOfRangeThrows) {
  EXPECT_THROW(StaticScheduler(2, 2), EslError);
}

TEST(StaticScheduler, DemandLocksUntilServed) {
  StaticScheduler s(2, 0);
  auto demand1 = obs(2);
  demand1.demand[1] = true;
  s.observe(demand1);
  EXPECT_EQ(s.predict({}, kNoChoice), 1u);  // corrected
  // Not served yet: the lock holds even over idle cycles.
  s.observe(obs(2));
  EXPECT_EQ(s.predict({}, kNoChoice), 1u);
  auto served1 = obs(2);
  served1.served[1] = true;
  s.observe(served1);
  EXPECT_EQ(s.predict({}, kNoChoice), 0u);  // back to the base pick
}

TEST(StaticScheduler, KillReleasesTheLock) {
  StaticScheduler s(2, 0);
  auto demand1 = obs(2);
  demand1.demand[1] = true;
  s.observe(demand1);
  auto killed1 = obs(2);
  killed1.killed[1] = true;
  s.observe(killed1);
  EXPECT_EQ(s.predict({}, kNoChoice), 0u);
}

TEST(StaticScheduler, FalseDemandAgesOut) {
  // A demand that is never served or killed (back-pressure from a full EB
  // masquerading as a demand) must not wedge the scheduler forever.
  StaticScheduler s(2, 0);
  auto demand1 = obs(2);
  demand1.demand[1] = true;
  s.observe(demand1);
  EXPECT_EQ(s.predict({}, kNoChoice), 1u);
  for (int i = 0; i < 10; ++i) s.observe(obs(2));
  EXPECT_EQ(s.predict({}, kNoChoice), 0u);  // lock released
}

TEST(RoundRobinScheduler, AlternatesEveryCycle) {
  RoundRobinScheduler s(2);
  EXPECT_EQ(s.predict({}, kNoChoice), 0u);
  s.observe(obs(2));
  EXPECT_EQ(s.predict({}, kNoChoice), 1u);
  s.observe(obs(2));
  EXPECT_EQ(s.predict({}, kNoChoice), 0u);
}

TEST(RoundRobinScheduler, DemandReanchorsRotation) {
  // This is exactly the Sched row of Table 1.
  RoundRobinScheduler s(2);
  const bool demandAt[] = {false, false, true, false, false, true, false};
  const unsigned expect[] = {0, 1, 0, 1, 0, 1, 0};
  const bool servedAt[] = {true, true, false, true, true, false, true};
  for (int c = 0; c < 7; ++c) {
    EXPECT_EQ(s.predict({}, kNoChoice), expect[c]) << "cycle " << c;
    auto o = obs(2);
    if (demandAt[c]) o.demand[1 - expect[c]] = true;
    if (servedAt[c]) o.served[expect[c]] = true;
    s.observe(o);
  }
}

TEST(LastServedScheduler, TracksLastService) {
  LastServedScheduler s(2);
  EXPECT_EQ(s.predict({}, kNoChoice), 0u);
  auto o = obs(2);
  o.served[1] = true;
  s.observe(o);
  EXPECT_EQ(s.predict({}, kNoChoice), 1u);
  s.observe(obs(2));
  EXPECT_EQ(s.predict({}, kNoChoice), 1u);  // sticky until contradicted
}

TEST(TwoBitScheduler, SaturatesLikeABranchPredictor) {
  TwoBitScheduler s;
  EXPECT_EQ(s.predict({}, kNoChoice), 0u);  // weakly 0 initially
  auto serve1 = obs(2);
  serve1.served[1] = true;
  s.observe(serve1);  // counter 1 -> 2
  EXPECT_EQ(s.predict({}, kNoChoice), 1u);
  auto serve0 = obs(2);
  serve0.served[0] = true;
  s.observe(serve0);  // 2 -> 1
  EXPECT_EQ(s.predict({}, kNoChoice), 0u);
  // One stray service does not flip a saturated counter.
  s.observe(serve0);  // 1 -> 0
  s.observe(serve1);  // 0 -> 1
  EXPECT_EQ(s.predict({}, kNoChoice), 0u);
}

TEST(OracleScheduler, FollowsTruthPerFiring) {
  OracleScheduler s(2, [](std::uint64_t k) { return unsigned(k % 2); });
  EXPECT_EQ(s.predict({}, kNoChoice), 0u);
  auto o = obs(2);
  o.served[0] = true;
  s.observe(o);
  EXPECT_EQ(s.predict({}, kNoChoice), 1u);
  // No service -> prediction does not advance.
  s.observe(obs(2));
  EXPECT_EQ(s.predict({}, kNoChoice), 1u);
}

TEST(TimeoutScheduler, RotatesOnlyWhenWorkIsStuck) {
  TimeoutScheduler s(2, 1);
  EXPECT_EQ(s.predict({}, kNoChoice), 0u);
  // Idle (no valid input): never rotates.
  for (int i = 0; i < 5; ++i) s.observe(obs(2));
  EXPECT_EQ(s.predict({}, kNoChoice), 0u);
  // Valid work but nothing served: rotates after the timeout.
  auto stuck = obs(2);
  stuck.valid[1] = true;
  s.observe(stuck);
  EXPECT_EQ(s.predict({}, kNoChoice), 0u);  // within timeout
  s.observe(stuck);
  EXPECT_EQ(s.predict({}, kNoChoice), 1u);  // rotated
}

TEST(TimeoutScheduler, ServiceResetsTheTimer) {
  TimeoutScheduler s(2, 1);
  auto busy = obs(2);
  busy.valid[0] = busy.valid[1] = true;
  busy.served[0] = true;
  for (int i = 0; i < 6; ++i) s.observe(busy);
  EXPECT_EQ(s.predict({}, kNoChoice), 0u);  // kept serving channel 0
}

TEST(BoundedFairScheduler, ChoiceBitsDrivePrediction) {
  BoundedFairScheduler s(2, 1);
  EXPECT_EQ(s.choiceBits(), 1u);
  EXPECT_EQ(s.predict({}, [](unsigned) { return false; }), 0u);
  EXPECT_EQ(s.predict({}, [](unsigned) { return true; }), 1u);
}

TEST(Schedulers, StatePackUnpackRoundTrip) {
  RoundRobinScheduler a(2);
  auto o = obs(2);
  o.demand[1] = true;
  a.observe(o);

  StateWriter w;
  a.packState(w);
  const auto bytes = w.take();

  RoundRobinScheduler b(2);
  StateReader r(bytes);
  b.unpackState(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(a.predict({}, kNoChoice), b.predict({}, kNoChoice));
}

TEST(Schedulers, Names) {
  EXPECT_EQ(StaticScheduler(2, 0).name(), "static");
  EXPECT_EQ(RoundRobinScheduler(2).name(), "round-robin");
  EXPECT_EQ(LastServedScheduler(2).name(), "last-served");
  EXPECT_EQ(TwoBitScheduler().name(), "two-bit");
  EXPECT_EQ(TimeoutScheduler(2).name(), "timeout");
  EXPECT_EQ(BoundedFairScheduler(2).name(), "bounded-fair");
  EXPECT_EQ(StarvingScheduler(2).name(), "starving");
}

}  // namespace
}  // namespace esl::sched
