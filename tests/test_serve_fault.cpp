// Fault-injection tests (label: serve-fault): the deterministic crash/damage
// harness of src/base/fault_inject.h driven through the durability stack —
// spool-directory recovery (journal replay, quarantine, orphan compaction),
// admission refusal on spool-write failure, clean errors on bit-rot and
// truncation, drain-at-quantum-boundary shutdown, and a fork()ed
// kill-at-quantum-boundary crash whose restart resumes byte-identically.
//
// Every injected fault must produce a structured error or a quarantine —
// never a crash, a hang, or silently corrupted state.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "base/error.h"
#include "base/fault_inject.h"
#include "netlist/patterns.h"
#include "serve/service.h"
#include "serve/session.h"
#include "serve/spool.h"
#include "sim/state_file.h"

namespace esl::serve {
namespace {

// --- ESL_FAULT grammar -------------------------------------------------------
// The registry parses ESL_FAULT once, on first use. This test must therefore
// be the process's first touch of the fault API: it is declared first in this
// file, the binary holds only this file, and neither gtest nor static
// initialization reaches the registry. (ctest runs each test in its own
// process anyway.)

TEST(FaultInjectEnv, GrammarArmsPointsFromTheEnvironment) {
  ::setenv("ESL_FAULT", "env-a=fail@2;env-b=truncate@1:3;junk;env-c=nokind@1",
           1);
  fault::hitPoint("env-a");  // hit 1 of 2: inert
  EXPECT_THROW(fault::hitPoint("env-a"), EslError);
  std::vector<std::uint8_t> buf{1, 2, 3, 4, 5};
  fault::hitData("env-b", buf);
  EXPECT_EQ(buf.size(), 3u);
  // Unparsable items and unknown kinds are skipped, never armed.
  EXPECT_NO_THROW(fault::hitPoint("junk"));
  EXPECT_NO_THROW(fault::hitPoint("env-c"));
  fault::disarmAll();
  ::unsetenv("ESL_FAULT");
}

// --- Registry semantics ------------------------------------------------------

TEST(FaultInject, ArmTriggersOnTheNthHitOnly) {
  fault::disarmAll();
  fault::arm("p", {fault::Kind::kFail, 3, 0});
  EXPECT_NO_THROW(fault::hitPoint("p"));
  EXPECT_NO_THROW(fault::hitPoint("p"));
  EXPECT_THROW(fault::hitPoint("p"), EslError);
  EXPECT_NO_THROW(fault::hitPoint("p"));  // past the nth hit: inert again
  EXPECT_EQ(fault::hits("p"), 4u);
  fault::disarmAll();
  EXPECT_EQ(fault::hits("p"), 0u);
}

TEST(FaultInject, DataKindsMutateTheBufferInPlace) {
  fault::disarmAll();
  fault::arm("t", {fault::Kind::kTruncate, 1, 2});
  std::vector<std::uint8_t> a{9, 9, 9, 9};
  fault::hitData("t", a);
  EXPECT_EQ(a, (std::vector<std::uint8_t>{9, 9}));

  fault::arm("f", {fault::Kind::kBitFlip, 1, 10});  // byte 1, bit 2
  std::vector<std::uint8_t> b{0, 0};
  fault::hitData("f", b);
  EXPECT_EQ(b[0], 0);
  EXPECT_EQ(b[1], 4);

  // Data kinds are inert on control-flow points.
  fault::arm("c", {fault::Kind::kTruncate, 1, 0});
  EXPECT_NO_THROW(fault::hitPoint("c"));
  fault::disarmAll();
}

// --- Helpers -----------------------------------------------------------------

SimSession::Options interpreted() { return {}; }

SimSession::Options compiled(unsigned shards = 1) {
  SimSession::Options opts;
  opts.backend = SimContext::Backend::kCompiled;
  opts.shards = shards;
  return opts;
}

std::unique_ptr<SimSession> makeSession(const std::string& design,
                                        SimSession::Options opts = {}) {
  return std::make_unique<SimSession>(patterns::designSpec(design), design,
                                      opts);
}

std::string makeTempDir() {
  std::string tmpl = testing::TempDir() + "esl_fault_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

void removeTree(const std::string& dir) {
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* ent = ::readdir(d)) {
      const std::string name = ent->d_name;
      if (name != "." && name != "..") std::remove((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

bool fileExists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

void flipByte(const std::string& path, std::size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(c ^ 0x40));
}

void truncateFile(const std::string& path, std::size_t keep) {
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(keep)), 0);
}

std::vector<std::uint8_t> bytesOf(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

Service::Config baseConfig(const std::string& dir) {
  Service::Config cfg;
  cfg.workers = 1;
  cfg.spoolDir = dir;
  cfg.warn = [](const std::string&) {};
  return cfg;
}

// --- SpoolDir recovery -------------------------------------------------------

TEST(SpoolRecovery, QuarantinesDamageAndRecoversTheRest) {
  const std::string dir = makeTempDir();
  {
    SpoolDir s;
    s.open(dir, true);
    s.writeRecord("good", bytesOf("payload-good"));
    s.writeRecord("rot", bytesOf("payload-rot"));
    s.writeRecord("torn", bytesOf("payload-torn"));
  }
  flipByte(dir + "/rot.spool", sim::kRecordHeaderBytes + 3);
  truncateFile(dir + "/torn.spool", sim::kRecordHeaderBytes + 4);

  SpoolDir s2;
  s2.open(dir, true);
  std::vector<std::string> warnings;
  std::uint64_t quarantined = 0;
  const auto recovered = s2.recover(warnings, &quarantined);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].sid, "good");
  EXPECT_EQ(quarantined, 2u);
  EXPECT_EQ(warnings.size(), 2u);
  EXPECT_TRUE(fileExists(dir + "/rot.spool.corrupt"));
  EXPECT_TRUE(fileExists(dir + "/torn.spool.corrupt"));
  EXPECT_FALSE(fileExists(dir + "/rot.spool"));
  // The survivor still round-trips through full checksum validation.
  EXPECT_EQ(s2.readRecord("good"), bytesOf("payload-good"));
  removeTree(dir);
}

TEST(SpoolRecovery, CompactsOrphanRecordsAndInterruptedTemps) {
  const std::string dir = makeTempDir();
  SpoolDir s;
  s.open(dir, true);
  s.writeRecord("keep", bytesOf("kept"));
  // An orphan: a valid record that never made it into the journal (the
  // pre-crash write race recovery must not resurrect).
  sim::writeRecordFile(dir + "/orphan.spool", bytesOf("orphan"));
  // A doomed temp from an interrupted atomic write.
  std::ofstream(dir + "/half.spool.tmp") << "half-written";

  SpoolDir s2;
  s2.open(dir, true);
  std::vector<std::string> warnings;
  const auto recovered = s2.recover(warnings, nullptr);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].sid, "keep");
  EXPECT_FALSE(fileExists(dir + "/orphan.spool"));
  EXPECT_FALSE(fileExists(dir + "/half.spool.tmp"));
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("no journal entry"), std::string::npos);
  removeTree(dir);
}

TEST(SpoolRecovery, ToleratesTornJournalTailAndMissingRecords) {
  const std::string dir = makeTempDir();
  SpoolDir s;
  s.open(dir, true);
  s.writeRecord("alive", bytesOf("alive"));
  s.writeRecord("gone", bytesOf("gone"));
  // The record vanished but its journal entry survived (crash between the
  // journal append and the record rename).
  std::remove((dir + "/gone.spool").c_str());
  // A crash mid-append leaves a torn trailing line.
  std::ofstream(dir + "/spool.journal", std::ios::app)
      << "{\"event\":\"spool\",\"sid\":\"to";

  SpoolDir s2;
  s2.open(dir, true);
  std::vector<std::string> warnings;
  const auto recovered = s2.recover(warnings, nullptr);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].sid, "alive");
  bool sawTorn = false, sawMissing = false;
  for (const std::string& w : warnings) {
    if (w.find("torn trailing line") != std::string::npos) sawTorn = true;
    if (w.find("no spool record found") != std::string::npos) sawMissing = true;
  }
  EXPECT_TRUE(sawTorn);
  EXPECT_TRUE(sawMissing);
  removeTree(dir);
}

// --- Service under injected faults ------------------------------------------

TEST(ServeFault, SpoolWriteFailureRefusesAdmissionCleanly) {
  const std::string dir = makeTempDir();
  Service::Config cfg = baseConfig(dir);
  cfg.maxResident = 1;
  {
    Service svc(cfg);
    svc.open("s1", patterns::designSpec("fig1a"), "fig1a", interpreted());
    // Disk refuses the eviction write: the open is refused, the resident
    // session is untouched, nothing crashes.
    fault::arm("spool-write", {fault::Kind::kFail, 1, 0});
    EXPECT_THROW(
        svc.open("s2", patterns::designSpec("fig1b"), "fig1b", interpreted()),
        AdmissionError);
    EXPECT_EQ(svc.stats().denied, 1u);
    EXPECT_NO_THROW(svc.step("s1", 10));
    // Once the disk behaves again the same open succeeds.
    fault::disarmAll();
    EXPECT_NO_THROW(
        svc.open("s2", patterns::designSpec("fig1b"), "fig1b", interpreted()));
    svc.close("s1");
    svc.close("s2");
  }
  fault::disarmAll();
  removeTree(dir);
}

TEST(ServeFault, BitRotOnAnEvictedRecordIsACleanErrorNotACrash) {
  const std::string dir = makeTempDir();
  Service::Config cfg = baseConfig(dir);
  cfg.maxResident = 1;
  Service svc(cfg);
  svc.open("s1", patterns::designSpec("fig1a"), "fig1a", interpreted());
  svc.step("s1", 100);
  svc.open("s2", patterns::designSpec("fig1a"), "fig1a", interpreted());
  ASSERT_TRUE(fileExists(dir + "/s1.spool"));
  flipByte(dir + "/s1.spool", sim::kRecordHeaderBytes + 8);
  try {
    svc.step("s1", 10);
    FAIL() << "restore from a bit-rotted record must throw";
  } catch (const EslError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos);
  }
  // The service survives: other sessions keep working.
  EXPECT_NO_THROW(svc.step("s2", 10));
  svc.close("s1");
  svc.close("s2");
  removeTree(dir);
}

TEST(ServeFault, RestartQuarantinesDamageAndReattachesTheRest) {
  const std::string dir = makeTempDir();
  Service::Config cfg = baseConfig(dir);
  {
    Service svc(cfg);
    svc.open("keep", patterns::designSpec("fig1d"), "fig1d", compiled());
    svc.step("keep", 120);
    svc.open("rot", patterns::designSpec("fig1a"), "fig1a", interpreted());
    svc.step("rot", 250);
    EXPECT_EQ(svc.drainAndSpool(), 2u);
  }
  flipByte(dir + "/rot.spool", sim::kRecordHeaderBytes + 5);

  std::vector<std::string> warnings;
  cfg.warn = [&](const std::string& w) { warnings.push_back(w); };
  Service svc2(cfg);
  const Service::Stats st = svc2.stats();
  EXPECT_EQ(st.recovered, 1u);
  EXPECT_EQ(st.quarantined, 1u);
  EXPECT_FALSE(warnings.empty());
  EXPECT_TRUE(fileExists(dir + "/rot.spool.corrupt"));
  // The quarantined session is not re-attached; addressing it is a clean
  // structured error.
  EXPECT_THROW(svc2.step("rot", 1), NotFoundError);
  // The survivor resumes byte-identically to a session that never left.
  auto ref = makeSession("fig1d", compiled());
  ref->step(170);
  EXPECT_EQ(svc2.step("keep", 50), ref->report());
  svc2.close("keep");
  removeTree(dir);
}

TEST(ServeFault, DrainAbortsInFlightStepsAtTheQuantumBoundary) {
  const std::string dir = makeTempDir();
  Service::Config cfg = baseConfig(dir);
  cfg.quantumCycles = 100;
  {
    Service svc(cfg);
    svc.open("s1", patterns::designSpec("fig1a"), "fig1a", interpreted());
    svc.step("s1", 300);
    const std::uint64_t base = fault::hits("serve-quantum");
    auto aborted = std::async(std::launch::async, [&svc] {
      try {
        svc.step("s1", 1'000'000'000);  // far longer than the test will wait
      } catch (const DrainingError&) {
        return true;
      }
      return false;
    });
    // Wait until the big step is demonstrably mid-flight (a few quanta in),
    // then drain: the step must abort at its next quantum boundary.
    while (fault::hits("serve-quantum") < base + 5)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(svc.drainAndSpool(), 1u);
    EXPECT_TRUE(aborted.get());
    // A draining service refuses new work with the structured kind.
    EXPECT_THROW(svc.step("s1", 1), DrainingError);
    EXPECT_THROW(
        svc.open("s2", patterns::designSpec("fig1b"), "fig1b", interpreted()),
        DrainingError);
  }
  // Restart on the same directory: the partial progress survived, cut at an
  // exact quantum boundary, and resumes byte-identically.
  Service svc2(baseConfig(dir));
  EXPECT_EQ(svc2.stats().recovered, 1u);
  const std::uint64_t cycle = svc2.cycle("s1");
  EXPECT_EQ(cycle % 100, 0u);
  EXPECT_GE(cycle, 300u);
  const std::string resumed = svc2.step("s1", 400);
  auto ref = makeSession("fig1a");
  ref->step(cycle + 400);
  EXPECT_EQ(resumed, ref->report());
  svc2.close("s1");
  removeTree(dir);
}

// --- Crash at a quantum boundary --------------------------------------------
// fork() a child that runs a durable service and dies (std::_Exit(137), the
// SIGKILL stand-in: no destructors, no flush) at a scheduler quantum
// boundary. The parent restarts on the same spool directory and must find
// the state of the last completed operation, byte-identical.

TEST(ServeCrash, KillAtQuantumBoundaryLosesAtMostTheOpInFlight) {
  const std::string dir = makeTempDir();
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: never return into gtest; signal failure stages via exit codes.
    try {
      Service::Config cfg = baseConfig(dir);
      cfg.quantumCycles = 50;
      cfg.durable = true;
      Service svc(cfg);
      svc.open("s1", patterns::designSpec("fig1a"), "fig1a", interpreted());
      svc.step("s1", 40);
      svc.step("s1", 40);
      svc.step("s1", 40);  // last durable checkpoint: cycle 120
      fault::arm("serve-quantum", {fault::Kind::kExit, 1, 0});
      svc.step("s1", 5000);  // dies at the first quantum boundary
    } catch (...) {
      std::_Exit(3);
    }
    std::_Exit(4);  // the fault failed to fire
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 137);

  Service::Config cfg = baseConfig(dir);
  cfg.quantumCycles = 50;
  cfg.durable = true;
  Service svc(cfg);
  EXPECT_EQ(svc.stats().recovered, 1u);
  // The kill lost exactly the operation in flight: the re-attached session
  // sits at the last completed op's checkpoint.
  EXPECT_EQ(svc.cycle("s1"), 120u);
  const std::string resumed = svc.step("s1", 380);
  auto ref = makeSession("fig1a");
  ref->step(500);
  EXPECT_EQ(resumed, ref->report());
  svc.close("s1");
  removeTree(dir);
}

}  // namespace
}  // namespace esl::serve
