// Parallel model-checker tests (CTest label: verify-parallel; the CI
// sanitizer leg runs this binary explicitly, so the frontier sharding is
// exercised under ASan+UBSan with real threads).
//
// The contract under test: for EVERY worker count, exploration produces the
// exact object the serial checker produces — state numbering, transition
// counts, label bitmasks, truncation point, property verdicts and
// counterexample traces. Plus the scale-up the sharding buys: synth families
// that were verified at <=8 nodes now model-check clean at 12-20 nodes.
#include <gtest/gtest.h>

#include "netlist/synth.h"
#include "test_util.h"
#include "verify/checker.h"

namespace esl {
namespace {

using verify::CheckerOptions;
using verify::ModelChecker;
using verify::NetlistRecipe;
using verify::ProtocolSuiteOptions;
using verify::Violation;

// ---------------------------------------------------------------------------
// Harness recipes (deterministic builders => valid recipes)
// ---------------------------------------------------------------------------

Netlist bufferHarness(bool sinkEmitsAnti) {
  Netlist nl;
  auto& src = nl.make<NondetSource>("env.src", 1);
  auto& buf = nl.make<ElasticBuffer>("buf", 1);
  auto& sink = nl.make<NondetSink>("env.sink", 1, 2, sinkEmitsAnti);
  nl.connect(src, 0, buf, 0, "up");
  nl.connect(buf, 0, sink, 0, "down");
  return nl;
}

Netlist sharedMuxHarness() {
  Netlist nl;
  auto& src = nl.make<NondetSource>("env.src", 1, 2, /*dataBits=*/1);
  auto& fork = nl.make<ForkNode>("fork", 1, 3);
  auto& shared = nl.make<SharedModule>(
      "shared", 2, 1, 1, [](const BitVec& x) { return x; },
      std::make_unique<sched::BoundedFairScheduler>(2, 1));
  auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, 1);
  auto& sink = nl.make<NondetSink>("env.sink", 1, 2);
  nl.connect(src, 0, fork, 0, "stem");
  nl.connect(fork, 0, shared, 0, "in0");
  nl.connect(fork, 1, shared, 1, "in1");
  nl.connect(fork, 2, mux, 0, "sel");
  nl.connect(shared, 0, mux, 1, "out0");
  nl.connect(shared, 1, mux, 2, "out1");
  nl.connect(mux, 0, sink, 0, "muxout");
  return nl;
}

/// A deliberately broken 1-place buffer: a token stalled for one cycle is
/// dropped — the canonical Retry+ violation the checker must pin with the
/// same property name and counterexample under every worker count.
class DroppingBuffer : public Node {
 public:
  DroppingBuffer(std::string name, unsigned width)
      : Node(std::move(name)), width_(width) {
    declareInput(width);
    declareOutput(width);
  }

  void reset() override {
    full_ = false;
    data_ = BitVec(width_);
  }

  void evalComb(SimContext& ctx) override {
    Sig in = ctx.sig(input(0));
    Sig out = ctx.sig(output(0));
    out.setVf(full_);
    out.setData(data_);
    out.setSb(false);
    in.setSf(full_);  // can only hold one token
    in.setVb(false);
  }
  EvalPurity evalPurity() const override { return EvalPurity::kStateDriven; }

  void clockEdge(SimContext& ctx) override {
    const ChannelSignals in = ctx.sig(input(0));
    const ChannelSignals out = ctx.sig(output(0));
    if (full_ && out.vf && out.sf && !out.vb) full_ = false;  // the bug: drop
    if (full_ && fwdTransfer(out)) full_ = false;
    if (fwdTransfer(in)) {
      full_ = true;
      data_ = in.data;
    }
  }

  void packState(StateWriter& w) const override {
    w.writeBool(full_);
    w.writeBitVec(data_);
  }
  void unpackState(StateReader& r) override {
    full_ = r.readBool();
    data_ = r.readBitVec();
  }

  Persistence outputPersistence(unsigned) const override {
    return Persistence::kPersistent;  // claims Retry+, hence checkable lie
  }
  std::string kindName() const override { return "dropping-buffer"; }

 private:
  unsigned width_;
  bool full_ = false;
  BitVec data_;
};

Netlist droppingBufferHarness() {
  Netlist nl;
  auto& src = nl.make<NondetSource>("env.src", 1);
  auto& buf = nl.make<DroppingBuffer>("bad", 1);
  auto& sink = nl.make<NondetSink>("env.sink", 1, 2);
  nl.connect(src, 0, buf, 0, "up");
  nl.connect(buf, 0, sink, 0, "down");
  return nl;
}

constexpr unsigned kWorkerCounts[] = {1, 2, 8};

void expectSameViolation(const Violation& a, const Violation& b,
                         const std::string& context) {
  EXPECT_EQ(a.property, b.property) << context;
  EXPECT_EQ(a.diagnostic, b.diagnostic) << context;
  EXPECT_EQ(a.inconclusive, b.inconclusive) << context;
  EXPECT_EQ(a.states, b.states) << context;
  EXPECT_EQ(a.combos, b.combos) << context;
  EXPECT_EQ(a.lassoStart, b.lassoStart) << context;
}

// ---------------------------------------------------------------------------
// Bit-identity of the explored graph on the full SELF suite
// ---------------------------------------------------------------------------

TEST(VerifyParallel, ExploredGraphIsBitIdenticalAcrossWorkerCounts) {
  const std::pair<const char*, NetlistRecipe> recipes[] = {
      {"eb", [] { return bufferHarness(false); }},
      {"eb+anti", [] { return bufferHarness(true); }},
      {"shared-mux", [] { return sharedMuxHarness(); }},
  };
  for (const auto& [name, recipe] : recipes) {
    std::uint64_t serialFingerprint = 0;
    verify::ExploreResult serialResult;
    for (const unsigned workers : kWorkerCounts) {
      CheckerOptions opts;
      opts.workers = workers;
      ModelChecker mc(recipe, opts);
      const auto channels = mc.netlist().channelIds();
      const ChannelId watch = channels.front();
      mc.addLabel("vf", [watch](const SimContext& c) { return c.sig(watch).vf(); });
      const auto result = mc.explore();
      if (workers == 1) {
        serialResult = result;
        serialFingerprint = mc.graphFingerprint();
        EXPECT_GT(result.states, 1u) << name;
        continue;
      }
      EXPECT_EQ(result.states, serialResult.states) << name << " w" << workers;
      EXPECT_EQ(result.transitions, serialResult.transitions)
          << name << " w" << workers;
      EXPECT_EQ(result.truncated, serialResult.truncated) << name << " w" << workers;
      EXPECT_EQ(mc.graphFingerprint(), serialFingerprint) << name << " w" << workers;
    }
  }
}

TEST(VerifyParallel, SelfSuiteVerdictsIdenticalAcrossWorkerCounts) {
  const NetlistRecipe recipe = [] { return sharedMuxHarness(); };
  std::optional<verify::ProtocolReport> serial;
  for (const unsigned workers : kWorkerCounts) {
    ProtocolSuiteOptions opts;
    opts.workers = workers;
    const auto report = verify::checkSelfProtocol(recipe, opts);
    EXPECT_TRUE(report.ok()) << report.firstViolation();
    if (!serial) {
      serial = report;
      continue;
    }
    EXPECT_EQ(report.explore.states, serial->explore.states);
    EXPECT_EQ(report.explore.transitions, serial->explore.transitions);
    EXPECT_EQ(report.propertiesChecked, serial->propertiesChecked);
  }
}

// ---------------------------------------------------------------------------
// Negative paths: truncation and injected violations must match serial
// ---------------------------------------------------------------------------

TEST(VerifyParallel, TruncationIsReportedIdenticallyToSerial) {
  const NetlistRecipe recipe = [] { return bufferHarness(true); };
  verify::ExploreResult serialResult;
  std::uint64_t serialFingerprint = 0;
  for (const unsigned workers : kWorkerCounts) {
    CheckerOptions opts;
    opts.workers = workers;
    opts.maxStates = 3;
    ModelChecker mc(recipe, opts);
    const auto result = mc.explore();
    EXPECT_TRUE(result.truncated) << "w" << workers;
    EXPECT_TRUE(mc.truncated()) << "w" << workers;
    if (workers == 1) {
      serialResult = result;
      serialFingerprint = mc.graphFingerprint();
      continue;
    }
    EXPECT_EQ(result.states, serialResult.states) << "w" << workers;
    EXPECT_EQ(result.transitions, serialResult.transitions) << "w" << workers;
    EXPECT_EQ(mc.graphFingerprint(), serialFingerprint) << "w" << workers;
  }
}

TEST(VerifyParallel, TruncatedSuiteInconclusiveDiagnosticsMatchSerial) {
  const NetlistRecipe recipe = [] { return bufferHarness(true); };
  std::optional<verify::ProtocolReport> serial;
  for (const unsigned workers : kWorkerCounts) {
    ProtocolSuiteOptions opts;
    opts.workers = workers;
    opts.maxStates = 3;
    const auto report = verify::checkSelfProtocol(recipe, opts);
    EXPECT_TRUE(report.explore.truncated);
    EXPECT_FALSE(report.ok());
    if (!serial) {
      serial = report;
      continue;
    }
    ASSERT_EQ(report.violations.size(), serial->violations.size());
    for (std::size_t i = 0; i < report.violations.size(); ++i)
      expectSameViolation(report.violations[i], serial->violations[i],
                          "w" + std::to_string(workers));
  }
}

TEST(VerifyParallel, InjectedViolationYieldsSamePropertyAndTraceUnderAllWorkers) {
  const NetlistRecipe recipe = [] { return droppingBufferHarness(); };
  std::optional<Violation> serial;
  for (const unsigned workers : kWorkerCounts) {
    ProtocolSuiteOptions opts;
    opts.workers = workers;
    const auto report = verify::checkSelfProtocol(recipe, opts);
    ASSERT_FALSE(report.ok()) << "w" << workers;
    const Violation& v = report.violations.front();
    // The dropped token is a Retry+ persistence violation on the buffer's
    // output channel, caught by the step property.
    EXPECT_EQ(v.property, "G(down.retryF => X down.vf)") << "w" << workers;
    EXPECT_FALSE(v.inconclusive);
    // A valid counterexample: starts at reset, k combos / k+1 states; the
    // suite replay-validated it against the real transition system before
    // reporting (InternalError otherwise).
    ASSERT_GE(v.states.size(), 2u) << "w" << workers;
    EXPECT_EQ(v.states.front(), 0u);
    EXPECT_EQ(v.states.size(), v.combos.size() + 1);
    if (!serial) {
      serial = v;
      continue;
    }
    expectSameViolation(v, *serial, "w" + std::to_string(workers));
  }
}

TEST(VerifyParallel, WorkersRequireRecipe) {
  Netlist nl = bufferHarness(false);
  CheckerOptions opts;
  opts.workers = 2;
  ModelChecker mc(nl, opts);
  EXPECT_THROW(mc.explore(), EslError);
}

TEST(VerifyParallel, NondeterministicRecipeIsRejected) {
  // A recipe whose instances differ must be refused, not silently explored.
  auto counter = std::make_shared<unsigned>(0);
  const NetlistRecipe recipe = [counter] {
    Netlist nl;
    auto& src = nl.make<NondetSource>("src", 1);
    Node* tail = &src;
    // Second and later instances get an extra buffer stage: the replica's
    // initial packed state has more bytes than the primary's.
    const unsigned stages = (*counter)++ == 0 ? 1 : 2;
    for (unsigned i = 0; i < stages; ++i) {
      auto& eb = nl.make<ElasticBuffer>("eb" + std::to_string(i), 1);
      nl.connect(*tail, 0, eb, 0);
      tail = &eb;
    }
    auto& sink = nl.make<NondetSink>("sink", 1, 2);
    nl.connect(*tail, 0, sink, 0);
    return nl;
  };
  CheckerOptions opts;
  opts.workers = 2;
  ModelChecker mc(recipe, opts);
  EXPECT_THROW(mc.explore(), EslError);
}

// ---------------------------------------------------------------------------
// Scale-up: synth families clean at >=12 nodes (previously capped at <=8)
// ---------------------------------------------------------------------------

TEST(VerifyParallel, SynthFamiliesModelCheckCleanAtTwelvePlusNodes) {
  struct Case {
    synth::Topology topology;
    std::size_t nodes;
  };
  const Case cases[] = {
      {synth::Topology::kPipeline, 20},
      {synth::Topology::kForkJoin, 16},
      {synth::Topology::kSpecLadder, 12},
      {synth::Topology::kRandomDag, 20},
  };
  std::vector<verify::SuiteJob> jobs;
  for (const Case& c : cases) {
    synth::SynthConfig cfg;
    cfg.topology = c.topology;
    cfg.targetNodes = c.nodes;
    cfg.width = 1;
    cfg.seed = 3;
    cfg.nondetEnv = true;
    verify::SuiteJob job;
    job.name = synth::describe(cfg);
    job.recipe = [cfg] { return synth::buildNetlist(cfg); };
    job.options.maxStates = 500000;
    job.options.maxChoiceBits = 16;
    job.options.workers = 2;  // frontier sharding inside each job
    jobs.push_back(std::move(job));
  }
  // Farm the suite jobs themselves across 2 threads on top.
  const auto results = verify::runSuiteFarm(jobs, 2);
  ASSERT_EQ(results.size(), jobs.size());
  for (const auto& r : results) {
    EXPECT_TRUE(r.error.empty()) << r.name << ": " << r.error;
    EXPECT_FALSE(r.report.explore.truncated) << r.name;
    EXPECT_TRUE(r.report.ok()) << r.name << ": " << r.report.firstViolation();
    EXPECT_GT(r.report.explore.states, 8u) << r.name;
  }
  // The netlists really are >=12 nodes (the generator respects its budget,
  // but pin it here so the scale-up claim stays honest).
  for (const Case& c : cases) {
    synth::SynthConfig cfg;
    cfg.topology = c.topology;
    cfg.targetNodes = c.nodes;
    cfg.width = 1;
    cfg.seed = 3;
    cfg.nondetEnv = true;
    EXPECT_GE(synth::build(cfg).nodeCount, 12u) << synth::describe(cfg);
  }
}

TEST(VerifyParallel, SuiteFarmReportsPerJobErrors) {
  std::vector<verify::SuiteJob> jobs;
  verify::SuiteJob good;
  good.name = "good";
  good.recipe = [] { return bufferHarness(false); };
  jobs.push_back(good);
  verify::SuiteJob bad;
  bad.name = "bad";
  bad.recipe = [] {
    Netlist nl;
    // 15 choice bits > default maxChoiceBits=14 => the job must error out
    // without poisoning its neighbours.
    for (int i = 0; i < 15; ++i) {
      std::string srcName = "s";
      srcName += std::to_string(i);
      std::string sinkName = "k";
      sinkName += std::to_string(i);
      auto& src = nl.make<NondetSource>(srcName, 1);
      auto& sink = nl.make<TokenSink>(sinkName, 1);
      nl.connect(src, 0, sink, 0);
    }
    return nl;
  };
  jobs.push_back(bad);
  const auto results = verify::runSuiteFarm(jobs, 2);
  EXPECT_TRUE(results[0].ok()) << results[0].error;
  EXPECT_FALSE(results[1].error.empty());
}

}  // namespace
}  // namespace esl
