// Tests of the simulation layer: trace recording/rendering, channel
// statistics, throughput measurement and the transfer-equivalence checker.
#include <gtest/gtest.h>

#include "sim/equiv.h"
#include "sim/trace.h"
#include "test_util.h"

namespace esl {
namespace {

/// src -> EB -> sink with a given ready pattern.
struct Line {
  Netlist nl;
  TokenSource* src = nullptr;
  TokenSink* sink = nullptr;
  ChannelId up{}, down{};
};

Line makeLine(TokenSink::Gate ready = {}, std::vector<std::uint64_t> values = {}) {
  Line l;
  l.src = &l.nl.make<TokenSource>(
      "src", 8,
      values.empty() ? TokenSource::counting(8)
                     : TokenSource::listOf(std::move(values), 8));
  auto& eb = l.nl.make<ElasticBuffer>("eb", 8);
  l.sink = &l.nl.make<TokenSink>("sink", 8, std::move(ready));
  l.up = l.nl.connect(*l.src, 0, eb, 0, "up");
  l.down = l.nl.connect(eb, 0, *l.sink, 0, "down");
  return l;
}

TEST(Trace, SymbolsAndLetters) {
  Line l = makeLine({}, {7, 9});
  sim::TraceRecorder trace;
  trace.addChannel(l.up, "up");
  trace.addChannel(l.down, "down");
  sim::Simulator s(l.nl);
  s.attachTrace(&trace);
  s.run(4);
  // up: A B * * ; down: * A B *
  EXPECT_EQ(trace.cell(0, 0), "A");
  EXPECT_EQ(trace.cell(0, 1), "B");
  EXPECT_EQ(trace.cell(0, 2), "*");
  EXPECT_EQ(trace.cell(1, 0), "*");
  EXPECT_EQ(trace.cell(1, 1), "A");  // same value, same letter
  EXPECT_EQ(trace.cell(1, 2), "B");
}

TEST(Trace, AntiTokenSymbol) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8),
                                   [](std::uint64_t c) { return c >= 3; });
  auto& sink = nl.make<TokenSink>("sink", 8, TokenSink::Gate{}, 1,
                                  [](std::uint64_t c) { return c == 0; });
  const ChannelId ch = nl.connect(src, 0, sink, 0, "ch");
  sim::TraceRecorder trace;
  trace.addChannel(ch, "ch");
  sim::Simulator s(nl);
  s.attachTrace(&trace);
  s.run(2);
  EXPECT_EQ(trace.cell(0, 0), "-");  // pending anti-token shows as '-'
}

TEST(Trace, SignalRowsAndRender) {
  Line l = makeLine();
  sim::TraceRecorder trace;
  trace.addChannel(l.down, "down");
  trace.addSignal("cyc", [](SimContext& ctx) { return std::to_string(ctx.cycle()); });
  sim::Simulator s(l.nl);
  s.attachTrace(&trace);
  s.run(3);
  EXPECT_EQ(trace.cell(1, 2), "2");
  const std::string table = trace.render();
  EXPECT_NE(table.find("Cycle"), std::string::npos);
  EXPECT_NE(table.find("down"), std::string::npos);
  EXPECT_NE(table.find("cyc"), std::string::npos);
  EXPECT_EQ(trace.cycles(), 3u);
}

TEST(Trace, ManyValuesGetNumberedNames) {
  sim::TraceRecorder trace;
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& sink = nl.make<TokenSink>("sink", 8);
  const ChannelId ch = nl.connect(src, 0, sink, 0, "ch");
  trace.addChannel(ch, "ch");
  sim::Simulator s(nl);
  s.attachTrace(&trace);
  s.run(30);
  EXPECT_EQ(trace.cell(0, 0), "A");
  EXPECT_EQ(trace.cell(0, 25), "Z");
  EXPECT_EQ(trace.cell(0, 26), "T26");
}

TEST(Stats, CountsTransfersAndKills) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& sink = nl.make<TokenSink>("sink", 8, TokenSink::Gate{}, 2,
                                  [](std::uint64_t c) { return c < 2; });
  const ChannelId ch = nl.connect(src, 0, sink, 0, "ch");
  sim::Simulator s(nl);
  s.run(10);
  const auto& st = s.channelStats(ch);
  EXPECT_EQ(st.kills, 2u);
  EXPECT_EQ(st.fwdTransfers, 8u);
  EXPECT_EQ(st.bwdTransfers, 0u);  // anti-tokens always met a token here
  EXPECT_DOUBLE_EQ(s.throughput(ch), 0.8);
}

TEST(Equiv, IdenticalNetlistsAreEquivalent) {
  Line a = makeLine();
  Line b = makeLine();
  const auto r = sim::transferEquivalent(a.nl, b.nl, 20, 5);
  EXPECT_TRUE(r.equivalent) << r.reason;
}

TEST(Equiv, DifferentDataDetected) {
  Line a = makeLine({}, {1, 2, 3, 4, 5});
  Line b = makeLine({}, {1, 2, 9, 4, 5});
  const auto r = sim::transferEquivalent(a.nl, b.nl, 20, 3);
  EXPECT_FALSE(r.equivalent);
  EXPECT_NE(r.reason.find("transfer #2"), std::string::npos);
}

TEST(Equiv, DifferentTimingIsStillEquivalent) {
  // Same data, one sink throttled: transfer equivalence ignores cycle counts.
  Line a = makeLine();
  Line b = makeLine([](std::uint64_t c) { return c % 2 == 0; });
  const auto r = sim::transferEquivalent(a.nl, b.nl, 40, 10);
  EXPECT_TRUE(r.equivalent) << r.reason;
}

TEST(Equiv, TooFewTransfersReported) {
  Line a = makeLine();
  Line b = makeLine([](std::uint64_t) { return false; });  // sink never ready
  const auto r = sim::transferEquivalent(a.nl, b.nl, 20, 5);
  EXPECT_FALSE(r.equivalent);
  EXPECT_NE(r.reason.find("transfers"), std::string::npos);
}

TEST(Equiv, MissingSinkDetected) {
  Line a = makeLine();
  Netlist b;
  auto& src = b.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& other = b.make<TokenSink>("other", 8);
  b.connect(src, 0, other, 0);
  const auto r = sim::transferEquivalent(a.nl, b, 20, 1);
  EXPECT_FALSE(r.equivalent);
}

TEST(Simulator, SeedChangesNondetBehaviourDeterministically) {
  auto run = [](std::uint64_t seed) {
    Netlist nl;
    auto& src = nl.make<NondetSource>("src", 4);
    auto& sink = nl.make<TokenSink>("sink", 4);
    nl.connect(src, 0, sink, 0, "ch");
    sim::Simulator s(nl, {.seed = seed});
    s.run(50);
    return sink.received();
  };
  EXPECT_EQ(run(1), run(1));  // reproducible
  // Different seeds almost surely give different offer patterns.
  EXPECT_NE(run(1), run(99));
}

}  // namespace
}  // namespace esl
