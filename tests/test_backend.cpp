#include <gtest/gtest.h>

#include "backend/smv.h"
#include "backend/verilog.h"
#include "netlist/dot.h"
#include "netlist/patterns.h"

namespace esl {
namespace {

std::size_t countOccurrences(const std::string& hay, const std::string& needle) {
  std::size_t count = 0, pos = 0;
  while ((pos = hay.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(Verilog, EmitsControllerLibraryForSpeculativeLoop) {
  auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative);
  const std::string v = backend::emitVerilog(sys.nl, "fig1d");
  EXPECT_NE(v.find("module esl_eb "), std::string::npos);
  EXPECT_NE(v.find("module esl_fork4"), std::string::npos);
  EXPECT_NE(v.find("module esl_eemux2"), std::string::npos);
  EXPECT_NE(v.find("module esl_shared2"), std::string::npos);
  EXPECT_NE(v.find("module fig1d"), std::string::npos);
  // Balanced module/endmodule.
  EXPECT_EQ(countOccurrences(v, "module ") - countOccurrences(v, "endmodule"),
            countOccurrences(v, "endmodule") == 0 ? 1 : 0);
  EXPECT_EQ(countOccurrences(v, "\nendmodule"), countOccurrences(v, "\nmodule ") + 0);
}

TEST(Verilog, OneInstancePerNode) {
  auto sys = patterns::buildTable1({0, 1, 1, 0, 0});
  const std::string v = backend::emitVerilog(sys.nl);
  // Instances are named u_<id>.
  for (const NodeId id : sys.nl.nodeIds()) {
    const Node& n = sys.nl.node(id);
    if (n.kindName() == "source" || n.kindName() == "sink") continue;
    EXPECT_NE(v.find("u_" + std::to_string(id) + " "), std::string::npos)
        << "missing instance for " << n.name();
  }
  // Every channel has a wire bundle.
  for (const ChannelId id : sys.nl.channelIds())
    EXPECT_NE(v.find("ch" + std::to_string(id) + "_vf"), std::string::npos);
}

TEST(Verilog, EnvironmentsBecomePorts) {
  auto sys = patterns::buildTable1({0, 1});
  const std::string v = backend::emitVerilog(sys.nl);
  EXPECT_NE(v.find("input wire src0_vf"), std::string::npos);
  EXPECT_NE(v.find("output wire sink_vf"), std::string::npos);
}

TEST(Verilog, DatapathStubsMarked) {
  auto sys = patterns::buildFig1(patterns::Fig1Variant::kNonSpeculative);
  const std::string v = backend::emitVerilog(sys.nl);
  EXPECT_NE(v.find("DATAPATH STUB"), std::string::npos);
}

TEST(Smv, EmitsMainModuleWithSpecs) {
  auto sys = patterns::buildTable1({0, 1, 1, 0, 0});
  const std::string m = backend::emitSmv(sys.nl);
  EXPECT_NE(m.find("MODULE main"), std::string::npos);
  EXPECT_NE(m.find("LTLSPEC"), std::string::npos);
  EXPECT_NE(m.find("-- Retry+"), std::string::npos);
  EXPECT_NE(m.find("-- Invariant"), std::string::npos);
  // Every channel gets at least the two invariant specs.
  const std::size_t channels = sys.nl.channelIds().size();
  EXPECT_GE(countOccurrences(m, "LTLSPEC"), channels * 3);
}

TEST(Smv, SharedModuleSchedulerIsFree) {
  auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative);
  const std::string m = backend::emitSmv(sys.nl);
  EXPECT_NE(m.find("free scheduler"), std::string::npos);
}

TEST(Smv, NonPersistentChannelsSkipRetryPlus) {
  // Channels downstream of a shared module must not carry the Retry+ spec.
  auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative);
  const std::string m = backend::emitSmv(sys.nl);
  // Count Retry+ specs: only persistent channels get one.
  std::size_t persistent = 0;
  for (const ChannelId id : sys.nl.channelIds())
    if (sys.nl.channelIsPersistent(id)) ++persistent;
  EXPECT_EQ(countOccurrences(m, "-- Retry+"), persistent);
  EXPECT_LT(persistent, sys.nl.channelIds().size());
}

TEST(Smv, EnvironmentFairnessEmitted) {
  auto sys = patterns::buildTable1({0, 1});
  const std::string m = backend::emitSmv(sys.nl);
  EXPECT_GE(countOccurrences(m, "FAIRNESS"), 3u);  // 3 sources + 1 sink
}

TEST(Dot, RendersGraph) {
  auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative);
  const std::string dot = netlist::toDot(sys.nl, "fig1d");
  EXPECT_NE(dot.find("digraph \"fig1d\""), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);      // EBs as boxes
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);  // logic as ellipses
  EXPECT_EQ(countOccurrences(dot, " -> "), sys.nl.channelIds().size());
}

}  // namespace
}  // namespace esl

// --- BLIF emitter -----------------------------------------------------------

#include "backend/blif.h"

#include <sstream>

namespace esl {
namespace {

/// Minimal structural validator: every .names row must match its input count,
/// every .latch must have 3 fields, the model must open and close.
void validateBlif(const std::string& blif) {
  std::istringstream is(blif);
  std::string line;
  int namesInputs = -1;
  bool sawModel = false, sawEnd = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok == ".model") sawModel = true;
    if (tok == ".end") sawEnd = true;
    if (tok == ".names") {
      std::vector<std::string> sigs;
      std::string s;
      while (ls >> s) sigs.push_back(s);
      ASSERT_GE(sigs.size(), 1u);
      namesInputs = static_cast<int>(sigs.size()) - 1;
    } else if (tok == ".latch") {
      std::string in, out, init;
      ls >> in >> out >> init;
      EXPECT_TRUE(init == "0" || init == "1") << line;
      namesInputs = -1;
    } else if (tok[0] != '.') {
      // cover row: "<pattern> 1"
      ASSERT_GE(namesInputs, 0) << "row outside .names: " << line;
      std::string one;
      ls >> one;
      if (namesInputs == 0) {
        EXPECT_EQ(tok, "1") << line;  // constant-1
      } else {
        EXPECT_EQ(static_cast<int>(tok.size()), namesInputs) << line;
        EXPECT_EQ(one, "1") << line;
      }
    }
  }
  EXPECT_TRUE(sawModel && sawEnd);
}

TEST(Blif, Table1SystemEmitsValidStructure) {
  auto sys = patterns::buildTable1({0, 1, 1, 0, 0});
  const std::string blif = backend::emitBlif(sys.nl, "table1_ctrl");
  EXPECT_NE(blif.find(".model table1_ctrl"), std::string::npos);
  validateBlif(blif);
  // The select value and the scheduler are primary inputs of the model.
  EXPECT_NE(blif.find("_sel"), std::string::npos);
  EXPECT_NE(blif.find("_sched"), std::string::npos);
}

TEST(Blif, SpeculativeLoopEmitsLatchesForAllState) {
  auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative);
  const std::string blif = backend::emitBlif(sys.nl);
  validateBlif(blif);
  // EB: 4 latches (2-bit token + 2-bit anti counters); fork: 4 done bits;
  // EE mux: 2x2 pending bits.
  EXPECT_EQ(countOccurrences(blif, ".latch"), 4u + 4u + 4u);
}

TEST(Blif, Eb0PipelineHasOneLatchPerBuffer) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 4, TokenSource::counting(4));
  auto& a = nl.make<ElasticBuffer0>("a", 4);
  auto& b = nl.make<ElasticBuffer0>("b", 4);
  auto& sink = nl.make<TokenSink>("sink", 4);
  nl.connect(src, 0, a, 0);
  nl.connect(a, 0, b, 0);
  nl.connect(b, 0, sink, 0);
  const std::string blif = backend::emitBlif(nl);
  validateBlif(blif);
  EXPECT_EQ(countOccurrences(blif, ".latch"), 2u);
}

TEST(Blif, UnsupportedNodeThrows) {
  auto sys = patterns::buildStallingVlu();  // StallingVLU has no BLIF template
  EXPECT_THROW(backend::emitBlif(sys.nl), EslError);
}

TEST(Blif, WideSelectRejected) {
  Netlist nl;
  auto& sel = nl.make<TokenSource>("sel", 2, TokenSource::counting(2));
  auto& d0 = nl.make<TokenSource>("d0", 4, TokenSource::counting(4));
  auto& d1 = nl.make<TokenSource>("d1", 4, TokenSource::counting(4));
  auto& d2 = nl.make<TokenSource>("d2", 4, TokenSource::counting(4));
  auto& mux = nl.make<EarlyEvalMux>("mux", 3, 2, 4);
  auto& sink = nl.make<TokenSink>("sink", 4);
  nl.connect(sel, 0, mux, 0);
  nl.connect(d0, 0, mux, 1);
  nl.connect(d1, 0, mux, 2);
  nl.connect(d2, 0, mux, 3);
  nl.connect(mux, 0, sink, 0);
  EXPECT_THROW(backend::emitBlif(nl), EslError);
}

}  // namespace
}  // namespace esl
