// End-to-end tests of the two §5 case studies: the variable-latency ALU
// (Fig. 6) and the SECDED resilient adder (Fig. 7).
#include <gtest/gtest.h>

#include "netlist/patterns.h"
#include "perf/area.h"
#include "perf/throughput.h"
#include "perf/timing.h"
#include "sim/equiv.h"
#include "test_util.h"

namespace esl {
namespace {

using test::receivedCycles;
using test::receivedValues;

// ---------------------------------------------------------------------------
// §5.1 variable-latency ALU
// ---------------------------------------------------------------------------

class VluErrorRateTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(VluErrorRateTest, StallingUnitIsFunctionallyExact) {
  patterns::VluConfig cfg;
  cfg.errPermille = GetParam();
  auto sys = patterns::buildStallingVlu(cfg);
  sim::Simulator s(sys.nl);
  s.run(400);
  const auto vals = receivedValues(*sys.sink);
  const auto golden = patterns::vluGolden(cfg, vals.size());
  ASSERT_GT(vals.size(), 100u);
  EXPECT_EQ(vals, golden);
}

TEST_P(VluErrorRateTest, SpeculativeUnitIsFunctionallyExact) {
  patterns::VluConfig cfg;
  cfg.errPermille = GetParam();
  auto sys = patterns::buildSpeculativeVlu(cfg);
  sim::Simulator s(sys.nl);
  s.run(400);
  const auto vals = receivedValues(*sys.sink);
  const auto golden = patterns::vluGolden(cfg, vals.size());
  ASSERT_GT(vals.size(), 100u);
  EXPECT_EQ(vals, golden);
}

TEST_P(VluErrorRateTest, BothVariantsAreTransferEquivalent) {
  patterns::VluConfig cfg;
  cfg.errPermille = GetParam();
  auto a = patterns::buildStallingVlu(cfg);
  auto b = patterns::buildSpeculativeVlu(cfg);
  const auto r = sim::transferEquivalent(a.nl, b.nl, 300, 100);
  EXPECT_TRUE(r.equivalent) << r.reason;
}

TEST_P(VluErrorRateTest, ThroughputMatchesErrorRateModel) {
  // Each error costs exactly one extra cycle in both designs.
  patterns::VluConfig cfg;
  cfg.errPermille = GetParam();
  const double expected = 1000.0 / (1000.0 + cfg.errPermille);

  auto stall = patterns::buildStallingVlu(cfg);
  sim::Simulator ss(stall.nl);
  ss.run(2000);
  EXPECT_NEAR(ss.throughput(stall.outChannel), expected, 0.03) << "stalling";

  auto spec = patterns::buildSpeculativeVlu(cfg);
  sim::Simulator sp(spec.nl);
  sp.run(2000);
  EXPECT_NEAR(sp.throughput(spec.outChannel), expected, 0.03) << "speculative";
}

INSTANTIATE_TEST_SUITE_P(ErrorRates, VluErrorRateTest,
                         ::testing::Values(0u, 50u, 100u, 300u, 1000u));

TEST(Vlu, StallsMatchInjectedErrors) {
  patterns::VluConfig cfg;
  cfg.errPermille = 200;
  auto sys = patterns::buildStallingVlu(cfg);
  sim::Simulator s(sys.nl);
  s.run(1000);
  const double rate = static_cast<double>(sys.vlu->stalls()) /
                      static_cast<double>(sys.vlu->completed());
  EXPECT_NEAR(rate, 0.2, 0.05);
}

TEST(Vlu, SpeculationRemovesErrFromCriticalPath) {
  // §5.1: "Ferr has become critical in the stalling unit ... but not in the
  // speculative design. The critical path is taken out of the elastic
  // controller." Cycle time must improve.
  const auto stall = patterns::buildStallingVlu();
  const auto spec = patterns::buildSpeculativeVlu();
  const double tStall = perf::analyzeTiming(stall.nl).cycleTime;
  const double tSpec = perf::analyzeTiming(spec.nl).cycleTime;
  EXPECT_LT(tSpec, tStall);
  // Paper reports ~9% effective cycle time improvement; the unit-gate model
  // should land in the same regime.
  const double gain = (tStall - tSpec) / tStall;
  EXPECT_GT(gain, 0.04);
  EXPECT_LT(gain, 0.30);
}

TEST(Vlu, SpeculationAreaOverheadComesFromEbs) {
  // §5.1 reports ~12% overhead amortized over their full pipeline after
  // synthesis; at the isolated-unit level of our structural model the
  // overhead is larger but must stay bounded and be dominated by the EBs
  // that store tokens around the shared unit.
  const auto stall = patterns::buildStallingVlu();
  const auto spec = patterns::buildSpeculativeVlu();
  const auto aStall = perf::areaReport(stall.nl);
  const auto aSpec = perf::areaReport(spec.nl);
  EXPECT_GT(aSpec.total, aStall.total);
  const double overhead = (aSpec.total - aStall.total) / aStall.total;
  EXPECT_LT(overhead, 1.0);
  // The EB contribution explains most of the delta (the paper's explanation:
  // "the area overhead is due to extra EBs storing the results after the
  // shared unit").
  const double ebDelta = aSpec.byKind.at("eb") -
                         (aStall.byKind.count("eb") ? aStall.byKind.at("eb") : 0.0);
  EXPECT_GT(ebDelta, (aSpec.total - aStall.total) * 0.5);
}

TEST(Vlu, ZeroErrorRateGivesFullThroughput) {
  patterns::VluConfig cfg;
  cfg.errPermille = 0;
  auto sys = patterns::buildSpeculativeVlu(cfg);
  sim::Simulator s(sys.nl);
  s.run(500);
  EXPECT_NEAR(s.throughput(sys.outChannel), 1.0, 0.01);
  EXPECT_EQ(sys.shared->demandCycles(), 0u);
}

// ---------------------------------------------------------------------------
// §5.2 SECDED resilient adder
// ---------------------------------------------------------------------------

class SecdedErrorRateTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SecdedErrorRateTest, PipelineCorrectsAllSingleErrors) {
  patterns::SecdedConfig cfg;
  cfg.flipPermille = GetParam();
  auto sys = patterns::buildSecdedPipeline(cfg);
  sim::Simulator s(sys.nl);
  s.run(300);
  const auto vals = receivedValues(*sys.sink);
  ASSERT_GT(vals.size(), 100u);
  EXPECT_EQ(vals, patterns::secdedGolden(cfg, vals.size()));
}

TEST_P(SecdedErrorRateTest, SpeculativeCorrectsAllSingleErrors) {
  patterns::SecdedConfig cfg;
  cfg.flipPermille = GetParam();
  auto sys = patterns::buildSecdedSpeculative(cfg);
  sim::Simulator s(sys.nl);
  s.run(300);
  const auto vals = receivedValues(*sys.sink);
  ASSERT_GT(vals.size(), 100u);
  EXPECT_EQ(vals, patterns::secdedGolden(cfg, vals.size()));
}

TEST_P(SecdedErrorRateTest, VariantsAreTransferEquivalent) {
  patterns::SecdedConfig cfg;
  cfg.flipPermille = GetParam();
  auto a = patterns::buildSecdedPipeline(cfg);
  auto b = patterns::buildSecdedSpeculative(cfg);
  const auto r = sim::transferEquivalent(a.nl, b.nl, 250, 80);
  EXPECT_TRUE(r.equivalent) << r.reason;
}

INSTANTIATE_TEST_SUITE_P(FlipRates, SecdedErrorRateTest,
                         ::testing::Values(0u, 30u, 100u, 400u));

TEST(Secded, SpeculationRemovesThePipelineStage) {
  // §5.2: "SECDED needs a whole pipeline stage, and thus, the pipeline is
  // deeper" — speculation starts the addition without waiting.
  patterns::SecdedConfig cfg;
  cfg.flipPermille = 0;
  auto pipe = patterns::buildSecdedPipeline(cfg);
  auto spec = patterns::buildSecdedSpeculative(cfg);
  sim::Simulator sp(pipe.nl), ss(spec.nl);
  sp.run(20);
  ss.run(20);
  // First sum arrives one stage earlier in the speculative design.
  EXPECT_EQ(receivedCycles(*spec.sink).front() + 1,
            receivedCycles(*pipe.sink).front());
}

TEST(Secded, NoPenaltyWhenErrorFree) {
  patterns::SecdedConfig cfg;
  cfg.flipPermille = 0;
  auto sys = patterns::buildSecdedSpeculative(cfg);
  sim::Simulator s(sys.nl);
  s.run(500);
  EXPECT_NEAR(s.throughput(sys.outChannel), 1.0, 0.01);
  EXPECT_EQ(sys.shared->demandCycles(), 0u);
}

TEST(Secded, OneCycleLostPerError) {
  patterns::SecdedConfig cfg;
  cfg.flipPermille = 250;  // ~44% of pairs have at least one flipped word
  auto sys = patterns::buildSecdedSpeculative(cfg);
  sim::Simulator s(sys.nl);
  s.run(2000);
  const double tput = s.throughput(sys.outChannel);
  // Expected: 1/(1+p_pair) with p_pair = 1-(1-0.25)^2 = 0.4375.
  EXPECT_NEAR(tput, 1.0 / 1.4375, 0.03);
  EXPECT_GT(sys.shared->demandCycles(), 300u);
}

TEST(Secded, AreaOverheadOnTheProtectedStage) {
  // §5.2: ~36% overhead on the stage, dominated by the recovery EBs.
  const auto pipe = patterns::buildSecdedPipeline();
  const auto spec = patterns::buildSecdedSpeculative();
  const double aPipe = perf::areaReport(pipe.nl).total;
  const double aSpec = perf::areaReport(spec.nl).total;
  EXPECT_GT(aSpec, aPipe * 1.05);
  EXPECT_LT(aSpec, aPipe * 1.80);
}

TEST(Secded, ProtocolCleanUnderErrors) {
  patterns::SecdedConfig cfg;
  cfg.flipPermille = 300;
  auto sys = patterns::buildSecdedSpeculative(cfg);
  sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = true});
  s.run(500);
  EXPECT_TRUE(s.ctx().protocolViolations().empty());
}

TEST(Secded, TradeoffUnderModerateErrors) {
  // The paper's trade: the non-speculative pipeline keeps throughput 1 but is
  // one stage deeper on EVERY operation; speculation removes the stage and
  // pays one replay cycle per detected error.
  patterns::SecdedConfig cfg;
  cfg.flipPermille = 100;  // ~19% of pairs flagged
  auto pipe = patterns::buildSecdedPipeline(cfg);
  auto spec = patterns::buildSecdedSpeculative(cfg);
  sim::Simulator sp(pipe.nl), ss(spec.nl);
  sp.run(1000);
  ss.run(1000);
  EXPECT_NEAR(sp.throughput(pipe.outChannel), 1.0, 0.01);
  const double pErr = 1.0 - 0.9 * 0.9;
  EXPECT_NEAR(ss.throughput(spec.outChannel), 1.0 / (1.0 + pErr), 0.03);
  // Latency advantage: the speculative sink sees its first sum a cycle early.
  EXPECT_LT(spec.sink->transfers().front().cycle,
            pipe.sink->transfers().front().cycle);
}

}  // namespace
}  // namespace esl
