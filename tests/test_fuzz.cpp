// Property-based randomized tests: token conservation, in-order delivery and
// protocol compliance over randomized pipelines, environments and
// transformation sequences.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "netlist/patterns.h"
#include "sim/equiv.h"
#include "test_util.h"
#include "transform/transform.h"

namespace esl {
namespace {

using test::receivedValues;

/// Random pipeline: source -> {EB | EB0 | inc-func}* -> sink with a pseudo-
/// random readiness pattern and optional anti-token injection.
struct RandomPipeline {
  Netlist nl;
  TokenSource* src = nullptr;
  TokenSink* sink = nullptr;
  unsigned increments = 0;  ///< how many +1 stages were inserted
};

RandomPipeline buildRandomPipeline(std::uint64_t seed, bool withAnti) {
  Rng rng(seed);
  RandomPipeline p;
  const unsigned stages = 1 + static_cast<unsigned>(rng.below(6));
  p.src = &p.nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  Node* prev = p.src;
  for (unsigned i = 0; i < stages; ++i) {
    Node* next = nullptr;
    switch (rng.below(3)) {
      case 0:
        next = &p.nl.make<ElasticBuffer>("eb" + std::to_string(i), 8);
        break;
      case 1:
        next = &p.nl.make<ElasticBuffer0>("eb0_" + std::to_string(i), 8);
        break;
      default:
        next = &makeUnary(p.nl, "inc" + std::to_string(i), 8, 8,
                          [](const BitVec& x) { return x + BitVec(8, 1); });
        ++p.increments;
        break;
    }
    p.nl.connect(*prev, 0, *next, 0);
    prev = next;
  }
  const unsigned readyPermille = 300 + static_cast<unsigned>(rng.below(700));
  const std::uint64_t readySalt = rng.next();
  const unsigned antiBudget = withAnti ? 1 + static_cast<unsigned>(rng.below(4)) : 0;
  const std::uint64_t antiSalt = rng.next();
  p.sink = &p.nl.make<TokenSink>(
      "sink", 8,
      [readyPermille, readySalt](std::uint64_t c) {
        return hashChancePermille(c, readyPermille, readySalt);
      },
      antiBudget,
      [antiSalt](std::uint64_t c) { return hashChancePermille(c, 100, antiSalt); });
  p.nl.connect(*prev, 0, *p.sink, 0);
  p.nl.validate();
  return p;
}

class PipelineFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzzTest, InOrderLosslessDeliveryWithoutAntiTokens) {
  RandomPipeline p = buildRandomPipeline(GetParam(), /*withAnti=*/false);
  sim::Simulator s(p.nl, {.checkProtocol = true, .throwOnViolation = true});
  s.run(300);
  const auto vals = receivedValues(*p.sink);
  ASSERT_GT(vals.size(), 50u);
  // The pipeline applies `increments` many +1 stages to a counting stream.
  for (std::size_t i = 0; i < vals.size(); ++i)
    ASSERT_EQ(vals[i], (i + p.increments) & 0xFF) << "position " << i;
  EXPECT_TRUE(s.ctx().protocolViolations().empty());
}

TEST_P(PipelineFuzzTest, TokenConservationWithAntiTokens) {
  RandomPipeline p = buildRandomPipeline(GetParam(), /*withAnti=*/true);
  sim::Simulator s(p.nl, {.checkProtocol = true, .throwOnViolation = true});
  // 200 cycles keeps every observed value below the 8-bit wrap.
  s.run(200);
  const auto vals = receivedValues(*p.sink);
  ASSERT_GT(vals.size(), 20u);
  // Anti-tokens may remove tokens, but delivery stays in order without
  // duplication: the received stream is strictly increasing (mod wrap-free
  // prefix) over the transformed counting stream.
  for (std::size_t i = 1; i < vals.size(); ++i)
    ASSERT_GT(vals[i], vals[i - 1]) << "position " << i;
  // Conservation: received + killed-at-source <= emitted-by-generator bound.
  EXPECT_LE(p.src->killed(), 4u);  // at most the sink's anti budget
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 21));

class LoopTransformFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LoopTransformFuzzTest, RandomBubbleInsertionPreservesLoopBehaviour) {
  // Insert a bubble on a random channel of the Fig. 1(a) loop: the PC stream
  // seen by the observer must be unchanged (possibly slower).
  const std::uint64_t seed = GetParam();
  auto reference = patterns::buildFig1(patterns::Fig1Variant::kNonSpeculative);
  auto mutated = patterns::buildFig1(patterns::Fig1Variant::kNonSpeculative);

  const auto channels = mutated.nl.channelIds();
  Rng rng(seed);
  const ChannelId pick = channels[rng.below(channels.size())];
  transform::insertBubble(mutated.nl, pick);
  mutated.nl.validate();

  const auto r = sim::transferEquivalent(reference.nl, mutated.nl, 200, 40);
  EXPECT_TRUE(r.equivalent)
      << "bubble on " << reference.nl.channel(pick).name << ": " << r.reason;
}

TEST_P(LoopTransformFuzzTest, StackedRandomTransformationsStayEquivalent) {
  // Apply 1-3 random legal transformations to the loop and require transfer
  // equivalence throughout — "correct by construction".
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 77 + 13);
  auto reference = patterns::buildFig1(patterns::Fig1Variant::kNonSpeculative);
  auto mutated = patterns::buildFig1(patterns::Fig1Variant::kNonSpeculative);

  const unsigned steps = 1 + static_cast<unsigned>(rng.below(3));
  for (unsigned i = 0; i < steps; ++i) {
    switch (rng.below(3)) {
      case 0: {  // bubble on a random channel
        const auto chans = mutated.nl.channelIds();
        transform::insertBubble(mutated.nl, chans[rng.below(chans.size())],
                                "fuzzbubble" + std::to_string(i));
        break;
      }
      case 1: {  // speculation recipe, if still applicable
        const auto cands = transform::findSpeculationCandidates(mutated.nl);
        if (!cands.empty())
          transform::speculate(mutated.nl, cands[0].mux, cands[0].func,
                               std::make_unique<sched::LastServedScheduler>(2));
        break;
      }
      default: {  // shannon only
        const auto cands = transform::findSpeculationCandidates(mutated.nl);
        if (!cands.empty())
          transform::shannonDecompose(mutated.nl, cands[0].mux, cands[0].func);
        break;
      }
    }
  }
  mutated.nl.validate();
  const auto r = sim::transferEquivalent(reference.nl, mutated.nl, 250, 30);
  EXPECT_TRUE(r.equivalent) << r.reason;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopTransformFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(FuzzScheduler, AllSchedulersKeepTheLoopCorrect) {
  // The PC stream must be identical for every scheduler (prediction affects
  // timing only) and must match the analytic sequence.
  using patterns::Fig1Scheduler;
  const auto golden = patterns::fig1PcSequence({}, 80);
  for (const auto sched :
       {Fig1Scheduler::kStatic0, Fig1Scheduler::kLastServed, Fig1Scheduler::kTwoBit,
        Fig1Scheduler::kOracle, Fig1Scheduler::kRoundRobin}) {
    patterns::Fig1Config cfg;
    cfg.scheduler = sched;
    auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative, cfg);
    sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = true});
    s.run(250);
    const auto vals = receivedValues(*sys.observer);
    ASSERT_GE(vals.size(), golden.size());
    for (std::size_t i = 0; i < golden.size(); ++i)
      ASSERT_EQ(vals[i], golden[i]) << "scheduler " << static_cast<int>(sched);
  }
}

}  // namespace
}  // namespace esl
