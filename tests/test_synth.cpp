// Tests of the synthetic netlist generator (src/netlist/synth.*).
//
// The generator is the scale-bench workload factory, so its guarantees are
// load-bearing: bit-identical netlists from identical configs (golden DOT
// exports + rebuild comparisons), valid elastic behaviour on every topology
// family (kernel cross-check, which also audits the EdgeActivity
// declarations), correct end-to-end datapath values, and — at small sizes
// with nondeterministic environments — full SELF-protocol model-checker
// passes.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "netlist/dot.h"
#include "netlist/synth.h"
#include "sim/simulator.h"
#include "verify/checker.h"

namespace esl {
namespace {

using synth::SynthConfig;
using synth::SynthSystem;
using synth::Topology;

constexpr Topology kAllTopologies[] = {Topology::kPipeline, Topology::kForkJoin,
                                       Topology::kSpecLadder, Topology::kRandomDag};

SynthConfig smallConfig(Topology t, std::uint64_t seed = 3) {
  SynthConfig cfg;
  cfg.topology = t;
  cfg.targetNodes = 8;
  cfg.width = 4;
  cfg.seed = seed;
  return cfg;
}

// ---------------------------------------------------------------------------
// Golden DOT exports: one per family, small enough to eyeball
// ---------------------------------------------------------------------------

TEST(Synth, GoldenDotPipeline) {
  SynthConfig cfg = smallConfig(Topology::kPipeline);
  cfg.targetNodes = 7;
  EXPECT_EQ(netlist::toDot(synth::build(cfg).nl, "pipeline"),
            R"dot(digraph "pipeline" {
  rankdir=LR;
  n0 [label="src\n(source)", shape=ellipse];
  n1 [label="s0.eb\n(eb)", shape=box];
  n2 [label="s0.f\n(func)", shape=ellipse];
  n3 [label="s1.eb\n(eb)", shape=box];
  n4 [label="s1.f\n(func)", shape=ellipse];
  n5 [label="sink\n(sink)", shape=ellipse];
  n0 -> n1 [label="src.out0 [4]"];
  n1 -> n2 [label="s0.eb.out0 [4]"];
  n2 -> n3 [label="s0.f.out0 [4]"];
  n3 -> n4 [label="s1.eb.out0 [4]"];
  n4 -> n5 [label="s1.f.out0 [4]"];
}
)dot");
}

TEST(Synth, GoldenDotForkJoin) {
  EXPECT_EQ(netlist::toDot(synth::build(smallConfig(Topology::kForkJoin)).nl,
                           "forkjoin"),
            R"dot(digraph "forkjoin" {
  rankdir=LR;
  n0 [label="src\n(source)", shape=ellipse];
  n1 [label="fork\n(fork)", shape=ellipse];
  n2 [label="leaf0.f\n(func)", shape=ellipse];
  n3 [label="leaf1.f\n(func)", shape=ellipse];
  n4 [label="join0.0\n(func)", shape=ellipse];
  n5 [label="sink\n(sink)", shape=ellipse];
  n0 -> n1 [label="src.out0 [4]"];
  n1 -> n2 [label="fork.out0 [4]"];
  n1 -> n3 [label="fork.out1 [4]"];
  n2 -> n4 [label="leaf0.f.out0 [4]"];
  n3 -> n4 [label="leaf1.f.out0 [4]"];
  n4 -> n5 [label="join0.0.out0 [4]"];
}
)dot");
}

TEST(Synth, GoldenDotSpecLadder) {
  EXPECT_EQ(netlist::toDot(synth::build(smallConfig(Topology::kSpecLadder)).nl,
                           "ladder"),
            R"dot(digraph "ladder" {
  rankdir=LR;
  n0 [label="src\n(source)", shape=ellipse];
  n1 [label="r0.fork\n(fork)", shape=ellipse];
  n2 [label="r0.ebA\n(eb)", shape=box];
  n3 [label="r0.ebB\n(eb)", shape=box];
  n4 [label="r0.sel\n(source)", shape=ellipse];
  n5 [label="r0.mux\n(ee-mux)", shape=ellipse];
  n6 [label="sink\n(sink)", shape=ellipse];
  n0 -> n1 [label="src.out0 [4]"];
  n1 -> n2 [label="r0.fork.out0 [4]"];
  n1 -> n3 [label="r0.fork.out1 [4]"];
  n4 -> n5 [label="r0.sel.out0 [1]"];
  n2 -> n5 [label="r0.ebA.out0 [4]"];
  n3 -> n5 [label="r0.ebB.out0 [4]"];
  n5 -> n6 [label="r0.mux.out0 [4]"];
}
)dot");
}

TEST(Synth, GoldenDotRandomDag) {
  EXPECT_EQ(netlist::toDot(synth::build(smallConfig(Topology::kRandomDag, 5)).nl,
                           "dag"),
            R"dot(digraph "dag" {
  rankdir=LR;
  n0 [label="src0\n(source)", shape=ellipse];
  n1 [label="d0.f\n(func)", shape=ellipse];
  n2 [label="d1.eb\n(eb)", shape=box];
  n3 [label="d2.fork\n(fork)", shape=ellipse];
  n4 [label="d3.fork\n(fork)", shape=ellipse];
  n5 [label="d4.join\n(func)", shape=ellipse];
  n6 [label="d5.join\n(func)", shape=ellipse];
  n7 [label="sink0\n(sink)", shape=ellipse];
  n0 -> n1 [label="src0.out0 [4]"];
  n1 -> n2 [label="d0.f.out0 [4]"];
  n2 -> n3 [label="d1.eb.out0 [4]"];
  n3 -> n4 [label="d2.fork.out0 [4]"];
  n3 -> n5 [label="d2.fork.out1 [4]"];
  n4 -> n5 [label="d3.fork.out0 [4]"];
  n5 -> n6 [label="d4.join.out0 [4]"];
  n4 -> n6 [label="d3.fork.out1 [4]"];
  n6 -> n7 [label="d5.join.out0 [4]"];
}
)dot");
}

// ---------------------------------------------------------------------------
// Determinism and budget discipline
// ---------------------------------------------------------------------------

TEST(Synth, SameConfigSameNetlistDifferentSeedDifferentDag) {
  for (const Topology t : kAllTopologies) {
    SynthConfig cfg;
    cfg.topology = t;
    cfg.targetNodes = 64;
    cfg.seed = 42;
    const std::string a = netlist::toDot(synth::build(cfg).nl);
    const std::string b = netlist::toDot(synth::build(cfg).nl);
    EXPECT_EQ(a, b) << synth::describe(cfg);
  }
  SynthConfig dag;
  dag.topology = Topology::kRandomDag;
  dag.targetNodes = 64;
  dag.seed = 1;
  const std::string one = netlist::toDot(synth::build(dag).nl);
  dag.seed = 2;
  EXPECT_NE(one, netlist::toDot(synth::build(dag).nl));
}

TEST(Synth, NodeBudgetRespected) {
  for (const Topology t : kAllTopologies) {
    for (const std::size_t target : {8u, 50u, 400u}) {
      SynthConfig cfg;
      cfg.topology = t;
      cfg.targetNodes = target;
      const SynthSystem sys = synth::build(cfg);
      EXPECT_LE(sys.nodeCount, target) << synth::describe(cfg);
      // The budget is approached, not just undershot: at least half used.
      EXPECT_GE(sys.nodeCount, target / 2) << synth::describe(cfg);
      EXPECT_NE(sys.outChannel, kNoChannel);
      ASSERT_NE(sys.mainSink, nullptr);
    }
  }
}

// ---------------------------------------------------------------------------
// Behaviour: kernel cross-check (settle equivalence + EdgeActivity audit)
// ---------------------------------------------------------------------------

TEST(Synth, CrossCheckPassesOnAllTopologies) {
  for (const Topology t : kAllTopologies) {
    for (const unsigned inject : {1u, 8u}) {
      SynthConfig cfg;
      cfg.topology = t;
      cfg.targetNodes = 60;
      cfg.width = 8;
      cfg.seed = 7;
      cfg.injectPeriod = inject;
      SynthSystem sys = synth::build(cfg);
      SCOPED_TRACE(synth::describe(cfg));
      sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = true,
                                .crossCheckKernels = true});
      ASSERT_NO_THROW(s.run(250));
      EXPECT_GT(sys.mainSink->received(), 0u);
    }
  }
}

TEST(Synth, CrossCheckPassesOnVluPipeline) {
  SynthConfig cfg;
  cfg.topology = Topology::kPipeline;
  cfg.targetNodes = 40;
  cfg.width = 8;
  cfg.seed = 11;
  cfg.vluPermille = 500;
  SynthSystem sys = synth::build(cfg);
  sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = true,
                            .crossCheckKernels = true});
  ASSERT_NO_THROW(s.run(300));
  EXPECT_GT(sys.mainSink->received(), 0u);
}

TEST(Synth, KernelsProduceIdenticalTransferStreams) {
  for (const Topology t : kAllTopologies) {
    SynthConfig cfg;
    cfg.topology = t;
    cfg.targetNodes = 80;
    cfg.seed = 13;
    cfg.injectPeriod = 4;    // sparse: exercises the dirty-tracked edge phase
    cfg.bufferCapacity = 3;  // non-default EB capacity
    const auto runWith = [&](SimContext::SettleKernel kernel) {
      SynthSystem sys = synth::build(cfg);
      sim::Simulator s(sys.nl, {.checkProtocol = false, .kernel = kernel});
      s.run(400);
      std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
      for (const auto& tr : sys.mainSink->transfers())
        out.emplace_back(tr.cycle, tr.data.toUint64());
      return out;
    };
    const auto sweep = runWith(SimContext::SettleKernel::kSweep);
    const auto event = runWith(SimContext::SettleKernel::kEventDriven);
    EXPECT_GT(sweep.size(), 0u) << synth::describe(cfg);
    EXPECT_EQ(sweep, event) << synth::describe(cfg);
  }
}

// ---------------------------------------------------------------------------
// Datapath correctness: pipeline output values are predictable in closed form
// ---------------------------------------------------------------------------

TEST(Synth, PipelineComputesExpectedValues) {
  SynthConfig cfg;
  cfg.topology = Topology::kPipeline;
  cfg.targetNodes = 30;
  cfg.width = 16;
  cfg.seed = 21;
  SynthSystem sys = synth::build(cfg);

  std::size_t stages = 0;
  for (const NodeId id : sys.nl.nodeIds())
    if (sys.nl.node(id).kindName() == "func") ++stages;

  sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = true});
  s.run(200);
  ASSERT_GT(sys.mainSink->received(), 10u);

  std::uint64_t sumConsts = 0;
  for (std::size_t i = 0; i < stages; ++i) sumConsts += mix64(cfg.seed + i) | 1;
  const std::uint64_t mask = (1ULL << cfg.width) - 1;
  for (std::size_t j = 0; j < sys.mainSink->received(); ++j) {
    const std::uint64_t expect = (mix64(j, cfg.seed) + sumConsts) & mask;
    EXPECT_EQ(sys.mainSink->transfers()[j].data.toUint64(), expect) << "token " << j;
  }
}

TEST(Synth, RandomDagDeliversToEverySink) {
  SynthConfig cfg;
  cfg.topology = Topology::kRandomDag;
  cfg.targetNodes = 64;
  cfg.seed = 9;
  SynthSystem sys = synth::build(cfg);
  sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = true});
  s.run(400);
  ASSERT_FALSE(sys.sinks.empty());
  for (const TokenSink* sink : sys.sinks)
    EXPECT_GT(sink->received(), 0u) << synth::describe(cfg);
}

// ---------------------------------------------------------------------------
// Model checker: small nondet-environment instances pass the SELF suite
// ---------------------------------------------------------------------------

TEST(Synth, ModelCheckerPassesSmallInstances) {
  for (const Topology t : kAllTopologies) {
    SynthConfig cfg;
    cfg.topology = t;
    cfg.targetNodes = 8;
    cfg.width = 1;
    cfg.seed = 3;
    cfg.nondetEnv = true;
    SynthSystem sys = synth::build(cfg);
    ASSERT_LE(sys.nodeCount, 8u);
    SCOPED_TRACE(synth::describe(cfg));

    verify::ProtocolSuiteOptions opts;
    opts.maxStates = 200000;
    const auto report = verify::checkSelfProtocol(sys.nl, opts);
    EXPECT_FALSE(report.explore.truncated);
    EXPECT_GT(report.explore.states, 1u);
    EXPECT_TRUE(report.ok())
        << report.firstViolation();
  }
}

}  // namespace
}  // namespace esl
