// Co-simulation of the emitted BLIF control netlist against the behavioural
// model: a minimal BLIF interpreter evaluates the .names/.latch network with
// the same environment stimulus, and every handshake bit of every channel
// must match the cycle-accurate simulator, cycle by cycle. This promotes the
// BLIF emitter from "text generator" to a verified artifact.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "backend/blif.h"
#include "netlist/patterns.h"
#include "sim/simulator.h"

namespace esl {
namespace {

/// Tiny BLIF interpreter: supports .names (SOP covers with '1' outputs),
/// .latch (init 0/1), .inputs/.outputs. Combinational evaluation iterates to
/// a fixed point, mirroring the elastic kernel.
class BlifSim {
 public:
  explicit BlifSim(const std::string& text) {
    std::istringstream is(text);
    std::string line;
    Gate* current = nullptr;
    while (std::getline(is, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ls(line);
      std::string tok;
      ls >> tok;
      if (tok == ".inputs") {
        std::string s;
        while (ls >> s) inputs_.push_back(s);
      } else if (tok == ".names") {
        std::vector<std::string> sigs;
        std::string s;
        while (ls >> s) sigs.push_back(s);
        gates_.push_back({});
        current = &gates_.back();
        current->out = sigs.back();
        current->ins.assign(sigs.begin(), sigs.end() - 1);
      } else if (tok == ".latch") {
        Latch l;
        std::string init;
        ls >> l.in >> l.out >> init;
        l.state = init == "1";
        l.init = l.state;
        latches_.push_back(l);
        current = nullptr;
      } else if (tok[0] != '.') {
        if (current == nullptr) throw EslError("cover row outside .names");
        current->rows.push_back(tok);  // constant-1 gates have row "1"
      } else {
        current = nullptr;
      }
    }
  }

  void setInput(const std::string& name, bool v) { values_[name] = v; }

  /// Combinational settle: sweep all gates until stable.
  void settle() {
    for (const Latch& l : latches_) values_[l.out] = l.state;
    for (std::size_t iter = 0; iter < gates_.size() + 4; ++iter) {
      bool changed = false;
      for (const Gate& g : gates_) {
        const bool v = eval(g);
        auto it = values_.find(g.out);
        if (it == values_.end() || it->second != v) {
          values_[g.out] = v;
          changed = true;
        }
      }
      if (!changed) return;
    }
    throw EslError("BLIF network did not settle");
  }

  void clockEdge() {
    for (Latch& l : latches_) l.state = value(l.in);
  }

  bool value(const std::string& name) const {
    const auto it = values_.find(name);
    return it != values_.end() && it->second;
  }

  std::size_t latchCount() const { return latches_.size(); }

 private:
  struct Gate {
    std::vector<std::string> ins;
    std::string out;
    std::vector<std::string> rows;
  };
  struct Latch {
    std::string in, out;
    bool state = false, init = false;
  };

  bool eval(const Gate& g) const {
    if (g.ins.empty()) return !g.rows.empty();  // constant
    for (const std::string& row : g.rows) {
      bool match = true;
      for (std::size_t i = 0; i < g.ins.size() && match; ++i) {
        if (row[i] == '1') match = value(g.ins[i]);
        else if (row[i] == '0') match = !value(g.ins[i]);
      }
      if (match) return true;
    }
    return false;
  }

  std::vector<std::string> inputs_;
  std::vector<Gate> gates_;
  std::vector<Latch> latches_;
  std::map<std::string, bool> values_;
};

TEST(BlifCosim, Table1ControlMatchesBehaviouralModelCycleByCycle) {
  // Behavioural reference.
  auto sys = patterns::buildTable1({0, 1, 1, 0, 0});
  const std::string blif = backend::emitBlif(sys.nl, "t1");
  BlifSim hw(blif);
  EXPECT_GT(hw.latchCount(), 0u);

  Netlist& nl = sys.nl;
  SimContext ref(nl);
  ref.reset();

  const NodeId sharedId = sys.shared->id();
  const NodeId muxId = sys.mux->id();

  for (std::uint64_t cycle = 0; cycle < 12; ++cycle) {
    ref.settle();

    // Drive the BLIF primary inputs from the behavioural environment:
    // source valids, sink stop, the select VALUE and the scheduler VALUE.
    hw.setInput("src0_vf", ref.sig(sys.fin0).vf());
    hw.setInput("src1_vf", ref.sig(sys.fin1).vf());
    hw.setInput("selSrc_vf", ref.sig(sys.sel).vf());
    hw.setInput("sink_stop", ref.sig(sys.ebin).sf());
    hw.setInput("n" + std::to_string(muxId) + "_sel",
                ref.sig(sys.sel).vf() && ref.sig(sys.sel).dataLow64() == 1);
    hw.setInput("n" + std::to_string(sharedId) + "_sched",
                sys.shared->prediction(ref) == 1);
    hw.settle();

    // Every handshake bit of every channel must agree.
    for (const ChannelId ch : nl.channelIds()) {
      const ChannelSignals s = ref.sig(ch);
      const std::string base = "ch" + std::to_string(ch) + "_";
      ASSERT_EQ(hw.value(base + "vf"), s.vf)
          << "vf mismatch on " << nl.channel(ch).name << " at cycle " << cycle;
      ASSERT_EQ(hw.value(base + "sf"), s.sf)
          << "sf mismatch on " << nl.channel(ch).name << " at cycle " << cycle;
      ASSERT_EQ(hw.value(base + "vb"), s.vb)
          << "vb mismatch on " << nl.channel(ch).name << " at cycle " << cycle;
      ASSERT_EQ(hw.value(base + "sb"), s.sb)
          << "sb mismatch on " << nl.channel(ch).name << " at cycle " << cycle;
    }

    hw.clockEdge();
    ref.edge();
  }
}

TEST(BlifCosim, EbPipelineMatchesUnderBackpressure) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 4, TokenSource::counting(4));
  auto& a = nl.make<ElasticBuffer>("a", 4);
  auto& b = nl.make<ElasticBuffer0>("b", 4);
  auto& sink = nl.make<TokenSink>("sink", 4,
                                  [](std::uint64_t c) { return c % 3 != 1; });
  const ChannelId c0 = nl.connect(src, 0, a, 0, "c0");
  const ChannelId c1 = nl.connect(a, 0, b, 0, "c1");
  const ChannelId c2 = nl.connect(b, 0, sink, 0, "c2");

  BlifSim hw(backend::emitBlif(nl, "pipe"));
  SimContext ref(nl);
  ref.reset();

  for (std::uint64_t cycle = 0; cycle < 20; ++cycle) {
    ref.settle();
    hw.setInput("src_vf", ref.sig(c0).vf());
    hw.setInput("sink_stop", ref.sig(c2).sf());
    hw.settle();
    for (const ChannelId ch : {c0, c1, c2}) {
      const ChannelSignals s = ref.sig(ch);
      const std::string base = "ch" + std::to_string(ch) + "_";
      ASSERT_EQ(hw.value(base + "vf"), s.vf) << "cycle " << cycle;
      ASSERT_EQ(hw.value(base + "sf"), s.sf) << "cycle " << cycle;
    }
    hw.clockEdge();
    ref.edge();
  }
}

}  // namespace
}  // namespace esl
