#include "logic/secded.h"

#include <gtest/gtest.h>

#include "base/rng.h"

namespace esl::logic {
namespace {

TEST(Secded, EncodeWidth) {
  const BitVec code = secdedEncode(BitVec(64, 0));
  EXPECT_EQ(code.width(), kSecdedCodeBits);
  EXPECT_TRUE(code.isZero());  // all-zero word has all-zero checks
}

TEST(Secded, CleanDecode) {
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    const BitVec data = rng.bits(64);
    const BitVec code = secdedEncode(data);
    const SecdedResult r = secdedDecode(code);
    EXPECT_EQ(r.status, SecdedStatus::kOk);
    EXPECT_EQ(r.data, data);
    EXPECT_EQ(secdedPayload(code), data);
  }
}

TEST(Secded, BadWidthThrows) {
  EXPECT_THROW(secdedEncode(BitVec(63)), EslError);
  EXPECT_THROW(secdedDecode(BitVec(71)), EslError);
  EXPECT_THROW(secdedPayload(BitVec(64)), EslError);
}

/// Every single-bit flip of the 72-bit word must be corrected.
class SecdedSingleErrorTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SecdedSingleErrorTest, CorrectsFlipAtPosition) {
  const unsigned pos = GetParam();
  Rng rng(1000 + pos);
  for (int i = 0; i < 10; ++i) {
    const BitVec data = rng.bits(64);
    BitVec code = secdedEncode(data);
    code.setBit(pos, !code.bit(pos));
    const SecdedResult r = secdedDecode(code);
    EXPECT_EQ(r.status, SecdedStatus::kCorrected) << "flip at " << pos;
    EXPECT_EQ(r.correctedBit, pos);
    EXPECT_EQ(r.data, data) << "flip at " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPositions, SecdedSingleErrorTest,
                         ::testing::Range(0u, kSecdedCodeBits));

TEST(Secded, DetectsDoubleErrors) {
  Rng rng(7);
  int checked = 0;
  for (int i = 0; i < 300; ++i) {
    const BitVec data = rng.bits(64);
    BitVec code = secdedEncode(data);
    const unsigned p1 = static_cast<unsigned>(rng.below(kSecdedCodeBits));
    const unsigned p2 = static_cast<unsigned>(rng.below(kSecdedCodeBits));
    if (p1 == p2) continue;
    code.setBit(p1, !code.bit(p1));
    code.setBit(p2, !code.bit(p2));
    const SecdedResult r = secdedDecode(code);
    EXPECT_EQ(r.status, SecdedStatus::kDoubleError)
        << "flips at " << p1 << "," << p2;
    ++checked;
  }
  EXPECT_GT(checked, 200);
}

TEST(Secded, ExhaustiveDoubleErrorsOnOneWord) {
  const BitVec data(64, 0xDEADBEEFCAFEF00DULL);
  const BitVec code = secdedEncode(data);
  for (unsigned p1 = 0; p1 < kSecdedCodeBits; ++p1) {
    for (unsigned p2 = p1 + 1; p2 < kSecdedCodeBits; ++p2) {
      BitVec corrupted = code;
      corrupted.setBit(p1, !corrupted.bit(p1));
      corrupted.setBit(p2, !corrupted.bit(p2));
      ASSERT_EQ(secdedDecode(corrupted).status, SecdedStatus::kDoubleError)
          << "flips at " << p1 << "," << p2;
    }
  }
}

TEST(Secded, PayloadIgnoresCheckBits) {
  // Flipping only check bits must not change the speculative payload.
  const BitVec data(64, 0x123456789ABCDEF0ULL);
  BitVec code = secdedEncode(data);
  for (const unsigned checkPos : {0u, 1u, 3u, 7u, 15u, 31u, 63u, 71u}) {
    BitVec c = code;
    c.setBit(checkPos, !c.bit(checkPos));
    EXPECT_EQ(secdedPayload(c), data) << "check bit " << checkPos;
  }
}

TEST(Secded, DataBitFlipCorruptsPayloadButDecodes) {
  // A data-position flip corrupts the raw payload (what the speculative adder
  // consumes) yet decodes back to the original — the §5.2 replay relies on it.
  const BitVec data(64, 0xFFFFFFFF00000000ULL);
  BitVec code = secdedEncode(data);
  code.setBit(2, !code.bit(2));  // position 3 is a data position (not 2^k)
  EXPECT_NE(secdedPayload(code), data);
  const SecdedResult r = secdedDecode(code);
  EXPECT_EQ(r.status, SecdedStatus::kCorrected);
  EXPECT_EQ(r.data, data);
}

}  // namespace
}  // namespace esl::logic
