// State snapshot round-trip tests (src/elastic/state_io.h + packState).
//
// The model checker's whole correctness story rests on pack/unpack being a
// lossless bijection on reachable states for every node type: a lossy pack
// merges distinct states (unsound verification), a lossy unpack breaks the
// per-transition restore. These tests pin both directions:
//   * primitive round-trips through StateWriter/StateReader,
//   * per-cycle losslessness (pack -> unpack -> pack identical) on harnesses
//     covering every node type, sampled at every cycle of a traffic window so
//     mid-speculation, mid-latency and in-flight anti-token states are hit,
//   * resume equivalence: a fresh netlist restored from a mid-run snapshot
//     continues bit-identically to the original under identical choices.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>

#include "base/fault_inject.h"
#include "base/rng.h"
#include "netlist/patterns.h"
#include "netlist/synth.h"
#include "sim/state_file.h"
#include "test_util.h"

namespace esl {
namespace {

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

TEST(StateIo, PrimitiveRoundTrip) {
  StateWriter w;
  w.writeBool(true);
  w.writeBool(false);
  w.writeU32(0);
  w.writeU32(0xdeadbeefu);
  w.writeU64(0x0123456789abcdefULL);
  for (const unsigned width : {1u, 7u, 8u, 9u, 31u, 63u, 64u, 65u, 130u}) {
    BitVec v(width);
    for (unsigned i = 0; i < width; i += 3) v.setBit(i, true);
    w.writeBitVec(v);
  }
  const auto bytes = w.take();

  StateReader r(bytes);
  EXPECT_TRUE(r.readBool());
  EXPECT_FALSE(r.readBool());
  EXPECT_EQ(r.readU32(), 0u);
  EXPECT_EQ(r.readU32(), 0xdeadbeefu);
  EXPECT_EQ(r.readU64(), 0x0123456789abcdefULL);
  for (const unsigned width : {1u, 7u, 8u, 9u, 31u, 63u, 64u, 65u, 130u}) {
    const BitVec v = r.readBitVec();
    ASSERT_EQ(v.width(), width);
    for (unsigned i = 0; i < width; ++i) EXPECT_EQ(v.bit(i), i % 3 == 0);
  }
  EXPECT_TRUE(r.done());
}

TEST(StateIo, WriterBufferReuseMatchesFreshWriter) {
  StateWriter fresh;
  fresh.writeU64(42);
  fresh.writeBool(true);
  const auto expect = fresh.take();

  std::vector<std::uint8_t> reused(128, 0xee);  // stale content must vanish
  StateWriter w(std::move(reused));
  w.writeU64(42);
  w.writeBool(true);
  EXPECT_EQ(w.take(), expect);
}

TEST(StateIo, ReaderRejectsShortBuffer) {
  StateWriter w;
  w.writeU32(7);
  const auto bytes = w.take();
  StateReader r(bytes);
  (void)r.readU32();
  EXPECT_THROW(r.readU32(), EslError);
}

TEST(StateIo, HashBytesIsStableAndDiscriminates) {
  const std::vector<std::uint8_t> a{1, 2, 3}, b{1, 2, 4}, c{1, 2, 3};
  EXPECT_EQ(hashBytes(a), hashBytes(c));
  EXPECT_NE(hashBytes(a), hashBytes(b));
  EXPECT_NE(hashBytes({}), hashBytes({0}));  // empty vs one zero byte
}

// ---------------------------------------------------------------------------
// Whole-netlist round trips: every cycle of a traffic window is lossless and
// resumable on a fresh instance
// ---------------------------------------------------------------------------

/// Drives `a` for `warmup` cycles, then every cycle for `window` more:
/// packs, restores into the freshly-built `b`, repacks (must be identical),
/// and steps both in lockstep under identical choices comparing state.
void expectSnapshotsLossless(const std::function<Netlist()>& build,
                             std::uint64_t warmup, std::uint64_t window,
                             std::uint64_t choiceSeed = 0x51a7e5ULL) {
  Netlist a = build();
  SimContext ca(a);
  Netlist b = build();
  SimContext cb(b);
  Netlist c = build();
  SimContext probe(c);  // scratch instance for per-cycle round-trip checks
  ASSERT_EQ(ca.totalChoices(), cb.totalChoices());

  Rng rng(choiceSeed);
  const auto drawFrom = [&](Rng& source) {
    std::vector<bool> bits(ca.totalChoices());
    for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = source.next() & 1;
    return bits;
  };
  const auto stepWith = [](SimContext& ctx, const std::vector<bool>& bits) {
    ctx.setChoicesFrom(bits);
    ctx.settle();
    ctx.edge();
  };

  // Warm both instances up — with DIFFERENT choice streams, so b's node state
  // genuinely differs before the restore (a restore into an already-equal
  // instance would not catch an unpacked field). The vector-API packState()
  // carries the cycle counter in its versioned header, so the restore below
  // realigns b's cycle automatically; only the headerless packStateInto()
  // (the model checker's per-transition path, whose environments are
  // cycle-free by construction) leaves the counter out.
  Rng rngB(choiceSeed ^ 0xb0b0b0b0ULL);
  for (std::uint64_t i = 0; i < warmup; ++i) {
    stepWith(ca, drawFrom(rng));
    stepWith(cb, drawFrom(rngB));
  }

  // Restore b from a's mid-run state, then run both in lockstep; every cycle
  // both the restored and the original instance must agree byte for byte.
  std::vector<std::uint8_t> snap = ca.packState();
  cb.unpackState(snap);
  EXPECT_EQ(cb.packState(), snap) << "restore+repack is not lossless";

  for (std::uint64_t i = 0; i < window; ++i) {
    const std::vector<bool> bits = drawFrom(rng);
    stepWith(ca, bits);
    stepWith(cb, bits);
    const auto sa = ca.packState();
    ASSERT_EQ(sa, cb.packState()) << "diverged " << i << " cycles after restore";
    // Per-cycle losslessness on the live run, covering transient states.
    probe.unpackState(sa);
    ASSERT_EQ(probe.packState(), sa) << "lossy round-trip at cycle " << i;
  }
}

TEST(StateIo, BufferChainWithAntiTokens) {
  expectSnapshotsLossless(
      [] {
        Netlist nl;
        auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
        auto& eb0 = nl.make<ElasticBuffer>("eb0", 8, 2u);
        auto& z = nl.make<ElasticBuffer0>("z", 8);
        auto& eb1 = nl.make<ElasticBuffer>("eb1", 8, 3u);
        auto& sink = nl.make<TokenSink>(
            "sink", 8, [](std::uint64_t c) { return hashChancePermille(c, 600, 5); },
            /*antiBudget=*/3,
            [](std::uint64_t c) { return hashChancePermille(c, 150, 9); });
        nl.connect(src, 0, eb0, 0);
        nl.connect(eb0, 0, z, 0);
        nl.connect(z, 0, eb1, 0);
        nl.connect(eb1, 0, sink, 0);
        return nl;
      },
      17, 60);
}

TEST(StateIo, ForkJoinTree) {
  synth::SynthConfig cfg;
  cfg.topology = synth::Topology::kForkJoin;
  cfg.targetNodes = 30;
  cfg.width = 8;
  cfg.seed = 5;
  expectSnapshotsLossless([cfg] { return synth::buildNetlist(cfg); }, 13, 40);
}

TEST(StateIo, SpecLadderMidSpeculation) {
  // The ee-mux ladder keeps anti-token kill-backs in flight: pendingAnti_
  // counters, buffered branch copies and select streams are all mid-flight in
  // the sampled window.
  synth::SynthConfig cfg;
  cfg.topology = synth::Topology::kSpecLadder;
  cfg.targetNodes = 24;
  cfg.width = 4;
  cfg.seed = 11;
  expectSnapshotsLossless([cfg] { return synth::buildNetlist(cfg); }, 9, 50);
}

TEST(StateIo, VluPipelineMidLatency) {
  synth::SynthConfig cfg;
  cfg.topology = synth::Topology::kPipeline;
  cfg.targetNodes = 24;
  cfg.width = 8;
  cfg.seed = 7;
  cfg.vluPermille = 600;  // plenty of stalling variable-latency stages
  expectSnapshotsLossless([cfg] { return synth::buildNetlist(cfg); }, 11, 50);
}

TEST(StateIo, SharedModuleSpeculativeLoop) {
  // Fig. 1 speculative loop: SharedModule + scheduler + ee-mux + VLU under
  // anti-token traffic — the densest per-node state in the repo.
  expectSnapshotsLossless(
      [] {
        return std::move(
            patterns::buildFig1(patterns::Fig1Variant::kSpeculative).nl);
      },
      23, 60);
}

TEST(StateIo, NondetEnvironments) {
  expectSnapshotsLossless(
      [] {
        Netlist nl;
        auto& src = nl.make<NondetSource>("src", 1, 2, /*dataBits=*/1);
        auto& eb = nl.make<ElasticBuffer>("eb", 1);
        auto& sink = nl.make<NondetSink>("sink", 1, 2, /*emitsAnti=*/true);
        nl.connect(src, 0, eb, 0);
        nl.connect(eb, 0, sink, 0);
        return nl;
      },
      15, 60);
}

// ---------------------------------------------------------------------------
// Versioned snapshot header: cycle-gated environment resume
// ---------------------------------------------------------------------------

/// Source/sink gated on ctx.cycle() via per-cycle permille draws: resume is
/// phase-sensitive, so the restored instance must inherit the cycle counter.
Netlist buildGatedEnvChain() {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8, 2u);
  auto& sink = nl.make<TokenSink>(
      "sink", 8, [](std::uint64_t c) { return hashChancePermille(c, 500, 3); },
      /*antiBudget=*/2,
      [](std::uint64_t c) { return hashChancePermille(c, 200, 7); });
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, sink, 0);
  return nl;
}

TEST(StateIo, SnapshotHeaderCarriesCycleForGatedEnvResume) {
  // Deliberately misalign the two instances' cycle counters before the
  // restore. The gated sink draws from hashChancePermille(cycle), so without
  // the header's cycle field the restored instance would phase-shift every
  // draw and diverge within a few cycles.
  Netlist a = buildGatedEnvChain();
  SimContext ca(a);
  Netlist b = buildGatedEnvChain();
  SimContext cb(b);
  for (int i = 0; i < 23; ++i) ca.step();
  for (int i = 0; i < 5; ++i) cb.step();
  ASSERT_NE(ca.cycle(), cb.cycle());

  const std::vector<std::uint8_t> snap = ca.packState();
  cb.unpackState(snap);
  EXPECT_EQ(cb.cycle(), ca.cycle()) << "header cycle not restored";
  EXPECT_EQ(cb.packState(), snap);

  for (int i = 0; i < 40; ++i) {
    ca.step();
    cb.step();
    ASSERT_EQ(ca.packState(), cb.packState())
        << "gated-env resume diverged " << i << " cycles after restore";
  }
}

TEST(StateIo, SnapshotHeaderLayout) {
  Netlist nl = buildGatedEnvChain();
  SimContext ctx(nl);
  for (int i = 0; i < 7; ++i) ctx.step();
  const std::vector<std::uint8_t> snap = ctx.packState();
  ASSERT_GE(snap.size(), 16u);
  const auto le32 = [&](std::size_t off) {
    return static_cast<std::uint32_t>(snap[off]) |
           (static_cast<std::uint32_t>(snap[off + 1]) << 8) |
           (static_cast<std::uint32_t>(snap[off + 2]) << 16) |
           (static_cast<std::uint32_t>(snap[off + 3]) << 24);
  };
  EXPECT_EQ(le32(0), SimContext::kSnapshotMagic);
  EXPECT_EQ(le32(4), SimContext::kSnapshotVersion);
  EXPECT_EQ(static_cast<std::uint64_t>(le32(8)) |
                (static_cast<std::uint64_t>(le32(12)) << 32),
            ctx.cycle());
  // The header is exactly the 16-byte prefix: stripping it yields the
  // headerless per-transition encoding, byte for byte.
  std::vector<std::uint8_t> raw;
  ctx.packStateInto(raw);
  EXPECT_EQ(std::vector<std::uint8_t>(snap.begin() + 16, snap.end()), raw);
}

TEST(StateIo, HeaderlessSnapshotsStillRestore) {
  // The model checker's per-transition path (packStateInto) stays headerless;
  // unpackState must keep accepting those raw byte strings unchanged.
  Netlist a = buildGatedEnvChain();
  SimContext ca(a);
  Netlist b = buildGatedEnvChain();
  SimContext cb(b);
  for (int i = 0; i < 11; ++i) ca.step();
  std::vector<std::uint8_t> raw;
  ca.packStateInto(raw);
  cb.unpackState(raw);
  std::vector<std::uint8_t> again;
  cb.packStateInto(again);
  EXPECT_EQ(again, raw);
}

TEST(StateIo, UnpackRejectsForeignNetlistState) {
  synth::SynthConfig small;
  small.topology = synth::Topology::kPipeline;
  small.targetNodes = 8;
  synth::SynthConfig big = small;
  big.targetNodes = 24;
  Netlist a = synth::buildNetlist(small);
  Netlist b = synth::buildNetlist(big);
  SimContext ca(a);
  SimContext cb(b);
  EXPECT_THROW(cb.unpackState(ca.packState()), EslError);
}

// ---------------------------------------------------------------------------
// Durable state files (src/sim/state_file.h): the checksummed container
// around --save-state snapshots and serve spool records. Damage of every
// flavor must come back as a clean EslError naming the file — never a crash,
// never silently-wrong bytes handed to a deserializer.
// ---------------------------------------------------------------------------

/// A real mid-run snapshot payload (proper SimContext header + node state).
std::vector<std::uint8_t> sampleSnapshot() {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8, 2u);
  auto& sink = nl.make<TokenSink>(
      "sink", 8, [](std::uint64_t c) { return hashChancePermille(c, 600, 5); });
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, sink, 0);
  SimContext ctx(nl);
  Rng rng(0xf11e5);
  for (int i = 0; i < 23; ++i) {
    std::vector<bool> bits(ctx.totalChoices());
    for (std::size_t j = 0; j < bits.size(); ++j) bits[j] = rng.next() & 1;
    ctx.setChoicesFrom(bits);
    ctx.settle();
    ctx.edge();
  }
  return ctx.packState();
}

std::string tempStatePath(const std::string& name) {
  return testing::TempDir() + "esl_state_file_" + name;
}

void writeRawBytes(const std::string& path,
                   const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(StateFile, SnapshotRoundTripsThroughChecksummedContainer) {
  const auto snap = sampleSnapshot();
  const std::string path = tempStatePath("roundtrip.state");
  sim::writeSnapshotFile(path, snap);
  // On disk it is a container (record magic first), not raw snapshot bytes.
  const auto onDisk = sim::readFileBytes(path);
  ASSERT_GE(onDisk.size(), sim::kRecordHeaderBytes + snap.size());
  EXPECT_EQ(onDisk[0], static_cast<std::uint8_t>(sim::kRecordMagic & 0xff));
  EXPECT_EQ(sim::readSnapshotFile(path), snap);
  std::remove(path.c_str());
}

TEST(StateFile, LegacyRawSnapshotStillLoads) {
  // Pre-container --save-state output: the bare packState bytes. Sniffing by
  // the snapshot magic must keep these loading, un-checksummed.
  const auto snap = sampleSnapshot();
  const std::string path = tempStatePath("legacy.state");
  writeRawBytes(path, snap);
  EXPECT_EQ(sim::readSnapshotFile(path), snap);
  std::remove(path.c_str());
}

TEST(StateFile, TruncatedRecordsAreRejected) {
  const auto snap = sampleSnapshot();
  const std::string path = tempStatePath("truncated.state");
  sim::writeSnapshotFile(path, snap);
  auto bytes = sim::readFileBytes(path);
  // Torn mid-payload: header intact, payload short.
  auto torn = bytes;
  torn.resize(bytes.size() - 7);
  writeRawBytes(path, torn);
  EXPECT_THROW(sim::readSnapshotFile(path), EslError);
  EXPECT_THROW(sim::readRecordFile(path), EslError);
  // Torn inside the header itself.
  torn.resize(sim::kRecordHeaderBytes / 2);
  writeRawBytes(path, torn);
  EXPECT_THROW(sim::readSnapshotFile(path), EslError);
  std::remove(path.c_str());
}

TEST(StateFile, BitFlippedRecordsAreRejected) {
  const auto snap = sampleSnapshot();
  const std::string path = tempStatePath("bitflip.state");
  sim::writeSnapshotFile(path, snap);
  auto bytes = sim::readFileBytes(path);
  bytes[sim::kRecordHeaderBytes + bytes.size() / 2] ^= 0x10;  // payload rot
  writeRawBytes(path, bytes);
  EXPECT_THROW(sim::readRecordFile(path), EslError);
  EXPECT_THROW(sim::readSnapshotFile(path), EslError);
  std::remove(path.c_str());
}

TEST(StateFile, ForeignFilesAreRejected) {
  const std::string path = tempStatePath("foreign.state");
  const std::string text = "this is not an esl state file\n";
  writeRawBytes(path, std::vector<std::uint8_t>(text.begin(), text.end()));
  EXPECT_THROW(sim::readSnapshotFile(path), EslError);
  EXPECT_THROW(sim::readRecordFile(path), EslError);
  std::remove(path.c_str());
}

TEST(StateFile, MissingFileIsACleanError) {
  EXPECT_THROW(sim::readSnapshotFile(tempStatePath("never-written.state")),
               EslError);
}

TEST(StateFile, InjectedWriteFaultsProduceCleanFailures) {
  const auto snap = sampleSnapshot();
  const std::string path = tempStatePath("faulted.state");
  // fail: the write throws; no file appears under the real name.
  fault::arm("state-file-write", {fault::Kind::kFail, 1, 0});
  EXPECT_THROW(sim::writeSnapshotFile(path, snap), EslError);
  EXPECT_THROW(sim::readFileBytes(path), EslError);  // nothing was renamed in
  // truncate: the write "succeeds" but the artifact is torn — the reader
  // must catch it by declared-length mismatch.
  fault::arm("state-file-write", {fault::Kind::kTruncate, 1, 40});
  sim::writeSnapshotFile(path, snap);
  EXPECT_THROW(sim::readSnapshotFile(path), EslError);
  // bitflip: full-length artifact, one bit of rot — caught by the CRC.
  fault::arm("state-file-write",
             {fault::Kind::kBitFlip, 1, (sim::kRecordHeaderBytes + 9) * 8});
  sim::writeSnapshotFile(path, snap);
  EXPECT_THROW(sim::readSnapshotFile(path), EslError);
  fault::disarmAll();
  // Disarmed, the same path round-trips again.
  sim::writeSnapshotFile(path, snap);
  EXPECT_EQ(sim::readSnapshotFile(path), snap);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace esl
