// The paper (§4.1): "The consideration below can be easily generalized for
// sharing of k blocks" / "The implementation of the controller can be
// trivially extended to handle more than two channels." These tests exercise
// the k=3 and k=4 cases end to end.
#include <gtest/gtest.h>

#include "test_util.h"
#include "verify/checker.h"

namespace esl {
namespace {

using test::receivedCycles;
using test::receivedValues;

/// Open k-way system in the style of Table 1: k operand streams, an
/// independent select stream, one shared block, one early-evaluation mux.
struct KWay {
  Netlist nl;
  SharedModule* shared = nullptr;
  EarlyEvalMux* mux = nullptr;
  TokenSink* sink = nullptr;
};

KWay buildKWay(unsigned k, std::vector<std::uint64_t> selStream,
               std::unique_ptr<sched::Scheduler> sched) {
  KWay s;
  const unsigned selW = 2;
  s.shared = &s.nl.make<SharedModule>(
      "F", k, 8, 8, [](const BitVec& x) { return x; }, std::move(sched));
  s.mux = &s.nl.make<EarlyEvalMux>("mux", k, selW, 8);
  s.sink = &s.nl.make<TokenSink>("sink", 8);
  for (unsigned i = 0; i < k; ++i) {
    auto& src = s.nl.make<TokenSource>("src" + std::to_string(i), 8,
                                       TokenSource::counting(8, 10 + 50 * i));
    s.nl.connect(src, 0, *s.shared, i, "in" + std::to_string(i));
    s.nl.connect(*s.shared, i, *s.mux, 1 + i, "out" + std::to_string(i));
  }
  auto& sel = s.nl.make<TokenSource>("sel", selW,
                                     TokenSource::listOf(std::move(selStream), selW));
  s.nl.connect(sel, 0, *s.mux, 0, "sel");
  s.nl.connect(*s.mux, 0, *s.sink, 0, "out");
  s.nl.validate();
  return s;
}

TEST(ThreeWay, RoundRobinServesAllChannels) {
  auto sys =
      buildKWay(3, {0, 1, 2, 0, 1, 2}, std::make_unique<sched::RoundRobinScheduler>(3));
  sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = true});
  s.run(20);
  const auto vals = receivedValues(*sys.sink);
  ASSERT_EQ(vals.size(), 6u);
  // Round-robin prediction matches the 0,1,2 select pattern perfectly:
  // every firing takes the head of its stream; each firing also kills the
  // aligned tokens on the two non-selected streams.
  EXPECT_EQ(vals, (std::vector<std::uint64_t>{10, 61, 112, 13, 64, 115}));
}

TEST(ThreeWay, EveryFiringKillsBothOtherStreams) {
  auto sys = buildKWay(3, {0, 0, 0, 0}, std::make_unique<sched::StaticScheduler>(3, 0));
  sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = true});
  s.run(10);
  EXPECT_EQ(receivedValues(*sys.sink), (std::vector<std::uint64_t>{10, 11, 12, 13}));
  // 2 anti-tokens per firing.
  EXPECT_EQ(sys.mux->antiTokensEmitted(), 8u);
}

TEST(ThreeWay, MispredictionCorrectsToDemandedChannel) {
  auto sys = buildKWay(3, {2, 2}, std::make_unique<sched::StaticScheduler>(3, 0));
  sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = true});
  s.run(8);
  const auto vals = receivedValues(*sys.sink);
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(vals[0], 110u);  // channel 2 after a one-cycle correction
  EXPECT_EQ(vals[1], 111u);
  EXPECT_EQ(receivedCycles(*sys.sink)[0], 1u);  // cycle 0 was the mispredict
}

TEST(FourWay, SelectOutOfRangeStillChecked) {
  auto sys = buildKWay(4, {3, 0, 3}, std::make_unique<sched::LastServedScheduler>(4));
  sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = true});
  s.run(12);
  const auto vals = receivedValues(*sys.sink);
  ASSERT_EQ(vals.size(), 3u);
  // Each firing consumes one generation from EVERY stream (the non-selected
  // ones via anti-token kills), so the streams advance in lockstep.
  EXPECT_EQ(vals[0], 160u);  // gen 1 from channel 3
  EXPECT_EQ(vals[1], 11u);   // gen 2 from channel 0 (10 was killed by gen 1)
  EXPECT_EQ(vals[2], 162u);  // gen 3 from channel 3 (161 killed by gen 2)
}

TEST(FourWay, LeadsToHoldsWithBoundedFairScheduler) {
  // Model-check the k=4 composition in its aligned form: one nondet source
  // whose 2-bit payload is the select, forked to all four shared inputs.
  Netlist nl;
  auto& src = nl.make<NondetSource>("env.src", 2, 2, /*dataBits=*/2);
  auto& fork = nl.make<ForkNode>("fork", 2, 5);
  auto& shared = nl.make<SharedModule>(
      "shared", 4, 2, 2, [](const BitVec& x) { return x; },
      std::make_unique<sched::BoundedFairScheduler>(4, 1));
  auto& mux = nl.make<EarlyEvalMux>("mux", 4, 2, 2);
  auto& sink = nl.make<NondetSink>("env.sink", 2, 2);
  nl.connect(src, 0, fork, 0, "stem");
  for (unsigned i = 0; i < 4; ++i) {
    nl.connect(fork, i, shared, i, "in" + std::to_string(i));
    nl.connect(shared, i, mux, 1 + i, "out" + std::to_string(i));
  }
  nl.connect(fork, 4, mux, 0, "sel");
  nl.connect(mux, 0, sink, 0, "muxout");

  const auto report = verify::checkSchedulerLeadsTo(nl, shared.id());
  EXPECT_EQ(report.propertiesChecked, 4u);
  EXPECT_FALSE(report.explore.truncated);
  EXPECT_TRUE(report.ok()) << report.firstViolation();
}

TEST(ThreeWay, StarvingSchedulerStillCaughtAtK3) {
  Netlist nl;
  auto& src = nl.make<NondetSource>("env.src", 1, 2, /*dataBits=*/1);
  auto& fork = nl.make<ForkNode>("fork", 1, 4);
  auto& shared = nl.make<SharedModule>(
      "shared", 3, 1, 1, [](const BitVec& x) { return x; },
      std::make_unique<sched::StarvingScheduler>(3));
  auto& mux = nl.make<EarlyEvalMux>("mux", 3, 1, 1);
  auto& sink = nl.make<NondetSink>("env.sink", 1, 2);
  nl.connect(src, 0, fork, 0, "stem");
  for (unsigned i = 0; i < 3; ++i) {
    nl.connect(fork, i, shared, i, "in" + std::to_string(i));
    nl.connect(shared, i, mux, 1 + i, "out" + std::to_string(i));
  }
  nl.connect(fork, 3, mux, 0, "sel");
  nl.connect(mux, 0, sink, 0, "muxout");

  const auto report = verify::checkSchedulerLeadsTo(nl, shared.id());
  EXPECT_FALSE(report.ok());  // channels 1 and 2 starve
}

}  // namespace
}  // namespace esl
