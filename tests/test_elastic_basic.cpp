#include <gtest/gtest.h>

#include "test_util.h"

namespace esl {
namespace {

using test::iota;
using test::receivedValues;

TEST(FuncNode, UnaryThroughPipeline) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8);
  auto& inc = makeUnary(nl, "inc", 8, 8,
                        [](const BitVec& x) { return x + BitVec(8, 1); });
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, inc, 0);
  nl.connect(inc, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(10);
  EXPECT_EQ(receivedValues(sink), iota(9, 1));
}

TEST(FuncNode, JoinWaitsForBothInputs) {
  Netlist nl;
  auto& a = nl.make<TokenSource>("a", 8, TokenSource::counting(8));
  // Source b only offers a new token every second cycle.
  auto& b = nl.make<TokenSource>("b", 8, TokenSource::counting(8, 100),
                                 [](std::uint64_t c) { return c % 2 == 0; });
  auto& add = makeBinary(nl, "add", 8, 8, 8,
                         [](const BitVec& x, const BitVec& y) { return x + y; });
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(a, 0, add, 0);
  nl.connect(b, 0, add, 1);
  nl.connect(add, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(21);
  const auto vals = receivedValues(sink);
  ASSERT_GE(vals.size(), 5u);
  for (std::size_t i = 0; i < vals.size(); ++i)
    EXPECT_EQ(vals[i], (i + (100 + i)) & 0xFF);  // pairwise, in order
  // Throughput limited by the slower input.
  EXPECT_LE(vals.size(), 11u);
}

TEST(FuncNode, WrongWidthResultThrows) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& bad = nl.make<FuncNode>("bad", std::vector<unsigned>{8}, 8,
                                [](const std::vector<BitVec>&) { return BitVec(4); });
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(src, 0, bad, 0);
  nl.connect(bad, 0, sink, 0);
  sim::Simulator s(nl);
  EXPECT_THROW(s.run(2), EslError);
}

TEST(ForkNode, BothBranchesReceiveStream) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8);
  auto& fork = nl.make<ForkNode>("fork", 8, 2);
  auto& s0 = nl.make<TokenSink>("s0", 8);
  auto& s1 = nl.make<TokenSink>("s1", 8);
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, fork, 0);
  nl.connect(fork, 0, s0, 0);
  nl.connect(fork, 1, s1, 0);

  sim::Simulator s(nl);
  s.run(10);
  EXPECT_EQ(receivedValues(s0), iota(9));
  EXPECT_EQ(receivedValues(s1), iota(9));
}

TEST(ForkNode, EagerBranchRunsAheadBoundedly) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8);
  auto& fork = nl.make<ForkNode>("fork", 8, 2);
  auto& fast = nl.make<TokenSink>("fast", 8);
  auto& slow = nl.make<TokenSink>("slow", 8,
                                  [](std::uint64_t c) { return c % 4 == 3; });
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, fork, 0);
  nl.connect(fork, 0, fast, 0);
  nl.connect(fork, 1, slow, 0);

  sim::Simulator s(nl);
  s.run(41);
  // Both see the same prefix of the stream, the fast one at most one ahead
  // (the eager fork's done bit lets it take its copy early).
  const auto vf = receivedValues(fast);
  const auto vs = receivedValues(slow);
  EXPECT_EQ(vs, iota(vs.size()));
  EXPECT_EQ(vf, iota(vf.size()));
  EXPECT_GE(vf.size(), vs.size());
  EXPECT_LE(vf.size(), vs.size() + 1);
}

TEST(ForkNode, ThreeWay) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& fork = nl.make<ForkNode>("fork", 8, 3);
  auto& s0 = nl.make<TokenSink>("s0", 8);
  auto& s1 = nl.make<TokenSink>("s1", 8);
  auto& s2 = nl.make<TokenSink>("s2", 8);
  nl.connect(src, 0, fork, 0);
  nl.connect(fork, 0, s0, 0);
  nl.connect(fork, 1, s1, 0);
  nl.connect(fork, 2, s2, 0);

  sim::Simulator s(nl);
  s.run(10);
  EXPECT_EQ(receivedValues(s0), iota(10));
  EXPECT_EQ(receivedValues(s1), iota(10));
  EXPECT_EQ(receivedValues(s2), iota(10));
}

TEST(Netlist, ValidateCatchesUnboundPorts) {
  Netlist nl;
  nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  EXPECT_THROW(nl.validate(), EslError);
}

TEST(Netlist, ConnectChecksWidths) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& sink = nl.make<TokenSink>("sink", 16);
  EXPECT_THROW(nl.connect(src, 0, sink, 0), EslError);
}

TEST(Netlist, DoubleConnectRejected) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& s1 = nl.make<TokenSink>("s1", 8);
  auto& s2 = nl.make<TokenSink>("s2", 8);
  nl.connect(src, 0, s1, 0);
  EXPECT_THROW(nl.connect(src, 0, s2, 0), EslError);
}

TEST(Netlist, InsertOnChannelSplices) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& sink = nl.make<TokenSink>("sink", 8);
  const ChannelId ch = nl.connect(src, 0, sink, 0);
  auto& eb = nl.make<ElasticBuffer>("eb", 8);
  const ChannelId down = nl.insertOnChannel(ch, eb);
  nl.validate();
  EXPECT_EQ(nl.channel(ch).consumer, eb.id());
  EXPECT_EQ(nl.channel(down).producer, eb.id());
  EXPECT_EQ(nl.channel(down).consumer, sink.id());

  sim::Simulator s(nl);
  s.run(5);
  EXPECT_EQ(receivedValues(sink), iota(4));
}

TEST(Netlist, BypassNodeRemovesStage) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8);
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, sink, 0);
  nl.bypassNode(eb.id());
  nl.removeNode(eb.id());
  nl.validate();

  sim::Simulator s(nl);
  s.run(5);
  EXPECT_EQ(receivedValues(sink), iota(5));  // no EB latency anymore
}

// A deliberately ill-formed node whose output oscillates: the settle loop
// must detect non-convergence and raise CombinationalCycleError.
class OscillatorNode : public Node {
 public:
  explicit OscillatorNode(std::string name) : Node(std::move(name)) {
    declareOutput(1);
  }
  void evalComb(SimContext& ctx) override {
    // Deliberate contract violation: oscillates on its own output (the
    // serial kernels read back the live value and must flag non-convergence).
    Sig out = ctx.sig(output(0));
    const bool flipped = !out.vf();
    out.setVf(flipped);
    out.setData(BitVec(1, flipped ? 1 : 0));
    out.setSb(false);
  }
  std::string kindName() const override { return "oscillator"; }
};

TEST(SimContext, DetectsCombinationalCycles) {
  Netlist nl;
  auto& osc = nl.make<OscillatorNode>("osc");
  auto& sink = nl.make<TokenSink>("sink", 1);
  nl.connect(osc, 0, sink, 0);
  SimContext ctx(nl);
  EXPECT_THROW(ctx.settle(), CombinationalCycleError);
}

TEST(SimContext, StatePackUnpackRoundTrip) {
  auto build = [](Netlist& nl) {
    auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
    auto& eb1 = nl.make<ElasticBuffer>("eb1", 8);
    auto& eb2 = nl.make<ElasticBuffer>("eb2", 8);
    auto& sink = nl.make<TokenSink>(
        "sink", 8, [](std::uint64_t c) { return c % 3 != 1; });
    nl.connect(src, 0, eb1, 0);
    nl.connect(eb1, 0, eb2, 0);
    nl.connect(eb2, 0, sink, 0);
    return &sink;
  };

  Netlist nlA;
  TokenSink* sinkA = build(nlA);
  sim::Simulator simA(nlA);
  simA.run(7);
  const auto snapshot = simA.ctx().packState();
  const std::size_t alreadyReceived = sinkA->received();

  // Restore into a freshly built identical netlist and continue both.
  Netlist nlB;
  TokenSink* sinkB = build(nlB);
  sim::Simulator simB(nlB, {.checkProtocol = false});
  simB.ctx().unpackState(snapshot);
  EXPECT_EQ(simB.ctx().packState(), snapshot);

  // NOTE: sink gates are cycle-indexed; align simB's cycle by stepping from 7.
  // Instead compare against simA's future stream directly.
  simA.run(9);
  std::vector<std::uint64_t> tailA;
  for (std::size_t i = alreadyReceived; i < sinkA->transfers().size(); ++i)
    tailA.push_back(sinkA->transfers()[i].data.toUint64());

  // simB starts its cycle counter at 0 but its state is from cycle 7; the
  // ready gate pattern has period 3 and 7 % 3 == 1, so offset the comparison
  // window only over values, which are state- not cycle-determined.
  simB.run(30);
  const auto valsB = receivedValues(*sinkB);
  ASSERT_GE(valsB.size(), tailA.size());
  // The first transferred value after restore must continue the stream.
  EXPECT_EQ(valsB.front(), tailA.front());
}

TEST(SimContext, ProtocolCleanOnHealthyPipelines) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8);
  auto& eb0 = nl.make<ElasticBuffer0>("eb0", 8);
  auto& sink = nl.make<TokenSink>(
      "sink", 8, [](std::uint64_t c) { return hashChancePermille(c, 500, 3); });
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, eb0, 0);
  nl.connect(eb0, 0, sink, 0);

  sim::Simulator s(nl, {.checkProtocol = true, .throwOnViolation = true});
  s.run(300);
  EXPECT_TRUE(s.ctx().protocolViolations().empty());
}

}  // namespace
}  // namespace esl
