#include "verify/checker.h"

#include <gtest/gtest.h>

#include "netlist/patterns.h"
#include "test_util.h"

namespace esl {
namespace {

/// src(nondet) -> buffer -> sink(nondet) harness for controller verification.
template <typename Buffer, typename... Args>
Netlist bufferHarness(bool sinkEmitsAnti, Args&&... args) {
  Netlist nl;
  auto& src = nl.make<NondetSource>("env.src", 1);
  auto& buf = nl.make<Buffer>("buf", 1u, std::forward<Args>(args)...);
  auto& sink = nl.make<NondetSink>("env.sink", 1, 2, sinkEmitsAnti);
  nl.connect(src, 0, buf, 0, "up");
  nl.connect(buf, 0, sink, 0, "down");
  return nl;
}

TEST(Verify, ElasticBufferSatisfiesSelfProtocol) {
  Netlist nl = bufferHarness<ElasticBuffer>(false);
  const auto report = verify::checkSelfProtocol(nl);
  EXPECT_FALSE(report.explore.truncated);
  EXPECT_GT(report.explore.states, 2u);
  EXPECT_GE(report.propertiesChecked, 8u);
  EXPECT_TRUE(report.ok()) << report.firstViolation();
}

TEST(Verify, ElasticBufferWithAntiTokensSatisfiesSelfProtocol) {
  Netlist nl = bufferHarness<ElasticBuffer>(true);
  const auto report = verify::checkSelfProtocol(nl);
  EXPECT_TRUE(report.ok()) << report.firstViolation();
}

TEST(Verify, ElasticBuffer0SatisfiesSelfProtocol) {
  Netlist nl = bufferHarness<ElasticBuffer0>(true);
  const auto report = verify::checkSelfProtocol(nl);
  EXPECT_TRUE(report.ok()) << report.firstViolation();
}

TEST(Verify, ForkSatisfiesSelfProtocol) {
  Netlist nl;
  auto& src = nl.make<NondetSource>("env.src", 1);
  auto& eb = nl.make<ElasticBuffer>("eb", 1);
  auto& fork = nl.make<ForkNode>("fork", 1, 2);
  auto& s0 = nl.make<NondetSink>("env.s0", 1, 2);
  auto& s1 = nl.make<NondetSink>("env.s1", 1, 2);
  nl.connect(src, 0, eb, 0, "up");
  nl.connect(eb, 0, fork, 0, "stem");
  nl.connect(fork, 0, s0, 0, "br0");
  nl.connect(fork, 1, s1, 0, "br1");
  const auto report = verify::checkSelfProtocol(nl);
  EXPECT_TRUE(report.ok()) << report.firstViolation();
}

TEST(Verify, JoinSatisfiesSelfProtocol) {
  Netlist nl;
  auto& a = nl.make<NondetSource>("env.a", 1);
  auto& b = nl.make<NondetSource>("env.b", 1);
  auto& join = nl.make<FuncNode>("join", std::vector<unsigned>{1, 1}, 1,
                                 [](const std::vector<BitVec>& in) {
                                   return in[0] ^ in[1];
                                 });
  auto& sink = nl.make<NondetSink>("env.sink", 1, 2);
  nl.connect(a, 0, join, 0, "ina");
  nl.connect(b, 0, join, 1, "inb");
  nl.connect(join, 0, sink, 0, "out");
  const auto report = verify::checkSelfProtocol(nl);
  EXPECT_TRUE(report.ok()) << report.firstViolation();
}

/// The full Fig. 4 composition in its generation-aligned form (as in
/// Fig. 1d): one nondet source whose payload bit doubles as the select,
/// forked to both shared-module inputs and the mux select. Alignment keeps
/// the outstanding-anti-token count — and hence the state space — bounded.
Netlist sharedMuxHarness(std::unique_ptr<sched::Scheduler> sched) {
  Netlist nl;
  auto& src = nl.make<NondetSource>("env.src", 1, 2, /*dataBits=*/1);
  auto& fork = nl.make<ForkNode>("fork", 1, 3);
  auto& shared = nl.make<SharedModule>(
      "shared", 2, 1, 1, [](const BitVec& x) { return x; }, std::move(sched));
  auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, 1);
  auto& sink = nl.make<NondetSink>("env.sink", 1, 2);
  nl.connect(src, 0, fork, 0, "stem");
  nl.connect(fork, 0, shared, 0, "in0");
  nl.connect(fork, 1, shared, 1, "in1");
  nl.connect(fork, 2, mux, 0, "sel");
  nl.connect(shared, 0, mux, 1, "out0");
  nl.connect(shared, 1, mux, 2, "out1");
  nl.connect(mux, 0, sink, 0, "muxout");
  return nl;
}

TEST(Verify, SharedModuleWithEeMuxSatisfiesSelfProtocol) {
  // §4.2: "all controllers comply with the SELF protocol"; shared-module
  // outputs are exempt from Retry+ persistence (non-persistent by design).
  Netlist nl = sharedMuxHarness(std::make_unique<sched::BoundedFairScheduler>(2, 1));
  const auto report = verify::checkSelfProtocol(nl);
  EXPECT_FALSE(report.explore.truncated);
  EXPECT_TRUE(report.ok()) << report.firstViolation();
}

TEST(Verify, LeadsToHoldsForBoundedFairScheduler) {
  // §4.2: a shared module with any leads-to scheduler serves or kills every
  // arriving token (the refinement argument, checked explicitly here).
  Netlist nl = sharedMuxHarness(std::make_unique<sched::BoundedFairScheduler>(2, 1));
  Node* shared = nl.findNode("shared");
  ASSERT_NE(shared, nullptr);
  const auto report = verify::checkSchedulerLeadsTo(nl, shared->id());
  EXPECT_EQ(report.propertiesChecked, 2u);
  EXPECT_TRUE(report.ok()) << report.firstViolation();
}

TEST(Verify, LeadsToHoldsForDemandCorrectingStatic) {
  Netlist nl = sharedMuxHarness(std::make_unique<sched::StaticScheduler>(2, 0));
  Node* shared = nl.findNode("shared");
  const auto report = verify::checkSchedulerLeadsTo(nl, shared->id());
  EXPECT_TRUE(report.ok()) << report.firstViolation();
}

TEST(Verify, StarvingSchedulerViolatesLeadsTo) {
  // Negative test (paper §4.1.1: "starvation of some channels must be
  // avoided"): a scheduler that never corrects starves channel 1.
  Netlist nl = sharedMuxHarness(std::make_unique<sched::StarvingScheduler>(2));
  Node* shared = nl.findNode("shared");
  const auto report = verify::checkSchedulerLeadsTo(nl, shared->id());
  EXPECT_FALSE(report.ok());
}

TEST(Verify, DeadJoinInputViolatesLiveness) {
  // A join whose second input never produces: no transfer is ever possible.
  Netlist nl;
  auto& a = nl.make<NondetSource>("env.a", 1);
  auto& dead = nl.make<TokenSource>(
      "dead", 1, [](std::uint64_t) -> std::optional<BitVec> { return std::nullopt; });
  auto& join = nl.make<FuncNode>("join", std::vector<unsigned>{1, 1}, 1,
                                 [](const std::vector<BitVec>& in) { return in[0]; });
  auto& sink = nl.make<NondetSink>("env.sink", 1, 2);
  nl.connect(a, 0, join, 0, "ina");
  nl.connect(dead, 0, join, 1, "inb");
  nl.connect(join, 0, sink, 0, "out");

  verify::ProtocolSuiteOptions opts;
  opts.checkPersistence = false;
  const auto report = verify::checkSelfProtocol(nl, opts);
  EXPECT_FALSE(report.ok());  // liveness + deadlock both fail
}

TEST(Verify, ExplorationIsExhaustiveAndSmall) {
  Netlist nl = bufferHarness<ElasticBuffer>(false);
  verify::ModelChecker mc(nl);
  const auto result = mc.explore();
  EXPECT_FALSE(result.truncated);
  // 2 choice bits/cycle, EB with <=2 tokens + env bits: a handful of states.
  EXPECT_LT(result.states, 64u);
  EXPECT_EQ(result.transitions, result.states * 4);
}

TEST(Verify, TruncationReported) {
  Netlist nl = bufferHarness<ElasticBuffer>(true);
  verify::CheckerOptions opts;
  opts.maxStates = 3;
  verify::ModelChecker mc(nl, opts);
  const auto result = mc.explore();
  EXPECT_TRUE(result.truncated);
}

TEST(Verify, LabelsRegisteredAfterExploreAreRejected) {
  // The explored graph only stores bits for labels that existed at explore()
  // time; querying a later registration must throw, not read stale words.
  Netlist nl = bufferHarness<ElasticBuffer>(false);
  verify::ModelChecker mc(nl);
  mc.addLabel("early", [](const SimContext&) { return true; });
  mc.explore();
  mc.addLabel("late", [](const SimContext&) { return true; });
  EXPECT_TRUE(mc.checkNever("early").has_value());  // fires on every edge
  EXPECT_THROW(mc.checkNever("late"), EslError);
}

TEST(Verify, TooManyChoiceBitsRejected) {
  Netlist nl;
  auto& src = nl.make<NondetSource>("s", 1, 2, /*dataBits=*/1);
  auto& sink = nl.make<NondetSink>("k", 1, 2, true);
  nl.connect(src, 0, sink, 0, "ch");
  verify::CheckerOptions opts;
  opts.maxChoiceBits = 2;  // the pair needs 2 + 2
  verify::ModelChecker mc(nl, opts);
  EXPECT_THROW(mc.explore(), EslError);
}

TEST(Verify, RuntimeMonitorCatchesBrokenBufferPersistence) {
  // The BrokenBuffer overwrites a stalled token: the data changes during a
  // Retry+ cycle, which the runtime protocol monitor must flag.
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& bad = nl.make<BrokenBuffer>("bad", 8);
  auto& sink = nl.make<TokenSink>("sink", 8, [](std::uint64_t c) { return c >= 6; });
  nl.connect(src, 0, bad, 0);
  nl.connect(bad, 0, sink, 0);

  sim::Simulator s(nl, {.checkProtocol = true, .throwOnViolation = false});
  s.run(20);
  bool foundPersistenceViolation = false;
  for (const std::string& v : s.ctx().protocolViolations())
    if (v.find("persistence") != std::string::npos) foundPersistenceViolation = true;
  EXPECT_TRUE(foundPersistenceViolation);
}

TEST(Verify, Table1SystemDeterministicExploration) {
  // A fully deterministic netlist explores as a single chain of states.
  auto sys = patterns::buildTable1({0, 1, 1, 0, 0});
  verify::ModelChecker mc(sys.nl);
  const auto result = mc.explore();
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.transitions, result.states);  // one successor per state
}

// ---------------------------------------------------------------------------
// Truncated graphs must not certify liveness-class properties
// ---------------------------------------------------------------------------

TEST(Verify, TruncatedGraphRefusesToCertifyProperties) {
  // Regression: checkRecurrence/checkLeadsTo/checkAlwaysReachable used to
  // run their fixpoints on the partial graph and could return "pass" (or a
  // phantom dead state) when the missing suffix held the counterexample; the
  // safety checks could certify a clean prefix the same way.
  Netlist nl = bufferHarness<ElasticBuffer>(true);
  verify::CheckerOptions opts;
  opts.maxStates = 3;
  verify::ModelChecker mc(nl, opts);
  mc.addLabel("progress", [](const SimContext&) { return false; });
  const auto result = mc.explore();
  ASSERT_TRUE(result.truncated);

  const auto recurrence = mc.checkRecurrence("progress");
  ASSERT_TRUE(recurrence.has_value());
  EXPECT_TRUE(recurrence->inconclusive);
  EXPECT_NE(recurrence->diagnostic.find("inconclusive"), std::string::npos);
  EXPECT_NE(recurrence->diagnostic.find("truncated"), std::string::npos);
  EXPECT_TRUE(recurrence->combos.empty());  // no counterexample attached

  const auto leadsTo = mc.checkLeadsTo("progress", "progress");
  ASSERT_TRUE(leadsTo.has_value());
  EXPECT_TRUE(leadsTo->inconclusive);

  const auto reachable = mc.checkAlwaysReachable("progress");
  ASSERT_TRUE(reachable.has_value());
  EXPECT_TRUE(reachable->inconclusive);

  // Safety checks: a clean explored prefix must NOT read as a pass either
  // ("progress" never fires, so no violation exists in the prefix).
  const auto never = mc.checkNever("progress");
  ASSERT_TRUE(never.has_value());
  EXPECT_TRUE(never->inconclusive);
  const auto step = mc.checkStep("progress", "progress");
  ASSERT_TRUE(step.has_value());
  EXPECT_TRUE(step->inconclusive);
}

TEST(Verify, TruncatedSuiteReportsInconclusiveNotOk) {
  Netlist nl = bufferHarness<ElasticBuffer>(true);
  verify::ProtocolSuiteOptions opts;
  opts.maxStates = 3;
  const auto report = verify::checkSelfProtocol(nl, opts);
  ASSERT_TRUE(report.explore.truncated);
  EXPECT_FALSE(report.ok());
  bool sawInconclusive = false;
  for (const auto& v : report.violations) sawInconclusive |= v.inconclusive;
  EXPECT_TRUE(sawInconclusive);
}

// ---------------------------------------------------------------------------
// Counterexample traces: replayable paths (and lassos for liveness)
// ---------------------------------------------------------------------------

TEST(Verify, StarvingSchedulerViolationCarriesReplayableLasso) {
  Netlist nl = sharedMuxHarness(std::make_unique<sched::StarvingScheduler>(2));
  Node* shared = nl.findNode("shared");
  const auto report = verify::checkSchedulerLeadsTo(nl, shared->id());
  ASSERT_FALSE(report.ok());
  const verify::Violation& v = report.violations.front();
  EXPECT_FALSE(v.inconclusive);
  EXPECT_EQ(v.property.find("G("), 0u);
  // Path + lasso shape: k combos drive k edges through k+1 states from the
  // initial state, with the lasso re-entry inside the trace.
  ASSERT_GE(v.states.size(), 2u);
  EXPECT_EQ(v.states.size(), v.combos.size() + 1);
  EXPECT_EQ(v.states.front(), 0u);
  ASSERT_NE(v.lassoStart, verify::Violation::kNoLasso);
  EXPECT_LT(v.lassoStart, v.states.size());
  EXPECT_EQ(v.states[v.lassoStart], v.states.back());  // the cycle closes
  // checkSchedulerLeadsTo replay-validated the trace before reporting it
  // (InternalError otherwise), so reaching this point certifies the trace.
}

TEST(Verify, DeadlockViolationTraceLeadsToDeadState) {
  Netlist nl;
  auto& a = nl.make<NondetSource>("env.a", 1);
  auto& dead = nl.make<TokenSource>(
      "dead", 1, [](std::uint64_t) -> std::optional<BitVec> { return std::nullopt; });
  auto& join = nl.make<FuncNode>("join", std::vector<unsigned>{1, 1}, 1,
                                 [](const std::vector<BitVec>& in) { return in[0]; });
  auto& sink = nl.make<NondetSink>("env.sink", 1, 2);
  nl.connect(a, 0, join, 0, "ina");
  nl.connect(dead, 0, join, 1, "inb");
  nl.connect(join, 0, sink, 0, "out");

  verify::ProtocolSuiteOptions opts;
  opts.checkPersistence = false;
  const auto report = verify::checkSelfProtocol(nl, opts);
  ASSERT_FALSE(report.ok());
  for (const auto& v : report.violations) {
    EXPECT_FALSE(v.inconclusive);
    EXPECT_EQ(v.states.size(), v.combos.size() + 1);
    EXPECT_EQ(v.states.front(), 0u);
  }
}

}  // namespace
}  // namespace esl
