// Tests of the reusable paper topologies and their golden reference models.
#include "netlist/patterns.h"

#include <gtest/gtest.h>

#include "logic/alu.h"
#include "logic/secded.h"
#include "test_util.h"

namespace esl::patterns {
namespace {

TEST(Fig1Pc, SequenceIsDeterministicAndSteps) {
  const Fig1Config cfg;
  const auto a = fig1PcSequence(cfg, 50);
  const auto b = fig1PcSequence(cfg, 50);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_EQ(a[0], cfg.pc0);
  // Consecutive PCs differ (F mixes bits and adds a step).
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_NE(a[i], a[i - 1]);
}

TEST(Fig1Pc, TakenRateChangesTheTrajectory) {
  Fig1Config lo, hi;
  lo.takenPermille = 0;
  hi.takenPermille = 1000;
  EXPECT_NE(fig1PcSequence(lo, 20), fig1PcSequence(hi, 20));
}

TEST(Fig1Build, AllVariantsValidateAndObserveTheSameStream) {
  const auto golden = fig1PcSequence({}, 40);
  for (const auto variant :
       {Fig1Variant::kNonSpeculative, Fig1Variant::kBubble, Fig1Variant::kShannon,
        Fig1Variant::kSpeculative}) {
    auto sys = buildFig1(variant);
    sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = true});
    s.run(150);
    const auto vals = test::receivedValues(*sys.observer);
    ASSERT_GE(vals.size(), golden.size()) << "variant " << static_cast<int>(variant);
    for (std::size_t i = 0; i < golden.size(); ++i)
      ASSERT_EQ(vals[i], golden[i]) << "variant " << static_cast<int>(variant);
  }
}

TEST(VluGolden, MatchesDirectEvaluation) {
  VluConfig cfg;
  cfg.errPermille = 150;
  const auto golden = vluGolden(cfg, 30);
  EXPECT_EQ(golden.size(), 30u);
  // Spot-check via the logic layer: golden = G(exact(op)) with G = x ^ (x>>1).
  auto sys = buildStallingVlu(cfg);
  sim::Simulator s(sys.nl);
  s.run(60);
  const auto vals = test::receivedValues(*sys.sink);
  for (std::size_t i = 0; i < 30; ++i) EXPECT_EQ(vals.at(i), golden[i]);
}

TEST(VluOperands, ErrorRateIsControlled) {
  // The generator hits the requested 2-cycle rate closely.
  for (const unsigned p : {0u, 100u, 500u, 1000u}) {
    VluConfig cfg;
    cfg.errPermille = p;
    auto sys = buildStallingVlu(cfg);
    sim::Simulator s(sys.nl);
    s.run(1000);
    const double measured = static_cast<double>(sys.vlu->stalls()) /
                            static_cast<double>(sys.vlu->completed());
    EXPECT_NEAR(measured, p / 1000.0, 0.05) << "permille " << p;
  }
}

TEST(SecdedGolden, MatchesDecodedStreams) {
  SecdedConfig cfg;
  cfg.flipPermille = 300;
  const auto golden = secdedGolden(cfg, 25);
  auto sys = buildSecdedPipeline(cfg);
  sim::Simulator s(sys.nl);
  s.run(40);
  const auto vals = test::receivedValues(*sys.sink);
  for (std::size_t i = 0; i < 25; ++i) EXPECT_EQ(vals.at(i), golden[i]);
}

TEST(SecdedSpeculative, DoubleErrorsAreDetectedNotSilent) {
  // With double flips enabled, the error detector flags the pair (the replay
  // uses the best-effort corrected word; the flag is what matters).
  SecdedConfig cfg;
  cfg.flipPermille = 0;
  cfg.doublePermille = 200;
  auto sys = buildSecdedSpeculative(cfg);
  sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = true});
  s.run(400);
  EXPECT_GT(sys.shared->demandCycles(), 50u);  // every double error replays
}

TEST(Table1Build, CustomSchedulerAndStreams) {
  auto sys = buildTable1({1, 1, 0}, 10, 20,
                         std::make_unique<sched::StaticScheduler>(2, 1));
  sim::Simulator s(sys.nl);
  s.run(8);
  const auto vals = test::receivedValues(*sys.sink);
  // static1 predicts channel 1: sel=1 firings immediate, sel=0 pays a demand.
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_EQ(vals[0], 20u);  // ch1 first token
  EXPECT_EQ(vals[1], 21u);
  // Each ch1 firing killed the generation-aligned ch0 token (10, then 11),
  // so the sel=0 firing after correction carries ch0's third token.
  EXPECT_EQ(vals[2], 12u);
}

TEST(Builders, CostsAndTimingAreFinite) {
  auto check = [](const Netlist& nl) {
    const auto cost = nl.totalCost();
    EXPECT_GT(cost.area, 0.0);
  };
  check(buildTable1({0}).nl);
  check(buildFig1(Fig1Variant::kSpeculative).nl);
  check(buildStallingVlu().nl);
  check(buildSpeculativeVlu().nl);
  check(buildSecdedPipeline().nl);
  check(buildSecdedSpeculative().nl);
}

TEST(OracleCache, ExtendsOnDemand) {
  // The oracle scheduler extends its PC cache lazily; a long run must not
  // run past the cache.
  Fig1Config cfg;
  cfg.scheduler = Fig1Scheduler::kOracle;
  auto sys = buildFig1(Fig1Variant::kSpeculative, cfg);
  sim::Simulator s(sys.nl);
  s.run(500);
  EXPECT_NEAR(s.throughput(sys.loopChannel), 1.0, 0.01);
}

}  // namespace
}  // namespace esl::patterns
