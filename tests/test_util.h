// Shared helpers for the elastic test suites.
#pragma once

#include <vector>

#include "elastic/buffer.h"
#include "elastic/eemux.h"
#include "elastic/endpoints.h"
#include "elastic/fork.h"
#include "elastic/func.h"
#include "elastic/netlist.h"
#include "elastic/shared.h"
#include "sim/simulator.h"

namespace esl::test {

/// Data values received by a sink, as uint64.
inline std::vector<std::uint64_t> receivedValues(const TokenSink& sink) {
  std::vector<std::uint64_t> v;
  for (const auto& t : sink.transfers()) v.push_back(t.data.toUint64());
  return v;
}

/// Cycles at which the sink received transfers.
inline std::vector<std::uint64_t> receivedCycles(const TokenSink& sink) {
  std::vector<std::uint64_t> v;
  for (const auto& t : sink.transfers()) v.push_back(t.cycle);
  return v;
}

/// 0,1,2,...,n-1
inline std::vector<std::uint64_t> iota(std::uint64_t n, std::uint64_t start = 0) {
  std::vector<std::uint64_t> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = start + i;
  return v;
}

}  // namespace esl::test
