#include <gtest/gtest.h>

#include "base/rng.h"
#include "logic/adders.h"
#include "logic/alu.h"
#include "logic/cost.h"

namespace esl::logic {
namespace {

TEST(Clog2, Values) {
  EXPECT_EQ(clog2(1), 0u);
  EXPECT_EQ(clog2(2), 1u);
  EXPECT_EQ(clog2(3), 2u);
  EXPECT_EQ(clog2(8), 3u);
  EXPECT_EQ(clog2(9), 4u);
  EXPECT_EQ(clog2(64), 6u);
}

TEST(RippleAdd, MatchesGoldenNarrow) {
  for (unsigned a = 0; a < 16; ++a)
    for (unsigned b = 0; b < 16; ++b) {
      bool carry = false;
      const BitVec s = rippleAdd(BitVec(4, a), BitVec(4, b), false, &carry);
      EXPECT_EQ(s.toUint64(), (a + b) & 0xF);
      EXPECT_EQ(carry, (a + b) > 0xF);
    }
}

TEST(RippleAdd, CarryIn) {
  bool carry = false;
  const BitVec s = rippleAdd(BitVec(4, 0xF), BitVec(4, 0), true, &carry);
  EXPECT_EQ(s.toUint64(), 0u);
  EXPECT_TRUE(carry);
}

TEST(RippleAdd, WidthMismatchThrows) {
  EXPECT_THROW(rippleAdd(BitVec(4), BitVec(5)), EslError);
}

class AdderRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(AdderRandomTest, RippleEqualsKoggeStoneEqualsGolden) {
  const unsigned w = GetParam();
  Rng rng(w * 131 + 7);
  for (int i = 0; i < 100; ++i) {
    const BitVec a = rng.bits(w), b = rng.bits(w);
    const BitVec golden = a + b;  // BitVec's own modular add
    EXPECT_EQ(rippleAdd(a, b), golden);
    EXPECT_EQ(koggeStoneAdd(a, b), golden);
    const BitVec one(w, 1);
    EXPECT_EQ(koggeStoneAdd(a, b, true), golden + one);
    EXPECT_EQ(rippleAdd(a, b, true), golden + one);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderRandomTest,
                         ::testing::Values(1u, 2u, 7u, 8u, 16u, 31u, 64u, 72u));

TEST(SegmentedAdd, ExactWhenNoBoundaryCarry) {
  // 0x0F + 0x01 carries across bit 4 with segment 4 -> approximate differs.
  const BitVec a(8, 0x0F), b(8, 0x01);
  EXPECT_TRUE(segmentedAddOverflows(a, b, 4));
  EXPECT_NE(segmentedAdd(a, b, 4), a + b);
  // 0x11 + 0x22 never carries across the cut.
  const BitVec c(8, 0x11), d(8, 0x22);
  EXPECT_FALSE(segmentedAddOverflows(c, d, 4));
  EXPECT_EQ(segmentedAdd(c, d, 4), c + d);
}

class SegmentedAddTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SegmentedAddTest, PredictorIsExactForAdd) {
  const unsigned seg = GetParam();
  Rng rng(seg * 17 + 5);
  for (int i = 0; i < 300; ++i) {
    const BitVec a = rng.bits(8), b = rng.bits(8);
    const bool differs = segmentedAdd(a, b, seg) != (a + b);
    EXPECT_EQ(segmentedAddOverflows(a, b, seg), differs)
        << a.toHex() << " + " << b.toHex() << " seg " << seg;
  }
}

INSTANTIATE_TEST_SUITE_P(Segments, SegmentedAddTest, ::testing::Values(2u, 3u, 4u, 8u));

TEST(Alu, PackUnpackRoundTrip) {
  const BitVec a(8, 0x12), b(8, 0x34);
  const BitVec packed = packAluOperands(a, b, AluOp::kSub);
  EXPECT_EQ(packed.width(), 18u);
  const AluOperands ops = unpackAluOperands(packed, 8);
  EXPECT_EQ(ops.a, a);
  EXPECT_EQ(ops.b, b);
  EXPECT_EQ(ops.op, AluOp::kSub);
}

TEST(Alu, ExactOps) {
  const unsigned w = 8;
  const BitVec a(w, 200), b(w, 100);
  EXPECT_EQ(aluExact(packAluOperands(a, b, AluOp::kAdd), w).toUint64(),
            (200u + 100u) & 0xFF);
  EXPECT_EQ(aluExact(packAluOperands(a, b, AluOp::kSub), w).toUint64(), 100u);
  EXPECT_EQ(aluExact(packAluOperands(a, b, AluOp::kAnd), w), a & b);
  EXPECT_EQ(aluExact(packAluOperands(a, b, AluOp::kXor), w), a ^ b);
}

TEST(Alu, ApproxErrorNeverFalseNegative) {
  // Whenever approx != exact, the telescopic predictor must flag it (the
  // stalling/speculative VLU designs rely on this to stay functionally exact).
  Rng rng(99);
  const unsigned w = 8, seg = 4;
  int flagged = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    const BitVec a = rng.bits(w), b = rng.bits(w);
    const auto op = static_cast<AluOp>(rng.below(4));
    const BitVec packed = packAluOperands(a, b, op);
    const bool differ = aluApprox(packed, w, seg) != aluExact(packed, w);
    const bool err = aluApproxError(packed, w, seg);
    if (differ) {
      EXPECT_TRUE(err) << "false negative at " << packed.toHex();
    }
    flagged += err;
    ++total;
  }
  // The predictor must also be useful: most operands are exact.
  EXPECT_LT(flagged, total / 2);
  EXPECT_GT(flagged, 0);
}

TEST(Alu, LogicOpsNeverFlagged) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const BitVec a = rng.bits(8), b = rng.bits(8);
    EXPECT_FALSE(aluApproxError(packAluOperands(a, b, AluOp::kAnd), 8, 4));
    EXPECT_FALSE(aluApproxError(packAluOperands(a, b, AluOp::kXor), 8, 4));
  }
}

TEST(Cost, MonotoneInWidth) {
  EXPECT_LT(rippleAdderCost(8).delay, rippleAdderCost(16).delay);
  EXPECT_LT(rippleAdderCost(8).area, rippleAdderCost(16).area);
  EXPECT_LT(koggeStoneAdderCost(64).delay, rippleAdderCost(64).delay);
  EXPECT_GT(koggeStoneAdderCost(64).area, rippleAdderCost(64).area);
}

TEST(Cost, ApproxAluFasterThanExact) {
  const Cost exact = aluExactCost(8);
  const Cost approx = aluApproxCost(8, 4);
  EXPECT_LT(approx.delay, exact.delay);
}

TEST(Cost, ErrorPredictorShallowerThanExactAlu) {
  EXPECT_LT(aluErrorPredictorCost(8, 4).delay, aluExactCost(8).delay);
}

TEST(Cost, EbCheaperThanTwoFlopRanks) {
  // The latch-based EB (Fig. 2a) must cost less than two flip-flop ranks.
  EXPECT_LT(ebCost(8).area, 2 * flopCost(8).area + 14.0);
}

}  // namespace
}  // namespace esl::logic
