// Compiled bytecode backend: bit-identity against the interpreted kernels.
//
// The compiled backend (src/compile) lowers the netlist into specialized ops
// over raw SignalBoard addresses and runs them through the shared worklist /
// dirty-edge loops. Its contract mirrors the sharded kernel's: settled
// signals, packed state and sink streams are bit-identical to the interpreted
// event-driven kernel, cycle by cycle — enforced here over every golden .esl
// design, all four synthetic topology families (with shrink-on-failure),
// payload width boundaries around the word/spill split, nondeterministic
// environments, snapshot round-trips through the VM, recompilation after
// netlist surgery, and the specialized FuncKind word kernels against their
// opaque closures.
//
// This suite carries the `compiled-kernel` CTest label so the sanitizer CI
// legs can select it: raw arena addressing is exactly the code that must be
// clean under ASan/UBSan.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "diff_kernels_util.h"
#include "elastic/registry.h"
#include "frontend/esl_format.h"
#include "netlist/patterns.h"
#include "test_util.h"
#include "transform/transform.h"

namespace esl {
namespace {

std::string goldenPath(const std::string& design) {
  return std::string(ESL_SOURCE_DIR) + "/examples/designs/" + design + ".esl";
}

sim::SimOptions interpOpts() {
  sim::SimOptions o;
  o.checkProtocol = false;
  return o;
}

sim::SimOptions compiledOpts() {
  sim::SimOptions o;
  o.checkProtocol = false;
  o.backend = SimContext::Backend::kCompiled;
  return o;
}

/// Lockstep per-cycle packState diff between an interpreted and a compiled
/// instance of the same netlist, plus final sink-stream comparison.
std::optional<std::string> lockstepCompiledDiff(Netlist& interp, Netlist& comp,
                                                std::uint64_t cycles) {
  sim::Simulator si(interp, interpOpts());
  sim::Simulator sc(comp, compiledOpts());
  for (std::uint64_t c = 0; c < cycles; ++c) {
    si.step();
    sc.step();
    if (si.ctx().packState() != sc.ctx().packState())
      return "packed state diverged at cycle " + std::to_string(c);
  }
  const auto sinksOf = [](Netlist& nl) {
    std::vector<const TokenSink*> sinks;
    for (const NodeId id : nl.nodeIds())
      if (const auto* sink = dynamic_cast<const TokenSink*>(&nl.node(id)))
        sinks.push_back(sink);
    return sinks;
  };
  const auto a = sinksOf(interp);
  const auto b = sinksOf(comp);
  if (a.size() != b.size()) return "sink sets differ";
  for (std::size_t s = 0; s < a.size(); ++s)
    if (auto d = test::diffSinkStreams(a[s], b[s],
                                       "sink " + std::to_string(s)))
      return d;
  return std::nullopt;
}

synth::SynthConfig famConfig(synth::Topology topo, std::size_t nodes,
                             unsigned inject, std::uint64_t seed,
                             unsigned width = 16) {
  synth::SynthConfig cfg;
  cfg.topology = topo;
  cfg.targetNodes = nodes;
  cfg.seed = seed;
  cfg.injectPeriod = inject;
  cfg.width = width;
  return cfg;
}

TEST(CompiledKernel, GoldenDesignsBitIdentical) {
  // Every committed .esl design: the full node catalog (speculation, shared
  // modules, stalling VLUs, anti-token environments) through the VM.
  for (const std::string& name : patterns::designNames()) {
    SCOPED_TRACE(name);
    Netlist interp = frontend::buildEslFile(goldenPath(name));
    Netlist comp = frontend::buildEslFile(goldenPath(name));
    const auto diff = lockstepCompiledDiff(interp, comp, 300);
    EXPECT_FALSE(diff.has_value()) << *diff;
  }
}

TEST(CompiledKernel, AllSynthFamiliesBitIdentical) {
  for (const synth::Topology topo :
       {synth::Topology::kPipeline, synth::Topology::kForkJoin,
        synth::Topology::kSpecLadder, synth::Topology::kRandomDag}) {
    for (const unsigned inject : {1u, 8u}) {
      synth::SynthConfig cfg = famConfig(topo, 240, inject, 7);
      cfg.vluPermille = 120;  // sprinkle stalling VLUs through the datapath
      SCOPED_TRACE(synth::describe(cfg));
      auto mismatch = test::diffCompiledOnce(cfg, 300);
      if (mismatch) {
        synth::SynthConfig bad = cfg;
        std::uint64_t cycles = 300;
        test::shrinkSynthConfig(
            bad, cycles, [](const synth::SynthConfig& cand, std::uint64_t n) {
              return test::diffCompiledOnce(cand, n).has_value();
            });
        FAIL() << "compiled divergence on " << synth::describe(bad) << " ("
               << cycles << " cycles): " << *test::diffCompiledOnce(bad, cycles);
      }
    }
  }
}

TEST(CompiledKernel, WidthBoundariesAroundTheSpillSplit) {
  // 1 and 63/64 stay in the narrow word arena (and in the specialized word
  // kernels); 65/128/200 spill to BitVec storage — both sides of every
  // boundary, plus the widest inline/heap BitVec split at 200 (> 3 words).
  for (const unsigned width : {1u, 63u, 64u, 65u, 128u, 200u}) {
    const synth::SynthConfig cfg =
        famConfig(synth::Topology::kPipeline, 100, 2, 11, width);
    SCOPED_TRACE("width=" + std::to_string(width));
    const auto mismatch = test::diffCompiledOnce(cfg, 200);
    EXPECT_FALSE(mismatch.has_value()) << *mismatch;
  }
}

TEST(CompiledKernel, NondetEnvironmentsDrawIdenticalChoices) {
  // The stateless (seed, cycle, node, index) choice stream must be read at
  // the same points by the VM's specialized Nondet*/Shared ops.
  auto run = [](bool compiled, std::uint64_t seed) {
    synth::SynthConfig cfg = famConfig(synth::Topology::kSpecLadder, 80, 1, seed);
    cfg.nondetEnv = true;
    synth::SynthSystem sys = synth::build(cfg);
    sim::SimOptions opts = compiled ? compiledOpts() : interpOpts();
    opts.seed = seed;
    sim::Simulator s(sys.nl, opts);
    s.run(250);
    return s.ctx().packState();
  };
  for (std::uint64_t seed = 1; seed <= 4; ++seed)
    EXPECT_EQ(run(false, seed), run(true, seed)) << "seed " << seed;
}

TEST(CompiledKernel, SnapshotRoundTripMidSpeculation) {
  // Pack a compiled run mid-flight (speculative loop: in-flight anti-tokens,
  // fork done bits, shared-module scheduler state), unpack into a fresh
  // compiled simulator, and require both instances to stay bit-identical for
  // the rest of the run. Several snapshot points catch different phases of
  // the speculation (issue, kill, retry).
  for (const std::uint64_t snapAt : {37ull, 115ull, 230ull}) {
    SCOPED_TRACE("snapshot at " + std::to_string(snapAt));
    auto sysA = patterns::buildSecdedSpeculative();
    sim::Simulator a(sysA.nl, compiledOpts());
    a.run(snapAt);
    const std::vector<std::uint8_t> snap = a.ctx().packState();

    auto sysB = patterns::buildSecdedSpeculative();
    sim::Simulator b(sysB.nl, compiledOpts());
    b.ctx().unpackState(snap);
    for (std::uint64_t c = 0; c < 150; ++c) {
      a.step();
      b.step();
      ASSERT_EQ(a.ctx().packState(), b.ctx().packState())
          << "diverged " << c << " cycles after the snapshot";
    }
  }
}

TEST(CompiledKernel, SnapshotCrossesBackends) {
  // A snapshot taken from an interpreted run must resume exactly on the
  // compiled backend and vice versa (packState is backend-agnostic bytes).
  auto sysA = patterns::buildSecdedSpeculative();
  sim::Simulator interp(sysA.nl, interpOpts());
  interp.run(120);
  const std::vector<std::uint8_t> snap = interp.ctx().packState();

  auto sysB = patterns::buildSecdedSpeculative();
  sim::Simulator comp(sysB.nl, compiledOpts());
  comp.ctx().unpackState(snap);
  for (std::uint64_t c = 0; c < 120; ++c) {
    interp.step();
    comp.step();
    ASSERT_EQ(interp.ctx().packState(), comp.ctx().packState())
        << "diverged " << c << " cycles after the hand-over";
  }
}

TEST(CompiledKernel, RecompilesAfterNetlistSurgery) {
  // transform::insertBubble / removeBubble bump the topologyVersion; the VM
  // must recompile its program (stale SlotAddrs would read the wrong arena
  // offsets after the board re-layout) and stay identical to an interpreted
  // instance undergoing the same surgery at the same cycles.
  auto surgery = [](Netlist& nl, std::uint64_t step) -> void {
    // Pick a stable interior channel by name each time (ids shift as nodes
    // are inserted); the synth pipeline names channels after its stages.
    std::vector<ChannelId> live = nl.channelIds();
    ASSERT_FALSE(live.empty());
    const ChannelId ch = live[live.size() / 2];
    transform::insertBubble(nl, ch, "bubble" + std::to_string(step));
  };
  synth::SynthSystem interp =
      synth::build(famConfig(synth::Topology::kPipeline, 60, 2, 5));
  synth::SynthSystem comp =
      synth::build(famConfig(synth::Topology::kPipeline, 60, 2, 5));
  sim::Simulator si(interp.nl, interpOpts());
  sim::Simulator sc(comp.nl, compiledOpts());
  for (std::uint64_t c = 0; c < 240; ++c) {
    if (c == 80 || c == 160) {
      surgery(interp.nl, c);
      surgery(comp.nl, c);
    }
    si.step();
    sc.step();
    ASSERT_EQ(si.ctx().packState(), sc.ctx().packState())
        << "diverged at cycle " << c;
  }
}

/// Ill-formed node oscillating on its own output; compiles to a kGeneric op,
/// so the oscillation runs through the VM's worklist budget.
class CompiledOscillator : public Node {
 public:
  explicit CompiledOscillator(std::string name) : Node(std::move(name)) {
    declareOutput(1);
  }
  void evalComb(SimContext& ctx) override {
    Sig out = ctx.sig(output(0));
    const bool flipped = !out.vf();
    out.setVf(flipped);
    out.setData(BitVec(1, flipped ? 1 : 0));
    out.setSb(false);
  }
  std::string kindName() const override { return "compiled-oscillator"; }
};

TEST(CompiledKernel, CombinationalCycleErrorParity) {
  // The eval budget lives in the shared worklist loop, so the compiled
  // backend must report the same CombinationalCycleError the interpreter
  // does — and recovering by switching backends must re-detect it, not
  // silently converge on a stale fixpoint.
  Netlist nl;
  auto& osc = nl.make<CompiledOscillator>("osc");
  auto& sink = nl.make<TokenSink>("sink", 1);
  nl.connect(osc, 0, sink, 0);
  SimContext ctx(nl);
  ctx.setBackend(SimContext::Backend::kCompiled);
  EXPECT_THROW(ctx.settle(), CombinationalCycleError);
  ctx.setBackend(SimContext::Backend::kInterpreted);
  EXPECT_THROW(ctx.settle(), CombinationalCycleError);
}

TEST(CompiledKernel, CrossCheckModeRunsCleanOnPaperDesigns) {
  // Cross-check keeps the interpreted kernels as a runtime oracle against the
  // VM (reference settle + per-node edge state replay); running is the
  // assertion. Speculative loop + stalling VLU cover the statefully hairiest
  // designs.
  for (const std::string name : {"fig1d", "secded-spec", "vlu-stall"}) {
    SCOPED_TRACE(name);
    Netlist nl = frontend::buildEslFile(goldenPath(name));
    sim::SimOptions opts = compiledOpts();
    opts.crossCheckKernels = true;
    sim::Simulator s(nl, opts);
    ASSERT_NO_THROW(s.run(300));
  }
}

TEST(CompiledKernel, SpecializedFuncKernelsMatchOpaqueClosures) {
  // The same dataflow built twice: once through the registry (fn=gray /
  // fn=addk / fn=xor attributes -> FuncKind word kernels), once with plain
  // C++ lambdas (no build attributes -> kOpaque memo path). Both run on the
  // compiled backend; identical sink streams prove the word kernels agree
  // with the closures they replace.
  const unsigned w = 16;
  auto buildRegistry = [&](Netlist& nl) {
    auto& src = nl.make<TokenSource>(
        "src", w, TokenSource::listOf(test::iota(64, 1), w));
    auto& fork = nl.make<ForkNode>("fork", w, 2);
    auto& gray = makeFuncNode(nl, "gray", {w}, w, "gray");
    auto& addk = makeFuncNode(nl, "addk", {w}, w, "addk",
                              Params{}.setU64("k", 5));
    auto& mix = makeFuncNode(nl, "mix", {w, w}, w, "xor");
    auto& sink = nl.make<TokenSink>("sink", w);
    nl.connect(src, 0, fork, 0);
    nl.connect(fork, 0, gray, 0);
    nl.connect(fork, 1, addk, 0);
    nl.connect(gray, 0, mix, 0);
    nl.connect(addk, 0, mix, 1);
    nl.connect(mix, 0, sink, 0);
    return &sink;
  };
  auto buildOpaque = [&](Netlist& nl) {
    auto& src = nl.make<TokenSource>(
        "src", w, TokenSource::listOf(test::iota(64, 1), w));
    auto& fork = nl.make<ForkNode>("fork", w, 2);
    auto& gray = nl.make<FuncNode>(
        "gray", std::vector<unsigned>{w}, w, [](const std::vector<BitVec>& in) {
          return in[0] ^ (in[0] >> 1);
        });
    auto& addk = nl.make<FuncNode>(
        "addk", std::vector<unsigned>{w}, w, [w](const std::vector<BitVec>& in) {
          return in[0] + BitVec(w, 5);
        });
    auto& mix = nl.make<FuncNode>(
        "mix", std::vector<unsigned>{w, w}, w,
        [](const std::vector<BitVec>& in) { return in[0] ^ in[1]; });
    auto& sink = nl.make<TokenSink>("sink", w);
    nl.connect(src, 0, fork, 0);
    nl.connect(fork, 0, gray, 0);
    nl.connect(fork, 1, addk, 0);
    nl.connect(gray, 0, mix, 0);
    nl.connect(addk, 0, mix, 1);
    nl.connect(mix, 0, sink, 0);
    return &sink;
  };
  Netlist a, b;
  TokenSink* sa = buildRegistry(a);
  TokenSink* sb = buildOpaque(b);
  sim::Simulator simA(a, compiledOpts());
  sim::Simulator simB(b, compiledOpts());
  simA.run(200);
  simB.run(200);
  EXPECT_EQ(test::receivedValues(*sa), test::receivedValues(*sb));
  EXPECT_EQ(test::receivedCycles(*sa), test::receivedCycles(*sb));
  EXPECT_EQ(sa->transfers().size(), 64u);
}

TEST(CompiledKernel, BackendSwitchMidRunPreservesSignals) {
  // setBackend mid-simulation: the board is shared state, so flipping
  // backends between cycles must not disturb the stream.
  auto reference = [] {
    synth::SynthSystem sys =
        synth::build(famConfig(synth::Topology::kForkJoin, 80, 2, 9));
    sim::Simulator s(sys.nl, interpOpts());
    s.run(240);
    return s.ctx().packState();
  }();
  synth::SynthSystem sys =
      synth::build(famConfig(synth::Topology::kForkJoin, 80, 2, 9));
  sim::Simulator s(sys.nl, interpOpts());
  s.run(80);
  s.ctx().setBackend(SimContext::Backend::kCompiled);
  s.run(80);
  s.ctx().setBackend(SimContext::Backend::kInterpreted);
  s.run(80);
  EXPECT_EQ(s.ctx().packState(), reference);
}

}  // namespace
}  // namespace esl
