#include "elastic/eemux.h"

#include <gtest/gtest.h>

#include "netlist/patterns.h"
#include "sim/trace.h"
#include "test_util.h"

namespace esl {
namespace {

using test::receivedCycles;
using test::receivedValues;

TEST(EarlyEvalMux, FiresWithoutNonSelectedInput) {
  // Select always 0; channel 1 NEVER produces a token. A join mux would
  // deadlock; the early-evaluation mux must stream channel 0 through.
  Netlist nl;
  auto& d0 = nl.make<TokenSource>("d0", 8, TokenSource::counting(8, 1));
  auto& d1 = nl.make<TokenSource>(
      "d1", 8, [](std::uint64_t) -> std::optional<BitVec> { return std::nullopt; });
  auto& sel = nl.make<TokenSource>("sel", 1,
                                   [](std::uint64_t) -> std::optional<BitVec> {
                                     return BitVec(1, 0);
                                   });
  auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, 8);
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(sel, 0, mux, 0);
  nl.connect(d0, 0, mux, 1);
  const ChannelId ch1 = nl.connect(d1, 0, mux, 2);
  nl.connect(mux, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(10);
  EXPECT_EQ(receivedValues(sink), test::iota(10, 1));
  // Anti-tokens pile up as pending obligations on the dead channel.
  EXPECT_EQ(mux.antiTokensEmitted(), 10u);
  EXPECT_EQ(s.channelStats(ch1).kills, 0u);
}

TEST(EarlyEvalMux, AntiTokenKillsLateArrival) {
  // Channel 1's tokens arrive late; each one is annihilated by the pending
  // anti-token from the firing that skipped it.
  Netlist nl;
  auto& d0 = nl.make<TokenSource>("d0", 8, TokenSource::counting(8, 1));
  auto& d1 = nl.make<TokenSource>("d1", 8, TokenSource::counting(8, 101),
                                  [](std::uint64_t c) { return c >= 3; });
  auto& sel = nl.make<TokenSource>(
      "sel", 1, [](std::uint64_t) -> std::optional<BitVec> { return BitVec(1, 0); });
  auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, 8);
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(sel, 0, mux, 0);
  nl.connect(d0, 0, mux, 1);
  const ChannelId ch1 = nl.connect(d1, 0, mux, 2);
  nl.connect(mux, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(20);
  EXPECT_EQ(receivedValues(sink), test::iota(20, 1));  // ch0 streams through
  EXPECT_GT(s.channelStats(ch1).kills, 10u);           // ch1 tokens all killed
  EXPECT_EQ(s.channelStats(ch1).fwdTransfers, 0u);
}

TEST(EarlyEvalMux, SelectOutOfRangeThrows) {
  Netlist nl;
  auto& d0 = nl.make<TokenSource>("d0", 8, TokenSource::counting(8));
  auto& d1 = nl.make<TokenSource>("d1", 8, TokenSource::counting(8));
  auto& sel = nl.make<TokenSource>(
      "sel", 2, [](std::uint64_t) -> std::optional<BitVec> { return BitVec(2, 3); });
  auto& mux = nl.make<EarlyEvalMux>("mux", 2, 2, 8);
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(sel, 0, mux, 0);
  nl.connect(d0, 0, mux, 1);
  nl.connect(d1, 0, mux, 2);
  nl.connect(mux, 0, sink, 0);
  sim::Simulator s(nl);
  EXPECT_THROW(s.run(2), EslError);
}

// A producer that never offers tokens and never accepts anti-tokens: pending
// anti-tokens must persist (Retry-) at the mux input.
class StubbornProducer : public Node {
 public:
  explicit StubbornProducer(std::string name, unsigned width) : Node(std::move(name)) {
    declareOutput(width);
  }
  void evalComb(SimContext& ctx) override {
    Sig out = ctx.sig(output(0));
    out.setVf(false);
    out.setSb(true);  // refuses anti-tokens
  }
  std::string kindName() const override { return "stubborn"; }
};

TEST(EarlyEvalMux, PendingAntiTokenPersists) {
  Netlist nl;
  auto& d0 = nl.make<TokenSource>("d0", 8, TokenSource::counting(8, 1));
  auto& d1 = nl.make<StubbornProducer>("d1", 8);
  auto& sel = nl.make<TokenSource>(
      "sel", 1, [](std::uint64_t) -> std::optional<BitVec> { return BitVec(1, 0); });
  auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, 8);
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(sel, 0, mux, 0);
  nl.connect(d0, 0, mux, 1);
  const ChannelId ch1 = nl.connect(d1, 0, mux, 2);
  nl.connect(mux, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(6);
  // Six firings, all anti-tokens blocked: V- held high (Retry-), none lost.
  EXPECT_EQ(mux.antiTokensEmitted(), 6u);
  EXPECT_EQ(s.channelStats(ch1).bwdTransfers, 0u);
  EXPECT_EQ(s.channelStats(ch1).kills, 0u);
  EXPECT_TRUE(s.ctx().sig(ch1).vb());
}

TEST(EarlyEvalMux, MispredictionCostsOneCycle) {
  // Static scheduler always predicts 0; select stream alternates. Every
  // select=1 firing pays one demand-correction cycle.
  auto sys = patterns::buildTable1({0, 1, 0, 1, 0, 1}, 1, 101,
                                   std::make_unique<sched::StaticScheduler>(2, 0));
  sim::Simulator s(sys.nl);
  s.run(12);
  const auto cycles = receivedCycles(*sys.sink);
  ASSERT_EQ(cycles.size(), 6u);
  // sel=0 fires immediately; sel=1 stalls one cycle first.
  EXPECT_EQ(cycles, (std::vector<std::uint64_t>{0, 2, 3, 5, 6, 8}));
  EXPECT_EQ(sys.shared->demandCycles(), 3u);
}

TEST(Table1, ReproducesThePaperTrace) {
  // Paper Table 1, including the anti-token and bubble cells. EBin at cycle 6
  // is 'F' here: the published 'G' contradicts the table's own Fout0/Sel rows
  // (documented erratum, see EXPERIMENTS.md).
  auto sys = patterns::buildTable1({0, 1, 1, 0, 0});
  sim::TraceRecorder trace;
  trace.addChannel(sys.fin0, "Fin0");
  trace.addChannel(sys.fout0, "Fout0");
  trace.addChannel(sys.fin1, "Fin1");
  trace.addChannel(sys.fout1, "Fout1");
  trace.addSignal("Sel", [&sys](SimContext& ctx) {
    const ConstSig s = ctx.sig(sys.sel);
    return s.vf() ? std::to_string(s.dataLow64()) : "*";
  });
  trace.addSignal("Sched", [&sys](SimContext& ctx) {
    return std::to_string(sys.shared->prediction(ctx));
  });
  trace.addChannel(sys.ebin, "EBin");

  sim::Simulator s(sys.nl);
  s.attachTrace(&trace);
  s.run(7);

  const std::vector<std::vector<std::string>> expected = {
      {"A", "-", "C", "-", "E", "F", "F"},  // Fin0
      {"A", "-", "C", "-", "E", "*", "F"},  // Fout0
      {"-", "B", "D", "D", "-", "G", "-"},  // Fin1
      {"-", "B", "*", "D", "-", "G", "-"},  // Fout1
      {"0", "1", "1", "1", "0", "0", "0"},  // Sel
      {"0", "1", "0", "1", "0", "1", "0"},  // Sched
      {"A", "B", "*", "D", "E", "*", "F"},  // EBin ('F': paper's 'G' is a typo)
  };
  for (std::size_t row = 0; row < expected.size(); ++row)
    for (std::uint64_t cyc = 0; cyc < 7; ++cyc)
      EXPECT_EQ(trace.cell(row, cyc), expected[row][cyc])
          << "row " << trace.rowLabel(row) << " cycle " << cyc;
}

TEST(Table1, SinkReceivesSelectedStream) {
  auto sys = patterns::buildTable1({0, 1, 1, 0, 0});
  sim::Simulator s(sys.nl);
  s.run(7);
  // Firings: ch0 #1 (1), ch1 #2 (102), ch1 #3 (103), ch0 #4 (4), ch0 #5 (5).
  EXPECT_EQ(receivedValues(*sys.sink),
            (std::vector<std::uint64_t>{1, 102, 103, 4, 5}));
  EXPECT_EQ(receivedCycles(*sys.sink),
            (std::vector<std::uint64_t>{0, 1, 3, 4, 6}));
}

TEST(Table1, ProtocolHoldsThroughout) {
  auto sys = patterns::buildTable1({0, 1, 1, 0, 0, 1, 0, 1, 1, 0});
  sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = true});
  s.run(20);
  EXPECT_TRUE(s.ctx().protocolViolations().empty());
}

TEST(EarlyEvalMux, BackpressuredOutputRetries) {
  // Output stalled every other cycle: firings retry, nothing lost or reordered.
  Netlist nl;
  auto& d0 = nl.make<TokenSource>("d0", 8, TokenSource::counting(8, 1));
  auto& d1 = nl.make<TokenSource>("d1", 8, TokenSource::counting(8, 101));
  auto& sel = nl.make<TokenSource>(
      "sel", 1, [](std::uint64_t i) -> std::optional<BitVec> {
        return BitVec(1, i % 2);
      });
  auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, 8);
  auto& sink = nl.make<TokenSink>("sink", 8,
                                  [](std::uint64_t c) { return c % 2 == 1; });
  nl.connect(sel, 0, mux, 0);
  nl.connect(d0, 0, mux, 1);
  nl.connect(d1, 0, mux, 2);
  nl.connect(mux, 0, sink, 0);

  sim::Simulator s(nl);
  s.run(40);
  const auto vals = receivedValues(sink);
  ASSERT_GE(vals.size(), 10u);
  // Alternating select: 1, 102, 3, 104, ... (each stream advances by kills).
  for (std::size_t i = 0; i < vals.size(); ++i) {
    const std::uint64_t expectedVal = (i % 2 == 0) ? 1 + i : 101 + i;
    EXPECT_EQ(vals[i], expectedVal) << "at " << i;
  }
}

}  // namespace
}  // namespace esl
