#include "transform/transform.h"

#include <gtest/gtest.h>

#include "netlist/patterns.h"
#include "sim/equiv.h"
#include "test_util.h"

namespace esl {
namespace {

using test::iota;
using test::receivedValues;

/// A small open pipeline with a mux + following function, used by several
/// transformation tests: sel/d0/d1 sources -> join mux -> F -> sink.
struct MuxPipeline {
  Netlist nl;
  FuncNode* mux = nullptr;
  FuncNode* f = nullptr;
  TokenSink* sink = nullptr;
};

MuxPipeline buildMuxPipeline(unsigned selPeriod = 3) {
  MuxPipeline p;
  auto& sel = p.nl.make<TokenSource>(
      "sel", 1, [selPeriod](std::uint64_t i) -> std::optional<BitVec> {
        return BitVec(1, i % selPeriod == 0 ? 1 : 0);
      });
  auto& d0 = p.nl.make<TokenSource>("d0", 8, TokenSource::counting(8, 1));
  auto& d1 = p.nl.make<TokenSource>("d1", 8, TokenSource::counting(8, 101));
  p.mux = &makeJoinMux(p.nl, "mux", 2, 1, 8);
  p.f = &makeUnary(p.nl, "F", 8, 8,
                   [](const BitVec& x) { return (x << 1) ^ x; },
                   logic::Cost{6.0, 50.0});
  p.sink = &p.nl.make<TokenSink>("sink", 8);
  p.nl.connect(sel, 0, *p.mux, 0);
  p.nl.connect(d0, 0, *p.mux, 1);
  p.nl.connect(d1, 0, *p.mux, 2);
  p.nl.connect(*p.mux, 0, *p.f, 0);
  p.nl.connect(*p.f, 0, *p.sink, 0);
  p.nl.validate();
  return p;
}

TEST(InsertBubble, PreservesTransferEquivalence) {
  MuxPipeline a = buildMuxPipeline();
  MuxPipeline b = buildMuxPipeline();
  transform::insertBubble(b.nl, b.f->output(0));
  b.nl.validate();
  const auto r = sim::transferEquivalent(a.nl, b.nl, 60, 20);
  EXPECT_TRUE(r.equivalent) << r.reason;
}

TEST(InsertBubble, HalvesLoopThroughput) {
  // Fig. 1(a) vs Fig. 1(b): the single-token loop drops to throughput 1/2.
  auto a = patterns::buildFig1(patterns::Fig1Variant::kNonSpeculative);
  auto b = patterns::buildFig1(patterns::Fig1Variant::kBubble);
  sim::Simulator sa(a.nl), sb(b.nl);
  sa.run(200);
  sb.run(200);
  EXPECT_NEAR(sa.throughput(a.loopChannel), 1.0, 0.02);
  EXPECT_NEAR(sb.throughput(b.loopChannel), 0.5, 0.02);
}

TEST(RemoveBubble, InverseOfInsert) {
  MuxPipeline a = buildMuxPipeline();
  MuxPipeline b = buildMuxPipeline();
  auto& bubble = transform::insertBubble(b.nl, b.f->output(0));
  transform::removeBubble(b.nl, bubble.id());
  b.nl.validate();
  const auto r = sim::transferEquivalent(a.nl, b.nl, 40, 20);
  EXPECT_TRUE(r.equivalent) << r.reason;
}

TEST(RemoveBubble, RefusesNonEmptyEb) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8, 2, std::vector<BitVec>{BitVec(8, 5)});
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, sink, 0);
  EXPECT_THROW(transform::removeBubble(nl, eb.id()), TransformError);
}

TEST(RetimeBackward, MovesBubbleAcrossFunction) {
  MuxPipeline a = buildMuxPipeline();
  MuxPipeline b = buildMuxPipeline();
  auto& bubble = transform::insertBubble(b.nl, b.f->output(0));
  const auto ebs = transform::retimeBackward(b.nl, bubble.id());
  b.nl.validate();
  ASSERT_EQ(ebs.size(), 1u);  // F is unary: one EB on its single input
  const auto r = sim::transferEquivalent(a.nl, b.nl, 60, 20);
  EXPECT_TRUE(r.equivalent) << r.reason;
}

TEST(RetimeBackward, RefusesTokenBearingEb) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& f = makeUnary(nl, "F", 8, 8, [](const BitVec& x) { return x; });
  auto& eb = nl.make<ElasticBuffer>("eb", 8, 2, std::vector<BitVec>{BitVec(8, 1)});
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(src, 0, f, 0);
  nl.connect(f, 0, eb, 0);
  nl.connect(eb, 0, sink, 0);
  EXPECT_THROW(transform::retimeBackward(nl, eb.id()), TransformError);
}

TEST(RetimeForward, RecomputesTokensThroughFunction) {
  // EBs holding (3) and (4) before an adder become one EB holding (7).
  auto build = [](bool retimed) {
    Netlist nl;
    auto& a = nl.make<TokenSource>("a", 8, TokenSource::counting(8, 10));
    auto& b = nl.make<TokenSource>("b", 8, TokenSource::counting(8, 20));
    auto& ebA = nl.make<ElasticBuffer>("ebA", 8, 2, std::vector<BitVec>{BitVec(8, 3)});
    auto& ebB = nl.make<ElasticBuffer>("ebB", 8, 2, std::vector<BitVec>{BitVec(8, 4)});
    auto& add = makeBinary(nl, "add", 8, 8, 8,
                           [](const BitVec& x, const BitVec& y) { return x + y; });
    auto& sink = nl.make<TokenSink>("sink", 8);
    nl.connect(a, 0, ebA, 0);
    nl.connect(b, 0, ebB, 0);
    nl.connect(ebA, 0, add, 0);
    nl.connect(ebB, 0, add, 1);
    nl.connect(add, 0, sink, 0);
    if (retimed) transform::retimeForward(nl, add.id());
    nl.validate();
    return nl;
  };
  Netlist plain = build(false);
  Netlist retimed = build(true);
  const auto r = sim::transferEquivalent(plain, retimed, 40, 10);
  EXPECT_TRUE(r.equivalent) << r.reason;
}

TEST(RetimeForward, RefusesMismatchedTokenCounts) {
  Netlist nl;
  auto& a = nl.make<TokenSource>("a", 8, TokenSource::counting(8));
  auto& b = nl.make<TokenSource>("b", 8, TokenSource::counting(8));
  auto& ebA = nl.make<ElasticBuffer>("ebA", 8, 2, std::vector<BitVec>{BitVec(8, 3)});
  auto& ebB = nl.make<ElasticBuffer>("ebB", 8);
  auto& add = makeBinary(nl, "add", 8, 8, 8,
                         [](const BitVec& x, const BitVec& y) { return x + y; });
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(a, 0, ebA, 0);
  nl.connect(b, 0, ebB, 0);
  nl.connect(ebA, 0, add, 0);
  nl.connect(ebB, 0, add, 1);
  nl.connect(add, 0, sink, 0);
  EXPECT_THROW(transform::retimeForward(nl, add.id()), TransformError);
}

TEST(Shannon, DuplicatesFunctionOntoInputs) {
  MuxPipeline a = buildMuxPipeline();
  MuxPipeline b = buildMuxPipeline();
  const auto res = transform::shannonDecompose(b.nl, b.mux->id(), b.f->id());
  b.nl.validate();
  EXPECT_EQ(res.copies.size(), 2u);
  EXPECT_TRUE(b.nl.hasNode(res.mux));
  const auto r = sim::transferEquivalent(a.nl, b.nl, 60, 20);
  EXPECT_TRUE(r.equivalent) << r.reason;
}

TEST(Shannon, RequiresAdjacentFunction) {
  MuxPipeline p = buildMuxPipeline();
  auto& bubble = transform::insertBubble(p.nl, p.mux->output(0));
  (void)bubble;  // now F is no longer directly after the mux
  EXPECT_THROW(transform::shannonDecompose(p.nl, p.mux->id(), p.f->id()),
               TransformError);
}

TEST(Shannon, RequiresMuxRole) {
  MuxPipeline p = buildMuxPipeline();
  // F is not a mux: using it as the "mux" argument must fail.
  EXPECT_THROW(transform::shannonDecompose(p.nl, p.f->id(), p.f->id()),
               TransformError);
}

TEST(EarlyEvalConversion, PreservesTransferEquivalence) {
  MuxPipeline a = buildMuxPipeline();
  MuxPipeline b = buildMuxPipeline();
  transform::convertToEarlyEval(b.nl, b.mux->id());
  b.nl.validate();
  const auto r = sim::transferEquivalent(a.nl, b.nl, 60, 20);
  EXPECT_TRUE(r.equivalent) << r.reason;
}

TEST(ShareFunctions, MergesCopiesBehindScheduler) {
  MuxPipeline a = buildMuxPipeline();
  MuxPipeline b = buildMuxPipeline();
  const auto shannon = transform::shannonDecompose(b.nl, b.mux->id(), b.f->id());
  const NodeId ee = transform::convertToEarlyEval(b.nl, shannon.mux);
  const NodeId shared = transform::shareFunctions(
      b.nl, shannon.copies, ee, std::make_unique<sched::LastServedScheduler>(2));
  b.nl.validate();
  EXPECT_TRUE(b.nl.hasNode(shared));
  const auto r = sim::transferEquivalent(a.nl, b.nl, 80, 20);
  EXPECT_TRUE(r.equivalent) << r.reason;
}

class SpeculateSchedulerTest
    : public ::testing::TestWithParam<patterns::Fig1Scheduler> {};

TEST_P(SpeculateSchedulerTest, RecipeMatchesHandBuiltSpeculativeLoop) {
  // Apply the full §4 recipe to Fig. 1(a); the result must be transfer
  // equivalent to the original AND to the hand-built Fig. 1(d), for any
  // scheduler (functional equivalence is scheduler-independent).
  patterns::Fig1Config cfg;
  cfg.scheduler = GetParam();

  auto original = patterns::buildFig1(patterns::Fig1Variant::kNonSpeculative, cfg);
  auto transformed = patterns::buildFig1(patterns::Fig1Variant::kNonSpeculative, cfg);
  auto handBuilt = patterns::buildFig1(patterns::Fig1Variant::kSpeculative, cfg);

  FuncNode* mux = dynamic_cast<FuncNode*>(transformed.nl.findNode("mux"));
  Node* f = transformed.nl.findNode("F");
  ASSERT_NE(mux, nullptr);
  ASSERT_NE(f, nullptr);

  std::unique_ptr<sched::Scheduler> sched;
  switch (cfg.scheduler) {
    case patterns::Fig1Scheduler::kStatic0:
      sched = std::make_unique<sched::StaticScheduler>(2, 0);
      break;
    case patterns::Fig1Scheduler::kLastServed:
      sched = std::make_unique<sched::LastServedScheduler>(2);
      break;
    default:
      sched = std::make_unique<sched::RoundRobinScheduler>(2);
      break;
  }
  transform::speculate(transformed.nl, mux->id(), f->id(), std::move(sched));
  transformed.nl.validate();

  const auto r1 = sim::transferEquivalent(original.nl, transformed.nl, 150, 40);
  EXPECT_TRUE(r1.equivalent) << r1.reason;
  const auto r2 = sim::transferEquivalent(handBuilt.nl, transformed.nl, 150, 40);
  EXPECT_TRUE(r2.equivalent) << r2.reason;
}

INSTANTIATE_TEST_SUITE_P(Schedulers, SpeculateSchedulerTest,
                         ::testing::Values(patterns::Fig1Scheduler::kStatic0,
                                           patterns::Fig1Scheduler::kLastServed,
                                           patterns::Fig1Scheduler::kRoundRobin));

TEST(FindCandidates, FlagsCriticalCycleThroughSelect) {
  auto loop = patterns::buildFig1(patterns::Fig1Variant::kNonSpeculative);
  const auto candidates = transform::findSpeculationCandidates(loop.nl);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(loop.nl.node(candidates[0].mux).name(), "mux");
  EXPECT_EQ(loop.nl.node(candidates[0].func).name(), "F");
  EXPECT_TRUE(candidates[0].onCriticalCycle);
}

TEST(FindCandidates, OpenSystemIsNotCritical) {
  MuxPipeline p = buildMuxPipeline();
  const auto candidates = transform::findSpeculationCandidates(p.nl);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_FALSE(candidates[0].onCriticalCycle);  // sel comes from a source
}

TEST(BubbleEverywhere, AnyChannelStaysEquivalent) {
  // Property: inserting a bubble on EVERY channel of the open pipeline (one
  // at a time) preserves transfer equivalence — "it is always possible to
  // insert empty EBs in any channel" (paper §2).
  MuxPipeline reference = buildMuxPipeline();
  const auto channels = reference.nl.channelIds();
  for (const ChannelId ch : channels) {
    MuxPipeline mutated = buildMuxPipeline();
    transform::insertBubble(mutated.nl, ch);  // same ids: same build order
    mutated.nl.validate();
    MuxPipeline fresh = buildMuxPipeline();
    const auto r = sim::transferEquivalent(fresh.nl, mutated.nl, 60, 15);
    EXPECT_TRUE(r.equivalent)
        << "bubble on channel " << reference.nl.channel(ch).name << ": " << r.reason;
  }
}

}  // namespace
}  // namespace esl
