// Shared driver for the three-way kernel differential fuzz (PR-fast suite in
// test_diff_kernels.cpp, large seeded campaign in test_diff_nightly.cpp).
//
// One trial builds the same synthetic system three times — reference sweep,
// event-driven interpreter, compiled bytecode VM — runs the instances in
// lockstep, and asserts identical packed netlist state after EVERY cycle
// (plus identical sink transfer streams at the end) — a much stronger oracle
// than end-of-run outputs, since a divergence that later self-corrects still
// fails. On failure the driver greedily shrinks the offending SynthConfig
// (fewer nodes, plainer traffic, fewer cycles) while the mismatch reproduces,
// so the reported seed/config is a minimal repro.
#pragma once

#include <optional>
#include <string>

#include "netlist/synth.h"
#include "sim/simulator.h"

namespace esl::test {

/// Compares the two sinks' transfer streams; `label` names the pair.
inline std::optional<std::string> diffSinkStreams(const TokenSink* a,
                                                  const TokenSink* b,
                                                  const std::string& label) {
  if (a == nullptr || b == nullptr) return std::nullopt;
  const auto& ta = a->transfers();
  const auto& tb = b->transfers();
  if (ta.size() != tb.size())
    return label + ": sink transfer counts differ (" +
           std::to_string(ta.size()) + " vs " + std::to_string(tb.size()) + ")";
  for (std::size_t i = 0; i < ta.size(); ++i)
    if (ta[i].cycle != tb[i].cycle || !(ta[i].data == tb[i].data))
      return label + ": sink transfer " + std::to_string(i) + " differs";
  return std::nullopt;
}

/// Runs one three-way differential trial (sweep vs event vs compiled);
/// returns a description of the first mismatch naming the diverging pair, or
/// nullopt when all three agree everywhere.
inline std::optional<std::string> diffKernelsOnce(const synth::SynthConfig& cfg,
                                                  std::uint64_t cycles) {
  synth::SynthSystem sweep = synth::build(cfg);
  synth::SynthSystem event = synth::build(cfg);
  synth::SynthSystem comp = synth::build(cfg);
  sim::SimOptions base;
  base.checkProtocol = false;  // the oracle is state equality, keep runs lean
  sim::SimOptions sweepOpts = base, eventOpts = base, compOpts = base;
  sweepOpts.kernel = SimContext::SettleKernel::kSweep;
  eventOpts.kernel = SimContext::SettleKernel::kEventDriven;
  compOpts.kernel = SimContext::SettleKernel::kEventDriven;
  compOpts.backend = SimContext::Backend::kCompiled;
  sim::Simulator ss(sweep.nl, sweepOpts);
  sim::Simulator se(event.nl, eventOpts);
  sim::Simulator sc(comp.nl, compOpts);

  for (std::uint64_t c = 0; c < cycles; ++c) {
    ss.step();
    se.step();
    sc.step();
    if (ss.ctx().packState() != se.ctx().packState())
      return "sweep-vs-event: packed state diverged at cycle " +
             std::to_string(c);
    if (se.ctx().packState() != sc.ctx().packState())
      return "event-vs-compiled: packed state diverged at cycle " +
             std::to_string(c);
  }
  if (auto d = diffSinkStreams(sweep.mainSink, event.mainSink, "sweep-vs-event"))
    return d;
  if (auto d =
          diffSinkStreams(event.mainSink, comp.mainSink, "event-vs-compiled"))
    return d;
  return std::nullopt;
}

/// Two-way compiled-vs-interpreted differential (the compiled-kernel suite's
/// workhorse; the three-way diffKernelsOnce subsumes it but costs a third
/// sweep-kernel run).
inline std::optional<std::string> diffCompiledOnce(const synth::SynthConfig& cfg,
                                                   std::uint64_t cycles) {
  synth::SynthSystem interp = synth::build(cfg);
  synth::SynthSystem comp = synth::build(cfg);
  sim::SimOptions base;
  base.checkProtocol = false;
  sim::SimOptions compOpts = base;
  compOpts.backend = SimContext::Backend::kCompiled;
  sim::Simulator si(interp.nl, base);
  sim::Simulator sc(comp.nl, compOpts);

  for (std::uint64_t c = 0; c < cycles; ++c) {
    si.step();
    sc.step();
    if (si.ctx().packState() != sc.ctx().packState())
      return "packed state diverged at cycle " + std::to_string(c);
  }
  return diffSinkStreams(interp.mainSink, comp.mainSink, "interp-vs-compiled");
}

/// Sharded-vs-serial differential: the same system, one instance on the
/// serial event kernel and one sharded across `shards` worker lanes, asserted
/// packState-identical after EVERY cycle (the sharded settle must reach the
/// exact fixed point the serial kernel does, cycle by cycle).
inline std::optional<std::string> diffShardedOnce(const synth::SynthConfig& cfg,
                                                  std::uint64_t cycles,
                                                  unsigned shards) {
  synth::SynthSystem serial = synth::build(cfg);
  synth::SynthSystem sharded = synth::build(cfg);
  sim::SimOptions base;
  base.checkProtocol = false;
  sim::SimOptions shardedOpts = base;
  shardedOpts.shards = shards;
  sim::Simulator ss(serial.nl, base);
  sim::Simulator sh(sharded.nl, shardedOpts);

  for (std::uint64_t c = 0; c < cycles; ++c) {
    ss.step();
    sh.step();
    if (ss.ctx().packState() != sh.ctx().packState())
      return "packed state diverged at cycle " + std::to_string(c) + " (" +
             std::to_string(shards) + " shards)";
  }
  if (serial.mainSink != nullptr && sharded.mainSink != nullptr) {
    const auto& a = serial.mainSink->transfers();
    const auto& b = sharded.mainSink->transfers();
    if (a.size() != b.size())
      return "sink transfer counts differ (" + std::to_string(a.size()) + " vs " +
             std::to_string(b.size()) + ")";
    for (std::size_t i = 0; i < a.size(); ++i)
      if (a[i].cycle != b[i].cycle || !(a[i].data == b[i].data))
        return "sink transfer " + std::to_string(i) + " differs";
  }
  return std::nullopt;
}

/// Compiled×sharded differential: the compiled backend sharded across
/// `shards` lanes against the serial compiled backend, packState-identical
/// after every cycle. Interior nodes run specialized arena ops while
/// boundary-adjacent nodes take the staging-aware interpreted path, so this
/// pins both the shard-sliced arena and the mixed-dispatch seam.
inline std::optional<std::string> diffCompiledShardedOnce(
    const synth::SynthConfig& cfg, std::uint64_t cycles, unsigned shards) {
  synth::SynthSystem serial = synth::build(cfg);
  synth::SynthSystem sharded = synth::build(cfg);
  sim::SimOptions base;
  base.checkProtocol = false;
  base.backend = SimContext::Backend::kCompiled;
  sim::SimOptions shardedOpts = base;
  shardedOpts.shards = shards;
  sim::Simulator ss(serial.nl, base);
  sim::Simulator sh(sharded.nl, shardedOpts);

  for (std::uint64_t c = 0; c < cycles; ++c) {
    ss.step();
    sh.step();
    if (ss.ctx().packState() != sh.ctx().packState())
      return "compiled packed state diverged at cycle " + std::to_string(c) +
             " (" + std::to_string(shards) + " shards)";
  }
  return diffSinkStreams(serial.mainSink, sharded.mainSink,
                         "compiled-serial-vs-sharded");
}

struct DiffFailure {
  synth::SynthConfig config;  ///< minimal failing config
  std::uint64_t cycles = 0;
  std::string mismatch;
  std::string describe() const {
    return "kernel divergence on " + synth::describe(config) + " (seed " +
           std::to_string(config.seed) + ", " + std::to_string(cycles) +
           " cycles): " + mismatch;
  }
};

/// Greedy config shrinker shared by the property-based harnesses (kernel
/// differential fuzz, `.esl` round-trip equivalence): given a failing
/// (cfg, cycles) pair and a predicate that re-runs the trial, shrinks one
/// knob at a time, keeping each shrink only while the failure reproduces.
/// Structural shrinks first (smaller netlist), then traffic, then time.
template <typename StillFails>
inline void shrinkSynthConfig(synth::SynthConfig& cfg, std::uint64_t& cycles,
                              const StillFails& stillFails) {
  while (cfg.targetNodes > 6) {
    synth::SynthConfig candidate = cfg;
    candidate.targetNodes = cfg.targetNodes / 2 < 6 ? 6 : cfg.targetNodes / 2;
    if (!stillFails(candidate, cycles)) break;
    cfg = candidate;
  }
  for (const auto knob : {0, 1, 2, 3}) {
    synth::SynthConfig candidate = cfg;
    switch (knob) {
      case 0: candidate.vluPermille = 0; break;
      case 1: candidate.injectPeriod = 1; break;
      case 2: candidate.bufferCapacity = 2; break;
      case 3: candidate.width = 1; break;
    }
    if (stillFails(candidate, cycles)) cfg = candidate;
  }
  while (cycles > 8 && stillFails(cfg, cycles / 2)) cycles /= 2;
}

/// Runs the trial and, if it fails, shrinks the config before reporting.
inline std::optional<DiffFailure> diffKernelsShrinking(synth::SynthConfig cfg,
                                                       std::uint64_t cycles) {
  auto mismatch = diffKernelsOnce(cfg, cycles);
  if (!mismatch) return std::nullopt;

  shrinkSynthConfig(cfg, cycles,
                    [](const synth::SynthConfig& candidate,
                       std::uint64_t candidateCycles) {
                      return diffKernelsOnce(candidate, candidateCycles).has_value();
                    });

  DiffFailure failure;
  failure.config = cfg;
  failure.cycles = cycles;
  failure.mismatch = *diffKernelsOnce(cfg, cycles);
  return failure;
}

}  // namespace esl::test
