// VM-owned node-state arena: adopt/flush identity and sharded composition.
//
// The compiled backend packs per-node sequential state (EB rings, fork done
// bits, source cursors, ee-mux anti counters, VLU operands) into one
// contiguous VM-owned arena (compile/vm.h). The node objects stay the
// authoritative store whenever the VM is not mid-phase: every compiled phase
// adopts node state lazily and flushState() publishes the arena back before
// anything interprets it. These tests pin that protocol:
//   * per-kind round trips: for every stateful node kind, a compiled run's
//     packState() restored into a fresh compiled instance repacks byte-equal
//     and resumes in lockstep — pack reads a freshly flushed arena, unpack
//     invalidates it, the next phase re-adopts;
//   * three-way sweep/event/compiled lockstep with the arena active;
//   * program-cache keying on the (topologyVersion, board layout) pair: a
//     shard-count flip re-lays the board without a topology bump and must
//     trigger recompilation (regression: the cache used to key on
//     topologyVersion alone and would run stale SlotAddrs into the new
//     layout);
//   * compiled×sharded composition: packState bit-identical to the serial
//     compiled backend for every tested shard count.
//
// This suite carries the `compiled-kernel` CTest label (ASan/UBSan legs: raw
// arena addressing) and the `sharded-kernel` label (TSan leg: shard-sliced
// arena records under real threads).
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "diff_kernels_util.h"
#include "netlist/patterns.h"
#include "netlist/synth.h"
#include "test_util.h"

namespace esl {
namespace {

sim::SimOptions compiledOpts() {
  sim::SimOptions o;
  o.checkProtocol = false;
  o.backend = SimContext::Backend::kCompiled;
  return o;
}

/// Runs `build`'s netlist on the compiled backend; every cycle of the window,
/// restores the live snapshot into a second compiled instance, requires the
/// repack to be byte-equal (arena flush → node bytes → arena re-adopt is the
/// identity), then steps both and requires them to stay equal (the snapshot
/// header's cycle field keeps the probe's choice stream aligned).
void expectArenaRoundTrip(const std::function<Netlist()>& build,
                          std::uint64_t warmup, std::uint64_t window) {
  Netlist liveNl = build();
  sim::Simulator live(liveNl, compiledOpts());
  Netlist probeNl = build();
  sim::Simulator probe(probeNl, compiledOpts());
  live.run(warmup);
  for (std::uint64_t c = 0; c < window; ++c) {
    const std::vector<std::uint8_t> snap = live.ctx().packState();
    probe.ctx().unpackState(snap);
    ASSERT_EQ(probe.ctx().packState(), snap)
        << "arena round trip lossy at cycle " << c;
    live.step();
    probe.step();
    ASSERT_EQ(live.ctx().packState(), probe.ctx().packState())
        << "restored instance diverged at cycle " << c;
  }
}

TEST(StateArena, BufferKindsRoundTrip) {
  // kEb (ring mid-wrap under anti-tokens), kEb0, kBrokenEb.
  expectArenaRoundTrip(
      [] {
        Netlist nl;
        auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
        auto& eb = nl.make<ElasticBuffer>("eb", 8, 3u);
        auto& z = nl.make<ElasticBuffer0>("z", 8);
        auto& broken = nl.make<BrokenBuffer>("broken", 8);
        auto& sink = nl.make<TokenSink>(
            "sink", 8,
            [](std::uint64_t c) { return hashChancePermille(c, 550, 5); },
            /*antiBudget=*/3,
            [](std::uint64_t c) { return hashChancePermille(c, 180, 9); });
        nl.connect(src, 0, eb, 0);
        nl.connect(eb, 0, z, 0);
        nl.connect(z, 0, broken, 0);
        nl.connect(broken, 0, sink, 0);
        return nl;
      },
      17, 50);
}

TEST(StateArena, ForkDoneBitsRoundTrip) {
  // kFork with straggling branches: done bits are mid-flight most cycles.
  expectArenaRoundTrip(
      [] {
        Netlist nl;
        auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
        auto& fork = nl.make<ForkNode>("fork", 8, 3);
        nl.connect(src, 0, fork, 0);
        for (unsigned b = 0; b < 3; ++b) {
          auto& sink = nl.make<TokenSink>(
              "sink" + std::to_string(b), 8, [b](std::uint64_t c) {
                return hashChancePermille(c, 400 + 150 * b, 3 + b);
              });
          nl.connect(fork, b, sink, 0);
        }
        return nl;
      },
      13, 50);
}

TEST(StateArena, EeMuxAntiCountersRoundTrip) {
  // kEeMux with a chronically late input: pendingAnti_ counters stay hot.
  expectArenaRoundTrip(
      [] {
        Netlist nl;
        auto& d0 = nl.make<TokenSource>("d0", 8, TokenSource::counting(8, 1));
        auto& d1 =
            nl.make<TokenSource>("d1", 8, TokenSource::counting(8, 101),
                                 [](std::uint64_t c) { return c % 5 == 4; });
        auto& sel = nl.make<TokenSource>(
            "sel", 1, [](std::uint64_t c) -> std::optional<BitVec> {
              return BitVec(1, hashChancePermille(c, 250, 2) ? 1 : 0);
            });
        auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, 8);
        auto& sink = nl.make<TokenSink>("sink", 8);
        nl.connect(sel, 0, mux, 0);
        nl.connect(d0, 0, mux, 1);
        nl.connect(d1, 0, mux, 2);
        nl.connect(mux, 0, sink, 0);
        return nl;
      },
      11, 50);
}

TEST(StateArena, NondetEnvironmentsRoundTrip) {
  // kNondetSource/kNondetSink: offering/killCredit/idleStreak and
  // antiActive/consecutiveStops words, driven by the seeded choice stream.
  expectArenaRoundTrip(
      [] {
        Netlist nl;
        auto& src = nl.make<NondetSource>("src", 4, 2, /*dataBits=*/4);
        auto& eb = nl.make<ElasticBuffer>("eb", 4);
        auto& sink = nl.make<NondetSink>("sink", 4, 2, /*emitsAnti=*/true);
        nl.connect(src, 0, eb, 0);
        nl.connect(eb, 0, sink, 0);
        return nl;
      },
      15, 50);
}

TEST(StateArena, VluPipelineRoundTrip) {
  // kVlu: pending/result operand words sampled mid-latency.
  synth::SynthConfig cfg;
  cfg.topology = synth::Topology::kPipeline;
  cfg.targetNodes = 24;
  cfg.width = 8;
  cfg.seed = 7;
  cfg.vluPermille = 600;
  expectArenaRoundTrip([cfg] { return synth::buildNetlist(cfg); }, 11, 40);
}

TEST(StateArena, SpeculativeLoopFullCatalogRoundTrip) {
  // Fig. 1 speculative loop: SharedModule scheduler, ee-mux, forks and
  // buffers under anti-token traffic — the densest arena population.
  expectArenaRoundTrip(
      [] {
        return std::move(
            patterns::buildFig1(patterns::Fig1Variant::kSpeculative).nl);
      },
      23, 50);
}

TEST(StateArena, ThreeWayLockstepUnderArena) {
  // Sweep vs event vs compiled, packState after every cycle (the compiled
  // instance runs the arena; the oracle pair runs node objects).
  for (const synth::Topology topo :
       {synth::Topology::kForkJoin, synth::Topology::kSpecLadder}) {
    synth::SynthConfig cfg;
    cfg.topology = topo;
    cfg.targetNodes = 120;
    cfg.seed = 13;
    cfg.injectPeriod = 2;
    cfg.width = 16;
    cfg.vluPermille = 150;
    SCOPED_TRACE(synth::describe(cfg));
    const auto mismatch = test::diffKernelsOnce(cfg, 200);
    EXPECT_FALSE(mismatch.has_value()) << *mismatch;
  }
}

TEST(StateArena, RecompilesOnBoardRelayoutWithoutTopologyBump) {
  // setShards() re-lays the SignalBoard (boundary slots migrate to the top)
  // WITHOUT bumping the netlist's topologyVersion. The program cache keys on
  // the (topologyVersion, layoutGeneration) pair; a cache keyed on topology
  // alone would replay stale SlotAddrs into the permuted layout. Flip the
  // layout mid-run, twice, against an interpreted reference.
  synth::SynthConfig cfg;
  cfg.topology = synth::Topology::kRandomDag;
  cfg.targetNodes = 160;
  cfg.seed = 21;
  cfg.injectPeriod = 2;
  cfg.width = 16;
  synth::SynthSystem interp = synth::build(cfg);
  synth::SynthSystem comp = synth::build(cfg);
  sim::SimOptions interpOpts;
  interpOpts.checkProtocol = false;
  sim::Simulator si(interp.nl, interpOpts);
  sim::Simulator sc(comp.nl, compiledOpts());
  for (std::uint64_t c = 0; c < 180; ++c) {
    if (c == 60) {
      si.ctx().setShards(2);
      sc.ctx().setShards(2);
    }
    if (c == 120) {
      si.ctx().setShards(1);
      sc.ctx().setShards(1);
    }
    si.step();
    sc.step();
    ASSERT_EQ(si.ctx().packState(), sc.ctx().packState())
        << "diverged at cycle " << c;
  }
}

TEST(StateArena, CompiledShardedBitIdentical) {
  // `--backend compiled --shards N`: serial compiled vs sharded compiled,
  // packState after every cycle, across topology families and shard counts.
  for (const synth::Topology topo :
       {synth::Topology::kPipeline, synth::Topology::kSpecLadder,
        synth::Topology::kRandomDag}) {
    for (const unsigned shards : {2u, 8u}) {
      synth::SynthConfig cfg;
      cfg.topology = topo;
      cfg.targetNodes = 240;
      cfg.seed = 7;
      cfg.injectPeriod = 2;
      cfg.width = 16;
      cfg.vluPermille = 120;
      SCOPED_TRACE(synth::describe(cfg) + " shards=" + std::to_string(shards));
      auto mismatch = test::diffCompiledShardedOnce(cfg, 250, shards);
      if (mismatch) {
        synth::SynthConfig bad = cfg;
        std::uint64_t cycles = 250;
        test::shrinkSynthConfig(
            bad, cycles,
            [shards](const synth::SynthConfig& cand, std::uint64_t n) {
              return test::diffCompiledShardedOnce(cand, n, shards).has_value();
            });
        FAIL() << "compiled-sharded divergence on " << synth::describe(bad)
               << " (" << cycles << " cycles): "
               << *test::diffCompiledShardedOnce(bad, cycles, shards);
      }
    }
  }
}

TEST(StateArena, CompiledShardedNondetEnvironments) {
  // Pre-resolved choice bits + shard-sliced arena under nondet environments:
  // end state must match the serial compiled run for every seed.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    synth::SynthConfig cfg;
    cfg.topology = synth::Topology::kPipeline;
    cfg.targetNodes = 80;
    cfg.seed = seed;
    cfg.injectPeriod = 1;
    cfg.width = 16;
    cfg.nondetEnv = true;
    auto run = [&](unsigned shards) {
      synth::SynthSystem sys = synth::build(cfg);
      sim::SimOptions opts = compiledOpts();
      opts.seed = seed;
      opts.shards = shards;
      sim::Simulator s(sys.nl, opts);
      s.run(200);
      return s.ctx().packState();
    };
    const auto serial = run(1);
    EXPECT_EQ(serial, run(2)) << "seed " << seed << " shards 2";
    EXPECT_EQ(serial, run(8)) << "seed " << seed << " shards 8";
  }
}

TEST(StateArena, CrossCheckAuditsThroughTheArena) {
  // Cross-check mode flushes/adopts around every audit (reference settle,
  // per-node edge replay); running clean is the assertion.
  synth::SynthConfig cfg;
  cfg.topology = synth::Topology::kSpecLadder;
  cfg.targetNodes = 60;
  cfg.seed = 17;
  cfg.width = 8;
  cfg.vluPermille = 200;
  synth::SynthSystem sys = synth::build(cfg);
  sim::SimOptions opts = compiledOpts();
  opts.crossCheckKernels = true;
  sim::Simulator s(sys.nl, opts);
  ASSERT_NO_THROW(s.run(200));
}

}  // namespace
}  // namespace esl
