// Tests of the work-stealing executor (src/base/executor.*): full coverage of
// the index space, lane identification, imbalance tolerance (stealing), and
// exception propagation. SimFarm and the parallel model checker both sit on
// top of this, so these invariants are load-bearing for every parallel
// determinism guarantee in the repo.
#include "base/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "base/error.h"

namespace esl {
namespace {

TEST(Executor, RunsEveryIndexExactlyOnce) {
  for (const unsigned lanes : {1u, 2u, 4u, 8u}) {
    Executor ex(lanes);
    EXPECT_EQ(ex.lanes(), lanes);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    ex.parallelFor(kN, [&](std::size_t i, unsigned) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " lanes " << lanes;
  }
}

TEST(Executor, SingleLaneRunsInlineOnCaller) {
  Executor ex(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t count = 0;
  ex.parallelFor(64, [&](std::size_t, unsigned lane) {
    EXPECT_EQ(lane, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++count;  // safe: everything runs on this thread
  });
  EXPECT_EQ(count, 64u);
}

TEST(Executor, LaneIdsStayInRange) {
  Executor ex(4);
  std::atomic<unsigned> maxLane{0};
  ex.parallelFor(500, [&](std::size_t, unsigned lane) {
    unsigned seen = maxLane.load(std::memory_order_relaxed);
    while (lane > seen &&
           !maxLane.compare_exchange_weak(seen, lane, std::memory_order_relaxed)) {
    }
  });
  EXPECT_LT(maxLane.load(), 4u);
}

TEST(Executor, StealsFromImbalancedRanges) {
  // The front indices are much heavier than the rest; with static ranges and
  // no stealing this would serialize on lane 0. We can't observe the schedule
  // directly, but every index must still complete under the imbalance.
  Executor ex(4);
  std::vector<std::atomic<int>> hits(64);
  ex.parallelFor(64, [&](std::size_t i, unsigned) {
    if (i < 4) std::this_thread::sleep_for(std::chrono::milliseconds(20));
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(Executor, ReusableAcrossLoops) {
  Executor ex(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    ex.parallelFor(round + 1, [&](std::size_t i, unsigned) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    const auto n = static_cast<std::size_t>(round + 1);
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

TEST(Executor, EmptyLoopIsANoOp) {
  Executor ex(4);
  ex.parallelFor(0, [](std::size_t, unsigned) { FAIL() << "body must not run"; });
}

TEST(Executor, FirstExceptionPropagatesAndDrains) {
  Executor ex(4);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(
      ex.parallelFor(256,
                     [&](std::size_t i, unsigned) {
                       ran.fetch_add(1, std::memory_order_relaxed);
                       if (i == 17) throw EslError("boom at 17");
                     }),
      EslError);
  // Every index was drained (counted or skipped); the executor stays usable.
  std::atomic<std::size_t> after{0};
  ex.parallelFor(32, [&](std::size_t, unsigned) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 32u);
}

TEST(Executor, AutoLaneCountIsPositive) {
  Executor ex(0);
  EXPECT_GE(ex.lanes(), 1u);
  std::atomic<std::size_t> count{0};
  ex.parallelFor(10, [&](std::size_t, unsigned) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 10u);
}

}  // namespace
}  // namespace esl
