// Tests of the work-stealing executor (src/base/executor.*): full coverage of
// the index space, lane identification, imbalance tolerance (stealing), and
// exception propagation. SimFarm and the parallel model checker both sit on
// top of this, so these invariants are load-bearing for every parallel
// determinism guarantee in the repo.
#include "base/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "base/error.h"

namespace esl {
namespace {

TEST(Executor, RunsEveryIndexExactlyOnce) {
  for (const unsigned lanes : {1u, 2u, 4u, 8u}) {
    Executor ex(lanes);
    EXPECT_EQ(ex.lanes(), lanes);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    ex.parallelFor(kN, [&](std::size_t i, unsigned) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " lanes " << lanes;
  }
}

TEST(Executor, SingleLaneRunsInlineOnCaller) {
  Executor ex(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t count = 0;
  ex.parallelFor(64, [&](std::size_t, unsigned lane) {
    EXPECT_EQ(lane, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++count;  // safe: everything runs on this thread
  });
  EXPECT_EQ(count, 64u);
}

TEST(Executor, LaneIdsStayInRange) {
  Executor ex(4);
  std::atomic<unsigned> maxLane{0};
  ex.parallelFor(500, [&](std::size_t, unsigned lane) {
    unsigned seen = maxLane.load(std::memory_order_relaxed);
    while (lane > seen &&
           !maxLane.compare_exchange_weak(seen, lane, std::memory_order_relaxed)) {
    }
  });
  EXPECT_LT(maxLane.load(), 4u);
}

TEST(Executor, StealsFromImbalancedRanges) {
  // The front indices are much heavier than the rest; with static ranges and
  // no stealing this would serialize on lane 0. We can't observe the schedule
  // directly, but every index must still complete under the imbalance.
  Executor ex(4);
  std::vector<std::atomic<int>> hits(64);
  ex.parallelFor(64, [&](std::size_t i, unsigned) {
    if (i < 4) std::this_thread::sleep_for(std::chrono::milliseconds(20));
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(Executor, ReusableAcrossLoops) {
  Executor ex(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    ex.parallelFor(round + 1, [&](std::size_t i, unsigned) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    const auto n = static_cast<std::size_t>(round + 1);
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

TEST(Executor, EmptyLoopIsANoOp) {
  Executor ex(4);
  ex.parallelFor(0, [](std::size_t, unsigned) { FAIL() << "body must not run"; });
}

TEST(Executor, FirstExceptionPropagatesAndDrains) {
  Executor ex(4);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(
      ex.parallelFor(256,
                     [&](std::size_t i, unsigned) {
                       ran.fetch_add(1, std::memory_order_relaxed);
                       if (i == 17) throw EslError("boom at 17");
                     }),
      EslError);
  // Every index was drained (counted or skipped); the executor stays usable.
  std::atomic<std::size_t> after{0};
  ex.parallelFor(32, [&](std::size_t, unsigned) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 32u);
}

TEST(Executor, AutoLaneCountIsPositive) {
  Executor ex(0);
  EXPECT_GE(ex.lanes(), 1u);
  std::atomic<std::size_t> count{0};
  ex.parallelFor(10, [&](std::size_t, unsigned) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 10u);
}

// --- External task submission (the serve scheduler's entry point) ----------

TEST(Executor, SubmitFromManyForeignThreadsRunsEveryTask) {
  // The serve daemon submits session turns from connection-handler threads
  // that are not executor lanes; nothing may be lost or run twice. This is
  // also the TSan stress for the submit/steal paths.
  Executor ex(4);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 250;
  std::vector<std::atomic<int>> hits(kThreads * kPerThread);
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t slot = t * kPerThread + i;
        ex.submit([&hits, slot] {
          hits[slot].fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  ex.waitIdle();
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(Executor, SubmittedTasksMayResubmitThemselves) {
  // Serve turns chain: each quantum re-submits the next before returning, and
  // waitIdle() must not wake mid-chain.
  Executor ex(2);
  std::atomic<int> ticks{0};
  std::function<void()> chain = [&] {
    if (ticks.fetch_add(1, std::memory_order_relaxed) + 1 < 100)
      ex.submit(chain);
  };
  ex.submit(chain);
  ex.waitIdle();
  EXPECT_EQ(ticks.load(), 100);
}

TEST(Executor, SingleLaneSubmitRunsInlineOnTheCaller) {
  // With one lane there is no worker to hand off to: submit() executes the
  // task on the calling thread before returning. Serve relies on this being
  // transparent (results identical, just synchronous).
  Executor ex(1);
  const std::thread::id caller = std::this_thread::get_id();
  bool ran = false;
  ex.submit([&] {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran = true;
  });
  EXPECT_TRUE(ran);  // already done — no waitIdle needed
  ex.waitIdle();
}

TEST(Executor, SubmittedTaskExceptionSurfacesFromWaitIdle) {
  Executor ex(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    ex.submit([&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 7) throw EslError("submit boom");
    });
  }
  EXPECT_THROW(ex.waitIdle(), EslError);
  // The failure is consumed; the executor keeps working afterwards.
  ex.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  ex.waitIdle();
  EXPECT_EQ(ran.load(), 33);
}

TEST(Executor, SubmitAndParallelForInterleave) {
  // parallelFor (lane-indexed fan-out) and submit (external tasks) share the
  // lanes; running both concurrently must lose neither.
  Executor ex(4);
  std::atomic<std::size_t> submitted{0};
  std::atomic<std::size_t> swept{0};
  std::thread feeder([&] {
    for (int i = 0; i < 500; ++i)
      ex.submit([&] { submitted.fetch_add(1, std::memory_order_relaxed); });
  });
  for (int round = 0; round < 20; ++round) {
    ex.parallelFor(64, [&](std::size_t, unsigned) {
      swept.fetch_add(1, std::memory_order_relaxed);
    });
  }
  feeder.join();
  ex.waitIdle();
  EXPECT_EQ(submitted.load(), 500u);
  EXPECT_EQ(swept.load(), 20u * 64u);
}

}  // namespace
}  // namespace esl
