// Tests of the settle kernels and the parallel sweep runner.
//
// The event-driven kernel must be observationally identical to the reference
// sweep kernel: same settled signals every cycle, same statistics, same
// protocol-violation log, on every paper topology and on randomized pipelines.
// SimFarm must produce bit-identical merged results regardless of thread
// count.
#include <gtest/gtest.h>

#include "netlist/patterns.h"
#include "sim/farm.h"
#include "test_util.h"

namespace esl {
namespace {

using sim::SimFarm;
using sim::SimOptions;
using sim::Simulator;
using Kernel = SimContext::SettleKernel;

// ---------------------------------------------------------------------------
// Kernel equivalence on the paper topologies
// ---------------------------------------------------------------------------

struct RunSummary {
  std::vector<sim::ChannelStats> stats;
  std::vector<ChannelSignals> finalSignals;
  std::vector<std::string> violations;
};

bool operator==(const sim::ChannelStats& a, const sim::ChannelStats& b) {
  return a.fwdTransfers == b.fwdTransfers && a.kills == b.kills &&
         a.bwdTransfers == b.bwdTransfers;
}

template <typename BuildFn>
RunSummary runWith(BuildFn build, Kernel kernel, std::uint64_t cycles) {
  auto sys = build();
  Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = false,
                       .kernel = kernel});
  s.run(cycles);
  RunSummary out;
  for (const ChannelId ch : sys.nl.channelIds()) {
    out.stats.push_back(s.channelStats(ch));
    out.finalSignals.push_back(s.ctx().sig(ch));
  }
  out.violations = s.ctx().protocolViolations();
  return out;
}

template <typename BuildFn>
void expectKernelsAgree(BuildFn build, std::uint64_t cycles = 300) {
  const RunSummary sweep = runWith(build, Kernel::kSweep, cycles);
  const RunSummary event = runWith(build, Kernel::kEventDriven, cycles);
  ASSERT_EQ(sweep.stats.size(), event.stats.size());
  for (std::size_t i = 0; i < sweep.stats.size(); ++i) {
    EXPECT_TRUE(sweep.stats[i] == event.stats[i]) << "stats differ on channel " << i;
    EXPECT_EQ(sweep.finalSignals[i], event.finalSignals[i])
        << "final signals differ on channel " << i;
  }
  EXPECT_EQ(sweep.violations, event.violations);

  // And the per-cycle cross-check (both kernels from the same pre-settle
  // state, compared channel by channel) must hold throughout.
  auto sys = build();
  Simulator s(sys.nl, {.checkProtocol = false, .crossCheckKernels = true});
  EXPECT_NO_THROW(s.run(cycles));
}

TEST(SimKernel, Fig1VariantsAgree) {
  for (const auto variant :
       {patterns::Fig1Variant::kNonSpeculative, patterns::Fig1Variant::kBubble,
        patterns::Fig1Variant::kShannon, patterns::Fig1Variant::kSpeculative}) {
    expectKernelsAgree([variant] {
      return patterns::buildFig1(variant);
    });
  }
}

TEST(SimKernel, Fig1SchedulersAgree) {
  for (const auto sched :
       {patterns::Fig1Scheduler::kStatic0, patterns::Fig1Scheduler::kLastServed,
        patterns::Fig1Scheduler::kTwoBit, patterns::Fig1Scheduler::kOracle,
        patterns::Fig1Scheduler::kRoundRobin}) {
    expectKernelsAgree([sched] {
      patterns::Fig1Config cfg;
      cfg.scheduler = sched;
      cfg.takenPermille = 400;
      return patterns::buildFig1(patterns::Fig1Variant::kSpeculative, cfg);
    });
  }
}

TEST(SimKernel, Table1Agrees) {
  expectKernelsAgree([] { return patterns::buildTable1({0, 1, 1, 0, 0, 1}); }, 40);
}

TEST(SimKernel, VluVariantsAgree) {
  expectKernelsAgree([] { return patterns::buildStallingVlu(); });
  expectKernelsAgree([] { return patterns::buildSpeculativeVlu(); });
}

TEST(SimKernel, SecdedVariantsAgree) {
  expectKernelsAgree([] { return patterns::buildSecdedPipeline(); });
  expectKernelsAgree([] { return patterns::buildSecdedSpeculative(); });
}

// ---------------------------------------------------------------------------
// Randomized pipelines: both kernels, nondeterministic environments
// ---------------------------------------------------------------------------

/// Random linear pipeline with forks rejoined through an adder, stages drawn
/// from {EB, EB0, wire, fork+join}, and a throttled sink that also injects
/// anti-tokens. Topology and gates are a pure function of `seed`.
struct RandomPipeline {
  Netlist nl;
};

RandomPipeline buildRandomPipeline(std::uint64_t seed) {
  RandomPipeline sys;
  Rng rng(seed);
  const unsigned w = 8;
  Netlist& nl = sys.nl;

  auto& src = nl.make<TokenSource>(
      "src", w, TokenSource::counting(w, rng.below(100)),
      [seed](std::uint64_t c) { return hashChancePermille(c, 800, seed); });

  Node* tail = &src;
  unsigned tailPort = 0;
  const unsigned stages = 2 + static_cast<unsigned>(rng.below(5));
  for (unsigned i = 0; i < stages; ++i) {
    const std::uint64_t pick = rng.below(4);
    const std::string tag = std::to_string(i);
    if (pick == 0) {
      auto& eb = nl.make<ElasticBuffer>("eb" + tag, w);
      nl.connect(*tail, tailPort, eb, 0);
      tail = &eb;
      tailPort = 0;
    } else if (pick == 1) {
      auto& eb0 = nl.make<ElasticBuffer0>("eb0_" + tag, w);
      nl.connect(*tail, tailPort, eb0, 0);
      tail = &eb0;
      tailPort = 0;
    } else if (pick == 2) {
      auto& wire = makeWire(nl, "wire" + tag, w);
      nl.connect(*tail, tailPort, wire, 0);
      tail = &wire;
      tailPort = 0;
    } else {
      // Fork into two branches (one buffered) and rejoin through an adder.
      auto& fork = nl.make<ForkNode>("fork" + tag, w, 2);
      auto& eb = nl.make<ElasticBuffer>("forkEb" + tag, w);
      auto& join = makeBinary(nl, "join" + tag, w, w, w,
                              [](const BitVec& a, const BitVec& b) { return a + b; });
      nl.connect(*tail, tailPort, fork, 0);
      nl.connect(fork, 0, join, 0);
      nl.connect(fork, 1, eb, 0);
      nl.connect(eb, 0, join, 1);
      tail = &join;
      tailPort = 0;
    }
  }

  const bool wantAnti = rng.below(2) == 0;
  auto& sink = nl.make<TokenSink>(
      "sink", w, [seed](std::uint64_t c) { return hashChancePermille(c, 700, seed + 1); },
      wantAnti ? 2u : 0u,
      [seed](std::uint64_t c) { return hashChancePermille(c, 100, seed + 2); });
  nl.connect(*tail, tailPort, sink, 0);
  return sys;
}

TEST(SimKernel, RandomPipelinesAgreeUnderCrossCheck) {
  // The cross-check throws InternalError on the first per-channel mismatch,
  // so simply running is the assertion. Protocol logs are compared too.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto sys = buildRandomPipeline(seed);
    Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = false,
                         .seed = seed, .crossCheckKernels = true});
    ASSERT_NO_THROW(s.run(200));

    const RunSummary sweep =
        runWith([&] { return buildRandomPipeline(seed); }, Kernel::kSweep, 200);
    const RunSummary event =
        runWith([&] { return buildRandomPipeline(seed); }, Kernel::kEventDriven, 200);
    ASSERT_EQ(sweep.stats.size(), event.stats.size());
    for (std::size_t i = 0; i < sweep.stats.size(); ++i)
      ASSERT_TRUE(sweep.stats[i] == event.stats[i])
          << "seed " << seed << " stats differ on channel " << i;
    ASSERT_EQ(sweep.violations, event.violations) << "seed " << seed;
  }
}

TEST(SimKernel, NondetEnvironmentsAgreeSeedBySeed) {
  auto run = [](Kernel kernel, std::uint64_t seed) {
    Netlist nl;
    auto& src = nl.make<NondetSource>("src", 4);
    auto& eb = nl.make<ElasticBuffer>("eb", 4);
    auto& sink = nl.make<NondetSink>("sink", 4, 2, true);
    nl.connect(src, 0, eb, 0);
    nl.connect(eb, 0, sink, 0, "down");
    Simulator s(nl, {.seed = seed, .kernel = kernel});
    s.run(200);
    return s.channelStats(nl.findChannel("down")->id).fwdTransfers;
  };
  for (std::uint64_t seed = 1; seed <= 10; ++seed)
    EXPECT_EQ(run(Kernel::kSweep, seed), run(Kernel::kEventDriven, seed))
        << "seed " << seed;
}

// ---------------------------------------------------------------------------
// Combinational-cycle detection and rewiring interplay
// ---------------------------------------------------------------------------

/// Ill-formed node oscillating on its own output; the event kernel must
/// detect it via the eval budget exactly like the sweep does. (It keeps the
/// default kUnaudited purity, so the kernel re-checks it after every change.)
class OscillatorNode : public Node {
 public:
  explicit OscillatorNode(std::string name) : Node(std::move(name)) {
    declareOutput(1);
  }
  void evalComb(SimContext& ctx) override {
    // Deliberate contract violation: oscillates on its own output.
    Sig out = ctx.sig(output(0));
    const bool flipped = !out.vf();
    out.setVf(flipped);
    out.setData(BitVec(1, flipped ? 1 : 0));
    out.setSb(false);
  }
  std::string kindName() const override { return "oscillator"; }
};

/// Node with a deliberately WRONG EdgeActivity declaration: it claims its
/// clockEdge is event-triggered but actually counts every cycle. The
/// cross-check edge audit must catch the state change on the first quiet
/// cycle instead of letting the sparse edge silently skip it.
class LyingEdgeNode : public Node {
 public:
  explicit LyingEdgeNode(std::string name) : Node(std::move(name)) {
    declareOutput(1);
  }
  void evalComb(SimContext& ctx) override {
    Sig out = ctx.sig(output(0));
    out.setVf(false);  // never offers: its channel never carries an event
    out.setSb(false);
  }
  EvalPurity evalPurity() const override { return EvalPurity::kStateful; }
  EdgeActivity edgeActivity() const override { return EdgeActivity::kOnEvents; }
  void clockEdge(SimContext&) override { ++cycles_; }
  void packState(StateWriter& w) const override { w.writeU64(cycles_); }
  void unpackState(StateReader& r) override { cycles_ = r.readU64(); }
  std::string kindName() const override { return "lying-edge"; }

 private:
  std::uint64_t cycles_ = 0;
};

TEST(SimKernel, CrossCheckAuditsEdgeActivityDeclarations) {
  Netlist nl;
  auto& bad = nl.make<LyingEdgeNode>("bad");
  auto& sink = nl.make<TokenSink>("sink", 1);
  nl.connect(bad, 0, sink, 0);
  SimContext ctx(nl);
  ctx.setCrossCheck(true);
  ctx.settle();
  EXPECT_THROW(ctx.edge(), InternalError);
}

/// Node that reads the cycle counter in evalComb while declaring (via the
/// evalReadsPerCycleInputs default) that it does not. On a quiet cycle the
/// sparse settle seeding skips it, so its output goes stale — the cross-check
/// must surface that as a kernel disagreement.
class UndeclaredCycleReaderNode : public Node {
 public:
  explicit UndeclaredCycleReaderNode(std::string name) : Node(std::move(name)) {
    declareOutput(1);
  }
  void evalComb(SimContext& ctx) override {
    Sig out = ctx.sig(output(0));
    const bool offer = (ctx.cycle() / 4) % 2 == 1;  // illegal: undeclared read
    out.setVf(offer);
    if (offer) out.setData(BitVec(1, 1));
    out.setSb(false);
  }
  EvalPurity evalPurity() const override { return EvalPurity::kStateful; }
  EdgeActivity edgeActivity() const override { return EdgeActivity::kOnEvents; }
  std::string kindName() const override { return "cycle-reader"; }
};

TEST(SimKernel, CrossCheckAuditsUndeclaredPerCycleReads) {
  Netlist nl;
  auto& bad = nl.make<UndeclaredCycleReaderNode>("bad");
  // A sink that never accepts keeps every cycle event-free, so the sparse
  // seeding legitimately skips `bad` — until its output flips at cycle 4.
  auto& sink = nl.make<TokenSink>("sink", 1, [](std::uint64_t) { return false; });
  nl.connect(bad, 0, sink, 0);
  SimContext ctx(nl);
  ctx.setCrossCheck(true);
  EXPECT_THROW(
      {
        for (int i = 0; i < 10; ++i) ctx.step();
      },
      InternalError);
}

TEST(SimKernel, SparseEdgeMatchesFullEdgeOnGatedSources) {
  // A long pipeline with rare injection: most cycles most nodes are quiet,
  // so the event kernel's dirty-tracked edge skips them. Both kernels must
  // still deliver the identical transfer stream.
  auto build = [](SimContext::SettleKernel kernel) {
    Netlist nl;
    auto& src = nl.make<TokenSource>(
        "src", 8, TokenSource::counting(8),
        [](std::uint64_t c) { return c % 13 == 0; });
    Node* tail = &src;
    for (unsigned i = 0; i < 20; ++i) {
      auto& eb = nl.make<ElasticBuffer>("eb" + std::to_string(i), 8);
      nl.connect(*tail, 0, eb, 0);
      tail = &eb;
    }
    auto& sink = nl.make<TokenSink>("sink", 8);
    nl.connect(*tail, 0, sink, 0);
    sim::Simulator s(nl, {.checkProtocol = false, .kernel = kernel});
    s.run(300);
    return test::receivedValues(sink);
  };
  const auto sweep = build(Kernel::kSweep);
  const auto event = build(Kernel::kEventDriven);
  ASSERT_GT(sweep.size(), 10u);
  EXPECT_EQ(sweep, event);
}

TEST(SimKernel, BothKernelsDetectCombinationalCycles) {
  for (const Kernel kernel : {Kernel::kSweep, Kernel::kEventDriven}) {
    Netlist nl;
    auto& osc = nl.make<OscillatorNode>("osc");
    auto& sink = nl.make<TokenSink>("sink", 1);
    nl.connect(osc, 0, sink, 0);
    SimContext ctx(nl);
    ctx.setKernel(kernel);
    EXPECT_THROW(ctx.settle(), CombinationalCycleError);
  }
}

TEST(SimKernel, EventKernelSurvivesRewiring) {
  // Regression: the adjacency index and the retained-signal seeding must
  // notice netlist surgery between simulations (topologyVersion bump).
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8);
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, sink, 0);
  {
    sim::Simulator s(nl, {.kernel = Kernel::kEventDriven});
    s.run(5);
    EXPECT_EQ(sink.received(), 4u);  // one cycle of EB latency
  }
  nl.bypassNode(eb.id());
  nl.removeNode(eb.id());
  nl.validate();
  {
    sim::Simulator s(nl, {.kernel = Kernel::kEventDriven});
    s.run(5);
    EXPECT_EQ(test::receivedValues(sink), test::iota(5));  // latency gone
  }
}

TEST(SimKernel, ChannelAddedAfterConstructionGetsSignalSlots) {
  // Regression: a channel created after the context's last reset() (shell
  // surgery, insertOnChannel) must get signal storage before either kernel
  // touches it — the event kernel's shadow refresh used to read out of
  // bounds here.
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& sink = nl.make<TokenSink>("sink", 8);
  const ChannelId ch = nl.connect(src, 0, sink, 0);
  SimContext ctx(nl);
  ctx.setCrossCheck(true);  // exercise both kernels every settle
  ctx.settle();
  ctx.edge();

  auto& eb = nl.make<ElasticBuffer>("eb", 8);
  eb.reset();  // node joined after ctx.reset(); initialize its state
  nl.insertOnChannel(ch, eb);
  nl.validate();
  for (int i = 0; i < 5; ++i) {
    ASSERT_NO_THROW(ctx.settle());
    ctx.edge();
  }
  EXPECT_GT(sink.received(), 0u);
}

// ---------------------------------------------------------------------------
// SimFarm
// ---------------------------------------------------------------------------

SimFarm makeFig1Farm() {
  SimFarm farm(
      [](const SimFarm::Task& task, SimFarm::Instance& inst) {
        patterns::Fig1Config cfg;
        cfg.takenPermille = static_cast<unsigned>(task.config);
        auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative, cfg);
        inst.nl = std::move(sys.nl);
        inst.watch.emplace_back("loop", sys.loopChannel);
        SharedModule* shared = sys.shared;
        inst.harvest = [shared](Simulator&,
                                std::vector<std::pair<std::string, double>>& m) {
          m.emplace_back("demandCycles",
                         static_cast<double>(shared->demandCycles()));
        };
      },
      SimOptions{.checkProtocol = true, .throwOnViolation = false});
  farm.addSeedSweep(8, /*seed0=*/1, /*cycles=*/400, /*config=*/300);
  farm.addSeedSweep(8, /*seed0=*/100, /*cycles=*/400, /*config=*/700);
  return farm;
}

TEST(SimFarm, DeterministicAcrossThreadCounts) {
  auto ref = makeFig1Farm().run(1);
  for (const unsigned threads : {2u, 4u, 16u}) {
    auto got = makeFig1Farm().run(threads);
    ASSERT_EQ(ref.size(), got.size()) << threads << " threads";
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_TRUE(got[i].ok) << got[i].error;
      EXPECT_EQ(ref[i].task.seed, got[i].task.seed);
      EXPECT_EQ(ref[i].cycles, got[i].cycles);
      ASSERT_EQ(ref[i].channels.size(), got[i].channels.size());
      for (std::size_t c = 0; c < ref[i].channels.size(); ++c)
        EXPECT_TRUE(ref[i].channels[c].second == got[i].channels[c].second)
            << "task " << i << ", " << threads << " threads";
      EXPECT_EQ(ref[i].metrics, got[i].metrics);
    }
    const SimFarm::Merged a = SimFarm::merge(ref);
    const SimFarm::Merged b = SimFarm::merge(got);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.channels.at("loop").stats.fwdTransfers,
              b.channels.at("loop").stats.fwdTransfers);
    EXPECT_EQ(a.metricTotals.at("demandCycles"), b.metricTotals.at("demandCycles"));
  }
}

TEST(SimFarm, MergesByChannelLabel) {
  auto results = makeFig1Farm().run(4);
  const SimFarm::Merged m = SimFarm::merge(results);
  EXPECT_EQ(m.tasks, 16u);
  EXPECT_EQ(m.failures, 0u);
  EXPECT_EQ(m.totalCycles, 16u * 400u);
  ASSERT_EQ(m.channels.count("loop"), 1u);
  const auto& loop = m.channels.at("loop");
  EXPECT_EQ(loop.cycles, m.totalCycles);
  EXPECT_GT(loop.stats.fwdTransfers, 0u);
  EXPECT_GT(loop.throughput(), 0.3);
  EXPECT_LE(loop.throughput(), 1.0);
}

TEST(SimFarm, FailedTasksAreReportedNotThrown) {
  SimFarm farm([](const SimFarm::Task& task, SimFarm::Instance& inst) {
    if (task.config == 1) throw EslError("recipe exploded");
    auto sys = patterns::buildFig1(patterns::Fig1Variant::kBubble);
    inst.nl = std::move(sys.nl);
    inst.watch.emplace_back("loop", sys.loopChannel);
  });
  farm.add({.seed = 1, .cycles = 50, .config = 0});
  farm.add({.seed = 2, .cycles = 50, .config = 1});
  farm.add({.seed = 3, .cycles = 50, .config = 0});
  auto results = farm.run(2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("recipe exploded"), std::string::npos);
  EXPECT_TRUE(results[2].ok);
  const SimFarm::Merged m = SimFarm::merge(results);
  EXPECT_EQ(m.tasks, 3u);
  EXPECT_EQ(m.failures, 1u);
}

}  // namespace
}  // namespace esl
