// SignalBoard unit tests: slot layout, payload width boundaries, the wide
// spill table, snapshot/accessor equivalence with the legacy AoS layout, and
// the build-time channel-width audit.
#include <gtest/gtest.h>

#include "elastic/signal_board.h"
#include "netlist/synth.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace esl {
namespace {

/// source -> wire -> sink chain of the given payload width.
struct Chain {
  Netlist nl;
  ChannelId up = kNoChannel;
  ChannelId down = kNoChannel;
};

Chain buildChain(unsigned width) {
  Chain c;
  auto& src = c.nl.make<TokenSource>(
      "src", width, [width](std::uint64_t i) -> std::optional<BitVec> {
        // Pattern with bits above and below every word boundary.
        BitVec v(width);
        for (unsigned b = 0; b < width; b += 3) v.setBit(b, ((i + b) & 1) != 0);
        if (width > 0) v.setBit(width - 1, true);
        return v;
      });
  auto& wire = makeWire(c.nl, "wire", width);
  auto& sink = c.nl.make<TokenSink>("sink", width);
  c.up = c.nl.connect(src, 0, wire, 0);
  c.down = c.nl.connect(wire, 0, sink, 0);
  return c;
}

TEST(SignalBoard, PayloadWidthBoundaries) {
  // 1/63/64 live in the word arena; 65+ spill to the BitVec table. The full
  // value must round-trip through the accessors either way.
  for (const unsigned width : {1u, 63u, 64u, 65u, 80u, 144u, 200u}) {
    SCOPED_TRACE("width " + std::to_string(width));
    Chain c = buildChain(width);
    SimContext ctx(c.nl);
    ctx.settle();
    const ConstSig up = std::as_const(ctx).sig(c.up);
    ASSERT_TRUE(up.vf());
    const BitVec v = up.data();
    ASSERT_EQ(v.width(), width);
    EXPECT_TRUE(v.bit(width - 1));
    // The wire must have routed the identical payload downstream.
    EXPECT_EQ(std::as_const(ctx).sig(c.down).data(), v);
    // Low-64 fast path agrees with the materialized value.
    EXPECT_EQ(up.dataLow64(), v.width() <= 64 ? v.toUint64()
                                              : v.extractBits(0, 64));
  }
}

TEST(SignalBoard, SnapshotMatchesAccessors) {
  // The ChannelSignals conversion (legacy AoS view) and the field accessors
  // must describe the same signals — this is the packState-relevant
  // equivalence with the old per-channel struct layout.
  Chain c = buildChain(48);
  SimContext ctx(c.nl);
  for (int i = 0; i < 5; ++i) {
    ctx.settle();
    for (const ChannelId ch : c.nl.channelIds()) {
      const ConstSig s = std::as_const(ctx).sig(ch);
      const ChannelSignals snap = s;
      EXPECT_EQ(snap.vf, s.vf());
      EXPECT_EQ(snap.sf, s.sf());
      EXPECT_EQ(snap.vb, s.vb());
      EXPECT_EQ(snap.sb, s.sb());
      EXPECT_EQ(snap.data, s.data());
      EXPECT_EQ(killEvent(snap), killEvent(s));
      EXPECT_EQ(fwdTransfer(snap), fwdTransfer(s));
      EXPECT_EQ(bwdTransfer(snap), bwdTransfer(s));
      EXPECT_EQ(channelSymbol(snap), channelSymbol(s));
    }
    ctx.edge();
  }
}

TEST(SignalBoard, PackStateRoundTripIdentity) {
  // Simulate, snapshot, keep simulating, restore, resimulate: the packed
  // bytes after the replay must match bit for bit — the board's retained
  // signals may differ at restore time (packState excludes signals), so the
  // kernel must re-seed correctly after unpackState.
  synth::SynthConfig cfg;
  cfg.topology = synth::Topology::kRandomDag;
  cfg.targetNodes = 80;
  cfg.seed = 11;
  cfg.injectPeriod = 2;
  synth::SynthSystem sys = synth::build(cfg);
  sim::Simulator s(sys.nl, {.checkProtocol = false});
  s.run(50);
  const auto snap = s.ctx().packState();
  s.run(30);
  const auto later = s.ctx().packState();
  s.ctx().unpackState(snap);
  EXPECT_EQ(s.ctx().packState(), snap);
  // Cycle counters are excluded from packState, so a cycle-aligned replay
  // reproduces the later state exactly.
  s.run(30);
  EXPECT_EQ(s.ctx().packState(), later);
}

TEST(SignalBoard, DirectWritesVisibleThroughSnapshots) {
  // Tests and harnesses write signals from outside evalComb; the write must
  // land in the planes/arena and read back through every view.
  Chain c = buildChain(65);
  SimContext ctx(c.nl);
  Sig s = ctx.sig(c.up);
  BitVec v = BitVec::ones(65);
  s.setVf(true);
  s.setSf(true);
  s.setData(v);
  ctx.invalidateSignals();
  const ChannelSignals snap = std::as_const(ctx).sig(c.up);
  EXPECT_TRUE(snap.vf);
  EXPECT_TRUE(snap.sf);
  EXPECT_FALSE(snap.vb);
  EXPECT_EQ(snap.data, v);
}

TEST(SignalBoard, WidthAuditRejectsPostConnectEdits) {
  // The arena is sized from the channel widths at layout; a post-connect
  // width edit (channelMutable surgery) must be rejected, not silently
  // corrupt payload storage.
  Chain c = buildChain(16);
  c.nl.channelMutable(c.up).width = 32;
  EXPECT_THROW(SimContext ctx(c.nl), EslError);
}

TEST(SignalBoard, ZeroAndNarrowPayloadsShareTheArena) {
  // Many narrow channels pack one arena word each; verify independent values
  // (no aliasing between neighbouring slots).
  Netlist nl;
  std::vector<ChannelId> chs;
  for (unsigned i = 0; i < 70; ++i) {
    auto& src = nl.make<TokenSource>("s" + std::to_string(i), 8,
                                     TokenSource::counting(8, i));
    auto& sink = nl.make<TokenSink>("k" + std::to_string(i), 8);
    chs.push_back(nl.connect(src, 0, sink, 0));
  }
  SimContext ctx(nl);
  ctx.settle();
  for (unsigned i = 0; i < chs.size(); ++i) {
    EXPECT_EQ(std::as_const(ctx).sig(chs[i]).dataLow64(), i) << "channel " << i;
  }
}

}  // namespace
}  // namespace esl
