#include <gtest/gtest.h>

#include "netlist/patterns.h"
#include "perf/area.h"
#include "perf/throughput.h"
#include "perf/timing.h"
#include "test_util.h"

namespace esl {
namespace {

TEST(Timing, PipelineCycleTimeIsLaunchPlusLogic) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8);
  auto& f = makeUnary(nl, "F", 8, 8, [](const BitVec& x) { return x; },
                      logic::Cost{8.0, 10.0});
  auto& eb2 = nl.make<ElasticBuffer>("eb2", 8);
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, f, 0);
  nl.connect(f, 0, eb2, 0);
  nl.connect(eb2, 0, sink, 0);

  const auto report = perf::analyzeTiming(nl);
  // EB clk->q (1) + F (8) dominates.
  EXPECT_DOUBLE_EQ(report.cycleTime, 9.0);
}

TEST(Timing, Eb0ChainsAccumulateBackwardDelay) {
  // §4.3: "a care must be taken not to chain too many of such controllers".
  auto build = [](unsigned chainLen) {
    Netlist nl;
    auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
    Node* prev = &src;
    for (unsigned i = 0; i < chainLen; ++i) {
      auto& eb0 = nl.make<ElasticBuffer0>("eb0_" + std::to_string(i), 8);
      nl.connect(*prev, prev == &src ? 0 : 0, eb0, 0);
      prev = &eb0;
    }
    auto& sink = nl.make<TokenSink>("sink", 8);
    nl.connect(*prev, 0, sink, 0);
    return perf::analyzeTiming(nl).cycleTime;
  };
  const double t1 = build(1);
  const double t3 = build(3);
  const double t6 = build(6);
  EXPECT_LT(t1, t3);
  EXPECT_LT(t3, t6);
  EXPECT_NEAR(t6 - t3, 3.0, 1e-9);  // one gate per chained EB0 controller
}

TEST(Timing, Fig1VariantOrdering) {
  using patterns::Fig1Variant;
  const double ta =
      perf::analyzeTiming(patterns::buildFig1(Fig1Variant::kNonSpeculative).nl).cycleTime;
  const double tb =
      perf::analyzeTiming(patterns::buildFig1(Fig1Variant::kBubble).nl).cycleTime;
  const double tc =
      perf::analyzeTiming(patterns::buildFig1(Fig1Variant::kShannon).nl).cycleTime;
  const double td =
      perf::analyzeTiming(patterns::buildFig1(Fig1Variant::kSpeculative).nl).cycleTime;

  // (a) has G + mux + F in series; (b) breaks that path; (c)/(d) run F and G
  // in parallel. Shannon is fastest; speculation adds only the shared input
  // mux on the F path.
  EXPECT_GT(ta, tc);
  EXPECT_GT(ta, td);
  EXPECT_LT(tb, ta);
  EXPECT_LE(tc, td);
  EXPECT_NEAR(td - tc, 2.0, 2.1);  // input-mux overhead is small
}

TEST(Timing, CombinationalLoopDetected) {
  Netlist nl;
  auto& a = makeUnary(nl, "A", 8, 8, [](const BitVec& x) { return x; });
  auto& b = makeUnary(nl, "B", 8, 8, [](const BitVec& x) { return x; });
  nl.connect(a, 0, b, 0);
  nl.connect(b, 0, a, 0);
  EXPECT_THROW(perf::analyzeTiming(nl), CombinationalCycleError);
}

TEST(Timing, CriticalPathIsDescribable) {
  auto sys = patterns::buildFig1(patterns::Fig1Variant::kNonSpeculative);
  const auto report = perf::analyzeTiming(sys.nl);
  const std::string desc = perf::describeCriticalPath(sys.nl, report);
  EXPECT_NE(desc.find("->"), std::string::npos);
  EXPECT_FALSE(report.criticalPath.empty());
}

TEST(Throughput, LoopBoundMatchesTokensOverLatency) {
  const auto a = patterns::buildFig1(patterns::Fig1Variant::kNonSpeculative);
  const auto b = patterns::buildFig1(patterns::Fig1Variant::kBubble);
  const auto ba = perf::throughputBound(a.nl);
  const auto bb = perf::throughputBound(b.nl);
  EXPECT_TRUE(ba.hasCycles);
  EXPECT_NEAR(ba.bound, 1.0, 1e-6);
  EXPECT_TRUE(bb.hasCycles);
  EXPECT_NEAR(bb.bound, 0.5, 1e-6);
  EXPECT_FALSE(ba.zeroLatencyCycle);
}

TEST(Throughput, OpenPipelineHasNoCycles) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& eb = nl.make<ElasticBuffer>("eb", 8);
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(src, 0, eb, 0);
  nl.connect(eb, 0, sink, 0);
  const auto bound = perf::throughputBound(nl);
  EXPECT_FALSE(bound.hasCycles);
  EXPECT_DOUBLE_EQ(bound.bound, 1.0);
}

TEST(Throughput, ZeroLatencyCycleFlagged) {
  Netlist nl;
  auto& a = makeUnary(nl, "A", 8, 8, [](const BitVec& x) { return x; });
  auto& b = makeUnary(nl, "B", 8, 8, [](const BitVec& x) { return x; });
  nl.connect(a, 0, b, 0);
  nl.connect(b, 0, a, 0);
  const auto bound = perf::throughputBound(nl);
  EXPECT_TRUE(bound.zeroLatencyCycle);
}

TEST(Throughput, BoundMatchesSimulatedThroughputOnLoops) {
  // With perfect prediction (oracle) the speculative loop achieves the bound.
  patterns::Fig1Config cfg;
  cfg.scheduler = patterns::Fig1Scheduler::kOracle;
  auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative, cfg);
  const auto bound = perf::throughputBound(sys.nl);
  sim::Simulator s(sys.nl);
  s.run(300);
  EXPECT_NEAR(s.throughput(sys.loopChannel), bound.bound, 0.02);
}

TEST(Throughput, EffectiveCycleTime) {
  EXPECT_DOUBLE_EQ(perf::effectiveCycleTime(10.0, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(perf::effectiveCycleTime(10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(perf::effectiveCycleTime(10.0, 0.0), 0.0);
}

TEST(Area, SharingReducesArea) {
  // Fig. 1(c) duplicates F; Fig. 1(d) shares one copy: (d) must be smaller.
  const auto shannon = patterns::buildFig1(patterns::Fig1Variant::kShannon);
  const auto spec = patterns::buildFig1(patterns::Fig1Variant::kSpeculative);
  const double areaC = perf::areaReport(shannon.nl).total;
  const double areaD = perf::areaReport(spec.nl).total;
  EXPECT_LT(areaD, areaC);
}

TEST(Area, ReportBreaksDownByKind) {
  const auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative);
  const auto report = perf::areaReport(sys.nl);
  EXPECT_GT(report.total, 0.0);
  EXPECT_TRUE(report.byKind.count("eb"));
  EXPECT_TRUE(report.byKind.count("shared"));
  const std::string table = perf::renderAreaReport(report);
  EXPECT_NE(table.find("total"), std::string::npos);
}

}  // namespace
}  // namespace esl
