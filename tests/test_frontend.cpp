// Tests for the textual .esl netlist IR (src/frontend + src/elastic/registry):
//  * print -> parse -> print fixpoint for every paper design and for seeded
//    synth configs across all four families (shrink-on-failure);
//  * parsed-vs-built behavioural identity: bit-identical packState traces
//    every cycle plus identical sink transfer streams;
//  * the committed golden examples/designs/*.esl files stay in sync with the
//    C++ builders;
//  * ModelChecker exploration from a parsed NetlistSpec matches the borrowed
//    C++ netlist fingerprint for 1 and 2 workers;
//  * the Netlist name index (findNode/findChannel, renameNode) and parser
//    error reporting.
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "diff_kernels_util.h"
#include "frontend/esl_format.h"
#include "netlist/patterns.h"
#include "netlist/stdlib.h"
#include "netlist/synth.h"
#include "sim/farm.h"
#include "sim/simulator.h"
#include "verify/checker.h"

namespace esl {
namespace {

using frontend::checkRoundTrip;
using frontend::parseEsl;
using frontend::printEsl;

std::string goldenPath(const std::string& design) {
  return std::string(ESL_SOURCE_DIR) + "/examples/designs/" + design + ".esl";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Runs `a` and `b` in lockstep and returns the first divergence: packed
/// netlist state is compared after EVERY cycle, sink transfer streams at the
/// end — the same oracle the kernel differential fuzz uses.
std::optional<std::string> lockstepDiff(Netlist& a, Netlist& b,
                                        std::uint64_t cycles) {
  sim::SimOptions opts;
  opts.checkProtocol = false;
  sim::Simulator sa(a, opts);
  sim::Simulator sb(b, opts);
  for (std::uint64_t c = 0; c < cycles; ++c) {
    sa.step();
    sb.step();
    if (sa.ctx().packState() != sb.ctx().packState())
      return "packed state diverged at cycle " + std::to_string(c);
  }
  const auto sinksOf = [](Netlist& nl) {
    std::vector<const TokenSink*> sinks;
    for (const NodeId id : nl.nodeIds())
      if (const auto* sink = dynamic_cast<const TokenSink*>(&nl.node(id)))
        sinks.push_back(sink);
    return sinks;
  };
  const auto sa_sinks = sinksOf(a);
  const auto sb_sinks = sinksOf(b);
  if (sa_sinks.size() != sb_sinks.size()) return "sink sets differ";
  for (std::size_t s = 0; s < sa_sinks.size(); ++s) {
    const auto& ta = sa_sinks[s]->transfers();
    const auto& tb = sb_sinks[s]->transfers();
    if (ta.size() != tb.size())
      return "sink '" + sa_sinks[s]->name() + "' transfer counts differ (" +
             std::to_string(ta.size()) + " vs " + std::to_string(tb.size()) + ")";
    for (std::size_t i = 0; i < ta.size(); ++i)
      if (ta[i].cycle != tb[i].cycle || !(ta[i].data == tb[i].data))
        return "sink '" + sa_sinks[s]->name() + "' transfer " + std::to_string(i) +
               " differs";
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Paper designs
// ---------------------------------------------------------------------------

TEST(EslFormat, EveryPaperDesignRoundTripsAndPrintsAFixpoint) {
  for (const std::string& name : patterns::designNames()) {
    SCOPED_TRACE(name);
    EXPECT_NO_THROW(checkRoundTrip(patterns::designSpec(name)));
  }
}

TEST(EslFormat, ParsedPaperDesignsMatchBuildersBitForBit) {
  for (const std::string& name : patterns::designNames()) {
    SCOPED_TRACE(name);
    Netlist built = patterns::buildDesign(name);
    Netlist parsed =
        parseEsl(printEsl(patterns::designSpec(name)), name + ".esl").build();
    const auto diff = lockstepDiff(built, parsed, 300);
    EXPECT_FALSE(diff.has_value()) << *diff;
  }
}

TEST(EslFormat, CommittedGoldenFilesMatchTheBuilders) {
  // Regenerate with: ./build/esl <design> --save examples/designs/<design>.esl
  for (const std::string& name : patterns::designNames()) {
    SCOPED_TRACE(name);
    EXPECT_EQ(slurp(goldenPath(name)), printEsl(patterns::designSpec(name)))
        << "golden file drifted from the C++ builder; regenerate it";
  }
}

TEST(EslFormat, GoldenFilesSimulateIdenticallyToBuilders) {
  for (const std::string& name : patterns::designNames()) {
    SCOPED_TRACE(name);
    Netlist built = patterns::buildDesign(name);
    Netlist parsed = frontend::buildEslFile(goldenPath(name));
    const auto diff = lockstepDiff(built, parsed, 300);
    EXPECT_FALSE(diff.has_value()) << *diff;
  }
}

// ---------------------------------------------------------------------------
// Property test over synth configs (print/parse fixpoint + sim equivalence)
// ---------------------------------------------------------------------------

std::optional<std::string> specTripDiff(const synth::SynthConfig& cfg,
                                        std::uint64_t cycles) {
  try {
    const NetlistSpec spec = synth::spec(cfg);
    const std::string text = checkRoundTrip(spec);
    Netlist parsed = parseEsl(text, "<synth>").build();
    Netlist built = synth::buildNetlist(cfg);
    return lockstepDiff(built, parsed, cycles);
  } catch (const EslError& e) {
    return std::string("exception: ") + e.what();
  }
}

TEST(EslFormat, SynthFamiliesRoundTripAndSimulateIdentically) {
  std::vector<synth::SynthConfig> configs;
  for (const auto topology :
       {synth::Topology::kPipeline, synth::Topology::kForkJoin,
        synth::Topology::kSpecLadder, synth::Topology::kRandomDag}) {
    for (const std::uint64_t seed : {1ull, 42ull}) {
      synth::SynthConfig cfg;
      cfg.topology = topology;
      cfg.targetNodes = 40;
      cfg.width = 16;
      cfg.seed = seed;
      configs.push_back(cfg);

      cfg.injectPeriod = 5;
      cfg.bufferCapacity = 3;
      cfg.width = 8;
      configs.push_back(cfg);
    }
  }
  {  // variable-latency stages exercise the stalling-vlu kind
    synth::SynthConfig cfg;
    cfg.topology = synth::Topology::kPipeline;
    cfg.targetNodes = 30;
    cfg.vluPermille = 400;
    cfg.seed = 9;
    configs.push_back(cfg);
  }

  for (synth::SynthConfig cfg : configs) {
    std::uint64_t cycles = 200;
    auto diff = specTripDiff(cfg, cycles);
    if (diff) {
      // Shrink-on-failure (shared with the kernel differential fuzz): report
      // the smallest config that still fails.
      test::shrinkSynthConfig(cfg, cycles,
                              [](const synth::SynthConfig& candidate,
                                 std::uint64_t candidateCycles) {
                                return specTripDiff(candidate, candidateCycles)
                                    .has_value();
                              });
      FAIL() << "esl round-trip divergence on " << synth::describe(cfg) << " ("
             << cycles << " cycles): " << *specTripDiff(cfg, cycles);
    }
  }
}

TEST(EslFormat, NondetSynthSpecsRoundTrip) {
  for (const auto topology :
       {synth::Topology::kPipeline, synth::Topology::kSpecLadder}) {
    synth::SynthConfig cfg;
    cfg.topology = topology;
    cfg.targetNodes = 8;
    cfg.width = 1;
    cfg.nondetEnv = true;
    SCOPED_TRACE(synth::describe(cfg));
    EXPECT_NO_THROW(checkRoundTrip(synth::spec(cfg)));
  }
}

// ---------------------------------------------------------------------------
// ModelChecker from a parsed NetlistSpec
// ---------------------------------------------------------------------------

TEST(EslFormat, CheckerExploresParsedSpecIdenticallyToBorrowedNetlist) {
  synth::SynthConfig cfg;
  cfg.topology = synth::Topology::kPipeline;
  cfg.targetNodes = 8;
  cfg.width = 1;
  cfg.seed = 3;
  cfg.nondetEnv = true;

  Netlist reference = synth::buildNetlist(cfg);
  verify::ModelChecker serial(reference);
  serial.explore();

  const NetlistSpec parsed =
      parseEsl(printEsl(synth::spec(cfg)), "<checker>");
  for (const unsigned workers : {1u, 2u}) {
    verify::CheckerOptions opts;
    opts.workers = workers;
    verify::ModelChecker fromSpec(parsed, opts);
    fromSpec.explore();
    EXPECT_EQ(serial.graphFingerprint(), fromSpec.graphFingerprint())
        << "workers=" << workers;
  }
}

TEST(EslFormat, SuiteFarmRunsSpecJobs) {
  synth::SynthConfig cfg;
  cfg.topology = synth::Topology::kSpecLadder;
  cfg.targetNodes = 8;
  cfg.width = 1;
  cfg.nondetEnv = true;

  verify::SuiteJob job;
  job.name = "spec-ladder";
  job.spec = synth::spec(cfg);
  job.options.maxStates = 200000;
  const auto results = verify::runSuiteFarm({job}, 2);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok()) << results[0].error << " "
                               << results[0].report.firstViolation();
}

TEST(EslFormat, SimFarmSpecRecipeMatchesBuilderRecipe) {
  synth::SynthConfig cfg;
  cfg.topology = synth::Topology::kPipeline;
  cfg.targetNodes = 20;
  cfg.seed = 5;

  const NetlistSpec spec = synth::spec(cfg);
  const synth::SynthSystem sys = synth::build(cfg);
  const std::string watch = sys.nl.channel(sys.outChannel).name;

  sim::SimOptions base;
  base.checkProtocol = false;
  sim::SimFarm farm(sim::SimFarm::specRecipe(spec, {watch}), base);
  farm.addSeedSweep(4, 1, 500);
  const auto results = farm.run(2);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.channels.size(), 1u);
    EXPECT_EQ(r.channels[0].first, watch);
    EXPECT_GT(r.channels[0].second.fwdTransfers, 0u);
  }
}

// ---------------------------------------------------------------------------
// Parser errors + format details
// ---------------------------------------------------------------------------

TEST(EslFormat, ParserReportsLineNumbers) {
  EXPECT_THROW(parseEsl("node eb x width=8;", "f.esl"), ParseError);  // no header
  try {
    parseEsl("esl 1;\nnode eb pc width=8\n", "f.esl");  // missing ';'
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("f.esl:2"), std::string::npos) << e.what();
  }
  EXPECT_THROW(parseEsl("esl 2;\n", "f.esl"), ParseError);           // bad version
  EXPECT_THROW(parseEsl("esl 1;\nfrobnicate;\n", "f.esl"), ParseError);
  EXPECT_THROW(parseEsl("esl 1;\nchannel a.b -> c.in0;\n", "f.esl"), ParseError);
}

TEST(EslFormat, BuildRejectsUnknownKindsAttributesAndWiring) {
  stdlib::ensureRegistered();
  const auto build = [](const std::string& text) {
    return parseEsl(text, "<t>").build();
  };
  // Unknown kind.
  EXPECT_THROW(build("esl 1;\nnode warp x width=8;\n"), NetlistError);
  // Unknown (misspelled) attribute is rejected, not ignored.
  EXPECT_THROW(build("esl 1;\nnode eb x width=8 capacty=4;\n"), NetlistError);
  // Payloads wider than the channel are rejected in decimal and hex alike.
  EXPECT_THROW(build("esl 1;\nnode eb x width=8 init=256;\n"), NetlistError);
  EXPECT_THROW(build("esl 1;\nnode eb x width=8 init=0x100;\n"), NetlistError);
  // Unknown fn.
  EXPECT_THROW(
      build("esl 1;\nnode func f in=8 out=8 fn=no-such-fn;\n"), NetlistError);
  // Duplicate node name.
  EXPECT_THROW(build("esl 1;\nnode eb x width=8;\nnode eb x width=8;\n"),
               NetlistError);
  // Unknown endpoint node.
  EXPECT_THROW(build("esl 1;\nnode eb x width=8;\nchannel x.out0 -> y.in0;\n"),
               NetlistError);
  // Unbound ports fail validate() (which reports through the base EslError).
  EXPECT_THROW(build("esl 1;\nnode eb x width=8;\n"), EslError);
}

TEST(EslFormat, AttributesSurviveVerbatimIncludingHex) {
  // The fixpoint holds for non-canonical spellings too: attributes are
  // preserved verbatim, not re-serialized.
  const std::string text =
      "esl 1;\n"
      "node source s width=8 gen=counting gen.base=0x10;\n"
      "node eb x width=8 cap=0x4;\n"
      "node sink k width=8;\n"
      "channel s.out0 -> x.in0;\n"
      "channel x.out0 -> k.in0 name=out;\n";
  const NetlistSpec spec = parseEsl(text, "<t>");
  EXPECT_EQ(printEsl(parseEsl(printEsl(spec), "<t2>")), printEsl(spec));
  Netlist nl = spec.build();
  EXPECT_EQ(static_cast<const ElasticBuffer&>(*nl.findNode("x")).capacity(), 4u);
}

// ---------------------------------------------------------------------------
// Netlist name index
// ---------------------------------------------------------------------------

TEST(EslFormat, FromNetlistRejectsUnrepresentableChannelNames) {
  // A name the format cannot print must fail at save time, not at reload.
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& sink = nl.make<TokenSink>("sink", 8);
  nl.connect(src, 0, sink, 0, "my chan");
  EXPECT_THROW(NetlistSpec::fromNetlist(nl), NetlistError);
}

TEST(NetlistNameIndex, ConstLookupAndRename) {
  Netlist nl;
  auto& src = nl.make<TokenSource>("src", 8, TokenSource::counting(8));
  auto& sink = nl.make<TokenSink>("sink", 8);
  const ChannelId ch = nl.connect(src, 0, sink, 0, "wire");

  const Netlist& cnl = nl;
  ASSERT_NE(cnl.findNode("src"), nullptr);
  EXPECT_EQ(cnl.findNode("src")->id(), src.id());
  EXPECT_EQ(cnl.findNode("nope"), nullptr);
  ASSERT_NE(cnl.findChannel("wire"), nullptr);
  EXPECT_EQ(cnl.findChannel("wire")->id, ch);

  nl.renameNode(src.id(), "origin");
  EXPECT_EQ(nl.findNode("src"), nullptr);
  ASSERT_NE(nl.findNode("origin"), nullptr);
  EXPECT_EQ(nl.findNode("origin")->id(), src.id());

  // Structural mutation keeps the index coherent.
  nl.disconnect(ch);
  EXPECT_EQ(nl.findChannel("wire"), nullptr);
}

TEST(NetlistNameIndex, DuplicateNamesKeepFirstInsertionWins) {
  Netlist nl;
  auto& a = nl.make<TokenSink>("dup", 8);
  nl.make<TokenSink>("dup", 8);
  EXPECT_EQ(nl.findNode("dup")->id(), a.id());
}

}  // namespace
}  // namespace esl
