#include "base/bitvec.h"

#include <gtest/gtest.h>

#include "base/rng.h"

namespace esl {
namespace {

TEST(BitVec, DefaultIsZeroWidth) {
  BitVec v;
  EXPECT_EQ(v.width(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.isZero());
  EXPECT_EQ(v.toUint64(), 0u);
}

TEST(BitVec, ConstructFromValue) {
  BitVec v(8, 0xAB);
  EXPECT_EQ(v.width(), 8u);
  EXPECT_EQ(v.toUint64(), 0xABu);
  EXPECT_FALSE(v.isZero());
}

TEST(BitVec, ValueIsMaskedToWidth) {
  BitVec v(4, 0xFF);
  EXPECT_EQ(v.toUint64(), 0xFu);
}

TEST(BitVec, BitAccess) {
  BitVec v(8, 0b10100101);
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(2));
  EXPECT_TRUE(v.bit(7));
  v.setBit(1, true);
  EXPECT_EQ(v.toUint64(), 0b10100111u);
  v.setBit(7, false);
  EXPECT_EQ(v.toUint64(), 0b00100111u);
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(8);
  EXPECT_THROW(v.bit(8), EslError);
  EXPECT_THROW(v.setBit(100, true), EslError);
  EXPECT_THROW((void)(v + BitVec(9)), EslError);
}

TEST(BitVec, FromBinary) {
  BitVec v = BitVec::fromBinary("1011");
  EXPECT_EQ(v.width(), 4u);
  EXPECT_EQ(v.toUint64(), 11u);
  EXPECT_THROW(BitVec::fromBinary("10x1"), EslError);
}

TEST(BitVec, OnesAndOneHot) {
  EXPECT_EQ(BitVec::ones(6).toUint64(), 63u);
  EXPECT_EQ(BitVec::oneHot(8, 3).toUint64(), 8u);
  EXPECT_EQ(BitVec::ones(70).popcount(), 70u);
}

TEST(BitVec, WideValues) {
  BitVec v(72);
  v.setBit(71, true);
  v.setBit(0, true);
  EXPECT_EQ(v.popcount(), 2u);
  EXPECT_TRUE(v.bit(71));
  EXPECT_EQ(v.slice(64, 8).toUint64(), 0x80u);
}

TEST(BitVec, Arithmetic64BitBoundary) {
  // Carry must propagate across the word boundary.
  BitVec a = BitVec::ones(96);
  BitVec one(96, 1);
  BitVec sum = a + one;
  EXPECT_TRUE(sum.isZero());
  BitVec back = sum - one;
  EXPECT_EQ(back, a);
}

TEST(BitVec, AddMatchesUint64) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next(), b = rng.next();
    BitVec va(64, a), vb(64, b);
    EXPECT_EQ((va + vb).toUint64(), a + b);
    EXPECT_EQ((va - vb).toUint64(), a - b);
  }
}

TEST(BitVec, BitwiseOps) {
  BitVec a(8, 0b11001100), b(8, 0b10101010);
  EXPECT_EQ((a & b).toUint64(), 0b10001000u);
  EXPECT_EQ((a | b).toUint64(), 0b11101110u);
  EXPECT_EQ((a ^ b).toUint64(), 0b01100110u);
  EXPECT_EQ((~a).toUint64(), 0b00110011u);
}

TEST(BitVec, Shifts) {
  BitVec a(8, 0b00001111);
  EXPECT_EQ((a << 2).toUint64(), 0b00111100u);
  EXPECT_EQ((a >> 2).toUint64(), 0b00000011u);
  EXPECT_EQ((a << 8).toUint64(), 0u);
  EXPECT_EQ((a >> 9).toUint64(), 0u);
}

TEST(BitVec, SliceConcatRoundTrip) {
  Rng rng(13);
  BitVec v = rng.bits(72);
  BitVec lo = v.slice(0, 30);
  BitVec hi = v.slice(30, 42);
  EXPECT_EQ(lo.concat(hi), v);
}

TEST(BitVec, Resized) {
  BitVec v(8, 0xAB);
  EXPECT_EQ(v.resized(16).toUint64(), 0xABu);
  EXPECT_EQ(v.resized(4).toUint64(), 0xBu);
  EXPECT_EQ(v.resized(16).width(), 16u);
}

TEST(BitVec, Compare) {
  BitVec a(72), b(72);
  a.setBit(71, true);
  b.setBit(0, true);
  EXPECT_TRUE(b < a);
  EXPECT_TRUE(a > b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a);
  // Different widths are never equal.
  EXPECT_NE(BitVec(8, 1), BitVec(9, 1));
}

TEST(BitVec, ParityAndPopcount) {
  EXPECT_FALSE(BitVec(8, 0).parity());
  EXPECT_TRUE(BitVec(8, 1).parity());
  EXPECT_FALSE(BitVec(8, 3).parity());
  EXPECT_EQ(BitVec(8, 0xFF).popcount(), 8u);
}

TEST(BitVec, Strings) {
  BitVec v(5, 0b01011);
  EXPECT_EQ(v.toBinary(), "01011");
  EXPECT_EQ(v.toHex(), "0x0b");
  EXPECT_EQ(BitVec(8, 0x2B).toHex(), "0x2b");
}

TEST(BitVec, HashDiffersForDifferentValues) {
  BitVec a(64, 1), b(64, 2);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), BitVec(64, 1).hash());
}

TEST(BitVec, ZeroWidthNonzeroThrows) { EXPECT_THROW(BitVec(0, 5), EslError); }

class BitVecWidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitVecWidthTest, ShiftAddConsistency) {
  const unsigned w = GetParam();
  Rng rng(w * 7919 + 3);
  for (int i = 0; i < 20; ++i) {
    BitVec v = rng.bits(w);
    // v << 1 == v + v (mod 2^w)
    EXPECT_EQ(v << 1, v + v) << "width " << w;
    // ~v + v == all ones
    EXPECT_EQ(~v + v, BitVec::ones(w)) << "width " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVecWidthTest,
                         ::testing::Values(1u, 3u, 8u, 31u, 32u, 33u, 63u, 64u, 65u,
                                           72u, 127u, 128u, 200u));

}  // namespace
}  // namespace esl
