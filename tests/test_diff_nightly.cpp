// Nightly differential fuzz campaign: hundreds of random SynthConfigs ×
// traffic patterns, three-way sweep vs event vs compiled-bytecode lockstep,
// packed-state equality every cycle (oracle + shrink-on-failure in
// diff_kernels_util.h; mismatches name the diverging pair).
//
// Runs under the `nightly` CTest label: PR CI excludes it (-LE nightly) to
// stay fast; the scheduled nightly workflow and a plain local `ctest` run it.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "diff_kernels_util.h"

namespace esl {
namespace {

using synth::SynthConfig;
using synth::Topology;

constexpr Topology kFamilies[] = {Topology::kPipeline, Topology::kForkJoin,
                                  Topology::kSpecLadder, Topology::kRandomDag};

/// Draws a randomized config; every knob the generator exposes is in play.
SynthConfig randomConfig(Rng& rng) {
  SynthConfig cfg;
  cfg.topology = kFamilies[rng.below(4)];
  cfg.targetNodes = 12 + rng.below(120);
  cfg.width = 1 + static_cast<unsigned>(rng.below(24));
  cfg.bufferCapacity = 2 + static_cast<unsigned>(rng.below(3));
  cfg.forkArity = 2 + static_cast<unsigned>(rng.below(3));
  cfg.seed = rng.next();
  cfg.injectPeriod = 1 + static_cast<unsigned>(rng.below(16));
  if (cfg.topology == Topology::kPipeline && rng.chancePermille(400))
    cfg.vluPermille = static_cast<unsigned>(rng.below(700));
  return cfg;
}

class DiffKernelsNightly : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiffKernelsNightly, RandomConfigCampaignAgreesEveryCycle) {
  // Each shard runs 40 random configs; 8 shards = 320 configs per night.
  Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
  for (int trial = 0; trial < 40; ++trial) {
    const SynthConfig cfg = randomConfig(rng);
    const std::uint64_t cycles = 120 + rng.below(180);
    const auto failure = test::diffKernelsShrinking(cfg, cycles);
    ASSERT_FALSE(failure.has_value()) << failure->describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, DiffKernelsNightly,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace esl
