// Property-based differential test: sweep kernel, event-driven kernel and
// compiled bytecode VM co-simulated over seeded synthetic netlists, asserting
// identical packed state every cycle (see diff_kernels_util.h for the
// three-way oracle and the shrink-on-failure reporting, which names the
// diverging pair). This is the PR-fast slice — a spread of
// seeds, topologies and traffic patterns per family; the multi-hundred-config
// campaign lives in test_diff_nightly.cpp behind the `nightly` CTest label.
#include <gtest/gtest.h>

#include "diff_kernels_util.h"

namespace esl {
namespace {

using synth::SynthConfig;
using synth::Topology;

class DiffKernelsFast : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiffKernelsFast, AllFamiliesAgreeEveryCycle) {
  const std::uint64_t seed = GetParam();
  for (const Topology topology :
       {Topology::kPipeline, Topology::kForkJoin, Topology::kSpecLadder,
        Topology::kRandomDag}) {
    for (const unsigned inject : {1u, 7u}) {
      SynthConfig cfg;
      cfg.topology = topology;
      cfg.targetNodes = 24 + 8 * (seed % 5);
      cfg.width = 1 + static_cast<unsigned>((seed * 7) % 16);
      cfg.bufferCapacity = 2 + static_cast<unsigned>(seed % 3);
      cfg.seed = seed;
      cfg.injectPeriod = inject;
      const auto failure = test::diffKernelsShrinking(cfg, 160);
      ASSERT_FALSE(failure.has_value()) << failure->describe();
    }
  }
}

TEST_P(DiffKernelsFast, VluPipelinesAgreeEveryCycle) {
  const std::uint64_t seed = GetParam();
  SynthConfig cfg;
  cfg.topology = Topology::kPipeline;
  cfg.targetNodes = 40;
  cfg.width = 8;
  cfg.seed = seed;
  cfg.vluPermille = 400;
  cfg.injectPeriod = 1 + static_cast<unsigned>(seed % 5);
  const auto failure = test::diffKernelsShrinking(cfg, 200);
  ASSERT_FALSE(failure.has_value()) << failure->describe();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffKernelsFast,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(DiffKernels, ShrinkerProducesMinimalReproOnSyntheticDivergence) {
  // Sanity of the harness itself: a deliberately-different pair must be
  // reported, not swallowed. We fake a divergence by comparing different
  // configs through the one-shot oracle's building blocks.
  synth::SynthConfig a;
  a.targetNodes = 20;
  a.seed = 1;
  synth::SynthSystem s1 = synth::build(a);
  a.seed = 2;  // different payload stream
  synth::SynthSystem s2 = synth::build(a);
  sim::Simulator ss(s1.nl, {.checkProtocol = false});
  sim::Simulator se(s2.nl, {.checkProtocol = false});
  ss.step();
  se.step();
  // Different seeds => different source streams => different packed state.
  EXPECT_NE(ss.ctx().packState(), se.ctx().packState());
}

}  // namespace
}  // namespace esl
