#!/usr/bin/env python3
"""Benchmark regression gate.

Compares current benchmark JSON files (google-benchmark format for
BENCH_sim.json, the bench_scale format for BENCH_scale.json, the bench_verify
format for BENCH_verify.json) against the committed baseline
bench/BENCH_baseline.json and fails on a >25% per-cycle regression.

Raw nanoseconds are machine-dependent, so by default every current/baseline
ratio is normalized by the median ratio across all matched entries: the
median captures the overall speed difference between the baseline machine and
the current one, and a regression is a benchmark that got slower *relative to
everything else*. Use --absolute for same-machine comparisons. Only time
metrics are gated; the machine-independent kernel-speedup floor is enforced
separately by `bench_scale --check`.

Usage:
  check_bench_regression.py --baseline bench/BENCH_baseline.json \
      --current build/BENCH_sim.json --current build/BENCH_scale.json \
      [--threshold 0.25] [--absolute]
"""

import argparse
import json
import statistics
import sys

# Gated metrics, all lower-is-better. event_vs_sweep speedup ratios are
# intentionally not gated here (see module docstring).
METRICS = ("ns_per_cycle", "real_time", "cpu_time")

# Must mirror make_bench_baseline.py: reported-but-ungated benchmarks whose
# measurement windows are too noise-prone for a 25% threshold. The sharded
# single-netlist tier ("/shardsN") is multi-thread wall-clock — machine- and
# core-count-dependent, so reported only (bit-identity is gated separately by
# `bench_scale --check` and the sharded-kernel test label).
UNGATED_SUBSTRINGS = ("/n100000/", "/shards", "/workers")

# Median normalization needs enough matched entries to be meaningful: with one
# or two matches the "median" is a single noisy ratio (or the mean of two) and
# normalizing by it silently cancels exactly the regression being measured.
MIN_NORMALIZATION_MATCHES = 3


def load_entries(path):
    """name -> (metric, value); google-benchmark aggregates are skipped."""
    with open(path) as f:
        data = json.load(f)
    entries = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") == "aggregate":
            continue
        if any(s in bench["name"] for s in UNGATED_SUBSTRINGS):
            continue
        for metric in METRICS:
            if metric in bench:
                entries[bench["name"]] = (metric, float(bench[metric]))
                break
    # bench_verify format: one model-checking instance with frontier
    # wall-clock per worker count. Only the serial run is gated — multi-worker
    # wall-clock is core-count-dependent (same policy as the "/shards" tiers,
    # via the "/workers" ungated substring).
    if "instance" in data and "runs" in data:
        for run in data["runs"]:
            workers = int(run["workers"])
            suffix = "serial" if workers == 1 else f"workers{workers}"
            name = f"verify/{data['instance']}/{suffix}"
            if any(s in name for s in UNGATED_SUBSTRINGS):
                continue
            entries[name] = ("seconds", float(run["seconds"]))
    return entries


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", action="append", required=True)
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="maximum tolerated per-benchmark regression (0.25 = 25%%)")
    ap.add_argument("--absolute", action="store_true",
                    help="skip median normalization (same-machine comparison)")
    ap.add_argument("--allow-new-entries", action="store_true",
                    help="report benchmarks missing from the baseline as NEW "
                         "(ungated) instead of failing; for feeds like "
                         "BENCH_verify.json that gain entries before the "
                         "baseline refresh lands")
    args = ap.parse_args()

    baseline = load_entries(args.baseline)
    current = {}
    for path in args.current:
        current.update(load_entries(path))

    missing = sorted(set(baseline) - set(current))
    if missing:
        print("FAIL: baseline benchmarks missing from current run "
              "(renamed? refresh bench/BENCH_baseline.json):")
        for name in missing:
            print(f"  {name}")
        return 1

    unbaselined = sorted(set(current) - set(baseline))
    if unbaselined:
        if args.allow_new_entries:
            print("NEW (ungated until bench/BENCH_baseline.json is refreshed "
                  "via scripts/make_bench_baseline.py):")
            for name in unbaselined:
                print(f"  {name}")
                del current[name]
        else:
            print("FAIL: benchmarks not present in bench/BENCH_baseline.json — "
                  "they would never be gated; refresh the baseline "
                  "(scripts/make_bench_baseline.py) in the same change:")
            for name in unbaselined:
                print(f"  {name}")
            return 1

    # Regression ratio per entry: >1 means worse than baseline.
    ratios = {}
    for name, (metric, base) in sorted(baseline.items()):
        cur_metric, cur = current[name]
        if cur_metric != metric:
            print(f"FAIL: {name}: metric changed {metric} -> {cur_metric}; "
                  "refresh the baseline")
            return 1
        if base <= 0:
            continue
        ratios[name] = cur / base

    if not ratios:
        if args.allow_new_entries:
            # Every current entry was NEW (e.g. a freshly added benchmark feed
            # before its baseline refresh lands): nothing is gated this run,
            # which is exactly what --allow-new-entries promises.
            print("OK: no baseline-matched benchmarks to gate "
                  f"({len(unbaselined)} new entries reported above)")
            return 0
        print("FAIL: no comparable benchmarks found")
        return 1

    norm = 1.0
    if not args.absolute:
        if len(ratios) < MIN_NORMALIZATION_MATCHES:
            print(f"WARNING: only {len(ratios)} matched benchmark(s) — "
                  f"median normalization needs at least "
                  f"{MIN_NORMALIZATION_MATCHES}; comparing absolute ratios "
                  "(machine speed differences will show through)")
        else:
            norm = statistics.median(ratios.values())
            print(f"machine-speed normalization: median time ratio {norm:.3f}")

    failed = []
    for name, ratio in sorted(ratios.items()):
        effective = ratio / norm
        status = "OK"
        if effective > 1.0 + args.threshold:
            status = "REGRESSION"
            failed.append(name)
        print(f"  {status:>10}  x{effective:6.3f}  {name}")

    if failed:
        print(f"FAIL: {len(failed)} benchmark(s) regressed more than "
              f"{args.threshold:.0%} vs bench/BENCH_baseline.json")
        return 1
    print(f"OK: {len(ratios)} benchmarks within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
