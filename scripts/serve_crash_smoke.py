#!/usr/bin/env python3
"""CI crash smoke for `esl serve`: kill it, restart it, byte-diff the resume.

Phase 1 (SIGKILL + durable recovery): a daemon with --spool-dir/--durable
hosts three sessions across backends (interpreted, compiled, compiled x
sharded). It is SIGKILLed between command rounds and again in the middle of
a long step (that client must exit 5, "connection lost"). After each
restart on the same spool directory every session must re-attach
(stats recovered=N) at the state of its last completed operation — the
mid-step kill loses exactly the op in flight — and each session's next
cumulative report must be byte-identical to a one-shot
`esl <design> --sim <total>` CLI run.

Phase 2 (SIGTERM drain): a long step is aborted at a quantum boundary with
a structured "draining" error, the daemon spools every session and exits 0;
a restarted daemon resumes the partial progress (cut at an exact quantum
multiple) byte-identically.

Phase 3 (client exit codes): no daemon -> exit 3 (cannot connect, after
retries); a reply deadline on a huge step -> exit 4 (timeout).

Exit 1 on any mismatch.

Usage: serve_crash_smoke.py [--esl build/esl]
"""

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

QUANTUM = 200
ROUND = 500
# Far more cycles than any phase waits for: the mid-step kill must always
# land while the step is in flight.
HUGE = 500_000_000

# (sid, design, client option words, one-shot CLI flags)
SESSIONS = [
    ("a", "fig1a", "", []),
    ("b", "fig1d", "compiled", ["--backend", "compiled"]),
    ("c", "secded-spec", "compiled shards 2",
     ["--backend", "compiled", "--shards", "2"]),
]


def start_daemon(esl, sock, spool, extra=()):
    daemon = subprocess.Popen(
        [esl, "serve", "--socket", sock, "--quantum", str(QUANTUM),
         "--spool-dir", spool] + list(extra),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    line = daemon.stdout.readline()
    if b"listening on" not in line:
        raise RuntimeError(f"daemon did not come up: {line!r}")
    return daemon


def run_client(esl, sock, script, flags=()):
    return subprocess.run(
        [esl, "client", "--socket", sock] + list(flags),
        input=script.encode(),
        capture_output=True,
        timeout=300,
    )


def one_shot(esl, design, cycles, extra):
    return subprocess.run(
        [esl, design, "--sim", str(cycles)] + extra,
        capture_output=True,
        timeout=300,
    )


def stat_field(stats_stdout, name):
    for field in stats_stdout.decode().split():
        if field.startswith(name + "="):
            return int(field.split("=")[1])
    return -1


def check_round(esl, sock, total, failures, tag):
    """Steps every session by ROUND and byte-diffs the cumulative report."""
    for sid, design, _, flags in SESSIONS:
        got = run_client(esl, sock, f"step {sid} {ROUND}\n")
        want = one_shot(esl, design, total, flags)
        label = f"{tag}: {sid} ({design} at cycle {total})"
        if got.returncode != 0:
            failures.append(f"{label}: exit {got.returncode}: "
                            f"{got.stderr.decode()}")
        elif want.returncode != 0:
            failures.append(f"{label}: one-shot CLI failed: "
                            f"{want.stderr.decode()}")
        elif got.stdout != want.stdout:
            failures.append(
                f"{label}: resumed report differs from one-shot CLI\n"
                f"--- serve ---\n{got.stdout.decode()}"
                f"--- cli ---\n{want.stdout.decode()}")


def background_step(esl, sock, sid, cycles):
    """Starts a client stepping `cycles` and returns (popen, result-slot)."""
    proc = subprocess.Popen(
        [esl, "client", "--socket", sock],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    proc.stdin.write(f"step {sid} {cycles}\n".encode())
    proc.stdin.close()
    return proc


def expect_recovered(esl, sock, want, failures, tag):
    stats = run_client(esl, sock, "stats\n")
    got = stat_field(stats.stdout, "recovered")
    if got != want:
        failures.append(f"{tag}: recovered={got}, want {want} "
                        f"({stats.stdout.decode().strip()})")


def sigkill_phase(esl, tmp, failures):
    sock = os.path.join(tmp, "crash.sock")
    spool = os.path.join(tmp, "crash-spool")
    durable = ("--durable",)

    daemon = start_daemon(esl, sock, spool, durable)
    try:
        opens = run_client(esl, sock, "".join(
            f"open {sid} {design} {words}\n" for sid, design, words, _ in
            SESSIONS))
        if opens.returncode != 0:
            failures.append(f"kill phase opens: exit {opens.returncode}: "
                            f"{opens.stderr.decode()}")
            return
        check_round(esl, sock, ROUND, failures, "kill phase round 1")
        daemon.kill()  # SIGKILL between rounds: checkpoints are the state
        daemon.wait(timeout=60)

        daemon = start_daemon(esl, sock, spool, durable)
        expect_recovered(esl, sock, len(SESSIONS), failures,
                         "kill phase restart 1")
        check_round(esl, sock, 2 * ROUND, failures, "kill phase round 2")

        # SIGKILL mid-step: the client must report the lost connection
        # (exit 5) and the durable restart must resume at the last completed
        # op — the huge step in flight is lost entirely.
        walker = background_step(esl, sock, "a", HUGE)
        time.sleep(0.5)
        daemon.kill()
        daemon.wait(timeout=60)
        code = walker.wait(timeout=60)
        walker.stdout.read()
        err = walker.stderr.read().decode()
        if code != 5:
            failures.append(f"mid-step kill: client exit {code}, want 5 "
                            f"(connection lost): {err}")

        daemon = start_daemon(esl, sock, spool, durable)
        expect_recovered(esl, sock, len(SESSIONS), failures,
                         "kill phase restart 2")
        cyc = run_client(esl, sock, "cycle a\n")
        if cyc.stdout.strip() != str(2 * ROUND).encode():
            failures.append(
                f"mid-step kill: session 'a' resumed at cycle "
                f"{cyc.stdout.decode().strip()}, want {2 * ROUND} "
                f"(the op in flight must be lost, nothing else)")
        check_round(esl, sock, 3 * ROUND, failures, "kill phase round 3")

        closes = run_client(esl, sock, "".join(
            f"close {sid}\n" for sid, _, _, _ in SESSIONS))
        if closes.returncode != 0:
            failures.append(f"kill phase closes: exit {closes.returncode}: "
                            f"{closes.stderr.decode()}")
        stats = run_client(esl, sock, "stats\n")
        if stat_field(stats.stdout, "sessions") != 0:
            failures.append(
                f"kill phase: leaked sessions: {stats.stdout.decode().strip()}")
        down = run_client(esl, sock, "shutdown\n")
        if down.returncode != 0:
            failures.append(f"kill phase shutdown: exit {down.returncode}")
        code = daemon.wait(timeout=60)
        if code != 0:
            failures.append(f"kill phase: daemon exited {code}, want 0")
    finally:
        daemon.kill()


def sigterm_phase(esl, tmp, failures):
    sock = os.path.join(tmp, "drain.sock")
    spool = os.path.join(tmp, "drain-spool")

    daemon = start_daemon(esl, sock, spool)
    try:
        prep = run_client(esl, sock, "open a fig1a\nstep a 700\n")
        if prep.returncode != 0:
            failures.append(f"drain phase prep: exit {prep.returncode}: "
                            f"{prep.stderr.decode()}")
            return
        walker = background_step(esl, sock, "a", HUGE)
        time.sleep(0.5)
        daemon.send_signal(signal.SIGTERM)
        code = walker.wait(timeout=60)
        walker.stdout.read()
        err = walker.stderr.read().decode()
        if code != 2 or "draining" not in err:
            failures.append(
                f"drain phase: in-flight step client exit {code} "
                f"(want 2 with a structured 'draining' error): {err}")
        code = daemon.wait(timeout=60)
        if code != 0:
            failures.append(f"drain phase: daemon exited {code} on SIGTERM, "
                            f"want 0 after draining")

        daemon = start_daemon(esl, sock, spool)
        expect_recovered(esl, sock, 1, failures, "drain phase restart")
        cyc = run_client(esl, sock, "cycle a\n")
        cycle = int(cyc.stdout.strip() or b"-1")
        if cycle < 700 or (cycle - 700) % QUANTUM != 0:
            failures.append(
                f"drain phase: resumed at cycle {cycle}; want >= 700 and "
                f"cut at a quantum boundary (700 + k*{QUANTUM})")
        else:
            got = run_client(esl, sock, f"step a {ROUND}\n")
            want = one_shot(esl, "fig1a", cycle + ROUND, [])
            if got.returncode != 0 or got.stdout != want.stdout:
                failures.append(
                    f"drain phase: resumed report differs from one-shot CLI "
                    f"at cycle {cycle + ROUND}\n"
                    f"--- serve ---\n{got.stdout.decode()}"
                    f"--- cli ---\n{want.stdout.decode()}")
        run_client(esl, sock, "close a\n")
        down = run_client(esl, sock, "shutdown\n")
        if down.returncode != 0:
            failures.append(f"drain phase shutdown: exit {down.returncode}")
        code = daemon.wait(timeout=60)
        if code != 0:
            failures.append(f"drain phase: daemon exited {code}, want 0")
    finally:
        daemon.kill()


def exit_code_phase(esl, tmp, failures):
    # 3: never reached a daemon, after bounded retries.
    gone = run_client(esl, os.path.join(tmp, "nobody-home.sock"), "stats\n",
                      flags=["--retries", "1", "--backoff", "10"])
    if gone.returncode != 3:
        failures.append(f"exit codes: no daemon -> exit {gone.returncode}, "
                        f"want 3: {gone.stderr.decode()}")

    # 4: the reply deadline fires while a huge step grinds.
    sock = os.path.join(tmp, "deadline.sock")
    spool = os.path.join(tmp, "deadline-spool")
    daemon = start_daemon(esl, sock, spool)
    try:
        slow = run_client(esl, sock, f"open t fig1a\nstep t {HUGE}\n",
                          flags=["--timeout", "500"])
        if slow.returncode != 4:
            failures.append(f"exit codes: reply deadline -> exit "
                            f"{slow.returncode}, want 4: "
                            f"{slow.stderr.decode()}")
        down = run_client(esl, sock, "shutdown\n")
        if down.returncode != 0:
            failures.append(f"exit codes shutdown: exit {down.returncode}")
        code = daemon.wait(timeout=60)
        if code != 0:
            failures.append(f"exit codes: daemon exited {code} on shutdown "
                            f"with a step in flight, want 0")
    finally:
        daemon.kill()


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--esl", default="build/esl")
    args = ap.parse_args()
    failures = []
    with tempfile.TemporaryDirectory(prefix="esl-crash-smoke-") as tmp:
        sigkill_phase(args.esl, tmp, failures)
        sigterm_phase(args.esl, tmp, failures)
        exit_code_phase(args.esl, tmp, failures)
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("OK: crash smoke clean (SIGKILL x2 + SIGTERM drain recovered "
          f"{len(SESSIONS)} sessions byte-identically; client exit codes "
          "3/4/5 as documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
