#!/usr/bin/env python3
"""Refreshes bench/BENCH_baseline.json from a local bench run.

Run `cmake --build build --target bench` first, then this script from the
repository root. Keeps only (name, headline metric) per benchmark so the
committed baseline stays small and diff-friendly.
"""

import json
import sys

# Speedup ratios (event_vs_sweep) are deliberately NOT committed: they vary
# too much across CPUs for a 25% gate, and the machine-independent floor is
# enforced by `bench_scale --check` in CI instead. The regression gate runs
# on the per-cycle times, median-normalized for machine speed.
METRICS = ("ns_per_cycle", "real_time", "cpu_time")

# The 100k-node tier is reported (table, JSON artifact, README) but not
# gated: its multi-second sweep windows see >50% ambient run-to-run noise on
# shared/cgroup-throttled machines, far beyond the 25% threshold. The
# 1k/10k tiers measure the same kernels with stable (<10%) dispersion.
# The sharded tier ("/shardsN") is likewise reported-not-gated: parallel
# wall-clock depends on the runner's core count.
UNGATED_SUBSTRINGS = ("/n100000/", "/shards")


def main():
    build = sys.argv[1] if len(sys.argv) > 1 else "build"
    out = []
    for path in (f"{build}/BENCH_sim.json", f"{build}/BENCH_scale.json"):
        with open(path) as f:
            data = json.load(f)
        for bench in data.get("benchmarks", []):
            if bench.get("run_type", "iteration") == "aggregate":
                continue
            if any(s in bench["name"] for s in UNGATED_SUBSTRINGS):
                continue
            for metric in METRICS:
                if metric in bench:
                    out.append({"name": bench["name"],
                                metric: round(float(bench[metric]), 3)})
                    break
    with open("bench/BENCH_baseline.json", "w") as f:
        json.dump({"note": ("Committed perf baseline for CI's bench-regression "
                            "gate; refresh with: cmake --build build --target "
                            "bench && python3 scripts/make_bench_baseline.py"),
                   "benchmarks": out}, f, indent=1)
        f.write("\n")
    print(f"wrote bench/BENCH_baseline.json ({len(out)} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
