#!/usr/bin/env python3
"""CI smoke for `esl serve`: concurrent sessions must match the one-shot CLI.

Phase 1 (concurrency): start a daemon, drive 8+ scripted `esl client`
processes at once — mixed golden designs, backends and shard counts, a
small scheduler quantum so long steps interleave — and byte-diff each
session's stdout against the equivalent one-shot `esl <design> --sim N` run.
This is the end-to-end determinism contract over the real wire.

Phase 2 (residency): a second daemon with --max-resident 2 is driven
serially through open/step cycles over three sessions, so LRU spool
eviction and transparent restore are on the measured path; outputs are
byte-diffed the same way and the eviction/restore counters are asserted.

Both daemons must exit 0 on `shutdown` with no leaked sessions
(stats sessions=0 before shutdown). Exit 1 on any mismatch.

Usage: serve_smoke.py [--esl build/esl] [--clients 8]
"""

import argparse
import os
import subprocess
import sys
import tempfile
import threading


def wait_listening(daemon):
    line = daemon.stdout.readline()
    if b"listening on" not in line:
        raise RuntimeError(f"daemon did not come up: {line!r}")


def run_client(esl, sock, script):
    return subprocess.run(
        [esl, "client", "--socket", sock],
        input=script.encode(),
        capture_output=True,
        timeout=300,
    )


def one_shot(esl, design, cycles, extra):
    return subprocess.run(
        [esl, design, "--sim", str(cycles)] + extra,
        capture_output=True,
        timeout=300,
    )


def shutdown_daemon(esl, sock, daemon, failures):
    stats = run_client(esl, sock, "stats\n")
    if stats.returncode != 0:
        failures.append(f"stats client failed: {stats.stderr.decode()}")
    elif b"sessions=0 " not in stats.stdout:
        failures.append(f"leaked sessions: {stats.stdout.decode().strip()}")
    down = run_client(esl, sock, "shutdown\n")
    if down.returncode != 0:
        failures.append(f"shutdown client failed: {down.stderr.decode()}")
    code = daemon.wait(timeout=60)
    if code != 0:
        failures.append(f"daemon exited {code}, want 0")
    return stats.stdout.decode()


def concurrency_phase(esl, tmp, clients, failures):
    # (design, cycles, client option words, one-shot CLI flags)
    shapes = [
        ("fig1a", 2000, "", []),
        ("fig1b", 1500, "", []),
        ("fig1c", 1200, "", []),
        ("fig1d", 2000, "compiled shards 2",
         ["--backend", "compiled", "--shards", "2"]),
        ("table1", 1000, "", []),
        ("vlu-stall", 1500, "compiled", ["--backend", "compiled"]),
        ("vlu-spec", 1500, "", []),
        ("secded-spec", 2000, "compiled shards 2", ["--backend", "compiled", "--shards", "2"]),
    ]
    sock = os.path.join(tmp, "serve-conc.sock")
    daemon = subprocess.Popen(
        [esl, "serve", "--socket", sock, "--quantum", "300"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        wait_listening(daemon)
        results = [None] * clients

        def drive(i):
            design, cycles, words, _ = shapes[i % len(shapes)]
            sid = f"smoke{i}"
            script = (
                f"open {sid} {design} {words}\n"
                f"step {sid} {cycles}\n"
                f"close {sid}\n"
            )
            results[i] = run_client(esl, sock, script)

        threads = [threading.Thread(target=drive, args=(i,)) for i in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for i, got in enumerate(results):
            design, cycles, _, flags = shapes[i % len(shapes)]
            tag = f"client {i} ({design} x{cycles} {' '.join(flags)})"
            if got.returncode != 0:
                failures.append(f"{tag}: exit {got.returncode}: {got.stderr.decode()}")
                continue
            want = one_shot(esl, design, cycles, flags)
            if want.returncode != 0:
                failures.append(f"{tag}: one-shot CLI failed: {want.stderr.decode()}")
            elif got.stdout != want.stdout:
                failures.append(
                    f"{tag}: serve output differs from one-shot CLI\n"
                    f"--- serve ---\n{got.stdout.decode()}"
                    f"--- cli ---\n{want.stdout.decode()}"
                )
        shutdown_daemon(esl, sock, daemon, failures)
    finally:
        daemon.kill()


def residency_phase(esl, tmp, failures):
    sock = os.path.join(tmp, "serve-evict.sock")
    daemon = subprocess.Popen(
        [esl, "serve", "--socket", sock, "--max-resident", "2", "--quantum", "250"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        wait_listening(daemon)
        # Three sessions through two resident slots, touched round-robin:
        # every revisit pages one session out and another back in. A serve
        # step's report is cumulative, so the Nth touch of a session must be
        # byte-identical to a one-shot CLI run of N*500 cycles — reports
        # carry across the spool or this diff catches it. Each step rides
        # its own client process: sessions are daemon state, not connection
        # state, and that persistence is part of what this phase checks.
        sessions = [("a", "fig1a"), ("b", "fig1d"), ("c", "table1")]
        opens = run_client(
            esl, sock, "".join(f"open {sid} {d}\n" for sid, d in sessions))
        if opens.returncode != 0:
            failures.append(f"eviction opens: exit {opens.returncode}: "
                            f"{opens.stderr.decode()}")
        for round_ in (1, 2):
            for sid, design in sessions:
                got = run_client(esl, sock, f"step {sid} 500\n")
                want = one_shot(esl, design, 500 * round_, [])
                tag = f"eviction {sid} ({design}, touch {round_})"
                if got.returncode != 0:
                    failures.append(
                        f"{tag}: exit {got.returncode}: {got.stderr.decode()}")
                elif got.stdout != want.stdout:
                    failures.append(
                        f"{tag}: serve report differs from one-shot CLI\n"
                        f"--- serve ---\n{got.stdout.decode()}"
                        f"--- cli ---\n{want.stdout.decode()}")
        closes = run_client(
            esl, sock, "".join(f"close {sid}\n" for sid, _ in sessions))
        if closes.returncode != 0:
            failures.append(f"eviction closes: exit {closes.returncode}: "
                            f"{closes.stderr.decode()}")
        stats = shutdown_daemon(esl, sock, daemon, failures)
        for needle in ("evictions=", "restores="):
            field = next((f for f in stats.split() if f.startswith(needle)), "=0")
            if int(field.split("=")[1]) == 0:
                failures.append(
                    f"eviction phase: expected nonzero {needle} "
                    f"got '{stats.strip()}'")
    finally:
        daemon.kill()


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--esl", default="build/esl")
    ap.add_argument("--clients", type=int, default=8)
    args = ap.parse_args()
    failures = []
    with tempfile.TemporaryDirectory(prefix="esl-serve-smoke-") as tmp:
        concurrency_phase(args.esl, tmp, args.clients, failures)
        residency_phase(args.esl, tmp, failures)
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"OK: serve smoke clean ({args.clients} concurrent clients, "
          "eviction phase byte-identical, daemons exited 0)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
