// Serve-service benchmark: sessions/sec and command latency at 100/1k/5k
// concurrent sessions over the fig1a pipeline, with the resident cap set
// below the session count on the larger tiers so LRU spool eviction and
// restore are on the measured path (the admission/eviction machinery is the
// point of the tier, not an artifact).
//
// Eight client threads round-robin their own session partitions through the
// Service — the in-process core of `esl serve` — so the numbers measure the
// scheduler, residency and spool layers without socket noise (the CI smoke
// covers the wire). Latency is per completed command round-trip (step of 20
// cycles), p50/p99 over every command in the tier.
//
// Modes:
//   bench_serve [--out FILE] [--quick]   measure, print a table, write JSON
//
// JSON rows use the "/workers" name tier, so the regression gate reports
// them without gating (multi-thread wall-clock is machine-dependent; the
// determinism contract is gated by the `serve` test label instead).
#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "netlist/patterns.h"
#include "serve/service.h"

using namespace esl;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TierResult {
  std::string name;
  std::size_t sessions = 0;
  std::size_t maxResident = 0;
  double opensPerSec = 0.0;
  double cmdsPerSec = 0.0;
  double p50us = 0.0;
  double p99us = 0.0;
  serve::Service::Stats stats;
};

// Retries AdmissionError: under a tight resident cap a burst of concurrent
// opens can momentarily find nothing evictable; backing off and retrying is
// the client contract (the service refuses rather than grows).
template <typename F>
auto admitted(F f) {
  while (true) {
    try {
      return f();
    } catch (const serve::AdmissionError&) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

TierResult runTier(std::size_t sessions, std::size_t maxResident,
                   unsigned clientThreads, unsigned rounds) {
  serve::Service::Config cfg;
  cfg.maxResident = maxResident;
  serve::Service svc(cfg);
  const NetlistSpec spec = patterns::designSpec("fig1a");

  std::vector<std::vector<double>> latencies(clientThreads);
  const auto sidOf = [](std::size_t i) { return "s" + std::to_string(i); };

  // Phase 1: open every session (partitioned across the client threads).
  const double t0 = now();
  {
    std::vector<std::thread> clients;
    for (unsigned t = 0; t < clientThreads; ++t) {
      clients.emplace_back([&, t] {
        for (std::size_t i = t; i < sessions; i += clientThreads)
          admitted([&] { return svc.open(sidOf(i), spec, "fig1a", {}); });
      });
    }
    for (std::thread& c : clients) c.join();
  }
  const double openSecs = now() - t0;

  // Phase 2: round-robin step commands; every round-trip is timed.
  const double t1 = now();
  {
    std::vector<std::thread> clients;
    for (unsigned t = 0; t < clientThreads; ++t) {
      clients.emplace_back([&, t] {
        std::vector<double>& lat = latencies[t];
        lat.reserve(rounds * (sessions / clientThreads + 1));
        for (unsigned r = 0; r < rounds; ++r) {
          for (std::size_t i = t; i < sessions; i += clientThreads) {
            const double c0 = now();
            admitted([&] { return svc.step(sidOf(i), 20); });
            lat.push_back((now() - c0) * 1e6);
          }
        }
      });
    }
    for (std::thread& c : clients) c.join();
  }
  const double cmdSecs = now() - t1;

  TierResult res;

  {
    std::vector<std::thread> clients;
    for (unsigned t = 0; t < clientThreads; ++t) {
      clients.emplace_back([&, t] {
        for (std::size_t i = t; i < sessions; i += clientThreads)
          svc.close(sidOf(i));
      });
    }
    for (std::thread& c : clients) c.join();
  }
  res.stats = svc.stats();  // after close: sessions must be 0, no leaks

  std::vector<double> all;
  for (const auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
  std::sort(all.begin(), all.end());
  res.name = "serve/fig1a/sessions" + std::to_string(sessions) + "/workers" +
             std::to_string(clientThreads);
  res.sessions = sessions;
  res.maxResident = maxResident;
  res.opensPerSec = static_cast<double>(sessions) / openSecs;
  res.cmdsPerSec = static_cast<double>(all.size()) / cmdSecs;
  res.p50us = all.empty() ? 0.0 : all[all.size() / 2];
  res.p99us = all.empty() ? 0.0 : all[all.size() * 99 / 100];
  return res;
}

// Restart-recovery tier: spool N stepped sessions to a persistent directory,
// then measure (a) a fresh Service's startup scan — journal replay plus full
// CRC validation of every record — and (b) the first-touch restores that
// re-materialize each session. Reported as sessions/s re-attached; the crash
// smoke gates correctness of the same path, this row tracks its cost.
struct RecoveryResult {
  std::string name;
  std::size_t sessions = 0;
  double attachPerSec = 0.0;   ///< startup scan (journal replay + CRC)
  double restorePerSec = 0.0;  ///< first-touch spool restores
  std::uint64_t recovered = 0;
};

RecoveryResult runRecoveryTier(std::size_t sessions) {
  char tmpl[] = "/tmp/esl_bench_recover_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "cannot create recovery spool dir\n");
    std::exit(1);
  }
  serve::Service::Config cfg;
  cfg.spoolDir = dir;
  cfg.maxResident = sessions + 8;  // isolate restore cost from re-eviction
  cfg.warn = [](const std::string&) {};
  const NetlistSpec spec = patterns::designSpec("fig1a");
  const auto sidOf = [](std::size_t i) { return "s" + std::to_string(i); };
  {
    serve::Service svc(cfg);
    for (std::size_t i = 0; i < sessions; ++i)
      svc.open(sidOf(i), spec, "fig1a", {});
    for (std::size_t i = 0; i < sessions; ++i) svc.step(sidOf(i), 20);
    svc.drainAndSpool();
  }

  RecoveryResult res;
  res.name = "serve/recover/sessions" + std::to_string(sessions) + "/workers1";
  res.sessions = sessions;
  const double t0 = now();
  serve::Service svc(cfg);
  const double scanSecs = now() - t0;
  res.recovered = svc.stats().recovered;
  const double t1 = now();
  for (std::size_t i = 0; i < sessions; ++i) svc.step(sidOf(i), 1);
  const double restoreSecs = now() - t1;
  for (std::size_t i = 0; i < sessions; ++i) svc.close(sidOf(i));
  res.attachPerSec = static_cast<double>(sessions) / scanSecs;
  res.restorePerSec = static_cast<double>(sessions) / restoreSecs;

  if (DIR* d = ::opendir(dir)) {
    while (const dirent* ent = ::readdir(d)) {
      const std::string name = ent->d_name;
      if (name != "." && name != "..")
        std::remove((std::string(dir) + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir);
  return res;
}

void writeJson(const std::string& path, const std::vector<TierResult>& rows,
               const std::vector<RecoveryResult>& recoveries) {
  std::ofstream os(path);
  os << "{\n  \"benchmarks\": [\n";
  bool first = true;
  for (const TierResult& r : rows) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"name\": \"" << r.name << "\", \"real_time\": " << r.p99us * 1e3
       << ", \"p50_us\": " << r.p50us << ", \"p99_us\": " << r.p99us
       << ", \"opens_per_sec\": " << r.opensPerSec
       << ", \"cmds_per_sec\": " << r.cmdsPerSec
       << ", \"sessions\": " << r.sessions
       << ", \"max_resident\": " << r.maxResident
       << ", \"evictions\": " << r.stats.evictions
       << ", \"restores\": " << r.stats.restores
       << ", \"denied\": " << r.stats.denied << "}";
  }
  for (const RecoveryResult& r : recoveries) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"name\": \"" << r.name << "\", \"real_time\": "
       << 1e9 * static_cast<double>(r.sessions) /
              std::max(r.attachPerSec, 1e-9)
       << ", \"attach_per_sec\": " << r.attachPerSec
       << ", \"restore_per_sec\": " << r.restorePerSec
       << ", \"sessions\": " << r.sessions
       << ", \"recovered\": " << r.recovered << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string outPath;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: bench_serve [--out FILE] [--quick]\n");
      return 1;
    }
  }

  // sessions, resident cap: the 1k/5k tiers keep the cap far below the
  // session count so every round-robin pass churns the eviction spool.
  std::vector<std::pair<std::size_t, std::size_t>> tiers = {
      {100, 256}, {1000, 512}, {5000, 1024}};
  if (quick) tiers.pop_back();
  const unsigned clientThreads = 8;
  const unsigned rounds = quick ? 2 : 3;

  std::printf("=== serve session scaling (fig1a, %u client threads) ===\n",
              clientThreads);
  std::printf("%9s %9s %11s %11s %9s %9s %9s %9s %7s\n", "sessions",
              "resident", "opens/s", "cmds/s", "p50(us)", "p99(us)", "evict",
              "restore", "denied");
  std::vector<TierResult> rows;
  for (const auto& [sessions, cap] : tiers) {
    const TierResult r = runTier(sessions, cap, clientThreads, rounds);
    std::printf("%9zu %9zu %11.0f %11.0f %9.1f %9.1f %9llu %9llu %7llu\n",
                r.sessions, r.maxResident, r.opensPerSec, r.cmdsPerSec, r.p50us,
                r.p99us, static_cast<unsigned long long>(r.stats.evictions),
                static_cast<unsigned long long>(r.stats.restores),
                static_cast<unsigned long long>(r.stats.denied));
    if (r.stats.sessions != 0) {
      std::printf("FAIL: %llu sessions leaked after close\n",
                  static_cast<unsigned long long>(r.stats.sessions));
      return 1;
    }
    rows.push_back(r);
  }

  std::printf("=== restart recovery (durable spool, fig1a) ===\n");
  std::printf("%9s %13s %13s %9s\n", "sessions", "attach/s", "restore/s",
              "recovered");
  std::vector<RecoveryResult> recoveries;
  std::vector<std::size_t> recoverTiers = {100, 1000};
  if (quick) recoverTiers.pop_back();
  for (const std::size_t sessions : recoverTiers) {
    const RecoveryResult r = runRecoveryTier(sessions);
    std::printf("%9zu %13.0f %13.0f %9llu\n", r.sessions, r.attachPerSec,
                r.restorePerSec, static_cast<unsigned long long>(r.recovered));
    if (r.recovered != r.sessions) {
      std::printf("FAIL: recovered %llu of %zu spooled sessions\n",
                  static_cast<unsigned long long>(r.recovered), r.sessions);
      return 1;
    }
    recoveries.push_back(r);
  }

  if (!outPath.empty()) {
    writeJson(outPath, rows, recoveries);
    std::printf("wrote %s\n", outPath.c_str());
  }
  return 0;
}
