// Reproduces §5.1 / Figure 6: the variable-latency ALU.
//
// Compares the stalling unit (Fig. 6a, F_err gating the elastic controller)
// against the speculative unit (Fig. 6b, always predict "approximation
// correct", replay on error) across error rates. Paper headline: ~9%
// effective cycle time improvement, ~12% area overhead (their 65nm synthesis,
// amortized over a full pipeline); the unit-gate model reproduces the shape —
// the F_err -> controller path sets the stalling unit's clock, speculation
// moves it into the datapath, and the overhead is EB-dominated.
#include <cstdio>

#include "netlist/patterns.h"
#include "perf/area.h"
#include "perf/timing.h"
#include "sim/simulator.h"

using namespace esl;

int main() {
  std::printf("=== Figure 6: variable-latency ALU (8-bit, segment 4) ===\n\n");

  const auto stallRef = patterns::buildStallingVlu();
  const auto specRef = patterns::buildSpeculativeVlu();
  const double cycStall = perf::analyzeTiming(stallRef.nl).cycleTime;
  const double cycSpec = perf::analyzeTiming(specRef.nl).cycleTime;
  const auto areaStall = perf::areaReport(stallRef.nl);
  const auto areaSpec = perf::areaReport(specRef.nl);

  std::printf("cycle time: stalling %.1f (F_err + control gating critical), "
              "speculative %.1f  -> %.1f%% faster clock\n",
              cycStall, cycSpec, 100.0 * (cycStall - cycSpec) / cycStall);
  std::printf("area: stalling %.0f, speculative %.0f (+%.0f%%, EB-dominated: "
              "+%.0f EB units)\n\n",
              areaStall.total, areaSpec.total,
              100.0 * (areaSpec.total - areaStall.total) / areaStall.total,
              areaSpec.byKind.at("eb") -
                  (areaStall.byKind.count("eb") ? areaStall.byKind.at("eb") : 0.0));

  std::printf("%-10s | %-22s | %-22s | %s\n", "", "stalling (6a)", "speculative (6b)",
              "eff.cycle");
  std::printf("%-10s | %10s %11s | %10s %11s | %s\n", "err-rate", "tput", "eff.cyc",
              "tput", "eff.cyc", "gain");
  for (const unsigned err : {0u, 50u, 100u, 200u, 400u}) {
    patterns::VluConfig cfg;
    cfg.errPermille = err;

    auto stall = patterns::buildStallingVlu(cfg);
    sim::Simulator ss(stall.nl);
    ss.run(3000);
    const double ts = ss.throughput(stall.outChannel);

    auto spec = patterns::buildSpeculativeVlu(cfg);
    sim::Simulator sp(spec.nl);
    sp.run(3000);
    const double tp = sp.throughput(spec.outChannel);

    const double effS = cycStall / ts, effP = cycSpec / tp;
    std::printf("%9.1f%% | %10.3f %11.2f | %10.3f %11.2f | %+6.1f%%\n", err / 10.0,
                ts, effS, tp, effP, 100.0 * (effS - effP) / effS);
  }

  // Functional exactness spot check at a high error rate.
  patterns::VluConfig cfg;
  cfg.errPermille = 300;
  auto spec = patterns::buildSpeculativeVlu(cfg);
  sim::Simulator sp(spec.nl);
  sp.run(1500);
  const std::size_t checked = std::min<std::size_t>(1000, spec.sink->received());
  const auto golden = patterns::vluGolden(cfg, checked);
  for (std::size_t i = 0; i < checked; ++i)
    if (spec.sink->transfers().at(i).data.toUint64() != golden[i]) {
      std::printf("\nMISMATCH at %zu\n", i);
      return 1;
    }
  std::printf("\nfunctional check: %zu/%zu results exact at 30%% error rate\n",
              checked, checked);
  std::printf("paper shape reproduced: speculation wins on effective cycle time at\n"
              "low error rates, at an EB-dominated area premium\n");
  return 0;
}
