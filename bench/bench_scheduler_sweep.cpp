// Ablation: prediction strategy vs achieved throughput (paper §4.1.1 leaves
// the scheduler open, "from always predicting one of the channels to ... the
// state-of-the-art branch prediction in modern micro-processors").
//
// Sweeps all shipped schedulers over branch behaviours in the Fig. 1(d) loop
// and reports throughput plus the misprediction (demand) counts, with the
// analytic expectation tput = 1/(1+missrate) for reference.
#include <cstdio>

#include "netlist/patterns.h"
#include "sim/simulator.h"

using namespace esl;

int main() {
  std::printf("=== Scheduler sweep on the Fig. 1(d) loop ===\n\n");
  const std::pair<patterns::Fig1Scheduler, const char*> scheds[] = {
      {patterns::Fig1Scheduler::kStatic0, "static0"},
      {patterns::Fig1Scheduler::kRoundRobin, "round-robin"},
      {patterns::Fig1Scheduler::kLastServed, "last-served"},
      {patterns::Fig1Scheduler::kTwoBit, "two-bit"},
      {patterns::Fig1Scheduler::kOracle, "oracle"},
  };

  std::printf("%-13s", "taken-rate");
  for (const auto& [s, name] : scheds) std::printf(" %11s", name);
  std::printf("   (cells: throughput / mispredict-cycles per 1000)\n");

  for (const unsigned taken : {0u, 100u, 250u, 500u, 750u, 900u, 1000u}) {
    std::printf("%11.1f%% ", taken / 10.0);
    for (const auto& [schedKind, name] : scheds) {
      patterns::Fig1Config cfg;
      cfg.takenPermille = taken;
      cfg.scheduler = schedKind;
      auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative, cfg);
      sim::Simulator s(sys.nl);
      s.run(1000);
      std::printf(" %6.3f/%-4llu", s.throughput(sys.loopChannel),
                  static_cast<unsigned long long>(sys.shared->demandCycles()));
    }
    std::printf("\n");
  }

  std::printf("\nreference: tput = 1/(1+missrate); a demand cycle is exactly the\n"
              "one-cycle misprediction penalty of §4's correction mechanism.\n"
              "The oracle row is the Shannon (Fig. 1c) performance bound.\n");
  return 0;
}
