// Ablation: prediction strategy vs achieved throughput (paper §4.1.1 leaves
// the scheduler open, "from always predicting one of the channels to ... the
// state-of-the-art branch prediction in modern micro-processors").
//
// Sweeps all shipped schedulers over branch behaviours in the Fig. 1(d) loop
// and reports throughput plus the misprediction (demand) counts, with the
// analytic expectation tput = 1/(1+missrate) for reference. The whole grid
// runs as one SimFarm: every (taken-rate, scheduler) cell is an independent
// task fanned out across hardware threads, and the printed table is
// bit-identical no matter how many workers execute it.
#include <cstdio>

#include "netlist/patterns.h"
#include "sim/farm.h"

using namespace esl;

namespace {

constexpr std::pair<patterns::Fig1Scheduler, const char*> kScheds[] = {
    {patterns::Fig1Scheduler::kStatic0, "static0"},
    {patterns::Fig1Scheduler::kRoundRobin, "round-robin"},
    {patterns::Fig1Scheduler::kLastServed, "last-served"},
    {patterns::Fig1Scheduler::kTwoBit, "two-bit"},
    {patterns::Fig1Scheduler::kOracle, "oracle"},
};
constexpr unsigned kTakenRates[] = {0, 100, 250, 500, 750, 900, 1000};

}  // namespace

int main() {
  std::printf("=== Scheduler sweep on the Fig. 1(d) loop (SimFarm) ===\n\n");

  // config packs the grid cell: taken-rate in the high bits, scheduler index
  // in the low bits. The recipe rebuilds the system for its cell.
  sim::SimFarm farm(
      [](const sim::SimFarm::Task& task, sim::SimFarm::Instance& inst) {
        patterns::Fig1Config cfg;
        cfg.takenPermille = static_cast<unsigned>(task.config >> 8);
        cfg.scheduler = kScheds[task.config & 0xff].first;
        auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative, cfg);
        inst.nl = std::move(sys.nl);
        inst.watch.emplace_back("loop", sys.loopChannel);
        SharedModule* shared = sys.shared;
        inst.harvest = [shared](sim::Simulator&,
                                std::vector<std::pair<std::string, double>>& m) {
          m.emplace_back("demand", static_cast<double>(shared->demandCycles()));
        };
      });
  for (const unsigned taken : kTakenRates)
    for (unsigned s = 0; s < std::size(kScheds); ++s)
      farm.add({.cycles = 1000, .config = (std::uint64_t{taken} << 8) | s});

  const auto results = farm.run();

  std::printf("%-13s", "taken-rate");
  for (const auto& [s, name] : kScheds) std::printf(" %11s", name);
  std::printf("   (cells: throughput / mispredict-cycles per 1000)\n");

  std::size_t idx = 0;
  for (const unsigned taken : kTakenRates) {
    std::printf("%11.1f%% ", taken / 10.0);
    for (unsigned s = 0; s < std::size(kScheds); ++s, ++idx) {
      const auto& r = results[idx];
      if (!r.ok) {
        std::printf(" %11s", "FAILED");
        continue;
      }
      const double tput =
          static_cast<double>(r.channels[0].second.fwdTransfers) /
          static_cast<double>(r.cycles);
      std::printf(" %6.3f/%-4.0f", tput, r.metrics[0].second);
    }
    std::printf("\n");
  }

  std::printf("\nreference: tput = 1/(1+missrate); a demand cycle is exactly the\n"
              "one-cycle misprediction penalty of §4's correction mechanism.\n"
              "The oracle row is the Shannon (Fig. 1c) performance bound.\n");
  return 0;
}
