// Reproduces §5.2 / Figure 7: the SECDED resilient adder.
//
// Paper claims: speculation removes the SECDED pipeline stage with *no*
// performance penalty when no errors occur; each detected error costs one
// replay cycle; area overhead (~36% on the protected stage) comes from the
// recovery EBs. This harness sweeps the soft-error rate and also checks the
// double-error detection path.
#include <cstdio>

#include "logic/secded.h"
#include "netlist/patterns.h"
#include "perf/area.h"
#include "sim/simulator.h"

using namespace esl;

int main() {
  std::printf("=== Figure 7: SECDED(72,64) resilient adder ===\n\n");

  const auto pipeRef = patterns::buildSecdedPipeline();
  const auto specRef = patterns::buildSecdedSpeculative();
  const auto areaPipe = perf::areaReport(pipeRef.nl);
  const auto areaSpec = perf::areaReport(specRef.nl);
  std::printf("area: pipelined %.0f, speculative %.0f (+%.0f%% on the stage; "
              "paper: ~36%%, recovery-EB dominated)\n\n",
              areaPipe.total, areaSpec.total,
              100.0 * (areaSpec.total - areaPipe.total) / areaPipe.total);

  std::printf("%-11s | %-21s | %-21s | %s\n", "", "SECDED stage (7a)",
              "speculative (7b)", "replays");
  std::printf("%-11s | %9s %11s | %9s %11s |\n", "flip-rate", "tput", "latency",
              "tput", "latency");
  for (const unsigned flip : {0u, 30u, 80u, 150u, 300u}) {
    patterns::SecdedConfig cfg;
    cfg.flipPermille = flip;

    auto pipe = patterns::buildSecdedPipeline(cfg);
    sim::Simulator sp(pipe.nl);
    sp.run(2000);

    auto spec = patterns::buildSecdedSpeculative(cfg);
    sim::Simulator ss(spec.nl);
    ss.run(2000);

    std::printf("%10.1f%% | %9.3f %11llu | %9.3f %11llu | %llu\n", flip / 10.0,
                sp.throughput(pipe.outChannel),
                static_cast<unsigned long long>(pipe.sink->transfers().front().cycle),
                ss.throughput(spec.outChannel),
                static_cast<unsigned long long>(spec.sink->transfers().front().cycle),
                static_cast<unsigned long long>(spec.shared->demandCycles()));
  }

  // Correctness: all sums equal golden (corrected) results despite injections.
  patterns::SecdedConfig cfg;
  cfg.flipPermille = 200;
  auto spec = patterns::buildSecdedSpeculative(cfg);
  sim::Simulator ss(spec.nl);
  ss.run(1500);
  const std::size_t checked = std::min<std::size_t>(1000, spec.sink->received());
  const auto golden = patterns::secdedGolden(cfg, checked);
  for (std::size_t i = 0; i < checked; ++i)
    if (spec.sink->transfers().at(i).data.toUint64() != golden[i]) {
      std::printf("\nMISMATCH at %zu\n", i);
      return 1;
    }
  std::printf("\nfunctional check: %zu/%zu sums correct at 20%% flip rate\n", checked,
              checked);

  // Double-error detection path (uncorrectable; flagged, not silently wrong).
  int doubles = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    BitVec code = logic::secdedEncode(BitVec(64, mix64(i, 42)));
    code.setBit(static_cast<unsigned>(mix64(i, 1) % 72),
                !code.bit(static_cast<unsigned>(mix64(i, 1) % 72)));
    unsigned p2 = static_cast<unsigned>(mix64(i, 2) % 72);
    if (p2 == mix64(i, 1) % 72) p2 = (p2 + 1) % 72;
    code.setBit(p2, !code.bit(p2));
    if (logic::secdedDecode(code).status == logic::SecdedStatus::kDoubleError)
      ++doubles;
  }
  std::printf("double-error detection: %d/500 two-bit corruptions flagged\n", doubles);
  std::printf("\npaper shape reproduced: no error-free penalty, one cycle per "
              "error, shallower pipeline\n");
  return doubles == 500 ? 0 : 1;
}
