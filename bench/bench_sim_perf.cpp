// Google-benchmark microbenchmarks of the toolkit itself: cycle-accurate
// simulation rate on the paper systems, transformation cost ("all
// transformations are local they are very fast to compute"), timing analysis
// and explicit-state exploration.
#include <benchmark/benchmark.h>

#include "elastic/endpoints.h"
#include "netlist/patterns.h"
#include "perf/timing.h"
#include "sim/simulator.h"
#include "transform/transform.h"
#include "verify/checker.h"

using namespace esl;

namespace {

void BM_SimulateFig1Speculative(benchmark::State& state) {
  auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative);
  sim::Simulator s(sys.nl, {.checkProtocol = false});
  for (auto _ : state) s.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateFig1Speculative);

void BM_SimulateFig1WithProtocolMonitor(benchmark::State& state) {
  auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative);
  sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = false});
  for (auto _ : state) s.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateFig1WithProtocolMonitor);

void BM_SimulateSecdedSpeculative(benchmark::State& state) {
  auto sys = patterns::buildSecdedSpeculative();
  sim::Simulator s(sys.nl, {.checkProtocol = false});
  for (auto _ : state) s.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateSecdedSpeculative);

void BM_SpeculationRecipe(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto sys = patterns::buildFig1(patterns::Fig1Variant::kNonSpeculative);
    const auto cands = transform::findSpeculationCandidates(sys.nl);
    state.ResumeTiming();
    transform::speculate(sys.nl, cands[0].mux, cands[0].func,
                         std::make_unique<sched::LastServedScheduler>(2));
    benchmark::DoNotOptimize(sys.nl.nodeIds());
  }
}
BENCHMARK(BM_SpeculationRecipe);

void BM_TimingAnalysis(benchmark::State& state) {
  auto sys = patterns::buildSecdedSpeculative();
  for (auto _ : state) {
    auto report = perf::analyzeTiming(sys.nl);
    benchmark::DoNotOptimize(report.cycleTime);
  }
}
BENCHMARK(BM_TimingAnalysis);

void BM_ExplicitStateExploration(benchmark::State& state) {
  for (auto _ : state) {
    Netlist nl;
    auto& src = nl.make<NondetSource>("env.src", 1);
    auto& buf = nl.make<ElasticBuffer>("buf", 1);
    auto& sink = nl.make<NondetSink>("env.sink", 1, 2, true);
    nl.connect(src, 0, buf, 0, "up");
    nl.connect(buf, 0, sink, 0, "down");
    verify::ModelChecker mc(nl);
    auto result = mc.explore();
    benchmark::DoNotOptimize(result.states);
  }
}
BENCHMARK(BM_ExplicitStateExploration);

}  // namespace

BENCHMARK_MAIN();
