// Google-benchmark microbenchmarks of the toolkit itself: cycle-accurate
// simulation rate on the paper systems, transformation cost ("all
// transformations are local they are very fast to compute"), timing analysis
// and explicit-state exploration.
//
// The simulation benchmarks take a kernel argument (0 = dense sweep,
// 1 = event-driven worklist) so the speedup of the sparse kernel is tracked
// per checkout; `cmake --build build --target bench` records the results as
// machine-readable JSON in build/BENCH_sim.json.
#include <benchmark/benchmark.h>

#include "elastic/endpoints.h"
#include "netlist/patterns.h"
#include "perf/timing.h"
#include "sim/farm.h"
#include "sim/simulator.h"
#include "transform/transform.h"
#include "verify/checker.h"

using namespace esl;

namespace {

SimContext::SettleKernel kernelArg(const benchmark::State& state) {
  return state.range(0) == 0 ? SimContext::SettleKernel::kSweep
                             : SimContext::SettleKernel::kEventDriven;
}

void BM_SimulateFig1Speculative(benchmark::State& state) {
  auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative);
  sim::Simulator s(sys.nl, {.checkProtocol = false, .kernel = kernelArg(state)});
  for (auto _ : state) s.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateFig1Speculative)->ArgName("kernel")->Arg(0)->Arg(1);

void BM_SimulateFig1WithProtocolMonitor(benchmark::State& state) {
  auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative);
  sim::Simulator s(sys.nl, {.checkProtocol = true,
                            .throwOnViolation = false,
                            .kernel = kernelArg(state)});
  for (auto _ : state) s.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateFig1WithProtocolMonitor)->ArgName("kernel")->Arg(0)->Arg(1);

void BM_SimulateSecdedSpeculative(benchmark::State& state) {
  auto sys = patterns::buildSecdedSpeculative();
  sim::Simulator s(sys.nl, {.checkProtocol = false, .kernel = kernelArg(state)});
  for (auto _ : state) s.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateSecdedSpeculative)->ArgName("kernel")->Arg(0)->Arg(1);

void BM_SimulateKernelCrossCheck(benchmark::State& state) {
  // Both kernels every cycle + comparison: the cost ceiling of paranoia mode.
  auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative);
  sim::Simulator s(sys.nl, {.checkProtocol = false, .crossCheckKernels = true});
  for (auto _ : state) s.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateKernelCrossCheck);

void BM_SimFarmSchedulerSweep(benchmark::State& state) {
  // Multi-seed Monte Carlo sweep of the Fig. 1(d) loop across worker threads.
  const unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    sim::SimFarm farm(
        [](const sim::SimFarm::Task& task, sim::SimFarm::Instance& inst) {
          patterns::Fig1Config cfg;
          cfg.takenPermille = static_cast<unsigned>(task.config);
          auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative, cfg);
          inst.nl = std::move(sys.nl);
          inst.watch.emplace_back("loop", sys.loopChannel);
        },
        {.checkProtocol = false});
    for (std::uint64_t seed = 1; seed <= 16; ++seed)
      farm.add({.seed = seed, .cycles = 500, .config = 300});
    const auto results = farm.run(threads);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * 16 * 500);
}
BENCHMARK(BM_SimFarmSchedulerSweep)->ArgName("threads")->Arg(1)->Arg(4);

void BM_SpeculationRecipe(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto sys = patterns::buildFig1(patterns::Fig1Variant::kNonSpeculative);
    const auto cands = transform::findSpeculationCandidates(sys.nl);
    state.ResumeTiming();
    transform::speculate(sys.nl, cands[0].mux, cands[0].func,
                         std::make_unique<sched::LastServedScheduler>(2));
    benchmark::DoNotOptimize(sys.nl.nodeIds());
  }
}
BENCHMARK(BM_SpeculationRecipe);

void BM_TimingAnalysis(benchmark::State& state) {
  auto sys = patterns::buildSecdedSpeculative();
  for (auto _ : state) {
    auto report = perf::analyzeTiming(sys.nl);
    benchmark::DoNotOptimize(report.cycleTime);
  }
}
BENCHMARK(BM_TimingAnalysis);

void BM_ExplicitStateExploration(benchmark::State& state) {
  for (auto _ : state) {
    Netlist nl;
    auto& src = nl.make<NondetSource>("env.src", 1);
    auto& buf = nl.make<ElasticBuffer>("buf", 1);
    auto& sink = nl.make<NondetSink>("env.sink", 1, 2, true);
    nl.connect(src, 0, buf, 0, "up");
    nl.connect(buf, 0, sink, 0, "down");
    verify::ModelChecker mc(nl);
    auto result = mc.explore();
    benchmark::DoNotOptimize(result.states);
  }
}
BENCHMARK(BM_ExplicitStateExploration);

}  // namespace

BENCHMARK_MAIN();
