// Scale benchmark: generated netlists at 1k/10k/100k nodes through both
// settle kernels, plus a SimFarm multi-seed grid and a multicore smoke test.
//
// The paper's 10-node micro-netlists hide the event kernel's O(active)
// advantage behind fixed per-cycle work; this harness makes the separation
// visible. Synthetic topologies (src/netlist/synth.*) are run with sparse
// token injection — a few tokens in flight in a huge quiet graph — which is
// the traffic shape of a production system at partial load: the sweep kernel
// pays O(nodes x depth) every cycle regardless, the event kernel pays only
// for the nodes a token actually touches (settle AND clock edge).
//
// Modes:
//   bench_scale [--out FILE] [--quick]   measure, print a table, write JSON
//   bench_scale --check                  also fail (exit 1) unless the event
//                                        kernel is >=5x the sweep kernel on a
//                                        >=10k-node sparse netlist
//   bench_scale --farm-smoke             SimFarm determinism + wall-clock
//                                        sanity across 1..N worker threads
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "netlist/synth.h"
#include "sim/farm.h"
#include "sim/simulator.h"

using namespace esl;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Row {
  std::string name;
  double nsPerCycle = 0.0;
  std::uint64_t cycles = 0;
  std::size_t nodes = 0;
  std::uint64_t received = 0;
};

/// Runs `reps` timed windows of `cycles` simulation cycles each (after a
/// warmup so caches and the kernel's retained state are steady) and reports
/// the fastest window — min-of-N is what keeps the CI regression gate from
/// tripping on scheduler noise on shared runners.
///
/// Channel statistics stay ON (the SimOptions default): with the SignalBoard
/// they are a word-parallel bitplane sweep, cheap enough that the benchmark
/// reports what a real measurement run pays.
Row measure(const synth::SynthConfig& cfg, SimContext::SettleKernel kernel,
            std::uint64_t cycles, unsigned reps = 3, unsigned shards = 1,
            std::uint64_t warmup = 0,
            SimContext::Backend backend = SimContext::Backend::kInterpreted) {
  synth::SynthSystem sys = synth::build(cfg);
  sim::Simulator s(sys.nl, {.checkProtocol = false,
                            .kernel = kernel,
                            .shards = shards,
                            .backend = backend});
  s.run(warmup != 0 ? warmup : cycles / 10 + 1);
  double best = 0.0;
  for (unsigned rep = 0; rep < reps; ++rep) {
    const double t0 = now();
    s.run(cycles);
    const double dt = now() - t0;
    if (rep == 0 || dt < best) best = dt;
  }
  Row r;
  r.name = std::string("scale/") + synth::describe(cfg) + "/" +
           (backend == SimContext::Backend::kCompiled ? "compiled"
            : kernel == SimContext::SettleKernel::kSweep ? "sweep"
                                                         : "event");
  if (shards > 1) r.name += "/shards" + std::to_string(shards);
  r.nsPerCycle = best * 1e9 / static_cast<double>(cycles);
  r.cycles = cycles;
  r.nodes = sys.nodeCount;
  r.received = sys.mainSink != nullptr ? sys.mainSink->received() : 0;
  return r;
}

/// A derived ratio reported into the JSON under an explicit key (speedups are
/// reported, never gated — only ns_per_cycle rows feed the regression gate).
struct Speedup {
  std::string name;
  std::string key;
  double ratio;
};

void writeJson(const std::string& path, const std::vector<Row>& rows,
               const std::vector<Speedup>& speedups) {
  std::ofstream os(path);
  os << "{\n  \"benchmarks\": [\n";
  bool first = true;
  for (const Row& r : rows) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"name\": \"" << r.name << "\", \"ns_per_cycle\": " << r.nsPerCycle
       << ", \"cycles\": " << r.cycles << ", \"nodes\": " << r.nodes
       << ", \"received\": " << r.received << "}";
  }
  for (const auto& [name, key, ratio] : speedups) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"name\": \"" << name << "\", \"" << key << "\": " << ratio << "}";
  }
  os << "\n  ]\n}\n";
}

/// SimFarm grid over generated netlists: seeds x topologies, merged by label.
double farmGrid(unsigned threads, std::uint64_t seeds, std::size_t nodes,
                std::uint64_t cycles, sim::SimFarm::Merged* merged) {
  sim::SimFarm farm(
      [nodes](const sim::SimFarm::Task& task, sim::SimFarm::Instance& inst) {
        synth::SynthConfig cfg;
        cfg.topology = task.config == 0 ? synth::Topology::kPipeline
                                        : synth::Topology::kRandomDag;
        cfg.targetNodes = nodes;
        cfg.seed = task.seed;
        cfg.injectPeriod = 16;
        synth::SynthSystem sys = synth::build(cfg);
        TokenSink* sink = sys.mainSink;
        inst.nl = std::move(sys.nl);
        inst.harvest = [sink](sim::Simulator&,
                              std::vector<std::pair<std::string, double>>& m) {
          m.emplace_back("received", static_cast<double>(sink->received()));
        };
      },
      {.checkProtocol = false, .trackChannelStats = false});
  for (std::uint64_t config = 0; config < 2; ++config)
    farm.addSeedSweep(seeds, /*seed0=*/1, cycles, config);
  const double t0 = now();
  const auto results = farm.run(threads);
  const double dt = now() - t0;
  if (merged != nullptr) *merged = sim::SimFarm::merge(results);
  return dt;
}

int farmSmoke() {
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("=== SimFarm multicore smoke (hardware_concurrency=%u) ===\n", hw);
  sim::SimFarm::Merged ref;
  const double t1 = farmGrid(1, 6, 600, 500, &ref);
  std::printf("%8s %10s %14s %12s\n", "threads", "wall (s)", "speedup vs 1t",
              "sum received");
  std::printf("%8u %10.3f %14s %12.0f\n", 1u, t1, "1.00",
              ref.metricTotals.at("received"));
  bool ok = true;
  for (unsigned threads : {2u, 4u}) {
    sim::SimFarm::Merged got;
    const double t = farmGrid(threads, 6, 600, 500, &got);
    const bool same = got.metricTotals == ref.metricTotals &&
                      got.totalCycles == ref.totalCycles &&
                      got.failures == ref.failures;
    std::printf("%8u %10.3f %14.2f %12.0f  %s\n", threads, t, t1 / t,
                got.metricTotals.at("received"),
                same ? "bit-identical" : "MISMATCH");
    ok = ok && same;
  }
  if (!ok) {
    std::printf("FAIL: farm results differ across thread counts\n");
    return 1;
  }
  if (ref.metricTotals.at("received") <= 0.0) {
    std::printf("FAIL: no tokens delivered — the grid is not exercising anything\n");
    return 1;
  }
  std::printf("determinism OK; speedup is advisory (machine-dependent)\n");
  return 0;
}

/// Sharded tier: ONE netlist split across worker lanes (SimContext::setShards)
/// at 1/2/hw-thread counts, sparse and saturated traffic. Per-thread speedup
/// goes into the JSON as `speedup_vs_1t` (reported, never gated — wall-clock
/// parallel speedup is machine-dependent; bit-identity is what CI gates, via
/// shardedIdentityCheck() and the sharded-kernel test label).
void shardedTier(const std::vector<std::size_t>& nodeTiers, bool quick,
                 std::vector<Row>& rows, std::vector<Speedup>& speedups) {
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<unsigned> shardCounts{1, 2};
  if (hw > 2) shardCounts.push_back(hw);
  std::printf("\n=== sharded single-netlist tier (hardware_concurrency=%u) ===\n", hw);
  std::printf("%-52s %8s %12s %9s\n", "netlist", "shards", "ns/cyc", "vs 1t");
  for (const std::size_t nodes : nodeTiers) {
    for (const unsigned inject : {64u, 1u}) {
      synth::SynthConfig cfg;
      cfg.topology = synth::Topology::kPipeline;
      cfg.targetNodes = nodes;
      cfg.seed = 1;
      cfg.injectPeriod = inject;
      // Saturated traffic is where sharding pays (every node active each
      // cycle), but that only materializes once the pipeline has filled:
      // warm up deep enough that the measured window carries real per-cycle
      // work. These rows are reported-not-gated, so two reps keep the tier
      // affordable.
      const std::uint64_t cycles =
          (inject == 1 ? 20000000ULL : 200000000ULL) / (nodes * (quick ? 4 : 1));
      const std::uint64_t warmup =
          inject == 1 ? std::min<std::uint64_t>(nodes, quick ? 5000 : 20000) : 0;
      double oneThread = 0.0;
      for (const unsigned shards : shardCounts) {
        Row r = measure(cfg, SimContext::SettleKernel::kEventDriven,
                        cycles < 50 ? 50 : cycles, 2, shards, warmup);
        if (shards == 1) oneThread = r.nsPerCycle;
        const double speedup = oneThread / r.nsPerCycle;
        if (shards > 1)
          speedups.push_back({r.name + "/speedup_vs_1t", "event_vs_sweep", speedup});
        std::printf("%-52s %8u %12.0f %8.2fx\n", synth::describe(cfg).c_str(),
                    shards, r.nsPerCycle, speedup);
        rows.push_back(std::move(r));
      }
    }
  }
}

/// CI gate (--check): packState bit-identity of the sharded cycle mode
/// against the serial event kernel, per shard count, on a saturated netlist.
bool shardedIdentityCheck() {
  synth::SynthConfig cfg;
  cfg.topology = synth::Topology::kRandomDag;
  cfg.targetNodes = 3000;
  cfg.seed = 5;
  cfg.injectPeriod = 1;
  synth::SynthSystem ref = synth::build(cfg);
  sim::Simulator sref(ref.nl, {.checkProtocol = false});
  sref.run(400);
  const auto want = sref.ctx().packState();
  const auto received = ref.mainSink != nullptr ? ref.mainSink->received() : 0;
  for (const unsigned shards : {2u, 4u, 8u}) {
    synth::SynthSystem sys = synth::build(cfg);
    sim::Simulator s(sys.nl, {.checkProtocol = false, .shards = shards});
    s.run(400);
    if (s.ctx().packState() != want ||
        (sys.mainSink != nullptr && sys.mainSink->received() != received)) {
      std::printf("CHECK FAILED: sharded run (%u shards) diverged from the "
                  "serial event kernel on %s\n",
                  shards, synth::describe(cfg).c_str());
      return false;
    }
  }
  std::printf("CHECK OK: sharded cycles bit-identical to serial for 2/4/8 "
              "shards on %s\n",
              synth::describe(cfg).c_str());
  return true;
}

/// CI gate (--check): packState bit-identity of `--backend compiled
/// --shards N` against the serial interpreted reference (which the serial
/// compiled backend is separately gated against), for every tested shard
/// count. Interior nodes run specialized arena ops over shard-sliced state
/// records while boundary-adjacent nodes take the staging-aware interpreted
/// path — this gate pins that composition end to end.
bool compiledShardedIdentityCheck() {
  synth::SynthConfig cfg;
  cfg.topology = synth::Topology::kRandomDag;
  cfg.targetNodes = 3000;
  cfg.seed = 5;
  cfg.injectPeriod = 1;
  synth::SynthSystem ref = synth::build(cfg);
  sim::Simulator sref(ref.nl, {.checkProtocol = false});
  sref.run(400);
  const auto want = sref.ctx().packState();
  const auto received = ref.mainSink != nullptr ? ref.mainSink->received() : 0;
  for (const unsigned shards : {1u, 2u, 8u}) {
    synth::SynthSystem sys = synth::build(cfg);
    sim::Simulator s(sys.nl, {.checkProtocol = false,
                              .shards = shards,
                              .backend = SimContext::Backend::kCompiled});
    s.run(400);
    if (s.ctx().packState() != want ||
        (sys.mainSink != nullptr && sys.mainSink->received() != received)) {
      std::printf("CHECK FAILED: compiled backend with %u shard(s) diverged "
                  "from the serial reference on %s\n",
                  shards, synth::describe(cfg).c_str());
      return false;
    }
  }
  std::printf("CHECK OK: compiled x sharded bit-identical to serial for 1/2/8 "
              "shards on %s\n",
              synth::describe(cfg).c_str());
  return true;
}

/// CI gate (--check): packState bit-identity of the compiled bytecode backend
/// against the interpreted event kernel, across topologies and traffic shapes.
bool compiledIdentityCheck() {
  for (const synth::Topology topo :
       {synth::Topology::kPipeline, synth::Topology::kRandomDag}) {
    for (const unsigned inject : {64u, 1u}) {
      synth::SynthConfig cfg;
      cfg.topology = topo;
      cfg.targetNodes = 3000;
      cfg.seed = 5;
      cfg.injectPeriod = inject;
      synth::SynthSystem ref = synth::build(cfg);
      sim::Simulator sref(ref.nl, {.checkProtocol = false});
      sref.run(400);
      const auto want = sref.ctx().packState();
      const auto received =
          ref.mainSink != nullptr ? ref.mainSink->received() : 0;
      synth::SynthSystem sys = synth::build(cfg);
      sim::Simulator s(sys.nl, {.checkProtocol = false,
                                .backend = SimContext::Backend::kCompiled});
      s.run(400);
      if (s.ctx().packState() != want ||
          (sys.mainSink != nullptr && sys.mainSink->received() != received)) {
        std::printf("CHECK FAILED: compiled backend diverged from the "
                    "interpreted event kernel on %s\n",
                    synth::describe(cfg).c_str());
        return false;
      }
    }
  }
  std::printf("CHECK OK: compiled backend bit-identical to interpreted across "
              "topologies and traffic shapes\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string outPath = "BENCH_scale.json";
  bool quick = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--farm-smoke") == 0) {
      return farmSmoke();
    } else {
      std::printf("usage: bench_scale [--out FILE] [--quick] [--check] "
                  "[--farm-smoke]\n");
      return 2;
    }
  }

  struct Tier {
    std::size_t nodes;
    std::uint64_t eventCycles, sweepCycles;
  };
  // Cycle budgets sized so every timed window is well above the timer/noise
  // floor (>=tens of ms): the sweep kernel's per-cycle cost grows linearly
  // with nodes, the event kernel's does not (that asymmetry is the result).
  std::vector<Tier> tiers = {{1000, 50000, 3000}, {10000, 10000, 300},
                             {100000, 20000, 100}};

  const synth::Topology topologies[] = {synth::Topology::kPipeline,
                                        synth::Topology::kRandomDag};
  std::vector<Row> rows;
  std::vector<Speedup> speedups;
  double check10kSparse = 0.0;
  double check10kSparseCompiled = 0.0;

  std::printf("=== scale benchmark: sweep vs event vs compiled on generated netlists ===\n");
  std::printf("%-44s %8s %12s %12s %12s %9s %9s\n", "netlist", "nodes",
              "sweep ns/cyc", "event ns/cyc", "cmpld ns/cyc", "ev/sweep",
              "cmpld/ev");
  for (const synth::Topology topo : topologies) {
    for (const Tier& tier : tiers) {
      for (const unsigned inject : {64u, 1u}) {
        // Saturated runs at 100k nodes would spend minutes in the sweep
        // kernel for no extra information; the sparse point is the story.
        if (inject == 1 && tier.nodes >= 100000) continue;
        // Quick runs skip the 100k sweep (linear per-cycle cost, minutes of
        // wall clock, and the event-vs-sweep gate is already decided at 10k)
        // but KEEP the 100k event+compiled pair: 100k nodes is where the
        // interpreted kernel's heap-scattered node state decisively misses
        // cache, so that pair anchors the compiled-vs-interpreted gate at
        // its most noise-robust margin.
        const bool skipSweep = quick && tier.nodes >= 100000;
        // At 100k the default cycles/10 warmup still sits in the filling
        // transient (the pipeline is ~6k stages deep), and min-of-N would
        // pick the emptiest window — understating in-flight state and with
        // it the ratio the gate reasons about. Warm past fill so every
        // window measures the filled steady state.
        const std::uint64_t warmup = tier.nodes >= 100000 ? tier.nodes / 8 : 0;
        synth::SynthConfig cfg;
        cfg.topology = topo;
        cfg.targetNodes = tier.nodes;
        cfg.seed = 1;
        cfg.injectPeriod = inject;
        Row sweep;
        if (!skipSweep)
          sweep = measure(cfg, SimContext::SettleKernel::kSweep, tier.sweepCycles);
        const Row event = measure(cfg, SimContext::SettleKernel::kEventDriven,
                                  tier.eventCycles, 3, 1, warmup);
        const Row compiled =
            measure(cfg, SimContext::SettleKernel::kEventDriven, tier.eventCycles,
                    3, 1, warmup, SimContext::Backend::kCompiled);
        const double compiledSpeedup = event.nsPerCycle / compiled.nsPerCycle;
        rows.push_back(event);
        rows.push_back(compiled);
        speedups.push_back(
            {"scale/" + synth::describe(cfg) + "/compiled-speedup",
             "compiled_vs_event", compiledSpeedup});
        if (skipSweep) {
          std::printf("%-44s %8zu %12s %12.0f %12.0f %9s %8.2fx\n",
                      synth::describe(cfg).c_str(), event.nodes, "-",
                      event.nsPerCycle, compiled.nsPerCycle, "-",
                      compiledSpeedup);
        } else {
          const double speedup = sweep.nsPerCycle / event.nsPerCycle;
          rows.push_back(sweep);
          speedups.push_back(
              {"scale/" + synth::describe(cfg) + "/speedup", "event_vs_sweep",
               speedup});
          std::printf("%-44s %8zu %12.0f %12.0f %12.0f %8.1fx %8.2fx\n",
                      synth::describe(cfg).c_str(), sweep.nodes,
                      sweep.nsPerCycle, event.nsPerCycle, compiled.nsPerCycle,
                      speedup, compiledSpeedup);
          if (inject == 64 && tier.nodes >= 10000 && speedup > check10kSparse)
            check10kSparse = speedup;
        }
        if (inject == 64 && tier.nodes >= 10000 &&
            compiledSpeedup > check10kSparseCompiled)
          check10kSparseCompiled = compiledSpeedup;
      }
    }
  }

  // Sharded single-netlist tier: 10k (and 100k in full runs) nodes.
  {
    std::vector<std::size_t> shardNodeTiers{10000};
    if (!quick) shardNodeTiers.push_back(100000);
    shardedTier(shardNodeTiers, quick, rows, speedups);
  }

  // SimFarm grid: the same generator feeding the Monte-Carlo runner.
  sim::SimFarm::Merged merged;
  const double farmWall = farmGrid(0, 4, 600, quick ? 300u : 800u, &merged);
  std::printf("farm grid: %llu tasks, %llu cycles total, %.2fs wall, "
              "%.0f tokens received\n",
              static_cast<unsigned long long>(merged.tasks),
              static_cast<unsigned long long>(merged.totalCycles), farmWall,
              merged.metricTotals.at("received"));

  writeJson(outPath, rows, speedups);
  std::printf("wrote %s\n", outPath.c_str());

  if (check) {
    if (check10kSparse < 5.0) {
      std::printf("CHECK FAILED: event kernel only %.1fx vs sweep on >=10k-node "
                  "sparse netlists (need >=5x)\n",
                  check10kSparse);
      return 1;
    }
    std::printf("CHECK OK: event kernel %.1fx vs sweep on >=10k-node sparse "
                "netlists\n",
                check10kSparse);
    // Hard floor at 1.8x — with per-node state packed into the VM-owned
    // arena, a specialized op streams its op/port/state records instead of
    // chasing into heap node objects. The win scales with working-set size:
    // at 10k nodes the interpreted kernel's node state is still largely
    // cache-resident and the measured ratio is ~1.2-1.6x; at 100k nodes the
    // scattered node objects miss cache on nearly every touch and the
    // filled-steady-state pipeline tier measures ~2.6x (random DAGs ~1.6x).
    // The gate takes the best >=10k-node sparse tier — the 100k
    // event+compiled pair runs even under --quick for exactly this reason —
    // so a drop below 1.8x means the arena stopped paying at any scale
    // (e.g. a regression reintroduced node-object loads on the hot path).
    // The floor sits well below the measured best — not at it — because CI
    // runners are too noisy to pin an optimization ratio exactly; the ratio
    // itself is reported in the JSON for tracking.
    if (check10kSparseCompiled < 1.8) {
      std::printf("CHECK FAILED: compiled backend only %.2fx vs interpreted "
                  "event kernel on >=10k-node sparse netlists (need >=1.8x)\n",
                  check10kSparseCompiled);
      return 1;
    }
    std::printf("CHECK OK: compiled backend %.2fx vs interpreted event kernel "
                "on >=10k-node sparse netlists (floor 1.8x)\n",
                check10kSparseCompiled);
    if (!shardedIdentityCheck()) return 1;
    if (!compiledIdentityCheck()) return 1;
    if (!compiledShardedIdentityCheck()) return 1;
  }
  return 0;
}
