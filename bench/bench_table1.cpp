// Reproduces Table 1 of the paper: a 7-cycle trace of the Fig. 1(d) shared
// module + early-evaluation mux with a round-robin scheduler, showing correct
// predictions (anti-token kills the unused token) and mispredictions (the mux
// stalls, the demand corrects the scheduler one cycle later).
//
// Known erratum: the published table shows EBin = 'G' at cycle 6, which
// contradicts its own Fout0 = 'F' and Sel = '0' rows (the mux must output the
// channel-0 token). This harness prints 'F' and flags the difference.
#include <cstdio>
#include <string>
#include <vector>

#include "netlist/patterns.h"
#include "sim/simulator.h"
#include "sim/trace.h"

using namespace esl;

int main() {
  std::printf("=== Table 1: example trace of the Fig. 1(d) system ===\n\n");

  auto sys = patterns::buildTable1({0, 1, 1, 0, 0});
  sim::TraceRecorder trace;
  trace.addChannel(sys.fin0, "Fin0");
  trace.addChannel(sys.fout0, "Fout0");
  trace.addChannel(sys.fin1, "Fin1");
  trace.addChannel(sys.fout1, "Fout1");
  trace.addSignal("Sel", [&sys](SimContext& ctx) {
    const ConstSig s = ctx.sig(sys.sel);
    return s.vf() ? std::to_string(s.dataLow64()) : "*";
  });
  trace.addSignal("Sched", [&sys](SimContext& ctx) {
    return std::to_string(sys.shared->prediction(ctx));
  });
  trace.addChannel(sys.ebin, "EBin");

  sim::Simulator sim(sys.nl, {.checkProtocol = true, .throwOnViolation = true});
  sim.attachTrace(&trace);
  sim.run(7);

  std::printf("%s\n", trace.render().c_str());

  // Cell-by-cell comparison against the published table.
  const std::vector<std::vector<std::string>> paper = {
      {"A", "-", "C", "-", "E", "F", "F"},  // Fin0
      {"A", "-", "C", "-", "E", "*", "F"},  // Fout0
      {"-", "B", "D", "D", "-", "G", "-"},  // Fin1
      {"-", "B", "*", "D", "-", "G", "-"},  // Fout1
      {"0", "1", "1", "1", "0", "0", "0"},  // Sel
      {"0", "1", "0", "1", "0", "1", "0"},  // Sched
      {"A", "B", "*", "D", "E", "*", "G"},  // EBin (paper; 'G' is the erratum)
  };
  int match = 0, mismatch = 0;
  for (std::size_t row = 0; row < paper.size(); ++row) {
    for (std::uint64_t cyc = 0; cyc < 7; ++cyc) {
      if (trace.cell(row, cyc) == paper[row][cyc]) {
        ++match;
      } else {
        ++mismatch;
        std::printf("cell %s@%llu: paper '%s', reproduced '%s'%s\n",
                    trace.rowLabel(row).c_str(),
                    static_cast<unsigned long long>(cyc), paper[row][cyc].c_str(),
                    trace.cell(row, cyc).c_str(),
                    (trace.rowLabel(row) == "EBin" && cyc == 6)
                        ? "  <- published table's internal inconsistency"
                        : "");
      }
    }
  }
  std::printf("\n%d/49 cells match the published table", match);
  if (mismatch == 1)
    std::printf(" (the single difference is the documented EBin@6 erratum)");
  std::printf("\n");

  // The semantic content of the trace:
  std::printf("\nmux output (transfers): ");
  for (const auto& t : sys.sink->transfers())
    std::printf("cycle %llu: %llu  ", static_cast<unsigned long long>(t.cycle),
                static_cast<unsigned long long>(t.data.toUint64()));
  std::printf("\nmispredictions (demand cycles): %llu — at cycles 2 and 5, as in "
              "the paper\n",
              static_cast<unsigned long long>(sys.shared->demandCycles()));
  return mismatch <= 1 ? 0 : 1;
}
