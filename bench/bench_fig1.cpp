// Reproduces Figure 1 of the paper: the four micro-architectural variants of
// the branch loop, with cycle time (unit gates), throughput, effective cycle
// time and area — plus the prediction-accuracy sweep that quantifies when
// speculation matches Shannon decomposition at roughly half the F area.
//
// Expected shape (paper §2):
//   (a) non-speculative : slow clock, full throughput;
//   (b) bubble inserted : fast clock but throughput 1/2 -> "no real gain";
//   (c) Shannon         : fast clock, full throughput, duplicated F;
//   (d) speculation     : fast clock, throughput ~ prediction accuracy,
//                         one shared F.
#include <cstdio>

#include "netlist/patterns.h"
#include "perf/area.h"
#include "perf/throughput.h"
#include "perf/timing.h"
#include "sim/simulator.h"

using namespace esl;

namespace {

struct Row {
  const char* label;
  double cycle, tput, area, bound;
};

Row measure(const char* label, patterns::Fig1Variant variant,
            const patterns::Fig1Config& cfg) {
  auto sys = patterns::buildFig1(variant, cfg);
  sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = true});
  s.run(2000);
  return {label, perf::analyzeTiming(sys.nl).cycleTime, s.throughput(sys.loopChannel),
          perf::areaReport(sys.nl).total, perf::throughputBound(sys.nl).bound};
}

}  // namespace

int main() {
  std::printf("=== Figure 1: speculation in a branch loop ===\n\n");
  patterns::Fig1Config cfg;
  cfg.takenPermille = 100;  // 10%-taken branch; scheduler predicts not-taken
  cfg.scheduler = patterns::Fig1Scheduler::kStatic0;

  std::printf("%-20s %8s %8s %8s %10s %8s\n", "variant", "cycle", "tput", "bound",
              "eff.cyc", "area");
  const Row rows[] = {
      measure("(a) non-speculative", patterns::Fig1Variant::kNonSpeculative, cfg),
      measure("(b) bubble inserted", patterns::Fig1Variant::kBubble, cfg),
      measure("(c) Shannon", patterns::Fig1Variant::kShannon, cfg),
      measure("(d) speculation", patterns::Fig1Variant::kSpeculative, cfg),
  };
  for (const Row& r : rows)
    std::printf("%-20s %8.1f %8.3f %8.3f %10.2f %8.1f\n", r.label, r.cycle, r.tput,
                r.bound, perf::effectiveCycleTime(r.cycle, r.tput), r.area);

  std::printf(
      "\nshape checks: (b) gains nothing (eff.cycle %.1f vs (a) %.1f);\n"
      "(d) is within %.0f%% of (c)'s performance with %.0f fewer area units\n",
      perf::effectiveCycleTime(rows[1].cycle, rows[1].tput),
      perf::effectiveCycleTime(rows[0].cycle, rows[0].tput),
      100.0 * (perf::effectiveCycleTime(rows[3].cycle, rows[3].tput) /
                   perf::effectiveCycleTime(rows[2].cycle, rows[2].tput) -
               1.0),
      rows[2].area - rows[3].area);

  // Prediction-accuracy sweep for variant (d).
  std::printf("\n--- (d) throughput vs prediction accuracy (static0 scheduler) ---\n");
  std::printf("%-14s %12s %12s %14s\n", "taken-rate", "accuracy", "tput",
              "eff.cycle(d)");
  for (const unsigned taken : {0u, 50u, 100u, 200u, 300u, 500u}) {
    patterns::Fig1Config c = cfg;
    c.takenPermille = taken;
    auto sys = patterns::buildFig1(patterns::Fig1Variant::kSpeculative, c);
    sim::Simulator s(sys.nl);
    s.run(2000);
    const double tput = s.throughput(sys.loopChannel);
    const double cyc = perf::analyzeTiming(sys.nl).cycleTime;
    std::printf("%11.1f%% %11.1f%% %12.3f %14.2f\n", taken / 10.0,
                100.0 - taken / 10.0, tput, perf::effectiveCycleTime(cyc, tput));
  }
  std::printf("\nwith accurate prediction, (d) approaches (c) at half the F area\n");
  return 0;
}
