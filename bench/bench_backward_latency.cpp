// Ablation for §4.1/§4.3: the backward latency of the recovery buffers.
//
// "This anti-token propagates backwards reaching in1 in Lb cycles ... Thus,
// the backward latency of EBs can affect the overall system performance and
// become a bottleneck." (§4.1) — and Fig. 5's zero-backward-latency EB is the
// proposed remedy: "This implementation of EB can be used to reduce overhead
// of speculation."
//
// The harness builds the aligned speculative system with input EBs at the
// shared module and a recovery buffer of each kind between the shared module
// outputs and the early-evaluation mux, then measures loop throughput: the
// Lb=1 buffer delays every kill by an extra cycle, the Lb=0 buffer (Fig. 5)
// recovers most of it, at a small combinational control-delay cost.
#include <cstdio>

#include "elastic/buffer.h"
#include "elastic/eemux.h"
#include "elastic/endpoints.h"
#include "elastic/fork.h"
#include "elastic/shared.h"
#include "perf/timing.h"
#include "sim/simulator.h"

using namespace esl;

namespace {

enum class Recovery { kNone, kZeroLb, kEb };

struct System {
  Netlist nl;
  ChannelId out{};
  TokenSink* sink = nullptr;
};

/// One nondeterministic-looking (hash-driven) stream: the payload bit is the
/// select; copies feed both shared inputs, so everything is generation-
/// aligned as in Fig. 1(d).
System build(Recovery recovery, unsigned takenPermille) {
  System s;
  Netlist& nl = s.nl;
  auto& src = nl.make<TokenSource>(
      "src", 1, [takenPermille](std::uint64_t i) -> std::optional<BitVec> {
        return BitVec(1, hashChancePermille(i, takenPermille, 0xabc) ? 1 : 0);
      });
  auto& fork = nl.make<ForkNode>("fork", 1, 3);
  auto& in0 = nl.make<ElasticBuffer>("in0", 1);
  auto& in1 = nl.make<ElasticBuffer>("in1", 1);
  // Timeout scheduler: with recovery buffers between the shared module and
  // the mux, the misprediction demand is invisible to the scheduler (the EB
  // sits in between), so a purely demand-corrected scheduler would starve the
  // unpredicted channel. The eq. (1) leads-to obligation must come from the
  // scheduler itself: last-served prediction with a one-cycle stall timeout.
  auto& shared = nl.make<SharedModule>(
      "F", 2, 1, 1, [](const BitVec& x) { return x; },
      std::make_unique<sched::TimeoutScheduler>(2, 1), logic::Cost{4.0, 30.0});
  auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, 1);
  s.sink = &nl.make<TokenSink>("sink", 1);

  nl.connect(src, 0, fork, 0, "stem");
  nl.connect(fork, 0, in0, 0, "br0");
  nl.connect(fork, 1, in1, 0, "br1");
  nl.connect(in0, 0, shared, 0, "Fin0");
  nl.connect(in1, 0, shared, 1, "Fin1");

  // Select path latency matches the data path depth (input EB + recovery).
  auto connectData = [&](unsigned i, const std::string& name) {
    switch (recovery) {
      case Recovery::kNone:
        nl.connect(shared, i, mux, 1 + i, name);
        break;
      case Recovery::kZeroLb: {
        auto& r = nl.make<ElasticBuffer0>("rec" + std::to_string(i), 1);
        nl.connect(shared, i, r, 0, name);
        nl.connect(r, 0, mux, 1 + i, name + ".r");
        break;
      }
      case Recovery::kEb: {
        auto& r = nl.make<ElasticBuffer>("rec" + std::to_string(i), 1);
        nl.connect(shared, i, r, 0, name);
        nl.connect(r, 0, mux, 1 + i, name + ".r");
        break;
      }
    }
  };
  connectData(0, "Fout0");
  connectData(1, "Fout1");

  auto& selEb1 = nl.make<ElasticBuffer>("selEb1", 1);
  nl.connect(fork, 2, selEb1, 0, "selraw");
  if (recovery == Recovery::kNone) {
    nl.connect(selEb1, 0, mux, 0, "sel");
  } else {
    auto& selEb2 = nl.make<ElasticBuffer>("selEb2", 1);
    nl.connect(selEb1, 0, selEb2, 0, "sel.mid");
    nl.connect(selEb2, 0, mux, 0, "sel");
  }
  s.out = nl.connect(mux, 0, *s.sink, 0, "out");
  nl.validate();
  return s;
}

}  // namespace

int main() {
  std::printf("=== Section 4.3 ablation: recovery-buffer backward latency ===\n\n");
  std::printf("%-12s | %-28s | %-28s\n", "", "throughput", "cycle time");
  std::printf("%-12s | %8s %8s %9s | %8s %8s %9s\n", "taken-rate%", "none",
              "EB0(Lb=0)", "EB(Lb=1)", "none", "EB0", "EB");

  for (const unsigned taken : {0u, 100u, 300u, 500u}) {
    double tput[3], cyc[3];
    const Recovery kinds[] = {Recovery::kNone, Recovery::kZeroLb, Recovery::kEb};
    for (int k = 0; k < 3; ++k) {
      auto sys = build(kinds[k], taken);
      sim::Simulator s(sys.nl, {.checkProtocol = true, .throwOnViolation = true});
      s.run(3000);
      tput[k] = s.throughput(sys.out);
      cyc[k] = perf::analyzeTiming(sys.nl).cycleTime;
    }
    std::printf("%11.1f%% | %8.3f %8.3f %9.3f | %8.1f %8.1f %9.1f\n", taken / 10.0,
                tput[0], tput[1], tput[2], cyc[0], cyc[1], cyc[2]);
  }

  std::printf(
      "\nshape: the Lb=1 recovery buffer stalls subsequent tokens while the\n"
      "anti-token crawls back (throughput drop even at 0%% mispredicts); the\n"
      "Fig. 5 Lb=0 buffer lets kills rush through combinationally and recovers\n"
      "the loss, trading a slightly longer combinational control path.\n");
  return 0;
}
