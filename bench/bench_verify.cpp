// Reproduces the §4.2 verification campaign: "all elastic controllers have
// been verified ... the absence of deadlocks has been verified for any
// scheduler that complies with the leads-to property. In addition, it has
// been verified that all controllers comply with the SELF protocol."
//
// The paper used NuSMV/SMV; this harness runs the built-in explicit-state
// checker over the same controller compositions with nondeterministic
// (bounded-fair) environments and prints the property table. A negative
// control (starving scheduler) shows the checker actually bites.
#include <cstdio>

#include "elastic/buffer.h"
#include "elastic/eemux.h"
#include "elastic/endpoints.h"
#include "elastic/fork.h"
#include "elastic/func.h"
#include "elastic/shared.h"
#include "verify/checker.h"

using namespace esl;

namespace {

Netlist ebHarness(bool zeroLb, bool anti) {
  Netlist nl;
  auto& src = nl.make<NondetSource>("env.src", 1);
  Node* buf = zeroLb ? static_cast<Node*>(&nl.make<ElasticBuffer0>("buf", 1))
                     : static_cast<Node*>(&nl.make<ElasticBuffer>("buf", 1));
  auto& sink = nl.make<NondetSink>("env.sink", 1, 2, anti);
  nl.connect(src, 0, *buf, 0, "up");
  nl.connect(*buf, 0, sink, 0, "down");
  return nl;
}

Netlist forkHarness() {
  Netlist nl;
  auto& src = nl.make<NondetSource>("env.src", 1);
  auto& eb = nl.make<ElasticBuffer>("eb", 1);
  auto& fork = nl.make<ForkNode>("fork", 1, 2);
  auto& s0 = nl.make<NondetSink>("env.s0", 1, 2);
  auto& s1 = nl.make<NondetSink>("env.s1", 1, 2);
  nl.connect(src, 0, eb, 0, "up");
  nl.connect(eb, 0, fork, 0, "stem");
  nl.connect(fork, 0, s0, 0, "br0");
  nl.connect(fork, 1, s1, 0, "br1");
  return nl;
}

Netlist joinHarness() {
  Netlist nl;
  auto& a = nl.make<NondetSource>("env.a", 1);
  auto& b = nl.make<NondetSource>("env.b", 1);
  auto& join = nl.make<FuncNode>("join", std::vector<unsigned>{1, 1}, 1,
                                 [](const std::vector<BitVec>& in) {
                                   return in[0] & in[1];
                                 });
  auto& sink = nl.make<NondetSink>("env.sink", 1, 2);
  nl.connect(a, 0, join, 0, "ina");
  nl.connect(b, 0, join, 1, "inb");
  nl.connect(join, 0, sink, 0, "out");
  return nl;
}

Netlist sharedHarness(std::unique_ptr<sched::Scheduler> sched) {
  Netlist nl;
  auto& src = nl.make<NondetSource>("env.src", 1, 2, /*dataBits=*/1);
  auto& fork = nl.make<ForkNode>("fork", 1, 3);
  auto& shared = nl.make<SharedModule>(
      "shared", 2, 1, 1, [](const BitVec& x) { return x; }, std::move(sched));
  auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, 1);
  auto& sink = nl.make<NondetSink>("env.sink", 1, 2);
  nl.connect(src, 0, fork, 0, "stem");
  nl.connect(fork, 0, shared, 0, "in0");
  nl.connect(fork, 1, shared, 1, "in1");
  nl.connect(fork, 2, mux, 0, "sel");
  nl.connect(shared, 0, mux, 1, "out0");
  nl.connect(shared, 1, mux, 2, "out1");
  nl.connect(mux, 0, sink, 0, "muxout");
  return nl;
}

void runSuite(const char* label, Netlist nl, NodeId sharedId = kNoNode) {
  auto report = verify::checkSelfProtocol(nl);
  std::size_t props = report.propertiesChecked;
  std::size_t violations = report.violations.size();
  std::size_t states = report.explore.states;

  if (sharedId != kNoNode) {
    auto leadsTo = verify::checkSchedulerLeadsTo(nl, sharedId);
    props += leadsTo.propertiesChecked;
    violations += leadsTo.violations.size();
  }
  std::printf("%-34s %8zu %8zu %6zu   %s\n", label, states, props, violations,
              violations == 0 ? "PASS" : "FAIL");
}

}  // namespace

int main() {
  std::printf("=== Section 4.2: controller verification (explicit-state) ===\n\n");
  std::printf("%-34s %8s %8s %6s   %s\n", "composition (with nondet envs)", "states",
              "props", "viol", "verdict");

  runSuite("EB (Lf=1,Lb=1,C=2)", ebHarness(false, false));
  runSuite("EB + anti-token environment", ebHarness(false, true));
  runSuite("EB0 (Lf=1,Lb=0,C=1, Fig.5)", ebHarness(true, true));
  runSuite("eager fork (2-way)", forkHarness());
  runSuite("lazy join (2-way)", joinHarness());
  {
    Netlist nl = sharedHarness(std::make_unique<sched::BoundedFairScheduler>(2, 1));
    const NodeId id = nl.findNode("shared")->id();
    runSuite("shared+EEmux, fair nondet sched", std::move(nl), id);
  }
  {
    Netlist nl = sharedHarness(std::make_unique<sched::StaticScheduler>(2, 0));
    const NodeId id = nl.findNode("shared")->id();
    runSuite("shared+EEmux, static+correction", std::move(nl), id);
  }
  {
    Netlist nl = sharedHarness(std::make_unique<sched::RoundRobinScheduler>(2));
    const NodeId id = nl.findNode("shared")->id();
    runSuite("shared+EEmux, round-robin", std::move(nl), id);
  }

  std::printf("\nnegative control (must FAIL leads-to / liveness):\n");
  {
    Netlist nl = sharedHarness(std::make_unique<sched::StarvingScheduler>(2));
    const NodeId id = nl.findNode("shared")->id();
    auto leadsTo = verify::checkSchedulerLeadsTo(nl, id);
    std::printf("%-34s %8zu %8zu %6zu   %s\n", "shared+EEmux, starving sched",
                leadsTo.explore.states, leadsTo.propertiesChecked,
                leadsTo.violations.size(),
                leadsTo.violations.empty() ? "PASS (BAD!)" : "FAIL (expected)");
    if (!leadsTo.violations.empty())
      std::printf("  first violation: %s\n", leadsTo.violations.front().c_str());
  }

  std::printf("\nproperties per channel: Invariant (kill/stop exclusion), Retry+\n"
              "(persistent channels only, §4.2 exemption downstream of shared\n"
              "modules), Retry-, global liveness GF(progress), deadlock freedom,\n"
              "and eq. (1) leads-to per shared-module input.\n");
  return 0;
}
