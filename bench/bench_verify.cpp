// Reproduces the §4.2 verification campaign and benchmarks the parallel
// model-checker frontier.
//
// Part 1 — the paper's table: "all elastic controllers have been verified
// ... the absence of deadlocks has been verified for any scheduler that
// complies with the leads-to property. In addition, it has been verified that
// all controllers comply with the SELF protocol." The paper used NuSMV/SMV;
// this harness runs the built-in explicit-state checker over the same
// controller compositions with nondeterministic (bounded-fair) environments
// and prints the property table. A negative control (starving scheduler)
// shows the checker actually bites.
//
// Part 2 — frontier sharding: explores a >=10^5-state synthetic instance
// serially and with 2/4 worker lanes, gates on bit-identical results
// (states, transitions, graph fingerprint — exit 1 on mismatch with --check)
// and reports the wall-clock speedup (advisory: CI machines vary). Results
// land in BENCH_verify.json via --out.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "elastic/buffer.h"
#include "elastic/eemux.h"
#include "elastic/endpoints.h"
#include "elastic/fork.h"
#include "elastic/func.h"
#include "elastic/shared.h"
#include "frontend/esl_format.h"
#include "netlist/synth.h"
#include "verify/checker.h"

using namespace esl;

namespace {

Netlist ebHarness(bool zeroLb, bool anti) {
  Netlist nl;
  auto& src = nl.make<NondetSource>("env.src", 1);
  Node* buf = zeroLb ? static_cast<Node*>(&nl.make<ElasticBuffer0>("buf", 1))
                     : static_cast<Node*>(&nl.make<ElasticBuffer>("buf", 1));
  auto& sink = nl.make<NondetSink>("env.sink", 1, 2, anti);
  nl.connect(src, 0, *buf, 0, "up");
  nl.connect(*buf, 0, sink, 0, "down");
  return nl;
}

Netlist forkHarness() {
  Netlist nl;
  auto& src = nl.make<NondetSource>("env.src", 1);
  auto& eb = nl.make<ElasticBuffer>("eb", 1);
  auto& fork = nl.make<ForkNode>("fork", 1, 2);
  auto& s0 = nl.make<NondetSink>("env.s0", 1, 2);
  auto& s1 = nl.make<NondetSink>("env.s1", 1, 2);
  nl.connect(src, 0, eb, 0, "up");
  nl.connect(eb, 0, fork, 0, "stem");
  nl.connect(fork, 0, s0, 0, "br0");
  nl.connect(fork, 1, s1, 0, "br1");
  return nl;
}

Netlist joinHarness() {
  Netlist nl;
  auto& a = nl.make<NondetSource>("env.a", 1);
  auto& b = nl.make<NondetSource>("env.b", 1);
  auto& join = nl.make<FuncNode>("join", std::vector<unsigned>{1, 1}, 1,
                                 [](const std::vector<BitVec>& in) {
                                   return in[0] & in[1];
                                 });
  auto& sink = nl.make<NondetSink>("env.sink", 1, 2);
  nl.connect(a, 0, join, 0, "ina");
  nl.connect(b, 0, join, 1, "inb");
  nl.connect(join, 0, sink, 0, "out");
  return nl;
}

Netlist sharedHarness(std::unique_ptr<sched::Scheduler> sched) {
  Netlist nl;
  auto& src = nl.make<NondetSource>("env.src", 1, 2, /*dataBits=*/1);
  auto& fork = nl.make<ForkNode>("fork", 1, 3);
  auto& shared = nl.make<SharedModule>(
      "shared", 2, 1, 1, [](const BitVec& x) { return x; }, std::move(sched));
  auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, 1);
  auto& sink = nl.make<NondetSink>("env.sink", 1, 2);
  nl.connect(src, 0, fork, 0, "stem");
  nl.connect(fork, 0, shared, 0, "in0");
  nl.connect(fork, 1, shared, 1, "in1");
  nl.connect(fork, 2, mux, 0, "sel");
  nl.connect(shared, 0, mux, 1, "out0");
  nl.connect(shared, 1, mux, 2, "out1");
  nl.connect(mux, 0, sink, 0, "muxout");
  return nl;
}

void runSuite(const char* label, Netlist nl, NodeId sharedId = kNoNode) {
  auto report = verify::checkSelfProtocol(nl);
  std::size_t props = report.propertiesChecked;
  std::size_t violations = report.violations.size();
  std::size_t states = report.explore.states;

  if (sharedId != kNoNode) {
    auto leadsTo = verify::checkSchedulerLeadsTo(nl, sharedId);
    props += leadsTo.propertiesChecked;
    violations += leadsTo.violations.size();
  }
  std::printf("%-34s %8zu %8zu %6zu   %s\n", label, states, props, violations,
              violations == 0 ? "PASS" : "FAIL");
}

void runControllerTable() {
  std::printf("=== Section 4.2: controller verification (explicit-state) ===\n\n");
  std::printf("%-34s %8s %8s %6s   %s\n", "composition (with nondet envs)", "states",
              "props", "viol", "verdict");

  runSuite("EB (Lf=1,Lb=1,C=2)", ebHarness(false, false));
  runSuite("EB + anti-token environment", ebHarness(false, true));
  runSuite("EB0 (Lf=1,Lb=0,C=1, Fig.5)", ebHarness(true, true));
  runSuite("eager fork (2-way)", forkHarness());
  runSuite("lazy join (2-way)", joinHarness());
  {
    Netlist nl = sharedHarness(std::make_unique<sched::BoundedFairScheduler>(2, 1));
    const NodeId id = nl.findNode("shared")->id();
    runSuite("shared+EEmux, fair nondet sched", std::move(nl), id);
  }
  {
    Netlist nl = sharedHarness(std::make_unique<sched::StaticScheduler>(2, 0));
    const NodeId id = nl.findNode("shared")->id();
    runSuite("shared+EEmux, static+correction", std::move(nl), id);
  }
  {
    Netlist nl = sharedHarness(std::make_unique<sched::RoundRobinScheduler>(2));
    const NodeId id = nl.findNode("shared")->id();
    runSuite("shared+EEmux, round-robin", std::move(nl), id);
  }

  std::printf("\nnegative control (must FAIL leads-to / liveness):\n");
  {
    Netlist nl = sharedHarness(std::make_unique<sched::StarvingScheduler>(2));
    const NodeId id = nl.findNode("shared")->id();
    auto leadsTo = verify::checkSchedulerLeadsTo(nl, id);
    std::printf("%-34s %8zu %8zu %6zu   %s\n", "shared+EEmux, starving sched",
                leadsTo.explore.states, leadsTo.propertiesChecked,
                leadsTo.violations.size(),
                leadsTo.violations.empty() ? "PASS (BAD!)" : "FAIL (expected)");
    if (!leadsTo.violations.empty()) {
      const verify::Violation& v = leadsTo.violations.front();
      std::printf("  first violation: %s\n", v.str().c_str());
      std::printf("  counterexample: %zu steps to the starved state, lasso at "
                  "step %zu\n",
                  v.combos.size(), v.lassoStart);
    }
  }

  std::printf("\nproperties per channel: Invariant (kill/stop exclusion), Retry+\n"
              "(persistent channels only, §4.2 exemption downstream of shared\n"
              "modules), Retry-, global liveness GF(progress), deadlock freedom,\n"
              "and eq. (1) leads-to per shared-module input.\n");
}

// ---------------------------------------------------------------------------
// Parallel frontier benchmark
// ---------------------------------------------------------------------------

struct FrontierRun {
  unsigned workers = 1;
  double seconds = 0.0;
  std::size_t states = 0;
  std::size_t transitions = 0;
  std::uint64_t fingerprint = 0;
};

FrontierRun exploreOnce(const synth::SynthConfig& cfg, unsigned workers) {
  verify::CheckerOptions opts;
  opts.maxStates = 2000000;
  opts.maxChoiceBits = 16;
  opts.workers = workers;
  // The lanes run from the serializable IR, round-tripped through the `.esl`
  // text form — so the gated fingerprints certify the parsed spec, not just
  // the C++ builder.
  const NetlistSpec spec =
      frontend::parseEsl(frontend::printEsl(synth::spec(cfg)), "<bench_verify>");
  verify::ModelChecker mc(spec, opts);
  // One representative label so edges carry masks like the real suites do.
  const Netlist& nl = mc.netlist();
  const auto channels = nl.channelIds();
  const ChannelId watch = channels.back();
  mc.addLabel("progress",
              [watch](const SimContext& c) { return fwdTransfer(c.sig(watch)); });

  FrontierRun run;
  run.workers = workers;
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = mc.explore();
  run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
  run.states = result.states;
  run.transitions = result.transitions;
  run.fingerprint = mc.graphFingerprint();
  return run;
}

int runFrontierBench(const std::string& outPath, bool check, std::size_t nodes) {
  synth::SynthConfig cfg;
  cfg.topology = synth::Topology::kPipeline;
  cfg.targetNodes = nodes;
  cfg.width = 1;
  cfg.seed = 3;
  cfg.nondetEnv = true;

  std::printf("\n=== Parallel model-checker frontier (%s) ===\n\n",
              synth::describe(cfg).c_str());
  std::printf("%8s %10s %12s %10s %9s\n", "workers", "states", "transitions",
              "time (s)", "speedup");

  std::vector<FrontierRun> runs;
  for (const unsigned workers : {1u, 2u, 4u}) {
    runs.push_back(exploreOnce(cfg, workers));
    const FrontierRun& r = runs.back();
    std::printf("%8u %10zu %12zu %10.3f %8.2fx\n", r.workers, r.states,
                r.transitions, r.seconds, runs.front().seconds / r.seconds);
  }

  bool identical = true;
  for (const FrontierRun& r : runs)
    identical &= r.states == runs.front().states &&
                 r.transitions == runs.front().transitions &&
                 r.fingerprint == runs.front().fingerprint;
  const double speedup4 = runs.front().seconds / runs.back().seconds;

  std::printf("\ndeterminism: %s (graph fingerprints %s)\n",
              identical ? "OK" : "FAILED", identical ? "identical" : "DIFFER");
  std::printf("speedup at 4 workers: %.2fx (advisory; needs >=4 hardware "
              "threads to show)\n", speedup4);

  if (!outPath.empty()) {
    FILE* f = std::fopen(outPath.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"instance\": \"%s\",\n", synth::describe(cfg).c_str());
    std::fprintf(f, "  \"states\": %zu,\n  \"transitions\": %zu,\n",
                 runs.front().states, runs.front().transitions);
    std::fprintf(f, "  \"identical\": %s,\n", identical ? "true" : "false");
    std::fprintf(f, "  \"speedup_4_workers\": %.3f,\n", speedup4);
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i)
      std::fprintf(f, "    {\"workers\": %u, \"seconds\": %.6f}%s\n",
                   runs[i].workers, runs[i].seconds,
                   i + 1 < runs.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", outPath.c_str());
  }

  if (check && !identical) {
    std::fprintf(stderr,
                 "FAIL: parallel exploration is not bit-identical to serial\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string outPath;
  bool check = false;
  std::size_t nodes = 32;  // ~160k states, ~640k transitions
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out FILE.json] [--check] [--nodes N]\n",
                   argv[0]);
      return 2;
    }
  }

  runControllerTable();
  return runFrontierBench(outPath, check, nodes);
}
