#include "frontend/esl_format.h"

#include <fstream>
#include <sstream>
#include <tuple>

#include "netlist/stdlib.h"

namespace esl::frontend {

namespace {

[[noreturn]] void fail(const std::string& origin, std::size_t line,
                       const std::string& msg) {
  throw ParseError(origin + ":" + std::to_string(line) + ": " + msg);
}

std::vector<std::string> tokenizeStatement(const std::string& stmt) {
  std::vector<std::string> tokens;
  std::istringstream is(stmt);
  std::string t;
  while (is >> t) {
    // "a.out0->b.in1" splits into three tokens.
    std::size_t start = 0;
    for (std::size_t arrow = t.find("->", start); arrow != std::string::npos;
         arrow = t.find("->", start)) {
      if (arrow > start) tokens.push_back(t.substr(start, arrow - start));
      tokens.push_back("->");
      start = arrow + 2;
    }
    if (start < t.size()) tokens.push_back(t.substr(start));
  }
  return tokens;
}

/// Splits "name.out3" / "name.in0" into (name, port).
std::pair<std::string, unsigned> parseEndpoint(const std::string& token,
                                               const std::string& tag,
                                               const std::string& origin,
                                               std::size_t line) {
  const std::size_t at = token.rfind(tag);
  if (at != std::string::npos && at > 0 && at + tag.size() < token.size()) {
    unsigned port = 0;
    bool digits = true;
    for (std::size_t i = at + tag.size(); i < token.size(); ++i) {
      if (token[i] < '0' || token[i] > '9') {
        digits = false;
        break;
      }
      port = port * 10 + static_cast<unsigned>(token[i] - '0');
    }
    if (digits) return {token.substr(0, at), port};
  }
  fail(origin, line,
       "expected endpoint '<node>" + tag + "<port>', got '" + token + "'");
}

void parseAttrs(const std::vector<std::string>& tokens, std::size_t first,
                Params& out, const std::string& origin, std::size_t line) {
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0)
      fail(origin, line, "expected key=value attribute, got '" + tokens[i] + "'");
    out.set(tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
  }
}

}  // namespace

NetlistSpec parseEsl(const std::string& text, const std::string& origin) {
  stdlib::ensureRegistered();
  NetlistSpec spec;
  std::istringstream is(text);
  std::string rawLine;
  std::size_t lineNo = 0;
  bool sawHeader = false;

  while (std::getline(is, rawLine)) {
    ++lineNo;
    std::string stmt = rawLine;
    const std::size_t hash = stmt.find('#');
    if (hash != std::string::npos) stmt.resize(hash);
    const auto tokens = tokenizeStatement(stmt);
    if (tokens.empty()) continue;

    std::string last = tokens.back();
    std::vector<std::string> t = tokens;
    if (last == ";") {
      t.pop_back();
    } else if (!last.empty() && last.back() == ';') {
      t.back().pop_back();
    } else {
      fail(origin, lineNo, "statement does not end with ';'");
    }
    if (t.empty()) fail(origin, lineNo, "empty statement");

    if (!sawHeader) {
      if (t.size() != 2 || t[0] != "esl")
        fail(origin, lineNo, "expected 'esl 1;' header first");
      if (t[1] != "1")
        fail(origin, lineNo, "unsupported format version '" + t[1] + "'");
      sawHeader = true;
      continue;
    }

    if (t[0] == "node") {
      if (t.size() < 3) fail(origin, lineNo, "usage: node <kind> <name> [k=v...]");
      NodeSpec node;
      node.kind = t[1];
      node.name = t[2];
      try {
        validateIrName(node.name, "node name");
      } catch (const NetlistError& e) {
        fail(origin, lineNo, e.what());
      }
      parseAttrs(t, 3, node.params, origin, lineNo);
      spec.nodes.push_back(std::move(node));
      continue;
    }

    if (t[0] == "channel") {
      if (t.size() < 4 || t[2] != "->")
        fail(origin, lineNo,
             "usage: channel <prod>.out<P> -> <cons>.in<Q> [name=...]");
      ChannelSpec ch;
      std::tie(ch.producer, ch.producerPort) =
          parseEndpoint(t[1], ".out", origin, lineNo);
      std::tie(ch.consumer, ch.consumerPort) =
          parseEndpoint(t[3], ".in", origin, lineNo);
      Params attrs;
      parseAttrs(t, 4, attrs, origin, lineNo);
      ch.name = attrs.str("name", "");
      attrs.checkConsumed("channel statement");
      spec.channels.push_back(std::move(ch));
      continue;
    }

    fail(origin, lineNo, "unknown statement '" + t[0] + "'");
  }

  if (!sawHeader) fail(origin, lineNo, "missing 'esl 1;' header");
  return spec;
}

std::string printEsl(const NetlistSpec& spec) {
  std::ostringstream os;
  os << "esl 1;\n";
  for (const NodeSpec& n : spec.nodes) {
    os << "node " << n.kind << " " << n.name;
    for (const auto& [key, value] : n.params.entries())
      os << " " << key << "=" << value;
    os << ";\n";
  }
  for (const ChannelSpec& ch : spec.channels) {
    os << "channel " << ch.producer << ".out" << ch.producerPort << " -> "
       << ch.consumer << ".in" << ch.consumerPort;
    if (!ch.name.empty()) os << " name=" << ch.name;
    os << ";\n";
  }
  return os.str();
}

NetlistSpec parseEslFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw EslError("cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parseEsl(text.str(), path);
}

Netlist buildEslFile(const std::string& path) {
  return parseEslFile(path).build();
}

std::string checkRoundTrip(const NetlistSpec& spec) {
  const std::string once = printEsl(spec);
  const std::string twice = printEsl(parseEsl(once, "<roundtrip>"));
  if (once == twice) return once;
  std::istringstream a(once), b(twice);
  std::string la, lb;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool ha = static_cast<bool>(std::getline(a, la));
    const bool hb = static_cast<bool>(std::getline(b, lb));
    if (!ha && !hb) break;
    if (!ha || !hb || la != lb)
      throw InternalError("esl round-trip drift at line " + std::to_string(line) +
                          ": '" + (ha ? la : "<eof>") + "' vs '" +
                          (hb ? lb : "<eof>") + "'");
  }
  throw InternalError("esl round-trip drift (texts differ)");
}

}  // namespace esl::frontend
