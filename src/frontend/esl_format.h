// Textual `.esl` netlist format: parser + printer over NetlistSpec.
//
// The paper's toolkit loads abstract netlists from files instead of linking
// them in as C++ (§5); this frontend is that loader. The format is
// line-oriented, one statement per line, `;`-terminated, `#` comments:
//
//   esl 1;                                  # format version header
//   node eb pc width=16 init=0x1;           # node <kind> <name> key=value...
//   node fork fork width=16 branches=4;
//   channel pc.out0 -> fork.in0 name=pc.out;  # producer.out<P> -> consumer.in<Q>
//
// Node kinds, attributes and the named functions/generators/gates/schedulers
// referenced by `fn=`/`gen=`/`gate=`/`sched=` attributes resolve through the
// NodeRegistry (src/elastic/registry.h) plus the paper-domain stdlib
// (src/netlist/stdlib.h) — see the README "File format" section for the full
// attribute tables.
//
// Guarantees: print(parse(text)) is a fixpoint of print for every valid
// `text` (attributes are preserved verbatim, statements in order), and
// parse(print(spec)).build() reconstructs a netlist bit-identical to
// spec.build() — validated on load via Netlist::validate().
#pragma once

#include <string>

#include "elastic/registry.h"

namespace esl::frontend {

/// Parses `.esl` text; throws ParseError with `origin`:line on bad syntax.
/// (Attribute/kind errors surface later, from NetlistSpec::build.)
NetlistSpec parseEsl(const std::string& text,
                     const std::string& origin = "<string>");

/// Canonical text form; parseEsl(printEsl(spec)) == spec.
std::string printEsl(const NetlistSpec& spec);

/// Reads and parses a file; throws EslError when unreadable.
NetlistSpec parseEslFile(const std::string& path);

/// parse + build + validate in one step.
Netlist buildEslFile(const std::string& path);

/// Verifies the print -> parse -> print fixpoint for `spec` and returns the
/// printed text; throws InternalError quoting the first diverging line.
std::string checkRoundTrip(const NetlistSpec& spec);

}  // namespace esl::frontend
