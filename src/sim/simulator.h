// Simulator: runs a netlist cycle by cycle and collects statistics.
//
// Wraps SimContext with: a seeded choice provider (nondet environment nodes
// behave randomly but reproducibly), per-channel transfer/kill statistics,
// throughput measurement, and an optional trace recorder.
//
// The choice provider is a stateless hash of (seed, cycle, node, index) — a
// pure per-cycle function, so resolution order can never leak into the drawn
// values. That is what lets the serial kernels resolve lazily while the
// sharded kernel pre-resolves every slot, with bit-identical outcomes (and it
// makes the sweep/event/sharded kernels agree choice for choice by
// construction).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "base/rng.h"
#include "elastic/context.h"
#include "sim/trace.h"

namespace esl::sim {

struct SimOptions {
  bool checkProtocol = true;       ///< monitor SELF properties every cycle
  bool throwOnViolation = true;    ///< raise ProtocolError immediately
  std::uint64_t seed = 0x5e1fULL;  ///< choice-provider seed
  /// Settle kernel (see SimContext): event-driven worklist by default, with
  /// the dense sweep retained as reference/fallback.
  SimContext::SettleKernel kernel = SimContext::SettleKernel::kEventDriven;
  /// Run both kernels every cycle and throw InternalError on disagreement.
  bool crossCheckKernels = false;
  /// Collect per-channel transfer/kill statistics each cycle. With the
  /// SignalBoard this is a bitplane sweep — two loads and an OR per 64 quiet
  /// channels, popcount-cheap on busy ones — so it is cheap enough to stay on
  /// by default even at the 100k-node benchmark tiers.
  bool trackChannelStats = true;
  /// Shard the netlist across N worker lanes per cycle (1 = serial). Settled
  /// signals and packed state are bit-identical for every value.
  unsigned shards = 1;
  /// Simulation backend: the interpreted node kernels, or the compiled
  /// bytecode VM (bit-identical, no virtual dispatch on the hot path).
  /// Composes with shards > 1: interior nodes run specialized ops while
  /// boundary-adjacent nodes take the staging-aware interpreted path.
  SimContext::Backend backend = SimContext::Backend::kInterpreted;
};

struct ChannelStats {
  std::uint64_t fwdTransfers = 0;
  std::uint64_t kills = 0;
  std::uint64_t bwdTransfers = 0;
};

class Simulator {
 public:
  explicit Simulator(Netlist& netlist, SimOptions options = {});

  SimContext& ctx() { return ctx_; }
  std::uint64_t cycle() const { return ctx_.cycle(); }

  /// Attach a trace recorder (optional; must outlive the simulator runs).
  void attachTrace(TraceRecorder* trace) { trace_ = trace; }

  void step();
  void run(std::uint64_t cycles);

  const ChannelStats& channelStats(ChannelId ch) const { return stats_.at(ch); }
  /// channelStats() for channels that may postdate the simulator (interactive
  /// surgery): zero until the first event touches them.
  ChannelStats channelStatsOrZero(ChannelId ch) const {
    return ch < stats_.size() ? stats_[ch] : ChannelStats{};
  }
  /// Forward transfers per cycle on `ch` since reset.
  double throughput(ChannelId ch) const;

 private:
  SimContext ctx_;
  SimOptions options_;
  std::vector<ChannelStats> stats_;
  TraceRecorder* trace_ = nullptr;
};

/// The canonical end-of-run report — one "sink '<name>': N transfers" line
/// per TokenSink (netlist order) and the protocol-violation count. One
/// renderer shared by the shell's `sim` verb, the CLI snapshot path and the
/// serve daemon, so their outputs byte-diff clean against each other.
/// `sinkCarry`/`violationCarry` add counts accumulated before a state-only
/// restore (the serve daemon's evict/restore cycle: transfer logs are
/// perf-side observations, deliberately outside packState()).
std::string runReport(const Netlist& nl, const SimContext& ctx,
                      const std::map<std::string, std::uint64_t>* sinkCarry =
                          nullptr,
                      std::uint64_t violationCarry = 0);

}  // namespace esl::sim
