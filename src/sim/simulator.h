// Simulator: runs a netlist cycle by cycle and collects statistics.
//
// Wraps SimContext with: a seeded RNG choice provider (nondet environment
// nodes behave randomly but reproducibly), per-channel transfer/kill
// statistics, throughput measurement, and an optional trace recorder.
#pragma once

#include <cstdint>

#include "base/rng.h"
#include "elastic/context.h"
#include "sim/trace.h"

namespace esl::sim {

struct SimOptions {
  bool checkProtocol = true;       ///< monitor SELF properties every cycle
  bool throwOnViolation = true;    ///< raise ProtocolError immediately
  std::uint64_t seed = 0x5e1fULL;  ///< choice-provider seed
  /// Settle kernel (see SimContext): event-driven worklist by default, with
  /// the dense sweep retained as reference/fallback.
  SimContext::SettleKernel kernel = SimContext::SettleKernel::kEventDriven;
  /// Run both kernels every cycle and throw InternalError on disagreement.
  bool crossCheckKernels = false;
  /// Collect per-channel transfer/kill statistics each cycle. The scan is
  /// O(channels); large-netlist benchmarks that only read endpoint counters
  /// (sink transfers, node statistics) turn it off so the wrapper does not
  /// mask the kernel's O(active) scaling. throughput()/channelStats() read
  /// zeros when disabled.
  bool trackChannelStats = true;
};

struct ChannelStats {
  std::uint64_t fwdTransfers = 0;
  std::uint64_t kills = 0;
  std::uint64_t bwdTransfers = 0;
};

class Simulator {
 public:
  explicit Simulator(Netlist& netlist, SimOptions options = {});

  SimContext& ctx() { return ctx_; }
  std::uint64_t cycle() const { return ctx_.cycle(); }

  /// Attach a trace recorder (optional; must outlive the simulator runs).
  void attachTrace(TraceRecorder* trace) { trace_ = trace; }

  void step();
  void run(std::uint64_t cycles);

  const ChannelStats& channelStats(ChannelId ch) const { return stats_.at(ch); }
  /// Forward transfers per cycle on `ch` since reset.
  double throughput(ChannelId ch) const;

 private:
  SimContext ctx_;
  SimOptions options_;
  Rng rng_;
  std::vector<ChannelStats> stats_;
  std::vector<ChannelId> channels_;  ///< live ids, cached (topology is fixed)
  TraceRecorder* trace_ = nullptr;
};

}  // namespace esl::sim
