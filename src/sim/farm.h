// SimFarm: parallel Monte Carlo sweep runner.
//
// A farm clones a netlist-building *recipe* across N worker threads to run
// many independent simulations — multi-seed Monte Carlo estimates (throughput
// vs. ALU hit-rate, paper Fig. 9 style), scheduler comparisons (Table 1
// style), or any multi-config sweep — and merges the per-channel statistics.
//
// Netlists are not shareable across threads (nodes carry mutable state), so
// every task gets its own instance built by the recipe; this also makes
// results independent of thread count: task i always runs (recipe(task_i),
// Simulator seeded with task_i.seed, task_i.cycles cycles), and results are
// returned in task order. Same task list ⇒ bit-identical results whether the
// farm runs on 1 thread or 64.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "elastic/registry.h"
#include "sim/simulator.h"

namespace esl::sim {

class SimFarm {
 public:
  /// One simulation to run: an RNG seed, a cycle budget and an opaque config
  /// tag the recipe may use to vary the netlist (scheduler kind, error rate…).
  struct Task {
    std::uint64_t seed = 0x5e1fULL;
    std::uint64_t cycles = 1000;
    std::uint64_t config = 0;
  };

  /// What a recipe hands back for one task. Channels to measure are keyed by
  /// a label stable across instances — merging is by label, never ChannelId.
  /// `harvest` (optional) runs after the simulation with the finished
  /// simulator still alive, extracting scalar metrics from nodes (counters,
  /// occupancy…) before the instance is destroyed.
  struct Instance {
    Netlist nl;
    std::vector<std::pair<std::string, ChannelId>> watch;
    std::function<void(Simulator&, std::vector<std::pair<std::string, double>>&)>
        harvest;
  };

  /// Builds a fresh netlist for a task. Must be callable from any worker
  /// thread concurrently (i.e. capture only immutable/shared-safe data).
  using Recipe = std::function<void(const Task&, Instance&)>;

  /// Recipe over the serializable netlist IR: every task simulates
  /// spec.build() (specs are immutable data, hence trivially thread-safe),
  /// watching the named channels under their own names. This is how a design
  /// loaded from `.esl` rides the farm without any C++ builder.
  static Recipe specRecipe(NetlistSpec spec, std::vector<std::string> watch = {});

  struct TaskResult {
    Task task;
    bool ok = false;
    std::string error;  ///< exception text when !ok
    std::uint64_t cycles = 0;
    std::vector<std::pair<std::string, ChannelStats>> channels;  ///< watch order
    std::vector<std::pair<std::string, double>> metrics;         ///< from harvest
    std::vector<std::string> protocolViolations;
  };

  struct MergedChannel {
    ChannelStats stats;        ///< summed over contributing tasks
    std::uint64_t cycles = 0;  ///< summed cycle counts of those tasks
    double throughput() const {
      return cycles == 0 ? 0.0
                         : static_cast<double>(stats.fwdTransfers) /
                               static_cast<double>(cycles);
    }
  };

  struct Merged {
    std::uint64_t tasks = 0;
    std::uint64_t failures = 0;
    std::uint64_t totalCycles = 0;
    std::map<std::string, MergedChannel> channels;
    std::map<std::string, double> metricTotals;
    std::vector<std::string> protocolViolations;  ///< prefixed with the seed
  };

  /// `base` supplies everything but the per-task seed (kernel choice,
  /// protocol monitoring; prefer throwOnViolation=false so violations are
  /// reported per task instead of failing it).
  explicit SimFarm(Recipe recipe, SimOptions base = {});

  void add(Task task) { tasks_.push_back(task); }
  /// n tasks identical except for consecutive seeds seed0, seed0+1, …
  void addSeedSweep(std::uint64_t n, std::uint64_t seed0, std::uint64_t cycles,
                    std::uint64_t config = 0);
  std::size_t taskCount() const { return tasks_.size(); }

  /// Runs every queued task on `threads` work-stealing executor lanes
  /// (0 = hardware concurrency; the calling thread is one of the lanes) and
  /// returns results in task order. Tasks whose recipe or simulation throws
  /// come back with ok=false and the exception text; the farm itself only
  /// throws on misuse (no tasks, broken recipe wiring).
  std::vector<TaskResult> run(unsigned threads = 0);

  static Merged merge(const std::vector<TaskResult>& results);

 private:
  TaskResult runOne(const Task& task) const;

  Recipe recipe_;
  SimOptions base_;
  std::vector<Task> tasks_;
};

}  // namespace esl::sim
