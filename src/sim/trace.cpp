#include "sim/trace.h"

#include <algorithm>
#include <sstream>

namespace esl::sim {

void TraceRecorder::addChannel(ChannelId ch, std::string label) {
  Row row;
  row.label = std::move(label);
  row.isChannel = true;
  row.ch = ch;
  rows_.push_back(std::move(row));
}

void TraceRecorder::addSignal(std::string label,
                              std::function<std::string(SimContext&)> fn) {
  Row row;
  row.label = std::move(label);
  row.fn = std::move(fn);
  rows_.push_back(std::move(row));
}

std::string TraceRecorder::letterFor(const BitVec& v) {
  for (std::size_t i = 0; i < seenValues_.size(); ++i) {
    if (seenValues_[i] == v) {
      if (i < 26) return std::string(1, static_cast<char>('A' + i));
      return "T" + std::to_string(i);
    }
  }
  seenValues_.push_back(v);
  const std::size_t i = seenValues_.size() - 1;
  if (i < 26) return std::string(1, static_cast<char>('A' + i));
  return "T" + std::to_string(i);
}

void TraceRecorder::capture(SimContext& ctx) {
  if (cycles_ == 0) streamStart_ = ctx.cycle();
  for (Row& row : rows_) {
    std::string cell;
    if (row.isChannel) {
      const ConstSig s = ctx.sig(row.ch);
      switch (channelSymbol(s)) {
        case ChannelSymbol::kAntiToken:
          cell = "-";
          break;
        case ChannelSymbol::kBubble:
          cell = "*";
          break;
        case ChannelSymbol::kData:
          cell = letterFor(s.data());
          break;
      }
    } else {
      cell = row.fn(ctx);
    }
    row.cells.push_back(std::move(cell));
  }
  ++cycles_;
}

std::string TraceRecorder::cell(std::size_t row, std::uint64_t cycle) const {
  return rows_.at(row).cells.at(cycle);
}

std::string TraceRecorder::render() const {
  std::size_t labelWidth = 5;  // "Cycle"
  for (const Row& r : rows_) labelWidth = std::max(labelWidth, r.label.size());

  std::ostringstream os;
  os << std::string(labelWidth - 5, ' ') << "Cycle";
  for (std::uint64_t c = 0; c < cycles_; ++c) {
    std::string s = std::to_string(c);
    os << ' ' << std::string(s.size() < 2 ? 2 - s.size() : 0, ' ') << s;
  }
  os << '\n';
  for (const Row& r : rows_) {
    os << std::string(labelWidth - r.label.size(), ' ') << r.label;
    for (std::uint64_t c = 0; c < cycles_; ++c) {
      const std::string& s = r.cells[c];
      os << ' ' << std::string(s.size() < 2 ? 2 - s.size() : 0, ' ') << s;
    }
    os << '\n';
  }
  return os.str();
}

std::string TraceRecorder::drainStreamText() {
  std::string out;
  for (std::uint64_t c = 0; c < cycles_; ++c) {
    out += "t=" + std::to_string(streamStart_ + c);
    for (const Row& r : rows_) {
      out += ' ';
      out += r.label;
      out += '=';
      out += r.cells[c];
    }
    out += '\n';
  }
  for (Row& r : rows_) r.cells.clear();
  streamStart_ += cycles_;
  cycles_ = 0;
  return out;
}

}  // namespace esl::sim
