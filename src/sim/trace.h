// TraceRecorder: per-cycle channel snapshots rendered in the style of the
// paper's Table 1 — '-' for an anti-token, '*' for a bubble, and a letter
// (assigned by first appearance) for each distinct token value.
//
// Arbitrary extra rows (e.g. a scheduler's prediction) can be added as
// callbacks evaluated on the settled signals each cycle.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "elastic/context.h"

namespace esl::sim {

class TraceRecorder {
 public:
  /// Watch a channel; `label` is the row header (e.g. "Fin0").
  void addChannel(ChannelId ch, std::string label);

  /// Add a computed row; the callback sees the settled context each cycle.
  void addSignal(std::string label, std::function<std::string(SimContext&)> fn);

  /// Called by the simulator once per cycle after settling.
  void capture(SimContext& ctx);

  std::uint64_t cycles() const { return cycles_; }

  /// Raw cell text: channels rows use the letter encoding.
  std::string cell(std::size_t row, std::uint64_t cycle) const;
  std::size_t rows() const { return rows_.size(); }
  const std::string& rowLabel(std::size_t row) const { return rows_[row].label; }

  /// Fixed-width table like the paper's Table 1.
  std::string render() const;

  /// Streaming drain (the serve daemon's trace feed): renders every cycle
  /// captured since the last drain as one line per cycle —
  ///   "t=<cycle> <label>=<cell> <label>=<cell>\n"
  /// — then drops those cells, keeping memory O(rows), not O(cycles), over a
  /// long watched run. The letter table persists across drains, so the
  /// concatenated stream is byte-identical however the run is chunked.
  /// cell()/render() afterwards see only the undrained suffix.
  std::string drainStreamText();

 private:
  struct Row {
    std::string label;
    bool isChannel = false;
    ChannelId ch = kNoChannel;
    std::function<std::string(SimContext&)> fn;
    std::vector<std::string> cells;
  };

  /// Letter for a data value, assigned on first appearance (A, B, C, ...).
  std::string letterFor(const BitVec& v);

  std::uint64_t streamStart_ = 0;  ///< context cycle of the first buffered cell

  std::vector<Row> rows_;
  std::vector<BitVec> seenValues_;
  std::uint64_t cycles_ = 0;
};

}  // namespace esl::sim
