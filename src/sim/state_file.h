// Durable state files: checksummed record containers on disk.
//
// Every byte string the tree persists — CLI --save-state snapshots, the
// serve daemon's session spool records — travels in one container format:
//
//   offset  0  u32  record magic 0x524C5345 ("ESLR")
//   offset  4  u32  container version (1)
//   offset  8  u64  payload length in bytes
//   offset 16  u32  CRC-32 of the payload
//   offset 20  payload bytes
//
// Writes are atomic and durable: payload -> temp file in the same directory
// -> fsync -> rename -> fsync(directory), so a crash at any instant leaves
// either the old file, the new file, or a doomed ".tmp" — never a torn
// record under the real name. Reads validate magic, declared length against
// the file size (truncation) and the CRC (bit-rot) before the payload is
// handed to any deserializer, and throw a clean EslError naming the damage.
//
// readSnapshotFile() additionally sniffs pre-container files: a file that
// starts with the raw SimContext snapshot magic (what --save-state wrote
// before the container existed) still loads, un-checksummed, so old
// snapshots keep working.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace esl::sim {

inline constexpr std::uint32_t kRecordMagic = 0x524C5345u;  // "ESLR"
inline constexpr std::uint32_t kRecordVersion = 1;
inline constexpr std::size_t kRecordHeaderBytes = 20;

/// Wraps `payload` in the checksummed container and writes it atomically
/// (temp + fsync + rename). `faultPoint` names the fault-injection point the
/// write reports to (fail-Nth / truncate / bit-flip plans hit the container
/// bytes as they reach the disk). Throws EslError when the file cannot be
/// written.
void writeRecordFile(const std::string& path,
                     const std::vector<std::uint8_t>& payload,
                     const std::string& faultPoint = "state-file-write");

/// Reads a container file and returns the verified payload; throws EslError
/// (citing `path`) on a missing file, foreign magic, unsupported version,
/// truncation or checksum mismatch. Never returns unverified bytes.
std::vector<std::uint8_t> readRecordFile(const std::string& path);

/// Writes SimContext snapshot bytes (--save-state): the checksummed
/// container around the versioned packState() payload.
void writeSnapshotFile(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// Validates that `bytes` begins with the SimContext snapshot header (magic +
/// supported version); throws EslError naming the mismatch otherwise.
void checkSnapshotHeader(const std::vector<std::uint8_t>& bytes,
                         const std::string& origin);

/// Reads `path` whole with no validation (legacy-format sniffing only).
std::vector<std::uint8_t> readFileBytes(const std::string& path);

/// Reads a snapshot file and validates it: container files are CRC-checked
/// and unwrapped, pre-container files (raw packState bytes) are sniffed by
/// their snapshot magic and accepted as-is. The snapshot header of the
/// resulting payload is validated either way.
std::vector<std::uint8_t> readSnapshotFile(const std::string& path);

}  // namespace esl::sim
