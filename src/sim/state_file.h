// Snapshot files: packState() byte strings on disk.
//
// The CLI's --save-state/--load-state flags, the serve daemon's LRU
// eviction spool and client-side snapshot round-trips all move SimContext
// snapshots (16-byte versioned header + node state bytes) through files.
// Reading validates the header up front and throws a clean EslError — never
// an assert — on a foreign file or a version from a different build.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace esl::sim {

/// Writes `bytes` to `path`; throws EslError when the file cannot be written.
void writeSnapshotFile(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// Validates that `bytes` begins with the SimContext snapshot header (magic +
/// supported version); throws EslError naming the mismatch otherwise.
void checkSnapshotHeader(const std::vector<std::uint8_t>& bytes,
                         const std::string& origin);

/// Reads `path` whole with no validation (the serve spool, which has its own
/// record header).
std::vector<std::uint8_t> readFileBytes(const std::string& path);

/// Reads `path` and validates the snapshot header.
std::vector<std::uint8_t> readSnapshotFile(const std::string& path);

}  // namespace esl::sim
