#include "sim/state_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "base/crc32.h"
#include "base/error.h"
#include "base/fault_inject.h"
#include "elastic/context.h"

namespace esl::sim {

namespace {

std::uint32_t leU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t leU64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(leU32(p)) |
         (static_cast<std::uint64_t>(leU32(p + 4)) << 32);
}

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// Writes `bytes` to `path` atomically: same-directory temp file, fsync,
/// rename over the target, fsync of the directory so the rename itself is
/// durable. POSIX fds, not fstream — fstream cannot fsync.
void writeFileAtomic(const std::string& path,
                     const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
  ESL_CHECK(fd >= 0, "cannot write '" + tmp + "': " + std::strerror(errno));
  const std::uint8_t* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t w = ::write(fd, p, left);
    if (w < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      ::close(fd);
      std::remove(tmp.c_str());
      throw EslError("write to '" + tmp + "' failed: " + why);
    }
    p += w;
    left -= static_cast<std::size_t>(w);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    const std::string why = std::strerror(errno);
    std::remove(tmp.c_str());
    throw EslError("cannot sync '" + tmp + "': " + why);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = std::strerror(errno);
    std::remove(tmp.c_str());
    throw EslError("cannot rename '" + tmp + "' to '" + path + "': " + why);
  }
  // Make the rename durable: fsync the containing directory. Best effort on
  // filesystems that refuse O_DIRECTORY fsync.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

void writeRecordFile(const std::string& path,
                     const std::vector<std::uint8_t>& payload,
                     const std::string& faultPoint) {
  std::vector<std::uint8_t> record;
  record.reserve(kRecordHeaderBytes + payload.size());
  putU32(record, kRecordMagic);
  putU32(record, kRecordVersion);
  putU64(record, payload.size());
  putU32(record, crc32(payload.data(), payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  // Injected faults mutate (truncate/bit-flip) or veto (fail/exit) the bytes
  // as they head to disk — the deterministic stand-in for torn writes,
  // bit-rot, ENOSPC and SIGKILL mid-write.
  fault::hitData(faultPoint, record);
  writeFileAtomic(path, record);
}

std::vector<std::uint8_t> readRecordFile(const std::string& path) {
  const std::vector<std::uint8_t> record = readFileBytes(path);
  ESL_CHECK(record.size() >= kRecordHeaderBytes,
            "'" + path + "': truncated record (shorter than the header)");
  ESL_CHECK(leU32(record.data()) == kRecordMagic,
            "'" + path + "': not an esl record file (bad magic)");
  const std::uint32_t version = leU32(record.data() + 4);
  ESL_CHECK(version == kRecordVersion,
            "'" + path + "': unsupported record version " + std::to_string(version));
  const std::uint64_t length = leU64(record.data() + 8);
  ESL_CHECK(length == record.size() - kRecordHeaderBytes,
            "'" + path + "': truncated record (header declares " +
                std::to_string(length) + " payload bytes, file carries " +
                std::to_string(record.size() - kRecordHeaderBytes) + ")");
  const std::uint32_t want = leU32(record.data() + 16);
  const std::uint32_t got =
      crc32(record.data() + kRecordHeaderBytes, static_cast<std::size_t>(length));
  ESL_CHECK(got == want, "'" + path + "': checksum mismatch (corrupt record)");
  return std::vector<std::uint8_t>(record.begin() + kRecordHeaderBytes,
                                   record.end());
}

void writeSnapshotFile(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  writeRecordFile(path, bytes);
}

void checkSnapshotHeader(const std::vector<std::uint8_t>& bytes,
                         const std::string& origin) {
  ESL_CHECK(bytes.size() >= 16,
            origin + ": not an esl snapshot (file shorter than the header)");
  const std::uint32_t magic = leU32(bytes.data());
  ESL_CHECK(magic == SimContext::kSnapshotMagic,
            origin + ": not an esl snapshot (bad magic)");
  const std::uint32_t version = leU32(bytes.data() + 4);
  ESL_CHECK(version == SimContext::kSnapshotVersion,
            origin + ": unsupported snapshot version " + std::to_string(version) +
                " (this build reads version " +
                std::to_string(SimContext::kSnapshotVersion) + ")");
}

std::vector<std::uint8_t> readFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ESL_CHECK(static_cast<bool>(in), "cannot read '" + path + "'");
  return std::vector<std::uint8_t>{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
}

std::vector<std::uint8_t> readSnapshotFile(const std::string& path) {
  std::vector<std::uint8_t> bytes = readFileBytes(path);
  // Container files are verified and unwrapped; files that open directly with
  // the snapshot magic are pre-container --save-state output and load as-is.
  if (bytes.size() >= 4 && leU32(bytes.data()) == kRecordMagic)
    bytes = readRecordFile(path);
  checkSnapshotHeader(bytes, path);
  return bytes;
}

}  // namespace esl::sim
