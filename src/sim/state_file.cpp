#include "sim/state_file.h"

#include <fstream>

#include "base/error.h"
#include "elastic/context.h"

namespace esl::sim {

namespace {
std::uint32_t leU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
}  // namespace

void writeSnapshotFile(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  ESL_CHECK(static_cast<bool>(out), "cannot write snapshot '" + path + "'");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ESL_CHECK(static_cast<bool>(out.flush()),
            "write to snapshot '" + path + "' failed");
}

void checkSnapshotHeader(const std::vector<std::uint8_t>& bytes,
                         const std::string& origin) {
  ESL_CHECK(bytes.size() >= 16,
            origin + ": not an esl snapshot (file shorter than the header)");
  const std::uint32_t magic = leU32(bytes.data());
  ESL_CHECK(magic == SimContext::kSnapshotMagic,
            origin + ": not an esl snapshot (bad magic)");
  const std::uint32_t version = leU32(bytes.data() + 4);
  ESL_CHECK(version == SimContext::kSnapshotVersion,
            origin + ": unsupported snapshot version " + std::to_string(version) +
                " (this build reads version " +
                std::to_string(SimContext::kSnapshotVersion) + ")");
}

std::vector<std::uint8_t> readFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ESL_CHECK(static_cast<bool>(in), "cannot read snapshot '" + path + "'");
  return std::vector<std::uint8_t>{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
}

std::vector<std::uint8_t> readSnapshotFile(const std::string& path) {
  std::vector<std::uint8_t> bytes = readFileBytes(path);
  checkSnapshotHeader(bytes, path);
  return bytes;
}

}  // namespace esl::sim
