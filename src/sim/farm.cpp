#include "sim/farm.h"

#include <thread>

#include "base/executor.h"

namespace esl::sim {

SimFarm::SimFarm(Recipe recipe, SimOptions base)
    : recipe_(std::move(recipe)), base_(base) {
  ESL_CHECK(static_cast<bool>(recipe_), "SimFarm: recipe required");
}

SimFarm::Recipe SimFarm::specRecipe(NetlistSpec spec, std::vector<std::string> watch) {
  return [spec = std::move(spec), watch = std::move(watch)](const Task&,
                                                            Instance& inst) {
    inst.nl = spec.build();
    for (const std::string& name : watch) {
      const Channel* ch = inst.nl.findChannel(name);
      ESL_CHECK(ch != nullptr, "SimFarm::specRecipe: no channel named '" + name + "'");
      inst.watch.emplace_back(name, ch->id);
    }
  };
}

void SimFarm::addSeedSweep(std::uint64_t n, std::uint64_t seed0,
                           std::uint64_t cycles, std::uint64_t config) {
  for (std::uint64_t i = 0; i < n; ++i)
    tasks_.push_back({seed0 + i, cycles, config});
}

SimFarm::TaskResult SimFarm::runOne(const Task& task) const {
  TaskResult result;
  result.task = task;
  try {
    Instance inst;
    recipe_(task, inst);
    SimOptions opts = base_;
    opts.seed = task.seed;
    Simulator s(inst.nl, opts);
    s.run(task.cycles);
    result.cycles = s.cycle();
    for (const auto& [label, ch] : inst.watch)
      result.channels.emplace_back(label, s.channelStats(ch));
    if (inst.harvest) inst.harvest(s, result.metrics);
    result.protocolViolations = s.ctx().protocolViolations();
    result.ok = true;
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  }
  return result;
}

std::vector<SimFarm::TaskResult> SimFarm::run(unsigned threads) {
  ESL_CHECK(!tasks_.empty(), "SimFarm::run: no tasks queued");
  // More lanes than tasks would only spawn threads that find empty ranges.
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (threads > tasks_.size()) threads = static_cast<unsigned>(tasks_.size());
  Executor executor(threads);
  // Each slot of `results` is written by exactly one lane; runOne already
  // fences every per-task failure into TaskResult, so the loop body never
  // throws and scheduling order cannot leak into results.
  std::vector<TaskResult> results(tasks_.size());
  executor.parallelFor(tasks_.size(), [this, &results](std::size_t i, unsigned) {
    results[i] = runOne(tasks_[i]);
  });
  return results;
}

SimFarm::Merged SimFarm::merge(const std::vector<TaskResult>& results) {
  Merged m;
  for (const TaskResult& r : results) {
    ++m.tasks;
    if (!r.ok) {
      ++m.failures;
      continue;
    }
    m.totalCycles += r.cycles;
    for (const auto& [label, stats] : r.channels) {
      MergedChannel& mc = m.channels[label];
      mc.stats.fwdTransfers += stats.fwdTransfers;
      mc.stats.kills += stats.kills;
      mc.stats.bwdTransfers += stats.bwdTransfers;
      mc.cycles += r.cycles;
    }
    for (const auto& [label, value] : r.metrics) m.metricTotals[label] += value;
    for (const std::string& v : r.protocolViolations)
      m.protocolViolations.push_back("seed " + std::to_string(r.task.seed) +
                                     ": " + v);
  }
  return m;
}

}  // namespace esl::sim
