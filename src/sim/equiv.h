// Transfer equivalence (paper §3.1).
//
// "Two elastic systems are transfer equivalent if, given identical input
// streams, the output transfer streams match." Every correct-by-construction
// transformation must preserve this; the transformation tests co-simulate the
// original and transformed netlists and compare the data sequences observed
// at identically named sinks (cycle alignment is irrelevant by design).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace esl::sim {

/// Runs the netlist for `cycles` and returns, per TokenSink name, the ordered
/// sequence of transferred payloads.
std::map<std::string, std::vector<BitVec>> collectSinkStreams(
    Netlist& netlist, std::uint64_t cycles, SimOptions options = {});

struct EquivalenceResult {
  bool equivalent = true;
  std::string reason;
};

/// Compares the transfer streams of the two netlists over `cycles` cycles.
/// Streams may have different lengths (transformations change timing); the
/// common prefix must match and at least `minTransfers` transfers must have
/// been observed per sink for the comparison to be meaningful.
EquivalenceResult transferEquivalent(Netlist& a, Netlist& b, std::uint64_t cycles,
                                     std::uint64_t minTransfers = 1,
                                     SimOptions options = {});

}  // namespace esl::sim
