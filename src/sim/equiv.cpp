#include "sim/equiv.h"

#include "elastic/endpoints.h"

namespace esl::sim {

std::map<std::string, std::vector<BitVec>> collectSinkStreams(Netlist& netlist,
                                                              std::uint64_t cycles,
                                                              SimOptions options) {
  Simulator simulator(netlist, options);
  simulator.run(cycles);

  std::map<std::string, std::vector<BitVec>> streams;
  for (const NodeId id : netlist.nodeIds()) {
    const auto* sink = dynamic_cast<const TokenSink*>(&netlist.node(id));
    if (sink == nullptr) continue;
    std::vector<BitVec> values;
    values.reserve(sink->transfers().size());
    for (const TokenSink::Transfer& t : sink->transfers()) values.push_back(t.data);
    ESL_CHECK(streams.emplace(sink->name(), std::move(values)).second,
              "collectSinkStreams: duplicate sink name " + sink->name());
  }
  return streams;
}

EquivalenceResult transferEquivalent(Netlist& a, Netlist& b, std::uint64_t cycles,
                                     std::uint64_t minTransfers, SimOptions options) {
  const auto sa = collectSinkStreams(a, cycles, options);
  const auto sb = collectSinkStreams(b, cycles, options);

  EquivalenceResult res;
  if (sa.size() != sb.size()) {
    res.equivalent = false;
    res.reason = "different sink sets";
    return res;
  }
  for (const auto& [name, va] : sa) {
    const auto it = sb.find(name);
    if (it == sb.end()) {
      res.equivalent = false;
      res.reason = "sink '" + name + "' missing in second netlist";
      return res;
    }
    const auto& vb = it->second;
    const std::size_t n = std::min(va.size(), vb.size());
    if (n < minTransfers) {
      res.equivalent = false;
      res.reason = "sink '" + name + "' observed only " + std::to_string(n) +
                   " transfers (need " + std::to_string(minTransfers) + ")";
      return res;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (va[i] != vb[i]) {
        res.equivalent = false;
        res.reason = "sink '" + name + "' transfer #" + std::to_string(i) +
                     " differs: " + va[i].toHex() + " vs " + vb[i].toHex();
        return res;
      }
    }
  }
  return res;
}

}  // namespace esl::sim
