#include "sim/simulator.h"

namespace esl::sim {

Simulator::Simulator(Netlist& netlist, SimOptions options)
    : ctx_(netlist), options_(options), rng_(options.seed) {
  ctx_.setProtocolChecking(options_.checkProtocol);
  ctx_.setThrowOnViolation(options_.throwOnViolation);
  ctx_.setKernel(options_.kernel);
  ctx_.setCrossCheck(options_.crossCheckKernels);
  ctx_.setChoiceProvider([this](NodeId, unsigned) { return (rng_.next() & 1) != 0; });
  stats_.assign(netlist.channelCapacity(), ChannelStats{});
  channels_ = options_.trackChannelStats ? netlist.channelIds()
                                         : std::vector<ChannelId>{};
}

void Simulator::step() {
  ctx_.settle();
  if (options_.checkProtocol) ctx_.checkProtocol();

  for (const ChannelId id : channels_) {
    const ChannelSignals& s = ctx_.sig(id);
    ChannelStats& st = stats_[id];
    if (fwdTransfer(s)) ++st.fwdTransfers;
    if (killEvent(s)) ++st.kills;
    if (bwdTransfer(s)) ++st.bwdTransfers;
  }
  if (trace_ != nullptr) trace_->capture(ctx_);

  ctx_.edge();
}

void Simulator::run(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) step();
}

double Simulator::throughput(ChannelId ch) const {
  const std::uint64_t c = ctx_.cycle();
  if (c == 0) return 0.0;
  return static_cast<double>(stats_.at(ch).fwdTransfers) / static_cast<double>(c);
}

}  // namespace esl::sim
