#include "sim/simulator.h"

#include "elastic/endpoints.h"

namespace esl::sim {

Simulator::Simulator(Netlist& netlist, SimOptions options)
    : ctx_(netlist), options_(options) {
  ctx_.setProtocolChecking(options_.checkProtocol);
  ctx_.setThrowOnViolation(options_.throwOnViolation);
  ctx_.setKernel(options_.kernel);
  ctx_.setCrossCheck(options_.crossCheckKernels);
  ctx_.setShards(options_.shards);
  ctx_.setBackend(options_.backend);
  // Stateless per-(cycle, node, index) draw: order-independent by design, so
  // every kernel (and every shard count) sees the same choice stream. The
  // cycle is hashed separately before mixing in (node, index) so distinct
  // (cycle, index) pairs can never collide into the same draw.
  const std::uint64_t seed = options_.seed;
  SimContext* ctx = &ctx_;
  ctx_.setChoiceProvider([seed, ctx](NodeId node, unsigned idx) {
    const std::uint64_t perCycle = mix64(ctx->cycle(), seed);
    return (mix64(perCycle ^ (std::uint64_t{node} << 32 | idx), seed) & 1) != 0;
  });
  stats_.assign(netlist.channelCapacity(), ChannelStats{});
}

void Simulator::step() {
  ctx_.settle();
  if (options_.checkProtocol) ctx_.checkProtocol();

  if (options_.trackChannelStats) {
    // Word-parallel event sweep over the settled bitplanes: quiet 64-channel
    // groups cost two loads and an OR; only channels with an actual event
    // touch their counters.
    const SignalBoard& board = ctx_.board();
    const std::size_t groups = board.groupCount();
    for (std::size_t g = 0; g < groups; ++g) {
      if (board.activityAtGroup(g) == 0) continue;
      const SignalBoard::EventWord ev = board.eventsAtGroup(g);
      std::uint64_t any = ev.any();
      while (any != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(any));
        any &= any - 1;
        const std::uint32_t slot = static_cast<std::uint32_t>(g * 64 + bit);
        const std::uint64_t mask = std::uint64_t{1} << bit;
        const ChannelId ch = board.channelAtSlot(slot);
        if (ch >= stats_.size()) stats_.resize(ch + 1);  // post-surgery channel
        ChannelStats& st = stats_[ch];
        if (ev.fwd & mask) ++st.fwdTransfers;
        if (ev.kill & mask) ++st.kills;
        if (ev.bwd & mask) ++st.bwdTransfers;
      }
    }
  }
  if (trace_ != nullptr) trace_->capture(ctx_);

  ctx_.edge();
}

void Simulator::run(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) step();
}

double Simulator::throughput(ChannelId ch) const {
  const std::uint64_t c = ctx_.cycle();
  if (c == 0) return 0.0;
  return static_cast<double>(stats_.at(ch).fwdTransfers) / static_cast<double>(c);
}

std::string runReport(const Netlist& nl, const SimContext& ctx,
                      const std::map<std::string, std::uint64_t>* sinkCarry,
                      std::uint64_t violationCarry) {
  std::string out;
  for (const NodeId id : nl.nodeIds()) {
    if (const auto* sink = dynamic_cast<const TokenSink*>(&nl.node(id))) {
      std::uint64_t n = sink->received();
      if (sinkCarry != nullptr) {
        const auto it = sinkCarry->find(sink->name());
        if (it != sinkCarry->end()) n += it->second;
      }
      out += "sink '" + sink->name() + "': " + std::to_string(n) + " transfers\n";
    }
  }
  out += "protocol violations: " +
         std::to_string(ctx.protocolViolations().size() + violationCarry) + "\n";
  return out;
}

}  // namespace esl::sim
