#include "sched/scheduler.h"

#include <algorithm>

namespace esl::sched {

// --- CorrectingScheduler ----------------------------------------------------

unsigned CorrectingScheduler::predict(const std::vector<bool>& valid,
                                      const ChoiceReader& choice) {
  if (pending_ >= 0) return static_cast<unsigned>(pending_);
  const unsigned p = basePredict(valid, choice);
  ESL_CHECK(p < channels(), "scheduler: base prediction out of range");
  return p;
}

void CorrectingScheduler::observe(const Observation& obs) {
  // Release the lock once the owed channel is served or its token killed,
  // or when it ages out (false demand from an intervening buffer).
  if (pending_ >= 0) {
    const auto i = static_cast<std::size_t>(pending_);
    const bool done = (i < obs.served.size() && obs.served[i]) ||
                      (i < obs.killed.size() && obs.killed[i]);
    if (done || ++pendingAge_ > kMaxLockAge) {
      pending_ = -1;
      pendingAge_ = 0;
    }
  }
  // A new demand (selected-but-empty) locks the prediction onto that channel.
  for (unsigned i = 0; i < obs.demand.size(); ++i)
    if (obs.demand[i] && pending_ != static_cast<int>(i)) {
      pending_ = static_cast<int>(i);
      pendingAge_ = 0;
    }
  observeBase(obs);
}

void CorrectingScheduler::reset() {
  pending_ = -1;
  pendingAge_ = 0;
  resetBase();
}

void CorrectingScheduler::packState(StateWriter& w) const {
  w.writeU32(static_cast<std::uint32_t>(pending_ + 1));
  w.writeU32(pendingAge_);
  packBase(w);
}

void CorrectingScheduler::unpackState(StateReader& r) {
  pending_ = static_cast<int>(r.readU32()) - 1;
  pendingAge_ = r.readU32();
  unpackBase(r);
}

// --- StaticScheduler --------------------------------------------------------

StaticScheduler::StaticScheduler(unsigned channels, unsigned pick)
    : channels_(channels), pick_(pick) {
  ESL_CHECK(pick < channels, "StaticScheduler: pick out of range");
}

// --- RoundRobinScheduler ----------------------------------------------------

RoundRobinScheduler::RoundRobinScheduler(unsigned channels) : channels_(channels) {
  ESL_CHECK(channels >= 1, "RoundRobinScheduler: need at least one channel");
}

void RoundRobinScheduler::observeBase(const Observation& obs) {
  // The rotation advances every cycle; a demand re-anchors it (Table 1).
  int demanded = -1;
  for (unsigned i = 0; i < obs.demand.size(); ++i)
    if (obs.demand[i]) demanded = static_cast<int>(i);
  current_ = demanded >= 0 ? static_cast<unsigned>(demanded)
                           : (current_ + 1) % channels_;
}

// --- LastServedScheduler ----------------------------------------------------

LastServedScheduler::LastServedScheduler(unsigned channels) : channels_(channels) {
  ESL_CHECK(channels >= 1, "LastServedScheduler: need at least one channel");
}

void LastServedScheduler::observeBase(const Observation& obs) {
  for (unsigned i = 0; i < obs.served.size(); ++i)
    if (obs.served[i]) current_ = i;
  for (unsigned i = 0; i < obs.demand.size(); ++i)
    if (obs.demand[i]) current_ = i;
}

// --- TwoBitScheduler --------------------------------------------------------

TwoBitScheduler::TwoBitScheduler() = default;

void TwoBitScheduler::observeBase(const Observation& obs) {
  int demanded = -1;
  for (unsigned i = 0; i < obs.demand.size(); ++i)
    if (obs.demand[i]) demanded = static_cast<int>(i);
  if (demanded >= 0) {
    // A demand is ground truth about the current select; saturate toward it.
    counter_ = demanded == 1 ? 3 : 0;
    return;
  }
  if (obs.served.size() >= 2) {
    if (obs.served[1] && counter_ < 3) ++counter_;
    if (obs.served[0] && counter_ > 0) --counter_;
  }
}

// --- OracleScheduler --------------------------------------------------------

OracleScheduler::OracleScheduler(unsigned channels,
                                 std::function<unsigned(std::uint64_t)> truth)
    : channels_(channels), truth_(std::move(truth)) {
  ESL_CHECK(static_cast<bool>(truth_), "OracleScheduler: truth function required");
}

unsigned OracleScheduler::basePredict(const std::vector<bool>&, const ChoiceReader&) {
  const unsigned t = truth_(firings_);
  ESL_CHECK(t < channels_, "OracleScheduler: truth out of range");
  return t;
}

void OracleScheduler::observeBase(const Observation& obs) {
  for (unsigned i = 0; i < obs.served.size(); ++i)
    if (obs.served[i]) ++firings_;
}

// --- TimeoutScheduler ---------------------------------------------------------

TimeoutScheduler::TimeoutScheduler(unsigned channels, unsigned timeout)
    : channels_(channels), timeout_(timeout) {
  ESL_CHECK(channels >= 1, "TimeoutScheduler: need at least one channel");
  ESL_CHECK(timeout >= 1, "TimeoutScheduler: timeout must be positive");
}

void TimeoutScheduler::observeBase(const Observation& obs) {
  bool servedAny = false;
  for (unsigned i = 0; i < obs.served.size(); ++i)
    if (obs.served[i]) {
      current_ = i;  // last-value prediction
      servedAny = true;
    }
  for (unsigned i = 0; i < obs.demand.size(); ++i)
    if (obs.demand[i]) current_ = i;
  if (servedAny) {
    stalled_ = 0;
    return;
  }
  // Valid work exists but nothing moved: count toward the rotation timeout.
  bool pendingWork = false;
  for (unsigned i = 0; i < obs.valid.size(); ++i) pendingWork |= obs.valid[i];
  if (!pendingWork) {
    stalled_ = 0;
    return;
  }
  if (++stalled_ > timeout_) {
    current_ = (current_ + 1) % channels_;
    stalled_ = 0;
  }
}

// --- BoundedFairScheduler ---------------------------------------------------

BoundedFairScheduler::BoundedFairScheduler(unsigned channels, unsigned maxDefer)
    : channels_(channels), maxDefer_(maxDefer) {
  ESL_CHECK(channels >= 1, "BoundedFairScheduler: need at least one channel");
  (void)maxDefer_;
}

unsigned BoundedFairScheduler::basePredict(const std::vector<bool>&,
                                           const ChoiceReader& choice) {
  unsigned idx = 0;
  for (unsigned b = 0; b < choiceBits(); ++b)
    if (choice(b)) idx |= 1u << b;
  return idx % channels_;
}

unsigned BoundedFairScheduler::choiceBits() const {
  unsigned bits = 0;
  while ((1u << bits) < channels_) ++bits;
  return bits == 0 ? 1 : bits;
}

}  // namespace esl::sched
