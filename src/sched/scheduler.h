// Scheduler interface for shared speculative modules (paper §4.1.1).
//
// A scheduler predicts, every clock cycle, which input channel of a shared
// module may use the shared resource — implicitly predicting the future value
// of the multiplexer select. For correctness it must satisfy the leads-to
// property (paper eq. 1): every valid input token is eventually served or
// killed; the practical mechanism is that the early-evaluation multiplexer
// asserts S+ on its *selected-but-empty* input (a "demand"), which the shared
// module reports to the scheduler so it can correct a misprediction.
//
// predict() is called during combinational settling and MUST be a pure
// function of (internal state, the argument vectors, the per-cycle choice
// bits); all state updates happen in observe(), called once per clock edge.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/error.h"
#include "base/rng.h"
#include "elastic/state_io.h"

namespace esl::sched {

/// Everything a scheduler may learn at a clock edge.
struct Observation {
  std::vector<bool> valid;   ///< input channel carried a token this cycle
  std::vector<bool> demand;  ///< output channel was selected-but-empty (mispredict)
  std::vector<bool> served;  ///< output channel completed a forward transfer
  std::vector<bool> killed;  ///< input token was cancelled by an anti-token
  unsigned predicted = 0;    ///< the prediction that was in force this cycle
};

/// Reads one of the per-cycle nondeterministic choice bits owned by the
/// enclosing shared module (used only by verification schedulers).
using ChoiceReader = std::function<bool(unsigned)>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Number of channels this scheduler arbitrates.
  virtual unsigned channels() const = 0;

  /// Channel predicted for the current cycle. Pure (see file comment).
  virtual unsigned predict(const std::vector<bool>& valid,
                           const ChoiceReader& choice) = 0;

  /// Clock-edge update with the cycle's outcome.
  virtual void observe(const Observation& obs) { (void)obs; }

  virtual void reset() {}

  /// Nondeterministic choice bits consumed per cycle (verification only).
  virtual unsigned choiceBits() const { return 0; }

  virtual void packState(StateWriter& w) const { (void)w; }
  virtual void unpackState(StateReader& r) { (void)r; }

  virtual std::string name() const = 0;
};

/// Base for schedulers that correct mispredictions: when the early-eval mux
/// demands a channel (selected-but-empty stop), the prediction locks onto
/// that channel until its token is served or killed. Without the lock an
/// adversarial consumer can livelock the system — the mux's demand disappears
/// while the channel is routed, the scheduler drifts away, and the token is
/// never served (a leads-to violation our model checker finds).
class CorrectingScheduler : public Scheduler {
 public:
  unsigned predict(const std::vector<bool>& valid, const ChoiceReader& choice) final;
  void observe(const Observation& obs) final;
  void reset() final;
  void packState(StateWriter& w) const final;
  void unpackState(StateReader& r) final;

 protected:
  /// Prediction when no correction is pending.
  virtual unsigned basePredict(const std::vector<bool>& valid,
                               const ChoiceReader& choice) = 0;
  /// Policy-specific part of observe().
  virtual void observeBase(const Observation& obs) { (void)obs; }
  virtual void resetBase() {}
  virtual void packBase(StateWriter& w) const { (void)w; }
  virtual void unpackBase(StateReader& r) { (void)r; }

 private:
  /// The correction lock ages out after this many cycles without service.
  /// A demand from the early-eval mux is always serviced within a couple of
  /// cycles (bounded-fair consumers), so a lock that persists longer is a
  /// *false* demand: an intervening elastic buffer back-pressuring an
  /// unrouted output looks identical to a mux demand at the shared module's
  /// ports, and without the age-out the scheduler would wedge on it.
  static constexpr unsigned kMaxLockAge = 4;

  int pending_ = -1;  ///< channel owed service after a demand, -1 if none
  unsigned pendingAge_ = 0;
};

/// Always predicts a fixed channel. Relies entirely on demand correction;
/// this is the "always speculate no-error" scheduler of the §5.1/§5.2 case
/// studies (with correction toward the replay channel).
class StaticScheduler : public CorrectingScheduler {
 public:
  StaticScheduler(unsigned channels, unsigned pick);
  unsigned channels() const override { return channels_; }
  unsigned pick() const { return pick_; }
  std::string name() const override { return "static"; }

 protected:
  unsigned basePredict(const std::vector<bool>&, const ChoiceReader&) override {
    return pick_;
  }

 private:
  unsigned channels_;
  unsigned pick_;
};

/// Alternates channels every cycle; a demand overrides the rotation.
/// This is the scheduler that reproduces Table 1.
class RoundRobinScheduler : public CorrectingScheduler {
 public:
  explicit RoundRobinScheduler(unsigned channels);
  unsigned channels() const override { return channels_; }
  std::string name() const override { return "round-robin"; }

 protected:
  unsigned basePredict(const std::vector<bool>&, const ChoiceReader&) override {
    return current_;
  }
  void observeBase(const Observation& obs) override;
  void resetBase() override { current_ = 0; }
  void packBase(StateWriter& w) const override { w.writeU32(current_); }
  void unpackBase(StateReader& r) override { current_ = r.readU32(); }

 private:
  unsigned channels_;
  unsigned current_ = 0;
};

/// Predicts the channel that was most recently actually used (last-value
/// prediction); demands override immediately.
class LastServedScheduler : public CorrectingScheduler {
 public:
  explicit LastServedScheduler(unsigned channels);
  unsigned channels() const override { return channels_; }
  std::string name() const override { return "last-served"; }

 protected:
  unsigned basePredict(const std::vector<bool>&, const ChoiceReader&) override {
    return current_;
  }
  void observeBase(const Observation& obs) override;
  void resetBase() override { current_ = 0; }
  void packBase(StateWriter& w) const override { w.writeU32(current_); }
  void unpackBase(StateReader& r) override { current_ = r.readU32(); }

 private:
  unsigned channels_;
  unsigned current_ = 0;
};

/// Two-bit saturating counter between two channels (branch-predictor style).
class TwoBitScheduler : public CorrectingScheduler {
 public:
  TwoBitScheduler();
  unsigned channels() const override { return 2; }
  std::string name() const override { return "two-bit"; }

 protected:
  unsigned basePredict(const std::vector<bool>&, const ChoiceReader&) override {
    return counter_ >= 2 ? 1 : 0;
  }
  void observeBase(const Observation& obs) override;
  void resetBase() override { counter_ = 1; }
  void packBase(StateWriter& w) const override { w.writeU32(counter_); }
  void unpackBase(StateReader& r) override { counter_ = r.readU32(); }

 private:
  unsigned counter_ = 1;  // 0..3; >=2 predicts channel 1
};

/// Perfect prediction: told the true channel of each upcoming firing.
/// `truth(k)` must return the channel of the k-th firing (0-based).
class OracleScheduler : public CorrectingScheduler {
 public:
  OracleScheduler(unsigned channels, std::function<unsigned(std::uint64_t)> truth);
  unsigned channels() const override { return channels_; }
  std::string name() const override { return "oracle"; }

 protected:
  unsigned basePredict(const std::vector<bool>&, const ChoiceReader&) override;
  void observeBase(const Observation& obs) override;
  void resetBase() override { firings_ = 0; }
  void packBase(StateWriter& w) const override { w.writeU64(firings_); }
  void unpackBase(StateReader& r) override { firings_ = r.readU64(); }

 private:
  unsigned channels_;
  std::function<unsigned(std::uint64_t)> truth_;
  std::uint64_t firings_ = 0;
};

/// Last-served prediction with a stall timeout: if the predicted channel has
/// a valid token but nothing is served for `timeout` consecutive cycles, the
/// prediction rotates. Needed when elastic buffers sit between the shared
/// module and the early-evaluation mux (§4.1): the mux's misprediction demand
/// cannot reach the scheduler through the buffer, so liveness (eq. 1) must
/// come from the scheduler's own rotation.
class TimeoutScheduler : public CorrectingScheduler {
 public:
  TimeoutScheduler(unsigned channels, unsigned timeout = 1);
  unsigned channels() const override { return channels_; }
  unsigned timeout() const { return timeout_; }
  std::string name() const override { return "timeout"; }

 protected:
  unsigned basePredict(const std::vector<bool>&, const ChoiceReader&) override {
    return current_;
  }
  void observeBase(const Observation& obs) override;
  void resetBase() override {
    current_ = 0;
    stalled_ = 0;
  }
  void packBase(StateWriter& w) const override {
    w.writeU32(current_);
    w.writeU32(stalled_);
  }
  void unpackBase(StateReader& r) override {
    current_ = r.readU32();
    stalled_ = r.readU32();
  }

 private:
  unsigned channels_;
  unsigned timeout_;
  unsigned current_ = 0;
  unsigned stalled_ = 0;
};

/// Nondeterministic scheduler with bounded-fairness demand correction: free
/// choice each cycle, but a demand outstanding for `maxDefer` cycles forces
/// the prediction to that channel. Used by the verifier as an executable
/// over-approximation of "any scheduler satisfying the leads-to property".
class BoundedFairScheduler : public CorrectingScheduler {
 public:
  explicit BoundedFairScheduler(unsigned channels, unsigned maxDefer = 1);
  unsigned channels() const override { return channels_; }
  unsigned maxDefer() const { return maxDefer_; }
  unsigned choiceBits() const override;
  std::string name() const override { return "bounded-fair"; }

 protected:
  unsigned basePredict(const std::vector<bool>&, const ChoiceReader& choice) override;

 private:
  unsigned channels_;
  unsigned maxDefer_;  // retained for interface compatibility (lock is immediate)
};

/// Deliberately unfair: ignores demands and always predicts channel 0.
/// Violates the leads-to property — negative test input for the verifier.
class StarvingScheduler : public Scheduler {
 public:
  explicit StarvingScheduler(unsigned channels) : channels_(channels) {}
  unsigned channels() const override { return channels_; }
  unsigned predict(const std::vector<bool>&, const ChoiceReader&) override { return 0; }
  std::string name() const override { return "starving"; }

 private:
  unsigned channels_;
};

}  // namespace esl::sched
