// Graphviz export of an elastic netlist (the paper's toolkit lets the user
// "visualize the modified graph" during exploration).
#pragma once

#include <string>

#include "elastic/netlist.h"

namespace esl::netlist {

/// DOT digraph: nodes labelled "name\n(kind)", edges labelled with channel
/// name and width. EBs are drawn as boxes (storage), everything else as
/// ellipses.
std::string toDot(const Netlist& nl, const std::string& graphName = "elastic");

}  // namespace esl::netlist
