#include "netlist/patterns.h"

#include "base/rng.h"
#include "logic/alu.h"
#include "logic/cost.h"
#include "logic/secded.h"

namespace esl::patterns {

namespace {

/// F of the Fig. 1 loop: any pure unary transform works for Shannon
/// decomposition; this one mixes bits so data streams are distinguishable.
BitVec fig1F(const BitVec& x) {
  const unsigned w = x.width();
  return ((x << 2) ^ x) + BitVec(w, 7);
}

bool fig1Branch(const BitVec& pc, unsigned takenPermille) {
  return hashChancePermille(pc.toUint64(), takenPermille, /*salt=*/0xb2a7c3);
}

}  // namespace

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

Table1System buildTable1(std::vector<std::uint64_t> selStream, std::uint64_t base0,
                         std::uint64_t base1,
                         std::unique_ptr<sched::Scheduler> scheduler) {
  Table1System s;
  Netlist& nl = s.nl;
  const unsigned w = 8;

  s.src0 = &nl.make<TokenSource>("src0", w, TokenSource::counting(w, base0));
  s.src1 = &nl.make<TokenSource>("src1", w, TokenSource::counting(w, base1));
  s.selSrc =
      &nl.make<TokenSource>("selSrc", 1, TokenSource::listOf(std::move(selStream), 1));

  if (!scheduler) scheduler = std::make_unique<sched::RoundRobinScheduler>(2);
  s.shared = &nl.make<SharedModule>(
      "F", 2, w, w, [](const BitVec& x) { return x; }, std::move(scheduler),
      logic::Cost{4.0, 30.0});
  s.mux = &nl.make<EarlyEvalMux>("mux", 2, 1, w);
  s.sink = &nl.make<TokenSink>("sink", w);

  s.fin0 = nl.connect(*s.src0, 0, *s.shared, 0, "Fin0");
  s.fin1 = nl.connect(*s.src1, 0, *s.shared, 1, "Fin1");
  s.fout0 = nl.connect(*s.shared, 0, *s.mux, 1, "Fout0");
  s.fout1 = nl.connect(*s.shared, 1, *s.mux, 2, "Fout1");
  s.sel = nl.connect(*s.selSrc, 0, *s.mux, 0, "Sel");
  s.ebin = nl.connect(*s.mux, 0, *s.sink, 0, "EBin");
  nl.validate();
  return s;
}

// ---------------------------------------------------------------------------
// Fig. 1
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> fig1PcSequence(const Fig1Config& c, std::size_t n) {
  std::vector<std::uint64_t> seq;
  seq.reserve(n);
  BitVec pc(c.width, c.pc0);
  for (std::size_t i = 0; i < n; ++i) {
    seq.push_back(pc.toUint64());
    const bool taken = fig1Branch(pc, c.takenPermille);
    const BitVec step(c.width, taken ? c.takenStep : c.notTakenStep);
    pc = fig1F(pc + step);
  }
  return seq;
}

namespace {

std::unique_ptr<sched::Scheduler> makeFig1Scheduler(const Fig1Config& c) {
  switch (c.scheduler) {
    case Fig1Scheduler::kStatic0:
      return std::make_unique<sched::StaticScheduler>(2, 0);
    case Fig1Scheduler::kLastServed:
      return std::make_unique<sched::LastServedScheduler>(2);
    case Fig1Scheduler::kTwoBit:
      return std::make_unique<sched::TwoBitScheduler>();
    case Fig1Scheduler::kRoundRobin:
      return std::make_unique<sched::RoundRobinScheduler>(2);
    case Fig1Scheduler::kOracle: {
      // The loop is deterministic: the k-th firing selects G(pc_k).
      auto cfg = c;
      auto cache = std::make_shared<std::vector<std::uint64_t>>();
      return std::make_unique<sched::OracleScheduler>(
          2, [cfg, cache](std::uint64_t k) -> unsigned {
            while (cache->size() <= k) {
              const std::size_t need = cache->size() + 64;
              *cache = fig1PcSequence(cfg, need);
            }
            return fig1Branch(BitVec(cfg.width, (*cache)[k]), cfg.takenPermille) ? 1 : 0;
          });
    }
  }
  throw EslError("buildFig1: unknown scheduler");
}

}  // namespace

Fig1System buildFig1(Fig1Variant variant, const Fig1Config& c) {
  Fig1System s;
  Netlist& nl = s.nl;
  const unsigned w = c.width;

  auto& eb = nl.make<ElasticBuffer>("pc", w, 2, std::vector<BitVec>{BitVec(w, c.pc0)});
  auto& fork = nl.make<ForkNode>("fork", w, 4);
  s.observer = &nl.make<TokenSink>("observer", w);

  auto& g = makeUnary(
      nl, "G", w, 1,
      [c](const BitVec& pc) {
        return BitVec(1, fig1Branch(pc, c.takenPermille) ? 1 : 0);
      },
      logic::Cost{c.delayG, 60.0});
  auto& w0 = makeUnary(
      nl, "nextpc", w, w,
      [c, w](const BitVec& pc) { return pc + BitVec(w, c.notTakenStep); },
      logic::Cost{2.0, 18.0});
  auto& w1 = makeUnary(
      nl, "target", w, w,
      [c, w](const BitVec& pc) { return pc + BitVec(w, c.takenStep); },
      logic::Cost{2.0, 18.0});

  s.loopChannel = nl.connect(eb, 0, fork, 0, "pc.out");
  nl.connect(fork, 0, g, 0, "pc.g");
  nl.connect(fork, 1, w0, 0, "pc.w0");
  nl.connect(fork, 2, w1, 0, "pc.w1");
  nl.connect(fork, 3, *s.observer, 0, "pc.obs");

  const logic::Cost fCost{c.delayF, c.areaF};

  switch (variant) {
    case Fig1Variant::kNonSpeculative:
    case Fig1Variant::kBubble: {
      auto& mux = makeJoinMux(nl, "mux", 2, 1, w);
      auto& f = makeUnary(nl, "F", w, w, fig1F, fCost);
      nl.connect(g, 0, mux, 0, "sel");
      nl.connect(w0, 0, mux, 1, "d0");
      nl.connect(w1, 0, mux, 2, "d1");
      const ChannelId muxOut = nl.connect(mux, 0, f, 0, "mux.out");
      nl.connect(f, 0, eb, 0, "pc.in");
      if (variant == Fig1Variant::kBubble) {
        auto& bubble = nl.make<ElasticBuffer>("bubble", w);
        nl.insertOnChannel(muxOut, bubble);
      }
      break;
    }
    case Fig1Variant::kShannon: {
      auto& f0 = makeUnary(nl, "F0", w, w, fig1F, fCost);
      auto& f1 = makeUnary(nl, "F1", w, w, fig1F, fCost);
      auto& mux = makeJoinMux(nl, "mux", 2, 1, w);
      nl.connect(w0, 0, f0, 0, "w0.f");
      nl.connect(w1, 0, f1, 0, "w1.f");
      nl.connect(g, 0, mux, 0, "sel");
      nl.connect(f0, 0, mux, 1, "d0");
      nl.connect(f1, 0, mux, 2, "d1");
      nl.connect(mux, 0, eb, 0, "pc.in");
      break;
    }
    case Fig1Variant::kSpeculative: {
      s.shared = &nl.make<SharedModule>("F", 2, w, w, fig1F, makeFig1Scheduler(c), fCost);
      auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, w);
      nl.connect(w0, 0, *s.shared, 0, "Fin0");
      nl.connect(w1, 0, *s.shared, 1, "Fin1");
      nl.connect(*s.shared, 0, mux, 1, "Fout0");
      nl.connect(*s.shared, 1, mux, 2, "Fout1");
      nl.connect(g, 0, mux, 0, "sel");
      nl.connect(mux, 0, eb, 0, "pc.in");
      break;
    }
  }
  nl.validate();
  return s;
}

// ---------------------------------------------------------------------------
// §5.1 variable-latency ALU
// ---------------------------------------------------------------------------

namespace {

/// Mask clearing the MSB of every `segment`-bit group: operands under this
/// mask can never carry across a segment boundary.
std::uint64_t noCarryMask(unsigned width, unsigned segment) {
  std::uint64_t mask = 0;
  for (unsigned i = 0; i < width; ++i)
    if (i % segment != segment - 1) mask |= 1ULL << i;
  return mask;
}

/// Operand-pair generator with a controlled error (2-cycle) rate.
TokenSource::Generator vluOperandGen(const VluConfig& c) {
  const std::uint64_t clean = noCarryMask(c.width, c.segment);
  const std::uint64_t segMask = (1ULL << c.segment) - 1;
  const std::uint64_t widthMask =
      c.width >= 64 ? ~0ULL : ((1ULL << c.width) - 1);
  return [c, clean, segMask, widthMask](std::uint64_t i) -> std::optional<BitVec> {
    const std::uint64_t r1 = mix64(i, c.seed * 3 + 1);
    const std::uint64_t r2 = mix64(i, c.seed * 3 + 2);
    std::uint64_t a, b;
    if (hashChancePermille(i, c.errPermille, c.seed)) {
      // Force a carry out of the lowest segment: a_low = all ones, b_low = 1.
      a = ((r1 & ~segMask) | segMask) & widthMask;
      b = ((r2 & ~segMask) | 1ULL) & widthMask;
    } else {
      a = r1 & clean & widthMask;
      b = r2 & clean & widthMask;
    }
    return logic::packAluOperands(BitVec(c.width, a), BitVec(c.width, b),
                                  logic::AluOp::kAdd);
  };
}

/// Downstream consumer stage G of Fig. 6 (any pure transform).
BitVec vluG(const BitVec& x) { return x ^ (x >> 1); }

}  // namespace

std::vector<std::uint64_t> vluGolden(const VluConfig& c, std::size_t n) {
  const auto gen = vluOperandGen(c);
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const BitVec packed = *gen(i);
    out.push_back(vluG(logic::aluExact(packed, c.width)).toUint64());
  }
  return out;
}

VluSystem buildStallingVlu(const VluConfig& c) {
  VluSystem s;
  Netlist& nl = s.nl;
  const unsigned packedW = 2 * c.width + 2;

  s.src = &nl.make<TokenSource>("src", packedW, vluOperandGen(c));
  s.vlu = &nl.make<StallingVLU>(
      "vlu", packedW, c.width,
      [c](const BitVec& x) { return logic::aluExact(x, c.width); },
      [c](const BitVec& x) { return logic::aluApproxError(x, c.width, c.segment); },
      logic::aluApproxCost(c.width, c.segment), logic::aluExactCost(c.width),
      logic::aluErrorPredictorCost(c.width, c.segment));
  auto& g = makeUnary(nl, "G", c.width, c.width, vluG, logic::Cost{c.delayG, 40.0});
  auto& outEb = nl.make<ElasticBuffer>("out", c.width);
  s.sink = &nl.make<TokenSink>("sink", c.width);

  nl.connect(*s.src, 0, *s.vlu, 0, "ops");
  nl.connect(*s.vlu, 0, g, 0, "vlu.out");
  nl.connect(g, 0, outEb, 0, "g.out");
  s.outChannel = nl.connect(outEb, 0, *s.sink, 0, "result");
  nl.validate();
  return s;
}

VluSystem buildSpeculativeVlu(const VluConfig& c) {
  // Fig. 6(b) with the pipeline structure spelled out: F_exact is split over
  // two cycles (the empty EB of the figure retimed into its middle), both
  // shared-module inputs have an EB storing the token waiting to be served
  // (§4.1), and the F_err select path is delayed by one EB so the select
  // token reaches the early-eval mux in the same cycle as the approximate
  // result. Error-free tokens finish in one effective cycle; a flagged
  // operand replays through the exact channel one cycle later.
  VluSystem s;
  Netlist& nl = s.nl;
  const unsigned packedW = 2 * c.width + 2;
  const unsigned w = c.width;
  const logic::Cost exactCost = logic::aluExactCost(c.width);

  s.src = &nl.make<TokenSource>("src", packedW, vluOperandGen(c));
  auto& fork = nl.make<ForkNode>("fork", packedW, 3);

  auto& fApprox = makeUnary(
      nl, "Fapprox", packedW, w,
      [c](const BitVec& x) { return logic::aluApprox(x, c.width, c.segment); },
      logic::aluApproxCost(c.width, c.segment));
  auto& ebA = nl.make<ElasticBuffer>("ebA", w);
  // F_exact stage 1: first half of the carry chain (timing only; the packed
  // operands pass through so stage 2 can finish the computation).
  auto& fExact1 = makeUnary(
      nl, "Fexact1", packedW, packedW, [](const BitVec& x) { return x; },
      logic::Cost{exactCost.delay / 2.0, exactCost.area / 2.0});
  auto& bubble = nl.make<ElasticBuffer>("bubble", packedW);
  auto& fExact2 = makeUnary(
      nl, "Fexact2", packedW, w,
      [c](const BitVec& x) { return logic::aluExact(x, c.width); },
      logic::Cost{exactCost.delay / 2.0, exactCost.area / 2.0});
  auto& ebX = nl.make<ElasticBuffer>("ebX", w);

  auto& fErr = makeUnary(
      nl, "Ferr", packedW, 1,
      [c](const BitVec& x) {
        return BitVec(1, logic::aluApproxError(x, c.width, c.segment) ? 1 : 0);
      },
      logic::aluErrorPredictorCost(c.width, c.segment));
  auto& ebE = nl.make<ElasticBuffer>("ebE", 1);

  s.shared = &nl.make<SharedModule>("G", 2, w, w, vluG,
                                    std::make_unique<sched::StaticScheduler>(2, 0),
                                    logic::Cost{c.delayG, 40.0});
  auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, w);
  auto& outEb = nl.make<ElasticBuffer>("out", w);
  s.sink = &nl.make<TokenSink>("sink", w);

  nl.connect(*s.src, 0, fork, 0, "ops");
  nl.connect(fork, 0, fApprox, 0, "ops.a");
  nl.connect(fork, 1, fExact1, 0, "ops.e");
  nl.connect(fork, 2, fErr, 0, "ops.err");
  nl.connect(fApprox, 0, ebA, 0, "approx");
  nl.connect(ebA, 0, *s.shared, 0, "Gin0");
  nl.connect(fExact1, 0, bubble, 0, "exact.mid");
  nl.connect(bubble, 0, fExact2, 0, "exact.ops");
  nl.connect(fExact2, 0, ebX, 0, "exact");
  nl.connect(ebX, 0, *s.shared, 1, "Gin1");
  nl.connect(*s.shared, 0, mux, 1, "Gout0");
  nl.connect(*s.shared, 1, mux, 2, "Gout1");
  nl.connect(fErr, 0, ebE, 0, "err.raw");
  nl.connect(ebE, 0, mux, 0, "err");
  nl.connect(mux, 0, outEb, 0, "mux.out");
  s.outChannel = nl.connect(outEb, 0, *s.sink, 0, "result");
  nl.validate();
  return s;
}

// ---------------------------------------------------------------------------
// §5.2 SECDED resilient adder
// ---------------------------------------------------------------------------

namespace {

/// Code-word source with seeded single/double bit-flip injection.
TokenSource::Generator secdedCodeGen(const SecdedConfig& c, std::uint64_t stream) {
  return [c, stream](std::uint64_t i) -> std::optional<BitVec> {
    const BitVec data(64, mix64(i, c.seed * 97 + stream));
    BitVec code = logic::secdedEncode(data);
    const std::uint64_t sel = mix64(i, c.seed * 131 + stream + 5);
    if (hashChancePermille(i, c.doublePermille, c.seed + stream + 17)) {
      const unsigned p1 = sel % logic::kSecdedCodeBits;
      const unsigned p2 = (p1 + 1 + (sel >> 8) % (logic::kSecdedCodeBits - 1)) %
                          logic::kSecdedCodeBits;
      code.setBit(p1, !code.bit(p1));
      code.setBit(p2, !code.bit(p2));
    } else if (hashChancePermille(i, c.flipPermille, c.seed + stream)) {
      const unsigned p = sel % logic::kSecdedCodeBits;
      code.setBit(p, !code.bit(p));
    }
    return code;
  };
}

BitVec secdedCorrectWord(const BitVec& code) {
  return logic::secdedEncode(logic::secdedDecode(code).data);
}

BitVec secdedPairSum(const BitVec& pair) {
  const BitVec a = logic::secdedPayload(pair.slice(0, 72));
  const BitVec b = logic::secdedPayload(pair.slice(72, 72));
  return a + b;
}

}  // namespace

std::vector<std::uint64_t> secdedGolden(const SecdedConfig& c, std::size_t n) {
  const auto genA = secdedCodeGen(c, 1);
  const auto genB = secdedCodeGen(c, 2);
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const BitVec a = logic::secdedDecode(*genA(i)).data;
    const BitVec b = logic::secdedDecode(*genB(i)).data;
    out.push_back((a + b).toUint64());
  }
  return out;
}

SecdedSystem buildSecdedPipeline(const SecdedConfig& c) {
  SecdedSystem s;
  Netlist& nl = s.nl;

  auto& srcA = nl.make<TokenSource>("srcA", 72, secdedCodeGen(c, 1));
  auto& srcB = nl.make<TokenSource>("srcB", 72, secdedCodeGen(c, 2));
  auto& fixA = makeUnary(
      nl, "secdedA", 72, 64,
      [](const BitVec& x) { return logic::secdedDecode(x).data; },
      logic::secdedDecoderCost());
  auto& fixB = makeUnary(
      nl, "secdedB", 72, 64,
      [](const BitVec& x) { return logic::secdedDecode(x).data; },
      logic::secdedDecoderCost());
  auto& ebA = nl.make<ElasticBuffer>("ebA", 64);
  auto& ebB = nl.make<ElasticBuffer>("ebB", 64);
  auto& add = makeBinary(
      nl, "add", 64, 64, 64,
      [](const BitVec& a, const BitVec& b) { return a + b; },
      logic::koggeStoneAdderCost(64));
  auto& outEb = nl.make<ElasticBuffer>("out", 64);
  s.sink = &nl.make<TokenSink>("sink", 64);

  nl.connect(srcA, 0, fixA, 0, "codeA");
  nl.connect(srcB, 0, fixB, 0, "codeB");
  nl.connect(fixA, 0, ebA, 0, "dataA");
  nl.connect(fixB, 0, ebB, 0, "dataB");
  nl.connect(ebA, 0, add, 0, "addA");
  nl.connect(ebB, 0, add, 1, "addB");
  nl.connect(add, 0, outEb, 0, "sum");
  s.outChannel = nl.connect(outEb, 0, *s.sink, 0, "result");
  nl.validate();
  return s;
}

SecdedSystem buildSecdedSpeculative(const SecdedConfig& c) {
  SecdedSystem s;
  Netlist& nl = s.nl;

  auto& srcA = nl.make<TokenSource>("srcA", 72, secdedCodeGen(c, 1));
  auto& srcB = nl.make<TokenSource>("srcB", 72, secdedCodeGen(c, 2));
  auto& pair = makeBinary(
      nl, "pair", 72, 72, 144,
      [](const BitVec& a, const BitVec& b) { return a.concat(b); },
      logic::Cost{0.0, 0.0});
  auto& fork = nl.make<ForkNode>("fork", 144, 3);

  auto& raw = makeWire(nl, "raw", 144);
  auto& fix = makeUnary(
      nl, "secded", 144, 144,
      [](const BitVec& p) {
        return secdedCorrectWord(p.slice(0, 72))
            .concat(secdedCorrectWord(p.slice(72, 72)));
      },
      logic::Cost{logic::secdedDecoderCost().delay,
                  2.0 * logic::secdedDecoderCost().area});
  auto& err = makeUnary(
      nl, "errdet", 144, 1,
      [](const BitVec& p) {
        const bool e0 =
            logic::secdedDecode(p.slice(0, 72)).status != logic::SecdedStatus::kOk;
        const bool e1 =
            logic::secdedDecode(p.slice(72, 72)).status != logic::SecdedStatus::kOk;
        return BitVec(1, (e0 || e1) ? 1 : 0);
      },
      logic::Cost{logic::secdedDecoderCost().delay + 1.0, 30.0});
  auto& bubble = nl.make<ElasticBuffer>("bubble", 144);

  s.shared = &nl.make<SharedModule>("add", 2, 144, 64, secdedPairSum,
                                    std::make_unique<sched::StaticScheduler>(2, 0),
                                    logic::koggeStoneAdderCost(64));
  auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, 64);
  auto& outEb = nl.make<ElasticBuffer>("out", 64);
  s.sink = &nl.make<TokenSink>("sink", 64);

  nl.connect(srcA, 0, pair, 0, "codeA");
  nl.connect(srcB, 0, pair, 1, "codeB");
  nl.connect(pair, 0, fork, 0, "pair");
  nl.connect(fork, 0, raw, 0, "pair.raw");
  nl.connect(fork, 1, fix, 0, "pair.fix");
  nl.connect(fork, 2, err, 0, "pair.err");
  nl.connect(raw, 0, *s.shared, 0, "addin0");
  nl.connect(fix, 0, bubble, 0, "corrected");
  nl.connect(bubble, 0, *s.shared, 1, "addin1");
  nl.connect(*s.shared, 0, mux, 1, "addout0");
  nl.connect(*s.shared, 1, mux, 2, "addout1");
  nl.connect(err, 0, mux, 0, "err");
  nl.connect(mux, 0, outEb, 0, "mux.out");
  s.outChannel = nl.connect(outEb, 0, *s.sink, 0, "result");
  nl.validate();
  return s;
}

}  // namespace esl::patterns
