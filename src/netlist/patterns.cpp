#include "netlist/patterns.h"

#include "base/rng.h"
#include "elastic/registry.h"
#include "logic/alu.h"
#include "logic/cost.h"
#include "logic/secded.h"
#include "netlist/stdlib.h"

namespace esl::patterns {

namespace {

/// Salt of the Fig. 1 branch predicate (the registered `permille` fn).
constexpr std::uint64_t kFig1BranchSalt = 0xb2a7c3;

bool fig1Branch(const BitVec& pc, unsigned takenPermille) {
  return hashChancePermille(pc.toUint64(), takenPermille, kFig1BranchSalt);
}

/// Shared module around a caller-built scheduler: constructed through the
/// registry (and thus serializable) when the scheduling policy is describable
/// as data — the instance is rebuilt from its spec; oracle-style policies
/// that close over C++ state fall back to direct construction.
SharedModule& makeSharedWithScheduler(Netlist& nl, const std::string& name,
                                      unsigned k, unsigned inW, unsigned outW,
                                      const std::string& fnName,
                                      const Params& fnParams,
                                      std::unique_ptr<sched::Scheduler> scheduler,
                                      logic::Cost fnCost) {
  Params schedSpec;
  const bool serializable = Registry::describeScheduler(*scheduler, schedSpec, "sched");

  NodeSpec spec;
  spec.kind = "shared";
  spec.name = name;
  spec.params.setU64("k", k).setU64("in", inW).setU64("out", outW);
  spec.params.set("fn", fnName);
  for (const auto& [key, value] : fnParams.entries())
    spec.params.set("fn." + key, value);
  for (const auto& [key, value] : schedSpec.entries())
    spec.params.set(key, value);  // describeScheduler keys are already prefixed
  spec.params.setReal("delay", fnCost.delay).setReal("area", fnCost.area);

  if (serializable)
    return static_cast<SharedModule&>(Registry::instance().makeNode(nl, spec));
  // Oracle-style policies close over C++ state: construct directly (the fn
  // still resolves through the catalog; the node just carries no attributes).
  return nl.make<SharedModule>(
      name, k, inW, outW,
      unaryAdapter(Registry::instance().makeFn({{inW}, outW}, spec.params, "fn")),
      std::move(scheduler), fnCost);
}

}  // namespace

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

Table1System buildTable1(std::vector<std::uint64_t> selStream, std::uint64_t base0,
                         std::uint64_t base1,
                         std::unique_ptr<sched::Scheduler> scheduler) {
  stdlib::ensureRegistered();
  Table1System s;
  Netlist& nl = s.nl;
  const unsigned w = 8;

  s.src0 = &makeSourceNode(nl, "src0", w, "counting", Params{}.setU64("base", base0));
  s.src1 = &makeSourceNode(nl, "src1", w, "counting", Params{}.setU64("base", base1));
  s.selSrc =
      &makeSourceNode(nl, "selSrc", 1, "list", Params{}.setU64List("values", selStream));

  if (!scheduler) scheduler = std::make_unique<sched::RoundRobinScheduler>(2);
  s.shared = &makeSharedWithScheduler(nl, "F", 2, w, w, "id", {},
                                      std::move(scheduler), logic::Cost{4.0, 30.0});
  s.mux = &nl.make<EarlyEvalMux>("mux", 2, 1, w);
  s.sink = &nl.make<TokenSink>("sink", w);

  s.fin0 = nl.connect(*s.src0, 0, *s.shared, 0, "Fin0");
  s.fin1 = nl.connect(*s.src1, 0, *s.shared, 1, "Fin1");
  s.fout0 = nl.connect(*s.shared, 0, *s.mux, 1, "Fout0");
  s.fout1 = nl.connect(*s.shared, 1, *s.mux, 2, "Fout1");
  s.sel = nl.connect(*s.selSrc, 0, *s.mux, 0, "Sel");
  s.ebin = nl.connect(*s.mux, 0, *s.sink, 0, "EBin");
  nl.validate();
  return s;
}

// ---------------------------------------------------------------------------
// Fig. 1
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> fig1PcSequence(const Fig1Config& c, std::size_t n) {
  std::vector<std::uint64_t> seq;
  seq.reserve(n);
  BitVec pc(c.width, c.pc0);
  for (std::size_t i = 0; i < n; ++i) {
    seq.push_back(pc.toUint64());
    const bool taken = fig1Branch(pc, c.takenPermille);
    const BitVec step(c.width, taken ? c.takenStep : c.notTakenStep);
    pc = stdlib::fig1Mix(pc + step);
  }
  return seq;
}

namespace {

std::unique_ptr<sched::Scheduler> makeFig1Scheduler(const Fig1Config& c) {
  switch (c.scheduler) {
    case Fig1Scheduler::kStatic0:
      return std::make_unique<sched::StaticScheduler>(2, 0);
    case Fig1Scheduler::kLastServed:
      return std::make_unique<sched::LastServedScheduler>(2);
    case Fig1Scheduler::kTwoBit:
      return std::make_unique<sched::TwoBitScheduler>();
    case Fig1Scheduler::kRoundRobin:
      return std::make_unique<sched::RoundRobinScheduler>(2);
    case Fig1Scheduler::kOracle: {
      // The loop is deterministic: the k-th firing selects G(pc_k).
      auto cfg = c;
      auto cache = std::make_shared<std::vector<std::uint64_t>>();
      return std::make_unique<sched::OracleScheduler>(
          2, [cfg, cache](std::uint64_t k) -> unsigned {
            while (cache->size() <= k) {
              const std::size_t need = cache->size() + 64;
              *cache = fig1PcSequence(cfg, need);
            }
            return fig1Branch(BitVec(cfg.width, (*cache)[k]), cfg.takenPermille) ? 1 : 0;
          });
    }
  }
  throw EslError("buildFig1: unknown scheduler");
}

}  // namespace

Fig1System buildFig1(Fig1Variant variant, const Fig1Config& c) {
  stdlib::ensureRegistered();
  Fig1System s;
  Netlist& nl = s.nl;
  const unsigned w = c.width;

  auto& eb = nl.make<ElasticBuffer>("pc", w, 2, std::vector<BitVec>{BitVec(w, c.pc0)});
  auto& fork = nl.make<ForkNode>("fork", w, 4);
  s.observer = &nl.make<TokenSink>("observer", w);

  auto& g = makeFuncNode(
      nl, "G", {w}, 1, "permille",
      Params{}.setU64("permille", c.takenPermille).setU64("salt", kFig1BranchSalt),
      logic::Cost{c.delayG, 60.0});
  auto& w0 = makeFuncNode(nl, "nextpc", {w}, w, "addk",
                          Params{}.setU64("k", c.notTakenStep),
                          logic::Cost{2.0, 18.0});
  auto& w1 = makeFuncNode(nl, "target", {w}, w, "addk",
                          Params{}.setU64("k", c.takenStep), logic::Cost{2.0, 18.0});

  s.loopChannel = nl.connect(eb, 0, fork, 0, "pc.out");
  nl.connect(fork, 0, g, 0, "pc.g");
  nl.connect(fork, 1, w0, 0, "pc.w0");
  nl.connect(fork, 2, w1, 0, "pc.w1");
  nl.connect(fork, 3, *s.observer, 0, "pc.obs");

  const logic::Cost fCost{c.delayF, c.areaF};

  switch (variant) {
    case Fig1Variant::kNonSpeculative:
    case Fig1Variant::kBubble: {
      auto& mux = makeJoinMux(nl, "mux", 2, 1, w);
      auto& f = makeFuncNode(nl, "F", {w}, w, "fig1.f", {}, fCost);
      nl.connect(g, 0, mux, 0, "sel");
      nl.connect(w0, 0, mux, 1, "d0");
      nl.connect(w1, 0, mux, 2, "d1");
      const ChannelId muxOut = nl.connect(mux, 0, f, 0, "mux.out");
      nl.connect(f, 0, eb, 0, "pc.in");
      if (variant == Fig1Variant::kBubble) {
        auto& bubble = nl.make<ElasticBuffer>("bubble", w);
        nl.insertOnChannel(muxOut, bubble);
      }
      break;
    }
    case Fig1Variant::kShannon: {
      auto& f0 = makeFuncNode(nl, "F0", {w}, w, "fig1.f", {}, fCost);
      auto& f1 = makeFuncNode(nl, "F1", {w}, w, "fig1.f", {}, fCost);
      auto& mux = makeJoinMux(nl, "mux", 2, 1, w);
      nl.connect(w0, 0, f0, 0, "w0.f");
      nl.connect(w1, 0, f1, 0, "w1.f");
      nl.connect(g, 0, mux, 0, "sel");
      nl.connect(f0, 0, mux, 1, "d0");
      nl.connect(f1, 0, mux, 2, "d1");
      nl.connect(mux, 0, eb, 0, "pc.in");
      break;
    }
    case Fig1Variant::kSpeculative: {
      s.shared = &makeSharedWithScheduler(nl, "F", 2, w, w, "fig1.f", {},
                                          makeFig1Scheduler(c), fCost);
      auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, w);
      nl.connect(w0, 0, *s.shared, 0, "Fin0");
      nl.connect(w1, 0, *s.shared, 1, "Fin1");
      nl.connect(*s.shared, 0, mux, 1, "Fout0");
      nl.connect(*s.shared, 1, mux, 2, "Fout1");
      nl.connect(g, 0, mux, 0, "sel");
      nl.connect(mux, 0, eb, 0, "pc.in");
      break;
    }
  }
  nl.validate();
  return s;
}

// ---------------------------------------------------------------------------
// §5.1 variable-latency ALU
// ---------------------------------------------------------------------------

namespace {

Params vluGenParams(const VluConfig& c) {
  return Params{}
      .setU64("width", c.width)
      .setU64("segment", c.segment)
      .setU64("permille", c.errPermille)
      .setU64("seed", c.seed);
}

Params aluParams(const VluConfig& c, bool withSegment) {
  Params p;
  p.setU64("width", c.width);
  if (withSegment) p.setU64("segment", c.segment);
  return p;
}

/// Downstream consumer stage G of Fig. 6 (x ^ (x >> 1), the `gray` fn).
BitVec vluG(const BitVec& x) { return x ^ (x >> 1); }

}  // namespace

std::vector<std::uint64_t> vluGolden(const VluConfig& c, std::size_t n) {
  const auto gen = stdlib::vluOperandGen(c.width, c.segment, c.errPermille, c.seed);
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const BitVec packed = *gen(i);
    out.push_back(vluG(logic::aluExact(packed, c.width)).toUint64());
  }
  return out;
}

VluSystem buildStallingVlu(const VluConfig& c) {
  stdlib::ensureRegistered();
  VluSystem s;
  Netlist& nl = s.nl;
  const unsigned packedW = 2 * c.width + 2;

  s.src = &makeSourceNode(nl, "src", packedW, "vlu.ops", vluGenParams(c));
  s.vlu = &makeVluNode(nl, "vlu", packedW, c.width, "alu.exact",
                       aluParams(c, false), "alu.err", aluParams(c, true),
                       logic::aluApproxCost(c.width, c.segment),
                       logic::aluExactCost(c.width),
                       logic::aluErrorPredictorCost(c.width, c.segment));
  auto& g = makeFuncNode(nl, "G", {c.width}, c.width, "gray", {},
                         logic::Cost{c.delayG, 40.0});
  auto& outEb = nl.make<ElasticBuffer>("out", c.width);
  s.sink = &nl.make<TokenSink>("sink", c.width);

  nl.connect(*s.src, 0, *s.vlu, 0, "ops");
  nl.connect(*s.vlu, 0, g, 0, "vlu.out");
  nl.connect(g, 0, outEb, 0, "g.out");
  s.outChannel = nl.connect(outEb, 0, *s.sink, 0, "result");
  nl.validate();
  return s;
}

VluSystem buildSpeculativeVlu(const VluConfig& c) {
  // Fig. 6(b) with the pipeline structure spelled out: F_exact is split over
  // two cycles (the empty EB of the figure retimed into its middle), both
  // shared-module inputs have an EB storing the token waiting to be served
  // (§4.1), and the F_err select path is delayed by one EB so the select
  // token reaches the early-eval mux in the same cycle as the approximate
  // result. Error-free tokens finish in one effective cycle; a flagged
  // operand replays through the exact channel one cycle later.
  stdlib::ensureRegistered();
  VluSystem s;
  Netlist& nl = s.nl;
  const unsigned packedW = 2 * c.width + 2;
  const unsigned w = c.width;
  const logic::Cost exactCost = logic::aluExactCost(c.width);
  const logic::Cost halfExact{exactCost.delay / 2.0, exactCost.area / 2.0};

  s.src = &makeSourceNode(nl, "src", packedW, "vlu.ops", vluGenParams(c));
  auto& fork = nl.make<ForkNode>("fork", packedW, 3);

  auto& fApprox = makeFuncNode(nl, "Fapprox", {packedW}, w, "alu.approx",
                               aluParams(c, true),
                               logic::aluApproxCost(c.width, c.segment));
  auto& ebA = nl.make<ElasticBuffer>("ebA", w);
  // F_exact stage 1: first half of the carry chain (timing only; the packed
  // operands pass through so stage 2 can finish the computation).
  auto& fExact1 = makeFuncNode(nl, "Fexact1", {packedW}, packedW, "id", {}, halfExact);
  auto& bubble = nl.make<ElasticBuffer>("bubble", packedW);
  auto& fExact2 = makeFuncNode(nl, "Fexact2", {packedW}, w, "alu.exact",
                               aluParams(c, false), halfExact);
  auto& ebX = nl.make<ElasticBuffer>("ebX", w);

  auto& fErr = makeFuncNode(nl, "Ferr", {packedW}, 1, "alu.err", aluParams(c, true),
                            logic::aluErrorPredictorCost(c.width, c.segment));
  auto& ebE = nl.make<ElasticBuffer>("ebE", 1);

  s.shared = &makeSharedNode(nl, "G", 2, w, w, "gray", {}, "static", {},
                             logic::Cost{c.delayG, 40.0});
  auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, w);
  auto& outEb = nl.make<ElasticBuffer>("out", w);
  s.sink = &nl.make<TokenSink>("sink", w);

  nl.connect(*s.src, 0, fork, 0, "ops");
  nl.connect(fork, 0, fApprox, 0, "ops.a");
  nl.connect(fork, 1, fExact1, 0, "ops.e");
  nl.connect(fork, 2, fErr, 0, "ops.err");
  nl.connect(fApprox, 0, ebA, 0, "approx");
  nl.connect(ebA, 0, *s.shared, 0, "Gin0");
  nl.connect(fExact1, 0, bubble, 0, "exact.mid");
  nl.connect(bubble, 0, fExact2, 0, "exact.ops");
  nl.connect(fExact2, 0, ebX, 0, "exact");
  nl.connect(ebX, 0, *s.shared, 1, "Gin1");
  nl.connect(*s.shared, 0, mux, 1, "Gout0");
  nl.connect(*s.shared, 1, mux, 2, "Gout1");
  nl.connect(fErr, 0, ebE, 0, "err.raw");
  nl.connect(ebE, 0, mux, 0, "err");
  nl.connect(mux, 0, outEb, 0, "mux.out");
  s.outChannel = nl.connect(outEb, 0, *s.sink, 0, "result");
  nl.validate();
  return s;
}

// ---------------------------------------------------------------------------
// §5.2 SECDED resilient adder
// ---------------------------------------------------------------------------

namespace {

Params secdedGenParams(const SecdedConfig& c, std::uint64_t stream) {
  Params p;
  p.setU64("flip", c.flipPermille);
  if (c.doublePermille != 0) p.setU64("double", c.doublePermille);
  p.setU64("seed", c.seed);
  p.setU64("stream", stream);
  return p;
}

}  // namespace

std::vector<std::uint64_t> secdedGolden(const SecdedConfig& c, std::size_t n) {
  const auto genA = stdlib::secdedCodeGen(c.flipPermille, c.doublePermille, c.seed, 1);
  const auto genB = stdlib::secdedCodeGen(c.flipPermille, c.doublePermille, c.seed, 2);
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const BitVec a = logic::secdedDecode(*genA(i)).data;
    const BitVec b = logic::secdedDecode(*genB(i)).data;
    out.push_back((a + b).toUint64());
  }
  return out;
}

SecdedSystem buildSecdedPipeline(const SecdedConfig& c) {
  stdlib::ensureRegistered();
  SecdedSystem s;
  Netlist& nl = s.nl;

  auto& srcA = makeSourceNode(nl, "srcA", 72, "secded.code", secdedGenParams(c, 1));
  auto& srcB = makeSourceNode(nl, "srcB", 72, "secded.code", secdedGenParams(c, 2));
  auto& fixA = makeFuncNode(nl, "secdedA", {72}, 64, "secded.decode", {},
                            logic::secdedDecoderCost());
  auto& fixB = makeFuncNode(nl, "secdedB", {72}, 64, "secded.decode", {},
                            logic::secdedDecoderCost());
  auto& ebA = nl.make<ElasticBuffer>("ebA", 64);
  auto& ebB = nl.make<ElasticBuffer>("ebB", 64);
  auto& add = makeFuncNode(nl, "add", {64, 64}, 64, "add", {},
                           logic::koggeStoneAdderCost(64));
  auto& outEb = nl.make<ElasticBuffer>("out", 64);
  s.sink = &nl.make<TokenSink>("sink", 64);

  nl.connect(srcA, 0, fixA, 0, "codeA");
  nl.connect(srcB, 0, fixB, 0, "codeB");
  nl.connect(fixA, 0, ebA, 0, "dataA");
  nl.connect(fixB, 0, ebB, 0, "dataB");
  nl.connect(ebA, 0, add, 0, "addA");
  nl.connect(ebB, 0, add, 1, "addB");
  nl.connect(add, 0, outEb, 0, "sum");
  s.outChannel = nl.connect(outEb, 0, *s.sink, 0, "result");
  nl.validate();
  return s;
}

SecdedSystem buildSecdedSpeculative(const SecdedConfig& c) {
  stdlib::ensureRegistered();
  SecdedSystem s;
  Netlist& nl = s.nl;

  auto& srcA = makeSourceNode(nl, "srcA", 72, "secded.code", secdedGenParams(c, 1));
  auto& srcB = makeSourceNode(nl, "srcB", 72, "secded.code", secdedGenParams(c, 2));
  auto& pair = makeFuncNode(nl, "pair", {72, 72}, 144, "concat", {},
                            logic::Cost{0.0, 0.0});
  auto& fork = nl.make<ForkNode>("fork", 144, 3);

  auto& raw = makeFuncNode(nl, "raw", {144}, 144, "id", {}, logic::Cost{0.0, 0.0});
  auto& fix = makeFuncNode(nl, "secded", {144}, 144, "secded.fixpair", {},
                           logic::Cost{logic::secdedDecoderCost().delay,
                                       2.0 * logic::secdedDecoderCost().area});
  auto& err = makeFuncNode(nl, "errdet", {144}, 1, "secded.errpair", {},
                           logic::Cost{logic::secdedDecoderCost().delay + 1.0, 30.0});
  auto& bubble = nl.make<ElasticBuffer>("bubble", 144);

  s.shared = &makeSharedNode(nl, "add", 2, 144, 64, "secded.pairsum", {}, "static",
                             {}, logic::koggeStoneAdderCost(64));
  auto& mux = nl.make<EarlyEvalMux>("mux", 2, 1, 64);
  auto& outEb = nl.make<ElasticBuffer>("out", 64);
  s.sink = &nl.make<TokenSink>("sink", 64);

  nl.connect(srcA, 0, pair, 0, "codeA");
  nl.connect(srcB, 0, pair, 1, "codeB");
  nl.connect(pair, 0, fork, 0, "pair");
  nl.connect(fork, 0, raw, 0, "pair.raw");
  nl.connect(fork, 1, fix, 0, "pair.fix");
  nl.connect(fork, 2, err, 0, "pair.err");
  nl.connect(raw, 0, *s.shared, 0, "addin0");
  nl.connect(fix, 0, bubble, 0, "corrected");
  nl.connect(bubble, 0, *s.shared, 1, "addin1");
  nl.connect(*s.shared, 0, mux, 1, "addout0");
  nl.connect(*s.shared, 1, mux, 2, "addout1");
  nl.connect(err, 0, mux, 0, "err");
  nl.connect(mux, 0, outEb, 0, "mux.out");
  s.outChannel = nl.connect(outEb, 0, *s.sink, 0, "result");
  nl.validate();
  return s;
}

// ---------------------------------------------------------------------------
// Named paper designs
// ---------------------------------------------------------------------------

std::vector<std::string> designNames() {
  return {"fig1a",    "fig1b",    "fig1c",       "fig1d",      "table1",
          "vlu-stall", "vlu-spec", "secded-pipe", "secded-spec"};
}

Netlist buildDesign(const std::string& name) {
  if (name == "fig1a") return std::move(buildFig1(Fig1Variant::kNonSpeculative).nl);
  if (name == "fig1b") return std::move(buildFig1(Fig1Variant::kBubble).nl);
  if (name == "fig1c") return std::move(buildFig1(Fig1Variant::kShannon).nl);
  if (name == "fig1d") return std::move(buildFig1(Fig1Variant::kSpeculative).nl);
  if (name == "table1") return std::move(buildTable1({0, 1, 1, 0, 0}).nl);
  if (name == "vlu-stall") return std::move(buildStallingVlu().nl);
  if (name == "vlu-spec") return std::move(buildSpeculativeVlu().nl);
  if (name == "secded-pipe") return std::move(buildSecdedPipeline().nl);
  if (name == "secded-spec") return std::move(buildSecdedSpeculative().nl);
  throw EslError("unknown design '" + name + "'");
}

NetlistSpec designSpec(const std::string& name) {
  return NetlistSpec::fromNetlist(buildDesign(name));
}

}  // namespace esl::patterns
