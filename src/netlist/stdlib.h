// Paper-domain entries for the netlist IR catalogs.
//
// The Registry (src/elastic/registry.h) ships only generic functions (id,
// addk, xor, joinmux, ...). The systems evaluated in the paper additionally
// need the Fig. 1 datapath mix, the §5.1 segmented ALU (exact / approximate /
// error predictor), the §5.2 SECDED codec blocks and the matching operand
// generators. This module registers them under stable names ("fig1.f",
// "alu.exact", "secded.code", ...) so the `.esl` frontend can reconstruct
// every paper pattern, and exports the raw helpers the golden models in
// patterns.cpp share with the registered closures.
#pragma once

#include <cstdint>

#include "elastic/endpoints.h"

namespace esl::stdlib {

/// Registers the domain fns/gens in Registry::instance(). Idempotent and
/// cheap; every builder/parser entry point calls it.
void ensureRegistered();

/// F of the Fig. 1 loop: ((x << 2) ^ x) + 7 (any bit-mixing unary works).
BitVec fig1Mix(const BitVec& x);

/// §5.1 operand-pair stream with a controlled 2-cycle (carry-error) rate;
/// yields packAluOperands(a, b, kAdd) words of width 2*width+2.
TokenSource::Generator vluOperandGen(unsigned width, unsigned segment,
                                     unsigned errPermille, std::uint64_t seed);

/// §5.2 SECDED code-word stream with seeded single/double bit-flip injection.
TokenSource::Generator secdedCodeGen(unsigned flipPermille, unsigned doublePermille,
                                     std::uint64_t seed, std::uint64_t stream);

}  // namespace esl::stdlib
