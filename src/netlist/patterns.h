// Reusable paper topologies.
//
// Builders for every system evaluated in the paper, used by the test suite,
// the benchmark harnesses and the examples:
//  * the open shared-module system traced in Table 1;
//  * the four closed-loop variants of Fig. 1 (non-speculative, bubble,
//    Shannon, speculative) on the branch-prediction micro-architecture of §2;
//  * the stalling and speculative variable-latency ALUs of §5.1 / Fig. 6;
//  * the non-speculative and speculative SECDED resilient adders of §5.2 /
//    Fig. 7.
//
// Each builder returns the netlist together with the handles a harness needs
// (sources, the shared module, the channels to measure or trace).
#pragma once

#include <memory>

#include "elastic/buffer.h"
#include "elastic/eemux.h"
#include "elastic/endpoints.h"
#include "elastic/fork.h"
#include "elastic/func.h"
#include "elastic/netlist.h"
#include "elastic/registry.h"
#include "elastic/shared.h"
#include "elastic/vlu.h"
#include "sched/scheduler.h"

namespace esl::patterns {

// ---------------------------------------------------------------------------
// Named paper designs (the shell's `build`, the esl CLI, golden .esl files)
// ---------------------------------------------------------------------------

/// Names accepted by buildDesign: fig1a..fig1d, table1, vlu-stall, vlu-spec,
/// secded-pipe, secded-spec (default configurations).
std::vector<std::string> designNames();

/// Builds the named design; throws EslError on unknown names.
Netlist buildDesign(const std::string& name);

/// Serializable IR of the named design. All builders construct through the
/// NodeRegistry, so spec.build() reproduces buildDesign(name) bit for bit.
NetlistSpec designSpec(const std::string& name);

// ---------------------------------------------------------------------------
// Table 1: open shared-module + early-evaluation mux system
// ---------------------------------------------------------------------------

struct Table1System {
  Netlist nl;
  TokenSource* src0 = nullptr;
  TokenSource* src1 = nullptr;
  TokenSource* selSrc = nullptr;
  SharedModule* shared = nullptr;
  EarlyEvalMux* mux = nullptr;
  TokenSink* sink = nullptr;
  ChannelId fin0{}, fin1{};    ///< shared-module input channels
  ChannelId fout0{}, fout1{};  ///< shared-module output channels (mux inputs)
  ChannelId sel{}, ebin{};     ///< select channel; mux output channel
};

/// `selStream` is the sequence of select values; data streams count up from
/// `base0`/`base1`. The scheduler is round-robin with demand correction,
/// which reproduces the paper's Sched row exactly.
Table1System buildTable1(std::vector<std::uint64_t> selStream,
                         std::uint64_t base0 = 1, std::uint64_t base1 = 101,
                         std::unique_ptr<sched::Scheduler> scheduler = nullptr);

// ---------------------------------------------------------------------------
// Fig. 1: branch-speculation loop (the §2 PC micro-architecture)
// ---------------------------------------------------------------------------

enum class Fig1Variant {
  kNonSpeculative,  ///< Fig. 1(a): join mux, F after the mux
  kBubble,          ///< Fig. 1(b): empty EB inserted after the mux
  kShannon,         ///< Fig. 1(c): F duplicated onto the mux inputs
  kSpeculative,     ///< Fig. 1(d): shared F + early-evaluation mux + scheduler
};

/// Scheduler choices for the speculative variant.
enum class Fig1Scheduler { kStatic0, kLastServed, kTwoBit, kOracle, kRoundRobin };

struct Fig1Config {
  unsigned width = 16;
  std::uint64_t pc0 = 1;           ///< initial PC token in the loop EB
  unsigned takenPermille = 300;    ///< branch taken-rate (hash of PC)
  std::uint64_t notTakenStep = 1;  ///< PC += step when not taken
  std::uint64_t takenStep = 17;    ///< PC += step when taken
  Fig1Scheduler scheduler = Fig1Scheduler::kStatic0;
  double delayF = 8.0;             ///< unit-gate delay of F
  double delayG = 8.0;             ///< unit-gate delay of G
  double areaF = 400.0;            ///< F is a sizable functional unit
};

struct Fig1System {
  Netlist nl;
  ChannelId loopChannel{};  ///< EB output: throughput is measured here
  TokenSink* observer = nullptr;
  SharedModule* shared = nullptr;  ///< only for kSpeculative
};

Fig1System buildFig1(Fig1Variant variant, const Fig1Config& config = {});

/// The PC sequence of the Fig. 1 loop (for oracles and golden checks):
/// returns the first `n` PC values starting at pc0.
std::vector<std::uint64_t> fig1PcSequence(const Fig1Config& config, std::size_t n);

// ---------------------------------------------------------------------------
// §5.1 / Fig. 6: variable-latency ALU
// ---------------------------------------------------------------------------

struct VluConfig {
  unsigned width = 8;           ///< ALU operand width
  unsigned segment = 4;         ///< approximate-adder carry segment
  unsigned errPermille = 100;   ///< fraction of operands that need 2 cycles
  std::uint64_t seed = 1;
  double delayG = 6.0;          ///< downstream (shared) stage delay
};

struct VluSystem {
  Netlist nl;
  TokenSource* src = nullptr;
  TokenSink* sink = nullptr;
  SharedModule* shared = nullptr;   ///< speculative variant only
  StallingVLU* vlu = nullptr;       ///< stalling variant only
  ChannelId outChannel{};
};

/// Fig. 6(a): F_err gates the elastic controller; 1 or 2 cycles per token.
VluSystem buildStallingVlu(const VluConfig& config = {});
/// Fig. 6(b): speculation with replay through a shared downstream stage.
VluSystem buildSpeculativeVlu(const VluConfig& config = {});

/// Golden results (G(exact ALU result) per operand) for `n` operands.
std::vector<std::uint64_t> vluGolden(const VluConfig& config, std::size_t n);

// ---------------------------------------------------------------------------
// §5.2 / Fig. 7: SECDED resilient adder
// ---------------------------------------------------------------------------

struct SecdedConfig {
  unsigned flipPermille = 50;    ///< chance a 72-bit input word has 1 bit flipped
  unsigned doublePermille = 0;   ///< chance of a 2-bit (uncorrectable) flip
  std::uint64_t seed = 7;
};

struct SecdedSystem {
  Netlist nl;
  TokenSink* sink = nullptr;       ///< receives 64-bit sums
  SharedModule* shared = nullptr;  ///< speculative variant only
  ChannelId outChannel{};
};

/// Fig. 7(a): SECDED correction pipelined before the adder (1 extra stage).
SecdedSystem buildSecdedPipeline(const SecdedConfig& config = {});
/// Fig. 7(b): speculative addition with SECDED replay on error.
SecdedSystem buildSecdedSpeculative(const SecdedConfig& config = {});

/// Golden sums for `n` operand pairs under the same seed (errors corrected).
std::vector<std::uint64_t> secdedGolden(const SecdedConfig& config, std::size_t n);

}  // namespace esl::patterns
