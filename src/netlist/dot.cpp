#include "netlist/dot.h"

#include <sstream>

namespace esl::netlist {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string toDot(const Netlist& nl, const std::string& graphName) {
  std::ostringstream os;
  os << "digraph \"" << escape(graphName) << "\" {\n";
  os << "  rankdir=LR;\n";
  for (const NodeId id : nl.nodeIds()) {
    const Node& n = nl.node(id);
    const bool storage = n.kindName() == "eb" || n.kindName() == "eb0";
    os << "  n" << id << " [label=\"" << escape(n.name()) << "\\n(" << n.kindName()
       << ")\", shape=" << (storage ? "box" : "ellipse") << "];\n";
  }
  for (const ChannelId id : nl.channelIds()) {
    const Channel& ch = nl.channel(id);
    os << "  n" << ch.producer << " -> n" << ch.consumer << " [label=\""
       << escape(ch.name) << " [" << ch.width << "]\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace esl::netlist
