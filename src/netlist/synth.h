// Synthetic netlist generator: parameterized elastic systems at scale.
//
// The paper's systems are 10-node micro-netlists; benchmarking the simulation
// kernels at production scale needs elastic graphs with thousands to hundreds
// of thousands of nodes. This generator procedurally emits four topology
// families — deep linear pipelines, fork/join trees, early-evaluation
// speculation ladders, and seeded random DAGs — with configurable buffer
// capacities, variable-latency stages and sparse token injection. Every
// family is a pure function of its SynthConfig (same config ⇒ bit-identical
// netlist, node for node and channel for channel), so generated systems can
// be cross-checked between kernels, farmed across threads, and — at small
// sizes with nondeterministic environments — run through the explicit-state
// model checker. The Monte-Carlo-over-generated-structures methodology
// follows the fixed-connectivity net ensembles of Farago & Kantor (PAPERS.md).
#pragma once

#include <string>
#include <vector>

#include "elastic/endpoints.h"
#include "elastic/netlist.h"
#include "elastic/registry.h"

namespace esl::synth {

enum class Topology {
  kPipeline,  ///< source → [EB → F]* → sink, optional variable-latency stages
  kForkJoin,  ///< fork tree of configurable arity, mirrored join tree
  kSpecLadder,  ///< cascade of fork → 2 branches → early-eval mux rungs
  kRandomDag,  ///< seeded random acyclic graph of EBs/funcs/forks/joins
};

const char* topologyName(Topology t);

struct SynthConfig {
  Topology topology = Topology::kPipeline;
  /// Approximate node budget, environments included; the builder never
  /// exceeds it (except for the structural minimum of a family).
  std::size_t targetNodes = 1000;
  unsigned width = 16;          ///< datapath width of every channel
  unsigned bufferCapacity = 2;  ///< capacity of generated elastic buffers
  unsigned forkArity = 2;       ///< branching factor of the fork/join tree
  std::uint64_t seed = 1;       ///< topology + payload + gate randomness
  /// A source may first offer its next token every `injectPeriod` cycles
  /// (1 = saturated). Sparse injection (large periods) is what exposes the
  /// event kernel's O(active) advantage on large graphs.
  unsigned injectPeriod = 1;
  /// Per-mille chance that a pipeline stage is a 1-or-2-cycle stalling
  /// variable-latency unit instead of a combinational function.
  unsigned vluPermille = 0;
  /// Replace the deterministic environments with Nondet* nodes (bounded-fair,
  /// finite-state) so small instances can go through the model checker.
  bool nondetEnv = false;
};

struct SynthSystem {
  Netlist nl;
  /// Deterministic environments (empty when nondetEnv is set).
  std::vector<TokenSource*> sources;
  std::vector<TokenSink*> sinks;
  /// The sink fed by outChannel; tokens received there are the system's
  /// observable progress (throughput = received / cycles).
  TokenSink* mainSink = nullptr;
  ChannelId outChannel = kNoChannel;
  std::size_t nodeCount = 0;
  std::size_t channelCount = 0;
};

/// Builds the configured system; validates the netlist before returning.
SynthSystem build(const SynthConfig& config);

/// Netlist-only build for verification recipes: same deterministic
/// construction as build(), dropping the endpoint bookkeeping. Because equal
/// configs produce bit-identical netlists, `[cfg] { return buildNetlist(cfg); }`
/// is a valid verify::NetlistRecipe for the parallel model checker.
Netlist buildNetlist(const SynthConfig& config);

/// Serializable IR of the generated system. The generator constructs every
/// node through the NodeRegistry, so spec(cfg).build() is bit-identical to
/// buildNetlist(cfg) — this is the data form handed to ModelChecker lanes,
/// SimFarm sweeps and the `.esl` printer.
NetlistSpec spec(const SynthConfig& config);

/// Stable one-line tag for benchmark rows and task labels, e.g.
/// "pipeline/n10000/w16/seed1/inject64".
std::string describe(const SynthConfig& config);

}  // namespace esl::synth
