#include "netlist/stdlib.h"

#include <mutex>
#include <optional>

#include "base/rng.h"
#include "elastic/registry.h"
#include "logic/alu.h"
#include "logic/secded.h"

namespace esl::stdlib {

namespace {

void requireSig(const FnSig& sig, unsigned in, unsigned out, const std::string& what) {
  if (sig.inWidths.size() != 1 || sig.inWidths[0] != in || sig.outWidth != out)
    throw NetlistError(what + ": expects " + std::to_string(in) + " -> " +
                       std::to_string(out) + " bits");
}

/// Mask clearing the MSB of every `segment`-bit group: operands under this
/// mask can never carry across a segment boundary.
std::uint64_t noCarryMask(unsigned width, unsigned segment) {
  std::uint64_t mask = 0;
  for (unsigned i = 0; i < width; ++i)
    if (i % segment != segment - 1) mask |= 1ULL << i;
  return mask;
}

BitVec secdedCorrectWord(const BitVec& code) {
  return logic::secdedEncode(logic::secdedDecode(code).data);
}

void registerAll() {
  Registry& r = Registry::instance();

  // --- Fig. 1 ---------------------------------------------------------------
  r.addFn("fig1.f", [](const FnSig& sig, const Params&, const std::string&) -> CombFn {
    if (sig.inWidths.size() != 1 || sig.inWidths[0] != sig.outWidth)
      throw NetlistError("fn fig1.f: unary, width-preserving");
    return [](const std::vector<BitVec>& in) { return fig1Mix(in[0]); };
  });

  // --- §5.1 segmented ALU ---------------------------------------------------
  // The packed operand word is 2*width+2 bits (packAluOperands).
  r.addFn("alu.exact", [](const FnSig& sig, const Params& p,
                          const std::string& pfx) -> CombFn {
    const unsigned w = static_cast<unsigned>(p.u64(pfx + "width"));
    requireSig(sig, 2 * w + 2, w, "fn alu.exact");
    return [w](const std::vector<BitVec>& in) { return logic::aluExact(in[0], w); };
  });
  r.addFn("alu.approx", [](const FnSig& sig, const Params& p,
                           const std::string& pfx) -> CombFn {
    const unsigned w = static_cast<unsigned>(p.u64(pfx + "width"));
    const unsigned seg = static_cast<unsigned>(p.u64(pfx + "segment"));
    requireSig(sig, 2 * w + 2, w, "fn alu.approx");
    return [w, seg](const std::vector<BitVec>& in) {
      return logic::aluApprox(in[0], w, seg);
    };
  });
  r.addFn("alu.err", [](const FnSig& sig, const Params& p,
                        const std::string& pfx) -> CombFn {
    const unsigned w = static_cast<unsigned>(p.u64(pfx + "width"));
    const unsigned seg = static_cast<unsigned>(p.u64(pfx + "segment"));
    requireSig(sig, 2 * w + 2, 1, "fn alu.err");
    return [w, seg](const std::vector<BitVec>& in) {
      return BitVec(1, logic::aluApproxError(in[0], w, seg) ? 1 : 0);
    };
  });

  // --- §5.2 SECDED ----------------------------------------------------------
  r.addFn("secded.decode",
          [](const FnSig& sig, const Params&, const std::string&) -> CombFn {
            requireSig(sig, 72, 64, "fn secded.decode");
            return [](const std::vector<BitVec>& in) {
              return logic::secdedDecode(in[0]).data;
            };
          });
  r.addFn("secded.fixpair",
          [](const FnSig& sig, const Params&, const std::string&) -> CombFn {
            requireSig(sig, 144, 144, "fn secded.fixpair");
            return [](const std::vector<BitVec>& in) {
              return secdedCorrectWord(in[0].slice(0, 72))
                  .concat(secdedCorrectWord(in[0].slice(72, 72)));
            };
          });
  r.addFn("secded.errpair",
          [](const FnSig& sig, const Params&, const std::string&) -> CombFn {
            requireSig(sig, 144, 1, "fn secded.errpair");
            return [](const std::vector<BitVec>& in) {
              const bool e0 = logic::secdedDecode(in[0].slice(0, 72)).status !=
                              logic::SecdedStatus::kOk;
              const bool e1 = logic::secdedDecode(in[0].slice(72, 72)).status !=
                              logic::SecdedStatus::kOk;
              return BitVec(1, (e0 || e1) ? 1 : 0);
            };
          });
  r.addFn("secded.pairsum",
          [](const FnSig& sig, const Params&, const std::string&) -> CombFn {
            requireSig(sig, 144, 64, "fn secded.pairsum");
            return [](const std::vector<BitVec>& in) {
              const BitVec a = logic::secdedPayload(in[0].slice(0, 72));
              const BitVec b = logic::secdedPayload(in[0].slice(72, 72));
              return a + b;
            };
          });

  // --- operand generators ---------------------------------------------------
  r.addGen("vlu.ops", [](unsigned width, const Params& p, const std::string& pfx) {
    const unsigned w = static_cast<unsigned>(p.u64(pfx + "width"));
    if (width != 2 * w + 2)
      throw NetlistError("gen vlu.ops: source width must be 2*width+2");
    return vluOperandGen(w, static_cast<unsigned>(p.u64(pfx + "segment")),
                         static_cast<unsigned>(p.u64(pfx + "permille")),
                         p.u64(pfx + "seed"));
  });
  r.addGen("secded.code", [](unsigned width, const Params& p,
                             const std::string& pfx) {
    if (width != logic::kSecdedCodeBits)
      throw NetlistError("gen secded.code: source width must be 72");
    return secdedCodeGen(static_cast<unsigned>(p.u64(pfx + "flip")),
                         static_cast<unsigned>(p.u64(pfx + "double", 0)),
                         p.u64(pfx + "seed"), p.u64(pfx + "stream"));
  });
}

}  // namespace

void ensureRegistered() {
  static std::once_flag once;
  std::call_once(once, registerAll);
}

BitVec fig1Mix(const BitVec& x) {
  const unsigned w = x.width();
  return ((x << 2) ^ x) + BitVec(w, 7);
}

TokenSource::Generator vluOperandGen(unsigned width, unsigned segment,
                                     unsigned errPermille, std::uint64_t seed) {
  const std::uint64_t clean = noCarryMask(width, segment);
  const std::uint64_t segMask = (1ULL << segment) - 1;
  const std::uint64_t widthMask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
  return [width, seed, errPermille, clean, segMask,
          widthMask](std::uint64_t i) -> std::optional<BitVec> {
    const std::uint64_t r1 = mix64(i, seed * 3 + 1);
    const std::uint64_t r2 = mix64(i, seed * 3 + 2);
    std::uint64_t a, b;
    if (hashChancePermille(i, errPermille, seed)) {
      // Force a carry out of the lowest segment: a_low = all ones, b_low = 1.
      a = ((r1 & ~segMask) | segMask) & widthMask;
      b = ((r2 & ~segMask) | 1ULL) & widthMask;
    } else {
      a = r1 & clean & widthMask;
      b = r2 & clean & widthMask;
    }
    return logic::packAluOperands(BitVec(width, a), BitVec(width, b),
                                  logic::AluOp::kAdd);
  };
}

TokenSource::Generator secdedCodeGen(unsigned flipPermille, unsigned doublePermille,
                                     std::uint64_t seed, std::uint64_t stream) {
  return [flipPermille, doublePermille, seed,
          stream](std::uint64_t i) -> std::optional<BitVec> {
    const BitVec data(64, mix64(i, seed * 97 + stream));
    BitVec code = logic::secdedEncode(data);
    const std::uint64_t sel = mix64(i, seed * 131 + stream + 5);
    if (hashChancePermille(i, doublePermille, seed + stream + 17)) {
      const unsigned p1 = sel % logic::kSecdedCodeBits;
      const unsigned p2 = (p1 + 1 + (sel >> 8) % (logic::kSecdedCodeBits - 1)) %
                          logic::kSecdedCodeBits;
      code.setBit(p1, !code.bit(p1));
      code.setBit(p2, !code.bit(p2));
    } else if (hashChancePermille(i, flipPermille, seed + stream)) {
      const unsigned p = sel % logic::kSecdedCodeBits;
      code.setBit(p, !code.bit(p));
    }
    return code;
  };
}

}  // namespace esl::stdlib
