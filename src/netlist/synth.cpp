#include "netlist/synth.h"

#include <functional>

#include "base/rng.h"
#include "elastic/buffer.h"
#include "elastic/eemux.h"
#include "elastic/fork.h"
#include "elastic/func.h"
#include "elastic/registry.h"
#include "elastic/vlu.h"

namespace esl::synth {

namespace {

/// Endpoint of an unconsumed channel-to-be: a producer node and output port.
struct OpenPort {
  Node* node = nullptr;
  unsigned port = 0;
};

/// Unary stage function x -> x + salt-derived constant. Built through the
/// registry (`fn=addk`) so generated systems serialize to `.esl` as-is.
FuncNode& addStageFunc(Netlist& nl, const std::string& name, unsigned width,
                       std::uint64_t salt) {
  return makeFuncNode(nl, name, {width}, width, "addk",
                      Params{}.setU64("k", mix64(salt) | 1));
}

struct Builder {
  const SynthConfig& cfg;
  SynthSystem& sys;
  Netlist& nl;
  Rng rng;
  std::size_t nodes = 0;  ///< running node count, environments included

  Builder(const SynthConfig& c, SynthSystem& s)
      : cfg(c), sys(s), nl(s.nl), rng(c.seed) {}

  template <typename T, typename... Args>
  T& make(Args&&... args) {
    ++nodes;
    return nl.make<T>(std::forward<Args>(args)...);
  }

  /// Data-token source (deterministic or nondet); `salt` keys the stream.
  OpenPort addSource(const std::string& name, std::uint64_t salt) {
    if (cfg.nondetEnv) return {&make<NondetSource>(name, cfg.width), 0};
    ++nodes;
    auto& src =
        cfg.injectPeriod > 1
            ? makeSourceNode(nl, name, cfg.width, "hash",
                             Params{}.setU64("salt", salt), "period",
                             Params{}
                                 .setU64("period", cfg.injectPeriod)
                                 .setU64("phase", salt % 97))
            : makeSourceNode(nl, name, cfg.width, "hash",
                             Params{}.setU64("salt", salt));
    sys.sources.push_back(&src);
    return {&src, 0};
  }

  /// Terminates `tail` with a sink; records the first one as the main sink.
  void addSink(const std::string& name, OpenPort tail) {
    if (cfg.nondetEnv) {
      auto& sink = make<NondetSink>(name, cfg.width);
      const ChannelId ch = nl.connect(*tail.node, tail.port, sink, 0);
      if (sys.outChannel == kNoChannel) sys.outChannel = ch;
      return;
    }
    auto& sink = make<TokenSink>(name, cfg.width);
    const ChannelId ch = nl.connect(*tail.node, tail.port, sink, 0);
    sys.sinks.push_back(&sink);
    if (sys.mainSink == nullptr) {
      sys.mainSink = &sink;
      sys.outChannel = ch;
    }
  }

  OpenPort addBuffer(const std::string& name, OpenPort tail) {
    auto& eb = make<ElasticBuffer>(name, cfg.width, cfg.bufferCapacity);
    nl.connect(*tail.node, tail.port, eb, 0);
    return {&eb, 0};
  }

  // --- deep linear pipeline -------------------------------------------------

  void buildPipeline() {
    const std::size_t budget = cfg.targetNodes < 3 ? 3 : cfg.targetNodes;
    OpenPort tail = addSource("src", cfg.seed);
    for (unsigned i = 0; nodes + 3 <= budget; ++i) {
      const std::string tag = std::to_string(i);
      tail = addBuffer("s" + tag + ".eb", tail);
      if (cfg.vluPermille > 0 && rng.chancePermille(cfg.vluPermille)) {
        const std::uint64_t salt = cfg.seed + i;
        ++nodes;
        auto& vlu = makeVluNode(
            nl, "s" + tag + ".vlu", cfg.width, cfg.width, "addk",
            Params{}.setU64("k", mix64(salt) | 1), "permille",
            Params{}.setU64("permille", 150).setU64("salt", salt),
            logic::Cost{1.0, 8.0}, logic::Cost{2.0, 16.0}, logic::Cost{1.0, 4.0});
        nl.connect(*tail.node, tail.port, vlu, 0);
        tail = {&vlu, 0};
      } else {
        auto& f = addStageFunc(nl, "s" + tag + ".f", cfg.width, cfg.seed + i);
        ++nodes;
        nl.connect(*tail.node, tail.port, f, 0);
        tail = {&f, 0};
      }
    }
    addSink("sink", tail);
  }

  // --- fork/join tree -------------------------------------------------------

  std::vector<OpenPort> expandFork(OpenPort in, unsigned depth,
                                   const std::string& prefix) {
    if (depth == 0) return {in};
    auto& fork = make<ForkNode>(prefix, cfg.width, cfg.forkArity);
    nl.connect(*in.node, in.port, fork, 0);
    std::vector<OpenPort> leaves;
    for (unsigned i = 0; i < cfg.forkArity; ++i) {
      auto sub = expandFork({&fork, i}, depth - 1, prefix + "." + std::to_string(i));
      leaves.insert(leaves.end(), sub.begin(), sub.end());
    }
    return leaves;
  }

  void buildForkJoin() {
    const unsigned a = cfg.forkArity < 2 ? 2 : cfg.forkArity;
    const bool leafBuffered = cfg.targetNodes >= 16;
    // nodes(d) = src + sink + forks + joins + leaves * (1 or 2), with
    // forks = joins = (a^d - 1)/(a - 1) and leaves = a^d.
    unsigned depth = 1;
    const auto nodesAt = [&](unsigned d) -> std::size_t {
      std::size_t leaves = 1, forks = 0;
      for (unsigned i = 0; i < d; ++i) {
        forks += leaves;
        leaves *= a;
      }
      return 2 + 2 * forks + leaves * (leafBuffered ? 2 : 1);
    };
    while (nodesAt(depth + 1) <= cfg.targetNodes) ++depth;

    OpenPort tail = addSource("src", cfg.seed);
    std::vector<OpenPort> layer = expandFork(tail, depth, "fork");
    for (std::size_t i = 0; i < layer.size(); ++i) {
      const std::string tag = "leaf" + std::to_string(i);
      if (leafBuffered) layer[i] = addBuffer(tag + ".eb", layer[i]);
      auto& f = addStageFunc(nl, tag + ".f", cfg.width, cfg.seed + i);
      ++nodes;
      nl.connect(*layer[i].node, layer[i].port, f, 0);
      layer[i] = {&f, 0};
    }
    // Mirror join tree: XOR-reduce groups of `a` until one channel remains.
    unsigned level = 0;
    while (layer.size() > 1) {
      std::vector<OpenPort> next;
      for (std::size_t g = 0; g < layer.size(); g += a) {
        ++nodes;
        auto& join = makeFuncNode(
            nl, "join" + std::to_string(level) + "." + std::to_string(g / a),
            std::vector<unsigned>(a, cfg.width), cfg.width, "xor");
        for (unsigned i = 0; i < a; ++i)
          nl.connect(*layer[g + i].node, layer[g + i].port, join, i);
        next.push_back({&join, 0});
      }
      layer = std::move(next);
      ++level;
    }
    addSink("sink", layer[0]);
  }

  // --- early-evaluation speculation ladder ----------------------------------

  /// Select-bit source for one rung (1-bit stream; nondet variant picks the
  /// bit per cycle so the checker quantifies over all speculation outcomes).
  OpenPort addSelectSource(const std::string& name, std::uint64_t salt) {
    if (cfg.nondetEnv)
      return {&make<NondetSource>(name, 1, /*killCreditCap=*/1, /*dataBits=*/1), 0};
    ++nodes;
    auto& src = makeSourceNode(nl, name, 1, "hash", Params{}.setU64("salt", salt));
    return {&src, 0};
  }

  void buildSpecLadder() {
    // A rung forks the data stream into two buffered branches and lets an
    // early-evaluation mux pick one per select token; the mux's anti-token
    // kills the non-selected copy back through the branch into the fork.
    const bool slim = cfg.targetNodes < 16;  // fits a rung into 8-node budgets
    const std::size_t perRung = slim ? 5 : 8;
    std::size_t rungs = cfg.targetNodes > 2 ? (cfg.targetNodes - 2) / perRung : 1;
    if (rungs == 0) rungs = 1;

    OpenPort tail = addSource("src", cfg.seed);
    for (std::size_t r = 0; r < rungs; ++r) {
      const std::string tag = "r" + std::to_string(r);
      auto& fork = make<ForkNode>(tag + ".fork", cfg.width, 2);
      nl.connect(*tail.node, tail.port, fork, 0);
      OpenPort a = addBuffer(tag + ".ebA", {&fork, 0});
      OpenPort b = addBuffer(tag + ".ebB", {&fork, 1});
      if (!slim) {
        auto& fa = addStageFunc(nl, tag + ".fA", cfg.width, cfg.seed + 2 * r);
        ++nodes;
        nl.connect(*a.node, a.port, fa, 0);
        a = {&fa, 0};
        auto& fb = addStageFunc(nl, tag + ".fB", cfg.width, cfg.seed + 2 * r + 1);
        ++nodes;
        nl.connect(*b.node, b.port, fb, 0);
        b = {&fb, 0};
      }
      OpenPort sel = addSelectSource(tag + ".sel", cfg.seed + 31 * r);
      auto& mux = make<EarlyEvalMux>(tag + ".mux", 2, 1, cfg.width);
      nl.connect(*sel.node, sel.port, mux, 0);
      nl.connect(*a.node, a.port, mux, 1);
      nl.connect(*b.node, b.port, mux, 2);
      tail = {&mux, 0};
      if (!slim) tail = addBuffer(tag + ".ebOut", tail);
    }
    addSink("sink", tail);
  }

  // --- seeded random DAG ----------------------------------------------------

  void buildRandomDag() {
    const std::size_t budget = cfg.targetNodes < 4 ? 4 : cfg.targetNodes;
    // A couple of sources per 256-node block keeps independent token waves in
    // flight; consumers are always new nodes, so the graph stays acyclic, and
    // every node fires at unit rate, so joins never starve structurally.
    std::size_t srcCount = 1 + budget / 256;
    if (srcCount > 8) srcCount = 8;
    std::vector<OpenPort> open;
    for (std::size_t i = 0; i < srcCount; ++i)
      open.push_back(addSource("src" + std::to_string(i), cfg.seed + 7 * i));

    unsigned serial = 0;
    for (;;) {
      // Each open port eventually needs a sink: a candidate kind is allowed
      // only if the budget covers the new node plus the resulting sink set.
      const std::size_t after = nodes + 1;
      const bool canNeutral = after + open.size() <= budget;
      const bool canFork = after + open.size() + 1 <= budget;
      const bool canJoin = open.size() >= 2 && after + open.size() - 1 <= budget;
      if (!canNeutral && !canFork && !canJoin) break;

      const std::string tag = "d" + std::to_string(serial++);
      const auto takeOpen = [&]() {
        const std::size_t i = rng.below(open.size());
        const OpenPort p = open[i];
        open[i] = open.back();
        open.pop_back();
        return p;
      };

      // Weighted pick among the allowed kinds; a fork implies the neutral
      // budget and a too-tight budget leaves only joins, so the chain below
      // always performs exactly one action per iteration.
      const std::uint64_t roll = rng.below(100);
      enum class Act { kJoin, kFork, kEb, kFunc };
      Act act;
      if (canJoin && roll < 20)
        act = Act::kJoin;
      else if (canFork && roll < 35)
        act = Act::kFork;
      else if (canNeutral)
        act = roll < 80 ? Act::kEb : Act::kFunc;
      else
        act = Act::kJoin;

      if (act == Act::kJoin) {
        const OpenPort x = takeOpen();
        const OpenPort y = takeOpen();
        auto& join = makeFuncNode(nl, tag + ".join", {cfg.width, cfg.width},
                                  cfg.width, "xor");
        ++nodes;
        nl.connect(*x.node, x.port, join, 0);
        nl.connect(*y.node, y.port, join, 1);
        open.push_back({&join, 0});
      } else if (act == Act::kFork) {
        const OpenPort x = takeOpen();
        auto& fork = make<ForkNode>(tag + ".fork", cfg.width, 2);
        nl.connect(*x.node, x.port, fork, 0);
        open.push_back({&fork, 0});
        open.push_back({&fork, 1});
      } else if (act == Act::kEb) {
        open.push_back(addBuffer(tag + ".eb", takeOpen()));
      } else {
        const OpenPort x = takeOpen();
        auto& f = addStageFunc(nl, tag + ".f", cfg.width, cfg.seed + serial);
        ++nodes;
        nl.connect(*x.node, x.port, f, 0);
        open.push_back({&f, 0});
      }
    }
    for (std::size_t i = 0; i < open.size(); ++i)
      addSink("sink" + std::to_string(i), open[i]);
  }
};

}  // namespace

const char* topologyName(Topology t) {
  switch (t) {
    case Topology::kPipeline: return "pipeline";
    case Topology::kForkJoin: return "fork-join";
    case Topology::kSpecLadder: return "spec-ladder";
    case Topology::kRandomDag: return "random-dag";
  }
  return "?";
}

SynthSystem build(const SynthConfig& config) {
  SynthSystem sys;
  Builder b(config, sys);
  switch (config.topology) {
    case Topology::kPipeline: b.buildPipeline(); break;
    case Topology::kForkJoin: b.buildForkJoin(); break;
    case Topology::kSpecLadder: b.buildSpecLadder(); break;
    case Topology::kRandomDag: b.buildRandomDag(); break;
  }
  sys.nl.validate();
  sys.nodeCount = sys.nl.nodeIds().size();
  sys.channelCount = sys.nl.channelIds().size();
  return sys;
}

Netlist buildNetlist(const SynthConfig& config) {
  return std::move(build(config).nl);
}

NetlistSpec spec(const SynthConfig& config) {
  return NetlistSpec::fromNetlist(buildNetlist(config));
}

std::string describe(const SynthConfig& config) {
  std::string tag = std::string(topologyName(config.topology)) + "/n" +
                    std::to_string(config.targetNodes) + "/w" +
                    std::to_string(config.width) + "/seed" +
                    std::to_string(config.seed) + "/inject" +
                    std::to_string(config.injectPeriod);
  // Non-default knobs are appended so distinct configs never share a tag
  // (benchmark names key the CI regression baseline).
  if (config.bufferCapacity != 2) tag += "/cap" + std::to_string(config.bufferCapacity);
  if (config.forkArity != 2) tag += "/arity" + std::to_string(config.forkArity);
  if (config.vluPermille != 0) tag += "/vlu" + std::to_string(config.vluPermille);
  if (config.nondetEnv) tag += "/nondet";
  return tag;
}

}  // namespace esl::synth
