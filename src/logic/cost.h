// Unit-gate cost model.
//
// The paper reports cycle time and area from a commercial 65nm synthesis flow;
// this repo substitutes a technology-independent unit-gate model (DESIGN.md §6):
// a 2-input NAND-equivalent has delay 1 and area 1. Every datapath block and
// every elastic controller reports its cost through these formulas, and the
// timing analyzer (src/perf) sums delays along combinational paths.
#pragma once

namespace esl::logic {

/// Delay in gate units and area in NAND2-equivalents.
struct Cost {
  double delay = 0.0;
  double area = 0.0;

  Cost operator+(const Cost& rhs) const { return {delay + rhs.delay, area + rhs.area}; }
};

/// ceil(log2(n)) for n >= 1.
unsigned clog2(unsigned n);

// --- Datapath block costs (width = operand bits) ---------------------------

/// Ripple-carry adder: linear carry chain.
Cost rippleAdderCost(unsigned width);

/// Kogge-Stone prefix adder: logarithmic depth, larger area.
Cost koggeStoneAdderCost(unsigned width);

/// 2:1 multiplexer over `width` bits.
Cost mux2Cost(unsigned width);

/// k:1 multiplexer over `width` bits (tree of mux2).
Cost muxCost(unsigned inputs, unsigned width);

/// Equality comparator over `width` bits (XOR + AND tree).
Cost equalityCost(unsigned width);

/// XOR tree reducing `leaves` inputs to one bit.
Cost xorTreeCost(unsigned leaves);

/// Exact ALU (add/sub/logic + op decode) over `width` bits.
Cost aluExactCost(unsigned width);

/// Approximate ALU with carry chain segmented every `segment` bits:
/// shallower carry, same logic ops.
Cost aluApproxCost(unsigned width, unsigned segment);

/// Input-operand error predictor for the segmented-carry ALU (telescopic
/// "hold" function): detects a carry crossing a segment boundary.
Cost aluErrorPredictorCost(unsigned width, unsigned segment);

/// SECDED(72,64) encoder (8 parity trees over subsets of 64 bits).
Cost secdedEncoderCost();

/// SECDED(72,64) decoder: syndrome + overall parity + correction muxing.
Cost secdedDecoderCost();

// --- Sequential / control costs --------------------------------------------

/// One transparent latch per bit.
Cost latchCost(unsigned bits);

/// One edge-triggered flip-flop per bit (~2 latches).
Cost flopCost(unsigned bits);

/// Elastic buffer (Lf=1, Lb=1, C=2): two latch ranks + handshake control.
Cost ebCost(unsigned dataBits);

/// Elastic buffer with zero backward latency (Lf=1, Lb=0, C=1, Fig. 5):
/// one flop rank + combinational stop/kill control.
Cost eb0Cost(unsigned dataBits);

/// Join/fork/eager-fork handshake controller for `ways` branches.
Cost forkJoinCost(unsigned ways);

/// Early-evaluation multiplexer controller for `inputs` data channels
/// (anti-token counters + select handling), excluding the datapath mux.
Cost earlyEvalMuxCost(unsigned inputs);

/// Shared-module controller (Fig. 4b) for `inputs` channels, excluding the
/// datapath input mux and the shared function itself.
Cost sharedModuleCost(unsigned inputs);

/// Extra delay charged when a datapath signal gates a *global* controller
/// (clock-gating fan-out in the stalling variable-latency unit, §5.1).
Cost controlGatingCost();

}  // namespace esl::logic
