// Structural adder implementations.
//
// Both adders are implemented the way the hardware computes them (explicit
// carry chain / prefix network) rather than delegating to built-in `+`, so the
// unit tests can cross-check the structural algorithms against the golden
// modular sum and the cost model stays honest about what is being built.
#pragma once

#include "base/bitvec.h"

namespace esl::logic {

/// Ripple-carry addition with explicit bit-serial carry chain.
/// Returns (sum mod 2^width); `carryOut` (optional) receives the carry.
BitVec rippleAdd(const BitVec& a, const BitVec& b, bool carryIn = false,
                 bool* carryOut = nullptr);

/// Kogge-Stone parallel-prefix addition (radix-2, explicit PG network).
BitVec koggeStoneAdd(const BitVec& a, const BitVec& b, bool carryIn = false);

/// Segmented-carry approximate addition: the carry chain is cut at every
/// multiple of `segment` bits (carry into a segment is assumed 0). This is the
/// classic approximate adder used as F_approx in variable-latency units.
BitVec segmentedAdd(const BitVec& a, const BitVec& b, unsigned segment);

/// True iff segmentedAdd(a, b, segment) != exact sum — i.e. a real carry
/// crosses some segment boundary. Computable from the operands alone with a
/// shallow circuit; this is the telescopic-unit error/hold predictor F_err.
bool segmentedAddOverflows(const BitVec& a, const BitVec& b, unsigned segment);

}  // namespace esl::logic
