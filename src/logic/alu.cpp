#include "logic/alu.h"

#include "logic/adders.h"

namespace esl::logic {

BitVec packAluOperands(const BitVec& a, const BitVec& b, AluOp op) {
  ESL_CHECK(a.width() == b.width(), "packAluOperands: width mismatch");
  BitVec opBits(2, static_cast<unsigned>(op));
  return a.concat(b).concat(opBits);
}

AluOperands unpackAluOperands(const BitVec& packed, unsigned width) {
  ESL_CHECK(packed.width() == 2 * width + 2, "unpackAluOperands: bad packed width");
  AluOperands ops;
  ops.a = packed.slice(0, width);
  ops.b = packed.slice(width, width);
  ops.op = static_cast<AluOp>(packed.slice(2 * width, 2).toUint64());
  return ops;
}

namespace {

BitVec aluCompute(const BitVec& packed, unsigned width, bool exact,
                  unsigned segment) {
  const AluOperands in = unpackAluOperands(packed, width);
  switch (in.op) {
    case AluOp::kAdd:
      return exact ? rippleAdd(in.a, in.b) : segmentedAdd(in.a, in.b, segment);
    case AluOp::kSub: {
      // a - b = a + ~b + 1; the +1 rides the carry-in (exact) or bit 0 of the
      // segmented chain (approx), matching a real segmented subtractor.
      const BitVec nb = ~in.b;
      if (exact) return rippleAdd(in.a, nb, /*carryIn=*/true);
      BitVec one(width, 1);
      return segmentedAdd(segmentedAdd(in.a, nb, segment), one, segment);
    }
    case AluOp::kAnd:
      return in.a & in.b;
    case AluOp::kXor:
      return in.a ^ in.b;
  }
  throw EslError("aluCompute: invalid opcode");
}

}  // namespace

BitVec aluExact(const BitVec& packed, unsigned width) {
  return aluCompute(packed, width, /*exact=*/true, /*segment=*/0);
}

BitVec aluApprox(const BitVec& packed, unsigned width, unsigned segment) {
  return aluCompute(packed, width, /*exact=*/false, segment);
}

bool aluApproxError(const BitVec& packed, unsigned width, unsigned segment) {
  const AluOperands in = unpackAluOperands(packed, width);
  switch (in.op) {
    case AluOp::kAdd:
      return segmentedAddOverflows(in.a, in.b, segment);
    case AluOp::kSub: {
      // Conservative: flag when either segmented stage would lose a carry.
      const BitVec nb = ~in.b;
      BitVec one(width, 1);
      return segmentedAddOverflows(in.a, nb, segment) ||
             segmentedAddOverflows(segmentedAdd(in.a, nb, segment), one, segment);
    }
    case AluOp::kAnd:
    case AluOp::kXor:
      return false;  // logic ops are exact in the approximate unit
  }
  throw EslError("aluApproxError: invalid opcode");
}

}  // namespace esl::logic
