#include "logic/cost.h"

namespace esl::logic {

unsigned clog2(unsigned n) {
  unsigned bits = 0;
  unsigned v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

// XOR2 counts as 2 NAND-equivalents in delay and area; a full adder is two
// XOR2 in the sum path plus a majority gate on the carry path.

Cost rippleAdderCost(unsigned width) {
  // Carry ripples through one majority gate (delay 2) per bit.
  return {2.0 * width + 2.0, 9.0 * width};
}

Cost koggeStoneAdderCost(unsigned width) {
  const unsigned levels = clog2(width);
  // PG generation + log2(n) prefix levels + sum XOR.
  return {2.0 + 2.0 * levels + 2.0,
          static_cast<double>(width) * (3.0 + 3.0 * levels) + 2.0 * width};
}

Cost mux2Cost(unsigned width) { return {2.0, 3.0 * width}; }

Cost muxCost(unsigned inputs, unsigned width) {
  if (inputs <= 1) return {0.0, 0.0};
  const unsigned levels = clog2(inputs);
  return {2.0 * levels, 3.0 * width * (inputs - 1)};
}

Cost equalityCost(unsigned width) {
  // Bitwise XOR (delay 2) + AND reduction tree.
  return {2.0 + 1.0 * clog2(width), 2.0 * width + (width - 1)};
}

Cost xorTreeCost(unsigned leaves) {
  if (leaves <= 1) return {0.0, 0.0};
  return {2.0 * clog2(leaves), 2.0 * (leaves - 1)};
}

Cost aluExactCost(unsigned width) {
  const Cost add = rippleAdderCost(width);
  // op decode + result mux over 4 function classes + logic unit.
  return {add.delay + 4.0, add.area + 6.0 * width + 8.0};
}

Cost aluApproxCost(unsigned width, unsigned segment) {
  // Carry chains run only within a segment.
  const Cost add = rippleAdderCost(segment < width ? segment : width);
  const double segments = static_cast<double>((width + segment - 1) / segment);
  return {add.delay + 4.0, add.area * segments + 6.0 * width + 8.0};
}

Cost aluErrorPredictorCost(unsigned width, unsigned segment) {
  // Propagate/generate chains over each segment boundary neighbourhood
  // (both operands) + OR reduction. Telescopic hold functions are deep
  // relative to their size — this is what makes F_err critical in §5.1.
  const unsigned boundaries = segment == 0 ? 0 : (width - 1) / segment;
  const Cost perBoundary{2.0 * clog2(width) + 2.0 * clog2(segment) + 2.0,
                         4.0 * segment};
  return {perBoundary.delay + clog2(boundaries ? boundaries : 1),
          perBoundary.area * boundaries + (boundaries ? boundaries - 1.0 : 0.0)};
}

Cost secdedEncoderCost() {
  // 8 parity trees, each over ~35 of the 64 data bits.
  const Cost tree = xorTreeCost(35);
  return {tree.delay, 8.0 * tree.area};
}

Cost secdedDecoderCost() {
  // Syndrome trees over 72 bits, decode, correction XOR + flag logic.
  const Cost tree = xorTreeCost(36);
  return {tree.delay + 3.0 + 2.0, 8.0 * tree.area + 72.0 * 3.0 + 20.0};
}

Cost latchCost(unsigned bits) { return {1.0, 4.0 * bits}; }

Cost flopCost(unsigned bits) { return {1.0, 8.0 * bits}; }

Cost ebCost(unsigned dataBits) {
  // Two transparent-latch ranks (Fig. 2a) + ~14 gates of handshake control.
  return {1.0, 2.0 * latchCost(dataBits).area + 14.0};
}

Cost eb0Cost(unsigned dataBits) {
  // One flop rank (Fig. 5) + combinational stop/kill control (~10 gates).
  return {1.0, flopCost(dataBits).area + 10.0};
}

Cost forkJoinCost(unsigned ways) { return {1.0, 6.0 * ways}; }

Cost earlyEvalMuxCost(unsigned inputs) {
  // Per-input anti-token counter (2 flops + inc/dec) + firing logic.
  return {2.0, inputs * (2.0 * 8.0 + 6.0) + 10.0};
}

Cost sharedModuleCost(unsigned inputs) {
  // Fig. 4(b): per-channel valid/stop gating + kill pass-through.
  return {2.0, inputs * 10.0 + 6.0};
}

Cost controlGatingCost() {
  // Buffering a datapath-derived signal onto a global enable network.
  return {5.0, 12.0};
}

}  // namespace esl::logic
