#include "logic/adders.h"

namespace esl::logic {

BitVec rippleAdd(const BitVec& a, const BitVec& b, bool carryIn, bool* carryOut) {
  ESL_CHECK(a.width() == b.width(), "rippleAdd: width mismatch");
  const unsigned n = a.width();
  BitVec sum(n);
  bool c = carryIn;
  for (unsigned i = 0; i < n; ++i) {
    const bool ai = a.bit(i);
    const bool bi = b.bit(i);
    sum.setBit(i, ai ^ bi ^ c);
    c = (ai && bi) || (c && (ai ^ bi));
  }
  if (carryOut != nullptr) *carryOut = c;
  return sum;
}

BitVec koggeStoneAdd(const BitVec& a, const BitVec& b, bool carryIn) {
  ESL_CHECK(a.width() == b.width(), "koggeStoneAdd: width mismatch");
  const unsigned n = a.width();
  if (n == 0) return BitVec();

  // Generate / propagate per bit; bit 0 folds in the carry-in.
  std::vector<bool> g(n), p(n), pRaw(n);
  for (unsigned i = 0; i < n; ++i) {
    g[i] = a.bit(i) && b.bit(i);
    p[i] = a.bit(i) != b.bit(i);
    pRaw[i] = p[i];
  }
  if (carryIn) g[0] = g[0] || p[0];

  // Prefix network: (g,p)[i] accumulates over spans doubling each level.
  for (unsigned dist = 1; dist < n; dist <<= 1) {
    std::vector<bool> g2 = g, p2 = p;
    for (unsigned i = dist; i < n; ++i) {
      g2[i] = g[i] || (p[i] && g[i - dist]);
      p2[i] = p[i] && p[i - dist];
    }
    g = std::move(g2);
    p = std::move(p2);
  }

  BitVec sum(n);
  for (unsigned i = 0; i < n; ++i) {
    const bool carryIntoI = i == 0 ? carryIn : g[i - 1];
    sum.setBit(i, pRaw[i] ^ carryIntoI);
  }
  return sum;
}

BitVec segmentedAdd(const BitVec& a, const BitVec& b, unsigned segment) {
  ESL_CHECK(a.width() == b.width(), "segmentedAdd: width mismatch");
  ESL_CHECK(segment > 0, "segmentedAdd: segment must be positive");
  const unsigned n = a.width();
  BitVec sum(n);
  bool c = false;
  for (unsigned i = 0; i < n; ++i) {
    if (i % segment == 0) c = false;  // carry chain cut at segment boundary
    const bool ai = a.bit(i);
    const bool bi = b.bit(i);
    sum.setBit(i, ai ^ bi ^ c);
    c = (ai && bi) || (c && (ai ^ bi));
  }
  return sum;
}

bool segmentedAddOverflows(const BitVec& a, const BitVec& b, unsigned segment) {
  ESL_CHECK(a.width() == b.width(), "segmentedAddOverflows: width mismatch");
  ESL_CHECK(segment > 0, "segmentedAddOverflows: segment must be positive");
  const unsigned n = a.width();
  bool c = false;
  for (unsigned i = 0; i < n; ++i) {
    if (i % segment == 0 && i != 0 && c) return true;  // carry crosses a cut
    if (i % segment == 0) c = false;
    const bool ai = a.bit(i);
    const bool bi = b.bit(i);
    c = (ai && bi) || (c && (ai != bi));
  }
  return false;
}

}  // namespace esl::logic
