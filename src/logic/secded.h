// SECDED(72,64): single-error-correction, double-error-detection Hamming code.
//
// Substrate for the resilient-design case study (paper §5.2, Fig. 7): 64 data
// bits are protected by 7 Hamming check bits plus one overall parity bit.
// Layout: code bits 0..70 hold Hamming positions 1..71 (check bits at the
// power-of-two positions 1,2,4,8,16,32,64; data bits fill the rest in order);
// code bit 71 is the overall parity over the whole 72-bit word (even parity).
#pragma once

#include "base/bitvec.h"

namespace esl::logic {

inline constexpr unsigned kSecdedDataBits = 64;
inline constexpr unsigned kSecdedCodeBits = 72;

enum class SecdedStatus {
  kOk,           ///< no error detected
  kCorrected,    ///< single-bit error corrected
  kDoubleError,  ///< two-bit error detected (uncorrectable)
};

struct SecdedResult {
  BitVec data;          ///< 64-bit payload (corrected when possible)
  SecdedStatus status = SecdedStatus::kOk;
  unsigned correctedBit = 0;  ///< code-bit index of the fix (valid iff kCorrected)
};

/// Encodes 64 data bits into a 72-bit SECDED code word.
BitVec secdedEncode(const BitVec& data);

/// Decodes a 72-bit code word, correcting a single-bit error if present.
SecdedResult secdedDecode(const BitVec& code);

/// Extracts the payload without any checking (the "speculative" read used by
/// the resilient pipeline before SECDED finishes).
BitVec secdedPayload(const BitVec& code);

}  // namespace esl::logic
