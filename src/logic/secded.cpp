#include "logic/secded.h"

#include <array>

namespace esl::logic {

namespace {

constexpr unsigned kHammingPositions = 71;  // positions 1..71 in code bits 0..70
constexpr unsigned kParityBit = 71;         // overall parity at code bit 71

bool isPowerOfTwo(unsigned x) { return x != 0 && (x & (x - 1)) == 0; }

/// Code-bit indices (Hamming position - 1) of the 64 data positions, in order.
const std::array<unsigned, kSecdedDataBits>& dataPositions() {
  static const std::array<unsigned, kSecdedDataBits> table = [] {
    std::array<unsigned, kSecdedDataBits> t{};
    unsigned n = 0;
    for (unsigned pos = 1; pos <= kHammingPositions; ++pos) {
      if (!isPowerOfTwo(pos)) t[n++] = pos - 1;
    }
    ESL_ASSERT(n == kSecdedDataBits);
    return t;
  }();
  return table;
}

}  // namespace

BitVec secdedEncode(const BitVec& data) {
  ESL_CHECK(data.width() == kSecdedDataBits, "secdedEncode: data must be 64 bits");
  BitVec code(kSecdedCodeBits);
  for (unsigned i = 0; i < kSecdedDataBits; ++i)
    code.setBit(dataPositions()[i], data.bit(i));

  // Check bit k (position 2^k) makes parity over positions with bit k set even.
  for (unsigned k = 0; k < 7; ++k) {
    bool parity = false;
    for (unsigned pos = 1; pos <= kHammingPositions; ++pos) {
      if ((pos & (1u << k)) != 0 && !isPowerOfTwo(pos)) parity ^= code.bit(pos - 1);
    }
    code.setBit((1u << k) - 1, parity);
  }

  // Overall parity over code bits 0..70.
  bool overall = false;
  for (unsigned i = 0; i < kParityBit; ++i) overall ^= code.bit(i);
  code.setBit(kParityBit, overall);
  return code;
}

BitVec secdedPayload(const BitVec& code) {
  ESL_CHECK(code.width() == kSecdedCodeBits, "secdedPayload: code must be 72 bits");
  BitVec data(kSecdedDataBits);
  for (unsigned i = 0; i < kSecdedDataBits; ++i)
    data.setBit(i, code.bit(dataPositions()[i]));
  return data;
}

SecdedResult secdedDecode(const BitVec& code) {
  ESL_CHECK(code.width() == kSecdedCodeBits, "secdedDecode: code must be 72 bits");

  unsigned syndrome = 0;
  for (unsigned k = 0; k < 7; ++k) {
    bool parity = false;
    for (unsigned pos = 1; pos <= kHammingPositions; ++pos) {
      if ((pos & (1u << k)) != 0) parity ^= code.bit(pos - 1);
    }
    if (parity) syndrome |= 1u << k;
  }
  bool overallOdd = code.parity();  // even parity encoding => should be false

  BitVec fixed = code;
  SecdedResult out;
  if (syndrome == 0 && !overallOdd) {
    out.status = SecdedStatus::kOk;
  } else if (syndrome == 0 && overallOdd) {
    // The overall parity bit itself flipped.
    out.status = SecdedStatus::kCorrected;
    out.correctedBit = kParityBit;
    fixed.setBit(kParityBit, !fixed.bit(kParityBit));
  } else if (overallOdd) {
    // Nonzero syndrome + odd overall parity: single error at `syndrome`.
    if (syndrome > kHammingPositions) {
      out.status = SecdedStatus::kDoubleError;  // syndrome outside the code
    } else {
      out.status = SecdedStatus::kCorrected;
      out.correctedBit = syndrome - 1;
      fixed.setBit(syndrome - 1, !fixed.bit(syndrome - 1));
    }
  } else {
    // Nonzero syndrome + even overall parity: exactly the double-error signature.
    out.status = SecdedStatus::kDoubleError;
  }
  out.data = secdedPayload(fixed);
  return out;
}

}  // namespace esl::logic
