#include "logic/secded.h"

#include <array>

namespace esl::logic {

namespace {

constexpr unsigned kHammingPositions = 71;  // positions 1..71 in code bits 0..70
constexpr unsigned kParityBit = 71;         // overall parity at code bit 71

bool isPowerOfTwo(unsigned x) { return x != 0 && (x & (x - 1)) == 0; }

/// Code-bit indices (Hamming position - 1) of the 64 data positions, in order.
const std::array<unsigned, kSecdedDataBits>& dataPositions() {
  static const std::array<unsigned, kSecdedDataBits> table = [] {
    std::array<unsigned, kSecdedDataBits> t{};
    unsigned n = 0;
    for (unsigned pos = 1; pos <= kHammingPositions; ++pos) {
      if (!isPowerOfTwo(pos)) t[n++] = pos - 1;
    }
    ESL_ASSERT(n == kSecdedDataBits);
    return t;
  }();
  return table;
}

/// The data→code bit map is monotone (data bits fill the non-power-of-two
/// Hamming positions in order), so the gather/scatter between the 64-bit
/// payload and the 72-bit code decomposes into the contiguous runs between
/// check-bit positions — 7 word-level field moves instead of 64 bit moves.
struct Run {
  unsigned src, dst, len;  // data bits [src, src+len) <-> code bits [dst, dst+len)
};

const std::vector<Run>& dataRuns() {
  static const std::vector<Run> table = [] {
    std::vector<Run> runs;
    const auto& pos = dataPositions();
    unsigned i = 0;
    while (i < kSecdedDataBits) {
      Run r{i, pos[i], 1};
      while (i + r.len < kSecdedDataBits && pos[i + r.len] == r.dst + r.len) ++r.len;
      i += r.len;
      runs.push_back(r);
    }
    return runs;
  }();
  return table;
}

/// Word-parallel parity masks: check mask k covers the code-bit indices of
/// Hamming positions with bit k set (with and without the power-of-two check
/// positions themselves), and one mask covers everything below the overall
/// parity bit. Built once; every parity reduces to AND + popcount.
struct SecdedMasks {
  std::array<BitVec, 7> checkData;  ///< bit k set, position not a power of two
  std::array<BitVec, 7> checkAll;   ///< bit k set (decode syndrome)
  BitVec belowParity;               ///< code bits 0..70
};

const SecdedMasks& masks() {
  static const SecdedMasks table = [] {
    SecdedMasks m;
    for (unsigned k = 0; k < 7; ++k) {
      m.checkData[k] = BitVec(kSecdedCodeBits);
      m.checkAll[k] = BitVec(kSecdedCodeBits);
      for (unsigned pos = 1; pos <= kHammingPositions; ++pos) {
        if ((pos & (1u << k)) == 0) continue;
        m.checkAll[k].setBit(pos - 1, true);
        if (!isPowerOfTwo(pos)) m.checkData[k].setBit(pos - 1, true);
      }
    }
    m.belowParity = BitVec(kSecdedCodeBits);
    for (unsigned i = 0; i < kParityBit; ++i) m.belowParity.setBit(i, true);
    return m;
  }();
  return table;
}

}  // namespace

BitVec secdedEncode(const BitVec& data) {
  ESL_CHECK(data.width() == kSecdedDataBits, "secdedEncode: data must be 64 bits");
  BitVec code(kSecdedCodeBits);
  for (const Run& r : dataRuns())
    code.depositBits(r.dst, data.extractBits(r.src, r.len), r.len);

  // Check bit k (position 2^k) makes parity over positions with bit k set even.
  for (unsigned k = 0; k < 7; ++k)
    code.setBit((1u << k) - 1, code.parityAnd(masks().checkData[k]));

  // Overall parity over code bits 0..70.
  code.setBit(kParityBit, code.parityAnd(masks().belowParity));
  return code;
}

BitVec secdedPayload(const BitVec& code) {
  ESL_CHECK(code.width() == kSecdedCodeBits, "secdedPayload: code must be 72 bits");
  BitVec data(kSecdedDataBits);
  for (const Run& r : dataRuns())
    data.depositBits(r.src, code.extractBits(r.dst, r.len), r.len);
  return data;
}

SecdedResult secdedDecode(const BitVec& code) {
  ESL_CHECK(code.width() == kSecdedCodeBits, "secdedDecode: code must be 72 bits");

  unsigned syndrome = 0;
  for (unsigned k = 0; k < 7; ++k)
    if (code.parityAnd(masks().checkAll[k])) syndrome |= 1u << k;
  bool overallOdd = code.parity();  // even parity encoding => should be false

  BitVec fixed = code;
  SecdedResult out;
  if (syndrome == 0 && !overallOdd) {
    out.status = SecdedStatus::kOk;
  } else if (syndrome == 0 && overallOdd) {
    // The overall parity bit itself flipped.
    out.status = SecdedStatus::kCorrected;
    out.correctedBit = kParityBit;
    fixed.setBit(kParityBit, !fixed.bit(kParityBit));
  } else if (overallOdd) {
    // Nonzero syndrome + odd overall parity: single error at `syndrome`.
    if (syndrome > kHammingPositions) {
      out.status = SecdedStatus::kDoubleError;  // syndrome outside the code
    } else {
      out.status = SecdedStatus::kCorrected;
      out.correctedBit = syndrome - 1;
      fixed.setBit(syndrome - 1, !fixed.bit(syndrome - 1));
    }
  } else {
    // Nonzero syndrome + even overall parity: exactly the double-error signature.
    out.status = SecdedStatus::kDoubleError;
  }
  out.data = secdedPayload(fixed);
  return out;
}

}  // namespace esl::logic
