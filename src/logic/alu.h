// Small ALU with an exact and an approximate (segmented-carry) variant.
//
// These are the F_exact / F_approx / F_err blocks of the variable-latency
// unit case study (paper §5.1, Fig. 6). The operand word packs two `width`-bit
// operands plus a 2-bit opcode:
//   [ op(2) | b(width) | a(width) ]
#pragma once

#include "base/bitvec.h"

namespace esl::logic {

enum class AluOp : unsigned { kAdd = 0, kSub = 1, kAnd = 2, kXor = 3 };

/// Packs (a, b, op) into a single operand word of width 2*width+2.
BitVec packAluOperands(const BitVec& a, const BitVec& b, AluOp op);

/// Inverse of packAluOperands.
struct AluOperands {
  BitVec a;
  BitVec b;
  AluOp op;
};
AluOperands unpackAluOperands(const BitVec& packed, unsigned width);

/// Exact ALU result (full carry chain).
BitVec aluExact(const BitVec& packed, unsigned width);

/// Approximate ALU: add/sub use a carry chain segmented every `segment` bits;
/// logic ops are exact. Equals aluExact unless a carry crosses a boundary.
BitVec aluApprox(const BitVec& packed, unsigned width, unsigned segment);

/// Telescopic error predictor F_err, a function of the *inputs* only:
/// true iff aluApprox may differ from aluExact for this operand word.
/// Never returns false when the results actually differ (no false negatives).
bool aluApproxError(const BitVec& packed, unsigned width, unsigned segment);

}  // namespace esl::logic
