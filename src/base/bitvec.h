// BitVec: fixed-width bit vector value type (width chosen at construction).
//
// Channel payloads in the elastic simulator, datapath operands (including the
// 72-bit SECDED code words) and injected error masks are all BitVec values.
// Semantics are those of an unsigned integer of exactly `width` bits: all
// arithmetic wraps modulo 2^width and every operation keeps the result masked
// to the width.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "base/error.h"

namespace esl {

class BitVec {
 public:
  /// Zero-width empty value (used for pure control tokens).
  BitVec() = default;

  /// `width` bits initialized from the low bits of `value`.
  explicit BitVec(unsigned width, std::uint64_t value = 0);

  /// Parses a binary string, MSB first ("1011" -> width 4, value 11).
  static BitVec fromBinary(const std::string& bits);

  /// All-ones value of the given width.
  static BitVec ones(unsigned width);

  /// Single bit set at `pos` in a vector of `width` bits.
  static BitVec oneHot(unsigned width, unsigned pos);

  unsigned width() const { return width_; }
  bool empty() const { return width_ == 0; }

  bool bit(unsigned pos) const;
  void setBit(unsigned pos, bool value);

  /// Bits [lo, lo+len) as a uint64 (len <= 64). Word-parallel field read.
  std::uint64_t extractBits(unsigned lo, unsigned len) const;
  /// Overwrites bits [lo, lo+len) with the low `len` bits of value (len <= 64).
  void depositBits(unsigned lo, std::uint64_t value, unsigned len);

  /// Low 64 bits (exact value if width() <= 64).
  std::uint64_t toUint64() const;

  /// Word 0 with no width branch (requires width() >= 1). Inline so the
  /// compiled backend's narrow payload moves stay call-free.
  std::uint64_t word0() const {
    return onHeap() ? heapWords_[0] : inlineWords_[0];
  }
  /// In-place overwrite with the `w`-bit value `v` (w in [1, 64], v already
  /// masked to w bits): `*this = BitVec(w, v)` without the temporary, reusing
  /// the inline storage.
  void assignNarrow(unsigned w, std::uint64_t v) {
    release();
    width_ = w;
    inlineWords_[0] = v;
  }

  /// True iff every bit is zero (zero-width vectors are zero).
  bool isZero() const;

  unsigned popcount() const;
  bool parity() const;  ///< XOR of all bits.
  /// Parity of `*this & mask` without materializing the AND (widths must
  /// match). Lets ECC-style checks run word-parallel with no allocation.
  bool parityAnd(const BitVec& mask) const;

  /// Bits [lo, lo+len) as a new BitVec of width len.
  BitVec slice(unsigned lo, unsigned len) const;

  /// Concatenation: `this` occupies the low bits, `high` the high bits.
  BitVec concat(const BitVec& high) const;

  /// Zero-extends or truncates to `width` bits.
  BitVec resized(unsigned width) const;

  // Bitwise operators require equal widths.
  BitVec operator~() const;
  BitVec operator&(const BitVec& rhs) const;
  BitVec operator|(const BitVec& rhs) const;
  BitVec operator^(const BitVec& rhs) const;

  // Modular arithmetic, equal widths.
  BitVec operator+(const BitVec& rhs) const;
  BitVec operator-(const BitVec& rhs) const;

  BitVec operator<<(unsigned amount) const;
  BitVec operator>>(unsigned amount) const;

  bool operator==(const BitVec& rhs) const;
  bool operator!=(const BitVec& rhs) const { return !(*this == rhs); }
  /// Unsigned comparison; widths must match.
  std::strong_ordering operator<=>(const BitVec& rhs) const;

  /// MSB-first binary string, e.g. "01011".
  std::string toBinary() const;
  /// Hex string with 0x prefix, e.g. "0x2b".
  std::string toHex() const;

  /// FNV-style hash for use in unordered containers / state hashing.
  std::size_t hash() const;

  // Small-buffer value type: widths up to kInlineWords*64 bits (which covers
  // every datapath in the paper systems, including the 144-bit SECDED pairs)
  // live entirely inline; wider values fall back to the heap. Simulation
  // copies channel payloads constantly, so this keeps the hot path
  // allocation-free.
  BitVec(const BitVec& o) : width_(o.width_) {
    allocate();
    std::copy(o.words(), o.words() + wordCount(), wordsMut());
  }
  BitVec(BitVec&& o) noexcept : width_(o.width_) {
    if (onHeap()) {
      heapWords_ = o.heapWords_;
      o.width_ = 0;
    } else {
      std::copy(o.inlineWords_, o.inlineWords_ + wordCount(), inlineWords_);
    }
  }
  BitVec& operator=(const BitVec& o) {
    if (this == &o) return *this;
    if (wordCount() != o.wordCount()) {
      release();
      width_ = o.width_;
      allocate();
    } else {
      width_ = o.width_;
    }
    std::copy(o.words(), o.words() + wordCount(), wordsMut());
    return *this;
  }
  BitVec& operator=(BitVec&& o) noexcept {
    if (this == &o) return *this;
    release();
    width_ = o.width_;
    if (onHeap()) {
      heapWords_ = o.heapWords_;
      o.width_ = 0;
    } else {
      std::copy(o.inlineWords_, o.inlineWords_ + wordCount(), inlineWords_);
    }
    return *this;
  }
  ~BitVec() { release(); }

 private:
  static constexpr unsigned kWordBits = 64;
  static constexpr unsigned kInlineWords = 3;
  unsigned wordCount() const { return (width_ + kWordBits - 1) / kWordBits; }
  bool onHeap() const { return wordCount() > kInlineWords; }
  const std::uint64_t* words() const { return onHeap() ? heapWords_ : inlineWords_; }
  std::uint64_t* wordsMut() { return onHeap() ? heapWords_ : inlineWords_; }
  /// Zero-initializes storage for the current width.
  void allocate() {
    if (onHeap())
      heapWords_ = new std::uint64_t[wordCount()]();
    else
      for (unsigned i = 0; i < kInlineWords; ++i) inlineWords_[i] = 0;
  }
  void release() {
    if (onHeap()) delete[] heapWords_;
  }
  void maskTop();
  void checkSameWidth(const BitVec& rhs) const;

  unsigned width_ = 0;
  union {
    std::uint64_t inlineWords_[kInlineWords] = {0, 0, 0};
    std::uint64_t* heapWords_;
  };
};

struct BitVecHash {
  std::size_t operator()(const BitVec& v) const { return v.hash(); }
};

}  // namespace esl
