// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte runs.
//
// The integrity check on every durable artifact the tree writes: snapshot
// files (--save-state), serve spool records and their journal lines all
// carry a CRC so truncation and bit-rot are detected at read time instead of
// being deserialized blind. Table-driven, no dependencies; ~1 GB/s is far
// faster than the disk writes it guards.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace esl {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// CRC-32 of `n` bytes at `data`. Chain blocks by passing the previous return
/// value as `seed` (the empty run with seed 0 is 0).
inline std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0) {
  const auto& table = detail::crc32Table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace esl
