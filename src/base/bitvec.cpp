#include "base/bitvec.h"

#include <algorithm>
#include <bit>

namespace esl {

BitVec::BitVec(unsigned width, std::uint64_t value) : width_(width) {
  allocate();
  if (wordCount() > 0) {
    wordsMut()[0] = value;
    maskTop();
  } else {
    ESL_CHECK(value == 0, "zero-width BitVec cannot hold a nonzero value");
  }
}

BitVec BitVec::fromBinary(const std::string& bits) {
  BitVec v(static_cast<unsigned>(bits.size()));
  for (unsigned i = 0; i < bits.size(); ++i) {
    const char c = bits[bits.size() - 1 - i];
    ESL_CHECK(c == '0' || c == '1', "BitVec::fromBinary: invalid character");
    if (c == '1') v.setBit(i, true);
  }
  return v;
}

BitVec BitVec::ones(unsigned width) {
  BitVec v(width);
  for (unsigned i = 0; i < v.wordCount(); ++i) v.wordsMut()[i] = ~0ULL;
  v.maskTop();
  return v;
}

BitVec BitVec::oneHot(unsigned width, unsigned pos) {
  BitVec v(width);
  v.setBit(pos, true);
  return v;
}

bool BitVec::bit(unsigned pos) const {
  ESL_CHECK(pos < width_, "BitVec::bit out of range");
  return (words()[pos / kWordBits] >> (pos % kWordBits)) & 1ULL;
}

void BitVec::setBit(unsigned pos, bool value) {
  ESL_CHECK(pos < width_, "BitVec::setBit out of range");
  const std::uint64_t mask = 1ULL << (pos % kWordBits);
  if (value)
    wordsMut()[pos / kWordBits] |= mask;
  else
    wordsMut()[pos / kWordBits] &= ~mask;
}

std::uint64_t BitVec::toUint64() const { return wordCount() == 0 ? 0 : words()[0]; }

std::uint64_t BitVec::extractBits(unsigned lo, unsigned len) const {
  ESL_CHECK(len <= 64 && lo + len <= width_, "BitVec::extractBits out of range");
  if (len == 0) return 0;
  const unsigned w = lo / kWordBits;
  const unsigned shift = lo % kWordBits;
  std::uint64_t v = words()[w] >> shift;
  if (shift != 0 && w + 1 < wordCount()) v |= words()[w + 1] << (kWordBits - shift);
  return len == 64 ? v : v & ((1ULL << len) - 1);
}

void BitVec::depositBits(unsigned lo, std::uint64_t value, unsigned len) {
  ESL_CHECK(len <= 64 && lo + len <= width_, "BitVec::depositBits out of range");
  if (len == 0) return;
  const std::uint64_t mask = len == 64 ? ~0ULL : (1ULL << len) - 1;
  value &= mask;
  const unsigned w = lo / kWordBits;
  const unsigned shift = lo % kWordBits;
  wordsMut()[w] = (wordsMut()[w] & ~(mask << shift)) | (value << shift);
  const unsigned spill = shift + len > kWordBits ? shift + len - kWordBits : 0;
  if (spill != 0) {
    const std::uint64_t highMask = (1ULL << spill) - 1;
    wordsMut()[w + 1] = (wordsMut()[w + 1] & ~highMask) | (value >> (kWordBits - shift));
  }
}

bool BitVec::isZero() const {
  return std::all_of(words(), words() + wordCount(),
                     [](std::uint64_t w) { return w == 0; });
}

unsigned BitVec::popcount() const {
  unsigned n = 0;
  for (unsigned i = 0; i < wordCount(); ++i)
    n += static_cast<unsigned>(std::popcount(words()[i]));
  return n;
}

bool BitVec::parity() const { return (popcount() & 1u) != 0; }

bool BitVec::parityAnd(const BitVec& mask) const {
  checkSameWidth(mask);
  std::uint64_t acc = 0;
  for (unsigned w = 0; w < wordCount(); ++w) acc ^= words()[w] & mask.words()[w];
  return (std::popcount(acc) & 1u) != 0;
}

BitVec BitVec::slice(unsigned lo, unsigned len) const {
  ESL_CHECK(lo + len <= width_, "BitVec::slice out of range");
  BitVec out(len);
  const unsigned shift = lo % kWordBits;
  const unsigned base = lo / kWordBits;
  for (unsigned w = 0; w < out.wordCount(); ++w) {
    std::uint64_t v = words()[base + w] >> shift;
    if (shift != 0 && base + w + 1 < wordCount())
      v |= words()[base + w + 1] << (kWordBits - shift);
    out.wordsMut()[w] = v;
  }
  out.maskTop();
  return out;
}

BitVec BitVec::concat(const BitVec& high) const {
  BitVec out(width_ + high.width_);
  std::copy(words(), words() + wordCount(), out.wordsMut());
  const unsigned shift = width_ % kWordBits;
  const unsigned base = width_ / kWordBits;
  for (unsigned w = 0; w < high.wordCount(); ++w) {
    out.wordsMut()[base + w] |= high.words()[w] << shift;
    if (shift != 0 && base + w + 1 < out.wordCount())
      out.wordsMut()[base + w + 1] |= high.words()[w] >> (kWordBits - shift);
  }
  return out;
}

BitVec BitVec::resized(unsigned width) const {
  BitVec out(width);
  const unsigned n = std::min(out.wordCount(), wordCount());
  std::copy(words(), words() + n, out.wordsMut());
  out.maskTop();
  return out;
}

BitVec BitVec::operator~() const {
  BitVec out(*this);
  for (unsigned i = 0; i < out.wordCount(); ++i) out.wordsMut()[i] = ~out.words()[i];
  out.maskTop();
  return out;
}

BitVec BitVec::operator&(const BitVec& rhs) const {
  checkSameWidth(rhs);
  BitVec out(*this);
  for (unsigned i = 0; i < out.wordCount(); ++i) out.wordsMut()[i] &= rhs.words()[i];
  return out;
}

BitVec BitVec::operator|(const BitVec& rhs) const {
  checkSameWidth(rhs);
  BitVec out(*this);
  for (unsigned i = 0; i < out.wordCount(); ++i) out.wordsMut()[i] |= rhs.words()[i];
  return out;
}

BitVec BitVec::operator^(const BitVec& rhs) const {
  checkSameWidth(rhs);
  BitVec out(*this);
  for (unsigned i = 0; i < out.wordCount(); ++i) out.wordsMut()[i] ^= rhs.words()[i];
  return out;
}

BitVec BitVec::operator+(const BitVec& rhs) const {
  checkSameWidth(rhs);
  BitVec out(width_);
  unsigned __int128 carry = 0;
  for (unsigned i = 0; i < out.wordCount(); ++i) {
    const unsigned __int128 s =
        static_cast<unsigned __int128>(words()[i]) + rhs.words()[i] + carry;
    out.wordsMut()[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  out.maskTop();
  return out;
}

BitVec BitVec::operator-(const BitVec& rhs) const {
  // a - b = a + ~b + 1 (mod 2^width)
  BitVec notb = ~rhs;
  BitVec one(width_, width_ == 0 ? 0 : 1);
  return *this + notb + one;
}

BitVec BitVec::operator<<(unsigned amount) const {
  BitVec out(width_);
  if (amount >= width_) return out;
  const unsigned shift = amount % kWordBits;
  const unsigned base = amount / kWordBits;
  for (unsigned w = out.wordCount(); w-- > base;) {
    std::uint64_t v = words()[w - base] << shift;
    if (shift != 0 && w - base > 0) v |= words()[w - base - 1] >> (kWordBits - shift);
    out.wordsMut()[w] = v;
  }
  out.maskTop();
  return out;
}

BitVec BitVec::operator>>(unsigned amount) const {
  BitVec out(width_);
  if (amount >= width_) return out;
  const unsigned shift = amount % kWordBits;
  const unsigned base = amount / kWordBits;
  for (unsigned w = 0; w + base < wordCount(); ++w) {
    std::uint64_t v = words()[w + base] >> shift;
    if (shift != 0 && w + base + 1 < wordCount())
      v |= words()[w + base + 1] << (kWordBits - shift);
    out.wordsMut()[w] = v;
  }
  return out;
}

bool BitVec::operator==(const BitVec& rhs) const {
  if (width_ != rhs.width_) return false;
  return std::equal(words(), words() + wordCount(), rhs.words());
}

std::strong_ordering BitVec::operator<=>(const BitVec& rhs) const {
  checkSameWidth(rhs);
  for (unsigned i = wordCount(); i-- > 0;) {
    if (words()[i] != rhs.words()[i])
      return words()[i] < rhs.words()[i] ? std::strong_ordering::less
                                         : std::strong_ordering::greater;
  }
  return std::strong_ordering::equal;
}

std::string BitVec::toBinary() const {
  std::string s;
  s.reserve(width_);
  for (unsigned i = width_; i-- > 0;) s.push_back(bit(i) ? '1' : '0');
  return s;
}

std::string BitVec::toHex() const {
  static const char* digits = "0123456789abcdef";
  if (width_ == 0) return "0x0";
  std::string s;
  const unsigned nibbles = (width_ + 3) / 4;
  for (unsigned n = nibbles; n-- > 0;) {
    unsigned v = 0;
    for (unsigned b = 0; b < 4; ++b) {
      const unsigned pos = n * 4 + b;
      if (pos < width_ && bit(pos)) v |= 1u << b;
    }
    s.push_back(digits[v]);
  }
  return "0x" + s;
}

std::size_t BitVec::hash() const {
  std::size_t h = 1469598103934665603ULL ^ width_;
  for (unsigned i = 0; i < wordCount(); ++i) {
    h ^= static_cast<std::size_t>(words()[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

void BitVec::maskTop() {
  const unsigned rem = width_ % kWordBits;
  if (rem != 0 && wordCount() > 0)
    wordsMut()[wordCount() - 1] &= (~0ULL >> (kWordBits - rem));
}

void BitVec::checkSameWidth(const BitVec& rhs) const {
  ESL_CHECK(width_ == rhs.width_, "BitVec width mismatch: " +
                                      std::to_string(width_) + " vs " +
                                      std::to_string(rhs.width_));
}

}  // namespace esl
