#include "base/bitvec.h"

#include <algorithm>
#include <bit>

namespace esl {

BitVec::BitVec(unsigned width, std::uint64_t value) : width_(width) {
  words_.assign(wordCount(), 0);
  if (!words_.empty()) {
    words_[0] = value;
    maskTop();
  } else {
    ESL_CHECK(value == 0, "zero-width BitVec cannot hold a nonzero value");
  }
}

BitVec BitVec::fromBinary(const std::string& bits) {
  BitVec v(static_cast<unsigned>(bits.size()));
  for (unsigned i = 0; i < bits.size(); ++i) {
    const char c = bits[bits.size() - 1 - i];
    ESL_CHECK(c == '0' || c == '1', "BitVec::fromBinary: invalid character");
    if (c == '1') v.setBit(i, true);
  }
  return v;
}

BitVec BitVec::ones(unsigned width) {
  BitVec v(width);
  for (auto& w : v.words_) w = ~0ULL;
  v.maskTop();
  return v;
}

BitVec BitVec::oneHot(unsigned width, unsigned pos) {
  BitVec v(width);
  v.setBit(pos, true);
  return v;
}

bool BitVec::bit(unsigned pos) const {
  ESL_CHECK(pos < width_, "BitVec::bit out of range");
  return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1ULL;
}

void BitVec::setBit(unsigned pos, bool value) {
  ESL_CHECK(pos < width_, "BitVec::setBit out of range");
  const std::uint64_t mask = 1ULL << (pos % kWordBits);
  if (value)
    words_[pos / kWordBits] |= mask;
  else
    words_[pos / kWordBits] &= ~mask;
}

std::uint64_t BitVec::toUint64() const { return words_.empty() ? 0 : words_[0]; }

bool BitVec::isZero() const {
  return std::all_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w == 0; });
}

unsigned BitVec::popcount() const {
  unsigned n = 0;
  for (auto w : words_) n += static_cast<unsigned>(std::popcount(w));
  return n;
}

bool BitVec::parity() const { return (popcount() & 1u) != 0; }

BitVec BitVec::slice(unsigned lo, unsigned len) const {
  ESL_CHECK(lo + len <= width_, "BitVec::slice out of range");
  BitVec out(len);
  for (unsigned i = 0; i < len; ++i) out.setBit(i, bit(lo + i));
  return out;
}

BitVec BitVec::concat(const BitVec& high) const {
  BitVec out(width_ + high.width_);
  for (unsigned i = 0; i < width_; ++i) out.setBit(i, bit(i));
  for (unsigned i = 0; i < high.width_; ++i) out.setBit(width_ + i, high.bit(i));
  return out;
}

BitVec BitVec::resized(unsigned width) const {
  BitVec out(width);
  const unsigned n = std::min(width, width_);
  for (unsigned i = 0; i < n; ++i) out.setBit(i, bit(i));
  return out;
}

BitVec BitVec::operator~() const {
  BitVec out(*this);
  for (auto& w : out.words_) w = ~w;
  out.maskTop();
  return out;
}

BitVec BitVec::operator&(const BitVec& rhs) const {
  checkSameWidth(rhs);
  BitVec out(*this);
  for (unsigned i = 0; i < out.words_.size(); ++i) out.words_[i] &= rhs.words_[i];
  return out;
}

BitVec BitVec::operator|(const BitVec& rhs) const {
  checkSameWidth(rhs);
  BitVec out(*this);
  for (unsigned i = 0; i < out.words_.size(); ++i) out.words_[i] |= rhs.words_[i];
  return out;
}

BitVec BitVec::operator^(const BitVec& rhs) const {
  checkSameWidth(rhs);
  BitVec out(*this);
  for (unsigned i = 0; i < out.words_.size(); ++i) out.words_[i] ^= rhs.words_[i];
  return out;
}

BitVec BitVec::operator+(const BitVec& rhs) const {
  checkSameWidth(rhs);
  BitVec out(width_);
  unsigned __int128 carry = 0;
  for (unsigned i = 0; i < out.words_.size(); ++i) {
    const unsigned __int128 s =
        static_cast<unsigned __int128>(words_[i]) + rhs.words_[i] + carry;
    out.words_[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  out.maskTop();
  return out;
}

BitVec BitVec::operator-(const BitVec& rhs) const {
  // a - b = a + ~b + 1 (mod 2^width)
  BitVec notb = ~rhs;
  BitVec one(width_, width_ == 0 ? 0 : 1);
  return *this + notb + one;
}

BitVec BitVec::operator<<(unsigned amount) const {
  BitVec out(width_);
  for (unsigned i = amount; i < width_; ++i) out.setBit(i, bit(i - amount));
  return out;
}

BitVec BitVec::operator>>(unsigned amount) const {
  BitVec out(width_);
  for (unsigned i = 0; i + amount < width_; ++i) out.setBit(i, bit(i + amount));
  return out;
}

bool BitVec::operator==(const BitVec& rhs) const {
  return width_ == rhs.width_ && words_ == rhs.words_;
}

std::strong_ordering BitVec::operator<=>(const BitVec& rhs) const {
  checkSameWidth(rhs);
  for (unsigned i = static_cast<unsigned>(words_.size()); i-- > 0;) {
    if (words_[i] != rhs.words_[i])
      return words_[i] < rhs.words_[i] ? std::strong_ordering::less
                                       : std::strong_ordering::greater;
  }
  return std::strong_ordering::equal;
}

std::string BitVec::toBinary() const {
  std::string s;
  s.reserve(width_);
  for (unsigned i = width_; i-- > 0;) s.push_back(bit(i) ? '1' : '0');
  return s;
}

std::string BitVec::toHex() const {
  static const char* digits = "0123456789abcdef";
  if (width_ == 0) return "0x0";
  std::string s;
  const unsigned nibbles = (width_ + 3) / 4;
  for (unsigned n = nibbles; n-- > 0;) {
    unsigned v = 0;
    for (unsigned b = 0; b < 4; ++b) {
      const unsigned pos = n * 4 + b;
      if (pos < width_ && bit(pos)) v |= 1u << b;
    }
    s.push_back(digits[v]);
  }
  return "0x" + s;
}

std::size_t BitVec::hash() const {
  std::size_t h = 1469598103934665603ULL ^ width_;
  for (auto w : words_) {
    h ^= static_cast<std::size_t>(w);
    h *= 1099511628211ULL;
  }
  return h;
}

void BitVec::maskTop() {
  const unsigned rem = width_ % kWordBits;
  if (rem != 0 && !words_.empty()) words_.back() &= (~0ULL >> (kWordBits - rem));
}

void BitVec::checkSameWidth(const BitVec& rhs) const {
  ESL_CHECK(width_ == rhs.width_, "BitVec width mismatch: " +
                                      std::to_string(width_) + " vs " +
                                      std::to_string(rhs.width_));
}

}  // namespace esl
