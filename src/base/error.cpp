#include "base/error.h"

namespace esl::detail {

void throwInternal(const char* cond, const char* file, int line) {
  throw InternalError(std::string("internal invariant failed: ") + cond + " at " +
                      file + ":" + std::to_string(line));
}

void throwCheck(const std::string& msg, const char* file, int line) {
  throw EslError(msg + " (" + file + ":" + std::to_string(line) + ")");
}

}  // namespace esl::detail
