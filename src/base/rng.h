// Deterministic xorshift64* RNG.
//
// All stochastic machinery in the library (random environments, error
// injection, branch-pattern generation, fuzz tests) draws from this generator
// so every experiment is reproducible from a printed seed.
#pragma once

#include <cstdint>

#include "base/bitvec.h"

namespace esl {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed ? seed : 1) {}

  std::uint64_t next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform in [0, bound); bound > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Bernoulli with probability `permille`/1000.
  bool chancePermille(unsigned permille) { return below(1000) < permille; }

  /// Uniform random BitVec of the given width.
  BitVec bits(unsigned width) {
    BitVec v(width);
    for (unsigned i = 0; i < width; i += 64) {
      const unsigned len = width - i < 64 ? width - i : 64;
      const std::uint64_t w = next();
      for (unsigned b = 0; b < len; ++b) v.setBit(i + b, (w >> b) & 1);
    }
    return v;
  }

  std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_;
};

/// splitmix64 finalizer: stateless pseudo-random 64-bit value from (x, salt).
/// Pure, so TokenSource generators built on it can be re-evaluated safely.
inline std::uint64_t mix64(std::uint64_t x, std::uint64_t salt = 0) {
  std::uint64_t z = x + salt + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix hash: deterministic pseudo-random bit from a value.
/// Used for reproducible branch outcome streams (taken with probability
/// `permille`/1000 as a pure function of `x`).
inline bool hashChancePermille(std::uint64_t x, unsigned permille,
                               std::uint64_t salt = 0) {
  std::uint64_t z = x + salt + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return (z % 1000) < permille;
}

}  // namespace esl
