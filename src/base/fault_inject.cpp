#include "base/fault_inject.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "base/error.h"

namespace esl::fault {

namespace {

struct Point {
  bool armed = false;
  Plan plan;
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex m;
  std::map<std::string, Point> points;
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry();
    // Child processes (the crash smoke's daemon, CLI-level tests) are armed
    // through the environment; in-process tests use arm() directly.
    if (const char* env = std::getenv("ESL_FAULT")) {
      std::string spec(env);
      std::size_t start = 0;
      while (start < spec.size()) {
        std::size_t end = spec.find(';', start);
        if (end == std::string::npos) end = spec.size();
        const std::string item = spec.substr(start, end - start);
        start = end + 1;
        const std::size_t eq = item.find('=');
        const std::size_t at = item.find('@', eq == std::string::npos ? 0 : eq);
        if (eq == std::string::npos || at == std::string::npos) continue;
        Point p;
        p.armed = true;
        const std::string kind = item.substr(eq + 1, at - eq - 1);
        if (kind == "fail")
          p.plan.kind = Kind::kFail;
        else if (kind == "exit")
          p.plan.kind = Kind::kExit;
        else if (kind == "truncate")
          p.plan.kind = Kind::kTruncate;
        else if (kind == "bitflip")
          p.plan.kind = Kind::kBitFlip;
        else
          continue;
        const std::string rest = item.substr(at + 1);
        const std::size_t colon = rest.find(':');
        p.plan.nth = std::strtoull(rest.substr(0, colon).c_str(), nullptr, 10);
        if (colon != std::string::npos)
          p.plan.arg = std::strtoull(rest.substr(colon + 1).c_str(), nullptr, 10);
        if (p.plan.nth == 0) p.plan.nth = 1;
        reg->points[item.substr(0, eq)] = p;
      }
    }
    return reg;
  }();
  return *r;
}

/// Counts the hit; returns the plan when this hit is the armed one.
bool triggered(const std::string& point, Plan& plan) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.m);
  Point& p = r.points[point];
  ++p.hits;
  if (!p.armed || p.hits != p.plan.nth) return false;
  plan = p.plan;
  return true;
}

[[noreturn]] void crash() {
  // The in-process SIGKILL stand-in: no destructors, no atexit, no flush —
  // whatever the fsync discipline made durable is all a restart will see.
  std::_Exit(137);
}

}  // namespace

void arm(const std::string& point, const Plan& plan) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.m);
  Point& p = r.points[point];
  p.armed = true;
  p.plan = plan;
  p.hits = 0;
}

void disarmAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.m);
  r.points.clear();
}

std::uint64_t hits(const std::string& point) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.m);
  const auto it = r.points.find(point);
  return it == r.points.end() ? 0 : it->second.hits;
}

void hitPoint(const std::string& point) {
  Plan plan;
  if (!triggered(point, plan)) return;
  switch (plan.kind) {
    case Kind::kFail:
      throw EslError("injected fault at '" + point + "'");
    case Kind::kExit:
      crash();
    case Kind::kTruncate:
    case Kind::kBitFlip:
      break;  // data kinds are inert on control-flow points
  }
}

void hitData(const std::string& point, std::vector<std::uint8_t>& bytes) {
  Plan plan;
  if (!triggered(point, plan)) return;
  switch (plan.kind) {
    case Kind::kFail:
      throw EslError("injected fault at '" + point + "'");
    case Kind::kExit:
      crash();
    case Kind::kTruncate:
      if (bytes.size() > plan.arg) bytes.resize(static_cast<std::size_t>(plan.arg));
      break;
    case Kind::kBitFlip:
      if (!bytes.empty()) {
        const std::uint64_t bit = plan.arg % (bytes.size() * 8);
        bytes[static_cast<std::size_t>(bit / 8)] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
      }
      break;
  }
}

}  // namespace esl::fault
