// Deterministic fault injection for durability testing.
//
// Production I/O paths declare named fault points ("spool-write",
// "state-file-write", "serve-quantum", ...). A test (or the ESL_FAULT
// environment variable, for child processes the test cannot reach) arms a
// plan against a point: fail the Nth hit, truncate the bytes about to be
// written after K bytes, flip one bit, or exit the process without cleanup —
// the in-process stand-in for SIGKILL at an exact, reproducible boundary.
// Unarmed points cost one mutex acquisition on paths that already do file or
// scheduler work; nothing in a simulation inner loop touches this.
//
// ESL_FAULT grammar (';'-separated, parsed once on first use):
//   point=kind@nth[:arg]
//   e.g. ESL_FAULT="spool-write=fail@2" or "serve-quantum=exit@5"
// Kinds: fail (throw EslError), exit (std::_Exit(137), destructors skipped),
// truncate (keep first arg bytes), bitflip (flip bit arg of the buffer).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace esl::fault {

enum class Kind : std::uint8_t {
  kFail,      ///< hitPoint/hitData throw EslError("injected fault ...")
  kExit,      ///< hitPoint/hitData call std::_Exit(137) — crash, no cleanup
  kTruncate,  ///< hitData truncates the buffer to `arg` bytes
  kBitFlip,   ///< hitData flips bit `arg` (of the whole buffer, LSB-first)
};

struct Plan {
  Kind kind = Kind::kFail;
  std::uint64_t nth = 1;  ///< trigger on the nth hit of the point (1-based)
  std::uint64_t arg = 0;  ///< truncate length / bit index
};

/// Arms `plan` on `point`, replacing any previous plan and resetting the
/// point's hit counter. Thread-safe.
void arm(const std::string& point, const Plan& plan);

/// Disarms every point and clears all hit counters (test teardown).
void disarmAll();

/// Hits this point have occurred (armed or not — counting starts at arm()
/// or at the first hit after disarmAll()).
std::uint64_t hits(const std::string& point);

/// Control-flow fault point: counts a hit; on the armed nth hit, kFail
/// throws and kExit exits. Data kinds are ignored here.
void hitPoint(const std::string& point);

/// Data fault point for a buffer about to be written: counts a hit; on the
/// armed nth hit, kTruncate/kBitFlip mutate `bytes` in place (the write
/// proceeds, producing a torn or bit-rotted artifact), kFail throws,
/// kExit exits.
void hitData(const std::string& point, std::vector<std::uint8_t>& bytes);

}  // namespace esl::fault
