// Work-stealing parallel executor.
//
// A small persistent thread pool for data-parallel loops: parallelFor(n, body)
// splits [0, n) into one contiguous range per lane; each lane consumes its own
// range from the front and, when it runs dry, steals the back half of the
// fullest remaining range. The calling thread participates as lane 0, so an
// Executor(1) runs everything inline with no threading machinery at all.
//
// This is the shared engine behind SimFarm (independent simulations per
// index) and the parallel model checker (one BFS-frontier state per index);
// both need the same thing: an index space, a lane id to select per-thread
// scratch (netlist replicas are not shareable across threads), and
// deterministic by-index result slots so scheduling order never leaks into
// results.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace esl {

class Executor {
 public:
  /// `threads` is the total number of lanes including the calling thread;
  /// 0 means one lane per hardware thread.
  explicit Executor(unsigned threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  unsigned lanes() const { return lanes_; }

  /// Runs body(index, lane) for every index in [0, n). Lane ids are stable in
  /// [0, lanes()); lane 0 is the calling thread. Blocks until every index has
  /// completed. If the body throws, the first exception is rethrown here after
  /// the remaining indices are drained (without running the body on them).
  /// One loop at a time per Executor: not reentrant, and the lane that calls
  /// parallelFor must be the one thread using this Executor.
  void parallelFor(std::size_t n,
                   const std::function<void(std::size_t, unsigned)>& body);

  // --- External task submission ---------------------------------------------
  // The serve daemon's substrate: connection threads (which are NOT pool
  // lanes) enqueue one-off tasks from outside; worker lanes drain them FIFO,
  // interleaved with any parallelFor jobs the owner thread runs. Unlike
  // parallelFor, submit() is thread-safe and non-blocking.

  /// Enqueues `task` to run on a worker lane. Safe to call from any thread,
  /// including from inside a running task (a task may resubmit itself — the
  /// serve scheduler's per-quantum requeue). With a single lane the task runs
  /// inline on the calling thread before submit() returns. If the task
  /// throws, the first exception is captured and rethrown from waitIdle();
  /// later exceptions (before that waitIdle) are dropped.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished (tasks submitted
  /// concurrently with the wait extend it). Rethrows the first captured task
  /// exception, clearing it — the pool stays usable afterwards. Safe from any
  /// thread that is not a pool lane.
  void waitIdle();

 private:
  struct Impl;
  unsigned lanes_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace esl
