#include "base/executor.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "base/error.h"

namespace esl {

namespace {

unsigned resolveLanes(unsigned threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

constexpr std::size_t kNoIndex = ~std::size_t{0};

}  // namespace

struct Executor::Impl {
  // One contiguous slice of the index space. Owners pop from the front;
  // thieves split off the back half, so both ends stay cache-friendly and a
  // range is never fragmented into more pieces than there are lanes.
  struct Range {
    std::mutex m;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  struct Job {
    const std::function<void(std::size_t, unsigned)>* body = nullptr;
    std::vector<std::unique_ptr<Range>> ranges;
    std::size_t n = 0;
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::mutex errorMu;
    std::exception_ptr error;
  };

  explicit Impl(unsigned lanes) {
    threads.reserve(lanes - 1);
    for (unsigned lane = 1; lane < lanes; ++lane)
      threads.emplace_back([this, lane] { threadMain(lane); });
  }

  // Tasks queued after shutdown begins — i.e. without an intervening
  // waitIdle() — are dropped unstarted; completion guarantees come from
  // waitIdle(), not the destructor.
  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(m);
      shutdown = true;
    }
    cv.notify_all();
    for (std::thread& t : threads) t.join();
  }

  void threadMain(unsigned lane) {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] {
          return shutdown || (jobSeq != seen && current) || !tasks.empty();
        });
        if (shutdown) return;
        if (jobSeq != seen && current) {
          seen = jobSeq;
          job = current;  // shared ownership: the job outlives a late waker
        } else {
          task = std::move(tasks.front());
          tasks.pop_front();
          ++tasksActive;
        }
      }
      if (job) {
        work(*job, lane);
      } else {
        runTask(task);
      }
    }
  }

  void runTask(std::function<void()>& task) {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(m);
      if (!taskError) taskError = std::current_exception();
    }
    task = nullptr;  // release captures before reporting idle
    std::lock_guard<std::mutex> lock(m);
    --tasksActive;
    if (tasksActive == 0 && tasks.empty()) idleCv.notify_all();
  }

  void work(Job& job, unsigned lane) {
    Range& own = *job.ranges[lane];
    for (;;) {
      std::size_t idx = kNoIndex;
      {
        std::lock_guard<std::mutex> lock(own.m);
        if (own.begin < own.end) idx = own.begin++;
      }
      if (idx == kNoIndex) {
        if (!steal(job, own)) return;
        continue;
      }
      runOne(job, idx, lane);
    }
  }

  /// Moves the back half of the fullest other range into `own`. Returns false
  /// when every range is empty — this lane's participation is over (indices
  /// still running on other lanes are tracked by job.done, not by us).
  bool steal(Job& job, Range& own) {
    for (;;) {
      Range* best = nullptr;
      std::size_t bestRemaining = 0;
      for (const auto& r : job.ranges) {
        if (r.get() == &own) continue;
        std::lock_guard<std::mutex> lock(r->m);
        const std::size_t remaining = r->end - r->begin;
        if (remaining > bestRemaining) {
          bestRemaining = remaining;
          best = r.get();
        }
      }
      if (best == nullptr) return false;
      std::size_t b = 0, e = 0;
      {
        std::lock_guard<std::mutex> lock(best->m);
        const std::size_t remaining = best->end - best->begin;
        if (remaining == 0) continue;  // lost a race; rescan
        const std::size_t take = (remaining + 1) / 2;
        e = best->end;
        b = e - take;
        best->end = b;
      }
      {
        std::lock_guard<std::mutex> lock(own.m);
        own.begin = b;
        own.end = e;
      }
      return true;
    }
  }

  void runOne(Job& job, std::size_t idx, unsigned lane) {
    if (!job.failed.load(std::memory_order_acquire)) {
      try {
        (*job.body)(idx, lane);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.errorMu);
        if (!job.error) job.error = std::current_exception();
        job.failed.store(true, std::memory_order_release);
      }
    }
    const std::size_t d = job.done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (d == job.n) {
      std::lock_guard<std::mutex> lock(doneMu);
      doneCv.notify_all();
    }
  }

  std::vector<std::thread> threads;
  std::mutex m;
  std::condition_variable cv;
  std::shared_ptr<Job> current;
  std::uint64_t jobSeq = 0;
  bool shutdown = false;
  std::mutex doneMu;
  std::condition_variable doneCv;

  // External task queue (submit/waitIdle), guarded by m.
  std::deque<std::function<void()>> tasks;
  std::size_t tasksActive = 0;
  bool inlineDraining = false;  ///< single-lane mode: a caller owns the queue
  std::exception_ptr taskError;
  std::condition_variable idleCv;
};

Executor::Executor(unsigned threads)
    : lanes_(resolveLanes(threads)), impl_(std::make_unique<Impl>(lanes_)) {}

Executor::~Executor() = default;

void Executor::submit(std::function<void()> task) {
  ESL_CHECK(static_cast<bool>(task), "Executor::submit: task required");
  if (lanes_ == 1) {
    // No worker threads: the caller drains the queue itself (a trampoline,
    // not a recursive inline call) so a single-lane pool stays a working
    // serial scheduling substrate with the same FIFO order, idle accounting
    // and bounded stack as the threaded pool — a task that re-submits itself
    // unboundedly (the serve scheduler's quantum chain) iterates instead of
    // recursing, and waitIdle() cannot slip between a task and its re-submit.
    {
      std::lock_guard<std::mutex> lock(impl_->m);
      impl_->tasks.push_back(std::move(task));
      if (impl_->inlineDraining) return;  // the active drainer will run it
      impl_->inlineDraining = true;
    }
    for (;;) {
      std::function<void()> next;
      {
        std::lock_guard<std::mutex> lock(impl_->m);
        if (impl_->tasks.empty()) {
          impl_->inlineDraining = false;
          impl_->idleCv.notify_all();
          return;
        }
        next = std::move(impl_->tasks.front());
        impl_->tasks.pop_front();
        ++impl_->tasksActive;
      }
      try {
        next();
      } catch (...) {
        std::lock_guard<std::mutex> lock(impl_->m);
        if (!impl_->taskError) impl_->taskError = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(impl_->m);
      --impl_->tasksActive;
    }
  }
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->tasks.push_back(std::move(task));
  }
  // notify_all, not notify_one: the one woken worker may prefer a concurrent
  // parallelFor job and leave the task queued until it finishes.
  impl_->cv.notify_all();
}

void Executor::waitIdle() {
  std::unique_lock<std::mutex> lock(impl_->m);
  impl_->idleCv.wait(lock, [&] {
    return impl_->tasks.empty() && impl_->tasksActive == 0;
  });
  if (impl_->taskError) {
    std::exception_ptr e;
    std::swap(e, impl_->taskError);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void Executor::parallelFor(std::size_t n,
                           const std::function<void(std::size_t, unsigned)>& body) {
  ESL_CHECK(static_cast<bool>(body), "Executor::parallelFor: body required");
  if (n == 0) return;
  if (lanes_ == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }

  auto job = std::make_shared<Impl::Job>();
  job->body = &body;
  job->n = n;
  job->ranges.reserve(lanes_);
  const std::size_t chunk = n / lanes_;
  const std::size_t extra = n % lanes_;
  std::size_t at = 0;
  for (unsigned lane = 0; lane < lanes_; ++lane) {
    auto range = std::make_unique<Impl::Range>();
    range->begin = at;
    at += chunk + (lane < extra ? 1 : 0);
    range->end = at;
    job->ranges.push_back(std::move(range));
  }

  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->current = job;
    ++impl_->jobSeq;
  }
  impl_->cv.notify_all();

  impl_->work(*job, 0);  // the calling thread is lane 0

  {
    std::unique_lock<std::mutex> lock(impl_->doneMu);
    impl_->doneCv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == n;
    });
  }
  {
    // Unpublish so a late-waking worker drains an empty job instead of
    // touching the caller's (now dead) loop body on the next spurious wake.
    std::lock_guard<std::mutex> lock(impl_->m);
    if (impl_->current == job) impl_->current.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace esl
