// Error types used across the elastic-systems library.
//
// Configuration/usage errors throw; internal invariant violations are funneled
// through EslError subclasses as well so tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace esl {

/// Root of the library's exception hierarchy.
class EslError : public std::runtime_error {
 public:
  explicit EslError(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed netlist / node configuration (bad port arity, dangling channel...).
class NetlistError : public EslError {
 public:
  explicit NetlistError(const std::string& what) : EslError(what) {}
};

/// The combinational network did not stabilize (combinational cycle in control).
class CombinationalCycleError : public EslError {
 public:
  explicit CombinationalCycleError(const std::string& what) : EslError(what) {}
};

/// SELF protocol violation observed during simulation (kill & stop overlap, ...).
class ProtocolError : public EslError {
 public:
  explicit ProtocolError(const std::string& what) : EslError(what) {}
};

/// Transformation precondition failed (e.g. Shannon on a non-mux node).
class TransformError : public EslError {
 public:
  explicit TransformError(const std::string& what) : EslError(what) {}
};

/// Internal invariant violation; indicates a library bug, not a user error.
class InternalError : public EslError {
 public:
  explicit InternalError(const std::string& what) : EslError(what) {}
};

/// Syntax error in a textual `.esl` netlist (src/frontend); the message
/// carries file name and line number.
class ParseError : public EslError {
 public:
  explicit ParseError(const std::string& what) : EslError(what) {}
};

namespace detail {
[[noreturn]] void throwInternal(const char* cond, const char* file, int line);
[[noreturn]] void throwCheck(const std::string& msg, const char* file, int line);
}  // namespace detail

}  // namespace esl

/// Internal invariant; throws InternalError so the condition is testable.
#define ESL_ASSERT(cond)                                          \
  do {                                                            \
    if (!(cond)) ::esl::detail::throwInternal(#cond, __FILE__, __LINE__); \
  } while (false)

/// User-facing precondition with message.
#define ESL_CHECK(cond, msg)                                      \
  do {                                                            \
    if (!(cond)) ::esl::detail::throwCheck((msg), __FILE__, __LINE__); \
  } while (false)
