// Analytic throughput bound: minimum cycle ratio tokens/latency.
//
// Treating the elastic netlist as a marked graph (every node contributes
// token-flow edges, Node::flowEdges), the sustainable throughput of the
// system is bounded by min over directed cycles of
//     (initial tokens on the cycle) / (registered latency on the cycle).
// Bubble insertion (paper §2/Fig. 1b) shows up directly: adding an empty EB
// to a loop with one token drops the bound from 1 to 1/2. For speculative
// systems the bound assumes perfect prediction; the simulator reports the
// achieved value.
#pragma once

#include "elastic/netlist.h"

namespace esl::perf {

struct ThroughputBound {
  bool hasCycles = false;     ///< any directed cycle with latency
  double bound = 1.0;         ///< min cycle ratio, clamped to [0, 1]
  bool zeroLatencyCycle = false;  ///< combinational loop (no EB on a cycle)
};

ThroughputBound throughputBound(const Netlist& nl);

/// Effective cycle time: timing cycle time divided by throughput — the
/// figure of merit the paper optimizes ("average case").
inline double effectiveCycleTime(double cycleTime, double throughput) {
  return throughput > 0.0 ? cycleTime / throughput : 0.0;
}

}  // namespace esl::perf
