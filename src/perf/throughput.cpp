#include "perf/throughput.h"

#include <cmath>

namespace esl::perf {

namespace {

struct Edge {
  std::size_t from;
  std::size_t to;
  double tokens;
  double latency;
};

/// Bellman-Ford negative-cycle detection with weights tokens - lambda*latency.
bool hasNegativeCycle(const std::vector<Edge>& edges, std::size_t n, double lambda) {
  std::vector<double> dist(n, 0.0);
  for (std::size_t iter = 0; iter < n; ++iter) {
    bool changed = false;
    for (const Edge& e : edges) {
      const double w = e.tokens - lambda * e.latency;
      if (dist[e.from] + w < dist[e.to] - 1e-12) {
        dist[e.to] = dist[e.from] + w;
        changed = true;
      }
    }
    if (!changed) return false;
  }
  return true;
}

}  // namespace

ThroughputBound throughputBound(const Netlist& nl) {
  // Vertices are channels; edges are through-node token flows.
  std::vector<Node::FlowEdge> flows;
  for (const NodeId id : nl.nodeIds()) nl.node(id).flowEdges(flows);

  const std::size_t n = nl.channelCapacity();
  std::vector<Edge> edges;
  edges.reserve(flows.size());
  for (const Node::FlowEdge& f : flows)
    edges.push_back({f.from, f.to, f.tokens, f.latency});

  ThroughputBound result;
  // A cycle with zero latency and zero tokens is a combinational loop;
  // detect it as a negative cycle for weights -epsilon per edge.
  {
    std::vector<Edge> probe = edges;
    for (Edge& e : probe)
      if (e.latency == 0.0 && e.tokens == 0.0) e.tokens = -1e-6;
    result.zeroLatencyCycle = hasNegativeCycle(probe, n, 0.0);
  }

  // Any cycle at all? For lambda slightly above 1 every latency edge turns
  // negative, so a negative cycle exists iff some cycle has latency.
  result.hasCycles = hasNegativeCycle(edges, n, 1.0 + 1e-6) ||
                     hasNegativeCycle(edges, n, 2.0);
  if (!result.hasCycles) {
    result.bound = 1.0;  // pipelines without feedback sustain full rate
    return result;
  }

  // Binary search the largest lambda with no negative cycle.
  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (hasNegativeCycle(edges, n, mid))
      hi = mid;
    else
      lo = mid;
  }
  result.bound = lo;
  return result;
}

}  // namespace esl::perf
