#include "perf/area.h"

#include <iomanip>
#include <sstream>

namespace esl::perf {

AreaReport areaReport(const Netlist& nl) {
  AreaReport report;
  for (const NodeId id : nl.nodeIds()) {
    const Node& n = nl.node(id);
    const double a = n.cost().area;
    report.total += a;
    report.byKind[n.kindName()] += a;
    report.byNode[n.name()] += a;
  }
  return report;
}

std::string renderAreaReport(const AreaReport& report) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  for (const auto& [kind, area] : report.byKind)
    os << "  " << std::left << std::setw(14) << kind << std::right << std::setw(10)
       << area << "\n";
  os << "  " << std::left << std::setw(14) << "total" << std::right << std::setw(10)
     << report.total << "\n";
  return os.str();
}

}  // namespace esl::perf
