// Static timing analysis over the elastic netlist.
//
// Every channel has two timing nets — forward (valid/data) and backward
// (stop/anti-token) — and every node contributes combinational arcs between
// nets plus launch points for registered outputs (Node::timing). The cycle
// time is the longest settled path; because control arcs are included, the
// analysis sees the paper's control-critical paths: F_err gating the stalling
// VLU's controller (§5.1) and chains of zero-backward-latency EBs (§4.3).
#pragma once

#include <string>
#include <vector>

#include "elastic/netlist.h"

namespace esl::perf {

struct TimingReport {
  double cycleTime = 0.0;
  /// Arrival time per net; index = channel id * 2 + (kind == kBwd).
  std::vector<double> arrival;
  /// Nets on the critical path, endpoint last.
  std::vector<TimingRef> criticalPath;

  double arrivalOf(TimingRef ref) const {
    return arrival.at(ref.ch * 2 + (ref.kind == NetKind::kBwd ? 1 : 0));
  }
};

/// Longest-path analysis; throws CombinationalCycleError if the collected
/// arcs form a cycle (a true combinational loop through control).
TimingReport analyzeTiming(const Netlist& nl);

/// Human-readable critical path (channel names + net kinds).
std::string describeCriticalPath(const Netlist& nl, const TimingReport& report);

}  // namespace esl::perf
