// Area accounting (NAND2-equivalent units, see logic/cost.h).
#pragma once

#include <map>
#include <string>

#include "elastic/netlist.h"

namespace esl::perf {

struct AreaReport {
  double total = 0.0;
  std::map<std::string, double> byKind;  ///< node kind -> area
  std::map<std::string, double> byNode;  ///< node name -> area
};

AreaReport areaReport(const Netlist& nl);

/// Formatted area table for bench output.
std::string renderAreaReport(const AreaReport& report);

}  // namespace esl::perf
