#include "perf/timing.h"

#include <algorithm>
#include <sstream>

namespace esl::perf {

namespace {
std::size_t netIndex(TimingRef ref) {
  return static_cast<std::size_t>(ref.ch) * 2 + (ref.kind == NetKind::kBwd ? 1 : 0);
}
}  // namespace

TimingReport analyzeTiming(const Netlist& nl) {
  TimingModel model;
  for (const NodeId id : nl.nodeIds()) nl.node(id).timing(model);

  const std::size_t nets = nl.channelCapacity() * 2;
  TimingReport report;
  report.arrival.assign(nets, 0.0);
  std::vector<int> pred(nets, -1);

  for (const TimingLaunch& l : model.launches) {
    const std::size_t i = netIndex(l.at);
    report.arrival[i] = std::max(report.arrival[i], l.delay);
  }

  // Kahn topological order over the arc graph.
  std::vector<std::vector<std::size_t>> arcsFrom(nets);
  std::vector<unsigned> indeg(nets, 0);
  for (std::size_t a = 0; a < model.arcs.size(); ++a) {
    arcsFrom[netIndex(model.arcs[a].from)].push_back(a);
    ++indeg[netIndex(model.arcs[a].to)];
  }
  std::vector<std::size_t> ready;
  for (std::size_t n = 0; n < nets; ++n)
    if (indeg[n] == 0) ready.push_back(n);

  std::size_t visited = 0;
  while (!ready.empty()) {
    const std::size_t n = ready.back();
    ready.pop_back();
    ++visited;
    for (const std::size_t a : arcsFrom[n]) {
      const TimingArc& arc = model.arcs[a];
      const std::size_t to = netIndex(arc.to);
      const double t = report.arrival[n] + arc.delay;
      if (t > report.arrival[to]) {
        report.arrival[to] = t;
        pred[to] = static_cast<int>(n);
      }
      if (--indeg[to] == 0) ready.push_back(to);
    }
  }
  if (visited != nets)
    throw CombinationalCycleError(
        "timing graph has a combinational cycle (" +
        std::to_string(nets - visited) + " nets unresolved)");

  // Critical endpoint + path reconstruction. Internal capture paths extend
  // the cycle beyond the net arrival itself.
  std::size_t end = 0;
  for (std::size_t n = 1; n < nets; ++n)
    if (report.arrival[n] > report.arrival[end]) end = n;
  report.cycleTime = report.arrival[end];
  for (const TimingCapture& cap : model.captures) {
    const std::size_t at = netIndex(cap.at);
    if (report.arrival[at] + cap.delay > report.cycleTime) {
      report.cycleTime = report.arrival[at] + cap.delay;
      end = at;
    }
  }

  std::vector<TimingRef> path;
  for (int n = static_cast<int>(end); n >= 0; n = pred[n]) {
    path.push_back({static_cast<ChannelId>(n / 2),
                    (n % 2) != 0 ? NetKind::kBwd : NetKind::kFwd});
    if (pred[n] < 0) break;
  }
  std::reverse(path.begin(), path.end());
  report.criticalPath = std::move(path);
  return report;
}

std::string describeCriticalPath(const Netlist& nl, const TimingReport& report) {
  std::ostringstream os;
  for (std::size_t i = 0; i < report.criticalPath.size(); ++i) {
    const TimingRef ref = report.criticalPath[i];
    if (i != 0) os << " -> ";
    if (nl.hasChannel(ref.ch))
      os << nl.channel(ref.ch).name;
    else
      os << "ch" << ref.ch;
    os << (ref.kind == NetKind::kBwd ? "[bwd]" : "[fwd]");
  }
  os << " @ " << report.cycleTime;
  return os.str();
}

}  // namespace esl::perf
