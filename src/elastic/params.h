// Params: the ordered `key=value` attribute list of the netlist IR.
//
// Every data-constructible node kind of the `.esl` format (src/frontend) is
// parameterized by one of these lists: a registry factory reads typed values
// out of it, and the verbatim entries are stored on the constructed Node so
// printing a netlist reproduces exactly the attributes it was built from
// (the print -> parse -> print fixpoint needs no canonicalization pass).
//
// Values are whitespace-free tokens. Numbers accept decimal or 0x-hex;
// lists are comma-separated; BitVec payloads are 0x-hex sized by the
// context's width. Reads are tracked so a factory can reject attributes it
// never consumed (typos fail loudly instead of being ignored).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/bitvec.h"

namespace esl {

class Params {
 public:
  using Entry = std::pair<std::string, std::string>;

  Params() = default;
  Params(std::initializer_list<Entry> kv) : kv_(kv) {}

  // --- building (used by the C++ netlist builders and the parser) -----------

  /// Appends, or overwrites an existing key in place.
  Params& set(const std::string& key, std::string value);
  Params& setU64(const std::string& key, std::uint64_t v);
  Params& setI64(const std::string& key, std::int64_t v);
  Params& setReal(const std::string& key, double v);
  Params& setBits(const std::string& key, const BitVec& v);
  Params& setU64List(const std::string& key, const std::vector<std::uint64_t>& v);
  Params& setBitsList(const std::string& key, const std::vector<BitVec>& v);

  // --- typed reads (registry factories) -------------------------------------
  //
  // The no-default forms throw NetlistError naming the missing key; every
  // read marks the key consumed for checkConsumed().

  bool has(const std::string& key) const;
  std::string str(const std::string& key) const;
  std::string str(const std::string& key, const std::string& fallback) const;
  std::uint64_t u64(const std::string& key) const;
  std::uint64_t u64(const std::string& key, std::uint64_t fallback) const;
  std::int64_t i64(const std::string& key, std::int64_t fallback) const;
  double real(const std::string& key, double fallback) const;
  /// 0x-hex or decimal, zero-extended/checked against `width` bits.
  BitVec bits(const std::string& key, unsigned width) const;
  std::vector<std::uint64_t> u64List(const std::string& key) const;
  std::vector<BitVec> bitsList(const std::string& key, unsigned width) const;

  /// Raw comma-split of a value ("" -> empty list).
  static std::vector<std::string> splitList(const std::string& value);

  /// Throws NetlistError listing any key never read since construction —
  /// called by the registry after a factory ran, so unknown attributes in a
  /// `.esl` file are an error, not silence.
  void checkConsumed(const std::string& context) const;
  /// Marks every `prefix`-prefixed key consumed (for factories that forward
  /// a whole sub-namespace, e.g. `fn.*`, to another component).
  void consumePrefix(const std::string& prefix) const;

  const std::vector<Entry>& entries() const { return kv_; }
  bool empty() const { return kv_.empty(); }

 private:
  const std::string* find(const std::string& key) const;

  std::vector<Entry> kv_;
  mutable std::vector<bool> read_;  ///< parallel to kv_
};

/// Parses decimal or 0x-hex; throws NetlistError naming `what` on garbage.
std::uint64_t parseU64(const std::string& text, const std::string& what);
std::int64_t parseI64(const std::string& text, const std::string& what);
double parseReal(const std::string& text, const std::string& what);
BitVec parseBits(const std::string& text, unsigned width, const std::string& what);

/// Shortest-round-trip serialization (parseReal(realToken(x)) == x).
std::string realToken(double v);

}  // namespace esl
