#include "elastic/registry.h"

#include <unordered_map>

#include "base/rng.h"
#include "elastic/buffer.h"
#include "elastic/eemux.h"
#include "elastic/fork.h"
#include "elastic/shared.h"

namespace esl {

namespace {

std::vector<unsigned> toWidths(const std::vector<std::uint64_t>& v) {
  std::vector<unsigned> w;
  w.reserve(v.size());
  for (const std::uint64_t x : v) w.push_back(static_cast<unsigned>(x));
  return w;
}

/// "delay,area" cost pair attribute.
logic::Cost costPair(const Params& p, const std::string& key, logic::Cost fallback) {
  const std::string v = p.str(key, "");
  if (v.empty()) return fallback;
  const auto items = Params::splitList(v);
  if (items.size() != 2)
    throw NetlistError("attribute '" + key + "': expected delay,area");
  return {parseReal(items[0], key), parseReal(items[1], key)};
}

std::string costToken(logic::Cost c) {
  return realToken(c.delay) + "," + realToken(c.area);
}

void addPrefixed(Params& dst, const std::string& key, const Params& src) {
  for (const auto& [k, v] : src.entries()) dst.set(key + "." + k, v);
}

bool endsWithPortRef(const std::string& name, const std::string& tag) {
  const std::size_t at = name.rfind(tag);
  if (at == std::string::npos || at + tag.size() >= name.size()) return false;
  for (std::size_t i = at + tag.size(); i < name.size(); ++i)
    if (name[i] < '0' || name[i] > '9') return false;
  return true;
}

// --- core named functions ---------------------------------------------------

void requireUnary(const FnSig& sig, const std::string& what, bool sameWidth = true) {
  if (sig.inWidths.size() != 1)
    throw NetlistError(what + ": expects exactly one input");
  if (sameWidth && sig.inWidths[0] != sig.outWidth)
    throw NetlistError(what + ": input/output width mismatch");
}

void registerCoreFns(Registry& r) {
  r.addFn("id", [](const FnSig& sig, const Params&, const std::string&) -> CombFn {
    requireUnary(sig, "fn id");
    return [](const std::vector<BitVec>& in) { return in[0]; };
  });
  r.addFn("addk", [](const FnSig& sig, const Params& p,
                     const std::string& pfx) -> CombFn {
    requireUnary(sig, "fn addk");
    // k is a plain integer truncated to the datapath width (synth stages
    // store full 64-bit salted constants), unlike `init=` payloads which
    // must fit their channel exactly.
    const BitVec k(sig.outWidth, p.u64(pfx + "k"));
    return [k](const std::vector<BitVec>& in) { return in[0] + k; };
  });
  r.addFn("gray", [](const FnSig& sig, const Params&, const std::string&) -> CombFn {
    requireUnary(sig, "fn gray");
    return [](const std::vector<BitVec>& in) { return in[0] ^ (in[0] >> 1); };
  });
  r.addFn("permille", [](const FnSig& sig, const Params& p,
                         const std::string& pfx) -> CombFn {
    requireUnary(sig, "fn permille", /*sameWidth=*/false);
    if (sig.outWidth != 1) throw NetlistError("fn permille: output must be 1 bit");
    const unsigned permille = static_cast<unsigned>(p.u64(pfx + "permille"));
    const std::uint64_t salt = p.u64(pfx + "salt", 0);
    return [permille, salt](const std::vector<BitVec>& in) {
      return BitVec(1, hashChancePermille(in[0].toUint64(), permille, salt) ? 1 : 0);
    };
  });
  r.addFn("xor", [](const FnSig& sig, const Params&, const std::string&) -> CombFn {
    if (sig.inWidths.empty()) throw NetlistError("fn xor: needs inputs");
    for (const unsigned w : sig.inWidths)
      if (w != sig.outWidth) throw NetlistError("fn xor: width mismatch");
    return [](const std::vector<BitVec>& in) {
      BitVec acc = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) acc = acc ^ in[i];
      return acc;
    };
  });
  r.addFn("add", [](const FnSig& sig, const Params&, const std::string&) -> CombFn {
    if (sig.inWidths.size() != 2 || sig.inWidths[0] != sig.outWidth ||
        sig.inWidths[1] != sig.outWidth)
      throw NetlistError("fn add: expects two inputs of the output width");
    return [](const std::vector<BitVec>& in) { return in[0] + in[1]; };
  });
  r.addFn("concat", [](const FnSig& sig, const Params&, const std::string&) -> CombFn {
    if (sig.inWidths.size() != 2 ||
        sig.inWidths[0] + sig.inWidths[1] != sig.outWidth)
      throw NetlistError("fn concat: output width must be the sum of the inputs");
    return [](const std::vector<BitVec>& in) { return in[0].concat(in[1]); };
  });
  // Conventional join multiplexer: input 0 selects among inputs 1..n.
  r.addFn("joinmux", [](const FnSig& sig, const Params&, const std::string&) -> CombFn {
    if (sig.inWidths.size() < 3)
      throw NetlistError("fn joinmux: needs a select and >=2 data inputs");
    const std::uint64_t dataInputs = sig.inWidths.size() - 1;
    for (std::size_t i = 1; i < sig.inWidths.size(); ++i)
      if (sig.inWidths[i] != sig.outWidth)
        throw NetlistError("fn joinmux: data width mismatch");
    return [dataInputs](const std::vector<BitVec>& in) {
      const std::uint64_t sel = in[0].toUint64();
      ESL_CHECK(sel < dataInputs, "join mux: select out of range");
      return in[1 + sel];
    };
  });
}

// --- core generators / gates / schedulers -----------------------------------

void registerCoreGensGates(Registry& r) {
  r.addGen("counting",
           [](unsigned width, const Params& p, const std::string& pfx) {
             return TokenSource::counting(width, p.u64(pfx + "base", 0));
           });
  r.addGen("list", [](unsigned width, const Params& p, const std::string& pfx) {
    return TokenSource::listOf(p.u64List(pfx + "values"), width);
  });
  r.addGen("hash", [](unsigned width, const Params& p, const std::string& pfx) {
    const std::uint64_t salt = p.u64(pfx + "salt", 0);
    return [width, salt](std::uint64_t i) -> std::optional<BitVec> {
      return BitVec(width, mix64(i, salt));
    };
  });

  // The next token may first be offered on cycles == phase (mod period).
  r.addGate("period", [](const Params& p, const std::string& pfx) {
    const std::uint64_t period = p.u64(pfx + "period");
    const std::uint64_t phase = p.u64(pfx + "phase", 0);
    if (period <= 1) return TokenSource::Gate{};
    return TokenSource::Gate{
        [period, phase](std::uint64_t c) { return (c + phase) % period == 0; }};
  });
}

void registerCoreScheds(Registry& r) {
  r.addSched("static", [](unsigned k, const Params& p, const std::string& pfx) {
    return std::make_unique<sched::StaticScheduler>(
        k, static_cast<unsigned>(p.u64(pfx + "pick", 0)));
  });
  r.addSched("rr", [](unsigned k, const Params&, const std::string&) {
    return std::make_unique<sched::RoundRobinScheduler>(k);
  });
  r.addSched("last", [](unsigned k, const Params&, const std::string&) {
    return std::make_unique<sched::LastServedScheduler>(k);
  });
  r.addSched("2bit", [](unsigned k, const Params&, const std::string&)
                 -> std::unique_ptr<sched::Scheduler> {
    if (k != 2) throw NetlistError("sched 2bit: arbitrates exactly 2 channels");
    return std::make_unique<sched::TwoBitScheduler>();
  });
  r.addSched("timeout", [](unsigned k, const Params& p, const std::string& pfx) {
    return std::make_unique<sched::TimeoutScheduler>(
        k, static_cast<unsigned>(p.u64(pfx + "timeout", 1)));
  });
  r.addSched("bounded-fair", [](unsigned k, const Params& p, const std::string& pfx) {
    return std::make_unique<sched::BoundedFairScheduler>(
        k, static_cast<unsigned>(p.u64(pfx + "defer", 1)));
  });
  r.addSched("starving", [](unsigned k, const Params&, const std::string&) {
    return std::make_unique<sched::StarvingScheduler>(k);
  });
}

// --- core node kinds --------------------------------------------------------

void registerCoreKinds(Registry& r) {
  r.addKind(
      "eb",
      [](Netlist& nl, const std::string& name, const Params& p) -> Node& {
        const unsigned width = static_cast<unsigned>(p.u64("width"));
        return nl.make<ElasticBuffer>(
            name, width, static_cast<unsigned>(p.u64("cap", 2)),
            p.bitsList("init", width), static_cast<unsigned>(p.u64("acap", 2)),
            static_cast<int>(p.i64("ainit", 0)));
      },
      [](const Node& n) {
        const auto& eb = static_cast<const ElasticBuffer&>(n);
        Params p;
        p.setU64("width", eb.width());
        if (eb.capacity() != 2) p.setU64("cap", eb.capacity());
        if (!eb.initTokens().empty()) p.setBitsList("init", eb.initTokens());
        if (eb.antiCapacity() != 2) p.setU64("acap", eb.antiCapacity());
        if (eb.initAntiTokens() != 0) p.setI64("ainit", eb.initAntiTokens());
        return p;
      });

  r.addKind(
      "eb0",
      [](Netlist& nl, const std::string& name, const Params& p) -> Node& {
        const unsigned width = static_cast<unsigned>(p.u64("width"));
        std::optional<BitVec> init;
        if (p.has("init")) init = p.bits("init", width);
        return nl.make<ElasticBuffer0>(name, width, init);
      },
      [](const Node& n) {
        const auto& eb = static_cast<const ElasticBuffer0&>(n);
        Params p;
        p.setU64("width", eb.width());
        if (eb.initToken()) p.setBits("init", *eb.initToken());
        return p;
      });

  r.addKind(
      "broken-eb",
      [](Netlist& nl, const std::string& name, const Params& p) -> Node& {
        return nl.make<BrokenBuffer>(name, static_cast<unsigned>(p.u64("width")));
      },
      [](const Node& n) {
        Params p;
        p.setU64("width", n.inputWidth(0));
        return p;
      });

  r.addKind(
      "fork",
      [](Netlist& nl, const std::string& name, const Params& p) -> Node& {
        return nl.make<ForkNode>(name, static_cast<unsigned>(p.u64("width")),
                                 static_cast<unsigned>(p.u64("branches")));
      },
      [](const Node& n) {
        Params p;
        p.setU64("width", n.inputWidth(0));
        p.setU64("branches", static_cast<const ForkNode&>(n).branches());
        return p;
      });

  r.addKind(
      "ee-mux",
      [](Netlist& nl, const std::string& name, const Params& p) -> Node& {
        return nl.make<EarlyEvalMux>(name, static_cast<unsigned>(p.u64("n")),
                                     static_cast<unsigned>(p.u64("selw", 1)),
                                     static_cast<unsigned>(p.u64("width")));
      },
      [](const Node& n) {
        const auto& mux = static_cast<const EarlyEvalMux&>(n);
        Params p;
        p.setU64("n", mux.dataInputs());
        if (n.inputWidth(0) != 1) p.setU64("selw", n.inputWidth(0));
        p.setU64("width", n.outputWidth(0));
        return p;
      });

  r.addKind(
      "func",
      [&r](Netlist& nl, const std::string& name, const Params& p) -> Node& {
        FnSig sig;
        sig.inWidths = toWidths(p.u64List("in"));
        sig.outWidth = static_cast<unsigned>(p.u64("out"));
        if (sig.inWidths.empty())
          throw NetlistError("func '" + name + "': needs at least one input");
        CombFn fn = r.makeFn(sig, p, "fn");
        auto& f = nl.make<FuncNode>(
            name, sig.inWidths, sig.outWidth, std::move(fn),
            logic::Cost{p.real("delay", 1.0), p.real("area", 1.0)});
        const std::string role = p.str("role", "");
        if (!role.empty()) f.setRole(role);
        return f;
      },
      [](const Node& n) {
        // Raw lambda FuncNodes are opaque — except the join mux, whose
        // behaviour is fully determined by its role tag and port widths
        // (transforms create them via makeJoinMux without attributes).
        const auto& f = static_cast<const FuncNode&>(n);
        if (f.role() != "mux")
          throw NetlistError("func '" + n.name() +
                             "': built from a raw C++ lambda; construct via "
                             "makeFuncNode/the registry to serialize it");
        Params p;
        std::vector<std::uint64_t> in;
        for (unsigned i = 0; i < n.numInputs(); ++i) in.push_back(n.inputWidth(i));
        p.setU64List("in", in);
        p.setU64("out", n.outputWidth(0));
        p.set("fn", "joinmux");
        p.setReal("delay", f.datapathCost().delay);
        p.setReal("area", f.datapathCost().area);
        p.set("role", "mux");
        return p;
      });

  r.addKind(
      "source",
      [&r](Netlist& nl, const std::string& name, const Params& p) -> Node& {
        const unsigned width = static_cast<unsigned>(p.u64("width"));
        return nl.make<TokenSource>(name, width, r.makeGen(width, p, "gen"),
                                    r.makeGate(p, "gate"));
      });

  r.addKind(
      "sink",
      [&r](Netlist& nl, const std::string& name, const Params& p) -> Node& {
        return nl.make<TokenSink>(name, static_cast<unsigned>(p.u64("width")),
                                  r.makeGate(p, "ready"),
                                  static_cast<unsigned>(p.u64("anti", 0)),
                                  r.makeGate(p, "antigate"));
      },
      [](const Node& n) {
        const auto& sink = static_cast<const TokenSink&>(n);
        if (sink.hasGates())
          throw NetlistError("sink '" + n.name() +
                             "': gate closures are opaque; construct via the "
                             "registry to serialize them");
        Params p;
        p.setU64("width", n.inputWidth(0));
        if (sink.antiBudget() != 0) p.setU64("anti", sink.antiBudget());
        return p;
      });

  r.addKind(
      "nondet-source",
      [](Netlist& nl, const std::string& name, const Params& p) -> Node& {
        return nl.make<NondetSource>(name, static_cast<unsigned>(p.u64("width")),
                                     static_cast<unsigned>(p.u64("killcap", 2)),
                                     static_cast<unsigned>(p.u64("databits", 0)),
                                     static_cast<unsigned>(p.u64("maxidle", 2)));
      },
      [](const Node& n) {
        const auto& src = static_cast<const NondetSource&>(n);
        Params p;
        p.setU64("width", src.width());
        if (src.killCreditCap() != 2) p.setU64("killcap", src.killCreditCap());
        if (src.dataBits() != 0) p.setU64("databits", src.dataBits());
        if (src.maxIdle() != 2) p.setU64("maxidle", src.maxIdle());
        return p;
      });

  r.addKind(
      "nondet-sink",
      [](Netlist& nl, const std::string& name, const Params& p) -> Node& {
        return nl.make<NondetSink>(name, static_cast<unsigned>(p.u64("width")),
                                   static_cast<unsigned>(p.u64("maxstops", 2)),
                                   p.u64("anti", 0) != 0);
      },
      [](const Node& n) {
        const auto& sink = static_cast<const NondetSink&>(n);
        Params p;
        p.setU64("width", sink.width());
        if (sink.maxConsecutiveStops() != 2)
          p.setU64("maxstops", sink.maxConsecutiveStops());
        if (sink.emitsAntiTokens()) p.setU64("anti", 1);
        return p;
      });

  r.addKind(
      "shared",
      [&r](Netlist& nl, const std::string& name, const Params& p) -> Node& {
        const unsigned k = static_cast<unsigned>(p.u64("k"));
        const unsigned inW = static_cast<unsigned>(p.u64("in"));
        const unsigned outW = static_cast<unsigned>(p.u64("out"));
        return nl.make<SharedModule>(
            name, k, inW, outW, unaryAdapter(r.makeFn({{inW}, outW}, p, "fn")),
            r.makeSched(k, p, "sched"),
            logic::Cost{p.real("delay", 1.0), p.real("area", 1.0)});
      });

  r.addKind(
      "stalling-vlu",
      [&r](Netlist& nl, const std::string& name, const Params& p) -> Node& {
        const unsigned inW = static_cast<unsigned>(p.u64("in"));
        const unsigned outW = static_cast<unsigned>(p.u64("out"));
        return nl.make<StallingVLU>(
            name, inW, outW, unaryAdapter(r.makeFn({{inW}, outW}, p, "exact")),
            [err = unaryAdapter(r.makeFn({{inW}, 1}, p, "err"))](
                const BitVec& x) mutable { return err(x).bit(0); },
            costPair(p, "acost", {1.0, 1.0}), costPair(p, "ecost", {1.0, 1.0}),
            costPair(p, "rcost", {1.0, 1.0}));
      });
}

}  // namespace

std::function<BitVec(const BitVec&)> unaryAdapter(CombFn fn) {
  return [fn = std::move(fn),
          args = std::vector<BitVec>(1)](const BitVec& x) mutable {
    args[0] = x;
    return fn(args);
  };
}

Registry::Registry() {
  registerCoreFns(*this);
  registerCoreGensGates(*this);
  registerCoreScheds(*this);
  registerCoreKinds(*this);
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::addKind(const std::string& kind, NodeFactory factory,
                       NodeDescriber describer) {
  ESL_CHECK(kinds_.emplace(kind, Kind{std::move(factory), std::move(describer)}).second,
            "Registry: duplicate node kind '" + kind + "'");
}

void Registry::addFn(const std::string& name, FnFactory factory) {
  ESL_CHECK(fns_.emplace(name, std::move(factory)).second,
            "Registry: duplicate fn '" + name + "'");
}

void Registry::addGen(const std::string& name, GenFactory factory) {
  ESL_CHECK(gens_.emplace(name, std::move(factory)).second,
            "Registry: duplicate gen '" + name + "'");
}

void Registry::addGate(const std::string& name, GateFactory factory) {
  ESL_CHECK(gates_.emplace(name, std::move(factory)).second,
            "Registry: duplicate gate '" + name + "'");
}

void Registry::addSched(const std::string& name, SchedFactory factory) {
  ESL_CHECK(scheds_.emplace(name, std::move(factory)).second,
            "Registry: duplicate sched '" + name + "'");
}

bool Registry::hasKind(const std::string& kind) const {
  return kinds_.count(kind) != 0;
}

std::vector<std::string> Registry::kindNames() const {
  std::vector<std::string> names;
  for (const auto& [k, v] : kinds_) names.push_back(k);
  return names;
}

Node& Registry::makeNode(Netlist& nl, const NodeSpec& spec) const {
  validateIrName(spec.name, "node name");
  const auto it = kinds_.find(spec.kind);
  if (it == kinds_.end())
    throw NetlistError("unknown node kind '" + spec.kind + "' for node '" +
                       spec.name + "'");
  // The factory runs against a private copy: Params tracks reads through
  // mutable state for checkConsumed(), and one spec may be built from many
  // threads at once (SimFarm::specRecipe, parallel checker lanes).
  const Params params = spec.params;
  Node& n = it->second.factory(nl, spec.name, params);
  params.checkConsumed("node '" + spec.name + "' (" + spec.kind + ")");
  n.setBuildParams(spec.params);
  return n;
}

NodeSpec Registry::describeNode(const Node& node) const {
  NodeSpec spec;
  spec.kind = node.kindName();
  spec.name = node.name();
  if (node.hasBuildParams()) {
    spec.params = node.buildParams();
    return spec;
  }
  const auto it = kinds_.find(spec.kind);
  if (it == kinds_.end() || !it->second.describer)
    throw NetlistError("node '" + node.name() + "' of kind '" + spec.kind +
                       "' is not serializable (no attributes, no describer)");
  spec.params = it->second.describer(node);
  return spec;
}

CombFn Registry::makeFn(const FnSig& sig, const Params& p,
                        const std::string& key) const {
  const std::string name = p.str(key);
  const auto it = fns_.find(name);
  if (it == fns_.end()) throw NetlistError("unknown fn '" + name + "'");
  return it->second(sig, p, key + ".");
}

TokenSource::Generator Registry::makeGen(unsigned width, const Params& p,
                                         const std::string& key) const {
  const std::string name = p.str(key);
  const auto it = gens_.find(name);
  if (it == gens_.end()) throw NetlistError("unknown gen '" + name + "'");
  return it->second(width, p, key + ".");
}

TokenSource::Gate Registry::makeGate(const Params& p, const std::string& key) const {
  if (!p.has(key)) return {};
  const std::string name = p.str(key);
  const auto it = gates_.find(name);
  if (it == gates_.end()) throw NetlistError("unknown gate '" + name + "'");
  return it->second(p, key + ".");
}

std::unique_ptr<sched::Scheduler> Registry::makeSched(unsigned channels,
                                                      const Params& p,
                                                      const std::string& key) const {
  const std::string name = p.str(key);
  const auto it = scheds_.find(name);
  if (it == scheds_.end()) throw NetlistError("unknown sched '" + name + "'");
  return it->second(channels, p, key + ".");
}

bool Registry::describeScheduler(const sched::Scheduler& s, Params& out,
                                 const std::string& key) {
  if (const auto* st = dynamic_cast<const sched::StaticScheduler*>(&s)) {
    out.set(key, "static");
    if (st->pick() != 0) out.setU64(key + ".pick", st->pick());
    return true;
  }
  if (dynamic_cast<const sched::RoundRobinScheduler*>(&s) != nullptr) {
    out.set(key, "rr");
    return true;
  }
  if (dynamic_cast<const sched::LastServedScheduler*>(&s) != nullptr) {
    out.set(key, "last");
    return true;
  }
  if (dynamic_cast<const sched::TwoBitScheduler*>(&s) != nullptr) {
    out.set(key, "2bit");
    return true;
  }
  if (const auto* t = dynamic_cast<const sched::TimeoutScheduler*>(&s)) {
    out.set(key, "timeout");
    if (t->timeout() != 1) out.setU64(key + ".timeout", t->timeout());
    return true;
  }
  if (const auto* b = dynamic_cast<const sched::BoundedFairScheduler*>(&s)) {
    out.set(key, "bounded-fair");
    if (b->maxDefer() != 1) out.setU64(key + ".defer", b->maxDefer());
    return true;
  }
  if (dynamic_cast<const sched::StarvingScheduler*>(&s) != nullptr) {
    out.set(key, "starving");
    return true;
  }
  return false;  // oracle and custom policies close over C++ state
}

void validateIrToken(const std::string& name, const std::string& what) {
  if (name.empty()) throw NetlistError(what + ": empty");
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-' ||
                    c == '@';
    if (!ok)
      throw NetlistError(what + " '" + name + "': illegal character '" +
                         std::string(1, c) + "'");
  }
}

void validateIrName(const std::string& name, const std::string& what) {
  validateIrToken(name, what);
  if (endsWithPortRef(name, ".out") || endsWithPortRef(name, ".in"))
    throw NetlistError(what + " '" + name +
                       "': must not end in .out<N>/.in<N> (reserved for "
                       "channel endpoint references)");
}

// ---------------------------------------------------------------------------
// NetlistSpec
// ---------------------------------------------------------------------------

Netlist NetlistSpec::build() const {
  Netlist nl;
  const Registry& reg = Registry::instance();
  std::unordered_map<std::string, NodeId> byName;
  for (const NodeSpec& spec : nodes) {
    Node& n = reg.makeNode(nl, spec);
    if (!byName.emplace(spec.name, n.id()).second)
      throw NetlistError("duplicate node name '" + spec.name + "'");
  }
  for (const ChannelSpec& ch : channels) {
    const auto findEnd = [&](const std::string& name) -> Node& {
      const auto it = byName.find(name);
      if (it == byName.end())
        throw NetlistError("channel references unknown node '" + name + "'");
      return nl.node(it->second);
    };
    Node& prod = findEnd(ch.producer);
    Node& cons = findEnd(ch.consumer);
    if (ch.producerPort >= prod.numOutputs())
      throw NetlistError("channel: no output port " +
                         std::to_string(ch.producerPort) + " on '" + ch.producer +
                         "'");
    if (ch.consumerPort >= cons.numInputs())
      throw NetlistError("channel: no input port " +
                         std::to_string(ch.consumerPort) + " on '" + ch.consumer +
                         "'");
    nl.connect(prod, ch.producerPort, cons, ch.consumerPort, ch.name);
  }
  nl.validate();
  return nl;
}

NetlistSpec NetlistSpec::fromNetlist(const Netlist& nl) {
  NetlistSpec spec;
  const Registry& reg = Registry::instance();
  std::unordered_map<std::string, NodeId> byName;
  for (const NodeId id : nl.nodeIds()) {
    const Node& n = nl.node(id);
    validateIrName(n.name(), "node name");
    if (!byName.emplace(n.name(), id).second)
      throw NetlistError("netlist not serializable: duplicate node name '" +
                         n.name() + "'");
    spec.nodes.push_back(reg.describeNode(n));
  }
  for (const ChannelId id : nl.channelIds()) {
    const Channel& ch = nl.channel(id);
    // A name the format cannot represent must fail here (at save time), not
    // when the printed file is reloaded.
    if (!ch.name.empty()) validateIrToken(ch.name, "channel name");
    spec.channels.push_back({nl.node(ch.producer).name(), ch.producerPort,
                             nl.node(ch.consumer).name(), ch.consumerPort,
                             ch.name});
  }
  return spec;
}

// ---------------------------------------------------------------------------
// IR-aware construction helpers
// ---------------------------------------------------------------------------

FuncNode& makeFuncNode(Netlist& nl, const std::string& name,
                       const std::vector<unsigned>& inWidths, unsigned outWidth,
                       const std::string& fnName, const Params& fnParams,
                       logic::Cost cost, const std::string& role) {
  NodeSpec spec;
  spec.kind = "func";
  spec.name = name;
  std::vector<std::uint64_t> in(inWidths.begin(), inWidths.end());
  spec.params.setU64List("in", in);
  spec.params.setU64("out", outWidth);
  spec.params.set("fn", fnName);
  addPrefixed(spec.params, "fn", fnParams);
  spec.params.setReal("delay", cost.delay);
  spec.params.setReal("area", cost.area);
  if (!role.empty()) spec.params.set("role", role);
  return static_cast<FuncNode&>(Registry::instance().makeNode(nl, spec));
}

TokenSource& makeSourceNode(Netlist& nl, const std::string& name, unsigned width,
                            const std::string& genName, const Params& genParams,
                            const std::string& gateName, const Params& gateParams) {
  NodeSpec spec;
  spec.kind = "source";
  spec.name = name;
  spec.params.setU64("width", width);
  spec.params.set("gen", genName);
  addPrefixed(spec.params, "gen", genParams);
  if (!gateName.empty()) {
    spec.params.set("gate", gateName);
    addPrefixed(spec.params, "gate", gateParams);
  }
  return static_cast<TokenSource&>(Registry::instance().makeNode(nl, spec));
}

SharedModule& makeSharedNode(Netlist& nl, const std::string& name, unsigned channels,
                             unsigned inWidth, unsigned outWidth,
                             const std::string& fnName, const Params& fnParams,
                             const std::string& schedName, const Params& schedParams,
                             logic::Cost fnCost) {
  NodeSpec spec;
  spec.kind = "shared";
  spec.name = name;
  spec.params.setU64("k", channels);
  spec.params.setU64("in", inWidth);
  spec.params.setU64("out", outWidth);
  spec.params.set("fn", fnName);
  addPrefixed(spec.params, "fn", fnParams);
  spec.params.set("sched", schedName);
  addPrefixed(spec.params, "sched", schedParams);
  spec.params.setReal("delay", fnCost.delay);
  spec.params.setReal("area", fnCost.area);
  return static_cast<SharedModule&>(Registry::instance().makeNode(nl, spec));
}

StallingVLU& makeVluNode(Netlist& nl, const std::string& name, unsigned inWidth,
                         unsigned outWidth, const std::string& exactName,
                         const Params& exactParams, const std::string& errName,
                         const Params& errParams, logic::Cost approxCost,
                         logic::Cost exactCost, logic::Cost errCost) {
  NodeSpec spec;
  spec.kind = "stalling-vlu";
  spec.name = name;
  spec.params.setU64("in", inWidth);
  spec.params.setU64("out", outWidth);
  spec.params.set("exact", exactName);
  addPrefixed(spec.params, "exact", exactParams);
  spec.params.set("err", errName);
  addPrefixed(spec.params, "err", errParams);
  spec.params.set("acost", costToken(approxCost));
  spec.params.set("ecost", costToken(exactCost));
  spec.params.set("rcost", costToken(errCost));
  return static_cast<StallingVLU&>(Registry::instance().makeNode(nl, spec));
}

}  // namespace esl
