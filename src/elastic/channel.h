// Elastic channels with SELF dual handshakes (paper §3).
//
// A channel carries data plus the control tuple (V+, S+, V-, S-):
//   vf (V+) forward valid  — driven by the producer, announces a token;
//   sf (S+) forward stop   — driven by the consumer, back-pressures tokens;
//   vb (V-) backward valid — driven by the consumer, announces an anti-token
//                            travelling upstream;
//   sb (S-) backward stop  — driven by the producer, back-pressures anti-tokens.
//
// Settled-cycle events (DESIGN.md §3): a token and an anti-token meeting on a
// channel cancel (kill); otherwise each side transfers when valid and not
// stopped. The SELF Invariant makes kill and stop mutually exclusive, so the
// three events below are disjoint.
#pragma once

#include <cstdint>
#include <string>

#include "base/bitvec.h"

namespace esl {

using NodeId = std::uint32_t;
using ChannelId = std::uint32_t;
inline constexpr NodeId kNoNode = ~NodeId{0};
inline constexpr ChannelId kNoChannel = ~ChannelId{0};

/// Settled values of the four SELF control bits plus the payload.
struct ChannelSignals {
  bool vf = false;  ///< V+: token present
  bool sf = false;  ///< S+: token stopped
  bool vb = false;  ///< V-: anti-token present
  bool sb = false;  ///< S-: anti-token stopped
  BitVec data;      ///< payload, meaningful iff vf

  bool operator==(const ChannelSignals& o) const {
    return vf == o.vf && sf == o.sf && vb == o.vb && sb == o.sb && data == o.data;
  }
};

/// Token killed by an anti-token on this channel this cycle.
inline bool killEvent(const ChannelSignals& s) { return s.vf && s.vb; }

/// Token moves producer -> consumer this cycle.
inline bool fwdTransfer(const ChannelSignals& s) { return s.vf && !s.sf && !s.vb; }

/// Anti-token moves consumer -> producer this cycle.
inline bool bwdTransfer(const ChannelSignals& s) { return s.vb && !s.sb && !s.vf; }

/// Static structure of a channel: endpoints and payload width.
struct Channel {
  ChannelId id = kNoChannel;
  std::string name;
  unsigned width = 0;
  NodeId producer = kNoNode;
  unsigned producerPort = 0;  ///< index into the producer's output ports
  NodeId consumer = kNoNode;
  unsigned consumerPort = 0;  ///< index into the consumer's input ports
};

/// One-character trace symbol used throughout the paper's Table 1:
/// '-' anti-token, '*' bubble, 'D' valid data (caller renders the letter).
enum class ChannelSymbol { kAntiToken, kBubble, kData };

inline ChannelSymbol channelSymbol(const ChannelSignals& s) {
  if (s.vb) return ChannelSymbol::kAntiToken;
  if (s.vf) return ChannelSymbol::kData;
  return ChannelSymbol::kBubble;
}

}  // namespace esl
