// Byte-oriented serialization of node state.
//
// The explicit-state model checker (src/verify) snapshots the entire netlist
// state as a byte string; nodes pack and unpack their sequential state through
// these helpers. Performance statistics must NOT be packed (they would blow up
// the reachable state space without changing behaviour).
#pragma once

#include <cstdint>
#include <vector>

#include "base/bitvec.h"
#include "base/error.h"

namespace esl {

class StateWriter {
 public:
  StateWriter() = default;
  /// Fast path for per-transition snapshotting (the model checker packs the
  /// whole netlist once per explored edge): adopts an existing buffer so its
  /// capacity is reused instead of reallocated; take() hands it back.
  explicit StateWriter(std::vector<std::uint8_t> reuse) : bytes_(std::move(reuse)) {
    bytes_.clear();
  }

  void writeBool(bool b) { bytes_.push_back(b ? 1 : 0); }

  void writeU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void writeU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// Raw byte run (strings, nested byte blobs — the serve spool format).
  void writeBytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  void writeBitVec(const BitVec& v) {
    writeU32(v.width());
    std::uint8_t acc = 0;
    for (unsigned i = 0; i < v.width(); ++i) {
      if (v.bit(i)) acc |= static_cast<std::uint8_t>(1u << (i % 8));
      if (i % 8 == 7 || i + 1 == v.width()) {
        bytes_.push_back(acc);
        acc = 0;
      }
    }
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class StateReader {
 public:
  /// `offset` skips a caller-parsed prefix (SimContext's snapshot header).
  explicit StateReader(const std::vector<std::uint8_t>& bytes,
                       std::size_t offset = 0)
      : bytes_(bytes), pos_(offset) {}

  bool readBool() { return byte() != 0; }

  std::uint32_t readU32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(byte()) << (8 * i);
    return v;
  }

  std::uint64_t readU64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(byte()) << (8 * i);
    return v;
  }

  std::vector<std::uint8_t> readBytes(std::size_t n) {
    ESL_CHECK(n <= bytes_.size() - pos_, "StateReader: out of data");
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  BitVec readBitVec() {
    const unsigned width = readU32();
    BitVec v(width);
    std::uint8_t acc = 0;
    for (unsigned i = 0; i < width; ++i) {
      if (i % 8 == 0) acc = byte();
      v.setBit(i, (acc >> (i % 8)) & 1);
    }
    return v;
  }

  bool done() const { return pos_ == bytes_.size(); }

 private:
  std::uint8_t byte() {
    ESL_CHECK(pos_ < bytes_.size(), "StateReader: out of data");
    return bytes_[pos_++];
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

/// Canonical 64-bit hash of a packed state (FNV-1a). Keys the model checker's
/// striped visited set; identical bytes hash identically on every thread.
inline std::uint64_t hashBytes(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace esl
