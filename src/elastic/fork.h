// Eager fork: replicates each input token to every output branch.
//
// Each branch may consume its copy independently (eager semantics, tracked by
// per-branch done bits); the stem token is consumed once all branches have
// taken or killed their copy. Anti-tokens arriving on a branch annihilate the
// pending copy for that branch — they never cross into the stem, because the
// stem token also feeds the other branches (paper §4.1: the anti-token must
// cancel exactly the non-selected copy).
#pragma once

#include <vector>

#include "elastic/context.h"
#include "elastic/node.h"

namespace esl {

class ForkNode : public Node {
 public:
  ForkNode(std::string name, unsigned width, unsigned branches);

  void reset() override;
  void evalComb(SimContext& ctx) override;
  EvalPurity evalPurity() const override { return EvalPurity::kStateful; }
  /// done_ bits set on branch events and clear on the stem transfer event.
  EdgeActivity edgeActivity() const override { return EdgeActivity::kOnEvents; }
  void clockEdge(SimContext& ctx) override;
  void packState(StateWriter& w) const override;
  void unpackState(StateReader& r) override;
  logic::Cost cost() const override;
  void timing(TimingModel& m) const override;
  std::string kindName() const override { return "fork"; }

  unsigned branches() const { return numOutputs(); }

 private:
  friend class compile::Vm;

  /// Branch copy consumed this cycle (settled signals).
  bool branchDoneNow(SimContext& ctx, unsigned i, bool inVf) const;

  unsigned width_;
  std::vector<bool> done_;
};

}  // namespace esl
