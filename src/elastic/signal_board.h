// SignalBoard: struct-of-arrays storage for every channel's settled signals.
//
// The four SELF control bits (vf/sf/vb/sb) of all channels live in packed
// 64-channel bitplane groups (one cache line covers all four planes of a
// 64-channel slot group), and payloads ≤64 bits live in a contiguous word
// arena (wider payloads spill to a BitVec table). Replacing the old
// AoS `std::vector<ChannelSignals>` makes the simulation hot paths
// cache-linear and word-parallel:
//   * the event kernel's change detection compares one plane group + one
//     arena word instead of striding over scattered BitVecs;
//   * the clock-edge event scan and the per-channel statistics become
//     bitplane sweeps (transfer/kill masks computed 64 channels at a time);
//   * snapshot/compare of the whole board (sweep kernel, cross-check,
//     protocol prev()) is a straight word copy.
//
// Channels are assigned *slots* by layout(). With a ShardPlan the slots are
// permuted so that each shard's interior channels (both endpoints owned by
// the shard) occupy exclusive, 64-aligned slot ranges — shard workers can
// then read and write their interior planes with plain loads/stores, no
// sharing. Channels whose endpoints live in different shards go to a
// boundary region at the top of the slot space with double-buffered storage:
// while staging is active (inside a parallel settle round) reads see the
// stable *front* values and writes go to the *back* copy (bit writes with
// atomic RMW — back-plane words are shared between producer- and
// consumer-side writers of different shards; payload words have a single
// writer). syncBoundary(), called single-threaded between rounds, publishes
// changed back values to the front and reports the changed channels so the
// kernel can seed their cross-shard readers.
//
// Node code never touches the planes directly: it reads and writes through
// the Sig/ConstSig accessor proxies returned by SimContext::sig(). The
// accessor contract for evalComb is strict: a node must NOT read back a
// field it drives (cache the value in a local instead) — under sharding such
// a read returns the round-start value, not the staged write.
#pragma once

#include <cstdint>
#include <vector>

#include "elastic/channel.h"

namespace esl {

class Netlist;

/// Partition of a netlist's nodes into shards (contiguous blocks of the live
/// node order). shards == 1 means no partitioning: every channel is interior.
struct ShardPlan {
  unsigned shards = 1;
  std::vector<std::uint32_t> nodeShard;  ///< indexed by NodeId (capacity-sized)
};

class SignalBoard {
 public:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};
  /// dataOffAt() flag bit: offset indexes the spill table, not the word arena.
  static constexpr std::uint32_t kWideFlag = 0x80000000u;

  /// (Re)computes the slot layout for the netlist's live channels and
  /// zero-initializes all signals. Audits every channel width against the
  /// endpoint ports (arena sizing depends on them; see Netlist::validate).
  /// Every call stamps a fresh layoutGeneration() — see below.
  void layout(const Netlist& nl, const ShardPlan* plan = nullptr);

  /// Monotonic identity of this board's slot layout, bumped by every layout()
  /// call (process-wide counter, so two boards never alias generations).
  /// Anything that caches resolved slot addresses — the compiled backend's
  /// Program above all — must key its cache on this: a shard-count change
  /// re-lays the board and permutes slots WITHOUT moving the netlist's
  /// topologyVersion, so topology alone is not a sufficient cache key.
  std::uint64_t layoutGeneration() const { return layoutGeneration_; }

  /// Copies per-channel values from another board (typically the pre-relayout
  /// board) for every live channel both boards know with matching width.
  void adoptValuesFrom(const SignalBoard& old);

  std::size_t slotCount() const { return slotCount_; }
  /// Number of 64-slot plane groups (each group spans 4 ctrl_ words).
  std::size_t groupCount() const { return slotCount_ / kWordBits; }

  std::uint32_t slotOf(ChannelId ch) const {
    return ch < slotOf_.size() ? slotOf_[ch] : kNoSlot;
  }
  ChannelId channelAtSlot(std::uint32_t slot) const { return chOfSlot_[slot]; }
  unsigned widthAtSlot(std::uint32_t slot) const { return slotWidth_[slot]; }
  NodeId producerAtSlot(std::uint32_t slot) const { return slotProducer_[slot]; }
  NodeId consumerAtSlot(std::uint32_t slot) const { return slotConsumer_[slot]; }

  // --- control-bit access (per slot) ---------------------------------------
  // Plane indices within a 64-slot group's 4-word block.
  enum Plane : unsigned { kVf = 0, kSf = 1, kVb = 2, kSb = 3 };

  bool bitAt(std::uint32_t slot, Plane p) const {
    return (ctrl_[groupBase(slot) + p] >> (slot & 63)) & 1u;
  }
  /// Writes detect change in passing (the word is already in hand for the
  /// RMW) and record it in the changed bitmap — the event kernels consume
  /// those bits instead of diffing against a shadow copy of the board.
  void setBitAt(std::uint32_t slot, Plane p, bool v) {
    const std::uint64_t m = std::uint64_t{1} << (slot & 63);
    if (stagingActive_ && slot >= boundaryBase_) {
      atomicSetBit(&ctrlBack_[groupBase(slot) - backGroupBase_ + p], m, v);
      return;  // boundary changes are detected at the sync barrier
    }
    std::uint64_t& w = ctrl_[groupBase(slot) + p];
    if (((w & m) != 0) == v) return;
    w ^= m;
    changed_[slot >> 6] |= m;
  }

  /// Consumes (tests and clears) a channel's changed bit.
  bool consumeChanged(std::uint32_t slot) {
    const std::uint64_t m = std::uint64_t{1} << (slot & 63);
    std::uint64_t& w = changed_[slot >> 6];
    if (!(w & m)) return false;
    w &= ~m;
    return true;
  }
  /// Drops all recorded changes (kernel re-seed / external-write recovery).
  void clearChanged() { std::fill(changed_.begin(), changed_.end(), 0); }

  /// One plane word (64 slots) of the front planes; `group` = slot / 64.
  std::uint64_t planeWord(std::size_t group, Plane p) const {
    return ctrl_[group * 4 + p];
  }

  // --- payload access (per slot) -------------------------------------------

  BitVec dataAt(std::uint32_t slot) const {
    const std::uint32_t off = dataOff_[slot];
    if (off == kNoSlot) return BitVec(slotWidth_[slot]);
    if (off & kWideFlag) return spill_[off & ~kWideFlag];
    return BitVec(slotWidth_[slot], words_[off]);
  }
  /// Low 64 payload bits without materializing a BitVec (narrow channels).
  std::uint64_t dataLow64At(std::uint32_t slot) const {
    const std::uint32_t off = dataOff_[slot];
    if (off == kNoSlot) return 0;
    if (off & kWideFlag) return spill_[off & ~kWideFlag].toUint64();
    return words_[off];
  }
  void setDataAt(std::uint32_t slot, const BitVec& v);
  /// Word-copy between two slots of THIS board (staging-off fast path).
  void copyDataFromSlotAt(std::uint32_t dst, std::uint32_t src);

  // --- kernel operations ----------------------------------------------------

  /// Front-vs-front comparison of one channel's 4 bits + payload between two
  /// identically laid-out boards (the event kernel's shadow compare).
  bool channelEqualsAt(std::uint32_t slot, const SignalBoard& other) const {
    const std::size_t g = groupBase(slot);
    const std::uint64_t m = std::uint64_t{1} << (slot & 63);
    for (unsigned p = 0; p < 4; ++p)
      if ((ctrl_[g + p] ^ other.ctrl_[g + p]) & m) return false;
    return dataEqualsAt(slot, other);
  }
  /// Payload equality against a BitVec value without materializing a copy.
  bool dataEqualsValueAt(std::uint32_t slot, const BitVec& v) const {
    if (v.width() != slotWidth_[slot]) return false;
    const std::uint32_t off = dataOff_[slot];
    if (off == kNoSlot) return true;
    if (off & kWideFlag) return spill_[off & ~kWideFlag] == v;
    return words_[off] == v.toUint64();
  }
  bool dataEqualsAt(std::uint32_t slot, const SignalBoard& other) const {
    const std::uint32_t off = dataOff_[slot];
    if (off == kNoSlot) return true;
    if (off & kWideFlag)
      return spill_[off & ~kWideFlag] == other.spill_[off & ~kWideFlag];
    return words_[off] == other.words_[off];
  }
  /// Zeroes every signal and payload, keeping the layout (context reset).
  void clearValues();

  /// Full value copy from an identically laid-out board (near-memcpy).
  void copyValuesFrom(const SignalBoard& other);
  /// Full value comparison against an identically laid-out board.
  bool sameValuesAs(const SignalBoard& other) const;

  // --- sharded staging -------------------------------------------------------

  std::uint32_t boundaryBase() const { return boundaryBase_; }
  bool inBoundary(std::uint32_t slot) const { return slot >= boundaryBase_; }
  std::size_t boundarySlotCount() const { return slotCount_ - boundaryBase_; }

  /// Enters/leaves staged-write mode. Entering re-synchronizes the back copy
  /// with the front so stale staging can never leak into a round.
  void setStagingActive(bool active);
  bool stagingActive() const { return stagingActive_; }

  /// Publishes staged boundary writes (back -> front), invoking
  /// changed(ChannelId) for every boundary channel whose signals moved.
  /// Single-threaded: call only between parallel rounds.
  template <typename Fn>
  void syncBoundary(Fn&& changed) {
    for (std::uint32_t slot = boundaryBase_; slot < slotCount_; ++slot) {
      const ChannelId ch = chOfSlot_[slot];
      if (ch == kNoChannel) break;  // padding tail of the boundary region
      if (syncBoundarySlot(slot)) changed(ch);
    }
  }

  /// Per-slot word range [first, last) of one shard's interior slots and of
  /// the boundary region, in *group* units (1 group = 64 slots = 4 words).
  std::pair<std::size_t, std::size_t> shardGroupRange(unsigned shard) const {
    return {shardGroupLo_[shard], shardGroupHi_[shard]};
  }
  std::pair<std::size_t, std::size_t> boundaryGroupRange() const {
    return {boundaryBase_ / kWordBits, slotCount_ / kWordBits};
  }

  // --- event sweeps ----------------------------------------------------------

  /// Transfer/kill event masks of one 64-slot group, computed word-parallel
  /// from the settled front planes.
  struct EventWord {
    std::uint64_t fwd = 0;   ///< vf & ~sf & ~vb
    std::uint64_t kill = 0;  ///< vf & vb
    std::uint64_t bwd = 0;   ///< vb & ~sb & ~vf
    std::uint64_t any() const { return fwd | kill | bwd; }
  };
  EventWord eventsAtGroup(std::size_t group) const {
    const std::size_t g = group * 4;
    const std::uint64_t vf = ctrl_[g + kVf], sf = ctrl_[g + kSf];
    const std::uint64_t vb = ctrl_[g + kVb], sb = ctrl_[g + kSb];
    EventWord e;
    e.kill = vf & vb;
    e.fwd = vf & ~sf & ~vb;
    e.bwd = vb & ~sb & ~vf;
    return e;
  }
  /// vf|vb of one group: channels carrying a token or anti-token ("hot").
  std::uint64_t activityAtGroup(std::size_t group) const {
    return ctrl_[group * 4 + kVf] | ctrl_[group * 4 + kVb];
  }

  /// Snapshot of one channel in the legacy AoS struct form.
  ChannelSignals snapshotAt(std::uint32_t slot) const {
    ChannelSignals s;
    s.vf = bitAt(slot, kVf);
    s.sf = bitAt(slot, kSf);
    s.vb = bitAt(slot, kVb);
    s.sb = bitAt(slot, kSb);
    s.data = dataAt(slot);
    return s;
  }

  // --- raw arena access (compiled backend) -----------------------------------
  // The bytecode VM (compile/vm.h) addresses the planes and payload arenas
  // directly, with all offsets resolved at program-compile time; its write
  // helpers mirror setBitAt/setDataAt exactly, including change tracking.
  // Raw writes are only valid on slots the boundary staging never covers:
  // under sharding the compiler downgrades every node touching a boundary
  // slot to a generic op (virtual eval through the Sig proxies, which honor
  // staging), so specialized ops only ever store to interior, owner-exclusive
  // plane ranges.

  std::uint64_t* ctrlData() { return ctrl_.data(); }
  std::uint64_t* payloadData() { return words_.data(); }
  BitVec* spillData() { return spill_.data(); }
  std::uint64_t* changedData() { return changed_.data(); }
  /// Payload arena offset of a slot: word index, or spill index | kWideFlag,
  /// or kNoSlot for zero-width channels.
  std::uint32_t dataOffAt(std::uint32_t slot) const { return dataOff_[slot]; }

 private:
  static constexpr unsigned kWordBits = 64;

  static std::size_t groupBase(std::uint32_t slot) {
    return static_cast<std::size_t>(slot >> 6) * 4;
  }
  static void plainSetBit(std::uint64_t* w, std::uint64_t m, bool v) {
    if (v)
      *w |= m;
    else
      *w &= ~m;
  }
  static void atomicSetBit(std::uint64_t* w, std::uint64_t m, bool v);
  bool syncBoundarySlot(std::uint32_t slot);

  std::size_t slotCount_ = 0;             ///< multiple of 64 (padded)
  std::uint64_t layoutGeneration_ = 0;    ///< stamped by layout(); 0 = no layout
  std::vector<std::uint32_t> slotOf_;     ///< ChannelId -> slot (kNoSlot = dead)
  std::vector<ChannelId> chOfSlot_;       ///< slot -> ChannelId (kNoChannel = pad)
  std::vector<std::uint32_t> slotWidth_;  ///< slot -> payload width
  std::vector<NodeId> slotProducer_;      ///< slot -> producer node
  std::vector<NodeId> slotConsumer_;      ///< slot -> consumer node

  // Front planes: 4 words per 64-slot group, [vf sf vb sb] interleaved.
  std::vector<std::uint64_t> ctrl_;
  std::vector<std::uint64_t> words_;      ///< narrow payload arena (1 word/ch)
  std::vector<BitVec> spill_;             ///< wide payloads (>64 bits)
  std::vector<std::uint32_t> dataOff_;    ///< slot -> arena word | spill+flag
  std::vector<std::uint64_t> changed_;    ///< write-tracked change bits/slot

  // Boundary double buffer (back copy of the boundary tail of each store).
  std::uint32_t boundaryBase_ = 0;        ///< first boundary slot (64-aligned)
  std::size_t backGroupBase_ = 0;         ///< ctrl_ index of the first back group
  std::size_t backWordBase_ = 0;          ///< words_ offset of the boundary tail
  std::size_t backSpillBase_ = 0;         ///< spill_ offset of the boundary tail
  std::vector<std::uint64_t> ctrlBack_;
  std::vector<std::uint64_t> wordsBack_;
  std::vector<BitVec> spillBack_;
  bool stagingActive_ = false;

  // Interior group ranges per shard (group = 64 slots).
  std::vector<std::size_t> shardGroupLo_;
  std::vector<std::size_t> shardGroupHi_;
};

// --- accessor proxies --------------------------------------------------------

/// Read-only view of one channel's signals (bound to a board slot).
class ConstSig {
 public:
  ConstSig(const SignalBoard& b, std::uint32_t slot) : b_(&b), slot_(slot) {}

  bool vf() const { return b_->bitAt(slot_, SignalBoard::kVf); }
  bool sf() const { return b_->bitAt(slot_, SignalBoard::kSf); }
  bool vb() const { return b_->bitAt(slot_, SignalBoard::kVb); }
  bool sb() const { return b_->bitAt(slot_, SignalBoard::kSb); }
  BitVec data() const { return b_->dataAt(slot_); }
  std::uint64_t dataLow64() const { return b_->dataLow64At(slot_); }
  bool dataEquals(const BitVec& v) const { return b_->dataEqualsValueAt(slot_, v); }
  unsigned width() const { return b_->widthAtSlot(slot_); }

  /// Legacy AoS snapshot: lets `const ChannelSignals s = ctx.sig(ch);` keep
  /// working (clockEdge code paths, tests, trace capture).
  operator ChannelSignals() const { return b_->snapshotAt(slot_); }  // NOLINT

  const SignalBoard& board() const { return *b_; }
  std::uint32_t slot() const { return slot_; }

 protected:
  const SignalBoard* b_;
  std::uint32_t slot_;
};

/// Mutable view; writes go through the board (and honor boundary staging).
/// evalComb contract: never read back a field you drive — use a local.
class Sig : public ConstSig {
 public:
  Sig(SignalBoard& b, std::uint32_t slot) : ConstSig(b, slot), mb_(&b) {}

  void setVf(bool v) { mb_->setBitAt(slot_, SignalBoard::kVf, v); }
  void setSf(bool v) { mb_->setBitAt(slot_, SignalBoard::kSf, v); }
  void setVb(bool v) { mb_->setBitAt(slot_, SignalBoard::kVb, v); }
  void setSb(bool v) { mb_->setBitAt(slot_, SignalBoard::kSb, v); }
  void setData(const BitVec& v) { mb_->setDataAt(slot_, v); }
  /// Payload copy straight from another channel's storage (fork/mux routing).
  void setDataFrom(const ConstSig& src);

 private:
  SignalBoard* mb_;
};

/// Event predicates on the proxy views (mirrors the ChannelSignals helpers).
inline bool killEvent(const ConstSig& s) { return s.vf() && s.vb(); }
inline bool fwdTransfer(const ConstSig& s) { return s.vf() && !s.sf() && !s.vb(); }
inline bool bwdTransfer(const ConstSig& s) { return s.vb() && !s.sb() && !s.vf(); }
inline ChannelSymbol channelSymbol(const ConstSig& s) {
  if (s.vb()) return ChannelSymbol::kAntiToken;
  if (s.vf()) return ChannelSymbol::kData;
  return ChannelSymbol::kBubble;
}

}  // namespace esl
