// Node: base class for every elastic block (buffers, functions, forks,
// early-evaluation multiplexers, shared speculative modules, environments).
//
// Execution model (DESIGN.md §3): each clock cycle the simulator repeatedly
// calls evalComb() on every node until all channel signals stabilize, then
// calls clockEdge() once with the settled signals. evalComb must be a pure
// function of (sequential state, input signals, per-cycle choice bits) and may
// only write the signals the node drives:
//   producer side of an output channel: vf, data, sb
//   consumer side of an input channel:  sf, vb
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/error.h"
#include "elastic/channel.h"
#include "elastic/params.h"
#include "elastic/state_io.h"
#include "logic/cost.h"

namespace esl {

class SimContext;

namespace compile {
/// Bytecode VM of the compiled backend (compile/vm.h). A friend of the node
/// catalog: its specialized ops transcribe each node's evalComb/clockEdge
/// over raw board addresses, reading the same private state.
class Vm;
}  // namespace compile

/// Timing nets: per channel, the forward (valid/data) and backward
/// (stop/anti-token) signal groups settle at separate times.
enum class NetKind { kFwd, kBwd };

struct TimingRef {
  ChannelId ch = kNoChannel;
  NetKind kind = NetKind::kFwd;
};

/// Combinational dependency through a node: `to` settles no earlier than
/// `delay` after `from`.
struct TimingArc {
  TimingRef from;
  TimingRef to;
  double delay = 0.0;
};

/// A net driven from sequential state (registers/latches) with clk->q delay.
struct TimingLaunch {
  TimingRef at;
  double delay = 0.0;
};

/// A path from a net into an internal register: the cycle must also
/// accommodate arrival(at) + delay (e.g. a block's internal datapath).
struct TimingCapture {
  TimingRef at;
  double delay = 0.0;
};

/// Collected combinational timing structure of a netlist.
struct TimingModel {
  std::vector<TimingArc> arcs;
  std::vector<TimingLaunch> launches;
  std::vector<TimingCapture> captures;

  void arc(TimingRef from, TimingRef to, double delay) {
    arcs.push_back({from, to, delay});
  }
  void launch(TimingRef at, double delay) { launches.push_back({at, delay}); }
  void capture(TimingRef at, double delay) { captures.push_back({at, delay}); }
};

class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }
  NodeId id() const { return id_; }

  /// Construction attributes of the netlist IR (`.esl` `key=value` list).
  /// Populated by the NodeRegistry factories (and by C++ builders that are
  /// IR-aware); nodes created directly around C++ lambdas have none and can
  /// only be serialized if their kind is derivable from getters alone.
  const Params& buildParams() const { return buildParams_; }
  bool hasBuildParams() const { return !buildParams_.entries().empty(); }
  void setBuildParams(Params params) { buildParams_ = std::move(params); }

  unsigned numInputs() const { return static_cast<unsigned>(inputs_.size()); }
  unsigned numOutputs() const { return static_cast<unsigned>(outputs_.size()); }
  unsigned inputWidth(unsigned port) const { return inputWidths_.at(port); }
  unsigned outputWidth(unsigned port) const { return outputWidths_.at(port); }
  ChannelId input(unsigned port) const { return inputs_.at(port); }
  ChannelId output(unsigned port) const { return outputs_.at(port); }
  bool inputBound(unsigned port) const { return inputs_.at(port) != kNoChannel; }
  bool outputBound(unsigned port) const { return outputs_.at(port) != kNoChannel; }

  /// Re-initializes sequential state (start of simulation / verification).
  virtual void reset() {}

  /// One combinational sweep; called until fixpoint.
  virtual void evalComb(SimContext& ctx) = 0;

  /// How far the event-driven settle kernel may trust this node's evalComb.
  ///
  /// The evalComb contract (pure function of sequential state, input signals
  /// and choice bits; writes only the fields the node drives) makes
  /// re-evaluation on unchanged inputs a no-op. Nodes that declare the
  /// contract let the kernel evaluate them exactly once per input change;
  /// unaudited nodes are re-evaluated after every change they cause, which
  /// certifies convergence and turns contract violations (e.g. a node
  /// oscillating on its own output) into CombinationalCycleError instead of
  /// silent mis-settles.
  enum class EvalPurity {
    /// Default for user nodes: abide-by-contract not declared; the kernel
    /// re-checks after every change this node makes.
    kUnaudited,
    /// Abides by the contract but evalComb reads sequential state, choice
    /// bits or the cycle counter: seeded into every settle.
    kStateful,
    /// Contract plus: evalComb never *reads* adjacent channel signals — every
    /// driven field is a function of state/choices/cycle alone (fully
    /// registered boundaries, e.g. an elastic buffer with Lf=Lb=1). Seeded
    /// once per settle and never re-evaluated however its channels change.
    kStateDriven,
    /// Contract plus: evalComb is a function of the adjacent channel signals
    /// alone. Skipped entirely while its inputs are unchanged from the
    /// previous settled cycle.
    kCombPure,
  };
  virtual EvalPurity evalPurity() const { return EvalPurity::kUnaudited; }

  /// Whether evalComb reads per-cycle inputs BESIDES sequential state and
  /// adjacent channel signals — the cycle counter or nondeterministic choice
  /// bits. Such nodes are re-seeded into every settle. All other audited
  /// nodes are re-seeded only when their state may actually have changed,
  /// i.e. when their clockEdge ran at the preceding edge — on a large mostly
  /// idle netlist that turns the per-cycle seed set from O(stateful nodes)
  /// into O(active nodes). Default: true iff the node consumes choice bits;
  /// override to return true when evalComb reads ctx.cycle() (typically
  /// through a gate callback).
  virtual bool evalReadsPerCycleInputs() const { return choiceCount() > 0; }

  /// Sequential-activity hint for the clock-edge dirty-tracker, the edge-phase
  /// sibling of EvalPurity.
  ///
  /// clockEdge() advances sequential state from the settled signals. For most
  /// blocks that update is strictly event-triggered: state can only change
  /// when one of the node's channels carries a transfer or kill event
  /// (fwdTransfer/bwdTransfer/killEvent) this cycle. Declaring that lets
  /// SimContext clock only the nodes adjacent to an event — the edge phase
  /// becomes O(active) like the event-driven settle — instead of sweeping
  /// clockEdge() over every node.
  ///
  /// The declaration is audited: in cross-check mode the kernel still clocks
  /// every node but verifies that each node it *would* have skipped left its
  /// packState() bytes unchanged, turning a wrong hint into InternalError.
  /// Note the audit sees packState() only — statistics excluded from
  /// serialization are not covered, so counters must also be event-triggered.
  enum class EdgeActivity {
    /// Default: clockEdge() must run every cycle (cycle-dependent gates,
    /// schedulers, per-cycle choice consumers, multi-cycle latency counters).
    kEveryCycle,
    /// clockEdge() is a no-op on any cycle in which no adjacent channel
    /// carries a transfer or kill event; the kernel may skip it then.
    kOnEvents,
  };
  virtual EdgeActivity edgeActivity() const { return EdgeActivity::kEveryCycle; }

  /// Sequential update with settled signals.
  virtual void clockEdge(SimContext& ctx) { (void)ctx; }

  /// Sequential state serialization (model checker). Statistics excluded.
  virtual void packState(StateWriter& w) const { (void)w; }
  virtual void unpackState(StateReader& r) { (void)r; }

  /// Number of per-cycle nondeterministic binary choices this node consumes
  /// (environments only; deterministic blocks return 0).
  virtual unsigned choiceCount() const { return 0; }

  /// Area/delay contribution of this node's datapath + control.
  virtual logic::Cost cost() const { return {}; }

  /// Retry+ persistence class of an output port (paper §4.2): registered
  /// blocks and environments are persistent; shared speculative modules are
  /// not (the scheduler may change its prediction after a retry); and
  /// combinational blocks *derive* their persistence from their inputs —
  /// non-persistence propagates downstream until the next EB. Use
  /// channelIsPersistent() to resolve kDerived through the netlist.
  enum class Persistence { kPersistent, kNonPersistent, kDerived };
  virtual Persistence outputPersistence(unsigned port) const {
    (void)port;
    return Persistence::kDerived;
  }

  /// Combinational timing structure (arcs between channel nets + launches).
  virtual void timing(TimingModel& m) const { (void)m; }

  /// Token-flow edge through a node: tokens crossing from an input channel to
  /// an output channel take `latency` cycles; `tokens` initial tokens sit on
  /// the way. Used by the min-cycle-ratio throughput bound (src/perf).
  struct FlowEdge {
    ChannelId from;
    ChannelId to;
    double latency = 0.0;
    double tokens = 0.0;
  };

  /// Default: combinational flow from every input to every output.
  virtual void flowEdges(std::vector<FlowEdge>& out) const {
    for (unsigned i = 0; i < numInputs(); ++i)
      for (unsigned o = 0; o < numOutputs(); ++o)
        if (inputBound(i) && outputBound(o))
          out.push_back({input(i), output(o), 0.0, 0.0});
  }

  /// One-line description for DOT labels and the shell.
  virtual std::string kindName() const = 0;

 private:
  friend class Netlist;
  void setId(NodeId id) { id_ = id; }
  /// Renaming goes through Netlist::renameNode so the name index stays valid.
  void rename(std::string name) { name_ = std::move(name); }
  unsigned addInputPort(unsigned width) {
    inputs_.push_back(kNoChannel);
    inputWidths_.push_back(width);
    return numInputs() - 1;
  }
  unsigned addOutputPort(unsigned width) {
    outputs_.push_back(kNoChannel);
    outputWidths_.push_back(width);
    return numOutputs() - 1;
  }

 protected:
  /// Port declaration helpers for subclass constructors.
  void declareInput(unsigned width) { (void)addInputPort(width); }
  void declareOutput(unsigned width) { (void)addOutputPort(width); }

 private:
  void bindInput(unsigned port, ChannelId ch) { inputs_.at(port) = ch; }
  void bindOutput(unsigned port, ChannelId ch) { outputs_.at(port) = ch; }

  std::string name_;
  NodeId id_ = kNoNode;
  Params buildParams_;
  std::vector<ChannelId> inputs_;
  std::vector<ChannelId> outputs_;
  std::vector<unsigned> inputWidths_;
  std::vector<unsigned> outputWidths_;
};

}  // namespace esl
