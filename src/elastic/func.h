// FuncNode: combinational function block with lazy-join elastic semantics.
//
// A conventional elastic block waits for *all* inputs before computing
// (paper §1); the node fires when every input carries a token and the output
// is consumed (transferred or killed). Anti-tokens arriving at the output
// back-propagate atomically into all inputs — the dual-network counterflow of
// [Cortadella & Kishinevsky, DAC'07] — cancelling one whole would-be firing.
//
// FuncNode is stateless (forward latency 0); pipelining comes from explicit
// elastic buffers around it.
#pragma once

#include <functional>
#include <vector>

#include "elastic/context.h"
#include "elastic/node.h"

namespace esl {

/// Pure combinational function over the settled input payloads.
using CombFn = std::function<BitVec(const std::vector<BitVec>&)>;

class FuncNode : public Node {
 public:
  FuncNode(std::string name, std::vector<unsigned> inputWidths, unsigned outputWidth,
           CombFn fn, logic::Cost datapathCost = {1.0, 1.0});

  void evalComb(SimContext& ctx) override;
  /// Stateless join (firings_ is edge-only), so fully signal-determined.
  EvalPurity evalPurity() const override { return EvalPurity::kCombPure; }
  /// Only the firing counter advances, on the output transfer event.
  EdgeActivity edgeActivity() const override { return EdgeActivity::kOnEvents; }
  void clockEdge(SimContext& ctx) override;
  logic::Cost cost() const override;
  void timing(TimingModel& m) const override;
  std::string kindName() const override { return "func"; }

  const CombFn& fn() const { return fn_; }
  logic::Cost datapathCost() const { return datapathCost_; }

  /// Structural role tag used by the transformation kit: makeJoinMux tags its
  /// nodes "mux" so Shannon decomposition / early-eval conversion can check
  /// preconditions without introspecting the lambda.
  const std::string& role() const { return role_; }
  void setRole(std::string role) { role_ = std::move(role); }

  /// Forward transfers completed at the output (simulation statistic).
  std::uint64_t firings() const { return firings_; }

 private:
  friend class compile::Vm;

  CombFn fn_;
  logic::Cost datapathCost_;
  std::string role_;
  std::uint64_t firings_ = 0;

  // Size-1 memo of the last datapath computation. fn_ is pure, so replaying
  // it on identical operands is pure waste — and both settle kernels replay a
  // lot (the sweep on every iteration, retried tokens on every cycle).
  bool memoValid_ = false;
  std::vector<BitVec> memoArgs_;
  BitVec memoOut_;

  // Per-eval accessor scratch: the input proxies are resolved once per
  // evalComb and reused across its loops (capacity retained between calls).
  std::vector<Sig> inSigs_;
};

/// Identity function block (a named wire with join semantics).
FuncNode& makeWire(class Netlist& nl, std::string name, unsigned width,
                   logic::Cost cost = {0.0, 0.0});

/// Unary function block from a BitVec->BitVec lambda.
FuncNode& makeUnary(class Netlist& nl, std::string name, unsigned inWidth,
                    unsigned outWidth, std::function<BitVec(const BitVec&)> fn,
                    logic::Cost cost = {1.0, 1.0});

/// Binary function block.
FuncNode& makeBinary(class Netlist& nl, std::string name, unsigned aWidth,
                     unsigned bWidth, unsigned outWidth,
                     std::function<BitVec(const BitVec&, const BitVec&)> fn,
                     logic::Cost cost = {1.0, 1.0});

/// Conventional (non-early) multiplexer: a FuncNode that joins the select
/// channel (input 0) with all data channels and picks the selected payload.
/// This is the mux of Fig. 1(a)-(c) before early-evaluation conversion.
FuncNode& makeJoinMux(class Netlist& nl, std::string name, unsigned dataInputs,
                      unsigned selWidth, unsigned width);

}  // namespace esl
