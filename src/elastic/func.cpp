#include "elastic/func.h"

#include "elastic/netlist.h"

namespace esl {

FuncNode::FuncNode(std::string name, std::vector<unsigned> inputWidths,
                   unsigned outputWidth, CombFn fn, logic::Cost datapathCost)
    : Node(std::move(name)), fn_(std::move(fn)), datapathCost_(datapathCost) {
  ESL_CHECK(!inputWidths.empty(), "FuncNode: needs at least one input");
  ESL_CHECK(static_cast<bool>(fn_), "FuncNode: function required");
  for (unsigned w : inputWidths) declareInput(w);
  declareOutput(outputWidth);
}

void FuncNode::evalComb(SimContext& ctx) {
  Sig out = ctx.sig(output(0));
  const unsigned n = numInputs();
  inSigs_.clear();
  for (unsigned i = 0; i < n; ++i) inSigs_.push_back(ctx.sig(input(i)));

  bool allIn = true;
  for (unsigned i = 0; i < n; ++i) allIn = allIn && inSigs_[i].vf();

  out.setVf(allIn);
  if (allIn) {
    bool hit = memoValid_;
    for (unsigned i = 0; hit && i < n; ++i)
      hit = inSigs_[i].dataEquals(memoArgs_[i]);
    if (!hit) {
      memoArgs_.resize(n);
      for (unsigned i = 0; i < n; ++i) memoArgs_[i] = inSigs_[i].data();
      memoOut_ = fn_(memoArgs_);
      ESL_CHECK(memoOut_.width() == outputWidth(0),
                "FuncNode '" + name() + "': function returned wrong width");
      memoValid_ = true;
    }
    out.setData(memoOut_);
  }

  // Output consumed this cycle: normal transfer or annihilated by an
  // anti-token at the output channel.
  const bool outVb = out.vb();
  const bool fire = allIn && (!out.sf() || outVb);

  // Counterflow: an anti-token at the output propagates to all inputs
  // atomically when each input channel can absorb it this cycle (by killing
  // its token or moving the anti-token further upstream).
  bool allCan = true;
  for (unsigned i = 0; i < n; ++i)
    allCan = allCan && (inSigs_[i].vf() || !inSigs_[i].sb());
  const bool back = outVb && !allIn && allCan;

  for (unsigned i = 0; i < n; ++i) {
    inSigs_[i].setVb(back);
    inSigs_[i].setSf(!fire && !back);
  }
  out.setSb(!allIn && !allCan);
}

void FuncNode::clockEdge(SimContext& ctx) {
  if (fwdTransfer(ctx.sig(output(0)))) ++firings_;
}

logic::Cost FuncNode::cost() const { return datapathCost_; }

void FuncNode::timing(TimingModel& m) const {
  for (unsigned i = 0; i < numInputs(); ++i) {
    m.arc({input(i), NetKind::kFwd}, {output(0), NetKind::kFwd}, datapathCost_.delay);
    m.arc({output(0), NetKind::kBwd}, {input(i), NetKind::kBwd}, 1.0);
    // The join stop of input i also depends on the other inputs' valids.
    for (unsigned j = 0; j < numInputs(); ++j)
      if (j != i)
        m.arc({input(j), NetKind::kFwd}, {input(i), NetKind::kBwd}, 1.0);
  }
}

FuncNode& makeWire(Netlist& nl, std::string name, unsigned width, logic::Cost cost) {
  return nl.make<FuncNode>(
      std::move(name), std::vector<unsigned>{width}, width,
      [](const std::vector<BitVec>& in) { return in[0]; }, cost);
}

FuncNode& makeUnary(Netlist& nl, std::string name, unsigned inWidth, unsigned outWidth,
                    std::function<BitVec(const BitVec&)> fn, logic::Cost cost) {
  return nl.make<FuncNode>(
      std::move(name), std::vector<unsigned>{inWidth}, outWidth,
      [f = std::move(fn)](const std::vector<BitVec>& in) { return f(in[0]); }, cost);
}

FuncNode& makeBinary(Netlist& nl, std::string name, unsigned aWidth, unsigned bWidth,
                     unsigned outWidth,
                     std::function<BitVec(const BitVec&, const BitVec&)> fn,
                     logic::Cost cost) {
  return nl.make<FuncNode>(
      std::move(name), std::vector<unsigned>{aWidth, bWidth}, outWidth,
      [f = std::move(fn)](const std::vector<BitVec>& in) { return f(in[0], in[1]); },
      cost);
}

FuncNode& makeJoinMux(Netlist& nl, std::string name, unsigned dataInputs,
                      unsigned selWidth, unsigned width) {
  ESL_CHECK(dataInputs >= 2, "makeJoinMux: need at least two data inputs");
  std::vector<unsigned> widths{selWidth};
  for (unsigned i = 0; i < dataInputs; ++i) widths.push_back(width);
  auto& mux = nl.make<FuncNode>(
      std::move(name), std::move(widths), width,
      [dataInputs](const std::vector<BitVec>& in) {
        const std::uint64_t sel = in[0].toUint64();
        ESL_CHECK(sel < dataInputs, "join mux: select out of range");
        return in[1 + sel];
      },
      logic::muxCost(dataInputs, width));
  mux.setRole("mux");
  return mux;
}

}  // namespace esl
