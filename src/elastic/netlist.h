// Netlist: the elastic system graph — nodes connected by channels.
//
// "An elastic system can be defined as a collection of blocks and FIFOs
// connected by channels" (paper §3). The netlist owns the nodes, tracks
// channel endpoints, validates connectivity, and supports the re-wiring
// operations the transformation kit (src/transform) needs.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "elastic/node.h"

namespace esl {

class Netlist {
 public:
  Netlist() = default;
  Netlist(const Netlist&) = delete;
  Netlist& operator=(const Netlist&) = delete;
  Netlist(Netlist&&) = default;
  Netlist& operator=(Netlist&&) = default;

  /// Constructs a node in place and registers it. Returns a stable reference.
  template <typename T, typename... Args>
  T& make(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    addNode(std::move(owned));
    return ref;
  }

  NodeId addNode(std::unique_ptr<Node> node);

  /// Removes a node; all its channels must be unbound/removed first.
  void removeNode(NodeId id);

  /// Creates a channel producer.out[producerPort] -> consumer.in[consumerPort].
  /// Width is taken from the producer port and checked against the consumer.
  ChannelId connect(Node& producer, unsigned producerPort, Node& consumer,
                    unsigned consumerPort, std::string name = {});

  /// Deletes a channel, unbinding both endpoints.
  void disconnect(ChannelId ch);

  /// Moves the consumer endpoint of `ch` to another node/port (re-wiring).
  void rebindConsumer(ChannelId ch, Node& consumer, unsigned consumerPort);
  /// Moves the producer endpoint of `ch` to another node/port.
  void rebindProducer(ChannelId ch, Node& producer, unsigned producerPort);

  /// Splices `node` (1 input, 1 output) into channel `ch`:
  /// producer -> node stays on `ch`; a new channel node -> consumer is made.
  /// Returns the new downstream channel.
  ChannelId insertOnChannel(ChannelId ch, Node& node);

  /// Removes a 1-in/1-out node from the middle of a path, reconnecting its
  /// upstream channel to its downstream consumer. The downstream channel is
  /// deleted. Returns the surviving channel.
  ChannelId bypassNode(NodeId id);

  bool hasNode(NodeId id) const;
  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  /// First node with the given name, or nullptr. O(1) amortized: both name
  /// lookups hit a hash index rebuilt lazily per topologyVersion().
  Node* findNode(const std::string& name);
  const Node* findNode(const std::string& name) const;

  /// Renames a node, keeping the name index coherent (the reason Node has no
  /// public rename of its own).
  void renameNode(NodeId id, std::string name);

  bool hasChannel(ChannelId ch) const;
  const Channel& channel(ChannelId ch) const;
  Channel& channelMutable(ChannelId ch);
  /// First channel with the given name, or nullptr. Same index as findNode.
  const Channel* findChannel(const std::string& name) const;

  /// Live node ids in insertion order.
  std::vector<NodeId> nodeIds() const;
  /// Live channel ids in insertion order.
  std::vector<ChannelId> channelIds() const;
  std::size_t channelCapacity() const { return channels_.size(); }
  std::size_t nodeCapacity() const { return nodes_.size(); }

  // --- Event-kernel adjacency index ----------------------------------------

  /// One record of the channel→reader index: a channel touching a node,
  /// paired with the node at the channel's *other* endpoint — i.e. the reader
  /// of whatever signal fields the indexed node drives on `ch`.
  struct AdjacentChannel {
    ChannelId ch = kNoChannel;
    NodeId other = kNoNode;
  };

  /// Bumped by every structural mutation (add/remove node, connect,
  /// disconnect, rebind, splice). Lets cached per-topology structures
  /// (the adjacency index, a SimContext's seeding state) detect staleness.
  std::uint64_t topologyVersion() const { return topoVersion_; }

  /// Fan-in + fan-out channels of `id` with their opposite endpoints. The
  /// index is maintained incrementally by connect() on the common build-up
  /// path and rebuilt lazily after rewiring; not thread-safe against
  /// concurrent structural mutation (SimFarm gives each worker its own
  /// netlist instead of sharing one).
  const std::vector<AdjacentChannel>& adjacency(NodeId id) const;

  /// Throws NetlistError unless every port of every node is bound and every
  /// channel has both endpoints with matching widths.
  void validate() const;

  /// Sums node costs (area report input).
  logic::Cost totalCost() const;

  /// Resolves Node::Persistence::kDerived transitively: a channel obeys
  /// Retry+ persistence unless its producer (or any combinational ancestor)
  /// is a non-persistent block (paper §4.2).
  bool channelIsPersistent(ChannelId ch) const;

 private:
  std::string freshChannelName(const Node& producer, unsigned port) const;
  /// Structural mutation that the incremental index cannot follow: bump the
  /// version without updating the cache, forcing a lazy rebuild.
  void invalidateAdjacency() { ++topoVersion_; }
  void rebuildAdjacency() const;
  void rebuildNameIndex() const;

  std::vector<std::unique_ptr<Node>> nodes_;  // nullptr = removed slot
  std::vector<Channel> channels_;             // id == kNoChannel marks removed
  std::vector<bool> channelLive_;

  std::uint64_t topoVersion_ = 0;
  // Cache of adjacency(), valid while adjacencyVersion_ == topoVersion_.
  mutable std::vector<std::vector<AdjacentChannel>> adjacency_;
  mutable std::uint64_t adjacencyVersion_ = 0;

  // Name -> id index behind findNode/findChannel, rebuilt lazily whenever
  // the topology version moves (renameNode bumps it too). Duplicated names
  // keep first-insertion-wins semantics, matching the old linear scan.
  mutable std::unordered_map<std::string, NodeId> nodeByName_;
  mutable std::unordered_map<std::string, ChannelId> channelByName_;
  mutable std::uint64_t nameIndexVersion_ = ~std::uint64_t{0};
};

}  // namespace esl
