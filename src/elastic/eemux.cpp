#include "elastic/eemux.h"

namespace esl {

EarlyEvalMux::EarlyEvalMux(std::string name, unsigned dataInputs, unsigned selWidth,
                           unsigned width)
    : Node(std::move(name)), dataInputs_(dataInputs), width_(width) {
  ESL_CHECK(dataInputs >= 2, "EarlyEvalMux: need at least two data inputs");
  declareInput(selWidth);  // input 0: select
  for (unsigned i = 0; i < dataInputs; ++i) declareInput(width);
  declareOutput(width);
  pendingAnti_.assign(dataInputs, 0);
}

void EarlyEvalMux::reset() {
  pendingAnti_.assign(dataInputs_, 0);
}

EarlyEvalMux::CombView EarlyEvalMux::view(SimContext& ctx) const {
  CombView v;
  const ConstSig sel = ctx.sig(selectChannel());
  v.selValid = sel.vf();
  if (v.selValid) {
    const std::uint64_t idx = sel.dataLow64();
    ESL_CHECK(idx < dataInputs_,
              "EarlyEvalMux '" + name() + "': select value out of range");
    v.selIdx = static_cast<unsigned>(idx);
  }

  // The selected token is usable only if it is not owed to a pending
  // anti-token from an earlier firing.
  const bool usable = v.selValid && pendingAnti_[v.selIdx] == 0 &&
                      ctx.sig(dataChannel(v.selIdx)).vf();
  const ConstSig out = ctx.sig(output(0));
  v.fire = usable && (!out.sf() || out.vb());

  v.antiAvail.resize(dataInputs_);
  for (unsigned i = 0; i < dataInputs_; ++i)
    v.antiAvail[i] = pendingAnti_[i] + ((v.fire && i != v.selIdx) ? 1u : 0u);
  return v;
}

void EarlyEvalMux::evalComb(SimContext& ctx) {
  const CombView v = view(ctx);
  Sig out = ctx.sig(output(0));
  Sig sel = ctx.sig(selectChannel());

  const bool usable = v.selValid && pendingAnti_[v.selIdx] == 0 &&
                      ctx.sig(dataChannel(v.selIdx)).vf();
  out.setVf(usable);
  if (usable) out.setDataFrom(ctx.sig(dataChannel(v.selIdx)));
  // An anti-token at the output is consumed only by annihilating a firing.
  out.setSb(!usable);

  sel.setSf(!v.fire);
  sel.setVb(false);

  for (unsigned i = 0; i < dataInputs_; ++i) {
    Sig in = ctx.sig(dataChannel(i));
    const bool anti = v.antiAvail[i] > 0;
    in.setVb(anti);
    if (anti) {
      in.setSf(false);  // kill and stop are mutually exclusive
    } else if (v.selValid && i == v.selIdx) {
      // Selected: released on firing; stopped while waiting — when the channel
      // is empty this stop is the misprediction demand.
      in.setSf(!v.fire);
    } else {
      // Non-selected: hold an arriving token (it will be killed by a future
      // firing's anti-token); keep the channel free otherwise so that an
      // empty non-selected channel never looks like a demand.
      in.setSf(in.vf());
    }
  }
}

void EarlyEvalMux::clockEdge(SimContext& ctx) {
  const CombView v = view(ctx);
  for (unsigned i = 0; i < dataInputs_; ++i) {
    const ConstSig in = ctx.sig(dataChannel(i));
    unsigned avail = v.antiAvail[i];
    if (in.vb() && (in.vf() || !in.sb())) {
      ESL_ASSERT(avail > 0);
      --avail;  // delivered: killed a token or moved upstream
    }
    if (v.fire && i != v.selIdx) ++antiEmitted_;
    pendingAnti_[i] = avail;
  }
  if (fwdTransfer(ctx.sig(output(0)))) ++firings_;
}

void EarlyEvalMux::packState(StateWriter& w) const {
  for (unsigned p : pendingAnti_) w.writeU32(p);
}

void EarlyEvalMux::unpackState(StateReader& r) {
  for (unsigned& p : pendingAnti_) p = r.readU32();
}

logic::Cost EarlyEvalMux::cost() const {
  return logic::earlyEvalMuxCost(dataInputs_) + logic::muxCost(dataInputs_, width_);
}

void EarlyEvalMux::timing(TimingModel& m) const {
  const double muxDelay = logic::muxCost(dataInputs_, width_).delay;
  for (unsigned i = 0; i < dataInputs_; ++i) {
    m.arc({dataChannel(i), NetKind::kFwd}, {output(0), NetKind::kFwd}, muxDelay);
    m.arc({selectChannel(), NetKind::kFwd}, {dataChannel(i), NetKind::kBwd}, 1.0);
    m.arc({output(0), NetKind::kBwd}, {dataChannel(i), NetKind::kBwd}, 1.0);
    m.arc({dataChannel(i), NetKind::kFwd}, {selectChannel(), NetKind::kBwd}, 1.0);
  }
  m.arc({selectChannel(), NetKind::kFwd}, {output(0), NetKind::kFwd}, muxDelay);
  m.arc({output(0), NetKind::kBwd}, {selectChannel(), NetKind::kBwd}, 1.0);
}

}  // namespace esl
