// Stalling variable-latency unit (paper §5.1, Fig. 6a).
//
// Computes F in 1 cycle when the approximate result is correct and in 2
// cycles otherwise: the error detector F_err gates the elastic controller
// directly — on error the unit inserts a bubble into the receiver channel,
// stalls the sender, and finishes with F_exact the next cycle. This is the
// baseline the speculative design of Fig. 6(b) is compared against; its
// defining weakness is the combinational path F_err -> global controller
// gating, which the timing model charges via controlGatingCost().
#pragma once

#include <optional>

#include "elastic/context.h"
#include "elastic/node.h"

namespace esl {

class StallingVLU : public Node {
 public:
  using UnaryFn = std::function<BitVec(const BitVec&)>;
  using ErrFn = std::function<bool(const BitVec&)>;

  /// `exact` is the golden function; `err(x)` is true when the approximate
  /// unit would be wrong for operand x (the telescopic hold predictor).
  StallingVLU(std::string name, unsigned inWidth, unsigned outWidth, UnaryFn exact,
              ErrFn err, logic::Cost approxCost, logic::Cost exactCost,
              logic::Cost errCost);

  void reset() override;
  void evalComb(SimContext& ctx) override;
  EvalPurity evalPurity() const override { return EvalPurity::kStateful; }
  void clockEdge(SimContext& ctx) override;
  void packState(StateWriter& w) const override;
  void unpackState(StateReader& r) override;
  logic::Cost cost() const override;
  void timing(TimingModel& m) const override;
  void flowEdges(std::vector<FlowEdge>& out) const override;
  Persistence outputPersistence(unsigned) const override {
    return Persistence::kPersistent;
  }
  std::string kindName() const override { return "stalling-vlu"; }

  std::uint64_t completed() const { return completed_; }
  std::uint64_t stalls() const { return stalls_; }

 private:
  friend class compile::Vm;

  unsigned inWidth_;
  unsigned outWidth_;
  UnaryFn exact_;
  ErrFn err_;
  logic::Cost approxCost_;
  logic::Cost exactCost_;
  logic::Cost errCost_;

  std::optional<BitVec> pending_;  // operand needing its second cycle
  std::optional<BitVec> result_;   // completed result awaiting transfer
  std::uint64_t completed_ = 0;
  std::uint64_t stalls_ = 0;
};

}  // namespace esl
