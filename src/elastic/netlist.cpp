#include "elastic/netlist.h"

#include <algorithm>
#include <utility>

namespace esl {

NodeId Netlist::addNode(std::unique_ptr<Node> node) {
  ESL_CHECK(node != nullptr, "Netlist::addNode: null node");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node->setId(id);
  nodes_.push_back(std::move(node));
  // Keep the adjacency index hot through the common build-up path.
  const bool synced = adjacencyVersion_ == topoVersion_;
  ++topoVersion_;
  if (synced) {
    adjacency_.emplace_back();
    adjacencyVersion_ = topoVersion_;
  }
  return id;
}

void Netlist::removeNode(NodeId id) {
  ESL_CHECK(hasNode(id), "Netlist::removeNode: unknown node");
  Node& n = *nodes_[id];
  for (unsigned p = 0; p < n.numInputs(); ++p)
    ESL_CHECK(!n.inputBound(p),
              "Netlist::removeNode: input still connected on " + n.name());
  for (unsigned p = 0; p < n.numOutputs(); ++p)
    ESL_CHECK(!n.outputBound(p),
              "Netlist::removeNode: output still connected on " + n.name());
  nodes_[id].reset();
  invalidateAdjacency();
}

ChannelId Netlist::connect(Node& producer, unsigned producerPort, Node& consumer,
                           unsigned consumerPort, std::string name) {
  ESL_CHECK(producerPort < producer.numOutputs(),
            "connect: bad producer port on " + producer.name());
  ESL_CHECK(consumerPort < consumer.numInputs(),
            "connect: bad consumer port on " + consumer.name());
  ESL_CHECK(!producer.outputBound(producerPort),
            "connect: producer port already bound on " + producer.name());
  ESL_CHECK(!consumer.inputBound(consumerPort),
            "connect: consumer port already bound on " + consumer.name());
  const unsigned width = producer.outputWidth(producerPort);
  ESL_CHECK(width == consumer.inputWidth(consumerPort),
            "connect: width mismatch " + producer.name() + " -> " + consumer.name());

  Channel ch;
  ch.id = static_cast<ChannelId>(channels_.size());
  ch.name = name.empty() ? freshChannelName(producer, producerPort) : std::move(name);
  ch.width = width;
  ch.producer = producer.id();
  ch.producerPort = producerPort;
  ch.consumer = consumer.id();
  ch.consumerPort = consumerPort;
  channels_.push_back(ch);
  channelLive_.push_back(true);

  producer.bindOutput(producerPort, ch.id);
  consumer.bindInput(consumerPort, ch.id);

  const bool synced = adjacencyVersion_ == topoVersion_;
  ++topoVersion_;
  if (synced) {
    adjacency_[producer.id()].push_back({ch.id, consumer.id()});
    adjacency_[consumer.id()].push_back({ch.id, producer.id()});
    adjacencyVersion_ = topoVersion_;
  }
  return ch.id;
}

void Netlist::disconnect(ChannelId chId) {
  ESL_CHECK(hasChannel(chId), "disconnect: unknown channel");
  Channel& ch = channels_[chId];
  node(ch.producer).bindOutput(ch.producerPort, kNoChannel);
  node(ch.consumer).bindInput(ch.consumerPort, kNoChannel);
  channelLive_[chId] = false;
  invalidateAdjacency();
}

void Netlist::rebindConsumer(ChannelId chId, Node& consumer, unsigned consumerPort) {
  ESL_CHECK(hasChannel(chId), "rebindConsumer: unknown channel");
  Channel& ch = channels_[chId];
  ESL_CHECK(consumerPort < consumer.numInputs(), "rebindConsumer: bad port");
  ESL_CHECK(!consumer.inputBound(consumerPort), "rebindConsumer: port already bound");
  ESL_CHECK(ch.width == consumer.inputWidth(consumerPort),
            "rebindConsumer: width mismatch");
  node(ch.consumer).bindInput(ch.consumerPort, kNoChannel);
  ch.consumer = consumer.id();
  ch.consumerPort = consumerPort;
  consumer.bindInput(consumerPort, chId);
  invalidateAdjacency();
}

void Netlist::rebindProducer(ChannelId chId, Node& producer, unsigned producerPort) {
  ESL_CHECK(hasChannel(chId), "rebindProducer: unknown channel");
  Channel& ch = channels_[chId];
  ESL_CHECK(producerPort < producer.numOutputs(), "rebindProducer: bad port");
  ESL_CHECK(!producer.outputBound(producerPort), "rebindProducer: port already bound");
  ESL_CHECK(ch.width == producer.outputWidth(producerPort),
            "rebindProducer: width mismatch");
  node(ch.producer).bindOutput(ch.producerPort, kNoChannel);
  ch.producer = producer.id();
  ch.producerPort = producerPort;
  producer.bindOutput(producerPort, chId);
  invalidateAdjacency();
}

ChannelId Netlist::insertOnChannel(ChannelId chId, Node& mid) {
  ESL_CHECK(hasChannel(chId), "insertOnChannel: unknown channel");
  ESL_CHECK(mid.numInputs() == 1 && mid.numOutputs() == 1,
            "insertOnChannel: node must be 1-in/1-out");
  Channel& ch = channels_[chId];
  Node& consumer = node(ch.consumer);
  const unsigned consumerPort = ch.consumerPort;
  // Detach the old consumer, attach the new node, then connect downstream.
  // The direct rebind below bypasses connect(), so drop the incremental index.
  invalidateAdjacency();
  consumer.bindInput(consumerPort, kNoChannel);
  ch.consumer = mid.id();
  ch.consumerPort = 0;
  mid.bindInput(0, chId);
  return connect(mid, 0, consumer, consumerPort);
}

ChannelId Netlist::bypassNode(NodeId id) {
  ESL_CHECK(hasNode(id), "bypassNode: unknown node");
  Node& n = *nodes_[id];
  ESL_CHECK(n.numInputs() == 1 && n.numOutputs() == 1,
            "bypassNode: node must be 1-in/1-out");
  ESL_CHECK(n.inputBound(0) && n.outputBound(0), "bypassNode: node not fully connected");
  const ChannelId up = n.input(0);
  const ChannelId down = n.output(0);
  invalidateAdjacency();
  Channel& downCh = channels_[down];
  Node& consumer = node(downCh.consumer);
  const unsigned consumerPort = downCh.consumerPort;
  disconnect(down);
  Channel& upCh = channels_[up];
  node(upCh.consumer).bindInput(upCh.consumerPort, kNoChannel);
  upCh.consumer = consumer.id();
  upCh.consumerPort = consumerPort;
  consumer.bindInput(consumerPort, up);
  return up;
}

bool Netlist::hasNode(NodeId id) const {
  return id < nodes_.size() && nodes_[id] != nullptr;
}

Node& Netlist::node(NodeId id) {
  ESL_CHECK(hasNode(id), "Netlist::node: unknown node id " + std::to_string(id));
  return *nodes_[id];
}

const Node& Netlist::node(NodeId id) const {
  ESL_CHECK(hasNode(id), "Netlist::node: unknown node id " + std::to_string(id));
  return *nodes_[id];
}

void Netlist::rebuildNameIndex() const {
  nodeByName_.clear();
  channelByName_.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i]) nodeByName_.emplace(nodes_[i]->name(), static_cast<NodeId>(i));
  for (std::size_t i = 0; i < channels_.size(); ++i)
    if (channelLive_[i])
      channelByName_.emplace(channels_[i].name, static_cast<ChannelId>(i));
  nameIndexVersion_ = topoVersion_;
}

const Node* Netlist::findNode(const std::string& name) const {
  if (nameIndexVersion_ != topoVersion_) rebuildNameIndex();
  const auto it = nodeByName_.find(name);
  return it == nodeByName_.end() ? nullptr : nodes_[it->second].get();
}

Node* Netlist::findNode(const std::string& name) {
  return const_cast<Node*>(std::as_const(*this).findNode(name));
}

void Netlist::renameNode(NodeId id, std::string name) {
  ESL_CHECK(hasNode(id), "Netlist::renameNode: unknown node");
  nodes_[id]->rename(std::move(name));
  // The rename invalidates the name index only, but versions are unified;
  // renames are rare and never happen mid-simulation.
  invalidateAdjacency();
}

bool Netlist::hasChannel(ChannelId ch) const {
  return ch < channels_.size() && channelLive_[ch];
}

const Channel& Netlist::channel(ChannelId ch) const {
  ESL_CHECK(hasChannel(ch), "Netlist::channel: unknown channel id " + std::to_string(ch));
  return channels_[ch];
}

Channel& Netlist::channelMutable(ChannelId ch) {
  ESL_CHECK(hasChannel(ch), "Netlist::channel: unknown channel id " + std::to_string(ch));
  // Handing out a mutable Channel can invalidate any per-topology structure
  // (the name index, and the SignalBoard arena, which is sized from channel
  // widths). Bump the version so caches re-derive — and the width audit in
  // validate()/SignalBoard::layout() rejects a width that no longer matches
  // the endpoint ports instead of silently corrupting payload storage.
  invalidateAdjacency();
  return channels_[ch];
}

const Channel* Netlist::findChannel(const std::string& name) const {
  if (nameIndexVersion_ != topoVersion_) rebuildNameIndex();
  const auto it = channelByName_.find(name);
  return it == channelByName_.end() ? nullptr : &channels_[it->second];
}

std::vector<NodeId> Netlist::nodeIds() const {
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i]) ids.push_back(static_cast<NodeId>(i));
  return ids;
}

std::vector<ChannelId> Netlist::channelIds() const {
  std::vector<ChannelId> ids;
  for (std::size_t i = 0; i < channels_.size(); ++i)
    if (channelLive_[i]) ids.push_back(static_cast<ChannelId>(i));
  return ids;
}

void Netlist::validate() const {
  for (const NodeId id : nodeIds()) {
    const Node& n = node(id);
    for (unsigned p = 0; p < n.numInputs(); ++p)
      ESL_CHECK(n.inputBound(p), "validate: unbound input port " + std::to_string(p) +
                                     " on node " + n.name());
    for (unsigned p = 0; p < n.numOutputs(); ++p)
      ESL_CHECK(n.outputBound(p), "validate: unbound output port " + std::to_string(p) +
                                      " on node " + n.name());
  }
  for (const ChannelId id : channelIds()) {
    const Channel& ch = channel(id);
    ESL_CHECK(hasNode(ch.producer) && hasNode(ch.consumer),
              "validate: dangling channel " + ch.name);
    ESL_CHECK(node(ch.producer).output(ch.producerPort) == id,
              "validate: producer binding inconsistent for " + ch.name);
    ESL_CHECK(node(ch.consumer).input(ch.consumerPort) == id,
              "validate: consumer binding inconsistent for " + ch.name);
    // Channel widths are load-bearing: the SignalBoard payload arena is laid
    // out from them. connect() checks them at creation; re-check here so a
    // post-hoc width edit (channelMutable-style surgery) is rejected at
    // build/validate time, before any kernel trusts the layout.
    ESL_CHECK(node(ch.producer).outputWidth(ch.producerPort) == ch.width &&
                  node(ch.consumer).inputWidth(ch.consumerPort) == ch.width,
              "validate: channel width drifted from its endpoint ports on " +
                  ch.name);
  }
}


const std::vector<Netlist::AdjacentChannel>& Netlist::adjacency(NodeId id) const {
  ESL_CHECK(hasNode(id), "Netlist::adjacency: unknown node id " + std::to_string(id));
  if (adjacencyVersion_ != topoVersion_) rebuildAdjacency();
  return adjacency_[id];
}

void Netlist::rebuildAdjacency() const {
  adjacency_.assign(nodes_.size(), {});
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (!channelLive_[i]) continue;
    const Channel& ch = channels_[i];
    adjacency_[ch.producer].push_back({ch.id, ch.consumer});
    adjacency_[ch.consumer].push_back({ch.id, ch.producer});
  }
  adjacencyVersion_ = topoVersion_;
}

bool Netlist::channelIsPersistent(ChannelId ch) const {
  // Depth-limited walk through combinational producers; combinational cycles
  // cannot occur in valid designs, but guard with a visited set anyway.
  std::vector<ChannelId> stack{ch};
  std::vector<bool> seen(channels_.size(), false);
  while (!stack.empty()) {
    const ChannelId cur = stack.back();
    stack.pop_back();
    if (seen[cur]) continue;
    seen[cur] = true;
    const Channel& c = channel(cur);
    const Node& producer = node(c.producer);
    switch (producer.outputPersistence(c.producerPort)) {
      case Node::Persistence::kNonPersistent:
        return false;
      case Node::Persistence::kPersistent:
        break;
      case Node::Persistence::kDerived:
        for (unsigned i = 0; i < producer.numInputs(); ++i)
          if (producer.inputBound(i)) stack.push_back(producer.input(i));
        break;
    }
  }
  return true;
}

logic::Cost Netlist::totalCost() const {
  logic::Cost total;
  for (const NodeId id : nodeIds()) total = total + node(id).cost();
  return total;
}

std::string Netlist::freshChannelName(const Node& producer, unsigned port) const {
  return producer.name() + ".out" + std::to_string(port);
}

}  // namespace esl
