// SimContext: the cycle-accurate evaluation kernel.
//
// Owns the channel SignalBoard (struct-of-arrays signal storage, see
// elastic/signal_board.h) and drives the two-phase cycle:
//   1. settle(): combinational fixed-point (throws CombinationalCycleError if
//      the network oscillates, i.e. there is a combinational cycle in data or
//      control);
//   2. edge(): clockEdge() on every node, advancing sequential state.
//
// Two settle kernels are available:
//   * kSweep — the reference kernel: evalComb() over every node, sweep until
//     no signal changes anywhere;
//   * kEventDriven (default) — sparse worklist kernel: seeds the nodes whose
//     evaluation can differ from the previous settled cycle (everything with
//     sequential state or choice bits; all nodes after reset), then
//     re-evaluates only nodes whose adjacent channel signals actually changed,
//     using the netlist's channel→reader adjacency index. Signals are retained
//     across cycles, so untouched combinational regions are never re-visited.
//
// The edge phase is dirty-tracked to match: with the settled signals in
// bitplanes, the transfer/kill event masks of 64 channels at a time come from
// a handful of word ops, and edge() clocks only the nodes adjacent to an
// actual event plus the nodes whose EdgeActivity hint demands every cycle.
// The full clockEdge sweep remains the reference path (sweep kernel, and any
// cycle whose signals were written outside the event kernel).
// setCrossCheck(true) runs both settle kernels every cycle and throws
// InternalError on any disagreement (the equivalence harness in
// tests/test_sim_kernel.cpp); its edge runs the full sweep while auditing the
// EdgeActivity declarations — a node the dirty-tracker would have skipped must
// leave its packState() bytes unchanged.
//
// --- Sharded cycles ---------------------------------------------------------
//
// setShards(N > 1) partitions ONE netlist into N contiguous node blocks and
// runs each cycle shard-parallel on a work-stealing Executor:
//   * settle: level-synchronous rounds. Within a round every shard drains its
//     own worklist exactly like the serial event kernel (interior channels —
//     both endpoints owned — live in shard-exclusive bitplane ranges), while
//     writes to boundary channels are staged in the SignalBoard's back copy.
//     Between rounds a serial barrier step publishes changed boundary values
//     and seeds their cross-shard readers; the settle ends when a round stages
//     no boundary change and every worklist is empty. The result is the same
//     unique fixed point the serial kernels reach, so settled signals — and
//     therefore packState() — are bit-identical for every shard count.
//   * edge: each shard sweeps its interior plane range (plus the boundary
//     region, filtered by ownership) for event bits and clocks only its own
//     nodes. clockEdge writes node-local state only, so no synchronization is
//     needed beyond the join barrier.
// Per-cycle choice bits are pre-resolved serially before the parallel phases
// (the provider must be a pure function of (node, index) per cycle — see
// sim::Simulator, whose provider hashes (seed, cycle, node, index)), keeping
// resolution order-independent and the cache read-only under workers.
//
// The context also resolves per-cycle nondeterministic choice bits for
// environment nodes (random under simulation, enumerated under verification)
// and optionally monitors the SELF protocol properties of paper §3.1 on every
// channel (Retry+/Retry-, kill/stop exclusion, persistence).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "elastic/netlist.h"
#include "elastic/signal_board.h"

namespace esl {

class Executor;
class StateWriter;

class SimContext {
 public:
  enum class SettleKernel {
    kSweep,        ///< dense fixed-point sweep over all nodes (reference)
    kEventDriven,  ///< sparse worklist driven by signal-change events
  };

  /// Execution backend for the event-driven cycle phases.
  enum class Backend {
    kInterpreted,  ///< virtual evalComb/clockEdge dispatch (default)
    kCompiled,     ///< bytecode program over raw board offsets (compile/vm.h)
  };

  /// The netlist must outlive the context and is validated on construction.
  explicit SimContext(Netlist& netlist);
  ~SimContext();

  Netlist& netlist() { return netlist_; }
  const Netlist& netlist() const { return netlist_; }

  /// Resets all node state and signals; cycle counter back to 0.
  void reset();

  /// Runs one full cycle: choices -> settle -> protocol check -> edge.
  void step();

  /// Phase pieces (the model checker drives them separately).
  void settle();
  void checkProtocol();
  void edge();

  std::uint64_t cycle() const { return cycle_; }

  // --- Settle kernel selection ----------------------------------------------

  void setKernel(SettleKernel kernel) { kernel_ = kernel; }
  SettleKernel kernel() const { return kernel_; }
  /// Run BOTH kernels each settle from the same pre-settle signals and throw
  /// InternalError on any per-channel disagreement. With shards configured the
  /// event side runs sharded, so this doubles as the sharded-vs-serial oracle.
  void setCrossCheck(bool enabled) { crossCheck_ = enabled; }
  bool crossCheck() const { return crossCheck_; }

  /// Shard the netlist across `n` worker lanes (1 = serial, the default).
  /// Settled signals and packState() are bit-identical for every value.
  void setShards(unsigned n);
  unsigned shards() const { return shards_; }

  /// Selects the execution backend for the event-driven kernel. The compiled
  /// backend lowers the netlist once into bytecode (recompiled whenever the
  /// topology or the board layout moves) and runs settle/edge over raw board
  /// offsets, with per-node sequential state in a VM-owned arena; settled
  /// signals and packState() are bit-identical to the interpreted kernels.
  /// Applies when kernel() == kEventDriven (the sweep kernel stays
  /// interpreted — it is the reference oracle) and composes with setShards:
  /// boundary-adjacent nodes fall back to the staging-aware interpreted path,
  /// so the sharded compiled cycle reaches the same fixpoint. With
  /// setCrossCheck(true) the compiled backend is what the sweep audits.
  void setBackend(Backend backend);
  Backend backend() const { return backend_; }

  /// External code that writes channel signals directly (outside evalComb)
  /// must call this before the next settle() so the event-driven kernel
  /// re-seeds every node instead of trusting retained signals.
  void invalidateSignals() {
    needFullSeed_ = true;
    changeTrackValid_ = false;
    edgeTrackValid_ = false;
    sparseSeedValid_ = false;
  }

  /// Mutable/read-only accessor proxies into the SignalBoard.
  Sig sig(ChannelId ch) { return {board_, slotOrThrow(ch)}; }
  ConstSig sig(ChannelId ch) const {
    return {board_, slotOrThrow(ch)};
  }
  /// Settled signals of the previous cycle. Maintained only while protocol
  /// checking is enabled (its sole consumer); stale otherwise.
  ConstSig prev(ChannelId ch) const { return {prevBoard_, slotOrThrow(ch)}; }

  /// The signal board itself (word-parallel consumers: statistics sweeps).
  const SignalBoard& board() const { return board_; }

  // --- Nondeterministic choices ---------------------------------------------

  /// Total choice bits consumed per cycle by all nodes.
  unsigned totalChoices() const { return totalChoices_; }

  /// Fixes this cycle's choice assignment (verification). Cleared after edge().
  void setChoices(std::vector<bool> bits);
  /// Copying variant for callers that replay one precomputed assignment many
  /// times (the model checker's combo enumeration): reuses the internal
  /// buffer's capacity instead of consuming the argument.
  void setChoicesFrom(const std::vector<bool>& bits);

  /// Fallback provider used when no explicit assignment is set (simulation).
  /// Must be stable within a cycle AND order-independent across queries —
  /// i.e. a pure function of (node, index) for the current cycle — because
  /// the kernels (serial and sharded) resolve slots in evaluation order.
  void setChoiceProvider(std::function<bool(NodeId, unsigned)> fn);

  /// Read by nodes inside evalComb/clockEdge; stable within a cycle.
  bool choice(const Node& node, unsigned idx);

  // --- Protocol monitoring ---------------------------------------------------

  void setProtocolChecking(bool enabled) { protocolChecking_ = enabled; }
  void setThrowOnViolation(bool enabled) { throwOnViolation_ = enabled; }
  const std::vector<std::string>& protocolViolations() const { return violations_; }
  void clearProtocolViolations() { violations_.clear(); }

  // --- State snapshots (model checker) ---------------------------------------

  /// packState() snapshots begin with a 16-byte versioned header: magic u32,
  /// version u32, cycle u64 (all little-endian), then the raw per-node state
  /// bytes. The cycle counter rides in the header so a cross-backend or
  /// cross-context resume keeps every cycle-gated environment node (gated
  /// sources/sinks, every-cycle env nodes) in phase. packStateInto() — the
  /// model checker's per-transition path — stays headerless: the checker
  /// compares states within one fixed context, and the cycle counter would
  /// blow up its state space. unpackState() accepts both (header sniffed).
  static constexpr std::uint32_t kSnapshotMagic = 0xE51A7E01;
  static constexpr std::uint32_t kSnapshotVersion = 1;

  std::vector<std::uint8_t> packState() const;
  /// Allocation-free variant: clears `out` but reuses its capacity. This is
  /// the model checker's per-transition fast path (one full-netlist snapshot
  /// per explored edge).
  void packStateInto(std::vector<std::uint8_t>& out) const;
  void unpackState(const std::vector<std::uint8_t>& bytes);

 private:
  std::uint32_t slotOrThrow(ChannelId ch) const {
    const std::uint32_t slot = board_.slotOf(ch);
    ESL_CHECK(slot != SignalBoard::kNoSlot,
              "SimContext::sig: channel " + std::to_string(ch) +
                  " has no signal slot (removed, or created after the last "
                  "settle/reset)");
    return slot;
  }

  struct Shard {
    std::vector<NodeId> owned;       ///< live nodes, ascending id
    std::vector<NodeId> alwaysEdge;  ///< owned nodes with kEveryCycle
    NodeId loId = 0, hiId = 0;       ///< id range [loId, hiId]
    std::size_t pending = 0;         ///< worklist size (gen-stamped membership)
    std::size_t cursorW = 0;         ///< lowest bitmap word that may be pending
    std::vector<NodeId> edgeList;    ///< per-edge scratch: nodes to clock
    std::vector<NodeId> clocked;     ///< stateful nodes clocked at last edge
    /// Interior plane groups that may carry a token/anti-token ("hot"):
    /// maintained incrementally by the settle's change mirror, compacted
    /// lazily at the edge scan — the edge phase stays O(active), never
    /// O(channels/64), on large idle boards.
    std::vector<std::uint32_t> hotGroups;
  };

  void ensureChoiceMap();
  void ensureTopologyCache();
  void resolveAllChoices();
  void rebuildHotGroups();
  /// Per-node re-evaluation budget (combinational-cycle guard): the sweep
  /// kernel's iteration bound, clamped so the count always fits the 24-bit
  /// field of evalMeta_.
  std::uint32_t evalBudget() const {
    const std::size_t raw = 2 * liveNodes_.size() + 8;
    return static_cast<std::uint32_t>(
        std::min<std::size_t>(raw, (std::size_t{1} << 24) - 1));
  }
  void markHotGroup(Shard& sh, std::uint32_t slot) {
    const std::uint32_t g = slot >> 6;
    if (!groupHot_[g] && board_.activityAtGroup(g) != 0) {
      groupHot_[g] = 1;
      sh.hotGroups.push_back(g);
    }
  }
  void settleSweep();
  void settleEventDriven();
  void settleSharded();
  void settleCrossChecked();
  void pushInto(Shard& sh, std::uint64_t gen, NodeId id) {
    const std::size_t w = id >> 6;
    if (pendingWordGen_[w] != gen) {
      pendingWordGen_[w] = gen;
      pendingBits_[w] = 0;
    }
    const std::uint64_t m = std::uint64_t{1} << (id & 63);
    if (!(pendingBits_[w] & m)) {
      pendingBits_[w] |= m;
      ++sh.pending;
      if (w < sh.cursorW) sh.cursorW = w;
    }
  }
  void seedShards(std::uint64_t gen);

  // --- backend-generic kernel loops ------------------------------------------
  // The serial event-driven settle and the dirty-tracked edge are templates
  // over the per-node dispatch: the interpreted kernel passes virtual
  // evalComb/clockEdge calls, the compiled VM (compile/vm.h, a friend) passes
  // its specialized-op dispatch. Sharing the loops makes seeding, worklist
  // order, change consumption and hot-group maintenance — and therefore the
  // settled fixpoint and the set of clocked nodes — identical by construction
  // across backends.

  /// One shard's worklist drain (the body of drainShard). `eval(id)` must
  /// evaluate node `id`'s combinational function against the board.
  template <typename Eval>
  void drainShardWith(unsigned s, std::uint64_t gen, std::uint32_t maxEvals,
                      const Eval& eval) {
    // Interior-channel changes propagate immediately (both endpoints are
    // owned), boundary writes are staged on the board and published at the
    // next barrier.
    Shard& sh = shardState_[s];
    constexpr std::uint64_t kGenMask = (std::uint64_t{1} << 40) - 1;
    const std::uint64_t genLo = gen & kGenMask;
    while (sh.pending > 0) {
      while (pendingWordGen_[sh.cursorW] != gen || pendingBits_[sh.cursorW] == 0)
        ++sh.cursorW;
      const unsigned bit =
          static_cast<unsigned>(__builtin_ctzll(pendingBits_[sh.cursorW]));
      const NodeId id = static_cast<NodeId>(sh.cursorW * 64 + bit);
      pendingBits_[sh.cursorW] &= pendingBits_[sh.cursorW] - 1;
      --sh.pending;
      const std::uint64_t meta = evalMeta_[id];
      const std::uint64_t evals = ((meta & kGenMask) == genLo ? meta >> 40 : 0) + 1;
      if (evals > maxEvals)
        throw CombinationalCycleError(
            "combinational network did not stabilize: node '" +
            netlist_.node(id).name() + "' re-evaluated more than " +
            std::to_string(maxEvals) +
            " times (combinational cycle in data or control)");
      evalMeta_[id] = (evals << 40) | genLo;
      eval(id);

      bool selfChanged = false;
      const std::uint32_t aEnd = adjOffset_[id + 1];
      for (std::uint32_t a = adjOffset_[id]; a < aEnd; ++a) {
        const std::uint32_t slot = adjFlat_[a].slot;
        if (board_.inBoundary(slot)) continue;  // staged; the sync seeds readers
        if (!board_.consumeChanged(slot)) continue;
        markHotGroup(sh, slot);  // interior groups are owner-exclusive
        const NodeId other = adjFlat_[a].other;
        if (!nodeStateDriven_[other]) pushInto(sh, gen, other);
        selfChanged = true;
      }
      if (selfChanged && nodeUnaudited_[id]) pushInto(sh, gen, id);
    }
  }

  /// The serial event-driven settle (the body of settleEventDriven).
  template <typename Eval>
  void settleEventDrivenWith(const Eval& eval) {
    ensureTopologyCache();

    // The board's changed bits mirror every un-consumed write, so change
    // tracking stays valid across cycles: this refresh runs once after
    // reset/rewiring/sweep interludes, not every settle.
    if (!changeTrackValid_) {
      board_.clearChanged();
      changeTrackValid_ = true;
      rebuildHotGroups();
    }

    // The serial kernel IS the sharded drain restricted to one all-owning
    // shard (no boundary region exists, so no staging or barrier rounds):
    // seed, then drain to the fixed point. Seeding tiers: after
    // reset/rewiring every node; after a full (untracked) edge or an
    // unpackState every stateful node; in dirty-tracked steady state only the
    // per-cycle readers plus the nodes clocked at the preceding edge.
    const std::uint64_t gen = ++settleGen_;
    Shard& sh = shardState_.front();
    sh.pending = 0;
    sh.cursorW = (static_cast<std::size_t>(sh.hiId) >> 6) + 1;
    seedShards(gen);
    drainShardWith(0, gen, evalBudget(), eval);
    edgeTrackValid_ = true;
  }

  /// The serial dirty-tracked clock edge (the body of edgeSparse). `clock(id)`
  /// must run node `id`'s sequential update from the settled board.
  template <typename Clock>
  void edgeSparseWith(const Clock& clock) {
    // Clock only (a) nodes whose hint demands every cycle and (b) nodes
    // adjacent to a channel with an actual transfer/kill event. The scan walks
    // the incrementally maintained hot-group list — 64 channels per entry,
    // event masks word-parallel — and compacts groups that went quiet in
    // passing, so a once-hot group costs one check, not a permanent entry.
    const std::uint64_t gen = ++edgeGen_;
    const auto mark = [&](NodeId id) {
      if (id == kNoNode) return;  // padding slots carry no endpoints
      const std::size_t w = id >> 6;
      if (edgeWordGen_[w] != gen) {
        edgeWordGen_[w] = gen;
        edgeBits_[w] = 0;
      }
      const std::uint64_t m = std::uint64_t{1} << (id & 63);
      if (!(edgeBits_[w] & m)) {
        edgeBits_[w] |= m;
        edgeDirty_.push_back(id);
      }
    };
    for (const NodeId id : alwaysEdgeNodes_) mark(id);
    std::vector<std::uint32_t>& hot = shardState_.front().hotGroups;
    std::size_t keep = 0;
    for (const std::uint32_t g : hot) {
      if (board_.activityAtGroup(g) == 0) {
        groupHot_[g] = 0;
        continue;
      }
      hot[keep++] = g;
      scanEventGroups(g, g + 1, mark);
    }
    hot.resize(keep);
    for (const NodeId id : edgeDirty_) clock(id);
    // Record the clocked stateful nodes: they are the only ones whose state
    // can differ at the next settle, so they (plus the per-cycle readers)
    // become the next seed set.
    prevClocked_.clear();
    for (const NodeId id : edgeDirty_)
      if (nodeStateful_[id]) prevClocked_.push_back(id);
    sparseSeedValid_ = true;
    edgeDirty_.clear();
  }

  /// The sharded level-synchronous settle (the body of settleSharded): every
  /// shard drains its worklist with `eval` under boundary staging; a serial
  /// barrier step between rounds publishes staged boundary changes and seeds
  /// their cross-shard readers.
  template <typename Eval>
  void settleShardedWith(const Eval& eval) {
    ensureTopologyCache();
    if (!changeTrackValid_) {
      board_.clearChanged();
      changeTrackValid_ = true;
      rebuildHotGroups();
    }
    resolveAllChoices();

    const std::uint64_t gen = ++settleGen_;
    const std::uint32_t maxEvals = evalBudget();
    for (Shard& sh : shardState_) {
      sh.pending = 0;
      sh.cursorW = (static_cast<std::size_t>(sh.hiId) >> 6) + 1;
    }
    seedShards(gen);

    board_.setStagingActive(true);
    try {
      bool any = false;
      for (const Shard& sh : shardState_) any = any || sh.pending > 0;
      while (any) {
        // One level-synchronous round: every shard drains its worklist fully.
        parallelShards(
            [&](unsigned s) { drainShardWith(s, gen, maxEvals, eval); });
        // Barrier step (single-threaded): publish staged boundary changes and
        // seed their readers. Both endpoints are seeded — the consumer-side
        // reader of producer-driven fields, the producer-side reader of
        // consumer-driven fields, and the unaudited writer's confirming
        // re-eval all collapse into this conservative push. A re-evaluation
        // on unchanged inputs is a no-op, so the fixed point is unaffected.
        any = false;
        board_.syncBoundary([&](ChannelId ch) {
          const Channel& c = netlist_.channel(ch);
          if (!nodeStateDriven_[c.producer])
            pushInto(shardState_[plan_.nodeShard[c.producer]], gen, c.producer);
          if (!nodeStateDriven_[c.consumer])
            pushInto(shardState_[plan_.nodeShard[c.consumer]], gen, c.consumer);
        });
        for (const Shard& sh : shardState_) any = any || sh.pending > 0;
      }
    } catch (...) {
      // A worker threw (CombinationalCycleError, a node's own error): leave
      // the board usable — staged-but-unpublished boundary writes must not
      // swallow the next kernel's (or an external writer's) stores.
      board_.setStagingActive(false);
      invalidateSignals();
      throw;
    }
    board_.setStagingActive(false);
    edgeTrackValid_ = true;
  }

  /// The sharded dirty-tracked clock edge (the body of edgeSharded): each
  /// shard scans its interior plane range unfiltered (interior endpoints are
  /// owned by construction) plus the shared boundary region filtered by
  /// ownership, then runs `clock` on only its own nodes. clock(id) must write
  /// node-local state only, so the only shared writes are the
  /// ownership-filtered (word-exclusive) edge-mark bitmap.
  template <typename Clock>
  void edgeShardedWith(const Clock& clock) {
    const std::uint64_t gen = ++edgeGen_;
    const auto [blo, bhi] = board_.boundaryGroupRange();
    parallelShards([&](unsigned s) {
      Shard& sh = shardState_[s];
      sh.edgeList.clear();
      const auto mark = [&](NodeId id) {
        if (id == kNoNode || plan_.nodeShard[id] != s) return;
        const std::size_t w = id >> 6;  // bitmap words are owner-exclusive
        if (edgeWordGen_[w] != gen) {
          edgeWordGen_[w] = gen;
          edgeBits_[w] = 0;
        }
        const std::uint64_t m = std::uint64_t{1} << (id & 63);
        if (!(edgeBits_[w] & m)) {
          edgeBits_[w] |= m;
          sh.edgeList.push_back(id);
        }
      };
      for (const NodeId id : sh.alwaysEdge) mark(id);
      std::size_t keep = 0;
      for (const std::uint32_t g : sh.hotGroups) {
        if (board_.activityAtGroup(g) == 0) {
          groupHot_[g] = 0;
          continue;
        }
        sh.hotGroups[keep++] = g;
        scanEventGroups(g, g + 1, mark);
      }
      sh.hotGroups.resize(keep);
      // The boundary region is shared and small: scan it unconditionally,
      // ownership-filtered by mark().
      scanEventGroups(blo, bhi, mark);
      for (const NodeId id : sh.edgeList) clock(id);
      sh.clocked.clear();
      for (const NodeId id : sh.edgeList)
        if (nodeStateful_[id]) sh.clocked.push_back(id);
    });
    prevClocked_.clear();
    for (const Shard& sh : shardState_)
      prevClocked_.insert(prevClocked_.end(), sh.clocked.begin(),
                          sh.clocked.end());
    sparseSeedValid_ = true;
  }

  /// Runs fn(shard) on the executor, one worker lane per shard (type-erased
  /// so the kernel-loop templates stay free of the executor header).
  void parallelShards(const std::function<void(unsigned)>& fn);
  /// Publishes the compiled backend's node-state arena into the node objects
  /// (no-op without a VM or with a clean arena). Every interpreted read of
  /// node state — the sweep/interpreted kernels, packState, the audits —
  /// goes through this first.
  void flushCompiledState() const;
  /// Serializes every live node's state (shared tail of packState and
  /// packStateInto; the former prepends the versioned snapshot header).
  void packNodeState(StateWriter& w) const;

  void edgeSparse();
  void edgeSharded();
  void edgeFull();
  void edgeAudited();
  void edgeEpilogue();
  /// Scans plane groups [lo, hi) for event bits, calling mark(node) on each
  /// adjacent endpoint (owner filtering is the caller's mark).
  template <typename Mark>
  void scanEventGroups(std::size_t lo, std::size_t hi, const Mark& mark) {
    for (std::size_t g = lo; g < hi; ++g) {
      if (board_.activityAtGroup(g) == 0) continue;
      std::uint64_t ev = board_.eventsAtGroup(g).any();
      while (ev != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(ev));
        ev &= ev - 1;
        const std::uint32_t slot = static_cast<std::uint32_t>(g * 64 + bit);
        mark(board_.producerAtSlot(slot));
        mark(board_.consumerAtSlot(slot));
      }
    }
  }
  Executor& exec();
  /// Lazily constructed bytecode VM (compiled backend).
  compile::Vm& vm();

  friend class compile::Vm;

  Netlist& netlist_;
  SignalBoard board_;       ///< current signals (SoA)
  SignalBoard prevBoard_;   ///< previous settled cycle (protocol monitor only)
  // Value-snapshot scratch boards (sweep convergence, cross-check pre/event),
  // re-laid only when the topology cache refreshes — never per settle.
  SignalBoard sweepScratch_;
  SignalBoard ccPre_;
  SignalBoard ccEvent_;
  std::uint64_t cycle_ = 0;
  bool havePrev_ = false;

  // Event-driven kernel state (scratch, reused across settles).
  SettleKernel kernel_ = SettleKernel::kEventDriven;
  bool crossCheck_ = false;
  bool needFullSeed_ = true;
  /// The board's write-tracked changed bits reflect exactly the un-propagated
  /// writes (false after external writes / sweep settles, which bypass the
  /// consume loop).
  bool changeTrackValid_ = false;
  // Generation-stamped per-settle scratch (no O(capacity) clears per cycle).
  // The worklist is a bitmap (64 nodes per word, per-word gen stamps): the
  // lowest-id-first cursor scan touches kilobytes, not megabytes, per settle.
  std::uint64_t settleGen_ = 0;
  std::vector<std::uint64_t> pendingBits_;     ///< bit set → in worklist
  std::vector<std::uint64_t> pendingWordGen_;  ///< == settleGen_ → word valid
  /// Per-node eval budget (combinational-cycle guard), packed as
  /// count<<40 | gen&(2^40-1): one load/store per eval instead of two arrays.
  std::vector<std::uint64_t> evalMeta_;

  // Clock-edge dirty-tracking: valid whenever the event kernel settled the
  // board (events are then a pure bitplane function of the settled signals).
  bool edgeTrackValid_ = false;
  std::uint64_t edgeGen_ = 0;                 ///< dedup stamp for edge marks
  std::vector<std::uint64_t> edgeBits_;       ///< bitmap: already queued
  std::vector<std::uint64_t> edgeWordGen_;    ///< == edgeGen_ → word valid
  std::vector<NodeId> edgeDirty_;             ///< per-edge scratch (serial path)
  std::vector<std::uint8_t> groupHot_;        ///< membership flag per plane group

  // Sparse settle seeding: after a dirty-tracked edge, only the nodes that
  // were actually clocked can have changed state, so the next settle seeds
  // those plus the per-cycle readers instead of every stateful node.
  bool sparseSeedValid_ = false;
  std::vector<NodeId> prevClocked_;  ///< stateful nodes clocked at last edge

  // Sharding: node partition + per-shard scratch + lazily built executor.
  unsigned shards_ = 1;
  ShardPlan plan_;
  std::vector<Shard> shardState_;
  std::unique_ptr<Executor> exec_;

  // Compiled backend: bytecode VM over the board arena (compile/vm.h).
  Backend backend_ = Backend::kInterpreted;
  std::unique_ptr<compile::Vm> vm_;

  // Per-topology caches (live ids, seed set, channel persistence), refreshed
  // whenever the netlist's topologyVersion moves (or the shard count does).
  std::uint64_t topologySeen_ = ~std::uint64_t{0};
  unsigned shardsSeen_ = 0;
  std::vector<NodeId> liveNodes_;
  std::vector<Node*> nodePtr_;  ///< cached per-id pointers (hot dispatch)
  /// Flattened channel→reader adjacency (CSR) with the board slot resolved at
  /// cache-build time: the drain loops walk one contiguous range per node.
  struct AdjEntry {
    std::uint32_t slot;
    NodeId other;
  };
  std::vector<std::uint32_t> adjOffset_;  ///< indexed by NodeId, size cap+1
  std::vector<AdjEntry> adjFlat_;
  std::vector<NodeId> seedNodes_;            ///< live nodes not kCombPure
  std::vector<NodeId> cycleSeedNodes_;       ///< per-cycle readers + unaudited
  std::vector<NodeId> choiceNodes_;          ///< live nodes with choiceCount>0
  std::vector<NodeId> alwaysEdgeNodes_;      ///< live nodes with kEveryCycle
  std::vector<std::uint8_t> nodeUnaudited_;  ///< kUnaudited flag per node
  std::vector<std::uint8_t> nodeStateDriven_;  ///< kStateDriven flag per node
  std::vector<std::uint8_t> nodeEdgeOnEvents_;  ///< kOnEvents flag per node
  std::vector<std::uint8_t> nodeStateful_;      ///< !kCombPure flag per node
  std::vector<ChannelId> liveChannels_;
  std::vector<bool> channelPersistent_;

  // Choice bookkeeping: per-node offset into the per-cycle assignment. The
  // cache is two packed bitplanes (known/value) so the per-cycle clear — and
  // setChoicesFrom — is a word fill, not a byte loop.
  std::vector<unsigned> choiceOffset_;  // indexed by NodeId
  unsigned totalChoices_ = 0;
  std::vector<bool> fixedChoices_;
  bool hasFixedChoices_ = false;
  std::vector<std::uint64_t> choiceKnown_;  ///< bit set → value cached
  std::vector<std::uint64_t> choiceValue_;
  std::function<bool(NodeId, unsigned)> choiceProvider_;

  bool protocolChecking_ = false;
  bool throwOnViolation_ = false;
  std::vector<std::string> violations_;
};

}  // namespace esl
