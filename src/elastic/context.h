// SimContext: the cycle-accurate evaluation kernel.
//
// Owns the channel signal arrays and drives the two-phase cycle:
//   1. settle(): combinational fixed-point — sweep evalComb() over all nodes
//      until no signal changes (throws CombinationalCycleError if the network
//      oscillates, i.e. there is a combinational cycle in data or control);
//   2. edge(): clockEdge() on every node, advancing sequential state.
//
// The context also resolves per-cycle nondeterministic choice bits for
// environment nodes (random under simulation, enumerated under verification)
// and optionally monitors the SELF protocol properties of paper §3.1 on every
// channel (Retry+/Retry-, kill/stop exclusion, persistence).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "elastic/netlist.h"

namespace esl {

class SimContext {
 public:
  /// The netlist must outlive the context and is validated on construction.
  explicit SimContext(Netlist& netlist);

  Netlist& netlist() { return netlist_; }
  const Netlist& netlist() const { return netlist_; }

  /// Resets all node state and signals; cycle counter back to 0.
  void reset();

  /// Runs one full cycle: choices -> settle -> protocol check -> edge.
  void step();

  /// Phase pieces (the model checker drives them separately).
  void settle();
  void checkProtocol();
  void edge();

  std::uint64_t cycle() const { return cycle_; }

  ChannelSignals& sig(ChannelId ch) { return signals_.at(ch); }
  const ChannelSignals& sig(ChannelId ch) const { return signals_.at(ch); }
  /// Settled signals of the previous cycle (protocol monitors).
  const ChannelSignals& prev(ChannelId ch) const { return prevSignals_.at(ch); }

  // --- Nondeterministic choices ---------------------------------------------

  /// Total choice bits consumed per cycle by all nodes.
  unsigned totalChoices() const { return totalChoices_; }

  /// Fixes this cycle's choice assignment (verification). Cleared after edge().
  void setChoices(std::vector<bool> bits);

  /// Fallback provider used when no explicit assignment is set (simulation).
  void setChoiceProvider(std::function<bool(NodeId, unsigned)> fn);

  /// Read by nodes inside evalComb/clockEdge; stable within a cycle.
  bool choice(const Node& node, unsigned idx);

  // --- Protocol monitoring ---------------------------------------------------

  void setProtocolChecking(bool enabled) { protocolChecking_ = enabled; }
  void setThrowOnViolation(bool enabled) { throwOnViolation_ = enabled; }
  const std::vector<std::string>& protocolViolations() const { return violations_; }
  void clearProtocolViolations() { violations_.clear(); }

  // --- State snapshots (model checker) ---------------------------------------

  std::vector<std::uint8_t> packState() const;
  void unpackState(const std::vector<std::uint8_t>& bytes);

 private:
  void resizeSignals();
  void ensureChoiceMap();

  Netlist& netlist_;
  std::vector<ChannelSignals> signals_;
  std::vector<ChannelSignals> prevSignals_;
  std::uint64_t cycle_ = 0;
  bool havePrev_ = false;

  // Choice bookkeeping: per-node offset into the per-cycle assignment.
  std::vector<unsigned> choiceOffset_;  // indexed by NodeId
  unsigned totalChoices_ = 0;
  std::vector<bool> fixedChoices_;
  bool hasFixedChoices_ = false;
  std::vector<signed char> cachedChoices_;  // -1 unset, else 0/1
  std::function<bool(NodeId, unsigned)> choiceProvider_;

  bool protocolChecking_ = false;
  bool throwOnViolation_ = false;
  std::vector<std::string> violations_;
};

}  // namespace esl
