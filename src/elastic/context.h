// SimContext: the cycle-accurate evaluation kernel.
//
// Owns the channel signal arrays and drives the two-phase cycle:
//   1. settle(): combinational fixed-point (throws CombinationalCycleError if
//      the network oscillates, i.e. there is a combinational cycle in data or
//      control);
//   2. edge(): clockEdge() on every node, advancing sequential state.
//
// Two settle kernels are available:
//   * kSweep — the reference kernel: evalComb() over every node, sweep until
//     no signal changes anywhere;
//   * kEventDriven (default) — sparse worklist kernel: seeds the nodes whose
//     evaluation can differ from the previous settled cycle (everything with
//     sequential state or choice bits; all nodes after reset), then
//     re-evaluates only nodes whose adjacent channel signals actually changed,
//     using the netlist's channel→reader adjacency index. Signals are retained
//     across cycles, so untouched combinational regions are never re-visited.
//
// The edge phase is dirty-tracked to match: the event-driven settle maintains
// the set of channels that carry a token or anti-token ("hot" channels), and
// edge() clocks only nodes adjacent to an actual transfer/kill event plus the
// nodes whose EdgeActivity hint demands every cycle — O(active), not O(nodes).
// The full clockEdge sweep remains the reference path (sweep kernel, and any
// cycle whose signals were written outside the event kernel).
// setCrossCheck(true) runs both settle kernels every cycle and throws
// InternalError on any disagreement (the equivalence harness in
// tests/test_sim_kernel.cpp); its edge runs the full sweep while auditing the
// EdgeActivity declarations — a node the dirty-tracker would have skipped must
// leave its packState() bytes unchanged.
//
// The context also resolves per-cycle nondeterministic choice bits for
// environment nodes (random under simulation, enumerated under verification)
// and optionally monitors the SELF protocol properties of paper §3.1 on every
// channel (Retry+/Retry-, kill/stop exclusion, persistence).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "elastic/netlist.h"

namespace esl {

class SimContext {
 public:
  enum class SettleKernel {
    kSweep,        ///< dense fixed-point sweep over all nodes (reference)
    kEventDriven,  ///< sparse worklist driven by signal-change events
  };

  /// The netlist must outlive the context and is validated on construction.
  explicit SimContext(Netlist& netlist);

  Netlist& netlist() { return netlist_; }
  const Netlist& netlist() const { return netlist_; }

  /// Resets all node state and signals; cycle counter back to 0.
  void reset();

  /// Runs one full cycle: choices -> settle -> protocol check -> edge.
  void step();

  /// Phase pieces (the model checker drives them separately).
  void settle();
  void checkProtocol();
  void edge();

  std::uint64_t cycle() const { return cycle_; }

  // --- Settle kernel selection ----------------------------------------------

  void setKernel(SettleKernel kernel) { kernel_ = kernel; }
  SettleKernel kernel() const { return kernel_; }
  /// Run BOTH kernels each settle from the same pre-settle signals and throw
  /// InternalError on any per-channel disagreement.
  void setCrossCheck(bool enabled) { crossCheck_ = enabled; }
  bool crossCheck() const { return crossCheck_; }
  /// External code that writes channel signals directly (outside evalComb)
  /// must call this before the next settle() so the event-driven kernel
  /// re-seeds every node instead of trusting retained signals.
  void invalidateSignals() {
    needFullSeed_ = true;
    shadowValid_ = false;
    edgeTrackValid_ = false;
    sparseSeedValid_ = false;
  }

  ChannelSignals& sig(ChannelId ch) { return signals_.at(ch); }
  const ChannelSignals& sig(ChannelId ch) const { return signals_.at(ch); }
  /// Settled signals of the previous cycle. Maintained only while protocol
  /// checking is enabled (its sole consumer); stale otherwise.
  const ChannelSignals& prev(ChannelId ch) const { return prevSignals_.at(ch); }

  // --- Nondeterministic choices ---------------------------------------------

  /// Total choice bits consumed per cycle by all nodes.
  unsigned totalChoices() const { return totalChoices_; }

  /// Fixes this cycle's choice assignment (verification). Cleared after edge().
  void setChoices(std::vector<bool> bits);
  /// Copying variant for callers that replay one precomputed assignment many
  /// times (the model checker's combo enumeration): reuses the internal
  /// buffer's capacity instead of consuming the argument.
  void setChoicesFrom(const std::vector<bool>& bits);

  /// Fallback provider used when no explicit assignment is set (simulation).
  void setChoiceProvider(std::function<bool(NodeId, unsigned)> fn);

  /// Read by nodes inside evalComb/clockEdge; stable within a cycle.
  bool choice(const Node& node, unsigned idx);

  // --- Protocol monitoring ---------------------------------------------------

  void setProtocolChecking(bool enabled) { protocolChecking_ = enabled; }
  void setThrowOnViolation(bool enabled) { throwOnViolation_ = enabled; }
  const std::vector<std::string>& protocolViolations() const { return violations_; }
  void clearProtocolViolations() { violations_.clear(); }

  // --- State snapshots (model checker) ---------------------------------------

  std::vector<std::uint8_t> packState() const;
  /// Allocation-free variant: clears `out` but reuses its capacity. This is
  /// the model checker's per-transition fast path (one full-netlist snapshot
  /// per explored edge).
  void packStateInto(std::vector<std::uint8_t>& out) const;
  void unpackState(const std::vector<std::uint8_t>& bytes);

 private:
  void resizeSignals();
  void ensureChoiceMap();
  void ensureTopologyCache();
  void settleSweep();
  void settleEventDriven();
  void settleCrossChecked();
  void edgeSparse();
  void edgeFull();
  void edgeAudited();
  void edgeEpilogue();

  Netlist& netlist_;
  std::vector<ChannelSignals> signals_;
  std::vector<ChannelSignals> prevSignals_;
  std::uint64_t cycle_ = 0;
  bool havePrev_ = false;

  // Event-driven kernel state (scratch, reused across settles).
  SettleKernel kernel_ = SettleKernel::kEventDriven;
  bool crossCheck_ = false;
  bool needFullSeed_ = true;
  bool shadowValid_ = false;
  std::vector<ChannelSignals> shadow_;   ///< last propagated value per channel
  // Generation-stamped per-settle scratch (no O(capacity) clears per cycle).
  std::uint64_t settleGen_ = 0;
  std::vector<std::uint64_t> pendingGen_;  ///< == settleGen_ → in worklist
  std::vector<std::uint64_t> evalGen_;     ///< == settleGen_ → evalCount_ valid
  std::vector<std::uint32_t> evalCount_;   ///< per-settle budget (cycle guard)

  // Clock-edge dirty-tracking: hot channels (token or anti-token present in
  // the settled signals) feed the event scan; only maintained by the
  // event-driven settle, so edgeTrackValid_ gates the sparse path.
  bool edgeTrackValid_ = false;
  std::vector<ChannelId> hotChannels_;     ///< compacted lazily in edgeSparse()
  std::vector<std::uint8_t> hotInList_;    ///< membership flag per channel
  std::uint64_t edgeGen_ = 0;              ///< dedup stamp for edgeDirty_
  std::vector<std::uint64_t> edgeMarkGen_;  ///< == edgeGen_ → already queued
  std::vector<NodeId> edgeDirty_;          ///< per-edge scratch

  // Sparse settle seeding: after a dirty-tracked edge, only the nodes that
  // were actually clocked can have changed state, so the next settle seeds
  // those plus the per-cycle readers instead of every stateful node.
  bool sparseSeedValid_ = false;
  std::vector<NodeId> prevClocked_;  ///< stateful nodes clocked at last edge

  // Per-topology caches (live ids, seed set, channel persistence), refreshed
  // whenever the netlist's topologyVersion() moves.
  std::uint64_t topologySeen_ = ~std::uint64_t{0};
  std::vector<NodeId> liveNodes_;
  std::vector<NodeId> seedNodes_;            ///< live nodes not kCombPure
  std::vector<NodeId> cycleSeedNodes_;       ///< per-cycle readers + unaudited
  std::vector<NodeId> alwaysEdgeNodes_;      ///< live nodes with kEveryCycle
  std::vector<std::uint8_t> nodeUnaudited_;  ///< kUnaudited flag per node
  std::vector<std::uint8_t> nodeStateDriven_;  ///< kStateDriven flag per node
  std::vector<std::uint8_t> nodeEdgeOnEvents_;  ///< kOnEvents flag per node
  std::vector<std::uint8_t> nodeStateful_;      ///< !kCombPure flag per node
  std::vector<ChannelId> liveChannels_;
  std::vector<bool> channelPersistent_;

  // Choice bookkeeping: per-node offset into the per-cycle assignment.
  std::vector<unsigned> choiceOffset_;  // indexed by NodeId
  unsigned totalChoices_ = 0;
  std::vector<bool> fixedChoices_;
  bool hasFixedChoices_ = false;
  std::vector<signed char> cachedChoices_;  // -1 unset, else 0/1
  std::function<bool(NodeId, unsigned)> choiceProvider_;

  bool protocolChecking_ = false;
  bool throwOnViolation_ = false;
  std::vector<std::string> violations_;
};

}  // namespace esl
