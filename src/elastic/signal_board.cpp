#include "elastic/signal_board.h"

#include <atomic>

#include "elastic/netlist.h"

namespace esl {

namespace {
constexpr std::size_t kGroupSlots = 64;

std::uint32_t alignUp(std::uint32_t n) {
  return static_cast<std::uint32_t>((n + kGroupSlots - 1) & ~(kGroupSlots - 1));
}
}  // namespace

void SignalBoard::atomicSetBit(std::uint64_t* w, std::uint64_t m, bool v) {
  // Back-plane words are shared between boundary channels staged by different
  // shards; RMW must be atomic. Visibility across rounds comes from the
  // executor barrier, so relaxed ordering suffices.
  std::atomic_ref<std::uint64_t> a(*w);
  if (v)
    a.fetch_or(m, std::memory_order_relaxed);
  else
    a.fetch_and(~m, std::memory_order_relaxed);
}

void SignalBoard::layout(const Netlist& nl, const ShardPlan* plan) {
  // Process-wide generation stamp: every (re)layout gets a unique identity so
  // address caches (the compiled Program) can detect slot permutations that
  // happen without a topologyVersion bump (shard-count changes).
  static std::atomic<std::uint64_t> nextLayoutGeneration{1};
  layoutGeneration_ = nextLayoutGeneration.fetch_add(1, std::memory_order_relaxed);

  const unsigned shards = (plan != nullptr && plan->shards > 1) ? plan->shards : 1;

  slotOf_.assign(nl.channelCapacity(), kNoSlot);
  // Bucket live channels: interior per home shard, cross-shard to boundary.
  std::vector<std::vector<ChannelId>> buckets(shards + 1);
  for (const ChannelId ch : nl.channelIds()) {
    const Channel& c = nl.channel(ch);
    // Arena sizing depends on the recorded width; audit it against the
    // endpoint ports so post-connect width edits cannot corrupt payloads.
    ESL_CHECK(nl.node(c.producer).outputWidth(c.producerPort) == c.width &&
                  nl.node(c.consumer).inputWidth(c.consumerPort) == c.width,
              "SignalBoard: channel '" + c.name +
                  "' width disagrees with its endpoint ports (post-connect "
                  "width edit?)");
    unsigned home = shards;  // boundary
    if (shards == 1)
      home = 0;
    else if (plan->nodeShard[c.producer] == plan->nodeShard[c.consumer])
      home = plan->nodeShard[c.producer];
    buckets[home].push_back(ch);
  }

  shardGroupLo_.assign(shards, 0);
  shardGroupHi_.assign(shards, 0);
  std::uint32_t cur = 0;
  chOfSlot_.clear();
  slotWidth_.clear();
  slotProducer_.clear();
  slotConsumer_.clear();
  words_.clear();
  spill_.clear();
  dataOff_.clear();

  const auto assignSlot = [&](ChannelId ch) {
    const Channel& c = nl.channel(ch);
    slotOf_[ch] = cur;
    chOfSlot_.push_back(ch);
    slotWidth_.push_back(c.width);
    slotProducer_.push_back(c.producer);
    slotConsumer_.push_back(c.consumer);
    if (c.width == 0) {
      dataOff_.push_back(kNoSlot);
    } else if (c.width <= 64) {
      dataOff_.push_back(static_cast<std::uint32_t>(words_.size()));
      words_.push_back(0);
    } else {
      dataOff_.push_back(static_cast<std::uint32_t>(spill_.size()) | kWideFlag);
      spill_.emplace_back(c.width);
    }
    ++cur;
  };
  const auto padToGroup = [&] {
    while (cur != alignUp(cur)) {
      chOfSlot_.push_back(kNoChannel);
      slotWidth_.push_back(0);
      slotProducer_.push_back(kNoNode);
      slotConsumer_.push_back(kNoNode);
      dataOff_.push_back(kNoSlot);
      ++cur;
    }
  };

  for (unsigned s = 0; s < shards; ++s) {
    shardGroupLo_[s] = cur / kGroupSlots;
    for (const ChannelId ch : buckets[s]) assignSlot(ch);
    padToGroup();
    shardGroupHi_[s] = cur / kGroupSlots;
  }
  boundaryBase_ = cur;
  backWordBase_ = words_.size();
  backSpillBase_ = spill_.size();
  for (const ChannelId ch : buckets[shards]) assignSlot(ch);
  padToGroup();
  slotCount_ = cur;

  ctrl_.assign(slotCount_ / kGroupSlots * 4, 0);
  changed_.assign(slotCount_ / kGroupSlots, 0);
  backGroupBase_ = groupBase(boundaryBase_);
  ctrlBack_.assign(ctrl_.size() - backGroupBase_, 0);
  wordsBack_.assign(words_.begin() + static_cast<std::ptrdiff_t>(backWordBase_),
                    words_.end());
  spillBack_.assign(spill_.begin() + static_cast<std::ptrdiff_t>(backSpillBase_),
                    spill_.end());
  stagingActive_ = false;
}

void SignalBoard::adoptValuesFrom(const SignalBoard& old) {
  for (std::uint32_t slot = 0; slot < slotCount_; ++slot) {
    const ChannelId ch = chOfSlot_[slot];
    if (ch == kNoChannel || ch >= old.slotOf_.size()) continue;
    const std::uint32_t oldSlot = old.slotOf_[ch];
    if (oldSlot == kNoSlot || old.slotWidth_[oldSlot] != slotWidth_[slot]) continue;
    for (unsigned p = 0; p < 4; ++p)
      plainSetBit(&ctrl_[groupBase(slot) + p], std::uint64_t{1} << (slot & 63),
                  old.bitAt(oldSlot, static_cast<Plane>(p)));
    if (dataOff_[slot] != kNoSlot) setDataAt(slot, old.dataAt(oldSlot));
  }
}

void SignalBoard::setDataAt(std::uint32_t slot, const BitVec& v) {
  ESL_CHECK(v.width() == slotWidth_[slot], "SignalBoard: payload width mismatch");
  const std::uint32_t off = dataOff_[slot];
  if (off == kNoSlot) return;  // zero-width control token
  const bool staged = stagingActive_ && slot >= boundaryBase_;
  if (off & kWideFlag) {
    BitVec& dst = staged ? spillBack_[(off & ~kWideFlag) - backSpillBase_]
                         : spill_[off & ~kWideFlag];
    if (dst == v) return;
    dst = v;
  } else {
    std::uint64_t& w = staged ? wordsBack_[off - backWordBase_] : words_[off];
    const std::uint64_t nv = v.toUint64();
    if (w == nv) return;
    w = nv;
  }
  if (!staged) changed_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
}

void Sig::setDataFrom(const ConstSig& src) {
  // Same-width payload routing (fork branches, mux selection) without
  // materializing a BitVec: word/spill copy through the arenas. Staging only
  // redirects *boundary* writes, so the fast path stays valid for the
  // interior copies that dominate under a 64-aligned shard layout.
  const SignalBoard& sb = src.board();
  const std::uint32_t s = src.slot();
  ESL_CHECK(sb.widthAtSlot(s) == mb_->widthAtSlot(slot_),
            "Sig::setDataFrom: width mismatch");
  if (mb_->widthAtSlot(slot_) == 0) return;
  if (&sb == mb_ && !(mb_->stagingActive() && mb_->inBoundary(slot_)))
    mb_->copyDataFromSlotAt(slot_, s);
  else
    setData(sb.dataAt(s));
}

void SignalBoard::copyDataFromSlotAt(std::uint32_t dst, std::uint32_t src) {
  // Interior-destination fast path only (see Sig::setDataFrom): the write
  // lands in the front arena and is change-tracked like setDataAt; the
  // source always reads the stable front values.
  const std::uint32_t doff = dataOff_[dst];
  const std::uint32_t soff = dataOff_[src];
  if (doff == kNoSlot) return;
  if (doff & kWideFlag) {
    BitVec& out = spill_[doff & ~kWideFlag];
    const BitVec& in = spill_[soff & ~kWideFlag];
    if (out == in) return;
    out = in;
  } else {
    std::uint64_t& out = words_[doff];
    if (out == words_[soff]) return;
    out = words_[soff];
  }
  changed_[dst >> 6] |= std::uint64_t{1} << (dst & 63);
}

void SignalBoard::clearValues() {
  std::fill(ctrl_.begin(), ctrl_.end(), 0);
  std::fill(words_.begin(), words_.end(), 0);
  for (std::size_t i = 0; i < spill_.size(); ++i)
    spill_[i] = BitVec(spill_[i].width());
  std::fill(changed_.begin(), changed_.end(), 0);
}

void SignalBoard::copyValuesFrom(const SignalBoard& other) {
  ctrl_ = other.ctrl_;
  words_ = other.words_;
  spill_.resize(other.spill_.size());
  for (std::size_t i = 0; i < spill_.size(); ++i) spill_[i] = other.spill_[i];
}

bool SignalBoard::sameValuesAs(const SignalBoard& other) const {
  return ctrl_ == other.ctrl_ && words_ == other.words_ && spill_ == other.spill_;
}

void SignalBoard::setStagingActive(bool active) {
  if (active) {
    // Re-seed the back copy from the front: between rounds the invariant
    // back == front holds for every synced slot, but a sweep settle or
    // direct write may have moved the front since the last sharded settle.
    std::copy(ctrl_.begin() + static_cast<std::ptrdiff_t>(backGroupBase_),
              ctrl_.end(), ctrlBack_.begin());
    std::copy(words_.begin() + static_cast<std::ptrdiff_t>(backWordBase_),
              words_.end(), wordsBack_.begin());
    for (std::size_t i = 0; i < spillBack_.size(); ++i)
      spillBack_[i] = spill_[backSpillBase_ + i];
  }
  stagingActive_ = active;
}

bool SignalBoard::syncBoundarySlot(std::uint32_t slot) {
  const std::size_t g = groupBase(slot);
  const std::size_t bg = g - backGroupBase_;
  const std::uint64_t m = std::uint64_t{1} << (slot & 63);
  bool changed = false;
  for (unsigned p = 0; p < 4; ++p) {
    if ((ctrl_[g + p] ^ ctrlBack_[bg + p]) & m) {
      ctrl_[g + p] = (ctrl_[g + p] & ~m) | (ctrlBack_[bg + p] & m);
      changed = true;
    }
  }
  const std::uint32_t off = dataOff_[slot];
  if (off != kNoSlot) {
    if (off & kWideFlag) {
      BitVec& front = spill_[off & ~kWideFlag];
      const BitVec& back = spillBack_[(off & ~kWideFlag) - backSpillBase_];
      if (!(front == back)) {
        front = back;
        changed = true;
      }
    } else {
      std::uint64_t& front = words_[off];
      const std::uint64_t back = wordsBack_[off - backWordBase_];
      if (front != back) {
        front = back;
        changed = true;
      }
    }
  }
  return changed;
}

}  // namespace esl
