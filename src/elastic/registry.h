// NodeRegistry + NetlistSpec: the data-driven netlist IR.
//
// The paper's toolkit is driven by abstract netlists that are loaded,
// transformed and emitted under script control (§5). This header makes every
// node kind constructible from data instead of only from typed C++ ctors:
//
//  * Registry maps kind names ("eb", "fork", "func", "shared", ...) to
//    factories taking a Params attribute list, and — for behaviour carried by
//    C++ closures (function blocks, token generators, gates, schedulers) —
//    maps *names* to parameterized implementations, so a FuncNode built from
//    `fn=addk fn.k=7` is bit-identical to one built in C++ through the same
//    catalog entry.
//  * NetlistSpec is the serializable value form of a whole netlist: node
//    specs plus channel specs. It replaces the opaque verify::NetlistRecipe
//    closure as the thing ModelChecker lanes, SimFarm sweeps and the shell's
//    save/load/undo consume — a spec can be named, printed (src/frontend),
//    diffed and handed to a tool; a closure cannot.
//
// C++ builders that want their netlists serializable construct through the
// make*Node helpers below (the construction *is* a registry call, so parsing
// the printed form rebuilds the identical netlist). Kinds whose parameters
// are recoverable from getters alone (buffers, forks, muxes, nondet
// environments) are derivable even when built directly via Netlist::make.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "elastic/endpoints.h"
#include "elastic/func.h"
#include "elastic/netlist.h"
#include "elastic/params.h"
#include "elastic/vlu.h"
#include "sched/scheduler.h"

namespace esl {

class SharedModule;

/// One node of the IR: `node <kind> <name> key=value...;`
struct NodeSpec {
  std::string kind;
  std::string name;
  Params params;
};

/// One channel of the IR: `channel <producer>.out<P> -> <consumer>.in<Q>;`
struct ChannelSpec {
  std::string producer;
  unsigned producerPort = 0;
  std::string consumer;
  unsigned consumerPort = 0;
  std::string name;  ///< optional; producer-derived default when empty
};

/// Serializable whole-netlist value. Building is deterministic: equal specs
/// produce bit-identical netlists (same ids, same initial state), which is
/// exactly the contract parallel model-checker lanes need.
struct NetlistSpec {
  std::vector<NodeSpec> nodes;
  std::vector<ChannelSpec> channels;

  bool empty() const { return nodes.empty(); }

  /// Constructs and validates the netlist (throws NetlistError on unknown
  /// kinds/attributes, duplicate names, bad wiring).
  Netlist build() const;

  /// Captures a live netlist as data. Throws NetlistError if some node is
  /// neither registry-built nor derivable (e.g. a raw C++ lambda FuncNode).
  static NetlistSpec fromNetlist(const Netlist& nl);
};

/// Port-width signature handed to a named-function factory.
struct FnSig {
  std::vector<unsigned> inWidths;
  unsigned outWidth = 0;
};

class Registry {
 public:
  /// Builds a node inside the netlist from `name` + attributes.
  using NodeFactory =
      std::function<Node&(Netlist&, const std::string& name, const Params&)>;
  /// Recovers the attribute list of a node built without buildParams();
  /// throws NetlistError when the kind cannot be derived from getters.
  using NodeDescriber = std::function<Params(const Node&)>;

  /// `prefix` scopes the factory's attribute namespace (e.g. "fn."): a
  /// factory for `fn=addk` reads its constant from key "fn.k".
  using FnFactory = std::function<CombFn(const FnSig&, const Params&,
                                         const std::string& prefix)>;
  using GenFactory = std::function<TokenSource::Generator(
      unsigned width, const Params&, const std::string& prefix)>;
  using GateFactory =
      std::function<TokenSource::Gate(const Params&, const std::string& prefix)>;
  using SchedFactory = std::function<std::unique_ptr<sched::Scheduler>(
      unsigned channels, const Params&, const std::string& prefix)>;

  /// Global instance, pre-populated with the core kinds and catalogs.
  /// Registration is not thread-safe; lookups after registration are.
  static Registry& instance();

  void addKind(const std::string& kind, NodeFactory factory,
               NodeDescriber describer = {});
  void addFn(const std::string& name, FnFactory factory);
  void addGen(const std::string& name, GenFactory factory);
  void addGate(const std::string& name, GateFactory factory);
  void addSched(const std::string& name, SchedFactory factory);

  bool hasKind(const std::string& kind) const;
  std::vector<std::string> kindNames() const;

  /// Constructs the node, stores the attribute list on it (verbatim — the
  /// print->parse->print fixpoint needs no canonical form) and rejects any
  /// attribute the factory never consumed.
  Node& makeNode(Netlist& nl, const NodeSpec& spec) const;

  /// (kind, name, attributes) of a live node: its stored buildParams when
  /// registry-built, the kind's describer otherwise.
  NodeSpec describeNode(const Node& node) const;

  /// Resolves the named component under `key` (e.g. key="fn" reads `fn=` for
  /// the name and `fn.*` for its parameters).
  CombFn makeFn(const FnSig& sig, const Params& p, const std::string& key) const;
  TokenSource::Generator makeGen(unsigned width, const Params& p,
                                 const std::string& key) const;
  /// Null gate when `key` is absent.
  TokenSource::Gate makeGate(const Params& p, const std::string& key) const;
  std::unique_ptr<sched::Scheduler> makeSched(unsigned channels, const Params& p,
                                              const std::string& key) const;

  /// Writes `key=`/`key.*` attributes describing a live scheduler; false for
  /// policies that close over C++ state (e.g. oracles).
  static bool describeScheduler(const sched::Scheduler& s, Params& out,
                                const std::string& key);

 private:
  Registry();

  struct Kind {
    NodeFactory factory;
    NodeDescriber describer;
  };
  std::map<std::string, Kind> kinds_;
  std::map<std::string, FnFactory> fns_;
  std::map<std::string, GenFactory> gens_;
  std::map<std::string, GateFactory> gates_;
  std::map<std::string, SchedFactory> scheds_;
};

/// Adapts an n-ary catalog CombFn to the unary shape SharedModule/StallingVLU
/// consume, reusing one argument vector per node instead of allocating per
/// token (nodes are never shared across threads).
std::function<BitVec(const BitVec&)> unaryAdapter(CombFn fn);

/// Throws NetlistError unless `name` is a representable IR token: nonempty
/// and `[A-Za-z0-9._@-]` only (channel names, attribute values).
void validateIrToken(const std::string& name, const std::string& what);

/// validateIrToken plus the node-name rule: must not end in `.out<digits>` /
/// `.in<digits>`, which would be ambiguous with channel endpoint references.
void validateIrName(const std::string& name, const std::string& what);

// ---------------------------------------------------------------------------
// IR-aware construction helpers for C++ builders
// ---------------------------------------------------------------------------
//
// These assemble the NodeSpec and construct THROUGH the registry, so the node
// both behaves identically to its parsed form and carries the attributes
// serialization needs. `fnParams` etc. take unprefixed keys ("k", "salt");
// the helper scopes them.

FuncNode& makeFuncNode(Netlist& nl, const std::string& name,
                       const std::vector<unsigned>& inWidths, unsigned outWidth,
                       const std::string& fnName, const Params& fnParams = {},
                       logic::Cost cost = {1.0, 1.0}, const std::string& role = {});

TokenSource& makeSourceNode(Netlist& nl, const std::string& name, unsigned width,
                            const std::string& genName, const Params& genParams = {},
                            const std::string& gateName = {},
                            const Params& gateParams = {});

SharedModule& makeSharedNode(Netlist& nl, const std::string& name, unsigned channels,
                             unsigned inWidth, unsigned outWidth,
                             const std::string& fnName, const Params& fnParams,
                             const std::string& schedName, const Params& schedParams,
                             logic::Cost fnCost = {1.0, 1.0});

StallingVLU& makeVluNode(Netlist& nl, const std::string& name, unsigned inWidth,
                         unsigned outWidth, const std::string& exactName,
                         const Params& exactParams, const std::string& errName,
                         const Params& errParams, logic::Cost approxCost,
                         logic::Cost exactCost, logic::Cost errCost);

}  // namespace esl
