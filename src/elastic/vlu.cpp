#include "elastic/vlu.h"

namespace esl {

StallingVLU::StallingVLU(std::string name, unsigned inWidth, unsigned outWidth,
                         UnaryFn exact, ErrFn err, logic::Cost approxCost,
                         logic::Cost exactCost, logic::Cost errCost)
    : Node(std::move(name)),
      inWidth_(inWidth),
      outWidth_(outWidth),
      exact_(std::move(exact)),
      err_(std::move(err)),
      approxCost_(approxCost),
      exactCost_(exactCost),
      errCost_(errCost) {
  ESL_CHECK(static_cast<bool>(exact_) && static_cast<bool>(err_),
            "StallingVLU: exact and err functions required");
  declareInput(inWidth);
  declareOutput(outWidth);
}

void StallingVLU::reset() {
  pending_.reset();
  result_.reset();
  completed_ = 0;
  stalls_ = 0;
}

void StallingVLU::evalComb(SimContext& ctx) {
  Sig in = ctx.sig(input(0));
  Sig out = ctx.sig(output(0));

  const bool haveResult = result_.has_value();
  out.setVf(haveResult);
  if (haveResult) out.setData(*result_);
  out.setSb(!haveResult);  // anti-token consumed only against a result

  const bool leave = haveResult && (!out.sf() || out.vb());
  const bool canAccept = !pending_ && (!haveResult || leave);
  in.setSf(!canAccept);
  in.setVb(false);
}

void StallingVLU::clockEdge(SimContext& ctx) {
  const ConstSig in = ctx.sig(input(0));
  const ConstSig out = ctx.sig(output(0));

  if (killEvent(out) || fwdTransfer(out)) {
    if (fwdTransfer(out)) ++completed_;
    result_.reset();
  }

  if (pending_) {
    // Second cycle of a mispredicted operand: F_exact finishes the job.
    ESL_ASSERT(!result_.has_value());
    result_ = exact_(*pending_);
    pending_.reset();
  } else if (fwdTransfer(in)) {
    const BitVec x = in.data();
    if (err_(x)) {
      pending_ = x;  // bubble next cycle, sender stalled
      ++stalls_;
    } else {
      result_ = exact_(x);  // approx == exact when no error is flagged
    }
  }
}

void StallingVLU::packState(StateWriter& w) const {
  w.writeBool(pending_.has_value());
  if (pending_) w.writeBitVec(*pending_);
  w.writeBool(result_.has_value());
  if (result_) w.writeBitVec(*result_);
}

void StallingVLU::unpackState(StateReader& r) {
  pending_ = r.readBool() ? std::optional<BitVec>(r.readBitVec()) : std::nullopt;
  result_ = r.readBool() ? std::optional<BitVec>(r.readBitVec()) : std::nullopt;
}

logic::Cost StallingVLU::cost() const {
  // Both function copies, the error detector, the output register and the
  // gating control all live inside the unit.
  return approxCost_ + exactCost_ + errCost_ + logic::flopCost(outWidth_) +
         logic::controlGatingCost();
}

void StallingVLU::timing(TimingModel& m) const {
  m.launch({output(0), NetKind::kFwd}, 1.0);
  // The §5.1 critical path: F_err computed from the incoming operand gates
  // the controller (stop to the sender) through the global enable network.
  m.arc({input(0), NetKind::kFwd}, {input(0), NetKind::kBwd},
        errCost_.delay + logic::controlGatingCost().delay);
  m.arc({output(0), NetKind::kBwd}, {input(0), NetKind::kBwd}, 1.0);
  // Internal datapath into the result register: F_approx in one cycle, or
  // F_exact spread over two (telescopic-unit structure).
  m.capture({input(0), NetKind::kFwd},
            std::max(approxCost_.delay, exactCost_.delay / 2.0));
}

}  // namespace esl

namespace esl {

void StallingVLU::flowEdges(std::vector<FlowEdge>& out) const {
  // Optimistic single-cycle latency (the common, error-free case).
  out.push_back({input(0), output(0), 1.0, 0.0});
}

}  // namespace esl
