#include "elastic/shared.h"

namespace esl {

SharedModule::SharedModule(std::string name, unsigned channels, unsigned inWidth,
                           unsigned outWidth, SharedFn fn,
                           std::unique_ptr<sched::Scheduler> scheduler,
                           logic::Cost fnCost)
    : Node(std::move(name)),
      channels_(channels),
      inWidth_(inWidth),
      outWidth_(outWidth),
      fn_(std::move(fn)),
      scheduler_(std::move(scheduler)),
      fnCost_(fnCost) {
  ESL_CHECK(channels_ >= 2, "SharedModule: need at least two channels");
  ESL_CHECK(static_cast<bool>(fn_), "SharedModule: function required");
  ESL_CHECK(scheduler_ != nullptr, "SharedModule: scheduler required");
  ESL_CHECK(scheduler_->channels() == channels_,
            "SharedModule: scheduler arity mismatch");
  for (unsigned i = 0; i < channels_; ++i) declareInput(inWidth_);
  for (unsigned i = 0; i < channels_; ++i) declareOutput(outWidth_);
  served_.assign(channels_, 0);
}

void SharedModule::reset() {
  scheduler_->reset();
  served_.assign(channels_, 0);
  demandCycles_ = 0;
}

unsigned SharedModule::predictNow(SimContext& ctx) {
  validScratch_.resize(channels_);
  for (unsigned i = 0; i < channels_; ++i) validScratch_[i] = ctx.sig(input(i)).vf();
  const sched::ChoiceReader reader = [this, &ctx](unsigned b) {
    return ctx.choice(*this, b);
  };
  const unsigned p = scheduler_->predict(validScratch_, reader);
  ESL_CHECK(p < channels_, "SharedModule: scheduler predicted out of range");
  lastPrediction_ = p;
  return p;
}

void SharedModule::evalComb(SimContext& ctx) {
  const unsigned sched = predictNow(ctx);
  for (unsigned i = 0; i < channels_; ++i) {
    Sig in = ctx.sig(input(i));
    Sig out = ctx.sig(output(i));
    const bool routed = i == sched;

    const bool inVf = in.vf();
    const bool outVf = routed && inVf;
    out.setVf(outVf);
    if (outVf) {
      if (!memoValid_ || !in.dataEquals(memoIn_)) {
        memoIn_ = in.data();
        memoOut_ = fn_(memoIn_);
        ESL_CHECK(memoOut_.width() == outWidth_,
                  "SharedModule '" + name() + "': function returned wrong width");
        memoValid_ = true;
      }
      out.setData(memoOut_);
    }

    // Anti-tokens pass straight through the controller (Fig. 4b): the module
    // is combinational, so the token seen at out_i *is* the token at in_i and
    // a kill annihilates it at both channel views at once.
    const bool anti = out.vb();
    in.setVb(anti);
    out.setSb(!inVf && in.sb());

    // Routed channel sees the downstream stop; others are stopped unless
    // being killed ("stops the other channel (unless it is killed)").
    in.setSf(!anti && (routed ? out.sf() : true));
  }
}

void SharedModule::clockEdge(SimContext& ctx) {
  // evalComb ran (at least once) on the settled signals, so lastPrediction_
  // is the settled prediction; predict() is pure, no need to recompute it.
  const unsigned sched = lastPrediction_;
  sched::Observation& obs = obsScratch_;
  obs.predicted = sched;
  obs.valid.resize(channels_);
  obs.demand.resize(channels_);
  obs.served.resize(channels_);
  obs.killed.resize(channels_);
  bool anyDemand = false;
  for (unsigned i = 0; i < channels_; ++i) {
    const ConstSig in = ctx.sig(input(i));
    const ConstSig out = ctx.sig(output(i));
    obs.valid[i] = in.vf();
    obs.demand[i] = out.sf() && !out.vf();  // selected-but-empty at the EE mux
    obs.served[i] = fwdTransfer(out);
    obs.killed[i] = killEvent(in);
    if (obs.served[i]) ++served_[i];
    anyDemand = anyDemand || obs.demand[i];
  }
  if (anyDemand) ++demandCycles_;
  scheduler_->observe(obs);
}

void SharedModule::packState(StateWriter& w) const { scheduler_->packState(w); }

void SharedModule::unpackState(StateReader& r) { scheduler_->unpackState(r); }

unsigned SharedModule::choiceCount() const { return scheduler_->choiceBits(); }

logic::Cost SharedModule::cost() const {
  return fnCost_ + logic::muxCost(channels_, inWidth_) +
         logic::sharedModuleCost(channels_);
}

void SharedModule::timing(TimingModel& m) const {
  const double path = logic::muxCost(channels_, inWidth_).delay + fnCost_.delay;
  for (unsigned i = 0; i < channels_; ++i) {
    m.arc({input(i), NetKind::kFwd}, {output(i), NetKind::kFwd}, path);
    m.arc({output(i), NetKind::kBwd}, {input(i), NetKind::kBwd}, 1.0);
    m.arc({input(i), NetKind::kFwd}, {output(i), NetKind::kBwd}, 1.0);
  }
}

std::uint64_t SharedModule::totalServed() const {
  std::uint64_t total = 0;
  for (const std::uint64_t s : served_) total += s;
  return total;
}

}  // namespace esl

namespace esl {

void SharedModule::flowEdges(std::vector<FlowEdge>& out) const {
  for (unsigned i = 0; i < channels_; ++i)
    out.push_back({input(i), output(i), 0.0, 0.0});
}

}  // namespace esl
