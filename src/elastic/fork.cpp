#include "elastic/fork.h"

namespace esl {

ForkNode::ForkNode(std::string name, unsigned width, unsigned branches)
    : Node(std::move(name)), width_(width) {
  ESL_CHECK(branches >= 2, "ForkNode: need at least two branches");
  declareInput(width);
  for (unsigned i = 0; i < branches; ++i) declareOutput(width);
  done_.assign(branches, false);
}

void ForkNode::reset() { done_.assign(branches(), false); }

bool ForkNode::branchDoneNow(SimContext& ctx, unsigned i, bool inVf) const {
  if (done_[i]) return true;
  // The branch's vf is OUR driven value (inVf && !done_[i]); recompute it
  // instead of reading it back (the accessor contract forbids read-after-write
  // of self-driven fields, and under sharding the read would be stale). The
  // consumer-driven sf/vb are read normally: done = kill or forward transfer
  // = vf && (vb || !sf).
  const ConstSig br = ctx.sig(output(i));
  return inVf && (br.vb() || !br.sf());
}

void ForkNode::evalComb(SimContext& ctx) {
  Sig in = ctx.sig(input(0));
  const bool inVf = in.vf();

  for (unsigned i = 0; i < branches(); ++i) {
    Sig br = ctx.sig(output(i));
    const bool pending = inVf && !done_[i];
    br.setVf(pending);
    if (pending) br.setDataFrom(in);
    // An anti-token on the branch is only consumable against a pending copy;
    // otherwise it waits downstream for the copy to materialize.
    br.setSb(!pending);
  }

  bool allDone = inVf;
  for (unsigned i = 0; i < branches() && allDone; ++i)
    allDone = branchDoneNow(ctx, i, inVf);
  in.setSf(!allDone);
  in.setVb(false);
}

void ForkNode::clockEdge(SimContext& ctx) {
  const bool inVf = ctx.sig(input(0)).vf();
  if (!inVf) return;
  bool all = true;
  std::vector<bool> next(branches());
  for (unsigned i = 0; i < branches(); ++i) {
    next[i] = branchDoneNow(ctx, i, inVf);
    all = all && next[i];
  }
  done_ = all ? std::vector<bool>(branches(), false) : next;
}

void ForkNode::packState(StateWriter& w) const {
  for (bool b : done_) w.writeBool(b);
}

void ForkNode::unpackState(StateReader& r) {
  for (unsigned i = 0; i < done_.size(); ++i) done_[i] = r.readBool();
}

logic::Cost ForkNode::cost() const { return logic::forkJoinCost(branches()); }

void ForkNode::timing(TimingModel& m) const {
  for (unsigned i = 0; i < branches(); ++i) {
    m.arc({input(0), NetKind::kFwd}, {output(i), NetKind::kFwd}, 1.0);
    m.arc({output(i), NetKind::kBwd}, {input(0), NetKind::kBwd}, 1.0);
  }
}

}  // namespace esl
