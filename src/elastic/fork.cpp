#include "elastic/fork.h"

namespace esl {

ForkNode::ForkNode(std::string name, unsigned width, unsigned branches)
    : Node(std::move(name)), width_(width) {
  ESL_CHECK(branches >= 2, "ForkNode: need at least two branches");
  declareInput(width);
  for (unsigned i = 0; i < branches; ++i) declareOutput(width);
  done_.assign(branches, false);
}

void ForkNode::reset() { done_.assign(branches(), false); }

bool ForkNode::branchDoneNow(SimContext& ctx, unsigned i) const {
  if (done_[i]) return true;
  const ChannelSignals& br = ctx.sig(output(i));
  return killEvent(br) || fwdTransfer(br);
}

void ForkNode::evalComb(SimContext& ctx) {
  ChannelSignals& in = ctx.sig(input(0));

  for (unsigned i = 0; i < branches(); ++i) {
    ChannelSignals& br = ctx.sig(output(i));
    const bool pending = in.vf && !done_[i];
    br.vf = pending;
    if (pending) br.data = in.data;
    // An anti-token on the branch is only consumable against a pending copy;
    // otherwise it waits downstream for the copy to materialize.
    br.sb = !pending;
  }

  bool allDone = in.vf;
  for (unsigned i = 0; i < branches() && allDone; ++i)
    allDone = branchDoneNow(ctx, i);
  in.sf = !allDone;
  in.vb = false;
}

void ForkNode::clockEdge(SimContext& ctx) {
  const ChannelSignals in = ctx.sig(input(0));
  if (!in.vf) return;
  bool all = true;
  std::vector<bool> next(branches());
  for (unsigned i = 0; i < branches(); ++i) {
    next[i] = branchDoneNow(ctx, i);
    all = all && next[i];
  }
  done_ = all ? std::vector<bool>(branches(), false) : next;
}

void ForkNode::packState(StateWriter& w) const {
  for (bool b : done_) w.writeBool(b);
}

void ForkNode::unpackState(StateReader& r) {
  for (unsigned i = 0; i < done_.size(); ++i) done_[i] = r.readBool();
}

logic::Cost ForkNode::cost() const { return logic::forkJoinCost(branches()); }

void ForkNode::timing(TimingModel& m) const {
  for (unsigned i = 0; i < branches(); ++i) {
    m.arc({input(0), NetKind::kFwd}, {output(i), NetKind::kFwd}, 1.0);
    m.arc({output(i), NetKind::kBwd}, {input(0), NetKind::kBwd}, 1.0);
  }
}

}  // namespace esl
