// Shared speculative module (paper §4.1, Fig. 4).
//
// k input channels compete for one copy of a combinational function F. Each
// cycle the scheduler predicts a channel; the controller forwards the
// predicted channel's token through F to the matching output channel
// (V+out_i = (sched==i) ∧ V+in_i), stops the other channels unless they are
// being killed, and passes anti-tokens from each output back to its input
// combinationally. The datapath is an input multiplexer followed by F
// (Fig. 4a), so sharing adds one mux delay to the function path.
//
// The scheduler observes — at the clock edge only, keeping it out of the
// combinational critical path (§4.1.2) — which channels were valid, served,
// killed, and *demanded* (selected-but-empty stop from the early-evaluation
// multiplexer), and corrects its prediction on misprediction.
#pragma once

#include <memory>

#include "elastic/context.h"
#include "elastic/node.h"
#include "sched/scheduler.h"

namespace esl {

/// Unary function applied by the shared datapath.
using SharedFn = std::function<BitVec(const BitVec&)>;

class SharedModule : public Node {
 public:
  SharedModule(std::string name, unsigned channels, unsigned inWidth,
               unsigned outWidth, SharedFn fn,
               std::unique_ptr<sched::Scheduler> scheduler,
               logic::Cost fnCost = {1.0, 1.0});

  void reset() override;
  void evalComb(SimContext& ctx) override;
  EvalPurity evalPurity() const override { return EvalPurity::kStateful; }
  void clockEdge(SimContext& ctx) override;
  void packState(StateWriter& w) const override;
  void unpackState(StateReader& r) override;
  unsigned choiceCount() const override;
  logic::Cost cost() const override;
  void timing(TimingModel& m) const override;
  void flowEdges(std::vector<FlowEdge>& out) const override;
  /// §4.2: after a retry the scheduler may change its prediction, so shared
  /// module outputs are exempt from Retry+ persistence.
  Persistence outputPersistence(unsigned) const override {
    return Persistence::kNonPersistent;
  }
  std::string kindName() const override { return "shared"; }

  unsigned channels() const { return channels_; }
  sched::Scheduler& scheduler() { return *scheduler_; }

  /// The channel predicted for the current cycle (e.g. for trace rows).
  unsigned prediction(SimContext& ctx) { return predictNow(ctx); }

  /// Tokens served per channel (forward transfers on the outputs).
  const std::vector<std::uint64_t>& servedPerChannel() const { return served_; }
  /// Cycles in which some output carried a misprediction demand.
  std::uint64_t demandCycles() const { return demandCycles_; }
  std::uint64_t totalServed() const;

 private:
  friend class compile::Vm;

  unsigned predictNow(SimContext& ctx);

  unsigned channels_;
  unsigned inWidth_;
  unsigned outWidth_;
  SharedFn fn_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  logic::Cost fnCost_;

  std::vector<std::uint64_t> served_;
  std::uint64_t demandCycles_ = 0;

  // Size-1 memo of the last fn_ computation (fn_ is pure; retried and
  // re-settled tokens would otherwise recompute it every evaluation).
  bool memoValid_ = false;
  BitVec memoIn_;
  BitVec memoOut_;

  // Scratch reused across cycles to keep the per-cycle path allocation-free.
  unsigned lastPrediction_ = 0;  ///< prediction from the latest evalComb
  std::vector<bool> validScratch_;
  sched::Observation obsScratch_;
};

}  // namespace esl
