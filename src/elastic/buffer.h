// Elastic buffers (paper §3.2, Figs. 2/3/5).
//
// Behavioural model of the abstract elastic FIFO of Fig. 3: a buffer holds a
// signed occupancy k — tokens when k>0 (with their data, in order), stored
// anti-tokens when k<0 — and tokens/anti-tokens cancel at its boundaries.
//
// * ElasticBuffer: forward latency Lf=1, backward latency Lb=1, capacity C
//   (default 2 = Lf+Lb, the latch implementation of Fig. 2a). The stop to the
//   sender is a function of state only, which is exactly what gives it one
//   cycle of backward latency.
// * ElasticBuffer0: the Fig. 5 variant with Lb=0, C=1 — stop and kill travel
//   combinationally through the controller, so anti-tokens "rush" backwards
//   within the cycle (§4.3).
// * BrokenBuffer: capacity 1 with the *registered* stop of an Lb=1 design,
//   violating C >= Lf+Lb; it loses tokens under back-pressure. Used by the
//   verification tests to show the checker catches the §3.2 capacity theorem.
#pragma once

#include <optional>

#include "elastic/context.h"
#include "elastic/node.h"

namespace esl {

class ElasticBuffer : public Node {
 public:
  /// `initTokens.size()` tokens initially stored (<= capacity); an EB with one
  /// token behaves like a conventional flip-flop stage, an empty EB is a bubble.
  ElasticBuffer(std::string name, unsigned width, unsigned capacity = 2,
                std::vector<BitVec> initTokens = {}, unsigned antiCapacity = 2,
                int initAntiTokens = 0);

  void reset() override;
  void evalComb(SimContext& ctx) override;
  EvalPurity evalPurity() const override { return EvalPurity::kStateDriven; }
  /// Tokens enter/leave and anti-tokens cancel only on channel events.
  EdgeActivity edgeActivity() const override { return EdgeActivity::kOnEvents; }
  void clockEdge(SimContext& ctx) override;
  void packState(StateWriter& w) const override;
  void unpackState(StateReader& r) override;
  logic::Cost cost() const override;
  void timing(TimingModel& m) const override;
  void flowEdges(std::vector<FlowEdge>& out) const override;
  Persistence outputPersistence(unsigned) const override {
    return Persistence::kPersistent;
  }
  std::string kindName() const override { return "eb"; }

  unsigned width() const { return width_; }
  unsigned capacity() const { return capacity_; }
  unsigned antiCapacity() const { return antiCapacity_; }
  const std::vector<BitVec>& initTokens() const { return init_; }
  int initAntiTokens() const { return initAnti_; }
  /// Current token count (negative = stored anti-tokens).
  int occupancy() const { return static_cast<int>(count_) - antiTokens_; }

 private:
  friend class compile::Vm;

  // The FIFO is a fixed ring over `capacity_` pre-sized BitVec slots: pushes
  // and pops are index arithmetic plus a value assignment that reuses the
  // slot's storage — no deque node traffic on the clock-edge hot path.
  const BitVec& frontToken() const { return ring_[head_]; }
  void popToken() {
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    --count_;
  }
  template <typename V>
  void pushToken(V&& v) {
    unsigned tail = head_ + count_;
    if (tail >= capacity_) tail -= capacity_;
    ring_[tail] = std::forward<V>(v);
    ++count_;
  }

  unsigned width_;
  unsigned capacity_;
  unsigned antiCapacity_;
  std::vector<BitVec> init_;
  int initAnti_;

  std::vector<BitVec> ring_;
  unsigned head_ = 0;
  unsigned count_ = 0;
  int antiTokens_ = 0;
};

class ElasticBuffer0 : public Node {
 public:
  ElasticBuffer0(std::string name, unsigned width,
                 std::optional<BitVec> initToken = std::nullopt);

  void reset() override;
  void evalComb(SimContext& ctx) override;
  EvalPurity evalPurity() const override { return EvalPurity::kStateful; }
  /// The slot fills/empties only on channel events (kills at the input
  /// boundary annihilate on the channel and never touch the slot).
  EdgeActivity edgeActivity() const override { return EdgeActivity::kOnEvents; }
  void clockEdge(SimContext& ctx) override;
  void packState(StateWriter& w) const override;
  void unpackState(StateReader& r) override;
  logic::Cost cost() const override;
  void timing(TimingModel& m) const override;
  void flowEdges(std::vector<FlowEdge>& out) const override;
  Persistence outputPersistence(unsigned) const override {
    return Persistence::kPersistent;
  }
  std::string kindName() const override { return "eb0"; }

  unsigned width() const { return width_; }
  const std::optional<BitVec>& initToken() const { return init_; }

 private:
  friend class compile::Vm;

  unsigned width_;
  std::optional<BitVec> init_;
  std::optional<BitVec> slot_;
};

class BrokenBuffer : public Node {
 public:
  BrokenBuffer(std::string name, unsigned width);

  void reset() override;
  void evalComb(SimContext& ctx) override;
  EvalPurity evalPurity() const override { return EvalPurity::kStateDriven; }
  void clockEdge(SimContext& ctx) override;
  void packState(StateWriter& w) const override;
  void unpackState(StateReader& r) override;
  Persistence outputPersistence(unsigned) const override {
    return Persistence::kPersistent;
  }
  std::string kindName() const override { return "broken-eb"; }

 private:
  friend class compile::Vm;

  unsigned width_;
  std::optional<BitVec> slot_;
  bool stopReg_ = false;  // the bug: S+ to the sender lags the state by a cycle
};

}  // namespace esl
