#include "elastic/buffer.h"

namespace esl {

// ---------------------------------------------------------------------------
// ElasticBuffer (Lf=1, Lb=1, C=capacity)
// ---------------------------------------------------------------------------

ElasticBuffer::ElasticBuffer(std::string name, unsigned width, unsigned capacity,
                             std::vector<BitVec> initTokens, unsigned antiCapacity,
                             int initAntiTokens)
    : Node(std::move(name)),
      width_(width),
      capacity_(capacity),
      antiCapacity_(antiCapacity),
      init_(std::move(initTokens)),
      initAnti_(initAntiTokens) {
  ESL_CHECK(capacity_ >= 2, "ElasticBuffer: capacity must be >= Lf+Lb = 2 "
                            "(use BrokenBuffer to study the violation)");
  ESL_CHECK(init_.size() <= capacity_, "ElasticBuffer: too many initial tokens");
  ESL_CHECK(initAnti_ >= 0 && static_cast<unsigned>(initAnti_) <= antiCapacity_,
            "ElasticBuffer: bad initial anti-token count");
  ESL_CHECK(init_.empty() || initAnti_ == 0,
            "ElasticBuffer: cannot initialize both tokens and anti-tokens");
  for (const BitVec& v : init_)
    ESL_CHECK(v.width() == width_, "ElasticBuffer: init token width mismatch");
  declareInput(width_);
  declareOutput(width_);
  // Initialize the ring NOW, not just at context reset: a buffer spliced
  // into a live context must never push into unsized storage.
  ElasticBuffer::reset();
}

void ElasticBuffer::reset() {
  ring_.assign(capacity_, BitVec(width_));
  head_ = 0;
  count_ = static_cast<unsigned>(init_.size());
  for (unsigned i = 0; i < count_; ++i) ring_[i] = init_[i];
  antiTokens_ = initAnti_;
}

void ElasticBuffer::evalComb(SimContext& ctx) {
  Sig in = ctx.sig(input(0));
  Sig out = ctx.sig(output(0));

  const bool hasTok = count_ > 0;
  // Producer side of the output channel.
  out.setVf(hasTok);
  if (hasTok) out.setData(frontToken());
  // Anti-tokens from downstream are consumed by killing the head token when
  // one exists; otherwise they are stored, subject to the anti capacity.
  out.setSb(!hasTok && antiTokens_ >= static_cast<int>(antiCapacity_));

  // Consumer side of the input channel. The stop is a function of state only,
  // which realizes Lb=1 (the sender learns about congestion a cycle late; the
  // spare capacity slot absorbs the in-flight token, hence C >= Lf+Lb).
  in.setSf(occupancy() >= static_cast<int>(capacity_));
  // Stored anti-tokens travel upstream (active anti-tokens).
  in.setVb(antiTokens_ > 0);
}

void ElasticBuffer::clockEdge(SimContext& ctx) {
  const ConstSig in = ctx.sig(input(0));
  const ConstSig out = ctx.sig(output(0));

  // Output-side events first (free the head slot before accepting).
  if (killEvent(out) || fwdTransfer(out)) {
    ESL_ASSERT(count_ > 0);
    popToken();
  } else if (bwdTransfer(out)) {
    ESL_ASSERT(count_ == 0);
    ++antiTokens_;
  }

  // Input-side events. The payload is only materialized on an actual
  // transfer — bit reads stay in the planes.
  if (killEvent(in)) {
    ESL_ASSERT(antiTokens_ > 0);  // we asserted in.vb
    --antiTokens_;
  } else if (fwdTransfer(in)) {
    pushToken(in.data());
    ESL_ASSERT(count_ <= capacity_);
  } else if (bwdTransfer(in)) {
    ESL_ASSERT(antiTokens_ > 0);
    --antiTokens_;
  }

  // Tokens and anti-tokens cancel inside the buffer (Fig. 3: "which cancel
  // each other at the boundaries of the EB"). This arises when a token enters
  // through the input in the same cycle an anti-token enters via the output.
  while (count_ > 0 && antiTokens_ > 0) {
    popToken();
    --antiTokens_;
  }
  ESL_ASSERT(count_ == 0 || antiTokens_ == 0);
}

void ElasticBuffer::packState(StateWriter& w) const {
  w.writeU32(count_);
  for (unsigned i = 0; i < count_; ++i) {
    unsigned idx = head_ + i;
    if (idx >= capacity_) idx -= capacity_;
    w.writeBitVec(ring_[idx]);
  }
  w.writeU32(static_cast<std::uint32_t>(antiTokens_));
}

void ElasticBuffer::unpackState(StateReader& r) {
  const unsigned n = r.readU32();
  ESL_CHECK(n <= capacity_,
            "ElasticBuffer::unpackState: token count exceeds capacity on " + name());
  head_ = 0;
  count_ = n;
  for (unsigned i = 0; i < n; ++i) ring_[i] = r.readBitVec();
  antiTokens_ = static_cast<int>(r.readU32());
}

logic::Cost ElasticBuffer::cost() const {
  logic::Cost c = logic::ebCost(width_);
  // Extra latch ranks beyond the C=2 baseline.
  if (capacity_ > 2) c.area += (capacity_ - 2) * logic::latchCost(width_).area;
  return c;
}

void ElasticBuffer::timing(TimingModel& m) const {
  // Fully registered in both directions: launch both nets, no through-arcs.
  m.launch({output(0), NetKind::kFwd}, 1.0);
  m.launch({input(0), NetKind::kBwd}, 1.0);
}

// ---------------------------------------------------------------------------
// ElasticBuffer0 (Lf=1, Lb=0, C=1) — Fig. 5
// ---------------------------------------------------------------------------

ElasticBuffer0::ElasticBuffer0(std::string name, unsigned width,
                               std::optional<BitVec> initToken)
    : Node(std::move(name)), width_(width), init_(std::move(initToken)) {
  if (init_) ESL_CHECK(init_->width() == width_, "ElasticBuffer0: init width mismatch");
  declareInput(width_);
  declareOutput(width_);
}

void ElasticBuffer0::reset() { slot_ = init_; }

void ElasticBuffer0::evalComb(SimContext& ctx) {
  Sig in = ctx.sig(input(0));
  Sig out = ctx.sig(output(0));

  const bool full = slot_.has_value();
  out.setVf(full);
  if (full) out.setData(*slot_);

  // Head leaves this cycle if transferred or killed — computed from the
  // downstream signals, so the stop to the sender is combinational (Lb=0).
  const bool leave = full && (!out.sf() || out.vb());
  in.setSf(full && !leave);

  // Anti-tokens rush through combinationally when the buffer is empty.
  in.setVb(!full && out.vb());
  // The anti-token is consumed by killing our token, by killing the incoming
  // token at the input boundary, or by moving further upstream.
  out.setSb(!full && !in.vf() && in.sb());
}

void ElasticBuffer0::clockEdge(SimContext& ctx) {
  const ConstSig in = ctx.sig(input(0));
  const ConstSig out = ctx.sig(output(0));

  if (killEvent(out) || fwdTransfer(out)) slot_.reset();
  if (fwdTransfer(in)) {
    ESL_ASSERT(!slot_.has_value());
    slot_ = in.data();
  }
}

void ElasticBuffer0::packState(StateWriter& w) const {
  w.writeBool(slot_.has_value());
  if (slot_) w.writeBitVec(*slot_);
}

void ElasticBuffer0::unpackState(StateReader& r) {
  if (r.readBool())
    slot_ = r.readBitVec();
  else
    slot_.reset();
}

logic::Cost ElasticBuffer0::cost() const { return logic::eb0Cost(width_); }

void ElasticBuffer0::timing(TimingModel& m) const {
  m.launch({output(0), NetKind::kFwd}, 1.0);
  // Combinational backward paths (§4.3: chaining these accumulates delay).
  m.arc({output(0), NetKind::kBwd}, {input(0), NetKind::kBwd}, 1.0);
  m.arc({input(0), NetKind::kFwd}, {input(0), NetKind::kBwd}, 1.0);
}

// ---------------------------------------------------------------------------
// BrokenBuffer — violates C >= Lf + Lb
// ---------------------------------------------------------------------------

BrokenBuffer::BrokenBuffer(std::string name, unsigned width)
    : Node(std::move(name)), width_(width) {
  declareInput(width_);
  declareOutput(width_);
}

void BrokenBuffer::reset() {
  slot_.reset();
  stopReg_ = false;
}

void BrokenBuffer::evalComb(SimContext& ctx) {
  Sig in = ctx.sig(input(0));
  Sig out = ctx.sig(output(0));
  out.setVf(slot_.has_value());
  if (slot_) out.setData(*slot_);
  out.setSb(true);  // no anti-token support
  in.setSf(stopReg_);  // BUG: one cycle stale — the sender overruns the slot
  in.setVb(false);
}

void BrokenBuffer::clockEdge(SimContext& ctx) {
  const ConstSig in = ctx.sig(input(0));
  const ConstSig out = ctx.sig(output(0));
  // The Lb=1 stop reflects the occupancy *before* this edge, so the sender
  // learns about a fill one cycle late — with C=1 there is no slack slot to
  // absorb the in-flight token (paper §3.2: the C >= Lf+Lb scenario).
  stopReg_ = slot_.has_value();
  if (fwdTransfer(out)) slot_.reset();
  if (fwdTransfer(in)) slot_ = in.data();  // may overwrite a live token
}

void BrokenBuffer::packState(StateWriter& w) const {
  w.writeBool(slot_.has_value());
  if (slot_) w.writeBitVec(*slot_);
  w.writeBool(stopReg_);
}

void BrokenBuffer::unpackState(StateReader& r) {
  if (r.readBool())
    slot_ = r.readBitVec();
  else
    slot_.reset();
  stopReg_ = r.readBool();
}

}  // namespace esl

namespace esl {

void ElasticBuffer::flowEdges(std::vector<FlowEdge>& out) const {
  out.push_back({input(0), output(0), 1.0, static_cast<double>(init_.size())});
}

void ElasticBuffer0::flowEdges(std::vector<FlowEdge>& out) const {
  out.push_back({input(0), output(0), 1.0, init_ ? 1.0 : 0.0});
}

}  // namespace esl
