// Early-evaluation multiplexer (paper §1, §2, §4; [7] token counterflow).
//
// Logically a join over (select, data_0..data_n-1) — every firing consumes one
// token from *every* input — but it fires early: as soon as the select token
// and the *selected* data token are present. The obligation to consume the
// non-selected tokens is discharged by emitting anti-tokens into every
// non-selected input, combinationally in the firing cycle (this is what
// Table 1 shows at cycle 0); a pending counter per input provides Retry-
// persistence when an anti-token cannot be delivered at once.
//
// Misprediction demand: when the select token points at an input that carries
// no token, the mux asserts S+ on that (empty) input. The shared module
// reports this "selected-but-empty" stop to its scheduler, which corrects the
// prediction — the mechanism behind eq. (1)'s `sel = i ∧ S+_outi` term.
//
// Port map: input 0 = select channel; inputs 1..n = data channels; output 0.
#pragma once

#include <vector>

#include "elastic/context.h"
#include "elastic/node.h"

namespace esl {

class EarlyEvalMux : public Node {
 public:
  EarlyEvalMux(std::string name, unsigned dataInputs, unsigned selWidth,
               unsigned width);

  void reset() override;
  void evalComb(SimContext& ctx) override;
  EvalPurity evalPurity() const override { return EvalPurity::kStateful; }
  /// pendingAnti_ grows only on firings (output transfer/kill events) and
  /// shrinks only on input kill/backward-transfer events.
  EdgeActivity edgeActivity() const override { return EdgeActivity::kOnEvents; }
  void clockEdge(SimContext& ctx) override;
  void packState(StateWriter& w) const override;
  void unpackState(StateReader& r) override;
  logic::Cost cost() const override;
  void timing(TimingModel& m) const override;
  std::string kindName() const override { return "ee-mux"; }

  unsigned dataInputs() const { return dataInputs_; }
  ChannelId selectChannel() const { return input(0); }
  ChannelId dataChannel(unsigned i) const { return input(1 + i); }

  /// Completed firings (forward transfers at the output).
  std::uint64_t firings() const { return firings_; }
  /// Anti-tokens emitted in total.
  std::uint64_t antiTokensEmitted() const { return antiEmitted_; }

 private:
  friend class compile::Vm;

  struct CombView {
    bool selValid = false;
    unsigned selIdx = 0;
    bool fire = false;
    std::vector<unsigned> antiAvail;
  };
  CombView view(SimContext& ctx) const;

  unsigned dataInputs_;
  unsigned width_;
  std::vector<unsigned> pendingAnti_;
  std::uint64_t firings_ = 0;
  std::uint64_t antiEmitted_ = 0;
};

}  // namespace esl
