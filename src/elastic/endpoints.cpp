#include "elastic/endpoints.h"

namespace esl {

// ---------------------------------------------------------------------------
// TokenSource
// ---------------------------------------------------------------------------

TokenSource::TokenSource(std::string name, unsigned width, Generator gen, Gate gate)
    : Node(std::move(name)), width_(width), gen_(std::move(gen)), gate_(std::move(gate)) {
  ESL_CHECK(static_cast<bool>(gen_), "TokenSource: generator required");
  declareOutput(width);
}

TokenSource::Generator TokenSource::listOf(std::vector<std::uint64_t> values,
                                           unsigned width) {
  return [values = std::move(values), width](std::uint64_t i) -> std::optional<BitVec> {
    if (i >= values.size()) return std::nullopt;
    return BitVec(width, values[i]);
  };
}

TokenSource::Generator TokenSource::counting(unsigned width, std::uint64_t start) {
  return [width, start](std::uint64_t i) -> std::optional<BitVec> {
    return BitVec(width, start + i);
  };
}

std::optional<BitVec> TokenSource::tokenAt(std::uint64_t index) const {
  if (memoValid_ && memoIndex_ == index) return memoTok_;
  std::optional<BitVec> v = gen_(index);
  if (v) ESL_CHECK(v->width() == width_, "TokenSource: generated width mismatch");
  memoIndex_ = index;
  memoTok_ = v;
  memoValid_ = true;
  return v;
}

void TokenSource::reset() {
  index_ = 0;
  killCredit_ = 0;
  emitted_ = 0;
  killedCount_ = 0;
  offering_ = (!gate_ || gate_(0)) && tokenAt(0).has_value();
}

void TokenSource::evalComb(SimContext& ctx) {
  Sig out = ctx.sig(output(0));
  const std::optional<BitVec> tok = offering_ ? tokenAt(index_) : std::nullopt;
  // A token owed to an absorbed anti-token is never shown.
  const bool offer = tok.has_value() && killCredit_ == 0;
  out.setVf(offer);
  if (offer) out.setData(*tok);
  out.setSb(false);  // sources always absorb anti-tokens
}

void TokenSource::clockEdge(SimContext& ctx) {
  const ConstSig out = ctx.sig(output(0));

  if (killEvent(out)) {
    ++index_;
    ++killedCount_;
    offering_ = false;
  } else if (fwdTransfer(out)) {
    ++index_;
    ++emitted_;
    offering_ = false;
  } else if (bwdTransfer(out)) {
    ++killCredit_;
  }

  // An owed kill silently consumes the next available token (one per cycle).
  if (killCredit_ > 0 && tokenAt(index_).has_value() && !out.vf()) {
    ++index_;
    --killCredit_;
    ++killedCount_;
    offering_ = false;
  }

  // Offer the next token when the gate opens for the upcoming cycle.
  if (!offering_ && (!gate_ || gate_(ctx.cycle() + 1)) && tokenAt(index_).has_value() &&
      killCredit_ == 0)
    offering_ = true;
}

void TokenSource::packState(StateWriter& w) const {
  w.writeU64(index_);
  w.writeBool(offering_);
  w.writeU32(killCredit_);
}

void TokenSource::unpackState(StateReader& r) {
  index_ = r.readU64();
  offering_ = r.readBool();
  killCredit_ = r.readU32();
}

void TokenSource::timing(TimingModel& m) const {
  m.launch({output(0), NetKind::kFwd}, 0.0);
}

// ---------------------------------------------------------------------------
// TokenSink
// ---------------------------------------------------------------------------

TokenSink::TokenSink(std::string name, unsigned width, Gate ready,
                     unsigned antiBudget, Gate antiGate)
    : Node(std::move(name)),
      width_(width),
      ready_(std::move(ready)),
      antiGate_(std::move(antiGate)),
      antiBudget_(antiBudget) {
  declareInput(width);
}

void TokenSink::reset() {
  antiRemaining_ = antiBudget_;
  antiActive_ = false;
  transfers_.clear();
}

void TokenSink::evalComb(SimContext& ctx) {
  Sig in = ctx.sig(input(0));
  const bool wantAnti =
      antiActive_ || (antiRemaining_ > 0 && antiGate_ && antiGate_(ctx.cycle()));
  in.setVb(wantAnti);
  // Kill and stop are mutually exclusive; anti-token emission wins.
  in.setSf(!wantAnti && ready_ && !ready_(ctx.cycle()));
}

void TokenSink::clockEdge(SimContext& ctx) {
  const ConstSig in = ctx.sig(input(0));
  if (fwdTransfer(in)) transfers_.push_back({ctx.cycle(), in.data()});

  if (in.vb()) {
    const bool delivered = in.vf() || !in.sb();  // killed a token or moved upstream
    if (delivered) {
      ESL_ASSERT(antiRemaining_ > 0);
      --antiRemaining_;
      antiActive_ = false;
    } else {
      antiActive_ = true;  // Retry-: persist until delivered
    }
  }
}

void TokenSink::packState(StateWriter& w) const {
  w.writeU32(antiRemaining_);
  w.writeBool(antiActive_);
}

void TokenSink::unpackState(StateReader& r) {
  antiRemaining_ = r.readU32();
  antiActive_ = r.readBool();
}

void TokenSink::timing(TimingModel& m) const {
  m.launch({input(0), NetKind::kBwd}, 0.0);
}

// ---------------------------------------------------------------------------
// NondetSource
// ---------------------------------------------------------------------------

NondetSource::NondetSource(std::string name, unsigned width, unsigned killCreditCap,
                           unsigned dataBits, unsigned maxIdle)
    : Node(std::move(name)),
      width_(width),
      cap_(killCreditCap),
      dataBits_(dataBits),
      maxIdle_(maxIdle),
      value_(width) {
  ESL_CHECK(dataBits_ <= width_, "NondetSource: dataBits exceed width");
  declareOutput(width);
}

void NondetSource::reset() {
  offering_ = false;
  value_ = BitVec(width_);
  killCredit_ = 0;
  idleStreak_ = 0;
}

bool NondetSource::offeringNow(SimContext& ctx) const {
  return offering_ || ctx.choice(*this, 0) || idleStreak_ >= maxIdle_;
}

BitVec NondetSource::valueNow(SimContext& ctx) const {
  if (offering_) return value_;  // Retry+ persistence: value fixed while held
  BitVec v(width_);
  for (unsigned b = 0; b < dataBits_; ++b) v.setBit(b, ctx.choice(*this, 1 + b));
  return v;
}

void NondetSource::evalComb(SimContext& ctx) {
  Sig out = ctx.sig(output(0));
  const bool offer = offeringNow(ctx) && killCredit_ == 0;
  out.setVf(offer);
  if (offer) out.setData(valueNow(ctx));
  out.setSb(!offer && killCredit_ >= cap_);
}

void NondetSource::clockEdge(SimContext& ctx) {
  const ConstSig out = ctx.sig(output(0));
  bool offered = offeringNow(ctx);
  const BitVec v = valueNow(ctx);
  if (killEvent(out) || fwdTransfer(out)) offered = false;
  if (bwdTransfer(out)) ++killCredit_;
  // An owed kill annihilates the (hidden) offered token.
  if (offered && killCredit_ > 0) {
    offered = false;
    --killCredit_;
  }
  offering_ = offered;
  value_ = offered ? v : BitVec(width_);
  // Bounded fairness: count consecutive cycles without an offer.
  if (offeringNow(ctx))
    idleStreak_ = 0;
  else if (idleStreak_ < maxIdle_)
    ++idleStreak_;
}

void NondetSource::packState(StateWriter& w) const {
  w.writeBool(offering_);
  w.writeBitVec(value_);
  w.writeU32(killCredit_);
  w.writeU32(idleStreak_);
}

void NondetSource::unpackState(StateReader& r) {
  offering_ = r.readBool();
  value_ = r.readBitVec();
  killCredit_ = r.readU32();
  idleStreak_ = r.readU32();
}

// ---------------------------------------------------------------------------
// NondetSink
// ---------------------------------------------------------------------------

NondetSink::NondetSink(std::string name, unsigned width, unsigned maxConsecutiveStops,
                       bool emitsAntiTokens)
    : Node(std::move(name)),
      width_(width),
      maxStops_(maxConsecutiveStops),
      emitsAnti_(emitsAntiTokens) {
  declareInput(width);
}

void NondetSink::reset() {
  consecutiveStops_ = 0;
  antiActive_ = false;
}

bool NondetSink::antiNow(SimContext& ctx) const {
  return antiActive_ || (emitsAnti_ && ctx.choice(*this, 1));
}

bool NondetSink::stopNow(SimContext& ctx) const {
  if (consecutiveStops_ >= maxStops_) return false;  // bounded fairness
  return ctx.choice(*this, 0);
}

void NondetSink::evalComb(SimContext& ctx) {
  Sig in = ctx.sig(input(0));
  const bool anti = antiNow(ctx);
  in.setVb(anti);
  in.setSf(!anti && stopNow(ctx));
}

void NondetSink::clockEdge(SimContext& ctx) {
  const ConstSig in = ctx.sig(input(0));
  consecutiveStops_ = in.sf() ? consecutiveStops_ + 1 : 0;
  if (consecutiveStops_ > maxStops_) consecutiveStops_ = maxStops_;
  if (in.vb()) {
    const bool delivered = in.vf() || !in.sb();
    antiActive_ = !delivered;
  }
}

void NondetSink::packState(StateWriter& w) const {
  w.writeU32(consecutiveStops_);
  w.writeBool(antiActive_);
}

void NondetSink::unpackState(StateReader& r) {
  consecutiveStops_ = r.readU32();
  antiActive_ = r.readBool();
}

}  // namespace esl
