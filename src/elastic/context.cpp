#include "elastic/context.h"

#include <algorithm>

#include "base/executor.h"
#include "compile/vm.h"

namespace esl {

SimContext::SimContext(Netlist& netlist) : netlist_(netlist) {
  netlist_.validate();
  reset();
}

SimContext::~SimContext() = default;

void SimContext::reset() {
  // The node objects are about to be overwritten wholesale: drop the compiled
  // backend's arena without flushing (re-adopted at the next compiled phase).
  if (vm_) vm_->invalidateState();
  for (const NodeId id : netlist_.nodeIds()) netlist_.node(id).reset();
  cycle_ = 0;
  havePrev_ = false;
  violations_.clear();
  ensureChoiceMap();
  hasFixedChoices_ = false;
  std::fill(choiceKnown_.begin(), choiceKnown_.end(), 0);
  topologySeen_ = ~std::uint64_t{0};  // force cache + layout + full-seed refresh
  ensureTopologyCache();
  // The cache refresh re-laid the boards through the value-preserving adopt
  // path; a reset starts from all-zero signals.
  board_.clearValues();
  prevBoard_.clearValues();
  invalidateSignals();
}

void SimContext::ensureTopologyCache() {
  if (topologySeen_ == netlist_.topologyVersion() && shardsSeen_ == shards_)
    return;
  liveNodes_ = netlist_.nodeIds();
  seedNodes_.clear();
  cycleSeedNodes_.clear();
  choiceNodes_.clear();
  alwaysEdgeNodes_.clear();
  nodeUnaudited_.assign(netlist_.nodeCapacity(), 0);
  nodeStateDriven_.assign(netlist_.nodeCapacity(), 0);
  nodeEdgeOnEvents_.assign(netlist_.nodeCapacity(), 0);
  nodeStateful_.assign(netlist_.nodeCapacity(), 0);
  for (const NodeId id : liveNodes_) {
    const Node& node = netlist_.node(id);
    const Node::EvalPurity purity = node.evalPurity();
    if (purity != Node::EvalPurity::kCombPure) {
      seedNodes_.push_back(id);
      nodeStateful_[id] = 1;
    }
    if (purity == Node::EvalPurity::kUnaudited) nodeUnaudited_[id] = 1;
    if (purity == Node::EvalPurity::kStateDriven) nodeStateDriven_[id] = 1;
    // Unaudited nodes made no promise about what evalComb reads, so they are
    // conservatively re-seeded into every settle along with the declared
    // per-cycle readers (cycle counter / choice bits).
    if (node.evalReadsPerCycleInputs() ||
        purity == Node::EvalPurity::kUnaudited)
      cycleSeedNodes_.push_back(id);
    if (node.choiceCount() > 0) choiceNodes_.push_back(id);
    if (node.edgeActivity() == Node::EdgeActivity::kOnEvents)
      nodeEdgeOnEvents_[id] = 1;
    else
      alwaysEdgeNodes_.push_back(id);
  }
  liveChannels_ = netlist_.channelIds();
  channelPersistent_.assign(netlist_.channelCapacity(), true);
  for (const ChannelId ch : liveChannels_)
    channelPersistent_[ch] = netlist_.channelIsPersistent(ch);

  // Shard plan: contiguous blocks of the live-node order, balanced by count.
  // Blocks are snapped to 64-id boundaries so each worklist-bitmap word (and
  // each interior plane group) has exactly one owner — shard workers then
  // push and mark with plain stores.
  plan_.shards = shards_;
  plan_.nodeShard.assign(netlist_.nodeCapacity(), 0);
  shardState_.assign(shards_, Shard{});
  const std::size_t n = liveNodes_.size();
  const std::size_t block = shards_ == 0 ? n : (n + shards_ - 1) / shards_;
  for (std::size_t i = 0; i < n; ++i) {
    unsigned s =
        block == 0 ? 0
                   : static_cast<unsigned>(std::min<std::size_t>(i / block, shards_ - 1));
    if (i > 0 && (liveNodes_[i] >> 6) == (liveNodes_[i - 1] >> 6))
      s = plan_.nodeShard[liveNodes_[i - 1]];  // same bitmap word → same owner
    plan_.nodeShard[liveNodes_[i]] = s;
    shardState_[s].owned.push_back(liveNodes_[i]);
  }
  for (Shard& sh : shardState_) {
    sh.loId = sh.owned.empty() ? 0 : sh.owned.front();
    sh.hiId = sh.owned.empty() ? 0 : sh.owned.back();
    sh.alwaysEdge.clear();
    for (const NodeId id : sh.owned)
      if (!nodeEdgeOnEvents_[id]) sh.alwaysEdge.push_back(id);
  }

  // Re-layout the boards for the new topology/partition, preserving the
  // per-channel values of surviving channels (channels created since the last
  // reset — insertOnChannel, connect during interactive surgery — get zeroed
  // slots before any kernel touches them).
  SignalBoard fresh;
  fresh.layout(netlist_, &plan_);
  fresh.adoptValuesFrom(board_);
  board_ = std::move(fresh);
  // prev() survives the relayout too (new channels read as all-zero): the
  // protocol monitor must still see a Retry+ token that was stopped on the
  // cycle before a mid-run surgery.
  fresh.layout(netlist_, &plan_);
  fresh.adoptValuesFrom(prevBoard_);
  prevBoard_ = std::move(fresh);
  sweepScratch_.layout(netlist_, &plan_);
  ccPre_.layout(netlist_, &plan_);
  ccEvent_.layout(netlist_, &plan_);

  pendingBits_.assign((netlist_.nodeCapacity() + 63) / 64, 0);
  pendingWordGen_.assign((netlist_.nodeCapacity() + 63) / 64, 0);
  evalMeta_.assign(netlist_.nodeCapacity(), 0);
  edgeBits_.assign((netlist_.nodeCapacity() + 63) / 64, 0);
  edgeWordGen_.assign((netlist_.nodeCapacity() + 63) / 64, 0);
  groupHot_.assign(board_.groupCount(), 0);
  // Hot-dispatch caches: raw node pointers and the channel→reader adjacency
  // flattened to CSR with board slots pre-resolved. Built here (serially), so
  // shard workers never touch the netlist's lazy mutable caches.
  nodePtr_.assign(netlist_.nodeCapacity(), nullptr);
  adjOffset_.assign(netlist_.nodeCapacity() + 1, 0);
  adjFlat_.clear();
  for (const NodeId id : liveNodes_) {
    nodePtr_[id] = &netlist_.node(id);
    adjOffset_[id] = static_cast<std::uint32_t>(adjFlat_.size());
    for (const auto& [ch, other] : netlist_.adjacency(id))
      adjFlat_.push_back({board_.slotOf(ch), other});
    adjOffset_[id + 1] = static_cast<std::uint32_t>(adjFlat_.size());
  }
  topologySeen_ = netlist_.topologyVersion();
  shardsSeen_ = shards_;
  needFullSeed_ = true;
  changeTrackValid_ = false;
  edgeTrackValid_ = false;
  sparseSeedValid_ = false;
}

void SimContext::setShards(unsigned n) {
  if (n == 0) n = 1;
  if (n == shards_) return;
  // The re-layout below permutes board slots and bumps the layout generation,
  // so a compiled program (keyed on it) recompiles at the next phase —
  // flushing its arena through the old offsets first.
  shards_ = n;
  exec_.reset();
  invalidateSignals();
  ensureTopologyCache();  // re-partition + re-layout, preserving signal values
}

void SimContext::setBackend(Backend backend) { backend_ = backend; }

void SimContext::parallelShards(const std::function<void(unsigned)>& fn) {
  exec().parallelFor(shards_,
                     [&](std::size_t s, unsigned) { fn(static_cast<unsigned>(s)); });
}

void SimContext::flushCompiledState() const {
  if (vm_) vm_->flushState();
}

compile::Vm& SimContext::vm() {
  if (!vm_) vm_ = std::make_unique<compile::Vm>(*this);
  return *vm_;
}

Executor& SimContext::exec() {
  if (!exec_) exec_ = std::make_unique<Executor>(shards_);
  return *exec_;
}

void SimContext::ensureChoiceMap() {
  choiceOffset_.clear();
  totalChoices_ = 0;
  const auto ids = netlist_.nodeIds();
  const NodeId maxId = ids.empty() ? 0 : ids.back();
  choiceOffset_.assign(maxId + 1, 0);
  for (const NodeId id : ids) {
    choiceOffset_[id] = totalChoices_;
    totalChoices_ += netlist_.node(id).choiceCount();
  }
  choiceKnown_.assign((totalChoices_ + 63) / 64, 0);
  choiceValue_.assign((totalChoices_ + 63) / 64, 0);
}

void SimContext::setChoices(std::vector<bool> bits) {
  ESL_CHECK(bits.size() == totalChoices_, "setChoices: wrong bit count");
  fixedChoices_ = std::move(bits);
  hasFixedChoices_ = true;
  std::fill(choiceKnown_.begin(), choiceKnown_.end(), 0);
}

void SimContext::setChoicesFrom(const std::vector<bool>& bits) {
  ESL_CHECK(bits.size() == totalChoices_, "setChoices: wrong bit count");
  fixedChoices_ = bits;  // copy-assign reuses fixedChoices_'s capacity
  hasFixedChoices_ = true;
  std::fill(choiceKnown_.begin(), choiceKnown_.end(), 0);
}

void SimContext::setChoiceProvider(std::function<bool(NodeId, unsigned)> fn) {
  choiceProvider_ = std::move(fn);
}

bool SimContext::choice(const Node& node, unsigned idx) {
  ESL_CHECK(idx < node.choiceCount(), "choice index out of range on " + node.name());
  const unsigned slot = choiceOffset_.at(node.id()) + idx;
  const std::uint64_t mask = std::uint64_t{1} << (slot & 63);
  if (choiceKnown_[slot / 64] & mask) return (choiceValue_[slot / 64] & mask) != 0;
  bool value = false;
  if (hasFixedChoices_)
    value = fixedChoices_[slot];
  else if (choiceProvider_)
    value = choiceProvider_(node.id(), idx);
  choiceKnown_[slot / 64] |= mask;
  if (value)
    choiceValue_[slot / 64] |= mask;
  else
    choiceValue_[slot / 64] &= ~mask;
  return value;
}

void SimContext::rebuildHotGroups() {
  // Runs only alongside a shadow refresh (reset/rewiring/sweep interludes):
  // one linear sweep re-derives which interior groups carry tokens. Boundary
  // groups are never listed — the sharded edge scans that (small) region
  // unconditionally, and in serial mode every group is interior.
  std::fill(groupHot_.begin(), groupHot_.end(), 0);
  for (unsigned s = 0; s < shards_; ++s) {
    Shard& sh = shardState_[s];
    sh.hotGroups.clear();
    const auto [lo, hi] = board_.shardGroupRange(s);
    for (std::size_t g = lo; g < hi; ++g) {
      if (board_.activityAtGroup(g) != 0) {
        groupHot_[g] = 1;
        sh.hotGroups.push_back(static_cast<std::uint32_t>(g));
      }
    }
  }
}

void SimContext::resolveAllChoices() {
  // Sharded settles pre-resolve every slot single-threaded so the cache is
  // read-only under workers. Identical to lazy resolution because the
  // provider is order-independent (a pure per-cycle function of node/index).
  if (totalChoices_ == 0) return;
  for (const NodeId id : choiceNodes_) {
    const Node& node = *nodePtr_[id];
    const unsigned count = node.choiceCount();
    for (unsigned i = 0; i < count; ++i) (void)choice(node, i);
  }
}

void SimContext::settle() {
  if (crossCheck_) {
    settleCrossChecked();
  } else if (kernel_ == SettleKernel::kSweep) {
    settleSweep();
  } else if (backend_ == Backend::kCompiled) {
    vm().settle();
  } else if (shards_ > 1) {
    settleSharded();
  } else {
    settleEventDriven();
  }
}

void SimContext::settleSweep() {
  ensureTopologyCache();
  flushCompiledState();       // interpreted evals read node-object state
  changeTrackValid_ = false;  // sweep writes bypass the consume loop
  edgeTrackValid_ = false;    // ... and the settled-board guarantee
  const std::vector<NodeId>& ids = liveNodes_;
  const unsigned maxIters = static_cast<unsigned>(2 * ids.size() + 8);
  SignalBoard& before = sweepScratch_;
  for (unsigned iter = 0; iter < maxIters; ++iter) {
    before.copyValuesFrom(board_);
    for (const NodeId id : ids) netlist_.node(id).evalComb(*this);
    if (board_.sameValuesAs(before) && iter > 0) return;
    if (board_.sameValuesAs(before) && ids.empty()) return;
  }
  throw CombinationalCycleError(
      "combinational network did not stabilize after " + std::to_string(maxIters) +
      " sweeps (combinational cycle in data or control)");
}

void SimContext::settleEventDriven() {
  flushCompiledState();  // interpreted evals read node-object state
  settleEventDrivenWith([this](NodeId id) { nodePtr_[id]->evalComb(*this); });
}

void SimContext::seedShards(std::uint64_t gen) {
  const auto pushOwned = [&](NodeId id) {
    pushInto(shardState_[plan_.nodeShard[id]], gen, id);
  };
  if (needFullSeed_) {
    for (const NodeId id : liveNodes_) pushOwned(id);
  } else if (!sparseSeedValid_) {
    for (const NodeId id : seedNodes_) pushOwned(id);
  } else {
    for (const NodeId id : cycleSeedNodes_) pushOwned(id);
    for (const NodeId id : prevClocked_) pushOwned(id);
  }
  needFullSeed_ = false;
}

void SimContext::settleSharded() {
  flushCompiledState();  // interpreted evals read node-object state
  settleShardedWith([this](NodeId id) { nodePtr_[id]->evalComb(*this); });
}

void SimContext::settleCrossChecked() {
  ensureTopologyCache();  // refresh layout (and the scratch boards) FIRST
  ccPre_.copyValuesFrom(board_);
  if (backend_ == Backend::kCompiled)
    vm().settle();
  else if (shards_ > 1)
    settleSharded();
  else
    settleEventDriven();
  ccEvent_.copyValuesFrom(board_);
  board_.copyValuesFrom(ccPre_);
  settleSweep();
  const SignalBoard& event = ccEvent_;
  for (const ChannelId id : netlist_.channelIds()) {
    const std::uint32_t slot = board_.slotOf(id);
    if (board_.channelEqualsAt(slot, event)) continue;
    const auto bit = [](bool v) { return v ? '1' : '0'; };
    const ChannelSignals s = board_.snapshotAt(slot);
    const ChannelSignals e = event.snapshotAt(slot);
    throw InternalError(
        std::string("settle cross-check: kernels disagree on channel '") +
        netlist_.channel(id).name + "' at cycle " + std::to_string(cycle_) +
        ": sweep vf/sf/vb/sb=" + bit(s.vf) + bit(s.sf) + bit(s.vb) + bit(s.sb) +
        " data=" + s.data.toHex() + ", event-driven vf/sf/vb/sb=" + bit(e.vf) +
        bit(e.sf) + bit(e.vb) + bit(e.sb) + " data=" + e.data.toHex());
  }
}

void SimContext::checkProtocol() {
  auto report = [&](const Channel& ch, const std::string& what) {
    const std::string msg = "cycle " + std::to_string(cycle_) + ", channel '" +
                            ch.name + "': " + what;
    violations_.push_back(msg);
    if (throwOnViolation_) throw ProtocolError(msg);
  };

  ensureTopologyCache();
  for (const ChannelId id : liveChannels_) {
    const Channel& ch = netlist_.channel(id);
    const std::uint32_t slot = board_.slotOf(id);
    const ChannelSignals cur = board_.snapshotAt(slot);

    // Invariant (paper §3.1): kill and stop are mutually exclusive, in both
    // polarities.
    if (cur.vf && cur.vb && cur.sf) report(ch, "token killed and stopped (V+ S+ V-)");
    if (cur.vf && cur.vb && cur.sb)
      report(ch, "anti-token killed and stopped (V- S- V+)");

    if (!havePrev_) continue;
    const ChannelSignals prevSig = prevBoard_.snapshotAt(slot);
    const bool relaxed = !channelPersistent_[id];

    // Retry+: a stopped token must persist (with its data) next cycle.
    if (prevSig.vf && prevSig.sf && !prevSig.vb && !relaxed) {
      if (!cur.vf)
        report(ch, "Retry+ violated: stopped token vanished");
      else if (cur.data != prevSig.data)
        report(ch, "Retry+ persistence violated: data changed during retry");
    }
    // Retry-: a stopped anti-token must persist next cycle.
    if (prevSig.vb && prevSig.sb && !prevSig.vf && !cur.vb)
      report(ch, "Retry- violated: stopped anti-token vanished");
  }
}

void SimContext::edge() {
  ensureTopologyCache();
  if (crossCheck_)
    edgeAudited();
  else if (!edgeTrackValid_)
    edgeFull();
  else if (backend_ == Backend::kCompiled)
    vm().edge();
  else if (shards_ > 1)
    edgeSharded();
  else
    edgeSparse();
  edgeEpilogue();
}

void SimContext::edgeFull() {
  flushCompiledState();  // interpreted clockEdges read node-object state
  for (const NodeId id : liveNodes_) netlist_.node(id).clockEdge(*this);
  sparseSeedValid_ = false;  // anything may have changed state
}

void SimContext::edgeSparse() {
  flushCompiledState();  // interpreted clockEdges read node-object state
  edgeSparseWith([this](NodeId id) { nodePtr_[id]->clockEdge(*this); });
}

void SimContext::edgeSharded() {
  flushCompiledState();  // interpreted clockEdges read node-object state
  edgeShardedWith([this](NodeId id) { nodePtr_[id]->clockEdge(*this); });
}

void SimContext::edgeAudited() {
  flushCompiledState();  // runs interpreted edges and per-node state surgery
  // Reference clockEdge sweep over every node, auditing the EdgeActivity
  // declarations: a node the sparse path would have skipped (kOnEvents, no
  // adjacent event) must not change its serialized state. Channel events are
  // recomputed from the settled board — cross-check settles end on the sweep
  // kernel, whose writes land in the same planes.
  std::vector<std::uint8_t> nodeHasEvent(netlist_.nodeCapacity(), 0);
  scanEventGroups(0, board_.groupCount(), [&](NodeId id) {
    if (id != kNoNode) nodeHasEvent[id] = 1;
  });
  // Compiled backend: additionally audit every specialized clock-edge op
  // against the interpreted clockEdge — run interpreted (statistics count
  // once), rewind the node's serialized state, replay the compiled op with
  // statistics suppressed, and require byte-identical packState().
  const bool auditCompiled = backend_ == Backend::kCompiled;
  if (auditCompiled) vm().prepare();
  prevClocked_.clear();
  for (const NodeId id : liveNodes_) {
    Node& node = netlist_.node(id);
    const bool wouldSkip = nodeEdgeOnEvents_[id] && !nodeHasEvent[id];
    if (!wouldSkip) {
      if (nodeStateful_[id]) prevClocked_.push_back(id);
      if (auditCompiled && vm().hasSpecializedOpFor(id)) {
        StateWriter w0;
        node.packState(w0);
        const std::vector<std::uint8_t> s0 = w0.take();
        node.clockEdge(*this);
        StateWriter w1;
        node.packState(w1);
        const std::vector<std::uint8_t> s1 = w1.take();
        StateReader rewind(s0);
        node.unpackState(rewind);
        vm().edgeNodeForAudit(id);
        StateWriter w2;
        node.packState(w2);
        if (s1 != w2.take())
          throw InternalError(
              "edge cross-check: compiled clockEdge op for node '" +
              node.name() + "' (" + node.kindName() +
              ") disagrees with the interpreted edge at cycle " +
              std::to_string(cycle_));
      } else {
        node.clockEdge(*this);
      }
      continue;
    }
    StateWriter before;
    node.packState(before);
    node.clockEdge(*this);
    StateWriter after;
    node.packState(after);
    if (before.take() != after.take())
      throw InternalError(
          "edge cross-check: node '" + node.name() + "' (" + node.kindName() +
          ") declares EdgeActivity::kOnEvents but changed state at cycle " +
          std::to_string(cycle_) + " without an adjacent channel event");
  }
  // The audit above just proved the skipped nodes kept their state, so the
  // sparse seed bookkeeping is as valid as after a dirty-tracked edge. This
  // deliberately routes the NEXT cross-checked settle through the sparse
  // seeding path: a node that reads the cycle counter or choice bits in
  // evalComb without declaring evalReadsPerCycleInputs() now shows up as a
  // kernel disagreement instead of hiding behind full re-seeding.
  sparseSeedValid_ = true;
}

void SimContext::edgeEpilogue() {
  // prev() is only consumed by the protocol monitors, so the snapshot is
  // skipped entirely when they are off. Board-to-board value copy: straight
  // word vectors, no per-channel BitVec traffic.
  if (protocolChecking_) {
    prevBoard_.copyValuesFrom(board_);
    havePrev_ = true;
  } else {
    havePrev_ = false;
  }
  hasFixedChoices_ = false;
  std::fill(choiceKnown_.begin(), choiceKnown_.end(), 0);
  ++cycle_;
}

void SimContext::step() {
  settle();
  if (protocolChecking_) checkProtocol();
  edge();
}

std::vector<std::uint8_t> SimContext::packState() const {
  flushCompiledState();
  StateWriter w;
  w.writeU32(kSnapshotMagic);
  w.writeU32(kSnapshotVersion);
  w.writeU64(cycle_);
  packNodeState(w);
  return w.take();
}

void SimContext::packStateInto(std::vector<std::uint8_t>& out) const {
  flushCompiledState();
  StateWriter w(std::move(out));
  packNodeState(w);
  out = w.take();
}

void SimContext::packNodeState(StateWriter& w) const {
  // The live-node cache avoids the nodeIds() allocation on the hot path; it
  // is valid whenever the topology has not moved since the last settle/reset.
  if (topologySeen_ == netlist_.topologyVersion()) {
    for (const NodeId id : liveNodes_) netlist_.node(id).packState(w);
  } else {
    for (const NodeId id : netlist_.nodeIds()) netlist_.node(id).packState(w);
  }
}

namespace {
std::uint32_t readLeU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
std::uint64_t readLeU64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(readLeU32(p)) |
         (static_cast<std::uint64_t>(readLeU32(p + 4)) << 32);
}
}  // namespace

void SimContext::unpackState(const std::vector<std::uint8_t>& bytes) {
  // Same cached-liveNodes_ fast path as packStateInto: restore runs once per
  // explored edge in the model checker, so the nodeIds() allocation matters.
  ensureTopologyCache();
  // Sniff the versioned packState() header (magic/version/cycle); headerless
  // packStateInto() snapshots skip straight to node bytes. A raw snapshot
  // whose first node happens to serialize the 8-byte pattern
  // magic|version == 0x00000001'E51A7E01 would be misread, but the leading
  // field of every catalog node is a bool/index far below 2^32, so the
  // collision requires a TokenSource at index_ == 0x1E51A7E01 (~8.1e9 cycles
  // into a run) fed through the headerless API — negligible, and the vector
  // API always carries the header.
  std::size_t off = 0;
  if (bytes.size() >= 16 && readLeU32(bytes.data()) == kSnapshotMagic &&
      readLeU32(bytes.data() + 4) == kSnapshotVersion) {
    cycle_ = readLeU64(bytes.data() + 8);
    off = 16;
  }
  StateReader r(bytes, off);
  for (const NodeId id : liveNodes_) netlist_.node(id).unpackState(r);
  ESL_CHECK(r.done(), "unpackState: trailing bytes (netlist/state mismatch)");
  if (vm_) vm_->invalidateState();  // node objects are now authoritative
  havePrev_ = false;
  sparseSeedValid_ = false;  // arbitrary state replacement: reseed stateful set
}

}  // namespace esl
