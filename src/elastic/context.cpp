#include "elastic/context.h"

#include <algorithm>

namespace esl {

SimContext::SimContext(Netlist& netlist) : netlist_(netlist) {
  netlist_.validate();
  reset();
}

void SimContext::reset() {
  resizeSignals();
  for (const NodeId id : netlist_.nodeIds()) netlist_.node(id).reset();
  cycle_ = 0;
  havePrev_ = false;
  violations_.clear();
  ensureChoiceMap();
  hasFixedChoices_ = false;
  cachedChoices_.assign(totalChoices_, -1);
  topologySeen_ = ~std::uint64_t{0};  // force cache + full-seed refresh
  ensureTopologyCache();
}

void SimContext::ensureTopologyCache() {
  if (topologySeen_ == netlist_.topologyVersion()) return;
  liveNodes_ = netlist_.nodeIds();
  seedNodes_.clear();
  cycleSeedNodes_.clear();
  alwaysEdgeNodes_.clear();
  nodeUnaudited_.assign(netlist_.nodeCapacity(), 0);
  nodeStateDriven_.assign(netlist_.nodeCapacity(), 0);
  nodeEdgeOnEvents_.assign(netlist_.nodeCapacity(), 0);
  nodeStateful_.assign(netlist_.nodeCapacity(), 0);
  for (const NodeId id : liveNodes_) {
    const Node& node = netlist_.node(id);
    const Node::EvalPurity purity = node.evalPurity();
    if (purity != Node::EvalPurity::kCombPure) {
      seedNodes_.push_back(id);
      nodeStateful_[id] = 1;
    }
    if (purity == Node::EvalPurity::kUnaudited) nodeUnaudited_[id] = 1;
    if (purity == Node::EvalPurity::kStateDriven) nodeStateDriven_[id] = 1;
    // Unaudited nodes made no promise about what evalComb reads, so they are
    // conservatively re-seeded into every settle along with the declared
    // per-cycle readers (cycle counter / choice bits).
    if (node.evalReadsPerCycleInputs() ||
        purity == Node::EvalPurity::kUnaudited)
      cycleSeedNodes_.push_back(id);
    if (node.edgeActivity() == Node::EdgeActivity::kOnEvents)
      nodeEdgeOnEvents_[id] = 1;
    else
      alwaysEdgeNodes_.push_back(id);
  }
  liveChannels_ = netlist_.channelIds();
  channelPersistent_.assign(netlist_.channelCapacity(), true);
  for (const ChannelId ch : liveChannels_)
    channelPersistent_[ch] = netlist_.channelIsPersistent(ch);
  // Channels created since the last reset() (insertOnChannel, connect during
  // interactive surgery) need signal slots before any kernel touches them.
  if (signals_.size() < netlist_.channelCapacity()) {
    const std::size_t old = signals_.size();
    signals_.resize(netlist_.channelCapacity());
    prevSignals_.resize(netlist_.channelCapacity());
    for (std::size_t i = old; i < signals_.size(); ++i) {
      if (!netlist_.hasChannel(static_cast<ChannelId>(i))) continue;
      signals_[i].data = BitVec(netlist_.channel(static_cast<ChannelId>(i)).width);
      prevSignals_[i] = signals_[i];
    }
  }
  pendingGen_.assign(netlist_.nodeCapacity(), 0);
  evalGen_.assign(netlist_.nodeCapacity(), 0);
  evalCount_.assign(netlist_.nodeCapacity(), 0);
  edgeMarkGen_.assign(netlist_.nodeCapacity(), 0);
  topologySeen_ = netlist_.topologyVersion();
  needFullSeed_ = true;
  shadowValid_ = false;
  edgeTrackValid_ = false;
  sparseSeedValid_ = false;
}

void SimContext::resizeSignals() {
  signals_.assign(netlist_.channelCapacity(), ChannelSignals{});
  for (const ChannelId id : netlist_.channelIds())
    signals_[id].data = BitVec(netlist_.channel(id).width);
  prevSignals_ = signals_;
}

void SimContext::ensureChoiceMap() {
  choiceOffset_.clear();
  totalChoices_ = 0;
  const auto ids = netlist_.nodeIds();
  const NodeId maxId = ids.empty() ? 0 : ids.back();
  choiceOffset_.assign(maxId + 1, 0);
  for (const NodeId id : ids) {
    choiceOffset_[id] = totalChoices_;
    totalChoices_ += netlist_.node(id).choiceCount();
  }
}

void SimContext::setChoices(std::vector<bool> bits) {
  ESL_CHECK(bits.size() == totalChoices_, "setChoices: wrong bit count");
  fixedChoices_ = std::move(bits);
  hasFixedChoices_ = true;
  cachedChoices_.assign(totalChoices_, -1);
}

void SimContext::setChoicesFrom(const std::vector<bool>& bits) {
  ESL_CHECK(bits.size() == totalChoices_, "setChoices: wrong bit count");
  fixedChoices_ = bits;  // copy-assign reuses fixedChoices_'s capacity
  hasFixedChoices_ = true;
  cachedChoices_.assign(totalChoices_, -1);
}

void SimContext::setChoiceProvider(std::function<bool(NodeId, unsigned)> fn) {
  choiceProvider_ = std::move(fn);
}

bool SimContext::choice(const Node& node, unsigned idx) {
  ESL_CHECK(idx < node.choiceCount(), "choice index out of range on " + node.name());
  const unsigned slot = choiceOffset_.at(node.id()) + idx;
  if (cachedChoices_[slot] >= 0) return cachedChoices_[slot] != 0;
  bool value = false;
  if (hasFixedChoices_)
    value = fixedChoices_[slot];
  else if (choiceProvider_)
    value = choiceProvider_(node.id(), idx);
  cachedChoices_[slot] = value ? 1 : 0;
  return value;
}

void SimContext::settle() {
  if (crossCheck_) {
    settleCrossChecked();
  } else if (kernel_ == SettleKernel::kSweep) {
    settleSweep();
  } else {
    settleEventDriven();
  }
}

void SimContext::settleSweep() {
  ensureTopologyCache();
  shadowValid_ = false;  // sweep writes bypass the event kernel's shadow
  edgeTrackValid_ = false;  // ... and its hot-channel index
  const std::vector<NodeId>& ids = liveNodes_;
  const unsigned maxIters = static_cast<unsigned>(2 * ids.size() + 8);
  for (unsigned iter = 0; iter < maxIters; ++iter) {
    const std::vector<ChannelSignals> before = signals_;
    for (const NodeId id : ids) netlist_.node(id).evalComb(*this);
    if (signals_ == before && iter > 0) return;
    if (signals_ == before && ids.empty()) return;
  }
  throw CombinationalCycleError(
      "combinational network did not stabilize after " + std::to_string(maxIters) +
      " sweeps (combinational cycle in data or control)");
}

void SimContext::settleEventDriven() {
  ensureTopologyCache();

  // Shadow = the signal values whose consequences have been propagated. Only
  // evalComb() writes signals, and the loop below mirrors every accepted
  // change, so the shadow stays valid across cycles: the refresh runs once
  // after reset/rewiring/sweep, not every settle.
  if (!shadowValid_) {
    const std::size_t chCap = netlist_.channelCapacity();
    shadow_.resize(chCap);
    for (std::size_t i = 0; i < chCap; ++i) shadow_[i] = signals_[i];
    shadowValid_ = true;
    // Rebuild the clock-edge hot-channel index alongside: every channel that
    // currently carries a token or anti-token. From here on the change loop
    // below keeps it a superset of the post-settle hot set.
    hotChannels_.clear();
    hotInList_.assign(chCap, 0);
    for (const ChannelId ch : liveChannels_) {
      if (signals_[ch].vf || signals_[ch].vb) {
        hotInList_[ch] = 1;
        hotChannels_.push_back(ch);
      }
    }
  }

  // Per-settle state is generation-stamped instead of cleared: the per-cycle
  // cost stays O(active nodes), not O(node capacity), on large idle netlists.
  const std::uint64_t gen = ++settleGen_;
  const std::size_t nodeCap = netlist_.nodeCapacity();
  std::size_t pending = 0;
  std::size_t cursor = nodeCap;  // lowest id that may be pending
  const auto push = [&](NodeId id) {
    if (pendingGen_[id] != gen) {
      pendingGen_[id] = gen;
      ++pending;
      if (id < cursor) cursor = id;
    }
  };

  // Seed: after reset/rewiring every node; after a full (untracked) edge or
  // an unpackState every stateful node; in dirty-tracked steady state only
  // the nodes whose evaluation can actually differ from the previous settled
  // cycle — per-cycle readers (cycle counter, choice bits, unaudited) plus
  // the nodes whose clockEdge ran at the preceding edge (the only ones whose
  // state can have moved). Pure combinational nodes wake up via change
  // propagation either way.
  if (needFullSeed_) {
    for (const NodeId id : liveNodes_) push(id);
  } else if (!sparseSeedValid_) {
    for (const NodeId id : seedNodes_) push(id);
  } else {
    for (const NodeId id : cycleSeedNodes_) push(id);
    for (const NodeId id : prevClocked_) push(id);
  }
  needFullSeed_ = false;

  // Same budget the sweep kernel allows: a node re-evaluated more often than
  // the sweep count can only mean a combinational oscillation.
  const std::uint32_t maxEvals =
      static_cast<std::uint32_t>(2 * liveNodes_.size() + 8);
  // Lowest-id-first extraction: nodes are created roughly in dataflow order,
  // so this batches a wave's changes before evaluating its consumers instead
  // of re-evaluating a join once per arriving input.
  while (pending > 0) {
    while (pendingGen_[cursor] != gen) ++cursor;  // all pending ids are >= cursor
    const NodeId id = static_cast<NodeId>(cursor);
    pendingGen_[id] = 0;  // popped (settleGen_ is never 0, so 0 ≠ any gen)
    --pending;
    if (evalGen_[id] != gen) {
      evalGen_[id] = gen;
      evalCount_[id] = 0;
    }
    if (++evalCount_[id] > maxEvals)
      throw CombinationalCycleError(
          "combinational network did not stabilize: node '" +
          netlist_.node(id).name() + "' re-evaluated more than " +
          std::to_string(maxEvals) +
          " times (combinational cycle in data or control)");
    netlist_.node(id).evalComb(*this);

    bool selfChanged = false;
    for (const auto& [ch, other] : netlist_.adjacency(id)) {
      if (signals_[ch] == shadow_[ch]) continue;
      shadow_[ch] = signals_[ch];
      if (!hotInList_[ch] && (signals_[ch].vf || signals_[ch].vb)) {
        hotInList_[ch] = 1;
        hotChannels_.push_back(ch);
      }
      // State-driven neighbours never read channel signals, so a change
      // cannot alter their (already seeded) evaluation.
      if (!nodeStateDriven_[other]) push(other);
      selfChanged = true;
    }
    // Confirming re-evaluation of unaudited nodes: a contract-abiding node
    // re-run on unchanged inputs reproduces its outputs and settles in one
    // extra pass; a node that oscillates on its own output keeps changing
    // until the budget above fires (matching the sweep kernel's cycle
    // detection). Nodes declaring the contract skip this.
    if (selfChanged && nodeUnaudited_[id]) push(id);
  }
  edgeTrackValid_ = true;
}

void SimContext::settleCrossChecked() {
  ensureTopologyCache();  // grow signal slots BEFORE snapshotting
  const std::vector<ChannelSignals> pre = signals_;
  settleEventDriven();
  std::vector<ChannelSignals> event = std::move(signals_);
  signals_ = pre;
  settleSweep();
  for (const ChannelId id : netlist_.channelIds()) {
    if (signals_[id] == event[id]) continue;
    const auto bit = [](bool v) { return v ? '1' : '0'; };
    const ChannelSignals& s = signals_[id];
    const ChannelSignals& e = event[id];
    throw InternalError(
        std::string("settle cross-check: kernels disagree on channel '") +
        netlist_.channel(id).name + "' at cycle " + std::to_string(cycle_) +
        ": sweep vf/sf/vb/sb=" + bit(s.vf) + bit(s.sf) + bit(s.vb) + bit(s.sb) +
        " data=" + s.data.toHex() + ", event-driven vf/sf/vb/sb=" + bit(e.vf) +
        bit(e.sf) + bit(e.vb) + bit(e.sb) + " data=" + e.data.toHex());
  }
}

void SimContext::checkProtocol() {
  auto report = [&](const Channel& ch, const std::string& what) {
    const std::string msg = "cycle " + std::to_string(cycle_) + ", channel '" +
                            ch.name + "': " + what;
    violations_.push_back(msg);
    if (throwOnViolation_) throw ProtocolError(msg);
  };

  ensureTopologyCache();
  for (const ChannelId id : liveChannels_) {
    const Channel& ch = netlist_.channel(id);
    const ChannelSignals& cur = signals_[id];

    // Invariant (paper §3.1): kill and stop are mutually exclusive, in both
    // polarities.
    if (cur.vf && cur.vb && cur.sf) report(ch, "token killed and stopped (V+ S+ V-)");
    if (cur.vf && cur.vb && cur.sb)
      report(ch, "anti-token killed and stopped (V- S- V+)");

    if (!havePrev_) continue;
    const ChannelSignals& prev = prevSignals_[id];
    const bool relaxed = !channelPersistent_[id];

    // Retry+: a stopped token must persist (with its data) next cycle.
    if (prev.vf && prev.sf && !prev.vb && !relaxed) {
      if (!cur.vf)
        report(ch, "Retry+ violated: stopped token vanished");
      else if (cur.data != prev.data)
        report(ch, "Retry+ persistence violated: data changed during retry");
    }
    // Retry-: a stopped anti-token must persist next cycle.
    if (prev.vb && prev.sb && !prev.vf && !cur.vb)
      report(ch, "Retry- violated: stopped anti-token vanished");
  }
}

void SimContext::edge() {
  ensureTopologyCache();
  if (crossCheck_)
    edgeAudited();
  else if (edgeTrackValid_)
    edgeSparse();
  else
    edgeFull();
  edgeEpilogue();
}

void SimContext::edgeFull() {
  for (const NodeId id : liveNodes_) netlist_.node(id).clockEdge(*this);
  sparseSeedValid_ = false;  // anything may have changed state
}

void SimContext::edgeSparse() {
  // Clock only (a) nodes whose hint demands every cycle and (b) nodes
  // adjacent to a channel with an actual transfer/kill event. Channels that
  // dropped both valids since they were added are compacted out in passing,
  // so a once-hot channel costs one check, not a permanent scan entry.
  const std::uint64_t gen = ++edgeGen_;
  const auto mark = [&](NodeId id) {
    if (edgeMarkGen_[id] != gen) {
      edgeMarkGen_[id] = gen;
      edgeDirty_.push_back(id);
    }
  };
  for (const NodeId id : alwaysEdgeNodes_) mark(id);
  std::size_t keep = 0;
  for (const ChannelId ch : hotChannels_) {
    const ChannelSignals& s = signals_[ch];
    if (!(s.vf || s.vb)) {
      hotInList_[ch] = 0;
      continue;
    }
    hotChannels_[keep++] = ch;
    if (killEvent(s) || fwdTransfer(s) || bwdTransfer(s)) {
      const Channel& c = netlist_.channel(ch);
      mark(c.producer);
      mark(c.consumer);
    }
  }
  hotChannels_.resize(keep);
  for (const NodeId id : edgeDirty_) netlist_.node(id).clockEdge(*this);
  // Record the clocked stateful nodes: they are the only ones whose state can
  // differ at the next settle, so they (plus the per-cycle readers) become
  // the next seed set.
  prevClocked_.clear();
  for (const NodeId id : edgeDirty_)
    if (nodeStateful_[id]) prevClocked_.push_back(id);
  sparseSeedValid_ = true;
  edgeDirty_.clear();
}

void SimContext::edgeAudited() {
  // Reference clockEdge sweep over every node, auditing the EdgeActivity
  // declarations: a node the sparse path would have skipped (kOnEvents, no
  // adjacent event) must not change its serialized state. Channel events are
  // recomputed from scratch — cross-check settles end on the sweep kernel,
  // which invalidates the incremental hot index.
  std::vector<std::uint8_t> nodeHasEvent(netlist_.nodeCapacity(), 0);
  for (const ChannelId ch : liveChannels_) {
    const ChannelSignals& s = signals_[ch];
    if (killEvent(s) || fwdTransfer(s) || bwdTransfer(s)) {
      const Channel& c = netlist_.channel(ch);
      nodeHasEvent[c.producer] = 1;
      nodeHasEvent[c.consumer] = 1;
    }
  }
  prevClocked_.clear();
  for (const NodeId id : liveNodes_) {
    Node& node = netlist_.node(id);
    const bool wouldSkip = nodeEdgeOnEvents_[id] && !nodeHasEvent[id];
    if (!wouldSkip) {
      if (nodeStateful_[id]) prevClocked_.push_back(id);
      node.clockEdge(*this);
      continue;
    }
    StateWriter before;
    node.packState(before);
    node.clockEdge(*this);
    StateWriter after;
    node.packState(after);
    if (before.take() != after.take())
      throw InternalError(
          "edge cross-check: node '" + node.name() + "' (" + node.kindName() +
          ") declares EdgeActivity::kOnEvents but changed state at cycle " +
          std::to_string(cycle_) + " without an adjacent channel event");
  }
  // The audit above just proved the skipped nodes kept their state, so the
  // sparse seed bookkeeping is as valid as after a dirty-tracked edge. This
  // deliberately routes the NEXT cross-checked settle through the sparse
  // seeding path: a node that reads the cycle counter or choice bits in
  // evalComb without declaring evalReadsPerCycleInputs() now shows up as a
  // kernel disagreement instead of hiding behind full re-seeding.
  sparseSeedValid_ = true;
}

void SimContext::edgeEpilogue() {
  // prev() is only consumed by the protocol monitors, so the snapshot is
  // skipped entirely when they are off. Element-wise so BitVec payload
  // storage is reused instead of reallocated.
  if (protocolChecking_) {
    prevSignals_.resize(signals_.size());
    for (std::size_t i = 0; i < signals_.size(); ++i) prevSignals_[i] = signals_[i];
    havePrev_ = true;
  } else {
    havePrev_ = false;
  }
  hasFixedChoices_ = false;
  cachedChoices_.assign(totalChoices_, -1);
  ++cycle_;
}

void SimContext::step() {
  settle();
  if (protocolChecking_) checkProtocol();
  edge();
}

std::vector<std::uint8_t> SimContext::packState() const {
  std::vector<std::uint8_t> out;
  packStateInto(out);
  return out;
}

void SimContext::packStateInto(std::vector<std::uint8_t>& out) const {
  StateWriter w(std::move(out));
  // The live-node cache avoids the nodeIds() allocation on the hot path; it
  // is valid whenever the topology has not moved since the last settle/reset.
  if (topologySeen_ == netlist_.topologyVersion()) {
    for (const NodeId id : liveNodes_) netlist_.node(id).packState(w);
  } else {
    for (const NodeId id : netlist_.nodeIds()) netlist_.node(id).packState(w);
  }
  out = w.take();
}

void SimContext::unpackState(const std::vector<std::uint8_t>& bytes) {
  // Same cached-liveNodes_ fast path as packStateInto: restore runs once per
  // explored edge in the model checker, so the nodeIds() allocation matters.
  ensureTopologyCache();
  StateReader r(bytes);
  for (const NodeId id : liveNodes_) netlist_.node(id).unpackState(r);
  ESL_CHECK(r.done(), "unpackState: trailing bytes (netlist/state mismatch)");
  havePrev_ = false;
  sparseSeedValid_ = false;  // arbitrary state replacement: reseed stateful set
}

}  // namespace esl
