#include "elastic/context.h"

#include <algorithm>

namespace esl {

SimContext::SimContext(Netlist& netlist) : netlist_(netlist) {
  netlist_.validate();
  reset();
}

void SimContext::reset() {
  resizeSignals();
  for (const NodeId id : netlist_.nodeIds()) netlist_.node(id).reset();
  cycle_ = 0;
  havePrev_ = false;
  violations_.clear();
  ensureChoiceMap();
  hasFixedChoices_ = false;
  cachedChoices_.assign(totalChoices_, -1);
}

void SimContext::resizeSignals() {
  signals_.assign(netlist_.channelCapacity(), ChannelSignals{});
  for (const ChannelId id : netlist_.channelIds())
    signals_[id].data = BitVec(netlist_.channel(id).width);
  prevSignals_ = signals_;
}

void SimContext::ensureChoiceMap() {
  choiceOffset_.clear();
  totalChoices_ = 0;
  const auto ids = netlist_.nodeIds();
  const NodeId maxId = ids.empty() ? 0 : ids.back();
  choiceOffset_.assign(maxId + 1, 0);
  for (const NodeId id : ids) {
    choiceOffset_[id] = totalChoices_;
    totalChoices_ += netlist_.node(id).choiceCount();
  }
}

void SimContext::setChoices(std::vector<bool> bits) {
  ESL_CHECK(bits.size() == totalChoices_, "setChoices: wrong bit count");
  fixedChoices_ = std::move(bits);
  hasFixedChoices_ = true;
  cachedChoices_.assign(totalChoices_, -1);
}

void SimContext::setChoiceProvider(std::function<bool(NodeId, unsigned)> fn) {
  choiceProvider_ = std::move(fn);
}

bool SimContext::choice(const Node& node, unsigned idx) {
  ESL_CHECK(idx < node.choiceCount(), "choice index out of range on " + node.name());
  const unsigned slot = choiceOffset_.at(node.id()) + idx;
  if (cachedChoices_[slot] >= 0) return cachedChoices_[slot] != 0;
  bool value = false;
  if (hasFixedChoices_)
    value = fixedChoices_[slot];
  else if (choiceProvider_)
    value = choiceProvider_(node.id(), idx);
  cachedChoices_[slot] = value ? 1 : 0;
  return value;
}

void SimContext::settle() {
  const auto ids = netlist_.nodeIds();
  const unsigned maxIters = static_cast<unsigned>(2 * ids.size() + 8);
  for (unsigned iter = 0; iter < maxIters; ++iter) {
    const std::vector<ChannelSignals> before = signals_;
    for (const NodeId id : ids) netlist_.node(id).evalComb(*this);
    if (signals_ == before && iter > 0) return;
    if (signals_ == before && ids.empty()) return;
  }
  throw CombinationalCycleError(
      "combinational network did not stabilize after " + std::to_string(maxIters) +
      " sweeps (combinational cycle in data or control)");
}

void SimContext::checkProtocol() {
  auto report = [&](const Channel& ch, const std::string& what) {
    const std::string msg = "cycle " + std::to_string(cycle_) + ", channel '" +
                            ch.name + "': " + what;
    violations_.push_back(msg);
    if (throwOnViolation_) throw ProtocolError(msg);
  };

  for (const ChannelId id : netlist_.channelIds()) {
    const Channel& ch = netlist_.channel(id);
    const ChannelSignals& cur = signals_[id];

    // Invariant (paper §3.1): kill and stop are mutually exclusive, in both
    // polarities.
    if (cur.vf && cur.vb && cur.sf) report(ch, "token killed and stopped (V+ S+ V-)");
    if (cur.vf && cur.vb && cur.sb) report(ch, "anti-token killed and stopped (V- S- V+)");

    if (!havePrev_) continue;
    const ChannelSignals& prev = prevSignals_[id];
    const bool relaxed = !netlist_.channelIsPersistent(id);

    // Retry+: a stopped token must persist (with its data) next cycle.
    if (prev.vf && prev.sf && !prev.vb && !relaxed) {
      if (!cur.vf)
        report(ch, "Retry+ violated: stopped token vanished");
      else if (cur.data != prev.data)
        report(ch, "Retry+ persistence violated: data changed during retry");
    }
    // Retry-: a stopped anti-token must persist next cycle.
    if (prev.vb && prev.sb && !prev.vf && !cur.vb)
      report(ch, "Retry- violated: stopped anti-token vanished");
  }
}

void SimContext::edge() {
  for (const NodeId id : netlist_.nodeIds()) netlist_.node(id).clockEdge(*this);
  prevSignals_ = signals_;
  havePrev_ = true;
  hasFixedChoices_ = false;
  cachedChoices_.assign(totalChoices_, -1);
  ++cycle_;
}

void SimContext::step() {
  settle();
  if (protocolChecking_) checkProtocol();
  edge();
}

std::vector<std::uint8_t> SimContext::packState() const {
  StateWriter w;
  for (const NodeId id : netlist_.nodeIds()) netlist_.node(id).packState(w);
  return w.take();
}

void SimContext::unpackState(const std::vector<std::uint8_t>& bytes) {
  StateReader r(bytes);
  for (const NodeId id : netlist_.nodeIds()) netlist_.node(id).unpackState(r);
  ESL_CHECK(r.done(), "unpackState: trailing bytes (netlist/state mismatch)");
  havePrev_ = false;
}

}  // namespace esl
