// Environment nodes: token sources and sinks.
//
// Sources/sinks close a netlist for simulation and verification. They follow
// the SELF protocol faithfully: offered tokens persist until consumed
// (Retry+), emitted anti-tokens persist until delivered (Retry-), and sources
// absorb anti-tokens by cancelling the corresponding upcoming token — which is
// exactly what the open-system trace of Table 1 requires.
//
// Nondet* variants consume per-cycle choice bits so the model checker can
// quantify over all environments; their "fair" parameters bound consecutive
// refusals to keep liveness checkable (bounded fairness, DESIGN.md §5).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "elastic/context.h"
#include "elastic/node.h"

namespace esl {

/// Produces the token stream `gen(0), gen(1), ...` (ended by nullopt).
/// `gate(cycle)` controls when the *next* token may first be offered.
class TokenSource : public Node {
 public:
  using Generator = std::function<std::optional<BitVec>(std::uint64_t index)>;
  using Gate = std::function<bool(std::uint64_t cycle)>;

  TokenSource(std::string name, unsigned width, Generator gen, Gate gate = {});

  /// Convenience: a fixed list of values offered back-to-back.
  static Generator listOf(std::vector<std::uint64_t> values, unsigned width);
  /// Convenience: endless stream counting up from `start`.
  static Generator counting(unsigned width, std::uint64_t start = 0);

  void reset() override;
  void evalComb(SimContext& ctx) override;
  EvalPurity evalPurity() const override { return EvalPurity::kStateDriven; }
  /// Ungated sources only advance on output events (an owed kill is consumed
  /// at the edge of the backward-transfer cycle that created it); a gate makes
  /// the offer decision a function of the cycle counter.
  EdgeActivity edgeActivity() const override {
    return gate_ ? EdgeActivity::kEveryCycle : EdgeActivity::kOnEvents;
  }
  void clockEdge(SimContext& ctx) override;
  void packState(StateWriter& w) const override;
  void unpackState(StateReader& r) override;
  void timing(TimingModel& m) const override;
  Persistence outputPersistence(unsigned) const override {
    return Persistence::kPersistent;
  }
  std::string kindName() const override { return "source"; }

  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t killed() const { return killedCount_; }

 private:
  friend class compile::Vm;

  std::optional<BitVec> tokenAt(std::uint64_t index) const;

  unsigned width_;
  Generator gen_;
  Gate gate_;

  std::uint64_t index_ = 0;
  bool offering_ = false;
  unsigned killCredit_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t killedCount_ = 0;

  // Size-1 memo of gen_(index): the stream is a pure function of the index,
  // and a stalled token would otherwise be regenerated on every evaluation.
  mutable bool memoValid_ = false;
  mutable std::uint64_t memoIndex_ = 0;
  mutable std::optional<BitVec> memoTok_;
};

/// Consumes tokens; readiness controlled by `ready(cycle)`; can inject a
/// budget of anti-tokens upstream (`antiBudget` released by `antiGate`).
/// Records the transfer stream — the observable behaviour for transfer
/// equivalence (paper §3.1).
class TokenSink : public Node {
 public:
  using Gate = std::function<bool(std::uint64_t cycle)>;

  TokenSink(std::string name, unsigned width, Gate ready = {},
            unsigned antiBudget = 0, Gate antiGate = {});

  void reset() override;
  void evalComb(SimContext& ctx) override;
  EvalPurity evalPurity() const override { return EvalPurity::kStateDriven; }
  /// Records transfers and resolves its own anti-tokens, all channel events —
  /// except the anti gate, which opens as a function of the cycle counter.
  EdgeActivity edgeActivity() const override {
    return antiGate_ ? EdgeActivity::kEveryCycle : EdgeActivity::kOnEvents;
  }
  /// The readiness and anti gates read the cycle counter inside evalComb.
  bool evalReadsPerCycleInputs() const override {
    return static_cast<bool>(ready_) || static_cast<bool>(antiGate_);
  }
  void clockEdge(SimContext& ctx) override;
  void packState(StateWriter& w) const override;
  void unpackState(StateReader& r) override;
  void timing(TimingModel& m) const override;
  std::string kindName() const override { return "sink"; }

  struct Transfer {
    std::uint64_t cycle;
    BitVec data;
  };
  const std::vector<Transfer>& transfers() const { return transfers_; }
  std::uint64_t received() const { return transfers_.size(); }

  /// True when behaviour depends on gate closures (then the sink can only be
  /// serialized if it was built from a registry gate spec).
  bool hasGates() const {
    return static_cast<bool>(ready_) || static_cast<bool>(antiGate_);
  }
  unsigned antiBudget() const { return antiBudget_; }

 private:
  friend class compile::Vm;

  unsigned width_;
  Gate ready_;
  Gate antiGate_;
  unsigned antiBudget_;

  unsigned antiRemaining_ = 0;
  bool antiActive_ = false;
  std::vector<Transfer> transfers_;
};

/// Verification source: nondeterministically offers tokens (1 choice bit) and
/// optionally picks the low `dataBits` of the payload nondeterministically
/// (one extra choice bit each; the value persists while the token retries).
/// Bounded anti-token absorption (killCredit capped, back-pressured via S-).
/// Bounded-fair: after `maxIdle` consecutive refusals an offer is forced, so
/// liveness properties are checkable (DESIGN.md §5).
class NondetSource : public Node {
 public:
  NondetSource(std::string name, unsigned width, unsigned killCreditCap = 2,
               unsigned dataBits = 0, unsigned maxIdle = 2);

  void reset() override;
  void evalComb(SimContext& ctx) override;
  EvalPurity evalPurity() const override { return EvalPurity::kStateDriven; }
  void clockEdge(SimContext& ctx) override;
  void packState(StateWriter& w) const override;
  void unpackState(StateReader& r) override;
  unsigned choiceCount() const override { return 1 + dataBits_; }
  Persistence outputPersistence(unsigned) const override {
    return Persistence::kPersistent;
  }
  std::string kindName() const override { return "nondet-source"; }

  unsigned width() const { return width_; }
  unsigned killCreditCap() const { return cap_; }
  unsigned dataBits() const { return dataBits_; }
  unsigned maxIdle() const { return maxIdle_; }

 private:
  friend class compile::Vm;

  bool offeringNow(SimContext& ctx) const;
  BitVec valueNow(SimContext& ctx) const;

  unsigned width_;
  unsigned cap_;
  unsigned dataBits_;
  unsigned maxIdle_;
  bool offering_ = false;
  BitVec value_;
  unsigned killCredit_ = 0;
  unsigned idleStreak_ = 0;
};

/// Verification sink: nondeterministically stops (1 choice bit), but at most
/// `maxConsecutiveStops` cycles in a row (bounded fairness). Optionally also
/// nondeterministically emits anti-tokens (second choice bit).
class NondetSink : public Node {
 public:
  NondetSink(std::string name, unsigned width, unsigned maxConsecutiveStops = 2,
             bool emitsAntiTokens = false);

  void reset() override;
  void evalComb(SimContext& ctx) override;
  EvalPurity evalPurity() const override { return EvalPurity::kStateDriven; }
  void clockEdge(SimContext& ctx) override;
  void packState(StateWriter& w) const override;
  void unpackState(StateReader& r) override;
  unsigned choiceCount() const override { return emitsAnti_ ? 2u : 1u; }
  std::string kindName() const override { return "nondet-sink"; }

  unsigned width() const { return width_; }
  unsigned maxConsecutiveStops() const { return maxStops_; }
  bool emitsAntiTokens() const { return emitsAnti_; }

 private:
  friend class compile::Vm;

  bool stopNow(SimContext& ctx) const;
  bool antiNow(SimContext& ctx) const;

  unsigned width_;
  unsigned maxStops_;
  bool emitsAnti_;
  unsigned consecutiveStops_ = 0;
  bool antiActive_ = false;
};

}  // namespace esl
