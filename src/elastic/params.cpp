#include "elastic/params.h"

#include <charconv>
#include <cmath>

#include "base/error.h"

namespace esl {

namespace {

bool isHexToken(const std::string& s) {
  return s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X');
}

unsigned hexNibble(char c, const std::string& what) {
  if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
  if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A' + 10);
  throw NetlistError(what + ": bad hex digit '" + std::string(1, c) + "'");
}

}  // namespace

std::uint64_t parseU64(const std::string& text, const std::string& what) {
  if (text.empty()) throw NetlistError(what + ": empty number");
  std::uint64_t v = 0;
  const bool hex = isHexToken(text);
  const char* first = text.data() + (hex ? 2 : 0);
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, v, hex ? 16 : 10);
  if (ec != std::errc{} || ptr != last)
    throw NetlistError(what + ": bad number '" + text + "'");
  return v;
}

std::int64_t parseI64(const std::string& text, const std::string& what) {
  if (!text.empty() && text[0] == '-')
    return -static_cast<std::int64_t>(parseU64(text.substr(1), what));
  return static_cast<std::int64_t>(parseU64(text, what));
}

double parseReal(const std::string& text, const std::string& what) {
  double v = 0.0;
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), last, v);
  if (text.empty() || ec != std::errc{} || ptr != last)
    throw NetlistError(what + ": bad real '" + text + "'");
  return v;
}

BitVec parseBits(const std::string& text, unsigned width, const std::string& what) {
  if (!isHexToken(text)) {
    const std::uint64_t v = parseU64(text, what);
    if (width < 64 && (v >> width) != 0)
      throw NetlistError(what + ": value '" + text + "' wider than " +
                         std::to_string(width) + " bits");
    return BitVec(width, v);
  }
  BitVec v(width);
  const std::string digits = text.substr(2);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    const unsigned nib = hexNibble(digits[digits.size() - 1 - i], what);
    for (unsigned b = 0; b < 4; ++b) {
      const unsigned pos = static_cast<unsigned>(4 * i + b);
      if ((nib >> b) & 1) {
        if (pos >= width)
          throw NetlistError(what + ": value '" + text + "' wider than " +
                             std::to_string(width) + " bits");
        v.setBit(pos, true);
      }
    }
  }
  return v;
}

std::string realToken(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  ESL_CHECK(ec == std::errc{}, "realToken: value not serializable");
  return std::string(buf, ptr);
}

Params& Params::set(const std::string& key, std::string value) {
  for (auto& [k, v] : kv_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  kv_.emplace_back(key, std::move(value));
  return *this;
}

Params& Params::setU64(const std::string& key, std::uint64_t v) {
  return set(key, std::to_string(v));
}

Params& Params::setI64(const std::string& key, std::int64_t v) {
  return set(key, std::to_string(v));
}

Params& Params::setReal(const std::string& key, double v) {
  return set(key, realToken(v));
}

Params& Params::setBits(const std::string& key, const BitVec& v) {
  return set(key, v.toHex());
}

Params& Params::setU64List(const std::string& key,
                           const std::vector<std::uint64_t>& v) {
  std::string s;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) s += ',';
    s += std::to_string(v[i]);
  }
  return set(key, std::move(s));
}

Params& Params::setBitsList(const std::string& key, const std::vector<BitVec>& v) {
  std::string s;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) s += ',';
    s += v[i].toHex();
  }
  return set(key, std::move(s));
}

const std::string* Params::find(const std::string& key) const {
  if (read_.size() != kv_.size()) read_.resize(kv_.size(), false);
  for (std::size_t i = 0; i < kv_.size(); ++i) {
    if (kv_[i].first == key) {
      read_[i] = true;
      return &kv_[i].second;
    }
  }
  return nullptr;
}

bool Params::has(const std::string& key) const { return find(key) != nullptr; }

std::string Params::str(const std::string& key) const {
  const std::string* v = find(key);
  if (v == nullptr) throw NetlistError("missing attribute '" + key + "'");
  return *v;
}

std::string Params::str(const std::string& key, const std::string& fallback) const {
  const std::string* v = find(key);
  return v == nullptr ? fallback : *v;
}

std::uint64_t Params::u64(const std::string& key) const {
  return parseU64(str(key), "attribute '" + key + "'");
}

std::uint64_t Params::u64(const std::string& key, std::uint64_t fallback) const {
  const std::string* v = find(key);
  return v == nullptr ? fallback : parseU64(*v, "attribute '" + key + "'");
}

std::int64_t Params::i64(const std::string& key, std::int64_t fallback) const {
  const std::string* v = find(key);
  return v == nullptr ? fallback : parseI64(*v, "attribute '" + key + "'");
}

double Params::real(const std::string& key, double fallback) const {
  const std::string* v = find(key);
  return v == nullptr ? fallback : parseReal(*v, "attribute '" + key + "'");
}

BitVec Params::bits(const std::string& key, unsigned width) const {
  return parseBits(str(key), width, "attribute '" + key + "'");
}

std::vector<std::string> Params::splitList(const std::string& value) {
  std::vector<std::string> out;
  if (value.empty()) return out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = value.find(',', start);
    out.push_back(value.substr(start, comma - start));
    if (comma == std::string::npos) return out;
    start = comma + 1;
  }
}

std::vector<std::uint64_t> Params::u64List(const std::string& key) const {
  std::vector<std::uint64_t> out;
  for (const std::string& item : splitList(str(key, "")))
    out.push_back(parseU64(item, "attribute '" + key + "'"));
  return out;
}

std::vector<BitVec> Params::bitsList(const std::string& key, unsigned width) const {
  std::vector<BitVec> out;
  for (const std::string& item : splitList(str(key, "")))
    out.push_back(parseBits(item, width, "attribute '" + key + "'"));
  return out;
}

void Params::checkConsumed(const std::string& context) const {
  if (read_.size() != kv_.size()) read_.resize(kv_.size(), false);
  std::string unknown;
  for (std::size_t i = 0; i < kv_.size(); ++i)
    if (!read_[i]) unknown += (unknown.empty() ? "" : ", ") + kv_[i].first;
  if (!unknown.empty())
    throw NetlistError(context + ": unknown attribute(s): " + unknown);
}

void Params::consumePrefix(const std::string& prefix) const {
  if (read_.size() != kv_.size()) read_.resize(kv_.size(), false);
  for (std::size_t i = 0; i < kv_.size(); ++i)
    if (kv_[i].first.rfind(prefix, 0) == 0) read_[i] = true;
}

}  // namespace esl
