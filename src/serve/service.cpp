#include "serve/service.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "base/fault_inject.h"
#include "sim/state_file.h"

namespace esl::serve {

namespace {

bool validSessionId(const std::string& sid) {
  if (sid.empty() || sid.size() > 64) return false;
  for (const char c : sid) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Service::Service(Config config)
    : config_(std::move(config)), executor_(config_.workers) {
  ESL_CHECK(config_.quantumCycles > 0, "quantumCycles must be positive");
  ESL_CHECK(config_.maxResident > 0, "maxResident must be positive");
  if (config_.spoolDir.empty()) {
    char tmpl[] = "/tmp/esl-serve-spool-XXXXXX";
    ESL_CHECK(::mkdtemp(tmpl) != nullptr, "cannot create a spool directory");
    config_.spoolDir = tmpl;
    ownsSpoolDir_ = true;
  }
  ESL_CHECK(!config_.durable || !ownsSpoolDir_,
            "durable mode needs a persistent spool directory (set spoolDir)");
  spool_.open(config_.spoolDir, /*persistent=*/!ownsSpoolDir_);
  if (spool_.persistent()) {
    // Restart recovery: re-attach every session whose record verifies.
    // Re-attachment is lazy — entries start evicted and restore on first
    // touch, so a spool of thousands costs startup only a scan.
    std::vector<std::string> warnings;
    std::uint64_t quarantined = 0;
    const std::vector<SpoolDir::Recovered> found =
        spool_.recover(warnings, &quarantined);
    for (const std::string& w : warnings) emitWarning("recovery: " + w);
    stats_.quarantined = quarantined;
    for (const SpoolDir::Recovered& r : found) {
      if (!validSessionId(r.sid)) {
        emitWarning("recovery: ignoring record with invalid session id '" +
                    r.sid + "'");
        continue;
      }
      auto e = std::make_unique<Entry>();
      e->id = r.sid;
      e->spoolPath = r.path;
      e->lastUse = ++tick_;
      table_.emplace(r.sid, std::move(e));
      ++stats_.recovered;
    }
  }
}

Service::~Service() {
  // Turns re-submit themselves while work remains, each before its own task
  // returns, so waitIdle() cannot wake between chunks of a chain. Parked
  // sessions with queued work hold no task, so this returns; the server is
  // expected to close every session before destroying the service.
  try {
    executor_.waitIdle();
  } catch (...) {
    // Turns catch their own exceptions into op promises; nothing expected.
  }
  if (ownsSpoolDir_) {
    // Private temp dir dies with the service. A persistent dir keeps its
    // records and journal: that is the restart story.
    for (const auto& [id, e] : table_)
      if (!e->spoolPath.empty()) std::remove(e->spoolPath.c_str());
    ::rmdir(config_.spoolDir.c_str());
  }
}

void Service::emitWarning(const std::string& message) {
  if (config_.warn) {
    config_.warn(message);
    return;
  }
  std::fprintf(stderr, "esl serve: %s\n", message.c_str());
  std::fflush(stderr);
}

void Service::checkpoint(Entry& e) {
  if (!config_.durable || e.session == nullptr || e.session->watching()) return;
  try {
    spool_.writeRecord(e.id, e.session->spoolSave());
  } catch (const EslError& ex) {
    // The operation already succeeded in memory; losing one checkpoint
    // degrades crash coverage, not correctness.
    emitWarning("session '" + e.id +
                "': durable checkpoint failed: " + ex.what());
  }
}

Service::Entry* Service::findLocked(const std::string& sid) {
  const auto it = table_.find(sid);
  if (it == table_.end() || it->second->closing)
    throw NotFoundError("no session '" + sid + "'");
  return it->second.get();
}

std::string Service::open(const std::string& sid, NetlistSpec spec,
                          const std::string& origin,
                          SimSession::Options options) {
  ESL_CHECK(validSessionId(sid),
            "session id must be 1-64 chars of [A-Za-z0-9._-], got '" + sid + "'");
  {
    std::unique_lock<std::mutex> lk(m_);
    if (draining_)
      throw DrainingError("service is draining for shutdown; retry after restart");
    ESL_CHECK(table_.find(sid) == table_.end(),
              "session '" + sid + "' already exists");
    // Placeholder claims the name; `running` parks arriving ops in its queue
    // until the build below installs the session.
    auto e = std::make_unique<Entry>();
    e->id = sid;
    e->running = true;
    e->lastUse = ++tick_;
    table_.emplace(sid, std::move(e));
  }
  std::string status;
  try {
    reserveResidency();
    try {
      auto session = std::make_unique<SimSession>(std::move(spec), origin, options);
      Netlist& nl = session->netlist();
      status = "session '" + sid + "': " + std::to_string(nl.nodeIds().size()) +
               " nodes, " + std::to_string(nl.channelIds().size()) + " channels\n";
      Entry* installed = nullptr;
      {
        std::unique_lock<std::mutex> lk(m_);
        installed = table_.at(sid).get();
        installed->session = std::move(session);
        ++stats_.opened;
      }
      checkpoint(*installed);  // `running` still claims the entry
    } catch (...) {
      std::unique_lock<std::mutex> lk(m_);
      --resident_;
      throw;
    }
  } catch (...) {
    std::unique_lock<std::mutex> lk(m_);
    Entry* e = table_.at(sid).get();
    // Ops that raced in while the name was claimed fail with the close path.
    e->closing = true;
    e->running = false;
    finishClose(lk, *e);
    throw;
  }
  bool kickIt = false;
  {
    std::unique_lock<std::mutex> lk(m_);
    Entry* e = table_.at(sid).get();
    e->lastUse = ++tick_;
    if (e->closing) {
      finishClose(lk, *e);
      return status;
    }
    if (!e->queue.empty() && !e->parked)
      kickIt = true;
    else
      e->running = false;
  }
  if (kickIt)
    executor_.submit([this, sid] { runTurn(sid); });
  return status;
}

std::string Service::enqueue(const std::string& sid,
                             std::function<std::string(SimSession&)> fn,
                             std::uint64_t stepCycles) {
  auto done = std::make_shared<std::promise<std::string>>();
  std::future<std::string> fut = done->get_future();
  bool kickIt = false;
  {
    std::unique_lock<std::mutex> lk(m_);
    if (draining_)
      throw DrainingError("service is draining for shutdown; retry after restart");
    Entry* e = findLocked(sid);
    e->queue.push_back(Op{std::move(fn), stepCycles, done});
    e->lastUse = ++tick_;
    if (!e->running && !e->parked) {
      e->running = true;
      kickIt = true;
    }
  }
  if (kickIt)
    executor_.submit([this, sid] { runTurn(sid); });
  return fut.get();
}

std::string Service::command(const std::string& sid, const std::string& line) {
  return enqueue(sid, [line](SimSession& s) { return s.command(line); });
}

std::string Service::step(const std::string& sid, std::uint64_t cycles) {
  if (cycles == 0) return sinks(sid);
  return enqueue(sid, nullptr, cycles);
}

std::string Service::sinks(const std::string& sid) {
  return enqueue(sid, [](SimSession& s) { return s.report(); });
}

std::string Service::tput(const std::string& sid, const std::string& channel) {
  return enqueue(sid, [channel](SimSession& s) { return s.tputLine(channel); });
}

std::uint64_t Service::cycle(const std::string& sid) {
  return std::stoull(
      enqueue(sid, [](SimSession& s) { return std::to_string(s.cycle()); }));
}

std::vector<std::uint8_t> Service::snapshot(const std::string& sid) {
  const std::string bytes = enqueue(sid, [](SimSession& s) {
    const std::vector<std::uint8_t> snap = s.snapshot();
    return std::string(snap.begin(), snap.end());
  });
  return std::vector<std::uint8_t>(bytes.begin(), bytes.end());
}

void Service::restore(const std::string& sid, std::vector<std::uint8_t> bytes) {
  enqueue(sid, [bytes = std::move(bytes)](SimSession& s) {
    s.restore(bytes);
    return std::string("restored at cycle ") + std::to_string(s.cycle()) + "\n";
  });
}

void Service::watch(const std::string& sid, std::vector<std::string> channels) {
  enqueue(sid, [channels = std::move(channels)](SimSession& s) {
    s.watch(channels);
    return std::string();
  });
}

std::string Service::drain(const std::string& sid, std::size_t maxBytes,
                           bool* more) {
  std::string out;
  bool kickIt = false;
  {
    std::unique_lock<std::mutex> lk(m_);
    Entry* e = findLocked(sid);
    const std::size_t n = std::min(maxBytes, e->outbox.size());
    out = e->outbox.substr(0, n);
    e->outbox.erase(0, n);
    if (more != nullptr) *more = !e->outbox.empty();
    e->lastUse = ++tick_;
    if (e->parked && e->outbox.size() <= config_.streamHighWater / 2) {
      e->parked = false;
      if (!e->running && !e->queue.empty()) {
        e->running = true;
        kickIt = true;
      }
    }
  }
  if (kickIt)
    executor_.submit([this, sid] { runTurn(sid); });
  return out;
}

void Service::close(const std::string& sid) {
  std::future<void> fut;
  {
    std::unique_lock<std::mutex> lk(m_);
    Entry* e = findLocked(sid);
    e->closing = true;
    if (!e->running) {
      finishClose(lk, *e);
      return;
    }
    auto waiter = std::make_shared<std::promise<void>>();
    fut = waiter->get_future();
    e->closeWaiters.push_back(std::move(waiter));
  }
  fut.get();
}

void Service::failQueueDraining(Entry& e, std::vector<Op>& failed) {
  for (Op& op : e.queue) failed.push_back(std::move(op));
  e.queue.clear();
}

std::size_t Service::drainAndSpool() {
  ESL_CHECK(spool_.persistent(),
            "drainAndSpool needs a persistent spool directory");
  {
    std::unique_lock<std::mutex> lk(m_);
    draining_ = true;
  }
  // In-flight turns observe draining_ at their next quantum boundary and
  // abort; no new turns start. After the executor empties, parked or idle
  // sessions may still hold queued ops — fail those here.
  try {
    executor_.waitIdle();
  } catch (...) {
  }
  std::vector<Op> failed;
  std::vector<Entry*> toSpool;
  std::size_t spooled = 0;
  {
    std::unique_lock<std::mutex> lk(m_);
    for (const auto& [id, e] : table_) {
      failQueueDraining(*e, failed);
      if (e->closing) continue;
      if (e->session == nullptr) {
        // Already evicted: its durable record is the spooled state.
        if (!e->spoolPath.empty()) ++spooled;
        continue;
      }
      if (e->running) continue;  // an open() still installing; state not ours
      e->running = true;  // claims `session`; close() will wait for us
      toSpool.push_back(e.get());
    }
  }
  for (const Op& op : failed)
    op.done->set_exception(std::make_exception_ptr(DrainingError(
        "step aborted at quantum boundary: service is draining for shutdown")));
  for (Entry* e : toSpool) {
    if (e->session->watching())
      emitWarning("session '" + e->id +
                  "': watch state is stream-local and will not survive the "
                  "restart");
    std::string spoolError;
    try {
      spool_.writeRecord(e->id, e->session->spoolSave());
    } catch (const EslError& ex) {
      spoolError = ex.what();
    }
    std::unique_lock<std::mutex> lk(m_);
    e->running = false;
    if (spoolError.empty()) {
      e->session.reset();
      e->spoolPath = spool_.recordPath(e->id);
      --resident_;
      ++stats_.evictions;
      ++spooled;
    } else {
      lk.unlock();
      emitWarning("session '" + e->id +
                  "': drain spool failed, state lost: " + spoolError);
      lk.lock();
    }
    if (e->closing) finishClose(lk, *e);
  }
  return spooled;
}

std::vector<std::string> Service::sessionIds() {
  std::unique_lock<std::mutex> lk(m_);
  std::vector<std::string> ids;
  ids.reserve(table_.size());
  for (const auto& [id, e] : table_)
    if (!e->closing) ids.push_back(id);
  return ids;
}

Service::Stats Service::stats() {
  std::unique_lock<std::mutex> lk(m_);
  Stats s = stats_;
  s.sessions = table_.size();
  s.resident = resident_;
  return s;
}

void Service::finishClose(std::unique_lock<std::mutex>& lk, Entry& e) {
  std::deque<Op> dropped = std::move(e.queue);
  auto waiters = std::move(e.closeWaiters);
  const std::string sid = e.id;
  if (e.session != nullptr) --resident_;
  table_.erase(sid);  // destroys e
  lk.unlock();
  // Remove the durable record too: a closed session must not resurrect on
  // restart. Covers both evicted records and durable-mode checkpoints.
  spool_.removeRecord(sid);
  for (const Op& op : dropped)
    op.done->set_exception(
        std::make_exception_ptr(NotFoundError("session '" + sid + "' closed")));
  for (const auto& w : waiters) w->set_value();
}

void Service::reserveResidency() {
  while (true) {
    Entry* victim = nullptr;
    {
      std::unique_lock<std::mutex> lk(m_);
      if (resident_ < config_.maxResident) {
        ++resident_;
        stats_.peakResident =
            std::max<std::uint64_t>(stats_.peakResident, resident_);
        return;
      }
      for (const auto& [id, ep] : table_) {
        Entry& c = *ep;
        // Evictable = resident and fully idle. Watching sessions are pinned:
        // the trace letter table is stream state the spool does not carry.
        if (c.session == nullptr || c.running || c.closing || c.watching ||
            !c.queue.empty())
          continue;
        if (victim == nullptr || c.lastUse < victim->lastUse) victim = &c;
      }
      if (victim == nullptr) {
        ++stats_.denied;
        throw AdmissionError(
            "resident session cap (" + std::to_string(config_.maxResident) +
            ") reached and no idle session is evictable; close or drain "
            "sessions and retry");
      }
      victim->running = true;  // claims `session` for the spool write
    }
    std::string spoolError;
    try {
      spool_.writeRecord(victim->id, victim->session->spoolSave());
    } catch (const EslError& ex) {
      spoolError = ex.what();
    }
    bool kickIt = false;
    std::string vid;
    {
      std::unique_lock<std::mutex> lk(m_);
      vid = victim->id;
      victim->running = false;
      if (spoolError.empty()) {
        victim->session.reset();
        victim->spoolPath = spool_.recordPath(vid);
        --resident_;
        ++stats_.evictions;
      }
      if (victim->closing) {
        finishClose(lk, *victim);
      } else if (!victim->queue.empty() && !victim->parked) {
        victim->running = true;
        kickIt = true;
      }
    }
    if (kickIt)
      executor_.submit([this, vid] { runTurn(vid); });
    if (!spoolError.empty()) {
      // Graceful degradation: an unwritable spool (disk full, injected
      // fault) refuses the admission instead of crashing the daemon. The
      // victim stays resident and intact.
      std::unique_lock<std::mutex> lk(m_);
      ++stats_.denied;
      lk.unlock();
      throw AdmissionError("cannot spool session '" + vid +
                           "' to make room: " + spoolError +
                           "; admission refused");
    }
  }
}

void Service::ensureResident(Entry& e) {
  if (e.session != nullptr) return;
  reserveResidency();
  try {
    auto session = SimSession::spoolLoad(spool_.readRecord(e.id));
    {
      std::unique_lock<std::mutex> lk(m_);
      e.session = std::move(session);
      e.spoolPath.clear();
      ++stats_.restores;
    }
    // Durable mode keeps the on-disk record: it still matches the restored
    // state exactly, and the next completed op rewrites it. Otherwise the
    // record would go stale the moment the session steps — remove it so a
    // crash can never resurrect an outdated state.
    if (!config_.durable) spool_.removeRecord(e.id);
  } catch (...) {
    std::unique_lock<std::mutex> lk(m_);
    --resident_;
    throw;
  }
}

void Service::runTurn(const std::string& sid) {
  Entry* e = nullptr;
  Op op;
  bool isStep = false;
  {
    std::unique_lock<std::mutex> lk(m_);
    const auto it = table_.find(sid);
    if (it == table_.end()) return;
    e = it->second.get();
    if (e->closing) {
      finishClose(lk, *e);
      return;
    }
    if (draining_) {
      // Abort at the quantum boundary: fail everything queued (including a
      // mid-flight step op still at the front) and stop. drainAndSpool()
      // spools the session's current state once the executor empties.
      std::vector<Op> failed;
      failQueueDraining(*e, failed);
      e->running = false;
      lk.unlock();
      for (const Op& f : failed)
        f.done->set_exception(std::make_exception_ptr(DrainingError(
            "step aborted at quantum boundary: service is draining for "
            "shutdown")));
      return;
    }
    if (e->parked || e->queue.empty()) {
      e->running = false;
      return;
    }
    isStep = e->queue.front().stepCycles > 0;
    if (isStep) {
      op = e->queue.front();  // stays queued until its last chunk completes
    } else {
      op = std::move(e->queue.front());
      e->queue.pop_front();
    }
  }
  try {
    ensureResident(*e);
    if (!isStep) {
      std::string out = op.fn(*e->session);
      {
        std::unique_lock<std::mutex> lk(m_);
        e->watching = e->session->watching();
        ++stats_.ops;
      }
      checkpoint(*e);
      op.done->set_value(std::move(out));
    } else {
      std::uint64_t remaining = 0;
      {
        std::unique_lock<std::mutex> lk(m_);
        remaining = e->queue.front().stepCycles;
      }
      const std::uint64_t chunk = std::min(remaining, config_.quantumCycles);
      e->session->step(chunk);
      // The scheduler's kill-at-quantum-boundary hook: a kExit plan here is
      // the deterministic SIGKILL the crash tests recover from.
      fault::hitPoint("serve-quantum");
      std::string stream;
      if (e->session->watching()) stream = e->session->drainStream();
      bool opDone = false;
      {
        std::unique_lock<std::mutex> lk(m_);
        e->queue.front().stepCycles -= chunk;
        opDone = e->queue.front().stepCycles == 0;
        if (!stream.empty()) {
          e->outbox += stream;
          if (e->outbox.size() >= config_.streamHighWater) e->parked = true;
        }
        if (opDone) {
          e->queue.pop_front();
          ++stats_.ops;
        }
      }
      if (opDone) {
        checkpoint(*e);
        op.done->set_value(e->session->report());
      }
    }
  } catch (...) {
    {
      std::unique_lock<std::mutex> lk(m_);
      // A failed step op is still at the front of the queue; drop it.
      if (isStep && !e->queue.empty() && e->queue.front().done == op.done)
        e->queue.pop_front();
    }
    op.done->set_exception(std::current_exception());
  }
  bool resubmit = false;
  {
    std::unique_lock<std::mutex> lk(m_);
    e->lastUse = ++tick_;
    if (e->closing) {
      finishClose(lk, *e);
      return;
    }
    if (!e->parked && !e->queue.empty())
      resubmit = true;
    else
      e->running = false;
  }
  if (resubmit)
    executor_.submit([this, sid] { runTurn(sid); });
}

}  // namespace esl::serve
