#include "serve/session.h"

#include <iomanip>
#include <sstream>

#include "base/error.h"
#include "elastic/endpoints.h"
#include "elastic/state_io.h"
#include "frontend/esl_format.h"
#include "sim/state_file.h"

namespace esl::serve {

namespace {

void writeString(StateWriter& w, const std::string& s) {
  w.writeU64(s.size());
  w.writeBytes(s.data(), s.size());
}

std::string readString(StateReader& r) {
  const std::uint64_t n = r.readU64();
  const std::vector<std::uint8_t> bytes = r.readBytes(static_cast<std::size_t>(n));
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace

SimSession::SimSession(NetlistSpec spec, const std::string& origin, Options options)
    : origin_(origin), options_(options) {
  shell_.loadSpec(std::move(spec), origin);
  makeSimulator();
}

void SimSession::makeSimulator() {
  sim::SimOptions opts;
  opts.checkProtocol = options_.checkProtocol;
  // Violations are reported through report(), shell-style, never thrown.
  opts.throwOnViolation = false;
  opts.seed = options_.seed;
  opts.crossCheckKernels = options_.crossCheck;
  opts.shards = options_.shards;
  opts.backend = options_.backend;
  sim_ = std::make_unique<sim::Simulator>(*shell_.netlist(), opts);
  if (trace_ != nullptr) sim_->attachTrace(trace_.get());
}

std::string SimSession::command(const std::string& line) {
  std::istringstream is(line);
  std::string verb;
  is >> verb;
  // build/load/undo/redo replace the netlist the live simulator holds a
  // reference into; sim/tput/trace would construct a second Simulator over the
  // same node objects and clobber their sequential state; save writes to the
  // daemon's filesystem. All have serve-native equivalents.
  for (const char* v : {"build", "load", "save", "undo", "redo", "sim", "tput",
                        "trace"}) {
    if (verb == v)
      throw EslError("'" + verb +
                     "' is not available in a serve session; use the serve "
                     "open/step/query/snapshot/watch ops instead");
  }
  return shell_.execute(line);
}

void SimSession::step(std::uint64_t cycles) { sim_->run(cycles); }

std::string SimSession::report() {
  return sim::runReport(*shell_.netlist(), sim_->ctx(), &sinkCarry_,
                        violationCarry_);
}

std::string SimSession::tputLine(const std::string& channel) {
  Netlist& nl = *shell_.netlist();
  const Channel* ch = nl.findChannel(channel);
  ESL_CHECK(ch != nullptr, "no channel named '" + channel + "'");
  std::uint64_t fwd = sim_->channelStatsOrZero(ch->id).fwdTransfers;
  const auto it = statCarry_.find(channel);
  if (it != statCarry_.end()) fwd += it->second.fwdTransfers;
  const std::uint64_t cycles = sim_->cycle();
  const double tput =
      cycles == 0 ? 0.0 : static_cast<double>(fwd) / static_cast<double>(cycles);
  std::ostringstream os;
  os << "throughput(" << channel << ") = " << std::fixed << std::setprecision(4)
     << tput << "\n";
  return os.str();
}

std::uint64_t SimSession::violationCount() {
  return sim_->ctx().protocolViolations().size() + violationCarry_;
}

std::vector<std::uint8_t> SimSession::snapshot() { return sim_->ctx().packState(); }

void SimSession::restore(const std::vector<std::uint8_t>& bytes) {
  sim::checkSnapshotHeader(bytes, "restore");
  // CLI --load-state semantics: a fresh simulator (perf logs and carries start
  // at zero), then the snapshot's sequential state and cycle counter.
  makeSimulator();
  sim_->ctx().unpackState(bytes);
  sinkCarry_.clear();
  statCarry_.clear();
  violationCarry_ = 0;
}

void SimSession::watch(const std::vector<std::string>& channels) {
  if (channels.empty()) {
    trace_.reset();
    sim_->attachTrace(nullptr);
    return;
  }
  auto trace = std::make_unique<sim::TraceRecorder>();
  Netlist& nl = *shell_.netlist();
  for (const std::string& name : channels) {
    const Channel* ch = nl.findChannel(name);
    ESL_CHECK(ch != nullptr, "no channel named '" + name + "'");
    trace->addChannel(ch->id, name);
  }
  trace_ = std::move(trace);
  sim_->attachTrace(trace_.get());
}

std::string SimSession::drainStream() {
  ESL_CHECK(trace_ != nullptr, "session is not watching any channels");
  return trace_->drainStreamText();
}

std::vector<std::uint8_t> SimSession::spoolSave() {
  Netlist& nl = *shell_.netlist();
  StateWriter w;
  w.writeU32(kSpoolMagic);
  w.writeU32(kSpoolVersion);
  w.writeU32(static_cast<std::uint32_t>(options_.backend));
  w.writeU32(options_.shards);
  w.writeU64(options_.seed);
  w.writeBool(options_.checkProtocol);
  w.writeBool(options_.crossCheck);
  writeString(w, origin_);
  // The transformed design as .esl text: fromNetlist -> build is bit-identical
  // (a gated invariant), which is what makes the spool a faithful park.
  writeString(w, frontend::printEsl(NetlistSpec::fromNetlist(nl)));
  const std::vector<std::uint8_t> snap = sim_->ctx().packState();
  w.writeU64(snap.size());
  w.writeBytes(snap.data(), snap.size());

  // Perf-side history, folded down to totals: existing carries plus whatever
  // the live simulator has accumulated since the last restore.
  std::map<std::string, std::uint64_t> sinks = sinkCarry_;
  for (const NodeId id : nl.nodeIds()) {
    if (const auto* sink = dynamic_cast<const TokenSink*>(&nl.node(id)))
      sinks[sink->name()] += sink->received();
  }
  w.writeU64(sinks.size());
  for (const auto& [name, n] : sinks) {
    writeString(w, name);
    w.writeU64(n);
  }
  std::map<std::string, sim::ChannelStats> stats = statCarry_;
  for (const ChannelId ch : nl.channelIds()) {
    const sim::ChannelStats live = sim_->channelStatsOrZero(ch);
    sim::ChannelStats& acc = stats[nl.channel(ch).name];
    acc.fwdTransfers += live.fwdTransfers;
    acc.kills += live.kills;
    acc.bwdTransfers += live.bwdTransfers;
  }
  w.writeU64(stats.size());
  for (const auto& [name, st] : stats) {
    writeString(w, name);
    w.writeU64(st.fwdTransfers);
    w.writeU64(st.kills);
    w.writeU64(st.bwdTransfers);
  }
  w.writeU64(violationCount());
  return w.take();
}

std::unique_ptr<SimSession> SimSession::spoolLoad(
    const std::vector<std::uint8_t>& record) {
  StateReader r(record);
  ESL_CHECK(r.readU32() == kSpoolMagic, "not an esl session spool record (bad magic)");
  const std::uint32_t version = r.readU32();
  ESL_CHECK(version == kSpoolVersion,
            "unsupported spool version " + std::to_string(version));
  Options opts;
  opts.backend = static_cast<SimContext::Backend>(r.readU32());
  opts.shards = r.readU32();
  opts.seed = r.readU64();
  opts.checkProtocol = r.readBool();
  opts.crossCheck = r.readBool();
  const std::string origin = readString(r);
  const std::string esl = readString(r);
  auto session = std::make_unique<SimSession>(frontend::parseEsl(esl, origin),
                                              origin, opts);
  const std::uint64_t snapSize = r.readU64();
  session->sim_->ctx().unpackState(
      r.readBytes(static_cast<std::size_t>(snapSize)));
  const std::uint64_t sinkCount = r.readU64();
  for (std::uint64_t i = 0; i < sinkCount; ++i) {
    const std::string name = readString(r);
    session->sinkCarry_[name] = r.readU64();
  }
  const std::uint64_t statCount = r.readU64();
  for (std::uint64_t i = 0; i < statCount; ++i) {
    const std::string name = readString(r);
    sim::ChannelStats& st = session->statCarry_[name];
    st.fwdTransfers = r.readU64();
    st.kills = r.readU64();
    st.bwdTransfers = r.readU64();
  }
  session->violationCarry_ = r.readU64();
  ESL_CHECK(r.done(), "trailing bytes in spool record");
  return session;
}

}  // namespace esl::serve
