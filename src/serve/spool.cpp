#include "serve/spool.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "base/error.h"
#include "serve/json.h"
#include "sim/state_file.h"

namespace esl::serve {

namespace {

bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Appends `line` (which must end in '\n') to `path` and fsyncs it so the
/// journal entry is durable before its record is renamed into place.
void appendSynced(const std::string& path, const std::string& line) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0600);
  ESL_CHECK(fd >= 0,
            "cannot append to '" + path + "': " + std::strerror(errno));
  const char* p = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t w = ::write(fd, p, left);
    if (w < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw EslError("append to '" + path + "' failed: " + why);
    }
    p += w;
    left -= static_cast<std::size_t>(w);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    const std::string why = std::strerror(errno);
    throw EslError("cannot sync '" + path + "': " + why);
  }
}

std::string journalLine(const std::string& event, const std::string& sid) {
  json::Value line = json::Value::object();
  line.set("event", json::Value::str(event));
  line.set("sid", json::Value::str(sid));
  return line.dump() + "\n";
}

}  // namespace

void SpoolDir::open(const std::string& dir, bool persistent) {
  ESL_CHECK(!dir.empty(), "spool directory path is empty");
  if (::mkdir(dir.c_str(), 0700) != 0 && errno != EEXIST)
    throw EslError("cannot create spool directory '" + dir +
                   "': " + std::strerror(errno));
  dir_ = dir;
  persistent_ = persistent;
}

void SpoolDir::writeRecord(const std::string& sid,
                           const std::vector<std::uint8_t>& payload) {
  if (persistent_) journalAppend("spool", sid);
  sim::writeRecordFile(recordPath(sid), payload, "spool-write");
}

std::vector<std::uint8_t> SpoolDir::readRecord(const std::string& sid) const {
  return sim::readRecordFile(recordPath(sid));
}

void SpoolDir::removeRecord(const std::string& sid) {
  std::remove(recordPath(sid).c_str());
  if (persistent_) journalAppend("close", sid);
}

void SpoolDir::journalAppend(const std::string& event, const std::string& sid) {
  std::lock_guard<std::mutex> lk(m_);
  if (event == "spool") {
    if (!journaled_.insert(sid).second) return;  // already journaled live
  } else {
    if (journaled_.erase(sid) == 0) return;  // never journaled: nothing to do
  }
  appendSynced(journalPath(), journalLine(event, sid));
  ++journalLines_;
  // A long-lived daemon churning sessions grows the journal without bound;
  // fold it back to one line per live session once the slack dominates.
  if (journalLines_ > 64 && journalLines_ > 4 * journaled_.size())
    journalCompactLocked();
}

void SpoolDir::journalCompactLocked() {
  std::string text;
  for (const std::string& sid : journaled_) text += journalLine("spool", sid);
  std::vector<std::uint8_t> bytes(text.begin(), text.end());
  const std::string tmp = journalPath() + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
  ESL_CHECK(fd >= 0, "cannot write '" + tmp + "': " + std::strerror(errno));
  const std::uint8_t* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t w = ::write(fd, p, left);
    if (w < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      ::close(fd);
      std::remove(tmp.c_str());
      throw EslError("write to '" + tmp + "' failed: " + why);
    }
    p += w;
    left -= static_cast<std::size_t>(w);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0 ||
      std::rename(tmp.c_str(), journalPath().c_str()) != 0) {
    const std::string why = std::strerror(errno);
    std::remove(tmp.c_str());
    throw EslError("cannot replace '" + journalPath() + "': " + why);
  }
  journalLines_ = journaled_.size();
}

std::vector<SpoolDir::Recovered> SpoolDir::recover(
    std::vector<std::string>& warnings, std::uint64_t* quarantined) {
  ESL_CHECK(persistent_, "recover() needs a persistent spool directory");
  std::lock_guard<std::mutex> lk(m_);

  // Replay the journal into the live set. A torn final line (crash mid-append)
  // is expected damage: report it and keep everything before it.
  std::set<std::string> live;
  {
    FILE* f = std::fopen(journalPath().c_str(), "rb");
    if (f != nullptr) {
      std::string text;
      char buf[4096];
      std::size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
      std::fclose(f);
      std::size_t start = 0;
      while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
          warnings.push_back("journal '" + journalPath() +
                             "': discarding torn trailing line");
          break;
        }
        const std::string lineText = text.substr(start, nl - start);
        start = nl + 1;
        if (lineText.empty()) continue;
        try {
          const json::Value line = json::Value::parse(lineText, journalPath());
          const json::Value* event = line.find("event");
          const json::Value* sid = line.find("sid");
          if (event == nullptr || sid == nullptr) continue;
          if (event->asString() == "spool")
            live.insert(sid->asString());
          else if (event->asString() == "close")
            live.erase(sid->asString());
        } catch (const EslError&) {
          warnings.push_back("journal '" + journalPath() +
                             "': discarding unparsable line");
        }
      }
    }
  }

  // Scan the directory: validate live records, quarantine damage, compact
  // orphans (un-journaled records from a pre-crash write race) and temps.
  std::vector<Recovered> recovered;
  DIR* d = ::opendir(dir_.c_str());
  ESL_CHECK(d != nullptr, "cannot scan spool directory '" + dir_ +
                              "': " + std::strerror(errno));
  std::vector<std::string> names;
  while (const dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);

  for (const std::string& name : names) {
    const std::string path = dir_ + "/" + name;
    if (name == "spool.journal" || endsWith(name, ".corrupt")) continue;
    if (endsWith(name, ".tmp")) {
      // A doomed temp from an interrupted atomic write.
      std::remove(path.c_str());
      continue;
    }
    if (!endsWith(name, ".spool")) continue;
    const std::string sid = name.substr(0, name.size() - 6);
    if (live.count(sid) == 0) {
      warnings.push_back("spool record '" + path +
                         "' has no journal entry; compacted");
      std::remove(path.c_str());
      continue;
    }
    live.erase(sid);
    try {
      sim::readRecordFile(path);  // full container validation, payload dropped
      recovered.push_back(Recovered{sid, path});
    } catch (const EslError& e) {
      const std::string quarantine = path + ".corrupt";
      std::rename(path.c_str(), quarantine.c_str());
      warnings.push_back("session '" + sid + "': " + e.what() +
                         "; quarantined as '" + quarantine + "'");
      if (quarantined != nullptr) ++*quarantined;
    }
  }
  // Journaled sessions whose record never landed (crash between the journal
  // append and the record rename).
  for (const std::string& sid : live)
    warnings.push_back("session '" + sid +
                       "': journaled but no spool record found; dropped");

  journaled_.clear();
  for (const Recovered& r : recovered) journaled_.insert(r.sid);
  journalCompactLocked();
  return recovered;
}

}  // namespace esl::serve
