// Server: the `esl serve` daemon — a Unix-domain socket front-end for
// serve::Service.
//
// One accept loop, one thread per connection, strictly synchronous
// request/response per connection (concurrency comes from running many
// connections; session work is scheduled by the Service, not by socket
// threads). Sessions are service-global: any connection may address any
// session id — which is also how a second connection drains a parked
// session's stream while the first is blocked in a long step.
//
// Shutdown (the "shutdown" op or requestStop()): stop accepting, close every
// session (aborting in-flight steps at their next quantum boundary), then
// shut down the remaining connection sockets and join their threads. run()
// returns once the service is idle and empty.
//
// Graceful drain (requestDrainStop(), the SIGTERM path): instead of closing
// sessions, the service drains — in-flight steps abort at their next quantum
// boundary with a structured "draining" error, every resident session is
// spooled to the persistent spool directory — so a restarted daemon on the
// same --spool-dir re-attaches them all.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/service.h"

namespace esl::serve {

class Server {
 public:
  struct Config {
    std::string socketPath;
    /// Per-connection frame payload cap; inbound frames declaring more bytes
    /// are rejected with a structured protocol error before any allocation.
    std::uint64_t maxPayloadBytes = kMaxPayloadBytes;
    Service::Config service;
  };

  /// Binds and listens (removing a stale socket file first); throws EslError
  /// when the socket cannot be created.
  explicit Server(Config config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until a shutdown request; returns after all connections closed.
  void run();
  /// Asks run() to return (safe from any thread, including handlers).
  void requestStop();
  /// Asks run() to return after draining: aborts in-flight steps at quantum
  /// boundaries and spools every resident session (requires a persistent
  /// spool directory). Safe from any thread — but not from a signal handler;
  /// signal handlers should poke a self-pipe watched by a thread that calls
  /// this.
  void requestDrainStop();

  Service& service() { return service_; }
  const std::string& socketPath() const { return config_.socketPath; }

 private:
  void handleConnection(int fd);
  /// Handles one request frame; returns the response frame. `wantShutdown`
  /// is set for the shutdown op — the caller writes the reply first, then
  /// triggers requestStop(), so the acknowledgement is never torn down with
  /// the connection.
  Frame dispatch(const Frame& request, bool& helloDone, bool& wantShutdown);

  Config config_;
  Service service_;
  int listenFd_ = -1;

  std::mutex m_;
  bool stopping_ = false;
  bool drainOnStop_ = false;
  std::vector<int> connFds_;
  std::vector<std::thread> threads_;
};

}  // namespace esl::serve
