// Client: a blocking connection to an `esl serve` daemon — the scripting/CI
// counterpart of the Server (used by `esl client`, the serve tests and the
// CI smoke). Connects, validates the greeting, performs the hello handshake,
// then exposes one method per protocol op. Server-side failures come back as
// thrown EslError carrying "<kind>: <message>".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/session.h"

namespace esl::serve {

class Client {
 public:
  /// Connects to the daemon at `socketPath` and completes the handshake.
  explicit Client(const std::string& socketPath);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Opens a session over a named design (fig1a, table1, ...).
  std::string openDesign(const std::string& sid, const std::string& design,
                         const SimSession::Options& options = {});
  /// Opens a session over inline `.esl` text.
  std::string openEsl(const std::string& sid, const std::string& eslText,
                      const std::string& origin,
                      const SimSession::Options& options = {});
  std::string cmd(const std::string& sid, const std::string& line);
  /// Returns the run report (CLI `--sim` format).
  std::string step(const std::string& sid, std::uint64_t cycles);
  std::string sinks(const std::string& sid);
  std::string tput(const std::string& sid, const std::string& channel);
  std::uint64_t cycle(const std::string& sid);
  std::vector<std::uint8_t> snapshot(const std::string& sid);
  void restore(const std::string& sid, const std::vector<std::uint8_t>& bytes);
  void watch(const std::string& sid, const std::vector<std::string>& channels);
  /// One drain round-trip; appends to `out`, returns whether bytes remain.
  bool drainOnce(const std::string& sid, std::string& out,
                 std::uint64_t maxBytes = 1 << 20);
  /// Drains until the outbox is empty.
  std::string drainAll(const std::string& sid);
  void close(const std::string& sid);
  /// Raw stats head (fields: sessions, resident, evictions, ...).
  json::Value stats();
  void shutdownServer();

  /// Low-level escape hatch: sends `head` (+payload), returns the reply head
  /// (payload in *payloadOut when non-null); throws on ok=false replies.
  json::Value request(json::Value head, const std::string& payload = {},
                      std::string* payloadOut = nullptr);

 private:
  json::Value sessionHead(const std::string& op, const std::string& sid);

  int fd_ = -1;
  std::uint64_t nextId_ = 1;
  FrameReader reader_;
};

}  // namespace esl::serve
