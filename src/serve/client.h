// Client: a blocking connection to an `esl serve` daemon — the scripting/CI
// counterpart of the Server (used by `esl client`, the serve tests and the
// CI smoke). Connects, validates the greeting, performs the hello handshake,
// then exposes one method per protocol op. Server-side failures come back as
// thrown ServerError carrying the stable error kind and message.
//
// Resilience: Options::retries reconnects with bounded exponential backoff
// when the daemon is not (yet) listening; Options::timeoutMs puts a receive
// deadline on every reply. The failure modes stay distinct exception types —
// ConnectError (never reached the daemon), TimeoutError (reply deadline),
// ConnectionLostError (daemon died mid-command) — so `esl client` can exit
// with a distinct documented code for each.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/error.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/session.h"

namespace esl::serve {

/// Could not reach the daemon (after all configured retries).
class ConnectError : public EslError {
 public:
  using EslError::EslError;
};

/// The connection died mid-command: torn reply, hangup, EPIPE. The daemon
/// crashed or was killed while the request was in flight.
class ConnectionLostError : public EslError {
 public:
  using EslError::EslError;
};

/// The daemon answered with a structured error frame.
class ServerError : public EslError {
 public:
  ServerError(std::string kind, const std::string& message)
      : EslError(kind + ": " + message), kind_(std::move(kind)) {}
  const std::string& kind() const { return kind_; }

 private:
  std::string kind_;
};

/// Connection resilience knobs (namespace-scope so it can default-construct
/// in Client's own default arguments).
struct ClientOptions {
  std::uint64_t timeoutMs = 0;  ///< per-reply receive deadline (0 = none)
  unsigned retries = 0;         ///< extra connect attempts
  std::uint64_t backoffMs = 100;  ///< first retry delay; doubles, capped 10s
};

class Client {
 public:
  using Options = ClientOptions;

  /// Connects to the daemon at `socketPath` (retrying per `options`) and
  /// completes the handshake. Throws ConnectError when every attempt fails.
  explicit Client(const std::string& socketPath,
                  const Options& options = Options());
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Opens a session over a named design (fig1a, table1, ...).
  std::string openDesign(const std::string& sid, const std::string& design,
                         const SimSession::Options& options = {});
  /// Opens a session over inline `.esl` text.
  std::string openEsl(const std::string& sid, const std::string& eslText,
                      const std::string& origin,
                      const SimSession::Options& options = {});
  std::string cmd(const std::string& sid, const std::string& line);
  /// Returns the run report (CLI `--sim` format).
  std::string step(const std::string& sid, std::uint64_t cycles);
  std::string sinks(const std::string& sid);
  std::string tput(const std::string& sid, const std::string& channel);
  std::uint64_t cycle(const std::string& sid);
  std::vector<std::uint8_t> snapshot(const std::string& sid);
  void restore(const std::string& sid, const std::vector<std::uint8_t>& bytes);
  void watch(const std::string& sid, const std::vector<std::string>& channels);
  /// One drain round-trip; appends to `out`, returns whether bytes remain.
  bool drainOnce(const std::string& sid, std::string& out,
                 std::uint64_t maxBytes = 1 << 20);
  /// Drains until the outbox is empty.
  std::string drainAll(const std::string& sid);
  void close(const std::string& sid);
  /// Raw stats head (fields: sessions, resident, evictions, ...).
  json::Value stats();
  void shutdownServer();

  /// Low-level escape hatch: sends `head` (+payload), returns the reply head
  /// (payload in *payloadOut when non-null). Throws ServerError on ok=false
  /// replies, TimeoutError on a reply deadline, ConnectionLostError when the
  /// connection dies mid-command.
  json::Value request(json::Value head, const std::string& payload = {},
                      std::string* payloadOut = nullptr);

 private:
  json::Value sessionHead(const std::string& op, const std::string& sid);

  int fd_ = -1;
  std::uint64_t nextId_ = 1;
  FrameReader reader_;
};

}  // namespace esl::serve
