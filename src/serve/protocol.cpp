#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/error.h"
#include "serve/service.h"

namespace esl::serve {

bool FrameReader::fillSome() {
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      throw TimeoutError("timed out waiting for a reply");
    throw ProtocolError(std::string("socket read failed: ") + std::strerror(errno));
  }
}

bool FrameReader::read(Frame& out) {
  // Head line.
  std::size_t nl;
  while ((nl = buf_.find('\n', pos_)) == std::string::npos) {
    if (buf_.size() - pos_ > maxPayload_)
      throw ProtocolError("frame head exceeds the payload cap without a newline");
    if (!fillSome()) {
      if (pos_ == buf_.size()) return false;  // clean EOF at a boundary
      throw ProtocolError("connection closed mid-frame");
    }
  }
  const std::string line = buf_.substr(pos_, nl - pos_);
  pos_ = nl + 1;
  out.head = json::Value::parse(line, "<frame>");
  out.payload.clear();

  // Optional payload block: "bytes": N raw bytes, then one '\n'.
  if (const json::Value* bytes = out.head.find("bytes")) {
    const std::uint64_t n = bytes->asU64();
    // Reject before any buffer grows: an absurd declared length (garbage or
    // hostile) must cost nothing and hang nothing.
    if (n > maxPayload_)
      throw ProtocolError("payload of " + std::to_string(n) +
                          " bytes exceeds the cap of " +
                          std::to_string(maxPayload_));
    while (buf_.size() - pos_ < n + 1) {
      if (!fillSome()) throw ProtocolError("connection closed mid-payload");
    }
    out.payload = buf_.substr(pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    if (buf_[pos_] != '\n')
      throw ProtocolError("payload block is not newline-terminated");
    ++pos_;
  }

  // Keep the buffer from growing without bound across frames.
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (1u << 16)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

namespace {

void writeAll(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a peer hanging up mid-write must surface as EPIPE here,
    // not kill the daemon with SIGPIPE. Non-socket fds fall back to write().
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("socket write failed: ") +
                          std::strerror(errno));
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

}  // namespace

void writeFrame(int fd, json::Value head, const std::string& payload) {
  if (!payload.empty()) head.set("bytes", json::Value::number(payload.size()));
  std::string wire = head.dump();
  wire += '\n';
  if (!payload.empty()) {
    wire += payload;
    wire += '\n';
  }
  writeAll(fd, wire.data(), wire.size());
}

json::Value greetingHead() {
  json::Value head = json::Value::object();
  head.set("serve", json::Value::str("esl"));
  head.set("proto", json::Value::number(kProtocolVersion));
  return head;
}

std::string errorKind(const std::exception& e) {
  // Most-derived first: the serve kinds, then the frontend/base hierarchy.
  if (dynamic_cast<const NotFoundError*>(&e) != nullptr) return "not-found";
  if (dynamic_cast<const AdmissionError*>(&e) != nullptr) return "admission";
  if (dynamic_cast<const DrainingError*>(&e) != nullptr) return "draining";
  if (dynamic_cast<const TimeoutError*>(&e) != nullptr) return "timeout";
  if (dynamic_cast<const ParseError*>(&e) != nullptr) return "parse";
  if (dynamic_cast<const ProtocolError*>(&e) != nullptr) return "protocol";
  if (dynamic_cast<const TransformError*>(&e) != nullptr) return "transform";
  if (dynamic_cast<const CombinationalCycleError*>(&e) != nullptr)
    return "comb-cycle";
  if (dynamic_cast<const NetlistError*>(&e) != nullptr) return "netlist";
  if (dynamic_cast<const InternalError*>(&e) != nullptr) return "internal";
  if (dynamic_cast<const EslError*>(&e) != nullptr) return "error";
  return "internal";
}

json::Value errorHead(bool hasId, std::uint64_t id, const std::string& kind,
                      const std::string& message) {
  json::Value err = json::Value::object();
  err.set("kind", json::Value::str(kind));
  err.set("message", json::Value::str(message));
  json::Value head = json::Value::object();
  if (hasId) head.set("id", json::Value::number(id));
  head.set("ok", json::Value::boolean(false));
  head.set("error", std::move(err));
  return head;
}

}  // namespace esl::serve
